package kali_test

import (
	"testing"

	"kali"
)

// TestQuickstart runs the package-doc example end to end: the Figure 1
// shift loop through the public facade.
func TestQuickstart(t *testing.T) {
	rep := kali.Run(kali.Config{P: 4, Params: kali.Ideal()}, func(ctx *kali.Context) {
		a := ctx.BlockArray("A", 100)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)) })
		ctx.Forall(&kali.Loop{
			Name: "shift", Lo: 1, Hi: 99,
			On: a, OnF: kali.Identity,
			Reads: []kali.ReadSpec{{Array: a, Affine: &kali.Affine{A: 1, C: 1}}},
			Body:  func(i int, e *kali.Env) { e.Write(a, i, e.Read(a, i+1)) },
		})
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			want := float64(i + 1)
			if i == 100 {
				want = 100
			}
			if a.Get1(i) != want {
				t.Errorf("A[%d] = %g, want %g", i, a.Get1(i), want)
			}
		})
	})
	if rep.P != 4 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestMachinePresets(t *testing.T) {
	if kali.NCUBE7().Name != "NCUBE/7" || kali.IPSC2().Name != "iPSC/2" {
		t.Fatal("preset names wrong")
	}
	if p, ok := kali.MachineByName("ncube"); !ok || p.Name != "NCUBE/7" {
		t.Fatal("MachineByName")
	}
}

func TestDistHelpers(t *testing.T) {
	kali.Run(kali.Config{P: 2, Params: kali.Ideal()}, func(ctx *kali.Context) {
		a := ctx.Array("m", []int{8, 4}, []kali.DimSpec{kali.BlockCyclicDim(2), kali.CollapsedDim()})
		if a.Size() != 32 {
			t.Errorf("size = %d", a.Size())
		}
	})
}
