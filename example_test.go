package kali_test

import (
	"fmt"

	"kali"
)

// ExampleRun reproduces the paper's Figure 1 loop: a block-distributed
// array shifted left by one through the global name space.  The
// compile-time analysis finds the single boundary element each
// processor pair exchanges.
func ExampleRun() {
	const n = 12
	rep := kali.Run(kali.Config{P: 4, Params: kali.NCUBE7()}, func(ctx *kali.Context) {
		a := ctx.BlockArray("A", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			a.Set1(i, float64(i))
		})
		ctx.Forall(&kali.Loop{
			Name: "shift", Lo: 1, Hi: n - 1,
			On: a, OnF: kali.Identity,
			Reads: []kali.ReadSpec{{Array: a, Affine: &kali.Affine{A: 1, C: 1}}},
			Body: func(i int, e *kali.Env) {
				e.Write(a, i, e.Read(a, i+1))
			},
		})
		if ctx.ID() == 0 {
			fmt.Printf("A[1..3] on processor 0: %g %g %g\n", a.Get1(1), a.Get1(2), a.Get1(3))
		}
	})
	fmt.Printf("machine: %s, processors: %d, messages: %d\n", rep.Machine, rep.P, rep.MsgsSent)
	// Output:
	// A[1..3] on processor 0: 2 3 4
	// machine: NCUBE/7, processors: 4, messages: 3
}

// ExampleRun_inspector shows a data-dependent subscript: the gather
// B[i] := A[perm[i]] cannot be analyzed statically, so the runtime
// inspector discovers the communication pattern, and the schedule is
// cached for reuse.
func ExampleRun_inspector() {
	const n = 8
	kali.Run(kali.Config{P: 2, Params: kali.Ideal()}, func(ctx *kali.Context) {
		a := ctx.BlockArray("A", n)
		b := ctx.BlockArray("B", n)
		perm := ctx.BlockIntArray("perm", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)*10) })
		perm.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { perm.Set1(i, n+1-i) })

		ctx.Forall(&kali.Loop{
			Name: "gather", Lo: 1, Hi: n,
			On: b, OnF: kali.Identity,
			Reads:     []kali.ReadSpec{{Array: a}}, // indirect: inspector
			DependsOn: []kali.Dep{perm},
			Body: func(i int, e *kali.Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(perm, i)))
			},
		})
		if ctx.ID() == 0 {
			fmt.Printf("B[1] = A[perm[1]] = A[%d] = %g\n", n, b.Get1(1))
		}
	})
	// Output:
	// B[1] = A[perm[1]] = A[8] = 80
}
