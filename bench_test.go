// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).  Each
// benchmark runs the full simulated experiment and reports the
// simulated seconds as custom metrics (sim-total-s, sim-insp-s, ...);
// wall-clock ns/op measures the host cost of the simulation itself.
//
// Figures 7–10 are the paper's tables; "worstcase" covers the §4 text
// numbers; the ABL* benchmarks cover the ablations DESIGN.md calls
// out.  cmd/kalibench prints the same experiments as paper-vs-measured
// tables.
package kali_test

import (
	"fmt"
	"testing"

	"kali/internal/baseline"
	"kali/internal/bench"
	"kali/internal/comm"
	"kali/internal/core"
	"kali/internal/crystal"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/mesh"
	"kali/internal/relax"

	kalianalysis "kali/internal/analysis"
)

// reportRelax runs one relaxation experiment per b.N iteration and
// reports its simulated phase times.
func reportRelax(b *testing.B, opt relax.Options, simulate int) {
	b.Helper()
	var r relax.Result
	for i := 0; i < b.N; i++ {
		r = relax.RunExtrapolated(opt, simulate)
	}
	b.ReportMetric(r.Report.Total, "sim-total-s")
	b.ReportMetric(r.Report.Executor, "sim-exec-s")
	b.ReportMetric(r.Report.Inspector, "sim-insp-s")
	b.ReportMetric(r.Report.OverheadPct(), "insp-ovh-%")
}

// BenchmarkFig7 regenerates Figure 7: NCUBE/7, 128×128 mesh,
// 100 sweeps, varying processor count.
func BenchmarkFig7(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, p := range []int{2, 4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			reportRelax(b, relax.Options{
				Mesh: m, Sweeps: 100, P: p, Params: machine.NCUBE7(),
			}, 4)
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: iPSC/2, 128×128 mesh,
// 100 sweeps, varying processor count.
func BenchmarkFig8(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, p := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			reportRelax(b, relax.Options{
				Mesh: m, Sweeps: 100, P: p, Params: machine.IPSC2(),
			}, 4)
		})
	}
}

// BenchmarkFig9 regenerates Figure 9: NCUBE/7, 128 processors,
// varying mesh size (speedup reported vs 1-processor executor time).
func BenchmarkFig9(b *testing.B) {
	for _, side := range []int{64, 128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("mesh=%dx%d", side, side), func(b *testing.B) {
			m := mesh.Rect(side, side)
			var r relax.Result
			var t1 float64
			for i := 0; i < b.N; i++ {
				r = relax.RunExtrapolated(relax.Options{
					Mesh: m, Sweeps: 100, P: 128, Params: machine.NCUBE7(),
				}, 4)
				t1 = relax.SeqExecutorTime(m, 100, machine.NCUBE7())
			}
			b.ReportMetric(r.Report.Total, "sim-total-s")
			b.ReportMetric(r.Report.Inspector, "sim-insp-s")
			b.ReportMetric(r.Report.OverheadPct(), "insp-ovh-%")
			b.ReportMetric(t1/r.Report.Total, "speedup")
		})
	}
}

// BenchmarkFig10 regenerates Figure 10: iPSC/2, 32 processors,
// varying mesh size.
func BenchmarkFig10(b *testing.B) {
	for _, side := range []int{64, 128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("mesh=%dx%d", side, side), func(b *testing.B) {
			m := mesh.Rect(side, side)
			var r relax.Result
			var t1 float64
			for i := 0; i < b.N; i++ {
				r = relax.RunExtrapolated(relax.Options{
					Mesh: m, Sweeps: 100, P: 32, Params: machine.IPSC2(),
				}, 4)
				t1 = relax.SeqExecutorTime(m, 100, machine.IPSC2())
			}
			b.ReportMetric(r.Report.Total, "sim-total-s")
			b.ReportMetric(r.Report.Inspector, "sim-insp-s")
			b.ReportMetric(r.Report.OverheadPct(), "insp-ovh-%")
			b.ReportMetric(t1/r.Report.Total, "speedup")
		})
	}
}

// BenchmarkWorstCase regenerates the §4 text numbers: single-sweep
// inspector overhead (paper: NCUBE 45%..93%, iPSC 35%..41%).
func BenchmarkWorstCase(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, cfg := range []struct {
		params machine.Params
		p      int
	}{
		{machine.NCUBE7(), 2}, {machine.NCUBE7(), 128},
		{machine.IPSC2(), 2}, {machine.IPSC2(), 32},
	} {
		b.Run(fmt.Sprintf("%s/P=%d", cfg.params.Name, cfg.p), func(b *testing.B) {
			var r relax.Result
			for i := 0; i < b.N; i++ {
				r = relax.Run(relax.Options{Mesh: m, Sweeps: 1, P: cfg.p, Params: cfg.params})
			}
			b.ReportMetric(r.Report.OverheadPct(), "insp-ovh-%")
		})
	}
}

// BenchmarkUnstructured covers TXT2: the ~6-neighbor unstructured mesh
// against the rectangular mesh at equal node count, in natural order
// (the paper's "somewhat higher" case) and with shuffled numbering
// (locality destroyed).
func BenchmarkUnstructured(b *testing.B) {
	for _, mk := range []struct {
		name string
		m    *mesh.Mesh
	}{
		{"rect", mesh.Rect(128, 128)},
		{"natural", mesh.Unstructured(128, 128, false, 0)},
		{"shuffled", mesh.Unstructured(128, 128, true, 1990)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			reportRelax(b, relax.Options{
				Mesh: mk.m, Sweeps: 100, P: 64, Params: machine.NCUBE7(),
			}, 4)
		})
	}
}

// BenchmarkEnumeration is ABL7: the searched executor vs Saltz-style
// full enumeration, with the schedule-storage trade-off as a metric.
func BenchmarkEnumeration(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, enum := range []bool{false, true} {
		name := "search"
		if enum {
			name = "enumerate"
		}
		b.Run(name, func(b *testing.B) {
			var r relax.Result
			for i := 0; i < b.N; i++ {
				r = relax.RunExtrapolated(relax.Options{
					Mesh: m, Sweeps: 100, P: 64, Params: machine.NCUBE7(), Enumerate: enum,
				}, 4)
			}
			b.ReportMetric(r.Report.Executor, "sim-exec-s")
			b.ReportMetric(float64(r.ScheduleBytes), "sched-B/proc")
		})
	}
}

// BenchmarkDistChoice is ABL5: the same program under different dist
// clauses.
func BenchmarkDistChoice(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, c := range []struct {
		name string
		dim  dist.DimSpec
	}{
		{"block", dist.BlockDim()},
		{"cyclic", dist.CyclicDim()},
		{"blockcyclic8", dist.BlockCyclicDim(8)},
	} {
		b.Run(c.name, func(b *testing.B) {
			reportRelax(b, relax.Options{
				Mesh: m, Sweeps: 100, P: 16, Params: machine.NCUBE7(), Dist: c.dim,
			}, 4)
		})
	}
}

// BenchmarkGranularity is TXT3: total time on a small mesh has an
// interior minimum in P — why the real estate agent may decline
// processors.
func BenchmarkGranularity(b *testing.B) {
	m := mesh.Rect(32, 32)
	for _, p := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var r relax.Result
			for i := 0; i < b.N; i++ {
				r = relax.Run(relax.Options{Mesh: m, Sweeps: 10, P: p, Params: machine.NCUBE7()})
			}
			b.ReportMetric(r.Report.Total, "sim-total-s")
		})
	}
}

// BenchmarkScheduleCache is ABL1: inspector amortization.  Without the
// cache the inspector runs every sweep.
func BenchmarkScheduleCache(b *testing.B) {
	m := mesh.Rect(128, 128)
	for _, nocache := range []bool{false, true} {
		name := "cached"
		if nocache {
			name = "nocache"
		}
		b.Run(name, func(b *testing.B) {
			var r relax.Result
			for i := 0; i < b.N; i++ {
				r = relax.Run(relax.Options{
					Mesh: m, Sweeps: 10, P: 16, Params: machine.NCUBE7(), NoCache: nocache,
				})
			}
			b.ReportMetric(r.Report.Inspector, "sim-insp-s")
			b.ReportMetric(r.Report.OverheadPct(), "insp-ovh-%")
		})
	}
}

// BenchmarkKaliVsHand is ABL2: the generated code against hand-written
// message passing.
func BenchmarkKaliVsHand(b *testing.B) {
	const side, sweeps, p = 128, 10, 16
	m := mesh.Rect(side, side)
	b.Run("kali", func(b *testing.B) {
		var r relax.Result
		for i := 0; i < b.N; i++ {
			r = relax.Run(relax.Options{Mesh: m, Sweeps: sweeps, P: p, Params: machine.NCUBE7()})
		}
		b.ReportMetric(r.Report.Total, "sim-total-s")
	})
	b.Run("hand", func(b *testing.B) {
		var r baseline.Result
		for i := 0; i < b.N; i++ {
			r = baseline.Run(baseline.Options{NX: side, NY: side, Sweeps: sweeps, P: p, Params: machine.NCUBE7()})
		}
		b.ReportMetric(r.Report.Total, "sim-total-s")
	})
}

// BenchmarkCompileVsRuntime is ABL3: schedule-acquisition cost of the
// affine Figure 1 shift under both analyses (cache disabled so each
// execution pays it).
func BenchmarkCompileVsRuntime(b *testing.B) {
	const n, p = 1 << 14, 16
	for _, force := range []bool{false, true} {
		name := "compiletime"
		if force {
			name = "inspector"
		}
		b.Run(name, func(b *testing.B) {
			var rep core.Report
			for i := 0; i < b.N; i++ {
				rep = core.Run(core.Config{P: p, Params: machine.NCUBE7()}, func(ctx *core.Context) {
					a := ctx.BlockArray("A", n)
					ctx.Eng.ForceInspector = force
					ctx.Eng.NoCache = true
					ctx.Forall(&forall.Loop{
						Name: "shift", Lo: 1, Hi: n - 1,
						On: a, OnF: kalianalysis.Identity,
						Reads: []forall.ReadSpec{{Array: a, Affine: &kalianalysis.Affine{A: 1, C: 1}}},
						Body:  func(i int, e *forall.Env) { e.Write(a, i, e.Read(a, i+1)) },
					})
				})
			}
			b.ReportMetric(rep.Inspector, "sim-sched-s")
		})
	}
}

// BenchmarkCompileVsRuntime2D is the paper's ABL3 contrast in two
// dimensions: schedule-acquisition cost of the five-point stencil on a
// 2-D processor grid under the rank-2 closed forms vs the run-time
// inspector (cache disabled so every execution pays the build).  The
// stencil loop itself is shared with kalibench's ctvsrt2d table.
func BenchmarkCompileVsRuntime2D(b *testing.B) {
	const n, pr, pc = 128, 4, 4
	for _, force := range []bool{false, true} {
		name := "compiletime"
		if force {
			name = "inspector"
		}
		b.Run(name, func(b *testing.B) {
			var sched float64
			for i := 0; i < b.N; i++ {
				sched, _ = bench.Run2DStencil(n, pr, pc, 5, machine.NCUBE7(), force)
			}
			b.ReportMetric(sched, "sim-sched-s")
		})
	}
}

// BenchmarkRangeVsMap is ABL4: the paper's Figure 5 design choice —
// sorted merged range records with binary search versus a hash map —
// measured in host time over a boundary-exchange-like set.
func BenchmarkRangeVsMap(b *testing.B) {
	// A typical inspector outcome: 512 nonlocal elements from 2
	// senders, contiguous runs of 128.
	bd := comm.NewBuilder(0)
	hash := map[[2]int]int{}
	slot := 0
	for _, home := range []int{1, 2} {
		base := home * 10000
		for k := 0; k < 256; k++ {
			g := base + k
			bd.Add(g, home)
			hash[[2]int{home, g}] = slot
			slot++
		}
	}
	in := bd.Finalize()
	b.Run("sorted-ranges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			home := 1 + i%2
			g := home*10000 + (i*7)%256
			if _, ok := in.Find(home, g); !ok {
				b.Fatal("miss")
			}
		}
		b.ReportMetric(float64(in.NumRanges()), "ranges")
	})
	b.Run("hash-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			home := 1 + i%2
			g := home*10000 + (i*7)%256
			if _, ok := hash[[2]int{home, g}]; !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkCrystalRouter measures the all-to-all exchange that builds
// out sets from in sets, at the paper's machine sizes.
func BenchmarkCrystalRouter(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := sim.MustNew(p, machine.Ideal())
				m.Run(func(n *machine.Node) {
					var parcels []crystal.Parcel
					for q := 0; q < 4; q++ {
						parcels = append(parcels, crystal.Parcel{
							Dest: (n.ID() + q + 1) % p, Data: q, Bytes: 40,
						})
					}
					crystal.Route(n, parcels)
				})
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures host-side simulation speed:
// mesh-point updates per wall-clock second (useful when sizing runs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := mesh.Rect(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relax.Run(relax.Options{Mesh: m, Sweeps: 10, P: 8, Params: machine.NCUBE7()})
	}
	b.ReportMetric(float64(m.N*10), "point-sweeps/op")
}
