// Distributions demonstrates the paper's §2.4 claim: because the
// forall bodies use a global name space, "a variety of distribution
// patterns can easily be tried by trivial modification of this
// program.  Such a modification in a message passing language would
// involve extensive rewriting of the communications statements."
//
// The same Figure 4 relaxation runs under four distributions — only
// the dist clause changes — and the timing differences show why Kali
// leaves the distribution under programmer control: it is the
// performance-critical decision.
//
//	go run ./examples/distributions [-side 64] [-p 8] [-sweeps 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"kali"
	"kali/internal/mesh"
	"kali/internal/relax"
)

func main() {
	side := flag.Int("side", 64, "mesh side")
	procs := flag.Int("p", 8, "processors")
	sweeps := flag.Int("sweeps", 50, "Jacobi sweeps")
	flag.Parse()

	m := mesh.Rect(*side, *side)
	want := mesh.SeqJacobi(m, mesh.InitValues(m), *sweeps)

	fmt.Printf("Figure 4 relaxation, %s, %d sweeps, %d processors (NCUBE/7)\n", m.Desc, *sweeps, *procs)
	fmt.Printf("the program text is IDENTICAL in every row; only the dist clause changes\n\n")
	fmt.Printf("%-18s %10s %10s %10s %14s\n", "dist by [...]", "total", "executor", "inspector", "nonlocal iters")

	cases := []struct {
		name string
		dim  kali.DimSpec
	}{
		{"block", kali.BlockDim()},
		{"cyclic", kali.CyclicDim()},
		{"block_cyclic(32)", kali.BlockCyclicDim(32)},
		{"block_cyclic(4)", kali.BlockCyclicDim(4)},
	}
	for _, c := range cases {
		// Correctness never varies with the distribution.
		check := relax.Run(relax.Options{
			Mesh: m, Sweeps: *sweeps, P: *procs, Params: kali.Ideal(),
			Dist: c.dim, Gather: true,
		})
		if d := mesh.MaxDelta(check.Values, want); d != 0 {
			fmt.Fprintf(os.Stderr, "%s: WRONG ANSWER (delta %g)\n", c.name, d)
			os.Exit(1)
		}
		r := relax.Run(relax.Options{
			Mesh: m, Sweeps: *sweeps, P: *procs, Params: kali.NCUBE7(), Dist: c.dim,
		})
		fmt.Printf("%-18s %9.2fs %9.2fs %9.2fs %14d\n",
			c.name, r.Report.Total, r.Report.Executor, r.Report.Inspector, r.NonlocalIters)
	}

	fmt.Println("\nblock wins for stencils: neighbors are contiguous, so only band")
	fmt.Println("boundaries communicate.  cyclic turns nearly every reference nonlocal.")
	fmt.Println("block_cyclic interpolates — the granularity/balance knob of §2.2.")
}
