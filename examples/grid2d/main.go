// Grid2d exercises multi-dimensional processor arrays — the paper
// declares them ("Multi-dimensional processor arrays can be declared
// similarly") but evaluates only 1-D decompositions.  Here the same
// five-point relaxation runs under
//
//	processors Procs : array[1..P]        (block rows)
//	processors Procs : array[1..p, 1..p]  (block×block tiles)
//
// and the classic surface-to-volume effect appears: at equal processor
// counts, square tiles exchange ~2/√P as many boundary elements as row
// bands, so the 2-D decomposition pulls ahead as P grows.
//
//	go run ./examples/grid2d [-side 64] [-sweeps 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"kali"
	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/mesh"
	"kali/internal/topology"
)

func main() {
	side := flag.Int("side", 64, "mesh side")
	sweeps := flag.Int("sweeps", 20, "Jacobi sweeps")
	flag.Parse()

	m := mesh.Rect(*side, *side)
	want := mesh.SeqJacobi(m, mesh.InitValues(m), *sweeps)

	fmt.Printf("five-point relaxation, %dx%d mesh, %d sweeps (NCUBE/7)\n\n", *side, *side, *sweeps)
	fmt.Printf("%-14s %8s %14s %12s %12s %12s\n", "decomposition", "procs", "schedule", "executor", "inspector", "bytes moved")

	for _, cfg := range []struct {
		name   string
		pr, pc int
	}{
		{"4x1 rows", 4, 1}, {"2x2 tiles", 2, 2},
		{"16x1 rows", 16, 1}, {"4x4 tiles", 4, 4},
	} {
		got, exec, insp, bytes, kind := run2D(m, *side, *side, cfg.pr, cfg.pc, *sweeps, kali.NCUBE7())
		if d := mesh.MaxDelta(got, want); d != 0 {
			fmt.Fprintf(os.Stderr, "%s: WRONG ANSWER (%g)\n", cfg.name, d)
			os.Exit(1)
		}
		fmt.Printf("%-14s %8d %14s %11.3fs %11.3fs %12d\n",
			cfg.name, cfg.pr*cfg.pc, kind, exec, insp, bytes)
	}
	fmt.Println("\ntiles win at P=16: each tile's perimeter (4·n/√P) is half the row")
	fmt.Println("band's boundary (2·n), halving both messages and buffer searches.")

	// §5 executor variants in 2-D: the same relaxation, written with a
	// shifted (non-identity) affine on clause, still builds its
	// schedule at compile time; the Saltz-style enumerated executor
	// must instead run the inspector and keep a per-reference list,
	// which needs strictly more schedule storage.
	kindPre, memPre := variantStorage2D(*side, false)
	kindEnum, memEnum := variantStorage2D(*side, true)
	fmt.Printf("\nshifted on clause (on a[i+1,j+1].loc) on 2x2 tiles:\n")
	fmt.Printf("  precomputed: build %-12v %6d schedule B/proc\n", kindPre, memPre)
	fmt.Printf("  enumerated:  build %-12v %6d schedule B/proc\n", kindEnum, memEnum)
}

// variantStorage2D runs one relaxation sweep on a 2x2 grid with a
// shifted affine on clause and reports the schedule's provenance and
// worst per-node storage for the chosen executor variant.
func variantStorage2D(n int, enumerate bool) (forall.BuildKind, int) {
	g := topology.MustGrid(2, 2)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(4, kali.NCUBE7())
	var kind forall.BuildKind
	mem := 0
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		eng := forall.NewEngine(nd)
		eng.Run2(&forall.Loop2{
			Name: "relax-shifted", LoI: 1, HiI: n - 2, LoJ: 1, HiJ: n - 2,
			On:   a,
			OnF2: kali.Affine2{I: kali.Affine{A: 1, C: 1}, J: kali.Affine{A: 1, C: 1}},
			Reads: []forall.ReadSpec{
				{Array: old, Affine2: analysis.Shift2(0, 1)}, {Array: old, Affine2: analysis.Shift2(2, 1)},
				{Array: old, Affine2: analysis.Shift2(1, 0)}, {Array: old, Affine2: analysis.Shift2(1, 2)},
			},
			Enumerate: enumerate,
			Body: func(i, j int, e *forall.Env) {
				x := 0.25 * (e.ReadAt(old, i, j+1) + e.ReadAt(old, i+2, j+1) +
					e.ReadAt(old, i+1, j) + e.ReadAt(old, i+1, j+2))
				e.Flops(9)
				e.WriteAt(a, x, i+1, j+1)
			},
		})
		mu.Lock()
		s := eng.Schedule2("relax-shifted")
		kind = s.Kind()
		if mb := s.MemBytes(); mb > mem {
			mem = mb
		}
		mu.Unlock()
	})
	return kind, mem
}

// run2D runs the relaxation as 2-D foralls on a pr×pc grid.  The
// stencil subscripts are per-dimension affine, so the engine derives
// the halo-exchange schedules at compile time — no inspector pass.
func run2D(m *mesh.Mesh, nx, ny, pr, pc, sweeps int, params machine.Params) ([]float64, float64, float64, int, forall.BuildKind) {
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{ny, nx}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(pr*pc, params)
	out := make([]float64, nx*ny)
	var kind forall.BuildKind
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		for r := 1; r <= ny; r++ {
			for c := 1; c <= nx; c++ {
				if a.IsLocal(r, c) && (r == 1 || r == ny || c == 1 || c == nx) {
					i := (r-1)*nx + c
					a.Set2(r, c, 1.0+float64(i%7))
				}
			}
		}
		eng := forall.NewEngine(nd)
		copyLoop := &forall.Loop2{
			Name: "copy", LoI: 1, HiI: ny, LoJ: 1, HiJ: nx,
			On: old, Reads: []forall.ReadSpec{{Array: a, Affine2: &analysis.Identity2}}, Phase: "copy",
			Body: func(i, j int, e *forall.Env) {
				e.WriteAt(old, e.ReadAt(a, i, j), i, j)
			},
		}
		relaxLoop := &forall.Loop2{
			Name: "relax", LoI: 2, HiI: ny - 1, LoJ: 2, HiJ: nx - 1,
			On: a, Reads: []forall.ReadSpec{
				{Array: old, Affine2: analysis.Shift2(-1, 0)}, {Array: old, Affine2: analysis.Shift2(1, 0)},
				{Array: old, Affine2: analysis.Shift2(0, -1)}, {Array: old, Affine2: analysis.Shift2(0, 1)},
			},
			Body: func(i, j int, e *forall.Env) {
				x := 0.25 * (e.ReadAt(old, i-1, j) + e.ReadAt(old, i+1, j) +
					e.ReadAt(old, i, j-1) + e.ReadAt(old, i, j+1))
				e.Flops(9)
				e.WriteAt(a, x, i, j)
			},
		}
		for s := 0; s < sweeps; s++ {
			eng.Run2(copyLoop)
			eng.Run2(relaxLoop)
		}
		mu.Lock()
		if s := eng.Schedule2("relax"); s != nil {
			kind = s.Kind()
		}
		for r := 1; r <= ny; r++ {
			for c := 1; c <= nx; c++ {
				if a.IsLocal(r, c) {
					out[(r-1)*nx+c-1] = a.Get2(r, c)
				}
			}
		}
		mu.Unlock()
	})
	bytes := 0
	for i := 0; i < mach.P(); i++ {
		bytes += mach.Node(i).Stats().BytesSent
	}
	return out, mach.MaxPhase(forall.PhaseExecutor), mach.MaxPhase(forall.PhaseInspector), bytes, kind
}
