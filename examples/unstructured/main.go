// Unstructured runs the workload the paper's introduction motivates:
// relaxation on an *irregular* mesh, where the adjacency structure is
// data (adj/coef arrays) and the communication pattern cannot be known
// until run time.  The node numbering is randomly permuted, so block
// distribution scatters each processor's neighbors across the whole
// machine — the inspector discovers the pattern, the Crystal router
// transposes it, and the schedule is reused for every sweep.
//
//	go run ./examples/unstructured [-side 64] [-p 16] [-sweeps 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"kali"
	"kali/internal/mesh"
	"kali/internal/relax"
)

func main() {
	side := flag.Int("side", 48, "mesh side")
	procs := flag.Int("p", 16, "processors")
	sweeps := flag.Int("sweeps", 50, "Jacobi sweeps")
	flag.Parse()

	rect := mesh.Rect(*side, *side)
	unst := mesh.Unstructured(*side, *side, true, 1990)

	fmt.Printf("comparing meshes with %d nodes on %d processors (%d sweeps, NCUBE/7):\n\n",
		rect.N, *procs, *sweeps)

	// Correctness first: distributed == sequential on the shuffled mesh.
	want := mesh.SeqJacobi(unst, mesh.InitValues(unst), *sweeps)
	got := relax.Run(relax.Options{
		Mesh: unst, Sweeps: *sweeps, P: *procs, Params: kali.Ideal(), Gather: true,
	})
	if d := mesh.MaxDelta(got.Values, want); d != 0 {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %g\n", d)
		os.Exit(1)
	}
	fmt.Println("validation: shuffled unstructured mesh matches sequential solver ✓")

	fmt.Printf("\n%-22s %8s %10s %10s %10s %12s\n",
		"mesh", "avg deg", "total", "executor", "inspector", "recv/proc")
	for _, m := range []*mesh.Mesh{rect, unst} {
		r := relax.Run(relax.Options{Mesh: m, Sweeps: *sweeps, P: *procs, Params: kali.NCUBE7()})
		fmt.Printf("%-22.22s %8.1f %9.2fs %9.2fs %9.2fs %12d\n",
			m.Desc, m.AvgDegree(), r.Report.Total, r.Report.Executor,
			r.Report.Inspector, r.NonlocalIters)
	}
	fmt.Println("\nas §4 predicts, the 6-neighbor unstructured grid costs more in every")
	fmt.Println("phase — more references to inspect, more elements to communicate, and")
	fmt.Println("more nonlocal iterations paying the O(log r) buffer search.")
}
