// Kalilang compiles and runs the paper's Figure 4 program written in
// the Kali *language* (relax.kali in this directory), demonstrating
// the full front-end pipeline: parse → subscript classification →
// SPMD interpretation with the inspector/executor runtime underneath.
//
//	go run ./examples/kalilang [-machine ncube] [-p 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"kali/internal/core"
	"kali/internal/lang"
	"kali/internal/machine"
)

func main() {
	machineName := flag.String("machine", "ncube", "cost model: ncube, ipsc, ideal")
	procs := flag.Int("p", 16, "available processors")
	flag.Parse()

	params, ok := machine.ByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machineName)
		os.Exit(2)
	}

	src, err := os.ReadFile(sourcePath())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Println("compiled relax.kali: the old_a[adj[i,j]] reference is data-dependent,")
	fmt.Println("so the relaxation forall is lowered to the run-time inspector; the")
	fmt.Println("copy forall is affine and uses compile-time analysis.")

	res, err := prog.Run(core.Config{P: *procs, Params: params})
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("\nmachine %s, processors %d\n", params.Name, res.P)
	fmt.Printf("total %.3fs  executor %.3fs  inspector %.3fs  (overhead %.1f%%)\n",
		res.Report.Total, res.Report.Executor, res.Report.Inspector,
		res.Report.OverheadPct())
	fmt.Printf("final convergence delta: %.6f\n", res.Scalars["delta"])
}

// sourcePath locates relax.kali next to this source file so the
// example runs from any working directory.
func sourcePath() string {
	_, file, _, okCaller := runtime.Caller(0)
	if okCaller {
		return filepath.Join(filepath.Dir(file), "relax.kali")
	}
	return "relax.kali"
}
