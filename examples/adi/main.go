// ADI-style alternating-direction sweeps via dynamic redistribution —
// the transpose method on top of darray.Redistribute.
//
// u starts in row layout [block, *]: every row is stored whole on one
// processor, so the row sweep (a 1-D Jacobi smooth along each row)
// runs without any communication.  The column sweep needs whole
// columns, so between the phases the program *redistributes* u to
// column layout [*, block] — one schedule-driven all-to-all with one
// coalesced message per processor pair — and transposes back after.
//
// The interesting part is what repeated sweeps cost: the two remapping
// plans are content-addressed by distribution-fingerprint pair, so
// every cycle after the first replays cached plans allocation-free,
// and the forall schedules replay from their own caches because the
// array returns to a fingerprint they were built under.  The final
// report separates redistribution traffic and time (TagRedist,
// Report.RedistMsgs/Redist) from the forall phases.
//
//	go run ./examples/adi
package main

import (
	"fmt"

	"kali"
	"kali/internal/darray"
)

const (
	n      = 16
	sweeps = 4
)

func main() {
	builds0, hits0 := darray.RedistBuilds(), darray.RedistHits()
	var got [n + 1][n + 1]float64

	rep := kali.Run(kali.Config{P: 4, Params: kali.NCUBE7()}, func(ctx *kali.Context) {
		// var u : array[1..n, 1..n] of real dist by [block, *] on Procs;
		u := ctx.Array("u", []int{n, n}, []kali.DimSpec{kali.BlockDim(), kali.CollapsedDim()})
		// A 1-D helper array gives the sweeps their on-clause placement:
		// its block pattern matches u's distributed dimension.
		rows := ctx.BlockArray("rows", n)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if u.IsLocal(i, j) {
					u.Set(float64((i*13+j*7)%11), i, j)
				}
			}
		}

		rowSweep := &kali.Loop{
			Name: "rowSweep", Lo: 1, Hi: n,
			On: rows, OnF: kali.Identity,
			Reads: []kali.ReadSpec{{Array: u}}, // locality decided at run time
			Body: func(i int, e *kali.Env) {
				for j := 2; j <= n-1; j++ {
					x := 0.25*e.ReadAt(u, i, j-1) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i, j+1)
					e.Flops(5)
					e.WriteAt(u, x, i, j)
				}
			},
		}
		colSweep := &kali.Loop{
			Name: "colSweep", Lo: 1, Hi: n,
			On: rows, OnF: kali.Identity,
			Reads: []kali.ReadSpec{{Array: u}},
			Body: func(j int, e *kali.Env) {
				for i := 2; i <= n-1; i++ {
					x := 0.25*e.ReadAt(u, i-1, j) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i+1, j)
					e.Flops(5)
					e.WriteAt(u, x, i, j)
				}
			},
		}

		for s := 0; s < sweeps; s++ {
			ctx.Forall(rowSweep) // rows local under [block, *]
			ctx.Redistribute(u, kali.CollapsedDim(), kali.BlockDim())
			ctx.Forall(colSweep) // columns local under [*, block]
			ctx.Redistribute(u, kali.BlockDim(), kali.CollapsedDim())
		}

		// Gather to the host for printing (owners fill disjoint slots).
		ctx.Barrier()
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if u.IsLocal(i, j) {
					got[i][j] = u.Get(i, j)
				}
			}
		}
		ctx.Barrier()
	})

	fmt.Printf("ADI on a %dx%d mesh, %d alternating sweeps, 4 processors (%s)\n\n", n, n, sweeps, rep.Machine)
	fmt.Printf("u[%d,1..%d] after smoothing:", n/2, 8)
	for j := 1; j <= 8; j++ {
		fmt.Printf(" %.3f", got[n/2][j])
	}
	fmt.Println()

	builds, hits := darray.RedistBuilds()-builds0, darray.RedistHits()-hits0
	fmt.Printf("\nredistribution: %d msgs, %d bytes, %.6fs — attributed apart from the forall phases\n",
		rep.RedistMsgs, rep.RedistBytes, rep.Redist)
	fmt.Printf("remapping plans: %d built, %d cache replays (%d transposes total)\n",
		builds, hits, 2*sweeps*rep.P)
	fmt.Printf("forall phases:   inspector %.6fs, executor %.6fs, %d non-redistribution msgs\n",
		rep.Inspector, rep.Executor, rep.MsgsSent-rep.RedistMsgs)
	fmt.Println("\neach cycle after the first replays both transpose plans and both forall")
	fmt.Println("schedules from their caches; kalibench -table redist measures the same")
	fmt.Println("ping-pong with the allocation count pinned at zero.")
}
