// Loadbalance explores the paper's stated future work: "we also plan
// to look at more complex example programs, including those requiring
// dynamic load balancing."
//
// The workload is a relaxation mesh where only the first quarter of
// the rows carry active (interior) points — think of an adaptively
// refined region — so under the obvious block distribution one
// processor owns nearly all the work while the rest idle.  Kali's
// user-defined distributions (dist by a user map) let the program
// re-decompose without touching the loop body: the active rows are
// dealt evenly and the executor time drops.
//
// The gain is real but bounded, and the example prints why: the
// old_a := a copy sweep costs the same per element everywhere (it is
// already balanced), and the bulk-synchronous pipeline makes every
// processor wait for its neighbors' messages — the Amdahl terms of
// load balancing that the paper's future work would have had to face.
//
//	go run ./examples/loadbalance [-p 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"kali"
	"kali/internal/mesh"
	"kali/internal/relax"
)

func main() {
	procs := flag.Int("p", 4, "processors")
	flag.Parse()

	const nx, ny, sweeps = 32, 64, 50
	m := mesh.Rect(nx, ny)
	// Deactivate rows beyond the first quarter: count = 0 points are
	// pinned and nearly free per sweep.
	for i := 1; i <= m.N; i++ {
		if (i-1)/nx >= ny/4 {
			m.Count[i-1] = 0
		}
	}
	activeRows := ny/4 - 1 // rows 2..ny/4 (row 1 is mesh boundary)
	fmt.Printf("mesh: %dx%d, active rows: 2..%d only (%d references/sweep)\n\n",
		nx, ny, ny/4, m.TotalRefs())

	block := relax.Run(relax.Options{Mesh: m, Sweeps: sweeps, P: *procs, Params: kali.NCUBE7()})

	// User map: deal active rows evenly, idle rows proportionally.
	owners := make([]int, m.N)
	active := 0
	for r := 0; r < ny; r++ {
		rowActive := false
		for c := 0; c < nx; c++ {
			if m.Count[r*nx+c] > 0 {
				rowActive = true
				break
			}
		}
		var owner int
		if rowActive {
			owner = active * *procs / activeRows
			if owner >= *procs {
				owner = *procs - 1
			}
			active++
		} else {
			owner = r * *procs / ny
		}
		for c := 0; c < nx; c++ {
			owners[r*nx+c] = owner
		}
	}
	balanced := relax.Run(relax.Options{
		Mesh: m, Sweeps: sweeps, P: *procs, Params: kali.NCUBE7(), Owners: owners,
	})

	// Same answer either way.
	want := mesh.SeqJacobi(m, mesh.InitValues(m), sweeps)
	check := relax.Run(relax.Options{
		Mesh: m, Sweeps: sweeps, P: *procs, Params: kali.Ideal(), Owners: owners, Gather: true,
	})
	if d := mesh.MaxDelta(check.Values, want); d != 0 {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %g\n", d)
		os.Exit(1)
	}

	fmt.Printf("%-34s %10s %10s\n", "distribution", "total", "executor")
	fmt.Printf("%-34s %9.2fs %9.2fs\n", "block (one proc does ~all work)",
		block.Report.Total, block.Report.Executor)
	fmt.Printf("%-34s %9.2fs %9.2fs\n", "user map (active rows dealt)",
		balanced.Report.Total, balanced.Report.Executor)
	fmt.Printf("\nexecutor speedup from rebalancing: %.2fx\n",
		block.Report.Executor/balanced.Report.Executor)
	fmt.Println("(bounded below the raw imbalance by the already-balanced copy sweep")
	fmt.Println(" and the neighbor-wait pipeline — the loop body itself is unchanged)")
}
