// Multigrid tests the paper's §4 conjecture head-on.  The paper notes
// that algorithms needing fewer relaxation sweeps — it names multigrid
// explicitly — give the inspector less to amortize against, and
// "suspect[s] our approach would be less useful in such cases".
//
// This example solves -u” = π²·sin(πx) to a fixed tolerance three
// ways on the simulated NCUBE/7 and prints the §4 trade-off:
//
//   - plain Jacobi sweeps (many cheap, identical iterations: the
//     inspector's best case),
//   - multigrid V-cycles with compile-time analysis (the affine
//     subscripts of smoothing/restriction/prolongation all admit it),
//   - multigrid with the run-time inspector forced (what a compiler
//     without the closed-form path would emit).
//
// The suspicion is confirmed and sharpened: run-time analysis burdens
// the fast algorithm with schedule-building (each level's loops pay
// the expensive global combine, and few V-cycles amortize it), but the
// cure is not "avoid fast algorithms" — it is the compile-time
// analysis the paper develops in [3], which makes multigrid's schedule
// cost negligible while it solves the problem orders of magnitude
// faster than Jacobi.
//
//	go run ./examples/multigrid [-depth 7] [-p 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"kali"
	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/forall"
	"kali/internal/mg"
)

const tol = 1e-6

func main() {
	depth := flag.Int("depth", 7, "fine grid has 2^depth - 1 points")
	procs := flag.Int("p", 8, "processors")
	flag.Parse()

	n := 1<<uint(*depth) - 1
	fmt.Printf("-u'' = π²sin(πx) on %d points, residual tol %.0e, %d processors (NCUBE/7)\n\n", n, tol, *procs)
	fmt.Printf("%-34s %8s %10s %10s %10s %9s\n",
		"method", "iters", "total", "executor", "inspector", "overhead")

	iters, rep := runJacobi(n, *procs)
	fmt.Printf("%-34s %8d %9.2fs %9.2fs %9.2fs %8.1f%%\n",
		"jacobi sweeps (compile-time)", iters,
		rep.Total, rep.Executor, rep.Inspector, rep.OverheadPct())

	for _, force := range []bool{false, true} {
		cycles, mrep := runMultigrid(*depth, *procs, force)
		name := "multigrid (compile-time)"
		if force {
			name = "multigrid (run-time inspector)"
		}
		fmt.Printf("%-34s %8d %9.2fs %9.2fs %9.2fs %8.1f%%\n",
			name, cycles, mrep.Total, mrep.Executor, mrep.Inspector, mrep.OverheadPct())
	}

	fmt.Println("\nthe §4 suspicion holds for run-time analysis: a fast algorithm's few,")
	fmt.Println("varied loops leave the inspector nothing to amortize against.  the cure")
	fmt.Println("is the compile-time path — every multigrid subscript is affine.")
}

// runJacobi sweeps until the true residual max-norm is below tol.
func runJacobi(n, procs int) (int, core.Report) {
	iters := 0
	rep := core.Run(core.Config{P: procs, Params: kali.NCUBE7()}, func(ctx *core.Context) {
		h := 1.0 / float64(n+1)
		u := ctx.BlockArray("u", n)
		f := ctx.BlockArray("f", n)
		r := ctx.BlockArray("r", n)
		f.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			f.Set1(i, math.Pi*math.Pi*math.Sin(math.Pi*float64(i)*h))
		})
		guardedRead := func(e *forall.Env, i int) (float64, float64) {
			left, right := 0.0, 0.0
			if i > 1 {
				left = e.Read(u, i-1)
			}
			if i < n {
				right = e.Read(u, i+1)
			}
			return left, right
		}
		stencil := []forall.ReadSpec{
			{Array: u, Affine: &analysis.Affine{A: 1, C: -1}},
			{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
			{Array: f, Affine: &analysis.Identity},
		}
		sweep := &forall.Loop{
			Name: "jacobi", Lo: 1, Hi: n,
			On: u, OnF: analysis.Identity, Reads: stencil,
			Body: func(i int, e *forall.Env) {
				left, right := guardedRead(e, i)
				e.Flops(5)
				e.Write(u, i, 0.5*(left+right+h*h*e.Read(f, i)))
			},
		}
		residual := &forall.Loop{
			Name: "jacobi.resid", Lo: 1, Hi: n,
			On: r, OnF: analysis.Identity,
			Reads: append([]forall.ReadSpec{{Array: u, Affine: &analysis.Identity}}, stencil...),
			Body: func(i int, e *forall.Env) {
				left, right := guardedRead(e, i)
				e.Flops(6)
				e.Write(r, i, e.Read(f, i)-(2*e.Read(u, i)-left-right)/(h*h))
			},
		}
		k := 0
		for k < 500000 {
			ctx.Forall(sweep)
			k++
			if k%1000 == 0 {
				ctx.Forall(residual)
				local := 0.0
				r.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
					if v := math.Abs(r.Get1(i)); v > local {
						local = v
					}
				})
				if ctx.AllReduce(local, "max") < tol {
					break
				}
			}
		}
		if ctx.ID() == 0 {
			iters = k
		}
	})
	return iters, rep
}

// runMultigrid V-cycles until converged.
func runMultigrid(depth, procs int, force bool) (int, core.Report) {
	cycles := 0
	rep := core.Run(core.Config{P: procs, Params: kali.NCUBE7()}, func(ctx *core.Context) {
		ctx.Eng.ForceInspector = force
		s := mg.New(ctx, depth)
		s.SetRHS(func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) })
		c := 0
		for s.ResidualNorm() > tol && c < 60 {
			s.VCycle()
			c++
		}
		if ctx.ID() == 0 {
			cycles = c
		}
	})
	return cycles, rep
}
