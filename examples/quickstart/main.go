// Quickstart: the paper's Figure 1 in ten lines of API.
//
// A block-distributed array A of N reals lives across 4 simulated
// processors; the forall shifts it left by one using the global name
// space — the boundary element each processor needs from its neighbor
// is fetched by the runtime, not by hand-written sends and receives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"kali"
)

func main() {
	const N = 16

	rep := kali.Run(kali.Config{P: 4, Params: kali.NCUBE7()}, func(ctx *kali.Context) {
		// var A : array[1..N] of real dist by [block] on Procs;
		a := ctx.BlockArray("A", N)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			a.Set1(i, float64(i))
		})

		// forall i in 1..N-1 on A[i].loc do A[i] := A[i+1]; end;
		ctx.Forall(&kali.Loop{
			Name: "shift", Lo: 1, Hi: N - 1,
			On: a, OnF: kali.Identity,
			Reads: []kali.ReadSpec{{Array: a, Affine: &kali.Affine{A: 1, C: 1}}},
			Body: func(i int, e *kali.Env) {
				e.Write(a, i, e.Read(a, i+1))
			},
		})

		// Each processor prints its share — note the global indices.
		for p := 0; p < ctx.P(); p++ {
			ctx.Barrier()
			if p != ctx.ID() {
				continue
			}
			fmt.Printf("processor %d holds:", ctx.ID())
			a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
				fmt.Printf(" A[%d]=%g", i, a.Get1(i))
			})
			fmt.Println()
		}
	})

	fmt.Printf("\nsimulated %s time: %.6fs (inspector %.6fs, executor %.6fs)\n",
		rep.Machine, rep.Total, rep.Inspector, rep.Executor)
	fmt.Println("the compile-time analysis found the one boundary message per processor pair;")
	fmt.Println("run cmd/kaliinspect to see the exec/in/out sets it derived.")
}
