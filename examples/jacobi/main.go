// Jacobi reproduces the paper's measured experiment end to end: the
// Figure 4 relaxation program on a rectangular mesh with the standard
// five-point Laplacian, run on both simulated machines, validated
// against a sequential solver, with the paper-style timing breakdown.
//
//	go run ./examples/jacobi [-side 128] [-sweeps 100] [-p 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"kali"
	"kali/internal/mesh"
	"kali/internal/relax"
)

func main() {
	side := flag.Int("side", 64, "mesh side (side x side nodes)")
	sweeps := flag.Int("sweeps", 100, "Jacobi sweeps")
	procs := flag.Int("p", 16, "processors")
	flag.Parse()

	m := mesh.Rect(*side, *side)
	fmt.Printf("mesh: %s (%d nodes, %d references per sweep)\n\n",
		m.Desc, m.N, m.TotalRefs())

	// Validate once on the ideal machine against the sequential oracle.
	want := mesh.SeqJacobi(m, mesh.InitValues(m), *sweeps)
	check := relax.Run(relax.Options{
		Mesh: m, Sweeps: *sweeps, P: *procs, Params: kali.Ideal(), Gather: true,
	})
	if d := mesh.MaxDelta(check.Values, want); d != 0 {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: distributed result differs by %g\n", d)
		os.Exit(1)
	}
	fmt.Printf("validation: distributed == sequential over %d sweeps ✓\n\n", *sweeps)

	fmt.Printf("%-8s %8s %10s %10s %10s %9s\n",
		"machine", "procs", "total", "executor", "inspector", "overhead")
	for _, params := range []kali.Params{kali.NCUBE7(), kali.IPSC2()} {
		r := relax.Run(relax.Options{Mesh: m, Sweeps: *sweeps, P: *procs, Params: params})
		fmt.Printf("%-8s %8d %9.2fs %9.2fs %9.2fs %8.1f%%\n",
			params.Name, *procs, r.Report.Total, r.Report.Executor,
			r.Report.Inspector, r.Report.OverheadPct())
	}
	fmt.Println("\nthe inspector runs once; its schedule is reused by every sweep (paper §3.2).")
}
