// Package kali is the public API of this reproduction of
//
//	C. Koelbel, P. Mehrotra, J. Van Rosendale,
//	"Supporting Shared Data Structures on Distributed Memory
//	Architectures", PPoPP 1990 (ICASE Report 90-7).
//
// Kali provides a global name space over a (simulated) distributed-
// memory machine: programs declare processor arrays, distribute data
// arrays over them, and express computation as forall loops that read
// and write global indices directly.  Each node runs a per-node
// forall.Engine whose Run (rank-1 Loop) and Run2 (rank-2 Loop2)
// methods turn a loop into SPMD message passing through one pipeline:
// a per-name schedule cache (paper §3.2), a content-addressed store
// that lets identically-shaped loops share one schedule, closed-form
// compile-time analysis when subscripts are affine (§3.1), and the
// run-time inspector/executor (§3.3) for data-dependent subscripts.
// Replaying a cached schedule is allocation-free: payloads are packed
// with bulk per-range copies, coalesced into one message per
// processor pair, and recycled through a buffer pool.
//
// A minimal program — Context.Forall and Context.Forall2 dispatch to
// the node's Engine (also reachable as ctx.Eng for cache control,
// Engine.Schedule inspection, and the NoCache/ForceInspector/
// NoCombine ablation switches):
//
//	rep := kali.Run(kali.Config{P: 4, Params: kali.NCUBE7()}, func(ctx *kali.Context) {
//	    a := ctx.BlockArray("A", 100)
//	    a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)) })
//	    ctx.Forall(&kali.Loop{
//	        Name: "shift", Lo: 1, Hi: 99,
//	        On: a, OnF: kali.Identity,
//	        Reads: []kali.ReadSpec{{Array: a, Affine: &kali.Affine{A: 1, C: 1}}},
//	        Body: func(i int, e *kali.Env) { e.Write(a, i, e.Read(a, i+1)) },
//	    })
//	})
//	fmt.Println(rep)
//
// Rank-2 loops run the same way over 2-D processor grids:
//
//	ctx.Forall2(&kali.Loop2{
//	    Name: "relax", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
//	    On:    a, // rank-2 array over a 2-D grid; OnF2 defaults to Identity2
//	    Reads: []kali.ReadSpec{{Array: old, Affine2: &kali.Affine2{...}}},
//	    Body:  func(i, j int, e *kali.Env) { ... },
//	})
//
// Distributions are dynamic (paper §2.4): Context.Redistribute rebinds
// an array to a new dist clause mid-run with a schedule-driven
// all-to-all (examples/adi alternates row and column layouts this
// way), and the engine's schedule caches key on distribution
// fingerprints so a remapped array can never replay a stale schedule.
//
// See docs/ARCHITECTURE.md for the paper-to-code map.  The deeper
// layers are importable directly for advanced use:
// kali/internal/{machine,dist,darray,forall,analysis,inspector-side
// pieces in comm and crystal}.
package kali

import (
	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
)

// Config selects the machine a program runs on.
type Config = core.Config

// Context is one node's view of a running program.
type Context = core.Context

// Report is the aggregated timing result of a run.
type Report = core.Report

// Loop is a forall statement.
type Loop = forall.Loop

// Loop2 is a two-dimensional forall over a rank-2 processor grid.
type Loop2 = forall.Loop2

// Env is the loop body's window onto the global name space.
type Env = forall.Env

// ReadSpec declares a distributed-array reference of a loop body.
type ReadSpec = forall.ReadSpec

// Dep names a pattern-driving array for schedule-cache invalidation.
type Dep = forall.Dep

// Affine is the subscript form a*i + c.
type Affine = analysis.Affine

// Affine2 is the rank-2 subscript pair of a Loop2 read.
type Affine2 = analysis.Affine2

// Array is a distributed array of float64.
type Array = darray.Array

// IntArray is a distributed array of int.
type IntArray = darray.IntArray

// DimSpec is one entry of a dist clause.
type DimSpec = dist.DimSpec

// Params is a machine cost model.
type Params = machine.Params

// Identity is the subscript i.
var Identity = analysis.Identity

// Identity2 is the subscript pair (i, j).
var Identity2 = analysis.Identity2

// Run executes an SPMD program on a fresh simulated machine.
func Run(cfg Config, prog func(ctx *Context)) Report { return core.Run(cfg, prog) }

// NCUBE7 returns the cost model of the paper's 128-node NCUBE/7.
func NCUBE7() Params { return machine.NCUBE7() }

// IPSC2 returns the cost model of the paper's 32-node Intel iPSC/2.
func IPSC2() Params { return machine.IPSC2() }

// Ideal returns a zero-cost machine for functional testing.
func Ideal() Params { return machine.Ideal() }

// MachineByName resolves "ncube", "ipsc" or "ideal".
func MachineByName(name string) (Params, bool) { return machine.ByName(name) }

// Dist-clause constructors, mirroring Kali's syntax.
var (
	// BlockDim is "block".
	BlockDim = dist.BlockDim
	// CyclicDim is "cyclic".
	CyclicDim = dist.CyclicDim
	// BlockCyclicDim is "block_cyclic(b)".
	BlockCyclicDim = dist.BlockCyclicDim
	// CollapsedDim is "*" (dimension not distributed).
	CollapsedDim = dist.CollapsedDim
	// MapDim is a user-defined owner table.
	MapDim = dist.MapDim
)
