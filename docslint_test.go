package kali

// Documentation lint, run by CI alongside the unit tests: the godoc
// audit (every internal package must carry a package comment citing
// the paper section it implements) and a link checker over the
// markdown docs, so README/docs references cannot rot silently.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// packageDirs returns every directory under root (and root itself)
// containing non-test .go files.
func packageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Never skip the walk root itself: its name is ".", which the
			// dot-directory filter would otherwise match and abort on.
			if name := d.Name(); path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// packageDoc returns the package comment of the package in dir (the
// concatenation is unnecessary: godoc uses one file's doc; we accept
// the first non-empty one).
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return f.Doc.Text()
		}
	}
	return ""
}

// TestPackageDocsCitePaper: every package has a package comment, and
// every internal package's comment cites the paper (a section sign, a
// figure, or the word "paper") — the map a re-anchor reviewer needs.
func TestPackageDocsCitePaper(t *testing.T) {
	cites := regexp.MustCompile(`§|Figure|Fig\.|paper`)
	dirs := packageDirs(t)
	// Guard against the walk silently finding nothing (root package +
	// internal + cmd should be well past this floor).
	if len(dirs) < 15 {
		t.Fatalf("package walk found only %d directories (%v) — lint would be vacuous", len(dirs), dirs)
	}
	for _, dir := range dirs {
		doc := packageDoc(t, dir)
		if doc == "" {
			t.Errorf("%s: no package comment", dir)
			continue
		}
		if strings.HasPrefix(dir, "internal") && !cites.MatchString(doc) {
			t.Errorf("%s: package comment does not cite the paper (want §N, Figure N, or 'paper')", dir)
		}
	}
}

// mdLink matches markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks: every relative link in README.md and docs/*.md
// resolves to an existing file or directory.
func TestMarkdownLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("expected README.md plus at least two docs/*.md files, found %v", files)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}
