module kali

go 1.24
