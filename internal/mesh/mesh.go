// Package mesh generates the relaxation workloads of the paper's
// evaluation: the adjacency-list representation of Figure 4
// (count/adj/coef arrays), a rectangular mesh with the standard
// five-point Laplacian (the measured test problem), an unstructured
// mesh with ~6 average connectivity (the paper's motivating case), and
// a sequential reference Jacobi solver used to validate the
// distributed results.
//
// Node numbering is 1-based, matching Kali arrays.  Boundary nodes
// carry count = 0 and keep their values (Dirichlet conditions) —
// exactly the paper's "if count[i] > 0 then a[i] := x" convention.
package mesh

import (
	"fmt"
	"math/rand"
)

// Mesh is the paper's mesh representation: for node i (1-based),
// neighbors are Adj[(i-1)*MaxDeg + k] with weights
// Coef[(i-1)*MaxDeg + k] for k < Count[i-1].
type Mesh struct {
	N      int
	MaxDeg int
	Count  []int     // length N
	Adj    []int     // length N*MaxDeg, 1-based node ids (0 = unused slot)
	Coef   []float64 // length N*MaxDeg

	// Desc names the mesh in reports, e.g. "rect 128x128".
	Desc string
}

// Degree returns Count for node i (1-based).
func (m *Mesh) Degree(i int) int { return m.Count[i-1] }

// Neighbor returns the k-th neighbor (0-based k) of node i.
func (m *Mesh) Neighbor(i, k int) int { return m.Adj[(i-1)*m.MaxDeg+k] }

// Weight returns the k-th coefficient of node i.
func (m *Mesh) Weight(i, k int) float64 { return m.Coef[(i-1)*m.MaxDeg+k] }

// AvgDegree returns the mean connectivity over interior nodes.
func (m *Mesh) AvgDegree() float64 {
	sum, cnt := 0, 0
	for _, c := range m.Count {
		if c > 0 {
			sum += c
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// TotalRefs returns Σ count[i] — the number of references the
// inspector examines per sweep.
func (m *Mesh) TotalRefs() int {
	sum := 0
	for _, c := range m.Count {
		sum += c
	}
	return sum
}

// Rect builds an nx×ny rectangular mesh with the standard five-point
// Laplacian: interior nodes average their four neighbors (coef 1/4),
// edge nodes are boundary (count 0, value pinned).  Node (r,c) has id
// (r-1)*nx + c, row-major — so a block distribution assigns contiguous
// row bands to processors, the "obvious" static decomposition the
// paper uses.
func Rect(nx, ny int) *Mesh {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("mesh: Rect needs at least 2x2, got %dx%d", nx, ny))
	}
	m := &Mesh{
		N:      nx * ny,
		MaxDeg: 4,
		Count:  make([]int, nx*ny),
		Adj:    make([]int, nx*ny*4),
		Coef:   make([]float64, nx*ny*4),
		Desc:   fmt.Sprintf("rect %dx%d", nx, ny),
	}
	id := func(r, c int) int { return (r-1)*nx + c }
	for r := 1; r <= ny; r++ {
		for c := 1; c <= nx; c++ {
			i := id(r, c)
			if r == 1 || r == ny || c == 1 || c == nx {
				continue // boundary: count stays 0
			}
			base := (i - 1) * 4
			m.Adj[base+0] = id(r-1, c)
			m.Adj[base+1] = id(r, c-1)
			m.Adj[base+2] = id(r, c+1)
			m.Adj[base+3] = id(r+1, c)
			for k := 0; k < 4; k++ {
				m.Coef[base+k] = 0.25
			}
			m.Count[i-1] = 4
		}
	}
	return m
}

// Unstructured builds a synthetic unstructured mesh: a jittered
// triangular (hexagonal-connectivity) grid where interior nodes have
// six neighbors on average — the paper notes "nodes in a two
// dimensional unstructured grid have six neighbors, on average".
// When shuffle is true the node numbering is randomly permuted
// (seeded), destroying the banded structure a row-major numbering
// gives and producing the scattered communication pattern of a truly
// irregular mesh.
func Unstructured(nx, ny int, shuffle bool, seed int64) *Mesh {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("mesh: Unstructured needs at least 2x2, got %dx%d", nx, ny))
	}
	n := nx * ny
	perm := make([]int, n+1) // perm[old] = new, 1-based
	for i := 1; i <= n; i++ {
		perm[i] = i
	}
	if shuffle {
		r := rand.New(rand.NewSource(seed))
		for i := n; i > 1; i-- {
			j := r.Intn(i) + 1
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	m := &Mesh{
		N:      n,
		MaxDeg: 6,
		Count:  make([]int, n),
		Adj:    make([]int, n*6),
		Coef:   make([]float64, n*6),
		Desc:   fmt.Sprintf("unstructured %dx%d shuffle=%v", nx, ny, shuffle),
	}
	id := func(r, c int) int { return perm[(r-1)*nx+c] }
	for r := 1; r <= ny; r++ {
		for c := 1; c <= nx; c++ {
			i := id(r, c)
			if r == 1 || r == ny || c == 1 || c == nx {
				continue
			}
			// Triangular connectivity: W, E, N, S, NE, SW.
			nbrs := []int{
				id(r, c-1), id(r, c+1),
				id(r-1, c), id(r+1, c),
				id(r-1, c+1), id(r+1, c-1),
			}
			base := (i - 1) * 6
			for k, nb := range nbrs {
				m.Adj[base+k] = nb
				m.Coef[base+k] = 1.0 / 6.0
			}
			m.Count[i-1] = 6
		}
	}
	return m
}

// InitValues returns the paper-style initial state: boundary nodes get
// a deterministic nonzero profile, interior nodes start at zero.  For
// shuffled meshes the profile follows the *original* grid geometry, so
// results are permutation-consistent.
func InitValues(m *Mesh) []float64 {
	a := make([]float64, m.N)
	for i := 1; i <= m.N; i++ {
		if m.Count[i-1] == 0 {
			a[i-1] = 1.0 + float64(i%7)
		}
	}
	return a
}

// SeqJacobi runs `sweeps` Jacobi sweeps sequentially and returns the
// final values; it is the correctness oracle for the distributed
// implementations.  a0 is not modified.
func SeqJacobi(m *Mesh, a0 []float64, sweeps int) []float64 {
	if len(a0) != m.N {
		panic(fmt.Sprintf("mesh: SeqJacobi got %d values for %d nodes", len(a0), m.N))
	}
	a := append([]float64(nil), a0...)
	old := make([]float64, m.N)
	for s := 0; s < sweeps; s++ {
		copy(old, a)
		for i := 1; i <= m.N; i++ {
			cnt := m.Count[i-1]
			if cnt == 0 {
				continue
			}
			x := 0.0
			base := (i - 1) * m.MaxDeg
			for k := 0; k < cnt; k++ {
				x += m.Coef[base+k] * old[m.Adj[base+k]-1]
			}
			a[i-1] = x
		}
	}
	return a
}

// MaxDelta returns the largest |a[i]-b[i]| — used both for convergence
// checks and for comparing distributed against sequential results.
func MaxDelta(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mesh: MaxDelta length mismatch")
	}
	max := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
