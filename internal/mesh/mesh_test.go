package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	m := Rect(4, 3) // 4 wide, 3 tall: only (2,2) and (2,3) are interior
	if m.N != 12 || m.MaxDeg != 4 {
		t.Fatalf("N=%d MaxDeg=%d", m.N, m.MaxDeg)
	}
	interior := 0
	for i := 1; i <= m.N; i++ {
		if m.Degree(i) > 0 {
			interior++
			if m.Degree(i) != 4 {
				t.Fatalf("interior node %d has degree %d", i, m.Degree(i))
			}
		}
	}
	if interior != 2 {
		t.Fatalf("interior count = %d, want 2", interior)
	}
	// Node (2,2) has id 6; neighbors are 2 (N), 5 (W), 7 (E), 10 (S).
	i := 6
	got := map[int]bool{}
	for k := 0; k < 4; k++ {
		got[m.Neighbor(i, k)] = true
		if m.Weight(i, k) != 0.25 {
			t.Fatalf("weight = %g", m.Weight(i, k))
		}
	}
	for _, want := range []int{2, 5, 7, 10} {
		if !got[want] {
			t.Fatalf("node 6 neighbors = %v, missing %d", got, want)
		}
	}
}

func TestRectInteriorCount(t *testing.T) {
	m := Rect(10, 8)
	interior := 0
	for _, c := range m.Count {
		if c > 0 {
			interior++
		}
	}
	if interior != 8*6 {
		t.Fatalf("interior = %d, want 48", interior)
	}
	if got := m.TotalRefs(); got != 48*4 {
		t.Fatalf("TotalRefs = %d", got)
	}
	if got := m.AvgDegree(); got != 4 {
		t.Fatalf("AvgDegree = %g", got)
	}
}

func TestRectPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Rect(1, 5) },
		func() { Unstructured(5, 1, false, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUnstructuredConnectivity(t *testing.T) {
	m := Unstructured(16, 16, false, 0)
	if got := m.AvgDegree(); got != 6 {
		t.Fatalf("interior degree = %g, want 6", got)
	}
	// Weights of interior nodes sum to 1 (averaging scheme).
	for i := 1; i <= m.N; i++ {
		if m.Degree(i) == 0 {
			continue
		}
		sum := 0.0
		for k := 0; k < m.Degree(i); k++ {
			sum += m.Weight(i, k)
			nb := m.Neighbor(i, k)
			if nb < 1 || nb > m.N {
				t.Fatalf("node %d neighbor %d out of range", i, nb)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d weights sum to %g", i, sum)
		}
	}
}

// TestUnstructuredShuffleIsRelabeling: the shuffled mesh is the same
// graph under a permutation — Jacobi results must agree after
// unpermuting.  We verify via degree multiset and solution agreement.
func TestUnstructuredShuffleIsRelabeling(t *testing.T) {
	plain := Unstructured(8, 8, false, 0)
	shuf := Unstructured(8, 8, true, 123)
	degCount := func(m *Mesh) map[int]int {
		out := map[int]int{}
		for _, c := range m.Count {
			out[c]++
		}
		return out
	}
	dp, ds := degCount(plain), degCount(shuf)
	for k, v := range dp {
		if ds[k] != v {
			t.Fatalf("degree multiset differs: %v vs %v", dp, ds)
		}
	}
}

func TestInitValues(t *testing.T) {
	m := Rect(6, 6)
	a := InitValues(m)
	for i := 1; i <= m.N; i++ {
		if m.Degree(i) == 0 && a[i-1] == 0 {
			t.Fatalf("boundary node %d not initialized", i)
		}
		if m.Degree(i) > 0 && a[i-1] != 0 {
			t.Fatalf("interior node %d not zero", i)
		}
	}
}

func TestSeqJacobiOneSweep(t *testing.T) {
	m := Rect(3, 3) // single interior node 5, neighbors 2,4,6,8
	a0 := make([]float64, 9)
	a0[1], a0[3], a0[5], a0[7] = 4, 8, 12, 16 // nodes 2,4,6,8
	a := SeqJacobi(m, a0, 1)
	if a[4] != 10 {
		t.Fatalf("center after one sweep = %g, want 10", a[4])
	}
	// Boundary values unchanged.
	if a[1] != 4 || a[7] != 16 {
		t.Fatal("boundary changed")
	}
	// Input not modified.
	if a0[4] != 0 {
		t.Fatal("input slice modified")
	}
}

// TestSeqJacobiConverges: for the Laplace problem the interior
// approaches a harmonic interpolation; successive sweeps contract.
func TestSeqJacobiConverges(t *testing.T) {
	m := Rect(12, 12)
	a0 := InitValues(m)
	a100 := SeqJacobi(m, a0, 100)
	a101 := SeqJacobi(m, a0, 101)
	if d := MaxDelta(a100, a101); d > 1e-2 {
		t.Fatalf("not contracting: delta = %g", d)
	}
	a400 := SeqJacobi(m, a0, 400)
	a401 := SeqJacobi(m, a0, 401)
	if d := MaxDelta(a400, a401); d > 1e-4 {
		t.Fatalf("slow contraction: delta = %g", d)
	}
	// Maximum principle: interior values bounded by boundary extremes.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 1; i <= m.N; i++ {
		if m.Degree(i) == 0 {
			if a400[i-1] < lo {
				lo = a400[i-1]
			}
			if a400[i-1] > hi {
				hi = a400[i-1]
			}
		}
	}
	for i := 1; i <= m.N; i++ {
		if m.Degree(i) > 0 && (a400[i-1] < lo-1e-9 || a400[i-1] > hi+1e-9) {
			t.Fatalf("maximum principle violated at %d: %g not in [%g,%g]", i, a400[i-1], lo, hi)
		}
	}
}

func TestSeqJacobiPanics(t *testing.T) {
	m := Rect(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeqJacobi(m, make([]float64, 5), 1)
}

func TestMaxDelta(t *testing.T) {
	if MaxDelta([]float64{1, 5, 3}, []float64{1, 2, 4}) != 3 {
		t.Fatal("MaxDelta wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on length mismatch")
			}
		}()
		MaxDelta([]float64{1}, []float64{1, 2})
	}()
}

// TestQuickJacobiLinearity: Jacobi is a linear operator — sweeping a
// scaled initial state scales the result.
func TestQuickJacobiLinearity(t *testing.T) {
	m := Rect(6, 5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a0 := make([]float64, m.N)
		for i := range a0 {
			a0[i] = r.Float64()*4 - 2
		}
		k := 1 + r.Float64()*3
		scaled := make([]float64, m.N)
		for i := range a0 {
			scaled[i] = k * a0[i]
		}
		x := SeqJacobi(m, a0, 5)
		y := SeqJacobi(m, scaled, 5)
		for i := range x {
			if math.Abs(y[i]-k*x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSymmetricAdjacency: in both generators, if j is a neighbor
// of i then i is a neighbor of j (for interior pairs).
func TestQuickSymmetricAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 3+r.Intn(8), 3+r.Intn(8)
		var m *Mesh
		if r.Intn(2) == 0 {
			m = Rect(nx, ny)
		} else {
			m = Unstructured(nx, ny, r.Intn(2) == 1, seed)
		}
		for i := 1; i <= m.N; i++ {
			for k := 0; k < m.Degree(i); k++ {
				j := m.Neighbor(i, k)
				if m.Degree(j) == 0 {
					continue // boundary nodes list no neighbors
				}
				found := false
				for l := 0; l < m.Degree(j); l++ {
					if m.Neighbor(j, l) == i {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
