package comm

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Payload is a recyclable message body: the executor packs a loop's
// outgoing values into Vals, ships the *Payload through the simulated
// machine, and the receiver returns it to the pool after unpacking.
// Messages carry the pointer (not the slice) so that handing it to the
// machine's untyped payload field never boxes a slice header.
type Payload struct {
	Vals []float64
}

// BufPool is a free list of message payloads shared by the sending and
// receiving ends of a machine's executors (and by the redistribution
// all-to-all, which also draws array partitions from it).  Unlike
// sync.Pool it never drops buffers under GC pressure, so once a
// communication pattern has warmed the list, cached replays allocate
// nothing: every Get is satisfied by a buffer some receiver Put back.
//
// Buffers are segregated into power-of-two capacity classes, with Get
// falling back to the smallest sufficient larger class when its own is
// empty.  Exact-class reuse keeps mixed-size patterns (small halo
// payloads alongside whole array partitions) from repeatedly growing
// the same buffers: a request only allocates when no pooled buffer of
// sufficient capacity exists at all, i.e. at genuine peak demand.
//
// The pool must be shared machine-wide (not per node): a buffer is
// acquired by the sender but released by the receiver, so per-node
// free lists would drain on one side and pile up on the other.
// Traffic counters (gets/puts/news) are atomics, not fields under mu:
// the pool is shared machine-wide and multi-tenant servers read its
// stats while node goroutines are mid-execution, so stats reads must
// not contend with (or race against) the hot Get/Put paths.
type BufPool struct {
	mu       sync.Mutex
	free     map[int][]*Payload // capacity class (power of two) -> idle buffers
	maxClass int

	gets atomic.Int64 // buffers handed out
	puts atomic.Int64 // buffers returned
	news atomic.Int64 // Gets served by a fresh allocation (peak demand)
}

// PoolStats is a point-in-time snapshot of pool traffic, safe to take
// while node programs are running.  News counts the Gets no pooled
// buffer could satisfy — a warmed pattern replays with News flat while
// Gets keeps climbing.  Idle is the current free-list population.
type PoolStats struct {
	Gets int64
	Puts int64
	News int64
	Idle int
}

// classFor returns the smallest power of two >= n (n >= 1 assumed;
// class 1 covers n <= 1).
func classFor(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Get returns a payload with len(Vals) == n, reusing a pooled buffer
// of sufficient capacity when one is available.  Freshly allocated
// buffers are sized to their class, so they serve every later request
// of the same class without growing.
func (p *BufPool) Get(n int) *Payload {
	cls := classFor(n)
	p.mu.Lock()
	var b *Payload
	for c := cls; c <= p.maxClass && b == nil; c <<= 1 {
		if list := p.free[c]; len(list) > 0 {
			b = list[len(list)-1]
			list[len(list)-1] = nil
			p.free[c] = list[:len(list)-1]
		}
	}
	p.mu.Unlock()
	p.gets.Add(1)
	if b == nil {
		p.news.Add(1)
		return &Payload{Vals: make([]float64, n, cls)}
	}
	b.Vals = b.Vals[:n]
	return b
}

// Put returns a payload to the free list for reuse.  The caller must
// not touch b afterwards.
func (p *BufPool) Put(b *Payload) {
	if b == nil {
		return
	}
	p.puts.Add(1)
	// File under the largest class the capacity fully covers, so every
	// buffer taken from a class list satisfies that class's requests.
	cls := 1
	if c := cap(b.Vals); c > 1 {
		cls = 1 << (bits.Len(uint(c)) - 1)
	}
	p.mu.Lock()
	if p.free == nil {
		p.free = map[int][]*Payload{}
	}
	p.free[cls] = append(p.free[cls], b)
	if cls > p.maxClass {
		p.maxClass = cls
	}
	p.mu.Unlock()
}

// Len returns the number of idle buffers, for tests.
func (p *BufPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}

// Stats snapshots the traffic counters.  It is safe to call from any
// goroutine at any time, including while nodes are executing: the
// counters are atomics and the idle count takes the free-list mutex.
// The three counters are read individually, so a snapshot taken
// mid-execution is not a consistent cut — but each counter is exact.
func (p *BufPool) Stats() PoolStats {
	return PoolStats{
		Gets: p.gets.Load(),
		Puts: p.puts.Load(),
		News: p.news.Load(),
		Idle: p.Len(),
	}
}
