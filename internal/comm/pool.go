package comm

import "sync"

// Payload is a recyclable message body: the executor packs a loop's
// outgoing values into Vals, ships the *Payload through the simulated
// machine, and the receiver returns it to the pool after unpacking.
// Messages carry the pointer (not the slice) so that handing it to the
// machine's untyped payload field never boxes a slice header.
type Payload struct {
	Vals []float64
}

// BufPool is a free list of message payloads shared by the sending and
// receiving ends of a machine's executors.  Unlike sync.Pool it never
// drops buffers under GC pressure, so once a communication pattern has
// warmed the list, cached schedule replays allocate nothing: every
// Get is satisfied by a buffer some receiver Put back after unpacking.
//
// The pool must be shared machine-wide (not per node): a buffer is
// acquired by the sender but released by the receiver, so per-node
// free lists would drain on one side and pile up on the other.
type BufPool struct {
	mu   sync.Mutex
	free []*Payload
}

// Get returns a payload with len(Vals) == n, reusing a pooled buffer
// when one is available (growing its capacity if needed).
func (p *BufPool) Get(n int) *Payload {
	p.mu.Lock()
	var b *Payload
	if k := len(p.free); k > 0 {
		b = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
	}
	p.mu.Unlock()
	if b == nil {
		b = &Payload{}
	}
	if cap(b.Vals) < n {
		b.Vals = make([]float64, n)
	}
	b.Vals = b.Vals[:n]
	return b
}

// Put returns a payload to the free list for reuse.  The caller must
// not touch b afterwards.
func (p *BufPool) Put(b *Payload) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Len returns the number of idle buffers, for tests.
func (p *BufPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
