// Package comm implements Kali's communication-set representation.
//
// The paper (Figure 5) stores the in(p,q) and out(p,q) sets as
// dynamically-allocated sorted arrays of records, each describing one
// contiguous block of a distributed array held on one processor:
//
//	record
//	    from_proc: integer;  -- sending processor
//	    to_proc:   integer;  -- receiving processor
//	    low:       integer;  -- lower bound of range
//	    high:      integer;  -- upper bound of range
//	    buffer:    ^real;    -- pointer to message buffer
//	end;
//
// The in set is sorted on from_proc with low as the secondary key;
// adjacent ranges are combined to minimize the number of records; an
// individual element is then found by binary search in O(log r) time.
// This package reproduces that representation (the buffer pointer
// becomes an offset into a receive buffer) and the derived operations:
// building, merging, searching, and packing/unpacking message data.
// Pack/unpack are vectorized: every record covers a contiguous block
// whose owner stores it densely, so PackInto and Unpack move one whole
// range per copy instead of gathering element by element, and a
// machine-wide BufPool recycles message payloads so that replaying a
// cached schedule allocates nothing.
package comm

import (
	"fmt"
	"sort"
)

// Range is one record of a communication set: the contiguous block of
// global indices [Low, High] of some array, stored on FromProc and
// needed by ToProc.  Buf is the offset of the block's first element in
// the receiver's communication buffer (only meaningful for in sets).
type Range struct {
	FromProc int
	ToProc   int
	Low      int
	High     int
	Buf      int
}

// Len returns the number of elements covered by the record.
func (r Range) Len() int { return r.High - r.Low + 1 }

func (r Range) String() string {
	return fmt.Sprintf("{%d->%d [%d..%d] @%d}", r.FromProc, r.ToProc, r.Low, r.High, r.Buf)
}

// InSet is a processor's receive schedule: for each element it needs
// from another processor, which processor sends it and where it lands
// in the local communication buffer.
type InSet struct {
	Ranges []Range // sorted by (FromProc, Low), adjacent ranges merged
	Total  int     // total number of elements received
}

// OutSet is a processor's send schedule: which of its local elements go
// to which processor.  Sorted by (ToProc, Low).
type OutSet struct {
	Ranges []Range
	Total  int
}

// Builder accumulates nonlocal references during the inspector pass and
// produces the normalized InSet.  Inserting the same element twice is
// harmless (it is recorded once), matching the paper's set semantics.
type Builder struct {
	me    int
	elems map[int]int // global index -> home processor
}

// NewBuilder creates a Builder for receiving processor me.
func NewBuilder(me int) *Builder {
	return &Builder{me: me, elems: map[int]int{}}
}

// Add records that global element g, stored on processor home, is
// needed locally.  It returns true when the element was not already
// recorded (so callers can charge list-insert cost only for new
// entries, as the paper's implementation does).
func (b *Builder) Add(g, home int) bool {
	if home == b.me {
		panic("comm: Add of a local element")
	}
	if old, ok := b.elems[g]; ok {
		if old != home {
			panic(fmt.Sprintf("comm: element %d recorded with two homes %d and %d", g, old, home))
		}
		return false
	}
	b.elems[g] = home
	return true
}

// Count returns the number of distinct elements recorded so far.
func (b *Builder) Count() int { return len(b.elems) }

// Finalize sorts the recorded elements by (home, index), merges
// adjacent indices from the same home into single records, and assigns
// buffer offsets.  This is the paper's in-set construction.
func (b *Builder) Finalize() *InSet {
	type elem struct{ g, home int }
	es := make([]elem, 0, len(b.elems))
	for g, home := range b.elems {
		es = append(es, elem{g, home})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].home != es[j].home {
			return es[i].home < es[j].home
		}
		return es[i].g < es[j].g
	})
	in := &InSet{Total: len(es)}
	for _, e := range es {
		if n := len(in.Ranges); n > 0 {
			last := &in.Ranges[n-1]
			if last.FromProc == e.home && last.High+1 == e.g {
				last.High = e.g // combine adjacent ranges
				continue
			}
		}
		in.Ranges = append(in.Ranges, Range{
			FromProc: e.home,
			ToProc:   b.me,
			Low:      e.g,
			High:     e.g,
			Buf:      len(in.Ranges), // placeholder, fixed below
		})
	}
	off := 0
	for i := range in.Ranges {
		in.Ranges[i].Buf = off
		off += in.Ranges[i].Len()
	}
	return in
}

// Find locates global element g coming from processor home and returns
// its offset in the communication buffer, using binary search over the
// (FromProc, Low)-sorted records.  The second result is false when the
// element is not in the set.  Probes returns alongside so callers can
// charge the simulated O(log r) search cost.
func (s *InSet) Find(home, g int) (buf int, ok bool) {
	i := sort.Search(len(s.Ranges), func(i int) bool {
		r := s.Ranges[i]
		if r.FromProc != home {
			return r.FromProc > home
		}
		return r.High >= g
	})
	if i >= len(s.Ranges) {
		return 0, false
	}
	r := s.Ranges[i]
	if r.FromProc != home || g < r.Low || g > r.High {
		return 0, false
	}
	return r.Buf + (g - r.Low), true
}

// NumRanges returns the record count r used in the O(log r) search.
func (s *InSet) NumRanges() int { return len(s.Ranges) }

// Senders returns the distinct sending processors in ascending order.
func (s *InSet) Senders() []int {
	var out []int
	for _, r := range s.Ranges {
		if len(out) == 0 || out[len(out)-1] != r.FromProc {
			out = append(out, r.FromProc)
		}
	}
	return out
}

// RangesFrom returns the records sourced from processor q.
func (s *InSet) RangesFrom(q int) []Range {
	lo := sort.Search(len(s.Ranges), func(i int) bool { return s.Ranges[i].FromProc >= q })
	hi := lo
	for hi < len(s.Ranges) && s.Ranges[hi].FromProc == q {
		hi++
	}
	return s.Ranges[lo:hi]
}

// BytesFrom returns the wire size of the data expected from q,
// assuming 8-byte elements.
func (s *InSet) BytesFrom(q int) int {
	n := 0
	for _, r := range s.RangesFrom(q) {
		n += r.Len()
	}
	return n * 8
}

// BuildOut assembles a processor's OutSet from the collections of
// in-records that name it as FromProc, as delivered by the global
// exchange ("out(p,q) = in(q,p)": the transposition the paper performs
// with the Crystal router).  Records are sorted by (ToProc, Low) with
// adjacent ranges merged.
func BuildOut(me int, received []Range) *OutSet {
	rs := append([]Range(nil), received...)
	for _, r := range rs {
		if r.FromProc != me {
			panic(fmt.Sprintf("comm: out record %v not sourced at %d", r, me))
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].ToProc != rs[j].ToProc {
			return rs[i].ToProc < rs[j].ToProc
		}
		return rs[i].Low < rs[j].Low
	})
	out := &OutSet{}
	for _, r := range rs {
		if n := len(out.Ranges); n > 0 {
			last := &out.Ranges[n-1]
			if last.ToProc == r.ToProc && last.High+1 == r.Low {
				last.High = r.High
				out.Total += r.Len()
				continue
			}
		}
		out.Ranges = append(out.Ranges, r)
		out.Total += r.Len()
	}
	return out
}

// Receivers returns the distinct destination processors in ascending
// order.
func (s *OutSet) Receivers() []int {
	var out []int
	for _, r := range s.Ranges {
		if len(out) == 0 || out[len(out)-1] != r.ToProc {
			out = append(out, r.ToProc)
		}
	}
	return out
}

// RangesTo returns the records destined for processor q.
func (s *OutSet) RangesTo(q int) []Range {
	lo := sort.Search(len(s.Ranges), func(i int) bool { return s.Ranges[i].ToProc >= q })
	hi := lo
	for hi < len(s.Ranges) && s.Ranges[hi].ToProc == q {
		hi++
	}
	return s.Ranges[lo:hi]
}

// CountTo returns the number of elements destined for processor q.
func (s *OutSet) CountTo(q int) int {
	n := 0
	for _, r := range s.RangesTo(q) {
		n += r.Len()
	}
	return n
}

// CountFrom returns the number of elements expected from processor q.
func (s *InSet) CountFrom(q int) int {
	n := 0
	for _, r := range s.RangesFrom(q) {
		n += r.Len()
	}
	return n
}

// PackInto fills dst with the values of all records destined to q, one
// bulk copyRange call per record (copyRange must copy the local values
// of global indices [lo..hi] into its dst argument).  Because every
// record covers a contiguous block of global indices whose owner packs
// them densely, each record is a single memcpy-style copy rather than a
// per-element gather.  It returns the number of values packed; dst must
// have at least CountTo(q) elements.
func (s *OutSet) PackInto(q int, dst []float64, copyRange func(lo, hi int, dst []float64)) int {
	n := 0
	for _, r := range s.RangesTo(q) {
		copyRange(r.Low, r.High, dst[n:n+r.Len()])
		n += r.Len()
	}
	return n
}

// Unpack scatters a payload received from q into the communication
// buffer according to the in set's records for q — one bulk copy per
// record, since each record's elements land contiguously at its Buf
// offset.  It returns the number of values consumed and panics if the
// payload size mismatches the schedule.
func (s *InSet) Unpack(q int, payload []float64, buf []float64) int {
	n := 0
	for _, r := range s.RangesFrom(q) {
		n += copy(buf[r.Buf:r.Buf+r.Len()], payload[n:n+r.Len()])
	}
	if n != len(payload) {
		panic(fmt.Sprintf("comm: payload from %d has %d values, schedule expects %d", q, len(payload), n))
	}
	return n
}
