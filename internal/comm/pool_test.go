package comm

import (
	"sync"
	"testing"
)

// TestBufPoolRecycles: Get after Put returns the same payload with its
// capacity retained, and Get sizes the value slice exactly.
func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	a := p.Get(8)
	if len(a.Vals) != 8 {
		t.Fatalf("len = %d, want 8", len(a.Vals))
	}
	p.Put(a)
	if p.Len() != 1 {
		t.Fatalf("pool holds %d, want 1", p.Len())
	}
	b := p.Get(4)
	if b != a {
		t.Error("pool did not recycle the payload")
	}
	if len(b.Vals) != 4 || cap(b.Vals) < 8 {
		t.Errorf("len=%d cap=%d after shrink-reuse, want 4/>=8", len(b.Vals), cap(b.Vals))
	}
	c := p.Get(16) // pool empty: fresh payload, grown
	if len(c.Vals) != 16 {
		t.Fatalf("len = %d, want 16", len(c.Vals))
	}
	p.Put(b)
	p.Put(c)
	if p.Len() != 2 {
		t.Fatalf("pool holds %d, want 2", p.Len())
	}
	p.Put(nil) // ignored
	if p.Len() != 2 {
		t.Fatalf("Put(nil) changed pool size to %d", p.Len())
	}
	st := p.Stats()
	if st.Gets != 3 || st.Puts != 3 || st.News != 2 || st.Idle != 2 {
		t.Fatalf("stats = %+v, want Gets=3 Puts=3 News=2 Idle=2 (nil Put uncounted)", st)
	}
}

// TestBufPoolStatsMidUse: Stats is safe to read while workers hammer
// the pool — the counters are atomic, so under -race this pins the
// mid-execution observability the schedule server's /stats endpoint
// relies on.
func TestBufPoolStatsMidUse(t *testing.T) {
	var p BufPool
	const workers, rounds = 8, 200
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			if st.Gets < st.News {
				t.Errorf("gets %d < news %d", st.Gets, st.News)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p.Put(p.Get(8))
			}
		}()
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	st := p.Stats()
	if st.Gets != workers*rounds || st.Puts != workers*rounds {
		t.Fatalf("stats = %+v, want %d gets and puts", st, workers*rounds)
	}
	if st.News > workers || int64(st.Idle) != st.News {
		t.Fatalf("stats = %+v: at most one fresh payload per worker, all idle at rest", st)
	}
}
