package comm

import "testing"

// TestBufPoolRecycles: Get after Put returns the same payload with its
// capacity retained, and Get sizes the value slice exactly.
func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	a := p.Get(8)
	if len(a.Vals) != 8 {
		t.Fatalf("len = %d, want 8", len(a.Vals))
	}
	p.Put(a)
	if p.Len() != 1 {
		t.Fatalf("pool holds %d, want 1", p.Len())
	}
	b := p.Get(4)
	if b != a {
		t.Error("pool did not recycle the payload")
	}
	if len(b.Vals) != 4 || cap(b.Vals) < 8 {
		t.Errorf("len=%d cap=%d after shrink-reuse, want 4/>=8", len(b.Vals), cap(b.Vals))
	}
	c := p.Get(16) // pool empty: fresh payload, grown
	if len(c.Vals) != 16 {
		t.Fatalf("len = %d, want 16", len(c.Vals))
	}
	p.Put(b)
	p.Put(c)
	if p.Len() != 2 {
		t.Fatalf("pool holds %d, want 2", p.Len())
	}
	p.Put(nil) // ignored
	if p.Len() != 2 {
		t.Fatalf("Put(nil) changed pool size to %d", p.Len())
	}
}
