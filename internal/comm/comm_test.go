package comm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0)
	if !b.Add(5, 1) || !b.Add(7, 1) || !b.Add(6, 1) || !b.Add(20, 2) {
		t.Fatal("first Add of each element must return true")
	}
	if b.Add(5, 1) {
		t.Fatal("duplicate Add must return false")
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	in := b.Finalize()
	if in.Total != 4 {
		t.Fatalf("Total = %d", in.Total)
	}
	// 5,6,7 from proc 1 merge into one record.
	if in.NumRanges() != 2 {
		t.Fatalf("ranges = %v", in.Ranges)
	}
	r0 := in.Ranges[0]
	if r0.FromProc != 1 || r0.Low != 5 || r0.High != 7 || r0.Buf != 0 {
		t.Fatalf("merged record wrong: %v", r0)
	}
	r1 := in.Ranges[1]
	if r1.FromProc != 2 || r1.Low != 20 || r1.High != 20 || r1.Buf != 3 {
		t.Fatalf("second record wrong: %v", r1)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add of local element must panic")
			}
		}()
		b.Add(5, 3)
	}()
	b.Add(5, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting home must panic")
			}
		}()
		b.Add(5, 2)
	}()
}

func TestFind(t *testing.T) {
	b := NewBuilder(0)
	for _, e := range []struct{ g, home int }{
		{5, 1}, {6, 1}, {7, 1}, {9, 1}, {3, 2}, {100, 3},
	} {
		b.Add(e.g, e.home)
	}
	in := b.Finalize()
	// Every recorded element must be findable and buffer offsets
	// must be distinct and dense.
	seen := map[int]bool{}
	for _, e := range []struct{ g, home int }{
		{5, 1}, {6, 1}, {7, 1}, {9, 1}, {3, 2}, {100, 3},
	} {
		buf, ok := in.Find(e.home, e.g)
		if !ok {
			t.Fatalf("element %d from %d not found", e.g, e.home)
		}
		if seen[buf] {
			t.Fatalf("duplicate buffer slot %d", buf)
		}
		seen[buf] = true
		if buf < 0 || buf >= in.Total {
			t.Fatalf("buffer slot %d out of range", buf)
		}
	}
	// Misses.
	if _, ok := in.Find(1, 8); ok {
		t.Fatal("8 was never added")
	}
	if _, ok := in.Find(2, 5); ok {
		t.Fatal("5 is from proc 1, not 2")
	}
	if _, ok := in.Find(9, 5); ok {
		t.Fatal("unknown home")
	}
}

func TestSendersAndRangesFrom(t *testing.T) {
	b := NewBuilder(0)
	b.Add(1, 3)
	b.Add(2, 3)
	b.Add(10, 1)
	b.Add(30, 5)
	in := b.Finalize()
	if got := in.Senders(); !equalInts(got, []int{1, 3, 5}) {
		t.Fatalf("Senders = %v", got)
	}
	if got := in.RangesFrom(3); len(got) != 1 || got[0].Low != 1 || got[0].High != 2 {
		t.Fatalf("RangesFrom(3) = %v", got)
	}
	if got := in.RangesFrom(2); len(got) != 0 {
		t.Fatalf("RangesFrom(2) = %v", got)
	}
	if in.BytesFrom(3) != 16 {
		t.Fatalf("BytesFrom(3) = %d", in.BytesFrom(3))
	}
}

func TestBuildOutTransposes(t *testing.T) {
	// Records arriving at proc 1 from the router: proc 0 needs [5..7],
	// proc 2 needs [6..6] and [8..9].
	recs := []Range{
		{FromProc: 1, ToProc: 2, Low: 8, High: 9},
		{FromProc: 1, ToProc: 0, Low: 5, High: 7},
		{FromProc: 1, ToProc: 2, Low: 6, High: 6},
	}
	out := BuildOut(1, recs)
	if out.Total != 6 {
		t.Fatalf("Total = %d", out.Total)
	}
	if got := out.Receivers(); !equalInts(got, []int{0, 2}) {
		t.Fatalf("Receivers = %v", got)
	}
	if got := out.RangesTo(2); len(got) != 2 || got[0].Low != 6 || got[1].Low != 8 {
		t.Fatalf("RangesTo(2) = %v", got)
	}
}

func TestBuildOutMergesAdjacent(t *testing.T) {
	recs := []Range{
		{FromProc: 0, ToProc: 1, Low: 5, High: 6},
		{FromProc: 0, ToProc: 1, Low: 7, High: 9},
	}
	out := BuildOut(0, recs)
	if len(out.Ranges) != 1 || out.Ranges[0].Low != 5 || out.Ranges[0].High != 9 {
		t.Fatalf("merge failed: %v", out.Ranges)
	}
}

func TestBuildOutPanicsOnWrongSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildOut(1, []Range{{FromProc: 2, ToProc: 0, Low: 1, High: 1}})
}

func TestPackUnpackRoundTrip(t *testing.T) {
	// Proc 1 sends elements 5..7 and 9 to proc 0.
	b := NewBuilder(0)
	for _, g := range []int{5, 6, 7, 9} {
		b.Add(g, 1)
	}
	in := b.Finalize()

	outRecs := make([]Range, len(in.Ranges))
	copy(outRecs, in.Ranges)
	out := BuildOut(1, outRecs)

	if got := out.CountTo(0); got != 4 {
		t.Fatalf("CountTo(0) = %d, want 4", got)
	}
	payload := make([]float64, out.CountTo(0))
	ranged := 0
	n0 := out.PackInto(0, payload, func(lo, hi int, dst []float64) {
		ranged++
		for g := lo; g <= hi; g++ {
			dst[g-lo] = float64(g) * 10
		}
	})
	if n0 != 4 {
		t.Fatalf("packed %d values, want 4", n0)
	}
	// Elements 5..7 and 9 form two contiguous records, so the bulk
	// pack must touch exactly two ranges, not four elements.
	if ranged != 2 {
		t.Fatalf("PackInto made %d range copies, want 2", ranged)
	}
	buf := make([]float64, in.Total)
	n := in.Unpack(1, payload, buf)
	if n != 4 {
		t.Fatalf("consumed %d", n)
	}
	for _, g := range []int{5, 6, 7, 9} {
		slot, ok := in.Find(1, g)
		if !ok || buf[slot] != float64(g)*10 {
			t.Fatalf("element %d: slot=%d ok=%v val=%g", g, slot, ok, buf[slot])
		}
	}
}

func TestUnpackSizeMismatchPanics(t *testing.T) {
	b := NewBuilder(0)
	b.Add(5, 1)
	in := b.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in.Unpack(1, []float64{1, 2}, make([]float64, 1))
}

// TestQuickFindMatchesModel: Find agrees with a map-based model for
// random element sets, and merging preserves the element multiset.
func TestQuickFindMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// A consistent owner function: home(g) is a pure function of g,
		// as it is for any real distribution.
		home := func(g int) int { return 1 + (g*7+int(seed&3))%5 }
		b := NewBuilder(0)
		model2 := map[[2]int]bool{} // (home, g)
		for k := 0; k < r.Intn(60); k++ {
			g := r.Intn(50)
			b.Add(g, home(g))
			model2[[2]int{home(g), g}] = true
		}
		in := b.Finalize()
		// total must equal model size
		if in.Total != len(model2) {
			return false
		}
		slots := map[int]bool{}
		for k := range model2 {
			buf, ok := in.Find(k[0], k[1])
			if !ok || slots[buf] {
				return false
			}
			slots[buf] = true
		}
		// negative lookups
		for g := 0; g < 50; g++ {
			for home := 1; home <= 5; home++ {
				_, ok := in.Find(home, g)
				if ok != model2[[2]int{home, g}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangesSortedMerged: representation invariant — in-set
// records sorted by (FromProc, Low), disjoint, maximally merged.
func TestQuickRangesSortedMerged(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder(0)
		home := func(g int) int { return 1 + (g*13+int(seed&7))%4 }
		for k := 0; k < 5+r.Intn(80); k++ {
			g := r.Intn(100)
			b.Add(g, home(g))
		}
		in := b.Finalize()
		if !sort.SliceIsSorted(in.Ranges, func(i, j int) bool {
			a, c := in.Ranges[i], in.Ranges[j]
			if a.FromProc != c.FromProc {
				return a.FromProc < c.FromProc
			}
			return a.Low < c.Low
		}) {
			return false
		}
		for i := 1; i < len(in.Ranges); i++ {
			a, c := in.Ranges[i-1], in.Ranges[i]
			if a.FromProc == c.FromProc && c.Low <= a.High+1 {
				return false // overlapping or unmerged adjacency
			}
		}
		// buffer offsets dense
		off := 0
		for _, rg := range in.Ranges {
			if rg.Buf != off {
				return false
			}
			off += rg.Len()
		}
		return off == in.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkFindBinarySearch(b *testing.B) {
	bd := NewBuilder(0)
	for g := 0; g < 4096; g += 2 { // 2048 singleton ranges
		bd.Add(g, 1+g%7)
	}
	in := bd.Finalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Find(1+(i*2%4096)%7, i*2%4096)
	}
}
