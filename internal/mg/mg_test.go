package mg

import (
	"math"
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// solve runs V-cycles until the residual norm drops below tol,
// returning the solution, cycle count and the timing report.
func solve(t *testing.T, depth, p int, params machine.Params, tol float64, force bool) ([]float64, int, core.Report) {
	t.Helper()
	n := 1<<uint(depth) - 1
	out := make([]float64, n)
	cycles := make([]int, p)
	rep := core.Run(core.Config{P: p, Params: params}, func(ctx *core.Context) {
		ctx.Eng.ForceInspector = force
		s := New(ctx, depth)
		s.SetRHS(func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) })
		c := 0
		for s.ResidualNorm() > tol && c < 60 {
			s.VCycle()
			c++
		}
		cycles[ctx.ID()] = c
		s.Gather(out)
	})
	return out, cycles[0], rep
}

// TestVCycleConverges: -u” = π² sin(πx) has solution sin(πx); the
// discrete solution must match it to O(h²), and multigrid must get
// there in O(1) cycles.
func TestVCycleConverges(t *testing.T) {
	const depth = 7 // n = 127
	got, cycles, _ := solve(t, depth, 4, machine.Ideal(), 1e-6, false)
	if cycles >= 60 {
		t.Fatalf("did not converge (%d cycles)", cycles)
	}
	if cycles > 15 {
		t.Fatalf("multigrid took %d cycles; should be O(1)", cycles)
	}
	n := 1<<depth - 1
	h := 1.0 / float64(n+1)
	worst := 0.0
	for i := 1; i <= n; i++ {
		exact := math.Sin(math.Pi * float64(i) * h)
		if d := math.Abs(got[i-1] - exact); d > worst {
			worst = d
		}
	}
	if worst > 5*h*h*math.Pi*math.Pi {
		t.Fatalf("discretization error %g exceeds O(h²) bound", worst)
	}
}

// TestVCycleMeshIndependent: cycle counts stay flat as the grid
// refines — the multigrid property.
func TestVCycleMeshIndependent(t *testing.T) {
	_, c5, _ := solve(t, 5, 2, machine.Ideal(), 1e-8, false)
	_, c8, _ := solve(t, 8, 2, machine.Ideal(), 1e-8, false)
	if c8 > c5+4 {
		t.Fatalf("cycles grew with refinement: %d -> %d", c5, c8)
	}
}

// TestDeterministicAcrossP: the same problem on different processor
// counts produces identical answers (the operations are the same
// floating-point expressions in the same per-point order).
func TestDeterministicAcrossP(t *testing.T) {
	a, ca, _ := solve(t, 6, 1, machine.Ideal(), 1e-7, false)
	b, cb, _ := solve(t, 6, 4, machine.Ideal(), 1e-7, false)
	if ca != cb {
		t.Fatalf("cycle counts differ: %d vs %d", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("P=1 and P=4 differ at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestPaperSuspicion quantifies §4's conjecture: "we suspect our
// approach would be less useful in such cases."  Confirmed — under
// forced run-time analysis a multigrid V-cycle's many small distinct
// loops (≈6 per level) each pay the expensive NCUBE global combine,
// and the few-iterations structure leaves little to amortize against,
// so the inspector dominates.  Compile-time analysis (which all the
// V-cycle's affine loops admit) eliminates the problem entirely.
func TestPaperSuspicion(t *testing.T) {
	_, _, compiled := solve(t, 7, 4, machine.NCUBE7(), 1e-6, false)
	_, _, inspected := solve(t, 7, 4, machine.NCUBE7(), 1e-6, true)
	if compiled.Inspector > 0.05*compiled.Total {
		t.Fatalf("compile-time multigrid schedule cost too high: %v", compiled)
	}
	if pct := inspected.OverheadPct(); pct < 50 {
		t.Fatalf("paper's suspicion not reproduced: forced-inspector overhead only %.1f%%", pct)
	}
	// Caching still bounds the damage: a second solve on the same
	// engine would be schedule-free, which the cycle-loop already
	// demonstrates (inspector cost is one-time per loop, not per
	// V-cycle): re-solving with double the cycles must not double it.
	_, _, twice := solveCycles(t, 7, 4, machine.NCUBE7(), true, 12)
	_, _, once := solveCycles(t, 7, 4, machine.NCUBE7(), true, 6)
	if twice.Inspector != once.Inspector {
		t.Fatalf("inspector not amortized across V-cycles: %g vs %g",
			once.Inspector, twice.Inspector)
	}
}

// solveCycles runs a fixed number of V-cycles.
func solveCycles(t *testing.T, depth, p int, params machine.Params, force bool, cycles int) ([]float64, int, core.Report) {
	t.Helper()
	n := 1<<uint(depth) - 1
	out := make([]float64, n)
	rep := core.Run(core.Config{P: p, Params: params}, func(ctx *core.Context) {
		ctx.Eng.ForceInspector = force
		s := New(ctx, depth)
		s.SetRHS(func(x float64) float64 { return math.Pi * math.Pi * math.Sin(math.Pi*x) })
		for c := 0; c < cycles; c++ {
			s.VCycle()
		}
		s.Gather(out)
	})
	return out, cycles, rep
}

func TestBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	core.Run(core.Config{P: 1, Params: machine.Ideal()}, func(ctx *core.Context) {
		New(ctx, 0)
	})
}

func TestFineN(t *testing.T) {
	core.Run(core.Config{P: 1, Params: machine.Ideal()}, func(ctx *core.Context) {
		if New(ctx, 5).FineN() != 31 {
			t.Error("FineN")
		}
	})
}
