// Package mg implements a one-dimensional multigrid Poisson solver on
// the Kali runtime — the algorithm class the paper singles out in §4:
// "there are numerical algorithms requiring fewer relaxation
// iterations.  Such algorithms tend to be much more complex, requiring
// incomplete LU factorizations or multigrid techniques, and we suspect
// our approach would be less useful in such cases."
//
// The solver lets that suspicion be tested.  Every loop a V-cycle
// needs — weighted-Jacobi smoothing, residual computation, full
// weighting restriction, linear-interpolation prolongation — has
// affine subscripts (including the stride-2 inter-grid transfers), so
// under Kali's compile-time analysis the schedule cost is negligible;
// and even when the run-time inspector is forced (ForceInspector),
// each level's handful of schedules is built once and cached across
// V-cycles.  See ExperimentReport in examples/multigrid.
//
// Problem: -u” = f on (0,1), u(0) = u(1) = 0, discretized on n = 2^m-1
// interior points.
package mg

import (
	"fmt"
	"math"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/forall"
)

// level holds one grid level's arrays on one node.
type level struct {
	n  int // interior points
	h2 float64
	u  *darray.Array
	f  *darray.Array
	r  *darray.Array
}

// Solver is a per-node multigrid hierarchy.
type Solver struct {
	ctx    *core.Context
	levels []*level
	// prolong caches each level's interpolation sequence so warm
	// V-cycles replay it without rebuilding the loops.
	prolong [][]forall.SeqLoop
	// Omega is the Jacobi damping factor (2/3 is standard in 1-D).
	Omega float64
	// Nu1, Nu2 are pre-/post-smoothing sweep counts.
	Nu1, Nu2 int
	// CoarseSweeps smooths the coarsest level to near-exactness.
	CoarseSweeps int
}

// New builds a hierarchy for n = 2^depth - 1 fine interior points,
// coarsening down to a single point.  Every node of the machine must
// call New collectively.
func New(ctx *core.Context, depth int) *Solver {
	if depth < 1 {
		panic("mg: depth must be >= 1")
	}
	s := &Solver{ctx: ctx, Omega: 2.0 / 3.0, Nu1: 2, Nu2: 2, CoarseSweeps: 20}
	for l := 0; l < depth; l++ {
		n := 1<<uint(depth-l) - 1
		h := 1.0 / float64(n+1)
		s.levels = append(s.levels, &level{
			n:  n,
			h2: h * h,
			u:  ctx.BlockArray(fmt.Sprintf("u%d", l), n),
			f:  ctx.BlockArray(fmt.Sprintf("f%d", l), n),
			r:  ctx.BlockArray(fmt.Sprintf("r%d", l), n),
		})
	}
	return s
}

// FineN returns the number of fine-grid interior points.
func (s *Solver) FineN() int { return s.levels[0].n }

// SetRHS initializes the fine right-hand side from fn(x), x ∈ (0,1).
func (s *Solver) SetRHS(fn func(x float64) float64) {
	lv := s.levels[0]
	h := math.Sqrt(lv.h2)
	lv.f.Dist().Pattern(0).Local(s.ctx.ID()).Each(func(i int) {
		lv.f.Set1(i, fn(float64(i)*h))
	})
}

// smooth runs one damped-Jacobi sweep on level l.  All subscripts are
// affine; copy-in/copy-out gives exactly the Jacobi (not Gauss-Seidel)
// update.
func (s *Solver) smooth(l int) {
	lv := s.levels[l]
	omega := s.Omega
	h2 := lv.h2
	u, f := lv.u, lv.f
	s.ctx.Forall(&forall.Loop{
		Name: fmt.Sprintf("mg.smooth%d", l), Lo: 1, Hi: lv.n,
		On: u, OnF: analysis.Identity,
		Reads: []forall.ReadSpec{
			{Array: u, Affine: &analysis.Affine{A: 1, C: -1}},
			{Array: u, Affine: &analysis.Identity},
			{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
			{Array: f, Affine: &analysis.Identity},
		},
		Body: func(i int, e *forall.Env) {
			left, right := 0.0, 0.0
			if i > 1 {
				left = e.Read(u, i-1)
			}
			if i < lv.n {
				right = e.Read(u, i+1)
			}
			old := e.Read(u, i)
			gs := 0.5 * (left + right + h2*e.Read(f, i))
			e.Flops(7)
			e.Write(u, i, (1-omega)*old+omega*gs)
		},
	})
}

// residual computes r = f - Au on level l.
func (s *Solver) residual(l int) {
	lv := s.levels[l]
	h2 := lv.h2
	u, f, r := lv.u, lv.f, lv.r
	s.ctx.Forall(&forall.Loop{
		Name: fmt.Sprintf("mg.resid%d", l), Lo: 1, Hi: lv.n,
		On: r, OnF: analysis.Identity,
		Reads: []forall.ReadSpec{
			{Array: u, Affine: &analysis.Affine{A: 1, C: -1}},
			{Array: u, Affine: &analysis.Identity},
			{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
			{Array: f, Affine: &analysis.Identity},
		},
		Body: func(i int, e *forall.Env) {
			left, right := 0.0, 0.0
			if i > 1 {
				left = e.Read(u, i-1)
			}
			if i < lv.n {
				right = e.Read(u, i+1)
			}
			au := (2*e.Read(u, i) - left - right) / h2
			e.Flops(5)
			e.Write(r, i, e.Read(f, i)-au)
		},
	})
}

// restrictTo computes the coarse RHS by full weighting of the fine
// residual: fc[k] = (r[2k-1] + 2 r[2k] + r[2k+1]) / 4 — the stride-2
// affine transfer.
func (s *Solver) restrictTo(l int) {
	fine, coarse := s.levels[l], s.levels[l+1]
	r, fc := fine.r, coarse.f
	s.ctx.Forall(&forall.Loop{
		Name: fmt.Sprintf("mg.restrict%d", l), Lo: 1, Hi: coarse.n,
		On: fc, OnF: analysis.Identity,
		Reads: []forall.ReadSpec{
			{Array: r, Affine: &analysis.Affine{A: 2, C: -1}},
			{Array: r, Affine: &analysis.Affine{A: 2, C: 0}},
			{Array: r, Affine: &analysis.Affine{A: 2, C: 1}},
		},
		Body: func(k int, e *forall.Env) {
			e.Flops(4)
			e.Write(fc, k, 0.25*(e.Read(r, 2*k-1)+2*e.Read(r, 2*k)+e.Read(r, 2*k+1)))
		},
	})
}

// zero clears a level's solution.
func (s *Solver) zero(l int) {
	lv := s.levels[l]
	u := lv.u
	s.ctx.Forall(&forall.Loop{
		Name: fmt.Sprintf("mg.zero%d", l), Lo: 1, Hi: lv.n,
		On: u, OnF: analysis.Identity,
		Body: func(i int, e *forall.Env) {
			e.Write(u, i, 0)
		},
	})
}

// prolongAdd interpolates the coarse correction up to the fine grid:
// even fine points coincide with coarse points; odd ones average their
// coarse neighbors.  The interpolation lands in the fine residual
// array — dead scratch here, its content already restricted — and a
// purely local loop adds it into u.  Both interpolation loops read
// only the coarse solution, so the sequence API fuses their messages
// into one send per processor pair (the add loop reads what they
// wrote and starts a new window; it moves no data anyway).
func (s *Solver) prolongAdd(l int) {
	if s.prolong == nil {
		s.prolong = make([][]forall.SeqLoop, len(s.levels))
	}
	if s.prolong[l] != nil {
		s.ctx.ForallSeq(s.prolong[l])
		return
	}
	fine, coarse := s.levels[l], s.levels[l+1]
	u, uc, r := fine.u, coarse.u, fine.r
	// Fine point 2k gets uc[k] directly.
	even := &forall.Loop{
		Name: fmt.Sprintf("mg.prolongE%d", l), Lo: 1, Hi: coarse.n,
		On: r, OnF: analysis.Affine{A: 2, C: 0},
		Reads: []forall.ReadSpec{
			{Array: uc, Affine: &analysis.Identity},
		},
		Body: func(k int, e *forall.Env) {
			e.Write(r, 2*k, e.Read(uc, k))
		},
	}
	// Fine point 2k-1 averages uc[k-1] and uc[k] (zero outside).
	odd := &forall.Loop{
		Name: fmt.Sprintf("mg.prolongO%d", l), Lo: 1, Hi: coarse.n + 1,
		On: r, OnF: analysis.Affine{A: 2, C: -1},
		Reads: []forall.ReadSpec{
			{Array: uc, Affine: &analysis.Affine{A: 1, C: -1}},
			{Array: uc, Affine: &analysis.Identity},
		},
		Body: func(k int, e *forall.Env) {
			corr := 0.0
			if k > 1 {
				corr += e.Read(uc, k-1)
			}
			if k <= coarse.n {
				corr += e.Read(uc, k)
			}
			e.Flops(3)
			e.Write(r, 2*k-1, 0.5*corr)
		},
	}
	// u += r, owner-aligned on both sides: no communication.
	add := &forall.Loop{
		Name: fmt.Sprintf("mg.prolongA%d", l), Lo: 1, Hi: fine.n,
		On: u, OnF: analysis.Identity,
		Reads: []forall.ReadSpec{
			{Array: u, Affine: &analysis.Identity},
			{Array: r, Affine: &analysis.Identity},
		},
		Body: func(i int, e *forall.Env) {
			e.Flops(1)
			e.Write(u, i, e.Read(u, i)+e.Read(r, i))
		},
	}
	s.prolong[l] = []forall.SeqLoop{
		{L: even, Writes: []*darray.Array{r}},
		{L: odd, Writes: []*darray.Array{r}},
		{L: add, Writes: []*darray.Array{u}},
	}
	s.ctx.ForallSeq(s.prolong[l])
}

// VCycle runs one V-cycle from the finest level.
func (s *Solver) VCycle() {
	s.vcycle(0)
}

func (s *Solver) vcycle(l int) {
	if l == len(s.levels)-1 {
		for k := 0; k < s.CoarseSweeps; k++ {
			s.smooth(l)
		}
		return
	}
	for k := 0; k < s.Nu1; k++ {
		s.smooth(l)
	}
	s.residual(l)
	s.restrictTo(l)
	s.zero(l + 1)
	s.vcycle(l + 1)
	s.prolongAdd(l)
	for k := 0; k < s.Nu2; k++ {
		s.smooth(l)
	}
}

// ResidualNorm returns the max-norm of the fine-grid residual
// (collective: every node gets the same value).
func (s *Solver) ResidualNorm() float64 {
	s.residual(0)
	lv := s.levels[0]
	local := 0.0
	lv.r.Dist().Pattern(0).Local(s.ctx.ID()).Each(func(i int) {
		if v := math.Abs(lv.r.Get1(i)); v > local {
			local = v
		}
	})
	return s.ctx.AllReduce(local, "max")
}

// Gather collects the fine-grid solution into out (host-side; indices
// 0..n-1 are interior points).  Each node writes its own elements.
func (s *Solver) Gather(out []float64) {
	lv := s.levels[0]
	lv.u.Dist().Pattern(0).Local(s.ctx.ID()).Each(func(i int) {
		out[i-1] = lv.u.Get1(i)
	})
}
