package crystal

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"kali/internal/machine"
	"kali/internal/machine/sim"
)

// routeAll runs Route on every node of a P-node ideal machine, with
// each node sending the parcels produced by mk(sender), and returns
// what each node received.
func routeAll(t *testing.T, p int, mk func(me int) []Parcel) [][]Parcel {
	t.Helper()
	m := sim.MustNew(p, machine.Ideal())
	out := make([][]Parcel, p)
	var mu sync.Mutex
	m.Run(func(n *machine.Node) {
		got := Route(n, mk(n.ID()))
		mu.Lock()
		out[n.ID()] = got
		mu.Unlock()
	})
	return out
}

func TestRouteAllToAll(t *testing.T) {
	const p = 8
	// Every node sends one parcel to every other node, labeled
	// "from->to"; every node must receive exactly p-1 parcels with the
	// right labels.
	got := routeAll(t, p, func(me int) []Parcel {
		var ps []Parcel
		for to := 0; to < p; to++ {
			if to == me {
				continue
			}
			ps = append(ps, Parcel{Dest: to, Data: fmt.Sprintf("%d->%d", me, to), Bytes: 8})
		}
		return ps
	})
	for me := 0; me < p; me++ {
		if len(got[me]) != p-1 {
			t.Fatalf("node %d received %d parcels", me, len(got[me]))
		}
		labels := map[string]bool{}
		for _, pc := range got[me] {
			labels[pc.Data.(string)] = true
		}
		for from := 0; from < p; from++ {
			if from == me {
				continue
			}
			if !labels[fmt.Sprintf("%d->%d", from, me)] {
				t.Fatalf("node %d missing parcel from %d; has %v", me, from, labels)
			}
		}
	}
}

func TestRouteSelfParcels(t *testing.T) {
	// Parcels addressed to the sender stay put.
	got := routeAll(t, 4, func(me int) []Parcel {
		return []Parcel{{Dest: me, Data: me, Bytes: 4}}
	})
	for me := 0; me < 4; me++ {
		if len(got[me]) != 1 || got[me][0].Data.(int) != me {
			t.Fatalf("node %d: %v", me, got[me])
		}
	}
}

func TestRouteEmpty(t *testing.T) {
	got := routeAll(t, 8, func(me int) []Parcel { return nil })
	for me, g := range got {
		if len(g) != 0 {
			t.Fatalf("node %d received %d parcels from nothing", me, len(g))
		}
	}
}

func TestRouteSingleNode(t *testing.T) {
	got := routeAll(t, 1, func(me int) []Parcel {
		return []Parcel{{Dest: 0, Data: "x", Bytes: 1}}
	})
	if len(got[0]) != 1 || got[0][0].Data.(string) != "x" {
		t.Fatalf("single node route: %v", got[0])
	}
}

func TestRouteSkewedTraffic(t *testing.T) {
	// All nodes send everything to node 0 — the hot-spot pattern the
	// router must still complete.
	const p = 16
	got := routeAll(t, p, func(me int) []Parcel {
		if me == 0 {
			return nil
		}
		return []Parcel{
			{Dest: 0, Data: me * 10, Bytes: 8},
			{Dest: 0, Data: me*10 + 1, Bytes: 8},
		}
	})
	if len(got[0]) != 2*(p-1) {
		t.Fatalf("hot spot received %d parcels, want %d", len(got[0]), 2*(p-1))
	}
	for me := 1; me < p; me++ {
		if len(got[me]) != 0 {
			t.Fatalf("node %d should receive nothing", me)
		}
	}
}

func TestRouteBadDestPanics(t *testing.T) {
	m := sim.MustNew(2, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) {
		Route(n, []Parcel{{Dest: 7, Data: nil}})
	})
}

func TestRouteNonPowerOfTwoPanics(t *testing.T) {
	m := sim.MustNew(3, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) {
		Route(n, nil)
	})
}

func TestRouteSorted(t *testing.T) {
	const p = 4
	m := sim.MustNew(p, machine.Ideal())
	var mu sync.Mutex
	got := make([][]int, p)
	m.Run(func(n *machine.Node) {
		var ps []Parcel
		for to := 0; to < p; to++ {
			if to != n.ID() {
				ps = append(ps, Parcel{Dest: to, Data: n.ID(), Bytes: 4})
			}
		}
		out := RouteSorted(n, ps, func(a, b Parcel) bool { return a.Data.(int) < b.Data.(int) })
		vals := make([]int, len(out))
		for i, pc := range out {
			vals[i] = pc.Data.(int)
		}
		mu.Lock()
		got[n.ID()] = vals
		mu.Unlock()
	})
	for me := 0; me < p; me++ {
		if !sort.IntsAreSorted(got[me]) {
			t.Fatalf("node %d unsorted: %v", me, got[me])
		}
	}
}

func TestRouteChargesStageCosts(t *testing.T) {
	// With P=8 (3 stages) each node's clock must include at least
	// 3 × CombineStage.
	params := machine.NCUBE7()
	m := sim.MustNew(8, params)
	var mu sync.Mutex
	minClock := -1.0
	m.Run(func(n *machine.Node) {
		Route(n, nil)
		mu.Lock()
		if minClock < 0 || n.Clock() < minClock {
			minClock = n.Clock()
		}
		mu.Unlock()
	})
	if want := 3 * params.CombineStage; minClock < want {
		t.Fatalf("clock %g < 3 combine stages %g", minClock, want)
	}
}

// TestQuickRoutePermutation: random sparse traffic is delivered
// exactly (no loss, no duplication) for random machine sizes.
func TestQuickRoutePermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 << uint(1+r.Intn(4)) // 2..16
		// Build the traffic matrix up front so all nodes agree.
		traffic := make([][]Parcel, p)
		expect := make([]map[string]int, p)
		for i := range expect {
			expect[i] = map[string]int{}
		}
		for from := 0; from < p; from++ {
			for k := 0; k < r.Intn(4); k++ {
				to := r.Intn(p)
				label := fmt.Sprintf("%d:%d:%d", from, to, k)
				traffic[from] = append(traffic[from], Parcel{Dest: to, Data: label, Bytes: 8})
				expect[to][label]++
			}
		}
		m := sim.MustNew(p, machine.Ideal())
		got := make([]map[string]int, p)
		var mu sync.Mutex
		m.Run(func(n *machine.Node) {
			out := Route(n, traffic[n.ID()])
			g := map[string]int{}
			for _, pc := range out {
				g[pc.Data.(string)]++
			}
			mu.Lock()
			got[n.ID()] = g
			mu.Unlock()
		})
		for i := 0; i < p; i++ {
			if len(got[i]) != len(expect[i]) {
				return false
			}
			for k, v := range expect[i] {
				if got[i][k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
