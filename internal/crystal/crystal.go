// Package crystal implements Fox's Crystal router: all-to-all
// personalized communication on a hypercube in log₂P dimension-exchange
// stages.
//
// The paper's run-time inspector (§3.3) uses "a variant of Fox's
// Crystal router" to route each processor's in(p,q) records to their
// home processors q "without creating bottlenecks".  At stage d every node exchanges with its
// neighbor across hypercube dimension d all parcels whose destination
// address differs from its own in bit d; after all stages every parcel
// has reached its destination.  The inspector's global combine charges
// the per-stage software overhead (Params.CombineStage) that the
// paper's measurements show dominating on the NCUBE/7.
package crystal

import (
	"fmt"
	"sort"

	"kali/internal/machine"
)

// Parcel is one routed item: opaque data bound for a destination node.
type Parcel struct {
	Dest  int
	Data  any
	Bytes int
}

// stageMsg is the payload exchanged between partners at one stage.
type stageMsg struct {
	parcels []Parcel
}

// Route performs the all-to-all exchange.  Every node calls Route with
// its outgoing parcels; the call returns the parcels destined for the
// calling node, sorted by original destination-insertion order of the
// senders (deterministic: sorted by nothing observable — callers should
// not rely on order beyond grouping, and typically re-sort).
//
// P must be a power of two (hypercube); for P == 1 the parcels are
// returned immediately (minus none, since Dest must be 0).
func Route(n *machine.Node, parcels []Parcel) []Parcel {
	p := n.P()
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("crystal: P=%d is not a power of two", p))
	}
	for _, pc := range parcels {
		if pc.Dest < 0 || pc.Dest >= p {
			panic(fmt.Sprintf("crystal: destination %d out of [0,%d)", pc.Dest, p))
		}
	}
	dim := n.Machine().Dim()
	held := append([]Parcel(nil), parcels...)
	for d := 0; d < dim; d++ {
		bit := 1 << uint(d)
		partner := n.ID() ^ bit
		// Split held parcels: those whose destination differs from us in
		// bit d travel across this dimension now.
		var keep, send []Parcel
		bytes := 0
		for _, pc := range held {
			if (pc.Dest^n.ID())&bit != 0 {
				send = append(send, pc)
				bytes += pc.Bytes
			} else {
				keep = append(keep, pc)
			}
		}
		// Per-stage software overhead of the combine (sorting, buffer
		// management); this is the cost the paper identifies as the
		// growing term of the inspector on the NCUBE.
		n.Advance(n.Machine().Params().CombineStage)
		n.Send(partner, machine.TagCrystal, stageMsg{parcels: send}, bytes+8)
		msg := n.Recv(partner, machine.TagCrystal)
		held = append(keep, msg.Payload.(stageMsg).parcels...)
	}
	// Everything we hold is now ours.
	for _, pc := range held {
		if pc.Dest != n.ID() {
			panic(fmt.Sprintf("crystal: node %d ended with parcel for %d", n.ID(), pc.Dest))
		}
	}
	return held
}

// RouteSorted is Route followed by a deterministic sort using the
// provided less function over the parcel data.
func RouteSorted(n *machine.Node, parcels []Parcel, less func(a, b Parcel) bool) []Parcel {
	out := Route(n, parcels)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
