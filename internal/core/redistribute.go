package core

import (
	"fmt"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
)

// Redistribute moves a one-dimensional distributed array into a new
// distribution, returning the new handle.  Every node computes the
// transfer sets in closed form — out(p,q) = local_old(p) ∩ local_new(q)
// — so no inspector pass is needed; both ends of each transfer derive
// the same sets independently, exactly like the compile-time analysis
// of forall loops.
//
// This is the run-time face of the paper's flexibility claim (§2.4):
// distributions are data, not program structure, so a program can
// re-decompose mid-run (the paper's future-work interest in dynamic
// load balancing).  Costs are charged per element copied plus the
// usual message costs.
func (c *Context) Redistribute(src *darray.Array, name string, spec dist.DimSpec) *darray.Array {
	if src.Rank() != 1 || src.Replicated() {
		panic(fmt.Sprintf("core: Redistribute needs a 1-D distributed array, got %q", src.Name()))
	}
	n := src.Shape()[0]
	dst := darray.New(name, dist.Must([]int{n}, []dist.DimSpec{spec}, c.Grid), c.Node)

	me := c.ID()
	oldPat := src.Dist().Pattern(0)
	newPat := dst.Dist().Pattern(0)
	oldLocal := oldPat.Local(me)
	newLocal := newPat.Local(me)

	// Local moves first.
	keep := oldLocal.Intersect(newLocal)
	keep.Each(func(g int) {
		dst.Set1(g, src.Get1(g))
	})
	c.Node.Charge(machine.Cost{MemRefs: 2 * keep.Len()})

	// Sends: ascending peer order keeps the schedule deterministic.
	for q := 0; q < c.P(); q++ {
		if q == me {
			continue
		}
		out := oldLocal.Intersect(newPat.Local(q))
		if out.Empty() {
			continue
		}
		payload := make([]float64, 0, out.Len())
		out.Each(func(g int) { payload = append(payload, src.Get1(g)) })
		c.Node.Charge(machine.Cost{MemRefs: len(payload)})
		c.Node.Send(q, machine.TagData, payload, 8*len(payload))
	}

	// Receives: the mirror formula tells us exactly who sends what.
	for q := 0; q < c.P(); q++ {
		if q == me {
			continue
		}
		in := newLocal.Intersect(oldPat.Local(q))
		if in.Empty() {
			continue
		}
		msg := c.Node.Recv(q, machine.TagData)
		payload := msg.Payload.([]float64)
		if len(payload) != in.Len() {
			panic(fmt.Sprintf("core: redistribute from %d: got %d values, want %d",
				q, len(payload), in.Len()))
		}
		k := 0
		in.Each(func(g int) {
			dst.Set1(g, payload[k])
			k++
		})
		c.Node.Charge(machine.Cost{MemRefs: len(payload)})
	}
	return dst
}
