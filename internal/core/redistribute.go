package core

import (
	"kali/internal/darray"
	"kali/internal/dist"
)

// Redistribute rebinds a distributed array to a new dist clause in
// place — the run-time face of the paper's flexibility claim (§2.4):
// distributions are data, not program structure, so a program can
// re-decompose mid-run (multi-phase algorithms like ADI alternate a
// row layout and a column layout; the paper's future-work interest in
// dynamic load balancing needs the same primitive).
//
// The element moves are schedule-driven (darray.Redistribute): both
// ends of every transfer compute out(p→q) = local_old(p) ∩
// local_new(q) in closed form — no inspector pass — and exchange one
// coalesced message per processor pair.  Plans are cached by
// distribution-fingerprint pair, so ping-pong phase changes replay
// allocation-free; the traffic is attributed to Report.RedistMsgs/
// RedistBytes and the time to Report.Redist, distinct from the forall
// phases.  Every node must call Redistribute collectively with the
// same specs.
func (c *Context) Redistribute(a *darray.Array, specs ...dist.DimSpec) {
	darray.Redistribute(a, dist.Must(a.Shape(), specs, c.Grid))
}
