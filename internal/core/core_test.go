package core

import (
	"strings"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
)

func TestRunBasics(t *testing.T) {
	var mu sync.Mutex
	ids := map[int]bool{}
	rep := Run(Config{P: 4, Params: machine.Ideal()}, func(ctx *Context) {
		mu.Lock()
		ids[ctx.ID()] = true
		mu.Unlock()
		if ctx.P() != 4 {
			t.Errorf("P = %d", ctx.P())
		}
	})
	if len(ids) != 4 {
		t.Fatalf("ran on %d nodes", len(ids))
	}
	if rep.P != 4 || rep.Machine != "ideal" {
		t.Fatalf("report %+v", rep)
	}
}

func TestArrayConstructors(t *testing.T) {
	Run(Config{P: 2, Params: machine.Ideal()}, func(ctx *Context) {
		if got := ctx.BlockArray("b", 10).Dist().String(); got != "dist by [block]" {
			t.Errorf("block: %s", got)
		}
		if got := ctx.CyclicArray("c", 10).Dist().String(); got != "dist by [cyclic]" {
			t.Errorf("cyclic: %s", got)
		}
		if got := ctx.ReplicatedArray("r", 5).Dist().String(); got != "replicated" {
			t.Errorf("replicated: %s", got)
		}
		a2 := ctx.Array("m", []int{4, 3}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()})
		if a2.Rank() != 2 {
			t.Error("2-D array")
		}
		ia := ctx.BlockIntArray("k", 10)
		if ia.Rank() != 1 {
			t.Error("int array")
		}
		ia2 := ctx.IntArray("k2", []int{4, 2}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()})
		if ia2.Rank() != 2 {
			t.Error("2-D int array")
		}
	})
}

func TestForallThroughContext(t *testing.T) {
	rep := Run(Config{P: 4, Params: machine.NCUBE7()}, func(ctx *Context) {
		a := ctx.BlockArray("a", 16)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)) })
		ctx.Forall(&forall.Loop{
			Name: "sq", Lo: 1, Hi: 16,
			On: a, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: a, Affine: &analysis.Identity}},
			Body: func(i int, e *forall.Env) {
				v := e.Read(a, i)
				e.Flops(1)
				e.Write(a, i, v*v)
			},
		})
		if a.IsLocal1(3) && a.Get1(3) != 9 {
			t.Errorf("a[3] = %g", a.Get1(3))
		}
	})
	if rep.Executor <= 0 {
		t.Fatal("no executor time recorded")
	}
	if rep.Total != rep.Inspector+rep.Executor {
		t.Fatal("Total must be inspector+executor")
	}
}

func TestReduceAndBarrier(t *testing.T) {
	Run(Config{P: 4, Params: machine.Ideal()}, func(ctx *Context) {
		ctx.Barrier()
		if got := ctx.AllReduce(float64(ctx.ID()), "sum"); got != 6 {
			t.Errorf("sum = %g", got)
		}
	})
}

func TestReportString(t *testing.T) {
	r := Report{P: 8, Machine: "NCUBE/7", Total: 10, Inspector: 1, Executor: 9}
	s := r.String()
	for _, want := range []string{"NCUBE/7", "P=8", "10.00", "10.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	if r.OverheadPct() != 10 {
		t.Fatal("overhead pct")
	}
	if (Report{}).OverheadPct() != 0 {
		t.Fatal("zero-total overhead must be 0")
	}
}

func TestRunOnReusesMachine(t *testing.T) {
	m := sim.MustNew(2, machine.Ideal())
	r1 := RunOn(m, func(ctx *Context) { ctx.Barrier() })
	r2 := RunOn(m, func(ctx *Context) { ctx.Barrier() })
	if r1.P != 2 || r2.P != 2 {
		t.Fatal("RunOn reports wrong P")
	}
}
