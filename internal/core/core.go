// Package core is the Kali runtime facade: it ties the simulated
// machine, processor grids, distributed arrays and the forall engine
// into a single programming context, and collects the per-phase timing
// report the paper's tables (§4, Figures 7–10) are built from.
//
// A Kali program is an SPMD function over a Context:
//
//	rep := core.Run(core.Config{P: 16, Params: machine.NCUBE7()},
//	    func(ctx *core.Context) {
//	        a := ctx.BlockArray("A", n)
//	        ctx.Forall(&forall.Loop{...})
//	    })
//
// Run executes the function on every simulated node and returns the
// aggregated Report.
package core

import (
	"fmt"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// Config describes the machine a program runs on.
type Config struct {
	// P is the number of processors.
	P int
	// Params is the machine cost model (machine.NCUBE7(), machine.IPSC2(),
	// machine.Ideal()).
	Params machine.Params
	// Backend selects the node runtime: "sim" (default — the
	// virtual-clock simulator, deterministic predicted times) or
	// "wall" (real threads and shared-memory queues, measured times).
	Backend string
	// NoOverlap runs the phase-synchronous executors (blocking sends,
	// fixed-order drains) instead of the default split-phase overlap
	// execution; `kalirun -overlap=off` sets it.  The escape hatch and
	// the differential oracle: results and message counts are identical
	// either way.
	NoOverlap bool
	// NoFuse disables cross-loop message aggregation: ForallSeq (and
	// the language interpreter's adjacent-forall batching built on it)
	// degrades to sequential per-loop execution — the phase-per-loop
	// oracle `kalirun -fuse=off` selects.  Results, byte counts and
	// contents are identical either way; only message counts and timing
	// change.
	NoFuse bool
	// Machine, when non-nil, runs the program on this existing machine
	// (reset first) instead of building a fresh one — the schedule
	// server's pool-reuse path.  It is honored only when its processor
	// count equals P; otherwise a fresh machine is built from the rest
	// of the config (the language front end may elaborate to fewer
	// processors than a pooled machine has).
	Machine *machine.Machine
	// Store, when non-nil, is a cross-tenant shared schedule store the
	// run's engines consult before building (and publish into after):
	// concurrently running programs adopt each other's compile-time
	// schedules, and persisted blueprints make warm starts skip
	// building entirely.
	Store *forall.SharedStore
}

// NewMachine builds the machine cfg describes, choosing the backend
// by name ("", "sim" → simulator; "wall", "wallclock" → real
// threads).
func NewMachine(cfg Config) (*machine.Machine, error) {
	switch cfg.Backend {
	case "", "sim":
		return sim.New(cfg.P, cfg.Params)
	case "wall", "wallclock":
		return wallclock.New(cfg.P, cfg.Params)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want sim or wall)", cfg.Backend)
	}
}

// Context is one node's view of a running Kali program.
type Context struct {
	Node *machine.Node
	Eng  *forall.Engine
	Grid *topology.Grid
}

// P returns the processor count.
func (c *Context) P() int { return c.Node.P() }

// ID returns this node's processor id.
func (c *Context) ID() int { return c.Node.ID() }

// BlockArray declares a 1-D block-distributed real array[1..n].
func (c *Context) BlockArray(name string, n int) *darray.Array {
	return darray.New(name, dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, c.Grid), c.Node)
}

// CyclicArray declares a 1-D cyclically distributed real array[1..n].
func (c *Context) CyclicArray(name string, n int) *darray.Array {
	return darray.New(name, dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, c.Grid), c.Node)
}

// Array declares an array with an explicit shape and dist clause.
func (c *Context) Array(name string, shape []int, specs []dist.DimSpec) *darray.Array {
	return darray.New(name, dist.Must(shape, specs, c.Grid), c.Node)
}

// ReplicatedArray declares an array without a dist clause: one copy
// per node.
func (c *Context) ReplicatedArray(name string, shape ...int) *darray.Array {
	return darray.New(name, dist.NewReplicated(shape, c.Grid), c.Node)
}

// IntArray declares an integer array with an explicit dist clause.
func (c *Context) IntArray(name string, shape []int, specs []dist.DimSpec) *darray.IntArray {
	return darray.NewInt(name, dist.Must(shape, specs, c.Grid), c.Node)
}

// BlockIntArray declares a 1-D block-distributed integer array.
func (c *Context) BlockIntArray(name string, n int) *darray.IntArray {
	return darray.NewInt(name, dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, c.Grid), c.Node)
}

// Forall executes a rank-1 forall loop (Engine.Run: the cache →
// compile-time → inspector pipeline).
func (c *Context) Forall(l *forall.Loop) { c.Eng.Run(l) }

// Forall2 executes a two-dimensional forall loop (Engine.Run2).
func (c *Context) Forall2(l *forall.Loop2) { c.Eng.Run2(l) }

// ForallSeq executes a sequence of forall loops through the engine's
// cross-loop aggregation pipeline (Engine.RunSequence): consecutive
// loops whose reads are untouched by the preceding loops' writes merge
// their per-pair messages into one fused send posted up front, and
// execution pipelines without inter-loop barriers.  Semantically
// identical to running the loops one by one.
func (c *Context) ForallSeq(seq []forall.SeqLoop) { c.Eng.RunSequence(seq) }

// AllReduce combines one value from every node ("sum", "max", "min",
// "and") — Kali's convergence-test primitive.
func (c *Context) AllReduce(x float64, op string) float64 {
	return c.Node.AllReduce(x, op)
}

// Barrier synchronizes all nodes.
func (c *Context) Barrier() { c.Node.Barrier() }

// Report aggregates a program run: virtual times in seconds, maxima
// over all processors, as the paper reports them.
type Report struct {
	P       int
	Machine string
	// Backend names the node runtime the numbers came from: "sim"
	// times are cost-model predictions, "wall" times are measured.
	Backend string

	// Total is exec+inspector, matching the paper's "total time"
	// column (its measured regions were exactly those two phases;
	// redistribution time is reported separately in Redist).
	Total float64
	// Inspector is the max accumulated inspector-phase time.
	Inspector float64
	// Executor is the max accumulated executor-phase time.
	Executor float64
	// Redist is the max accumulated redistribution-phase time
	// (darray.PhaseRedistribute): the cost of dynamic remappings.
	Redist float64
	// Elapsed is the full simulated wall time including setup,
	// reductions and barriers.
	Elapsed float64

	MsgsSent  int
	BytesSent int
	// RedistMsgs/RedistBytes are the subset of MsgsSent/BytesSent moved
	// by array redistribution (machine.TagRedist), attributed distinctly
	// from forall traffic.
	RedistMsgs  int
	RedistBytes int
	// FusedMsgs/FusedBytes are the subset moved as cross-loop aggregated
	// messages (machine.TagFused): each fused message replaces several
	// per-loop messages to the same peer.
	FusedMsgs  int
	FusedBytes int

	// SchedEvictions counts forall schedules dropped from the bounded
	// content-addressed stores (summed over nodes); PlanEvictions
	// counts redistribution plans dropped from the machine's bounded
	// plan store.  Nonzero values mean the working set exceeded the
	// cache bounds and some replays are paying rebuild cost.
	SchedEvictions int
	PlanEvictions  int

	// Builds counts forall schedules constructed from scratch (summed
	// over nodes); SharedHits counts replays served by each engine's
	// local structural cache; StoreHits counts schedules adopted from a
	// cross-tenant SharedStore (cfg.Store) instead of built — the
	// multi-tenant sharing benefit, zero when no store is configured.
	Builds     int
	SharedHits int
	StoreHits  int
}

// OverheadPct returns the paper's "inspector overhead" column:
// inspector time as a percentage of total time.
func (r Report) OverheadPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * r.Inspector / r.Total
}

func (r Report) String() string {
	return fmt.Sprintf("%s P=%d total=%.2fs exec=%.2fs insp=%.2fs (%.1f%%)",
		r.Machine, r.P, r.Total, r.Executor, r.Inspector, r.OverheadPct())
}

// Run executes prog as an SPMD program on a fresh P-node machine
// (cfg.Backend selects the runtime) and returns the timing report.
func Run(cfg Config, prog func(ctx *Context)) Report {
	m := cfg.Machine
	if m == nil || m.P() != cfg.P {
		var err error
		m, err = NewMachine(cfg)
		if err != nil {
			panic(err)
		}
	}
	return runOn(m, cfg.NoOverlap, cfg.NoFuse, cfg.Store, prog)
}

// RunOn executes prog on an existing machine (reset first), allowing
// reuse across experiments.  Engines run with default options (overlap
// and fusion on, no shared store); use Run with a Config to ablate.
func RunOn(m *machine.Machine, prog func(ctx *Context)) Report {
	return runOn(m, false, false, nil, prog)
}

func runOn(m *machine.Machine, noOverlap, noFuse bool, store *forall.SharedStore, prog func(ctx *Context)) Report {
	m.Reset()
	grid := topology.MustGrid(m.P())
	engines := make([]*forall.Engine, m.P())
	m.Run(func(n *machine.Node) {
		eng := forall.NewEngine(n)
		eng.NoOverlap = noOverlap
		eng.NoFuse = noFuse
		eng.Store = store
		ctx := &Context{
			Node: n,
			Eng:  eng,
			Grid: grid,
		}
		engines[n.ID()] = ctx.Eng
		prog(ctx)
	})
	rep := Report{
		P:         m.P(),
		Machine:   m.Params().Name,
		Backend:   m.Backend(),
		Inspector: m.MaxPhase(forall.PhaseInspector),
		Executor:  m.MaxPhase(forall.PhaseExecutor),
		Redist:    m.MaxPhase(darray.PhaseRedistribute),
		Elapsed:   m.MaxClock(),
	}
	rep.Total = rep.Inspector + rep.Executor
	for i := 0; i < m.P(); i++ {
		st := m.Node(i).Stats()
		rep.MsgsSent += st.MsgsSent
		rep.BytesSent += st.BytesSent
		rep.RedistMsgs += st.RedistMsgsSent
		rep.RedistBytes += st.RedistBytesSent
		rep.FusedMsgs += st.FusedMsgsSent
		rep.FusedBytes += st.FusedBytesSent
	}
	for _, e := range engines {
		if e != nil {
			rep.SchedEvictions += e.SharedEvictions()
			rep.Builds += e.Builds()
			rep.SharedHits += e.SharedHits()
			rep.StoreHits += e.StoreHits()
		}
	}
	rep.PlanEvictions = darray.PlanEvictions(m)
	return rep
}
