package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/dist"
	"kali/internal/machine"
)

func TestRedistributeBlockToCyclic(t *testing.T) {
	const n, p = 23, 4
	Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
		a := ctx.BlockArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)*10) })
		b := ctx.Redistribute(a, "b", dist.CyclicDim())
		b.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			if b.Get1(i) != float64(i)*10 {
				t.Errorf("b[%d] = %g, want %g", i, b.Get1(i), float64(i)*10)
			}
		})
	})
}

func TestRedistributeRoundTrip(t *testing.T) {
	const n, p = 40, 8
	Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
		a := ctx.CyclicArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i*i)) })
		b := ctx.Redistribute(a, "b", dist.BlockCyclicDim(3))
		c := ctx.Redistribute(b, "c", dist.CyclicDim())
		c.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			if c.Get1(i) != float64(i*i) {
				t.Errorf("round trip lost c[%d] = %g", i, c.Get1(i))
			}
		})
	})
}

func TestRedistributeSameDistIsLocal(t *testing.T) {
	const n, p = 16, 4
	rep := Run(Config{P: p, Params: machine.NCUBE7()}, func(ctx *Context) {
		a := ctx.BlockArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, 1) })
		ctx.Redistribute(a, "b", dist.BlockDim())
	})
	if rep.MsgsSent != 0 {
		t.Fatalf("identity redistribution sent %d messages", rep.MsgsSent)
	}
}

func TestRedistributePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{P: 2, Params: machine.Ideal()}, func(ctx *Context) {
		r := ctx.ReplicatedArray("r", 8)
		ctx.Redistribute(r, "x", dist.BlockDim())
	})
}

// TestQuickRedistributePreservesContents: random source/target
// distributions over random sizes always preserve every element.
func TestQuickRedistributePreservesContents(t *testing.T) {
	specs := func(r *rand.Rand) dist.DimSpec {
		switch r.Intn(3) {
		case 0:
			return dist.BlockDim()
		case 1:
			return dist.CyclicDim()
		default:
			return dist.BlockCyclicDim(1 + r.Intn(4))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		p := []int{1, 2, 3, 4, 8}[r.Intn(5)]
		from, to := specs(r), specs(r)
		ok := true
		Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
			a := ctx.Array("a", []int{n}, []dist.DimSpec{from})
			a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)*3) })
			b := ctx.Redistribute(a, "b", to)
			b.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
				if b.Get1(i) != float64(i)*3 {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
