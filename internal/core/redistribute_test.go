package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/dist"
	"kali/internal/machine"
)

func TestRedistributeBlockToCyclic(t *testing.T) {
	const n, p = 23, 4
	Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
		a := ctx.BlockArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)*10) })
		ctx.Redistribute(a, dist.CyclicDim())
		if a.Dist().Spec(0).Kind != dist.Cyclic {
			t.Fatalf("a still distributed %v after redistribution", a.Dist())
		}
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			if a.Get1(i) != float64(i)*10 {
				t.Errorf("a[%d] = %g, want %g", i, a.Get1(i), float64(i)*10)
			}
		})
	})
}

func TestRedistributeRoundTrip(t *testing.T) {
	const n, p = 40, 8
	Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
		a := ctx.CyclicArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i*i)) })
		ctx.Redistribute(a, dist.BlockCyclicDim(3))
		ctx.Redistribute(a, dist.CyclicDim())
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) {
			if a.Get1(i) != float64(i*i) {
				t.Errorf("round trip lost a[%d] = %g", i, a.Get1(i))
			}
		})
	})
}

func TestRedistributeSameDistIsLocal(t *testing.T) {
	const n, p = 16, 4
	rep := Run(Config{P: p, Params: machine.NCUBE7()}, func(ctx *Context) {
		a := ctx.BlockArray("a", n)
		a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, 1) })
		ctx.Redistribute(a, dist.BlockDim())
	})
	if rep.MsgsSent != 0 {
		t.Fatalf("identity redistribution sent %d messages", rep.MsgsSent)
	}
}

func TestRedistributePanicsOnReplicated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{P: 2, Params: machine.Ideal()}, func(ctx *Context) {
		r := ctx.ReplicatedArray("r", 8)
		ctx.Redistribute(r, dist.BlockDim())
	})
}

// TestRedistributeRank2Transpose: the ADI core — a rank-2 array moves
// from row layout [block, *] to column layout [*, block] and back,
// with every element preserved and the traffic attributed to the
// redistribution counters, not the forall ones.
func TestRedistributeRank2Transpose(t *testing.T) {
	const n, p = 12, 4
	rep := Run(Config{P: p, Params: machine.NCUBE7()}, func(ctx *Context) {
		u := ctx.Array("u", []int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()})
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if u.IsLocal(i, j) {
					u.Set(float64(i*100+j), i, j)
				}
			}
		}
		ctx.Redistribute(u, dist.CollapsedDim(), dist.BlockDim())
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if u.Dist().Owner(i, j) == ctx.ID() {
					if !u.IsLocal(i, j) || u.Get(i, j) != float64(i*100+j) {
						t.Errorf("node %d: u[%d,%d] wrong after transpose", ctx.ID(), i, j)
					}
				}
			}
		}
		ctx.Redistribute(u, dist.BlockDim(), dist.CollapsedDim())
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if u.IsLocal(i, j) && u.Get(i, j) != float64(i*100+j) {
					t.Errorf("node %d: u[%d,%d] wrong after round trip", ctx.ID(), i, j)
				}
			}
		}
	})
	if rep.RedistMsgs == 0 || rep.RedistBytes == 0 {
		t.Fatalf("transpose attributed no redistribution traffic: %+v", rep)
	}
	if rep.MsgsSent != rep.RedistMsgs {
		t.Fatalf("non-redistribution messages in a pure-redistribution run: %d total, %d redist",
			rep.MsgsSent, rep.RedistMsgs)
	}
	if rep.Redist <= 0 {
		t.Fatal("redistribution phase time not accounted")
	}
	if rep.Inspector != 0 || rep.Executor != 0 {
		t.Fatalf("redistribution leaked into forall phases: insp=%g exec=%g", rep.Inspector, rep.Executor)
	}
}

// TestQuickRedistributePreservesContents: random source/target
// distributions over random sizes always preserve every element and
// land it on the owner the new dist reports.
func TestQuickRedistributePreservesContents(t *testing.T) {
	specs := func(r *rand.Rand) dist.DimSpec {
		switch r.Intn(3) {
		case 0:
			return dist.BlockDim()
		case 1:
			return dist.CyclicDim()
		default:
			return dist.BlockCyclicDim(1 + r.Intn(4))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		p := []int{1, 2, 3, 4, 8}[r.Intn(5)]
		from, to := specs(r), specs(r)
		ok := true
		Run(Config{P: p, Params: machine.Ideal()}, func(ctx *Context) {
			a := ctx.Array("a", []int{n}, []dist.DimSpec{from})
			a.Dist().Pattern(0).Local(ctx.ID()).Each(func(i int) { a.Set1(i, float64(i)*3) })
			ctx.Redistribute(a, to)
			me := ctx.ID()
			for i := 1; i <= n; i++ {
				if a.Dist().Pattern(0).Owner(i) == me {
					if !a.IsLocal1(i) || a.Get1(i) != float64(i)*3 {
						ok = false
					}
				} else if a.IsLocal1(i) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
