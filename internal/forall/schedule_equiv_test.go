package forall

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"kali/internal/analysis"
	"kali/internal/comm"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/index"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// schedSnap is the comparable projection of one node's schedule.
type schedSnap struct {
	Kind         BuildKind
	ExecLocal    []iteration
	ExecNonlocal []iteration
	In           [][]comm.Range
	InTotal      []int
	Out          [][]comm.Range
}

// snapshot extracts the comparable parts of a schedule.  Out-set Buf
// fields are receiver-side buffer offsets on the inspector path and
// unused by the executor, so they are normalized away.
func snapshot(s *Schedule) schedSnap {
	snap := schedSnap{
		Kind:         s.kind,
		ExecLocal:    append([]iteration(nil), s.execLocal...),
		ExecNonlocal: append([]iteration(nil), s.execNonlocal...),
	}
	for _, as := range s.arrays {
		snap.In = append(snap.In, append([]comm.Range(nil), as.in.Ranges...))
		snap.InTotal = append(snap.InTotal, as.in.Total)
		outs := append([]comm.Range(nil), as.out.Ranges...)
		for i := range outs {
			outs[i].Buf = 0
		}
		snap.Out = append(snap.Out, outs)
	}
	return snap
}

// randDim picks a random distribution spec for one dimension.
func randDim(r *rand.Rand, n, p int) dist.DimSpec {
	switch r.Intn(4) {
	case 0:
		return dist.BlockDim()
	case 1:
		return dist.CyclicDim()
	case 2:
		return dist.BlockCyclicDim(1 + r.Intn(3))
	default:
		// User map: random owner per index — the interval-compressed
		// pattern must agree with every closed-form one.
		owners := make([]int, n)
		for i := range owners {
			owners[i] = r.Intn(p)
		}
		return dist.MapDim(owners)
	}
}

// TestScheduleCompileTimeMatchesInspector2D is the rank-2 executor
// equivalence matrix: for random grid shapes, random per-dimension
// distributions (block / cyclic / block_cyclic / user map), random
// affine *read* subscripts AND random affine *on-clause* subscripts
// (shifts, strides, reflections), all three executor variants —
// compile-time, forced inspector, and Saltz-style enumeration — build
// element-for-element identical communication schedules (same
// iteration lists, same in/out records, same buffer layout, same
// receive counts) and compute the same values.
func TestScheduleCompileTimeMatchesInspector2D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ny, nx := 4+r.Intn(10), 4+r.Intn(10)
		grids := [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 2}}
		gr := grids[r.Intn(len(grids))]
		p := gr[0] * gr[1]

		// Per-dimension affine subscripts for two reads of src — shifts
		// most of the time, occasionally strided (a=2) or reflected
		// (a=-1) so the non-unit coefficient paths stay compared.
		randAff := func(n int) analysis.Affine {
			switch r.Intn(6) {
			case 0:
				return analysis.Affine{A: -1, C: n + 1 - (r.Intn(3) - 1)}
			case 1:
				return analysis.Affine{A: 2, C: r.Intn(3) - 1}
			default:
				return analysis.Affine{A: 1, C: r.Intn(5) - 2}
			}
		}
		// On-clause subscripts: identity half the time, else shifted,
		// strided, or reflected placement.
		randOn := func(n int) analysis.Affine {
			switch r.Intn(6) {
			case 0:
				return analysis.Affine{A: 2, C: r.Intn(2)}
			case 1:
				return analysis.Affine{A: -1, C: n + 1}
			case 2:
				return analysis.Affine{A: 1, C: r.Intn(3) - 1}
			default:
				return analysis.Identity
			}
		}
		onF := analysis.Affine2{I: randOn(ny), J: randOn(nx)}
		g1 := analysis.Affine2{I: randAff(ny), J: randAff(nx)}
		g2 := analysis.Affine2{I: randAff(ny), J: randAff(nx)}
		// Loop bounds: iterations whose subscripts stay inside the array
		// for the on clause and both reads (each preimage of [1..n] is
		// one interval, so the intersection is a contiguous range).
		rowSet := index.Range(1, ny).
			Intersect(onF.I.Preimage(index.Range(1, ny))).
			Intersect(g1.I.Preimage(index.Range(1, ny))).
			Intersect(g2.I.Preimage(index.Range(1, ny)))
		colSet := index.Range(1, nx).
			Intersect(onF.J.Preimage(index.Range(1, nx))).
			Intersect(g1.J.Preimage(index.Range(1, nx))).
			Intersect(g2.J.Preimage(index.Range(1, nx)))
		if rowSet.Empty() || colSet.Empty() {
			return true // degenerate range, nothing to compare
		}
		loI, hiI := rowSet.Min(), rowSet.Max()
		loJ, hiJ := colSet.Min(), colSet.Max()

		g := topology.MustGrid(gr[0], gr[1])
		dOn := dist.Must([]int{ny, nx}, []dist.DimSpec{randDim(r, ny, gr[0]), randDim(r, nx, gr[1])}, g)
		dSrc := dist.Must([]int{ny, nx}, []dist.DimSpec{randDim(r, ny, gr[0]), randDim(r, nx, gr[1])}, g)

		run := func(force, enum bool) ([]schedSnap, []float64, []int) {
			mach := sim.MustNew(p, machine.Ideal())
			snaps := make([]schedSnap, p)
			recvs := make([]int, p)
			vals := make([]float64, ny*nx)
			var mu sync.Mutex
			mach.Run(func(nd *machine.Node) {
				dst := darray.New("dst", dOn, nd)
				src := darray.New("src", dSrc, nd)
				for i := 1; i <= ny; i++ {
					for j := 1; j <= nx; j++ {
						if src.IsLocal(i, j) {
							src.Set2(i, j, float64(i*1000+j))
						}
					}
				}
				eng := NewEngine(nd)
				eng.ForceInspector = force
				eng.Run2(&Loop2{
					Name: "equiv", LoI: loI, HiI: hiI, LoJ: loJ, HiJ: hiJ,
					On:   dst,
					OnF2: onF,
					Reads: []ReadSpec{
						{Array: src, Affine2: &g1},
						{Array: src, Affine2: &g2},
					},
					Enumerate: enum,
					Body: func(i, j int, e *Env) {
						v := e.ReadAt(src, g1.I.Apply(i), g1.J.Apply(j)) +
							e.ReadAt(src, g2.I.Apply(i), g2.J.Apply(j))
						e.WriteAt(dst, v, onF.I.Apply(i), onF.J.Apply(j))
					},
				})
				mu.Lock()
				snaps[nd.ID()] = snapshot(eng.Schedule2("equiv"))
				recvs[nd.ID()] = eng.Schedule2("equiv").RecvCount()
				for i := 1; i <= ny; i++ {
					for j := 1; j <= nx; j++ {
						if dst.IsLocal(i, j) {
							vals[(i-1)*nx+(j-1)] = dst.Get2(i, j)
						}
					}
				}
				mu.Unlock()
			})
			return snaps, vals, recvs
		}

		ct, ctVals, ctRecv := run(false, false)
		insp, inspVals, inspRecv := run(true, false)
		enum, enumVals, enumRecv := run(false, true)

		for q := 0; q < p; q++ {
			if ct[q].Kind != BuildCompileTime {
				t.Logf("seed %d node %d: kind %v, want compile-time", seed, q, ct[q].Kind)
				return false
			}
			if insp[q].Kind != BuildInspector || enum[q].Kind != BuildInspector {
				t.Logf("seed %d node %d: kinds %v/%v, want inspector", seed, q, insp[q].Kind, enum[q].Kind)
				return false
			}
			if ctRecv[q] != inspRecv[q] || ctRecv[q] != enumRecv[q] {
				t.Logf("seed %d node %d: recv counts %d/%d/%d differ", seed, q, ctRecv[q], inspRecv[q], enumRecv[q])
				return false
			}
			a, b, c := ct[q], insp[q], enum[q]
			a.Kind, b.Kind, c.Kind = 0, 0, 0
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
				t.Logf("seed %d node %d (ny=%d nx=%d grid=%v on=%v src=%v onF=%+v g1=%+v g2=%+v):\n  compile-time %+v\n  inspector    %+v\n  enumerate    %+v",
					seed, q, ny, nx, gr, dOn, dSrc, onF, g1, g2, a, b, c)
				return false
			}
		}

		// Same answer from all three executors, matching the sequential
		// model at the placed (on-clause-mapped) element.
		for i := loI; i <= hiI; i++ {
			for j := loJ; j <= hiJ; j++ {
				want := float64(g1.I.Apply(i)*1000+g1.J.Apply(j)) +
					float64(g2.I.Apply(i)*1000+g2.J.Apply(j))
				k := (onF.I.Apply(i)-1)*nx + (onF.J.Apply(j) - 1)
				if ctVals[k] != want || inspVals[k] != want || enumVals[k] != want {
					t.Logf("seed %d: dst[%d,%d] = %g / %g / %g, want %g",
						seed, onF.I.Apply(i), onF.J.Apply(j), ctVals[k], inspVals[k], enumVals[k], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleCompileTime2DBeatsInspectorCost: the point of the
// closed-form path — schedule acquisition charges no per-iteration
// inspector work and no exchange, so its simulated build time is
// strictly lower.
func TestScheduleCompileTime2DBeatsInspectorCost(t *testing.T) {
	build := func(force bool) float64 {
		const n, pr, pc = 64, 2, 2
		g := topology.MustGrid(pr, pc)
		d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
		mach := sim.MustNew(pr*pc, machine.NCUBE7())
		mach.Run(func(nd *machine.Node) {
			a := darray.New("a", d, nd)
			old := darray.New("old", d, nd)
			eng := NewEngine(nd)
			eng.ForceInspector = force
			eng.NoCache = true
			loop := &Loop2{
				Name: "relax", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
				On:    a,
				Reads: []ReadSpec{{Array: old, Affine2: affine2(1, -1, 1, 0)}, {Array: old, Affine2: affine2(1, 1, 1, 0)}, {Array: old, Affine2: affine2(1, 0, 1, -1)}, {Array: old, Affine2: affine2(1, 0, 1, 1)}},
				Body: func(i, j int, e *Env) {
					x := 0.25 * (e.ReadAt(old, i-1, j) + e.ReadAt(old, i+1, j) +
						e.ReadAt(old, i, j-1) + e.ReadAt(old, i, j+1))
					e.WriteAt(a, x, i, j)
				},
			}
			for s := 0; s < 3; s++ {
				eng.Run2(loop)
			}
		})
		return mach.MaxPhase(PhaseInspector)
	}
	ct, insp := build(false), build(true)
	if ct <= 0 || insp <= 0 {
		t.Fatalf("phases not recorded: compile-time %g, inspector %g", ct, insp)
	}
	if ct*5 >= insp {
		t.Fatalf("compile-time 2-D build (%gs) should be far cheaper than inspector (%gs)", ct, insp)
	}
}

// TestScheduleCacheRankSeparation: a rank-1 loop literally named
// "2d:x" must not collide with a Loop2 named "x" in the unified cache.
func TestScheduleCacheRankSeparation(t *testing.T) {
	g1 := topology.MustGrid(1)
	g2 := topology.MustGrid(1, 1)
	d1 := dist.Must([]int{6}, []dist.DimSpec{dist.BlockDim()}, g1)
	d2 := dist.Must([]int{6, 6}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g2)
	mach := sim.MustNew(1, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a1 := darray.New("a1", d1, nd)
		a2 := darray.New("a2", d2, nd)
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "2d:x", Lo: 2, Hi: 5, On: a1, OnF: analysis.Identity,
			Body: func(i int, e *Env) { e.Write(a1, i, 1) },
		})
		ran := 0
		eng.Run2(&Loop2{
			Name: "x", LoI: 2, HiI: 5, LoJ: 0, HiJ: 0,
			On:   a2,
			Body: func(i, j int, e *Env) { ran++ },
		})
		if eng.LastBuildKind() == BuildCached {
			t.Error("Loop2 \"x\" reused the schedule of rank-1 loop \"2d:x\"")
		}
		if ran != 0 {
			t.Errorf("Loop2 with empty j-range ran %d iterations (replayed rank-1 exec list?)", ran)
		}
	})
}

func affine2(aI, cI, aJ, cJ int) *analysis.Affine2 {
	return &analysis.Affine2{I: analysis.Affine{A: aI, C: cI}, J: analysis.Affine{A: aJ, C: cJ}}
}

// TestScheduleCacheShapeChangeRebuilds: a cached schedule must not be
// replayed when the same-named loop comes back with a different
// on-clause placement or executor variant — both knobs change which
// iterations run where.
func TestScheduleCacheShapeChangeRebuilds(t *testing.T) {
	const n = 8
	g := topology.MustGrid(2, 2)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(4, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		src := darray.New("src", d, nd)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if src.IsLocal(i, j) {
					src.Set2(i, j, float64(i*100+j))
				}
			}
		}
		eng := NewEngine(nd)
		mk := func(onF analysis.Affine2, enum bool) *Loop2 {
			return &Loop2{
				Name: "shape", LoI: 1, HiI: n - 1, LoJ: 1, HiJ: n - 1,
				On: a, OnF2: onF,
				Reads:     []ReadSpec{{Array: src, Affine2: &analysis.Identity2}},
				Enumerate: enum,
				Body: func(i, j int, e *Env) {
					e.WriteAt(a, e.ReadAt(src, i, j), onF.I.Apply(i), onF.J.Apply(j))
				},
			}
		}
		ident := analysis.Identity2
		shift := analysis.Affine2{I: analysis.Affine{A: 1, C: 1}, J: analysis.Affine{A: 1, C: 1}}
		eng.Run2(mk(ident, false))
		// Different placement, same name/bounds: must rebuild, and the
		// shifted writes must land on their owners (a stale exec set
		// would panic with a non-owner write).
		eng.Run2(mk(shift, false))
		if eng.LastBuildKind() == BuildCached {
			t.Error("OnF2 change replayed a stale schedule")
		}
		// Executor-variant flip: must rebuild with the enum lists.
		eng.Run2(mk(shift, true))
		if eng.LastBuildKind() == BuildCached {
			t.Error("Enumerate flip replayed a stale schedule")
		}
		// Unchanged shape still hits the cache.
		eng.Run2(mk(shift, true))
		if eng.LastBuildKind() != BuildCached {
			t.Errorf("identical rerun: %v, want cached", eng.LastBuildKind())
		}
		// Read-pattern change, same name/placement/variant: the in/out
		// sets move, so it must rebuild as well.
		eng.Run2(&Loop2{
			Name: "shape", LoI: 1, HiI: n - 1, LoJ: 1, HiJ: n - 1,
			On: a, OnF2: shift,
			Reads:     []ReadSpec{{Array: src, Affine2: analysis.Shift2(0, 1)}},
			Enumerate: true,
			Body: func(i, j int, e *Env) {
				e.WriteAt(a, e.ReadAt(src, i, j+1), shift.I.Apply(i), shift.J.Apply(j))
			},
		})
		if eng.LastBuildKind() == BuildCached {
			t.Error("read-affine change replayed a stale schedule")
		}
	})
}

// TestScheduleCacheKeyByRank: the (rank, name) cache key scheme keeps
// rank-1 and rank-2 loops in disjoint keyspaces even for names that
// would have collided under the old "2d:"+name string prefixing, and
// Invalidate/InvalidateAll drop schedules of both ranks.
func TestScheduleCacheKeyByRank(t *testing.T) {
	g1 := topology.MustGrid(1)
	g2 := topology.MustGrid(1, 1)
	d1 := dist.Must([]int{6}, []dist.DimSpec{dist.BlockDim()}, g1)
	d2 := dist.Must([]int{6, 6}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g2)
	mach := sim.MustNew(1, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a1 := darray.New("a1", d1, nd)
		a2 := darray.New("a2", d2, nd)
		eng := NewEngine(nd)
		l1 := &Loop{
			Name: "2d:foo", Lo: 1, Hi: 6, On: a1, OnF: analysis.Identity,
			Body: func(i int, e *Env) { e.Write(a1, i, 1) },
		}
		l2 := &Loop2{
			Name: "foo", LoI: 1, HiI: 6, LoJ: 1, HiJ: 6, On: a2,
			Body: func(i, j int, e *Env) { e.WriteAt(a2, 2, i, j) },
		}
		eng.Run(l1)
		// Under the string-prefix scheme the rank-1 loop "2d:foo" was
		// stored at the key Schedule2("foo") reads.
		if eng.Schedule2("foo") != nil {
			t.Error(`rank-1 loop "2d:foo" is visible as the Loop2 schedule "foo"`)
		}
		if eng.Schedule("2d:foo") == nil {
			t.Error(`rank-1 schedule "2d:foo" not cached under its own name`)
		}
		eng.Run2(l2)
		if eng.LastBuildKind() == BuildCached {
			t.Error(`Loop2 "foo" reused the schedule of rank-1 loop "2d:foo"`)
		}
		if s := eng.Schedule2("foo"); s == nil || s.Rank() != 2 {
			t.Errorf("Schedule2(foo) = %v, want a rank-2 schedule", s)
		}

		// Both ranks cached under one name: rerunning hits the cache.
		l1.Name = "x"
		l2.Name = "x"
		eng.Run(l1)
		eng.Run2(l2)
		eng.Run(l1)
		if eng.LastBuildKind() != BuildCached {
			t.Errorf("rank-1 rerun: %v, want cached", eng.LastBuildKind())
		}
		eng.Run2(l2)
		if eng.LastBuildKind() != BuildCached {
			t.Errorf("rank-2 rerun: %v, want cached", eng.LastBuildKind())
		}

		// Invalidate drops both ranks of that name only.
		eng.Invalidate("x")
		if eng.Schedule("x") != nil || eng.Schedule2("x") != nil {
			t.Error(`Invalidate("x") left a schedule behind`)
		}
		if eng.Schedule("2d:foo") == nil || eng.Schedule2("foo") == nil {
			t.Error(`Invalidate("x") dropped unrelated names`)
		}
		eng.Run(l1)
		if eng.LastBuildKind() == BuildCached {
			t.Error("rank-1 run after Invalidate should rebuild")
		}
		eng.Run2(l2)
		if eng.LastBuildKind() == BuildCached {
			t.Error("rank-2 run after Invalidate should rebuild")
		}

		// InvalidateAll drops everything of every rank.
		eng.InvalidateAll()
		for _, name := range []string{"x", "2d:foo", "foo"} {
			if eng.Schedule(name) != nil || eng.Schedule2(name) != nil {
				t.Errorf("InvalidateAll left %q behind", name)
			}
		}
		eng.Run2(l2)
		if eng.LastBuildKind() == BuildCached {
			t.Error("rank-2 run after InvalidateAll should rebuild")
		}
	})
}
