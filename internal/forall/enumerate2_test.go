package forall

import (
	"reflect"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// runEnum2D runs a jacobi2d-shaped five-point relaxation (copy + relax
// sweeps) with or without Saltz-style enumeration and returns the
// gathered array, the worst per-node relax-schedule bytes, the build
// kinds seen on the relax loop (first then repeat executions), and the
// executor time.
func runEnum2D(t *testing.T, enumerate bool, params machine.Params, sweeps int) ([]float64, int, []BuildKind, float64) {
	t.Helper()
	const n, pr, pc = 24, 2, 2
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(pr*pc, params)
	out := make([]float64, n*n)
	memMax := 0
	var kinds []BuildKind
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) && (r == 1 || r == n || c == 1 || c == n) {
					a.Set2(r, c, float64((r*31+c)%7)+1)
				}
			}
		}
		eng := NewEngine(nd)
		copyLoop := &Loop2{
			Name: "copy2", LoI: 1, HiI: n, LoJ: 1, HiJ: n,
			On:    old,
			Reads: []ReadSpec{{Array: a, Affine2: &analysis.Identity2}},
			Phase: "copy",
			Body: func(i, j int, e *Env) {
				e.WriteAt(old, e.ReadAt(a, i, j), i, j)
			},
		}
		relaxLoop := &Loop2{
			Name: "relax2", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
			On: a,
			Reads: []ReadSpec{
				{Array: old, Affine2: analysis.Shift2(-1, 0)}, {Array: old, Affine2: analysis.Shift2(1, 0)},
				{Array: old, Affine2: analysis.Shift2(0, -1)}, {Array: old, Affine2: analysis.Shift2(0, 1)},
			},
			Enumerate: enumerate,
			Body: func(i, j int, e *Env) {
				x := 0.25 * (e.ReadAt(old, i-1, j) + e.ReadAt(old, i+1, j) +
					e.ReadAt(old, i, j-1) + e.ReadAt(old, i, j+1))
				e.WriteAt(a, x, i, j)
			},
		}
		var myKinds []BuildKind
		for s := 0; s < sweeps; s++ {
			eng.Run2(copyLoop)
			eng.Run2(relaxLoop)
			myKinds = append(myKinds, eng.LastBuildKind())
		}
		mu.Lock()
		if nd.ID() == 0 {
			kinds = myKinds
		}
		if mb := eng.Schedule2("relax2").MemBytes(); mb > memMax {
			memMax = mb
		}
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) {
					out[(r-1)*n+c-1] = a.Get2(r, c)
				}
			}
		}
		mu.Unlock()
	})
	return out, memMax, kinds, mach.MaxPhase(PhaseExecutor)
}

// TestEnumerate2DStorageExceedsPrecomputed ports the §5 storage
// assertions to rank 2: for a jacobi2d-shaped loop, the enumerated
// schedule's MemBytes strictly exceed the precomputed (range-record)
// schedule's, the precomputed variant builds compile-time while
// enumeration forces the inspector, and both replay byte-identically
// from the cache on later sweeps.
func TestEnumerate2DStorageExceedsPrecomputed(t *testing.T) {
	const sweeps = 4
	pre, memPre, kindsPre, _ := runEnum2D(t, false, machine.Ideal(), sweeps)
	enum, memEnum, kindsEnum, _ := runEnum2D(t, true, machine.Ideal(), sweeps)

	if kindsPre[0] != BuildCompileTime {
		t.Errorf("precomputed first build: %v, want compile-time", kindsPre[0])
	}
	if kindsEnum[0] != BuildInspector {
		t.Errorf("enumerated first build: %v, want inspector", kindsEnum[0])
	}
	for s := 1; s < sweeps; s++ {
		if kindsPre[s] != BuildCached || kindsEnum[s] != BuildCached {
			t.Fatalf("sweep %d: kinds %v/%v, want cached replay", s, kindsPre[s], kindsEnum[s])
		}
	}
	// Cached replays produce byte-identical results across executors.
	if !reflect.DeepEqual(pre, enum) {
		t.Fatal("enumerated executor diverged from precomputed executor")
	}
	if memEnum <= memPre {
		t.Fatalf("enumerated 2-D schedule (%d B) should need strictly more storage than precomputed (%d B)",
			memEnum, memPre)
	}
}

// TestEnumerate2DTradeoff: the §5 characterization holds in 2-D too —
// the enumerated executor is faster per sweep (no locality tests or
// buffer searches in the nonlocal loop) at the price of the storage
// measured above.
func TestEnumerate2DTradeoff(t *testing.T) {
	_, _, _, execPre := runEnum2D(t, false, machine.NCUBE7(), 3)
	_, _, _, execEnum := runEnum2D(t, true, machine.NCUBE7(), 3)
	if execEnum >= execPre {
		t.Fatalf("enumerated 2-D executor (%.4fs) should beat search (%.4fs)", execEnum, execPre)
	}
}
