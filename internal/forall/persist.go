package forall

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Schedule persistence: compiled schedules serialized to a cache
// directory so warm starts skip building entirely — §3.2's "saving
// them for later loop executions" stretched across process lifetimes.
// Files are written atomically (temp file + rename, so concurrent
// tenants and processes never observe a torn file) and validated on
// load: a version header guards format drift, the structural key
// fingerprint guards against filename collisions and stale renames,
// and an FNV checksum over the payload guards against corruption.
// Every validation failure is treated the same way — as a cache miss
// that falls back to a clean rebuild (and rewrites the file).

// schedCacheVersion is bumped whenever Blueprint's serialized form
// changes; files carrying any other version are ignored and rebuilt.
const schedCacheVersion = 1

// diskSched is the on-disk envelope around a gob-encoded Blueprint.
type diskSched struct {
	Version int
	KeyFP   uint64
	Node    int
	Sum     uint64
	Payload []byte
}

func payloadSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// cachePath names the file for (node, key-fingerprint).  The
// fingerprint is content-based and process-stable (shareKey mixes only
// structural data through FNV), so independent processes agree on the
// name.
func (s *SharedStore) cachePath(node int, fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("sched-n%d-%016x.ksched", node, fp))
}

// loadDisk revives a persisted blueprint, or returns nil if the file
// is absent, unreadable, stale-versioned, mismatched, or corrupted —
// the caller rebuilds in every such case.
func (s *SharedStore) loadDisk(node int, fp uint64) *Blueprint {
	raw, err := os.ReadFile(s.cachePath(node, fp))
	if err != nil {
		return nil
	}
	var ds diskSched
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&ds); err != nil {
		return nil
	}
	if ds.Version != schedCacheVersion || ds.KeyFP != fp || ds.Node != node {
		return nil
	}
	if payloadSum(ds.Payload) != ds.Sum {
		return nil
	}
	bp := new(Blueprint)
	if err := gob.NewDecoder(bytes.NewReader(ds.Payload)).Decode(bp); err != nil {
		return nil
	}
	return bp
}

// saveDisk persists a blueprint.  Failures are silent: persistence is
// an optimization, and the in-memory store already holds the result.
func (s *SharedStore) saveDisk(node int, fp uint64, bp *Blueprint) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(bp); err != nil {
		return
	}
	var file bytes.Buffer
	ds := diskSched{
		Version: schedCacheVersion,
		KeyFP:   fp,
		Node:    node,
		Sum:     payloadSum(payload.Bytes()),
		Payload: payload.Bytes(),
	}
	if err := gob.NewEncoder(&file).Encode(&ds); err != nil {
		return
	}
	path := s.cachePath(node, fp)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(file.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
