package forall

import (
	"sync"
	"testing"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// runOverlapJacobi runs a many-sweep five-point jacobi2d on the given
// machine with the split-phase executor and returns the final grid.
// On the wall-clock backend this hammers the ISend/WaitAny path from
// real threads: every sweep posts boundary sends to up to four
// neighbors and drains them in whatever order they physically
// complete.
func runOverlapJacobi(m *machine.Machine, pr, pc, n, sweeps int, panicNode, panicSweep int) []float64 {
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	out := make([]float64, n*n)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) && (r == 1 || r == n || c == 1 || c == n) {
					a.Set2(r, c, 1.0+float64(((r-1)*n+c)%7))
				}
			}
		}
		eng := NewEngine(nd)
		copyLoop := &Loop2{
			Name: "stress.copy", LoI: 1, HiI: n, LoJ: 1, HiJ: n,
			On:    old,
			Reads: []ReadSpec{{Array: a}},
			Body:  func(i, j int, e *Env) { e.Write2(old, i, j, e.Read2(a, i, j)) },
		}
		relaxLoop := &Loop2{
			Name: "stress.relax", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
			On:    a,
			Reads: []ReadSpec{{Array: old}},
			Body: func(i, j int, e *Env) {
				x := 0.25 * (e.Read2(old, i-1, j) + e.Read2(old, i+1, j) +
					e.Read2(old, i, j-1) + e.Read2(old, i, j+1))
				e.Write2(a, i, j, x)
			},
		}
		for s := 0; s < sweeps; s++ {
			if nd.ID() == panicNode && s == panicSweep {
				// Peers are mid-sweep with posted ISends and blocked
				// drains; the panic must poison them free, not deadlock.
				panic("stress: induced node failure")
			}
			eng.Run2(copyLoop)
			eng.Run2(relaxLoop)
		}
		mu.Lock()
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) {
					out[(r-1)*n+c-1] = a.Get2(r, c)
				}
			}
		}
		mu.Unlock()
	})
	return out
}

// TestWallclockOverlapStress: a many-iteration jacobi2d on 8 real
// threads exercising out-of-order peer completion in the split-phase
// drain.  Run under -race in CI.  The wall-clock result must match the
// simulator bit for bit — same schedules, same arithmetic, only the
// drain order differs.
func TestWallclockOverlapStress(t *testing.T) {
	const pr, pc, n, sweeps = 4, 2, 32, 40
	want := runOverlapJacobi(sim.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, -1, -1)
	got := runOverlapJacobi(wallclock.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, -1, -1)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("element %d differs after %d overlapped sweeps: wall %v, sim %v",
				i, sweeps, got[i], want[i])
		}
	}
}

// TestWallclockOverlapPoisonInFlight: a node panicking while its peers
// have ISends in flight and are blocked in the completion-order drain
// must poison the machine — every waiter released, the panic
// propagated by Machine.Run — rather than deadlock.
func TestWallclockOverlapPoisonInFlight(t *testing.T) {
	const pr, pc, n, sweeps = 4, 2, 32, 12
	defer func() {
		if recover() == nil {
			t.Fatal("expected the induced node panic to propagate")
		}
	}()
	runOverlapJacobi(wallclock.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, 5, 3)
}
