package forall

import (
	"fmt"

	"kali/internal/comm"
	"kali/internal/crystal"
	"kali/internal/darray"
	"kali/internal/index"
	"kali/internal/machine"
)

// Loop2 is a two-dimensional forall over a rank-2 array distributed on
// a rank-2 processor grid — the paper's "multi-dimensional processor
// arrays can be declared similarly" taken at its word:
//
//	forall i in LoI..HiI, j in LoJ..HiJ on A[i,j].loc do ... end
//
// Placement is owner-computes on A[i,j] directly (identity subscripts;
// that is the only form the paper's examples would need).  Reads go
// through the same Env as 1-D loops — aligned accesses via ReadLocal2,
// potentially-nonlocal ones via Read/ReadAt on linearized indices —
// and schedules are always built by the run-time inspector (the
// closed-form path is 1-D only).
type Loop2 struct {
	Name               string
	LoI, HiI, LoJ, HiJ int
	// On must be rank-2 with both dimensions distributed over a rank-2
	// grid.
	On        *darray.Array
	Reads     []ReadSpec
	DependsOn []Dep
	Body      func(i, j int, e *Env)
	Phase     string
}

// pairSchedule is the cached schedule of a Loop2.
type pairSchedule struct {
	execLocal    [][2]int
	execNonlocal [][2]int
	arrays       []*arraySched
	bounds       [4]int
	depVersions  []int
}

// Run2 executes a two-dimensional forall.
func (e *Engine) Run2(l *Loop2) {
	e.validate2(l)
	s := e.schedule2(l)
	phase := l.Phase
	if phase == "" {
		phase = PhaseExecutor
	}
	e.node.StartPhase(phase)
	e.execute2(l, s)
	e.node.StopPhase(phase)
}

func (e *Engine) validate2(l *Loop2) {
	if l.Name == "" {
		panic("forall: Loop2 needs a Name")
	}
	if l.Body == nil {
		panic(fmt.Sprintf("forall %s: Loop2 has no Body", l.Name))
	}
	on := l.On
	if on == nil || on.Rank() != 2 || on.Replicated() {
		panic(fmt.Sprintf("forall %s: Loop2 needs a rank-2 distributed on array", l.Name))
	}
	if on.Dist().Grid().Rank() != 2 || on.Dist().Pattern(0) == nil || on.Dist().Pattern(1) == nil {
		panic(fmt.Sprintf("forall %s: Loop2 on array must distribute both dimensions over a rank-2 grid", l.Name))
	}
}

// cache2 piggybacks on the engine's schedule cache with a distinct
// key space.
func (e *Engine) schedule2(l *Loop2) *pairSchedule {
	key := "2d:" + l.Name
	if !e.NoCache {
		if c, ok := e.cache2[key]; ok &&
			c.bounds == [4]int{l.LoI, l.HiI, l.LoJ, l.HiJ} && deps2Fresh(l, c) {
			e.lastKind = BuildCached
			return c
		}
	}
	e.node.StartPhase(PhaseInspector)
	s := e.buildInspector2(l)
	e.node.StopPhase(PhaseInspector)
	s.bounds = [4]int{l.LoI, l.HiI, l.LoJ, l.HiJ}
	s.depVersions = make([]int, len(l.DependsOn))
	for i, d := range l.DependsOn {
		s.depVersions[i] = d.Version()
	}
	if !e.NoCache {
		if e.cache2 == nil {
			e.cache2 = map[string]*pairSchedule{}
		}
		e.cache2[key] = s
	}
	e.lastKind = BuildInspector
	return s
}

func deps2Fresh(l *Loop2, s *pairSchedule) bool {
	if len(l.DependsOn) != len(s.depVersions) {
		return false
	}
	for i, d := range l.DependsOn {
		if d.Version() != s.depVersions[i] {
			return false
		}
	}
	return true
}

// exec2 computes this node's iteration set: the cross product of the
// per-dimension local sets clipped to the loop bounds (block/cyclic
// distributions are separable by construction).
func (e *Engine) exec2(l *Loop2) (index.Set, index.Set) {
	me := e.node.ID()
	d := l.On.Dist()
	gcoord := d.Grid().Coord(me)
	rows := d.Pattern(0).Local(gcoord[0]).Intersect(index.Range(l.LoI, l.HiI))
	cols := d.Pattern(1).Local(gcoord[1]).Intersect(index.Range(l.LoJ, l.HiJ))
	e.node.Charge(machine.Cost{Calls: 1})
	return rows, cols
}

func distinctArrays2(l *Loop2) []*darray.Array {
	var out []*darray.Array
	for _, r := range l.Reads {
		found := false
		for _, a := range out {
			if a == r.Array {
				found = true
				break
			}
		}
		if !found {
			out = append(out, r.Array)
		}
	}
	return out
}

// buildInspector2 is the 2-D recording pass + global exchange.
func (e *Engine) buildInspector2(l *Loop2) *pairSchedule {
	me := e.node.ID()
	rows, cols := e.exec2(l)
	arrays := distinctArrays2(l)

	s := &pairSchedule{}
	builders := make([]*comm.Builder, len(arrays))
	for i := range builders {
		builders[i] = comm.NewBuilder(me)
	}
	env := &Env{
		mode:     modeInspect,
		eng:      e,
		node:     e.node,
		loop:     &Loop{Name: l.Name, Reads: l.Reads},
		arrays:   arrays,
		builders: builders,
	}
	rows.Each(func(i int) {
		cols.Each(func(j int) {
			e.node.Charge(machine.Cost{LoopIters: 1})
			env.iterNonlocal = false
			l.Body(i, j, env)
			if env.iterNonlocal {
				s.execNonlocal = append(s.execNonlocal, [2]int{i, j})
			} else {
				s.execLocal = append(s.execLocal, [2]int{i, j})
			}
		})
	})

	var parcels []crystal.Parcel
	for k, b := range builders {
		in := b.Finalize()
		as := &arraySched{arr: arrays[k], in: in, buf: make([]float64, in.Total)}
		s.arrays = append(s.arrays, as)
		for _, q := range in.Senders() {
			rf := in.RangesFrom(q)
			recs := make([]comm.Range, len(rf))
			copy(recs, rf)
			parcels = append(parcels, crystal.Parcel{
				Dest:  q,
				Data:  routedRecs{slot: k, recs: recs},
				Bytes: recBytes * len(recs),
			})
		}
	}
	received := e.exchange(parcels)
	bySlot := make([][]comm.Range, len(arrays))
	for _, pc := range received {
		rr := pc.Data.(routedRecs)
		bySlot[rr.slot] = append(bySlot[rr.slot], rr.recs...)
	}
	for k, as := range s.arrays {
		as.out = comm.BuildOut(me, bySlot[k])
	}
	return s
}

// execute2 runs the Figure 3 pipeline for a 2-D loop.
func (e *Engine) execute2(l *Loop2, s *pairSchedule) {
	for k, as := range s.arrays {
		arr := as.arr
		for _, q := range as.out.Receivers() {
			payload := as.out.Pack(q, arr.GetLinear)
			e.node.Send(q, tagFor(k), payload, 8*len(payload))
		}
	}
	env := &Env{
		mode:   modeExecLocal,
		eng:    e,
		node:   e.node,
		loop:   &Loop{Name: l.Name, Reads: l.Reads},
		sched:  &Schedule{arrays: s.arrays},
		arrays: make([]*darray.Array, len(s.arrays)),
	}
	for k, as := range s.arrays {
		env.arrays[k] = as.arr
	}
	for _, ij := range s.execLocal {
		e.node.Charge(machine.Cost{LoopIters: 1})
		l.Body(ij[0], ij[1], env)
	}
	for k, as := range s.arrays {
		for _, q := range as.in.Senders() {
			msg := e.node.Recv(q, tagFor(k))
			as.in.Unpack(q, msg.Payload.([]float64), as.buf)
		}
	}
	env.mode = modeExecNonlocal
	for _, ij := range s.execNonlocal {
		e.node.Charge(machine.Cost{LoopIters: 1})
		l.Body(ij[0], ij[1], env)
	}
	for _, w := range env.writes {
		w.a.SetLinear(w.g, w.v)
	}
}
