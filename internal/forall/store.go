package forall

import (
	"sync"
	"sync/atomic"

	"kali/internal/comm"
	"kali/internal/lru"
)

// Cross-tenant schedule sharing — the paper's §3.2 reuse argument
// pushed past one program.  Engine-local sharing (share.go) lets loops
// of one program adopt each other's compile-time schedules; the
// SharedStore here lets concurrently running *programs* do the same:
// many tenants on one machine pool publish blueprints into one
// content-addressed, sharded, singleflight store, keyed by
// (node, shareKey).  Only compile-time schedules participate, for the
// same reason as engine-local sharing — they are pure functions of
// loop structure — and that restriction is also what makes the
// singleflight safe: a compile-time build performs no communication,
// so a tenant blocked waiting for another tenant's build can never be
// part of a communication cycle.

// Blueprint is the immutable, serializable structural form of a
// compile-time Schedule: iteration lists plus per-slot in/out range
// records.  A Schedule itself cannot be shared across concurrently
// running engines — it carries mutable replay state (receive buffers,
// pending-request slots) — so the store holds blueprints and each
// adopting engine instantiates fresh mutable state around one
// (Engine.instantiate).  The same representation is what schedule
// persistence writes to disk.
type Blueprint struct {
	Rank         int
	ExecLocal    [][2]int
	ExecNonlocal [][2]int
	Arrays       []SlotPlan
}

// SlotPlan is one structural array slot of a Blueprint: the receive
// and send range records and their element totals.
type SlotPlan struct {
	In       []comm.Range
	InTotal  int
	Out      []comm.Range
	OutTotal int
}

// blueprintOf extracts the immutable structure of a built compile-time
// schedule.  Range slices are copied: the blueprint outlives the
// schedule and is shared across tenants, so it must not alias any
// engine's storage.
func blueprintOf(s *Schedule) *Blueprint {
	bp := &Blueprint{Rank: s.rank}
	bp.ExecLocal = pairsOf(s.execLocal)
	bp.ExecNonlocal = pairsOf(s.execNonlocal)
	for _, as := range s.arrays {
		bp.Arrays = append(bp.Arrays, SlotPlan{
			In:       append([]comm.Range(nil), as.in.Ranges...),
			InTotal:  as.in.Total,
			Out:      append([]comm.Range(nil), as.out.Ranges...),
			OutTotal: as.out.Total,
		})
	}
	return bp
}

func pairsOf(its []iteration) [][2]int {
	if len(its) == 0 {
		return nil
	}
	out := make([][2]int, len(its))
	for k, it := range its {
		out[k] = [2]int{it.i, it.j}
	}
	return out
}

func itersOf(pairs [][2]int) []iteration {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]iteration, len(pairs))
	for k, p := range pairs {
		out[k] = iteration{i: p[0], j: p[1]}
	}
	return out
}

// instantiate builds a fresh Schedule around a shared blueprint: new
// receive buffers, new pending-request slots, a new sid — everything
// mutable is private to this engine, only the range data is copied
// from the shared structure.  The result is indistinguishable from a
// locally built compile-time schedule.
func (e *Engine) instantiate(bp *Blueprint) *Schedule {
	s := &Schedule{
		rank:         bp.Rank,
		kind:         BuildCompileTime,
		execLocal:    itersOf(bp.ExecLocal),
		execNonlocal: itersOf(bp.ExecNonlocal),
	}
	for _, sp := range bp.Arrays {
		as := &arraySched{
			in:  &comm.InSet{Ranges: append([]comm.Range(nil), sp.In...), Total: sp.InTotal},
			out: &comm.OutSet{Ranges: append([]comm.Range(nil), sp.Out...), Total: sp.OutTotal},
		}
		as.buf = make([]float64, sp.InTotal)
		s.arrays = append(s.arrays, as)
	}
	finalizePeers(s)
	return s
}

// storeShards fixes the lock striping of a SharedStore.  Shard choice
// is keyFP mod storeShards, so tenants building different shapes (or
// the same shape on different nodes, which differ in storeKey but
// usually in shard too) rarely contend on one mutex.
const storeShards = 16

// storeKey identifies one blueprint: schedules are per-node (each node
// holds its own slice of the iteration space), so the node id is part
// of the key alongside the structural shareKey.
type storeKey struct {
	node int
	key  shareKey
}

// inflight is one in-progress build other tenants can wait on: done is
// closed when the builder finishes, with bp left nil if the build
// failed (waiters then retry, racing to become the builder).
type inflight struct {
	done chan struct{}
	bp   *Blueprint
}

type storeShard struct {
	mu       sync.Mutex
	lru      *lru.Cache[storeKey, *Blueprint]
	building map[storeKey]*inflight
}

// SharedStore is the cross-tenant content-addressed schedule store: a
// sharded, LRU-bounded map from (node, structural key) to Blueprint,
// with singleflight build coalescing and optional disk persistence.
// All methods are safe for concurrent use by any number of tenants.
type SharedStore struct {
	dir    string
	shards [storeShards]storeShard

	hits     atomic.Int64
	builds   atomic.Int64
	diskHits atomic.Int64
	waits    atomic.Int64
}

// DefaultStoreCap is the blueprint capacity used when NewSharedStore
// is given a nonpositive one.
const DefaultStoreCap = 4096

// NewSharedStore creates a store bounded to roughly capacity
// blueprints (split evenly across shards; <= 0 means DefaultStoreCap).
// A nonempty dir enables schedule persistence: built blueprints are
// written there, and misses consult the directory before building, so
// a warm start in a fresh process skips building entirely.
func NewSharedStore(capacity int, dir string) *SharedStore {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	per := (capacity + storeShards - 1) / storeShards
	s := &SharedStore{dir: dir}
	for i := range s.shards {
		s.shards[i].lru = lru.New[storeKey, *Blueprint](per)
		s.shards[i].building = map[storeKey]*inflight{}
	}
	return s
}

// Dir returns the persistence directory ("" when persistence is off).
func (s *SharedStore) Dir() string { return s.dir }

// getOrBuild returns the blueprint for (node, key), building it with
// build exactly once machine-wide however many tenants ask
// concurrently: the first caller becomes the builder, later callers
// block on its inflight entry and adopt the result.  hit reports
// whether the caller avoided building (memory hit, disk hit, or
// coalesced wait).  If the builder panics, its waiters retry and race
// to build; the panic propagates to the builder's own node.
func (s *SharedStore) getOrBuild(node int, key shareKey, build func() *Blueprint) (bp *Blueprint, hit bool) {
	fp := key.fingerprint()
	sh := &s.shards[fp%storeShards]
	k := storeKey{node: node, key: key}
	for {
		sh.mu.Lock()
		if bp, ok := sh.lru.Get(k); ok {
			sh.mu.Unlock()
			s.hits.Add(1)
			return bp, true
		}
		if fl, ok := sh.building[k]; ok {
			sh.mu.Unlock()
			<-fl.done
			if fl.bp != nil {
				s.hits.Add(1)
				s.waits.Add(1)
				return fl.bp, true
			}
			continue // builder failed; race to take over
		}
		fl := &inflight{done: make(chan struct{})}
		sh.building[k] = fl
		sh.mu.Unlock()

		fromDisk := false
		func() {
			// Publish whatever we got (possibly nil, on a build panic)
			// even if build unwinds, so waiters never hang.
			defer func() {
				sh.mu.Lock()
				delete(sh.building, k)
				if bp != nil {
					sh.lru.Put(k, bp)
				}
				sh.mu.Unlock()
				fl.bp = bp
				close(fl.done)
			}()
			if s.dir != "" {
				bp = s.loadDisk(node, fp)
				fromDisk = bp != nil
			}
			if bp == nil {
				bp = build()
				if bp != nil && s.dir != "" {
					s.saveDisk(node, fp, bp)
				}
			}
		}()
		if fromDisk {
			s.diskHits.Add(1)
			return bp, true
		}
		s.builds.Add(1)
		return bp, false
	}
}

// StoreStats is a point-in-time snapshot of a SharedStore.
type StoreStats struct {
	// Hits counts adoptions of an already-present blueprint (including
	// Waits, the subset that blocked on another tenant's in-progress
	// build instead of duplicating it); Builds counts actual builds;
	// DiskHits counts blueprints revived from the persistence
	// directory.
	Hits     int64
	Builds   int64
	DiskHits int64
	Waits    int64
	// Entries/Evictions describe the bounded in-memory store.
	Entries   int
	Evictions int
}

// Stats snapshots the store counters; safe to call concurrently with
// tenant traffic.
func (s *SharedStore) Stats() StoreStats {
	st := StoreStats{
		Hits:     s.hits.Load(),
		Builds:   s.builds.Load(),
		DiskHits: s.diskHits.Load(),
		Waits:    s.waits.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Entries += sh.lru.Len()
		st.Evictions += sh.lru.Evictions()
		sh.mu.Unlock()
	}
	return st
}

// PayloadPoolStats snapshots the package-global executor payload pool
// shared by every engine in the process; safe mid-execution (the
// counters are atomic — see comm.BufPool.Stats).
func PayloadPoolStats() comm.PoolStats { return payloadPool.Stats() }
