package forall

import (
	"sync"
	"testing"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/mesh"
	"kali/internal/topology"
)

// run2DJacobi executes the five-point Laplacian directly as a 2-D
// forall over a [block, block] distribution on a pr×pc grid.
func run2DJacobi(t *testing.T, nx, ny, pr, pc, sweeps int, params machine.Params) ([]float64, float64, float64) {
	t.Helper()
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{ny, nx}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(pr*pc, params)
	out := make([]float64, nx*ny)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		// Boundary profile matching mesh.InitValues' numbering.
		for r := 1; r <= ny; r++ {
			for c := 1; c <= nx; c++ {
				if !a.IsLocal(r, c) {
					continue
				}
				if r == 1 || r == ny || c == 1 || c == nx {
					i := (r-1)*nx + c
					a.Set2(r, c, 1.0+float64(i%7))
				}
			}
		}
		eng := NewEngine(nd)
		copyLoop := &Loop2{
			Name: "copy2d", LoI: 1, HiI: ny, LoJ: 1, HiJ: nx,
			On:    old,
			Reads: []ReadSpec{{Array: a}},
			Phase: "copy",
			Body: func(i, j int, e *Env) {
				e.WriteAt(old, e.ReadAt(a, i, j), i, j)
			},
		}
		relaxLoop := &Loop2{
			Name: "relax2d", LoI: 2, HiI: ny - 1, LoJ: 2, HiJ: nx - 1,
			On:    a,
			Reads: []ReadSpec{{Array: old}},
			Body: func(i, j int, e *Env) {
				x := 0.25 * (e.ReadAt(old, i-1, j) + e.ReadAt(old, i+1, j) +
					e.ReadAt(old, i, j-1) + e.ReadAt(old, i, j+1))
				e.Flops(9)
				e.WriteAt(a, x, i, j)
			},
		}
		for s := 0; s < sweeps; s++ {
			eng.Run2(copyLoop)
			eng.Run2(relaxLoop)
		}
		mu.Lock()
		for r := 1; r <= ny; r++ {
			for c := 1; c <= nx; c++ {
				if a.IsLocal(r, c) {
					out[(r-1)*nx+c-1] = a.Get2(r, c)
				}
			}
		}
		mu.Unlock()
	})
	return out, mach.MaxPhase(PhaseExecutor), mach.MaxPhase(PhaseInspector)
}

// Test2DForallMatchesSequential: the 2-D decomposition computes the
// same answer as the sequential oracle.
func Test2DForallMatchesSequential(t *testing.T) {
	const nx, ny, sweeps = 16, 12, 8
	m := mesh.Rect(nx, ny)
	want := mesh.SeqJacobi(m, mesh.InitValues(m), sweeps)
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 4}, {4, 2}} {
		got, _, _ := run2DJacobi(t, nx, ny, grid[0], grid[1], sweeps, machine.Ideal())
		if d := mesh.MaxDelta(got, want); d != 0 {
			t.Fatalf("grid %v: differs from oracle by %g", grid, d)
		}
	}
}

// Test2DBeatsRowsAtScale: the surface-to-volume argument — at equal
// processor counts the 2-D block decomposition communicates fewer
// elements than 1-D rows and runs faster on the simulated NCUBE.
func Test2DBeatsRowsAtScale(t *testing.T) {
	const nx, ny, p, sweeps = 64, 64, 16, 6
	_, exec2d, _ := run2DJacobi(t, nx, ny, 4, 4, sweeps, machine.NCUBE7())
	_, execRows, _ := run2DJacobi(t, nx, ny, 16, 1, sweeps, machine.NCUBE7())
	if exec2d >= execRows {
		t.Fatalf("4x4 grid (%.3fs) should beat 16x1 rows (%.3fs): surface-to-volume", exec2d, execRows)
	}
	_ = p
}

// Test2DScheduleCached: the second sweep reuses the schedule (no
// additional inspector time).
func Test2DScheduleCached(t *testing.T) {
	_, _, insp1 := run2DJacobi(t, 16, 16, 2, 2, 1, machine.NCUBE7())
	_, _, insp8 := run2DJacobi(t, 16, 16, 2, 2, 8, machine.NCUBE7())
	if insp1 != insp8 {
		t.Fatalf("2-D inspector grew with sweeps: %g vs %g", insp1, insp8)
	}
	if insp1 <= 0 {
		t.Fatal("no inspector time recorded")
	}
}

// Test2DValidation: spec errors panic.
func Test2DValidation(t *testing.T) {
	g2 := topology.MustGrid(2, 2)
	g1 := topology.MustGrid(4)
	d2 := dist.Must([]int{8, 8}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g2)
	d1 := dist.Must([]int{8}, []dist.DimSpec{dist.BlockDim()}, g1)
	dHalf := dist.Must([]int{8, 8}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g1)

	cases := []func(nd *machine.Node) *Loop2{
		func(nd *machine.Node) *Loop2 { // no name
			a := darray.New("a", d2, nd)
			return &Loop2{On: a, LoI: 1, HiI: 8, LoJ: 1, HiJ: 8, Body: func(int, int, *Env) {}}
		},
		func(nd *machine.Node) *Loop2 { // no body
			a := darray.New("a", d2, nd)
			return &Loop2{Name: "x", On: a, LoI: 1, HiI: 8, LoJ: 1, HiJ: 8}
		},
		func(nd *machine.Node) *Loop2 { // rank-1 on array
			a := darray.New("a", d1, nd)
			return &Loop2{Name: "x", On: a, LoI: 1, HiI: 8, LoJ: 1, HiJ: 8, Body: func(int, int, *Env) {}}
		},
		func(nd *machine.Node) *Loop2 { // collapsed second dim
			a := darray.New("a", dHalf, nd)
			return &Loop2{Name: "x", On: a, LoI: 1, HiI: 8, LoJ: 1, HiJ: 8, Body: func(int, int, *Env) {}}
		},
	}
	for ci, mk := range cases {
		p := 4
		mach := sim.MustNew(p, machine.Ideal())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", ci)
				}
			}()
			mach.Run(func(nd *machine.Node) {
				NewEngine(nd).Run2(mk(nd))
			})
		}()
	}
}

// Test2DDependsOnInvalidation: bumping a Loop2 dependency forces a
// rebuild and the new pattern takes effect.
func Test2DDependsOnInvalidation(t *testing.T) {
	const n, p = 8, 4
	g := topology.MustGrid(2, 2)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		dst := darray.New("dst", d, nd)
		src := darray.New("src", d, nd)
		rowOf := darray.NewInt("rowOf", d, nd)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if src.IsLocal(i, j) {
					src.Set2(i, j, float64(i*100+j))
				}
				if rowOf.IsLocal(i, j) {
					rowOf.Set2(i, j, i) // identity rows initially
				}
			}
		}
		eng := NewEngine(nd)
		loop := &Loop2{
			Name: "dep2d", LoI: 1, HiI: n, LoJ: 1, HiJ: n,
			On:        dst,
			Reads:     []ReadSpec{{Array: src}},
			DependsOn: []Dep{rowOf},
			Body: func(i, j int, e *Env) {
				r := e.ReadInt2(rowOf, i, j)
				e.WriteAt(dst, e.ReadAt(src, r, j), i, j)
			},
		}
		eng.Run2(loop)
		// Flip to reversed rows; without Bump the stale schedule would
		// miss remote elements.
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if rowOf.IsLocal(i, j) {
					rowOf.Set2(i, j, n+1-i)
				}
			}
		}
		rowOf.Bump()
		eng.Run2(loop)
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("expected rebuild, got %v", eng.LastBuildKind())
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if dst.IsLocal(i, j) && dst.Get2(i, j) != float64((n+1-i)*100+j) {
					t.Errorf("dst[%d,%d] = %g", i, j, dst.Get2(i, j))
				}
			}
		}
	})
}
