package forall

import (
	"fmt"

	"kali/internal/comm"
	"kali/internal/darray"
	"kali/internal/machine"
)

// Env mode: the same body runs under three regimes.
const (
	// modeInspect: the recording pass.  Reads are classified and
	// logged, writes are suppressed, arithmetic is free (the paper's
	// inspector "only checks whether references ... are local").
	modeInspect = iota
	// modeExecLocal: executor local loop — every declared read is
	// known local, accesses go straight to local storage.
	modeExecLocal
	// modeExecNonlocal: executor nonlocal loop — every read tests
	// locality and may search the communication buffer (the paper's
	// "locality test ... is necessary because even within the same
	// iteration the reference may be sometimes local and sometimes
	// nonlocal").
	modeExecNonlocal
)

// Env is the loop body's window onto the global name space.  The body
// must perform reads of potentially-nonlocal distributed elements
// through Read/ReadAt (declared in Loop.Reads), reads the compiler
// could prove local/aligned through the *Local and *Int accessors, and
// all writes through Write/WriteAt.
type Env struct {
	mode  int
	eng   *Engine
	node  *machine.Node
	core  *loopCore
	sched *Schedule

	arrays   []*darray.Array // distinct read arrays, schedule slot order
	builders []*comm.Builder // inspect mode only

	iterNonlocal bool
	writes       []write

	// Saltz-style enumeration (Loop.Enumerate / Loop2.Enumerate):
	// during inspection, enumRecord collects every reference of the
	// current iteration (Buf holds the owner, or -1 when local; rank-2
	// references are recorded by their row-major linearized index);
	// during execution, enumList/enumPos replay the resolved
	// references in order.
	enumRecord []enumRef
	enumList   []enumRef
	enumPos    int
}

type write struct {
	a *darray.Array
	g int // linearized global index; 0 when (i, j) is set
	i int // rank-2 coordinates from Write2 (1-based; 0 = unset)
	j int
	v float64
}

// reset prepares a (possibly pooled) Env for one execution.  The
// arrays and writes slices keep their backing storage so a cached
// replay allocates nothing; writes is empty here because execute
// truncates it after committing.
func (e *Env) reset(eng *Engine, c *loopCore, s *Schedule, mode int) {
	e.mode = mode
	e.eng = eng
	e.node = eng.node
	e.core = c
	e.sched = s
	e.builders = nil
	e.iterNonlocal = false
	e.enumRecord = e.enumRecord[:0]
	e.enumList = nil
	e.enumPos = 0
}

func (e *Env) slotOf(a *darray.Array) int {
	for k, arr := range e.arrays {
		if arr == a {
			return k
		}
	}
	panic(fmt.Sprintf("forall %s: Read of array %q not declared in Loop.Reads", e.core.name, a.Name()))
}

// Read fetches element g (linearized global index; plain index for
// 1-D arrays) of a distributed array declared in Loop.Reads.  It is
// the potentially-nonlocal access path.
func (e *Env) Read(a *darray.Array, g int) float64 {
	switch e.mode {
	case modeInspect:
		e.node.Charge(machine.Cost{RefChecks: 1})
		owner := a.OwnerLinear(g)
		if owner == -1 || owner == e.node.ID() {
			if e.core.enumerate {
				e.enumRecord = append(e.enumRecord, enumRef{Slot: e.slotOf(a), G: g, Buf: -1})
			}
			return a.GetLinear(g)
		}
		e.iterNonlocal = true
		if e.core.enumerate {
			e.enumRecord = append(e.enumRecord, enumRef{Slot: e.slotOf(a), G: g, Buf: owner})
		}
		if e.builders[e.slotOf(a)].Add(g, owner) {
			e.node.Charge(machine.Cost{ListInserts: 1})
		}
		return 0 // value unused by a well-formed inspector pass

	case modeExecLocal:
		e.node.ChargeMemRefs(1)
		return a.GetLinear(g)

	default: // modeExecNonlocal
		if e.core.enumerate {
			// Saltz-style replay: no locality test, no search — one list
			// lookup plus the data access.
			if e.enumPos >= len(e.enumList) {
				panic(fmt.Sprintf("forall %s: body made more reads than enumerated", e.core.name))
			}
			ref := e.enumList[e.enumPos]
			e.enumPos++
			if e.arrays[ref.Slot] != a || ref.G != g {
				panic(fmt.Sprintf("forall %s: body reference sequence diverged from inspection (%s[%d] vs slot %d[%d])",
					e.core.name, a.Name(), g, ref.Slot, ref.G))
			}
			e.node.ChargeMemRefs(2)
			if ref.Buf == -1 {
				return a.GetLinear(g)
			}
			return e.sched.arrays[ref.Slot].buf[ref.Buf]
		}
		e.node.ChargeLocTest()
		owner := a.OwnerLinear(g)
		if owner == -1 || owner == e.node.ID() {
			e.node.ChargeMemRefs(1)
			return a.GetLinear(g)
		}
		as := e.sched.arrays[e.slotOf(a)]
		e.node.ChargeSearch(as.in.NumRanges())
		slot, ok := as.in.Find(owner, g)
		if !ok {
			panic(fmt.Sprintf("forall %s: element %s[%d] not in communication schedule — body references changed since inspection (add the driving array to DependsOn)",
				e.core.name, a.Name(), g))
		}
		e.node.ChargeMemRefs(1)
		return as.buf[slot]
	}
}

// ReadAt is Read for multi-dimensional arrays, addressed by
// coordinates.
func (e *Env) ReadAt(a *darray.Array, coord ...int) float64 {
	return e.Read(a, a.Linear(coord...))
}

// Read2 is Read for rank-2 arrays, addressed by coordinates.  The
// charge sequence is identical to Read of the linearized index — same
// clocks, same stats — but the executor-mode paths test locality and
// compute the local offset directly from the coordinates, skipping the
// linearize/delinearize round trip.
func (e *Env) Read2(a *darray.Array, i, j int) float64 {
	switch e.mode {
	case modeExecLocal:
		e.node.ChargeMemRefs(1)
		return a.Get2(i, j)

	case modeExecNonlocal:
		if e.core.enumerate {
			return e.Read(a, a.Linear(i, j))
		}
		e.node.ChargeLocTest()
		if a.IsLocal2(i, j) {
			e.node.ChargeMemRefs(1)
			return a.Get2(i, j)
		}
		// IsLocal2 validated the coordinates, so Linear2 is safe.
		g := a.Linear2(i, j)
		as := e.sched.arrays[e.slotOf(a)]
		e.node.ChargeSearch(as.in.NumRanges())
		slot, ok := as.in.Find(a.OwnerLinear(g), g)
		if !ok {
			panic(fmt.Sprintf("forall %s: element %s[%d] not in communication schedule — body references changed since inspection (add the driving array to DependsOn)",
				e.core.name, a.Name(), g))
		}
		e.node.ChargeMemRefs(1)
		return as.buf[slot]

	default: // modeInspect — cold path, charges handled by Read
		return e.Read(a, a.Linear(i, j))
	}
}

// ReadLocal fetches element i of a 1-D array through an access the
// compiler proved local (subscript aligned with the on clause, or
// replicated array).  It panics if the element is in fact nonlocal —
// that is a program bug, not a run-time condition.
func (e *Env) ReadLocal(a *darray.Array, i int) float64 {
	if e.mode != modeInspect {
		e.node.ChargeMemRefs(1)
	}
	return a.Get1(i)
}

// ReadLocal2 is ReadLocal for rank-2 arrays.
func (e *Env) ReadLocal2(a *darray.Array, i, j int) float64 {
	if e.mode != modeInspect {
		e.node.ChargeMemRefs(1)
	}
	return a.Get2(i, j)
}

// ReadInt fetches element i of a 1-D integer array (always
// local/aligned — subscript arrays travel with their loop).
func (e *Env) ReadInt(a *darray.IntArray, i int) int {
	if e.mode != modeInspect {
		e.node.ChargeMemRefs(1)
	}
	return a.Get1(i)
}

// ReadInt2 is ReadInt for rank-2 arrays.
func (e *Env) ReadInt2(a *darray.IntArray, i, j int) int {
	if e.mode != modeInspect {
		e.node.ChargeMemRefs(1)
	}
	return a.Get2(i, j)
}

// Write stores v into element g (linearized global index) of a
// distributed array.  The on clause guarantees writes are local
// (owner-computes); Write panics otherwise.  Writes are buffered and
// committed when the loop completes — forall's copy-in/copy-out
// semantics: every read in the loop sees pre-loop values.
func (e *Env) Write(a *darray.Array, g int, v float64) {
	if e.mode == modeInspect {
		// The inspector suppresses side effects; it also verifies the
		// owner-computes property early.
		if a.Replicated() {
			panic(fmt.Sprintf("forall %s: write to replicated array %q", e.core.name, a.Name()))
		}
		if a.OwnerLinear(g) != e.node.ID() {
			panic(fmt.Sprintf("forall %s: non-owner write to %s[%d] on node %d",
				e.core.name, a.Name(), g, e.node.ID()))
		}
		return
	}
	e.node.ChargeMemRefs(1)
	if a.Replicated() {
		panic(fmt.Sprintf("forall %s: write to replicated array %q", e.core.name, a.Name()))
	}
	if a.OwnerLinear(g) != e.node.ID() {
		panic(fmt.Sprintf("forall %s: non-owner write to %s[%d] on node %d",
			e.core.name, a.Name(), g, e.node.ID()))
	}
	e.writes = append(e.writes, write{a: a, g: g, v: v})
}

// WriteAt is Write addressed by coordinates.
func (e *Env) WriteAt(a *darray.Array, v float64, coord ...int) {
	e.Write(a, a.Linear(coord...), v)
}

// Write2 is Write for rank-2 arrays, addressed by coordinates, with
// the same charges and owner-computes checks but no linear-index
// arithmetic on the hot path (the buffered write carries the
// coordinates through to commit).
func (e *Env) Write2(a *darray.Array, i, j int, v float64) {
	if e.mode == modeInspect {
		if a.Replicated() {
			panic(fmt.Sprintf("forall %s: write to replicated array %q", e.core.name, a.Name()))
		}
		if !a.IsLocal2(i, j) {
			panic(fmt.Sprintf("forall %s: non-owner write to %s[%d,%d] on node %d",
				e.core.name, a.Name(), i, j, e.node.ID()))
		}
		return
	}
	e.node.ChargeMemRefs(1)
	if a.Replicated() {
		panic(fmt.Sprintf("forall %s: write to replicated array %q", e.core.name, a.Name()))
	}
	if !a.IsLocal2(i, j) {
		panic(fmt.Sprintf("forall %s: non-owner write to %s[%d,%d] on node %d",
			e.core.name, a.Name(), i, j, e.node.ID()))
	}
	e.writes = append(e.writes, write{a: a, i: i, j: j, v: v})
}

// Flops charges k floating-point operations of body arithmetic.  Free
// during inspection (the recording pass skips the computation).
func (e *Env) Flops(k int) {
	if e.mode != modeInspect {
		e.node.ChargeFlops(k)
	}
}

// FlopsUnit charges k flops as k separate single-flop charges —
// observably identical to calling Flops(1) k times, which is how the
// language interpreter's tree walker charges per-operator costs.  The
// bytecode VM replays coalesced charge runs through it so compiled
// and walked bodies produce bit-identical virtual clocks.
func (e *Env) FlopsUnit(k int) {
	if e.mode != modeInspect {
		e.node.ChargeFlopsUnit(k)
	}
}

// Inspecting reports whether the body is running under the recording
// pass; bodies whose control flow would diverge on unavailable remote
// values can consult it (the paper requires reference patterns not to
// depend on remote data).
func (e *Env) Inspecting() bool { return e.mode == modeInspect }
