package forall

import (
	"kali/internal/analysis"
	"kali/internal/dist"
)

// Content-addressed schedule sharing (the cross-loop half of the
// paper's §3.2 reuse argument).  A compile-time schedule is a pure
// function of the loop's structure: the on array's distribution and
// on-clause subscript, the bounds, and each read's affine subscript
// and distribution — never of any array's *contents*.  Keying built
// schedules by that structure lets identically-shaped loops over
// different arrays, and repeated loops across time steps under
// different names, replay one shared *Schedule instead of rebuilding
// it, paying the set algebra once per shape per node.
//
// Inspector-built schedules are excluded: their in sets record what
// the body actually referenced (indirect subscripts, OnProc
// placement, Saltz enumeration), which the structural key cannot see.

// shareKey is the comparable structural identity of a compile-time
// schedule.  The two hash fields fingerprint the distributions (and
// the read → distinct-array aliasing pattern), which have no compact
// comparable form of their own.
type shareKey struct {
	rank   int
	bounds [4]int
	onF    analysis.Affine
	onF2   analysis.Affine2
	onDist uint64
	reads  uint64
	nreads int
}

func mixInt(h uint64, v int) uint64 { return dist.MixFingerprint(h, uint64(int64(v))) }

// fingerprint condenses the key to one stable hash.  Every ingredient
// is structural (bounds, affine coefficients, distribution
// fingerprints — themselves content-based FNV hashes), so the value is
// identical across processes and runs: the cross-tenant SharedStore
// shards on it, and the disk cache names files with it, so a warm
// start in a fresh process finds the schedules a previous one saved.
func (k shareKey) fingerprint() uint64 {
	h := dist.FingerprintSeed
	h = mixInt(h, k.rank)
	for _, b := range k.bounds {
		h = mixInt(h, b)
	}
	h = mixInt(mixInt(h, k.onF.A), k.onF.C)
	h = mixInt(mixInt(h, k.onF2.I.A), k.onF2.I.C)
	h = mixInt(mixInt(h, k.onF2.J.A), k.onF2.J.C)
	h = dist.MixFingerprint(h, k.onDist)
	h = dist.MixFingerprint(h, k.reads)
	h = mixInt(h, k.nreads)
	return h
}

// shareKeyOf fingerprints an analyzable loop.  Each read contributes
// its slot index (its array's position in the appendDistinct order —
// the same order assembleArrays builds slots in and bindArrays binds
// them in, so two reads of one array can never share with two reads of
// different but identically-distributed arrays), its affine subscript,
// and its array's distribution fingerprint.
func shareKeyOf(c *loopCore) shareKey {
	key := shareKey{
		rank:   c.rank,
		bounds: c.bounds,
		onF:    c.onF,
		onF2:   c.onF2,
		onDist: c.on.Dist().Fingerprint(),
		nreads: len(c.reads),
	}
	slots := distinctArrays(c)
	h := dist.FingerprintSeed
	for _, r := range c.reads {
		for k, a := range slots {
			if a == r.Array {
				h = mixInt(h, k)
				break
			}
		}
		switch {
		case r.Affine != nil:
			h = mixInt(mixInt(mixInt(h, 1), r.Affine.A), r.Affine.C)
		case r.Affine2 != nil:
			h = mixInt(mixInt(mixInt(h, 2), r.Affine2.I.A), r.Affine2.I.C)
			h = mixInt(mixInt(h, r.Affine2.J.A), r.Affine2.J.C)
		}
		h = dist.MixFingerprint(h, r.Array.Dist().Fingerprint())
	}
	key.reads = h
	return key
}
