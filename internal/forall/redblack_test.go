package forall

import (
	"math"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// TestRedBlackGaussSeidel runs a 1-D red-black Gauss–Seidel smoother
// as two strided foralls (subscript 2k-1 for red, 2k for black) —
// a full-engine integration test of |a| > 1 affine subscripts, which
// the paper's compile-time analysis must handle symbolically.
func TestRedBlackGaussSeidel(t *testing.T) {
	const n, p, sweeps = 64, 4, 30
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)

	// Sequential oracle: classic red-black GS for u'' = 0 with
	// Dirichlet ends, interior initialized to 0.
	oracle := make([]float64, n+1)
	oracle[1], oracle[n] = 1, 5
	for s := 0; s < sweeps; s++ {
		for i := 3; i <= n-1; i += 2 { // red interior (odd, skipping 1)
			oracle[i] = 0.5 * (oracle[i-1] + oracle[i+1])
		}
		for i := 2; i <= n-1; i += 2 { // black interior (even)
			oracle[i] = 0.5 * (oracle[i-1] + oracle[i+1])
		}
	}

	mach := sim.MustNew(p, machine.Ideal())
	got := make([]float64, n+1)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		u := darray.New("u", d, nd)
		if u.IsLocal1(1) {
			u.Set1(1, 1)
		}
		if u.IsLocal1(n) {
			u.Set1(n, 5)
		}
		eng := NewEngine(nd)
		// Red sweep: points 2k+1 for k = 1..n/2-1, reading 2k and 2k+2.
		red := &Loop{
			Name: "red", Lo: 1, Hi: n/2 - 1,
			On: u, OnF: analysis.Affine{A: 2, C: 1},
			Reads: []ReadSpec{
				{Array: u, Affine: &analysis.Affine{A: 2, C: 0}},
				{Array: u, Affine: &analysis.Affine{A: 2, C: 2}},
			},
			Body: func(k int, e *Env) {
				e.Flops(2)
				e.Write(u, 2*k+1, 0.5*(e.Read(u, 2*k)+e.Read(u, 2*k+2)))
			},
		}
		// Black sweep: points 2k for k = 1..n/2-1 (skip the fixed end
		// n), reading 2k-1 and 2k+1.
		black := &Loop{
			Name: "black", Lo: 1, Hi: n/2 - 1,
			On: u, OnF: analysis.Affine{A: 2, C: 0},
			Reads: []ReadSpec{
				{Array: u, Affine: &analysis.Affine{A: 2, C: -1}},
				{Array: u, Affine: &analysis.Affine{A: 2, C: 1}},
			},
			Body: func(k int, e *Env) {
				e.Flops(2)
				e.Write(u, 2*k, 0.5*(e.Read(u, 2*k-1)+e.Read(u, 2*k+1)))
			},
		}
		for s := 0; s < sweeps; s++ {
			eng.Run(red)
			eng.Run(black)
		}
		if eng.Schedule("red").Kind() != BuildCompileTime {
			t.Errorf("strided affine loop should use compile-time analysis, got %v",
				eng.Schedule("red").Kind())
		}
		mu.Lock()
		u.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) { got[i] = u.Get1(i) })
		mu.Unlock()
	})
	for i := 1; i <= n; i++ {
		if math.Abs(got[i]-oracle[i]) > 1e-12 {
			t.Fatalf("u[%d] = %g, oracle %g", i, got[i], oracle[i])
		}
	}
	// Information propagates ~2 cells per red-black sweep, so after 30
	// sweeps the midpoint has been reached but not converged; it must
	// be strictly positive (boundary influence arrived) and below the
	// larger boundary value.
	mid := got[n/2]
	if mid <= 0 || mid >= 5 {
		t.Fatalf("midpoint %g outside plausible range", mid)
	}
}
