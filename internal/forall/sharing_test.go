package forall

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// shiftLoop builds the canonical affine shift out[i] = src[i+1] used by
// the sharing tests.
func shiftLoop(name string, n int, out, src *darray.Array) *Loop {
	return &Loop{
		Name: name, Lo: 1, Hi: n - 1,
		On: out, OnF: analysis.Identity,
		Reads: []ReadSpec{{Array: src, Affine: &analysis.Affine{A: 1, C: 1}}},
		Body:  func(i int, e *Env) { e.Write(out, i, e.Read(src, i+1)) },
	}
}

// checkShift verifies out[i] == base(i+1) for the locally owned part.
func checkShiftValues(t *testing.T, nd *machine.Node, out *darray.Array, n int, base func(int) float64) {
	t.Helper()
	for i := 1; i < n; i++ {
		if out.IsLocal1(i) && out.Get1(i) != base(i+1) {
			t.Errorf("node %d: %s[%d] = %g, want %g", nd.ID(), out.Name(), i, out.Get1(i), base(i+1))
		}
	}
}

// TestScheduleSharingAcrossLoops: two identically-shaped affine loops
// over *different* arrays — with distributions built as distinct but
// structurally equal Dist objects — must share one Schedule: the
// second loop builds nothing and both compute correct values.
func TestScheduleSharingAcrossLoops(t *testing.T) {
	const n, p = 32, 4
	g := topology.MustGrid(p)
	specs := []dist.DimSpec{dist.BlockDim()}
	dA := dist.Must([]int{n}, specs, g)
	dB := dist.Must([]int{n}, specs, g) // distinct object, same structure
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		outA, srcA := darray.New("outA", dA, nd), darray.New("srcA", dA, nd)
		outB, srcB := darray.New("outB", dB, nd), darray.New("srcB", dB, nd)
		for i := 1; i <= n; i++ {
			if srcA.IsLocal1(i) {
				srcA.Set1(i, float64(i))
				srcB.Set1(i, float64(i)*10)
			}
		}
		eng := NewEngine(nd)
		eng.Run(shiftLoop("la", n, outA, srcA))
		if k := eng.LastBuildKind(); k != BuildCompileTime {
			t.Errorf("first loop built %v, want compile-time", k)
		}
		eng.Run(shiftLoop("lb", n, outB, srcB))
		if k := eng.LastBuildKind(); k != BuildShared {
			t.Errorf("second loop built %v, want shared", k)
		}
		if eng.Builds() != 1 || eng.SharedHits() != 1 || eng.SharedSchedules() != 1 {
			t.Errorf("builds=%d sharedHits=%d sharedSchedules=%d, want 1/1/1",
				eng.Builds(), eng.SharedHits(), eng.SharedSchedules())
		}
		if eng.Schedule("la") == nil || eng.Schedule("la") != eng.Schedule("lb") {
			t.Error("loops la and lb do not hold one shared schedule")
		}
		// Replays of both sharers hit the per-name cache.
		eng.Run(shiftLoop("lb", n, outB, srcB))
		if k := eng.LastBuildKind(); k != BuildCached {
			t.Errorf("sharer replay: %v, want cached", k)
		}
		checkShiftValues(t, nd, outA, n, func(i int) float64 { return float64(i) })
		checkShiftValues(t, nd, outB, n, func(i int) float64 { return float64(i) * 10 })
	})
}

// TestScheduleSharingInvalidate: dropping one sharer's name binding
// must not disturb the other sharer, and the re-run of the dropped
// name re-adopts the shared schedule rather than rebuilding.
// InvalidateAll clears the shared store too, forcing a true rebuild.
func TestScheduleSharingInvalidate(t *testing.T) {
	const n, p = 32, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		outA, srcA := darray.New("outA", d, nd), darray.New("srcA", d, nd)
		outB, srcB := darray.New("outB", d, nd), darray.New("srcB", d, nd)
		for i := 1; i <= n; i++ {
			if srcA.IsLocal1(i) {
				srcA.Set1(i, float64(i))
				srcB.Set1(i, float64(i)*10)
			}
		}
		eng := NewEngine(nd)
		eng.Run(shiftLoop("la", n, outA, srcA))
		eng.Run(shiftLoop("lb", n, outB, srcB))

		eng.Invalidate("la")
		if eng.Schedule("la") != nil {
			t.Error(`Invalidate("la") left its name binding`)
		}
		// The other sharer still replays from its own binding.
		eng.Run(shiftLoop("lb", n, outB, srcB))
		if k := eng.LastBuildKind(); k != BuildCached {
			t.Errorf("sharer after peer Invalidate: %v, want cached", k)
		}
		// The invalidated name re-adopts the shared schedule (builds
		// unchanged) — compile-time schedules cannot go stale.
		eng.Run(shiftLoop("la", n, outA, srcA))
		if k := eng.LastBuildKind(); k != BuildShared {
			t.Errorf("invalidated name rerun: %v, want shared", k)
		}
		if eng.Builds() != 1 {
			t.Errorf("builds = %d after Invalidate rerun, want 1", eng.Builds())
		}
		checkShiftValues(t, nd, outA, n, func(i int) float64 { return float64(i) })
		checkShiftValues(t, nd, outB, n, func(i int) float64 { return float64(i) * 10 })

		eng.InvalidateAll()
		if eng.SharedSchedules() != 0 {
			t.Errorf("InvalidateAll left %d shared schedules", eng.SharedSchedules())
		}
		eng.Run(shiftLoop("la", n, outA, srcA))
		if k := eng.LastBuildKind(); k != BuildCompileTime {
			t.Errorf("rerun after InvalidateAll: %v, want compile-time rebuild", k)
		}
		if eng.Builds() != 2 {
			t.Errorf("builds = %d after InvalidateAll rerun, want 2", eng.Builds())
		}
		checkShiftValues(t, nd, outA, n, func(i int) float64 { return float64(i) })
	})
}

// TestScheduleSharingRespectsShape: loops that differ in read affine,
// distribution, or in how reads alias arrays must not share.
func TestScheduleSharingRespectsShape(t *testing.T) {
	const n, p = 32, 4
	g := topology.MustGrid(p)
	dBlock := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	dCyc := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		out := darray.New("out", dBlock, nd)
		u := darray.New("u", dBlock, nd)
		v := darray.New("v", dBlock, nd)
		w := darray.New("w", dCyc, nd)
		for i := 1; i <= n; i++ {
			if u.IsLocal1(i) {
				u.Set1(i, float64(i))
				v.Set1(i, float64(i))
			}
			if w.IsLocal1(i) {
				w.Set1(i, float64(i))
			}
		}
		eng := NewEngine(nd)
		eng.Run(shiftLoop("base", n, out, u))

		// Different offset: same arrays, different affine.
		eng.Run(&Loop{
			Name: "off", Lo: 2, Hi: n, On: out, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: u, Affine: &analysis.Affine{A: 1, C: -1}}},
			Body:  func(i int, e *Env) { e.Write(out, i, e.Read(u, i-1)) },
		})
		if k := eng.LastBuildKind(); k != BuildCompileTime {
			t.Errorf("different affine shared a schedule (%v)", k)
		}

		// Different distribution of the read array.
		eng.Run(shiftLoop("cyc", n, out, w))
		if k := eng.LastBuildKind(); k != BuildCompileTime {
			t.Errorf("different distribution shared a schedule (%v)", k)
		}

		// Same shapes but different read → array aliasing: two reads of
		// one array vs one read each of two identically-distributed
		// arrays occupy different slot structures.
		mk := func(name string, a, b *darray.Array) *Loop {
			return &Loop{
				Name: name, Lo: 2, Hi: n - 1, On: out, OnF: analysis.Identity,
				Reads: []ReadSpec{
					{Array: a, Affine: &analysis.Affine{A: 1, C: 1}},
					{Array: b, Affine: &analysis.Affine{A: 1, C: -1}},
				},
				Body: func(i int, e *Env) { e.Write(out, i, e.Read(a, i+1)+e.Read(b, i-1)) },
			}
		}
		eng.Run(mk("two", u, v))
		builds := eng.Builds()
		eng.Run(mk("one", u, u))
		if k := eng.LastBuildKind(); k != BuildCompileTime || eng.Builds() != builds+1 {
			t.Errorf("aliasing change shared a schedule (%v, builds %d->%d)", k, builds, eng.Builds())
		}
		// And the sanity check the other way: a loop with the *same*
		// aliasing as "two" over fresh arrays does share.
		eng.Run(mk("twin", v, u))
		if k := eng.LastBuildKind(); k != BuildShared {
			t.Errorf("identically-aliased loop did not share (%v)", k)
		}
	})
}

// TestScheduleNoSharingForInspector: loops whose reference pattern is
// data-dependent (indirect subscripts) carry no structural identity —
// two of them with identical declared shapes but different index
// arrays must both run the inspector and communicate different
// elements.
func TestScheduleNoSharingForInspector(t *testing.T) {
	const n, p = 16, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		outA := darray.New("outA", d, nd)
		outB := darray.New("outB", d, nd)
		src := darray.New("src", d, nd)
		idxA := darray.NewInt("idxA", d, nd)
		idxB := darray.NewInt("idxB", d, nd)
		for i := 1; i <= n; i++ {
			if src.IsLocal1(i) {
				src.Set1(i, float64(i))
				idxA.Set1(i, i%n+1) // shift by one
				idxB.Set1(i, n-i+1) // full reversal
			}
		}
		eng := NewEngine(nd)
		gather := func(name string, out *darray.Array, idx *darray.IntArray) *Loop {
			return &Loop{
				Name: name, Lo: 1, Hi: n, On: out, OnF: analysis.Identity,
				Reads:     []ReadSpec{{Array: src}}, // indirect: no affine
				DependsOn: []Dep{idx},
				Body:      func(i int, e *Env) { e.Write(out, i, e.Read(src, e.ReadInt(idx, i))) },
			}
		}
		eng.Run(gather("ga", outA, idxA))
		eng.Run(gather("gb", outB, idxB))
		if eng.Builds() != 2 || eng.SharedHits() != 0 {
			t.Errorf("indirect loops: builds=%d sharedHits=%d, want 2/0", eng.Builds(), eng.SharedHits())
		}
		for i := 1; i <= n; i++ {
			if outA.IsLocal1(i) && outA.Get1(i) != float64(i%n+1) {
				t.Errorf("outA[%d] = %g, want %g", i, outA.Get1(i), float64(i%n+1))
			}
			if outB.IsLocal1(i) && outB.Get1(i) != float64(n-i+1) {
				t.Errorf("outB[%d] = %g, want %g", i, outB.Get1(i), float64(n-i+1))
			}
		}
	})
}

// TestReplayAllocationFree: once a loop's schedule is cached and the
// payload pool is warm, replaying it — packing, sending, receiving,
// unpacking, running the body, committing writes — performs zero heap
// allocations across the whole machine.  Run for both execution
// disciplines: the phase-synchronous oracle here, the default
// split-phase overlap in TestOverlapReplayAllocationFree (whose drain
// uses the schedule's preallocated pending-receive slots).
func TestReplayAllocationFree(t *testing.T) {
	measureReplayMallocs(t, true)
}

// TestOverlapReplayAllocationFree pins the split-phase executor: warm
// overlap replay — ISend posts, interior compute, WaitAny drain — is
// still 0 allocs/replay machine-wide.
func TestOverlapReplayAllocationFree(t *testing.T) {
	measureReplayMallocs(t, false)
}

func measureReplayMallocs(t *testing.T, noOverlap bool) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, p, warmup, reps = 64, 4, 5, 20
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())

	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)

	var mallocs uint64
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		out := darray.New("out", d, nd)
		u := darray.New("u", d, nd)
		v := darray.New("v", d, nd)
		for i := 1; i <= n; i++ {
			if u.IsLocal1(i) {
				u.Set1(i, float64(i))
				v.Set1(i, float64(100*i))
			}
		}
		eng := NewEngine(nd)
		eng.NoOverlap = noOverlap
		loop := &Loop{
			Name: "replay", Lo: 1, Hi: n - 1,
			On: out, OnF: analysis.Identity,
			Reads: []ReadSpec{
				{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
				{Array: v, Affine: &analysis.Affine{A: 1, C: 1}},
			},
			Body: func(i int, e *Env) { e.Write(out, i, e.Read(u, i+1)+e.Read(v, i+1)) },
		}
		// Warmup builds the schedule and grows the payload pool to the
		// pattern's peak in-flight demand.  The per-replay barriers (in
		// both loops) bound that demand: they stop a fast node from
		// racing several replays ahead of a slow receiver, which would
		// keep unreturned payloads in flight and force pool growth at
		// an arbitrary later point.
		for k := 0; k < warmup; k++ {
			eng.Run(loop)
			nd.Barrier()
		}

		var before, after runtime.MemStats
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			eng.Run(loop)
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
			mu.Lock()
			mallocs = after.Mallocs - before.Mallocs
			mu.Unlock()
		}
		nd.Barrier()

		for i := 1; i < n; i++ {
			if out.IsLocal1(i) && out.Get1(i) != float64(i+1)+float64(100*(i+1)) {
				t.Errorf("out[%d] = %g after replays", i, out.Get1(i))
			}
		}
	})
	if mallocs != 0 {
		t.Errorf("cached replay allocated: %d mallocs over %d replays on %d nodes (want 0)",
			mallocs, reps, p)
	}
}

// TestRedistributeInvalidatesCachedSchedules: redistributing an array
// bound to a cached (and shared) schedule must not replay the stale
// schedule — the distribution fingerprint is part of the cache entry's
// shape, so the rerun rebuilds (or re-shares under the new shape) and
// computes correct values under the new mapping.  This is the
// correctness half of schedule caching: replaying the old plan would
// ship the wrong elements entirely.
func TestRedistributeInvalidatesCachedSchedules(t *testing.T) {
	const n, p = 32, 4
	g := topology.MustGrid(p)
	dBlock := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	dCyc := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		out := darray.New("out", dBlock, nd)
		src := darray.New("src", dBlock, nd)
		for i := 1; i <= n; i++ {
			if src.IsLocal1(i) {
				src.Set1(i, float64(i))
			}
		}
		eng := NewEngine(nd)
		eng.Run(shiftLoop("rl", n, out, src))
		if k := eng.LastBuildKind(); k != BuildCompileTime {
			t.Fatalf("first run built %v", k)
		}
		eng.Run(shiftLoop("rl", n, out, src))
		if k := eng.LastBuildKind(); k != BuildCached {
			t.Fatalf("replay before redistribution: %v, want cached", k)
		}

		// Remap the read array: the cached entry (and the shared-store
		// entry it points at) were built for [block] reads and are now
		// stale for this loop.
		darray.Redistribute(src, dCyc)
		eng.Run(shiftLoop("rl", n, out, src))
		if k := eng.LastBuildKind(); k == BuildCached {
			t.Error("stale schedule replayed after redistributing the read array")
		}
		checkShiftValues(t, nd, out, n, func(i int) float64 { return float64(i) })

		// Remap the placement (on) array too: exec sets change, so the
		// entry stored a moment ago must also miss.
		darray.Redistribute(out, dCyc)
		eng.Run(shiftLoop("rl", n, out, src))
		if k := eng.LastBuildKind(); k == BuildCached {
			t.Error("stale schedule replayed after redistributing the on array")
		}
		checkShiftValues(t, nd, out, n, func(i int) float64 { return float64(i) })

		// Ping-pong back: the loop's shape equals the original build, so
		// the engine may legitimately reuse — and the values stay right.
		darray.Redistribute(src, dBlock)
		darray.Redistribute(out, dBlock)
		eng.Run(shiftLoop("rl", n, out, src))
		checkShiftValues(t, nd, out, n, func(i int) float64 { return float64(i) })

		// The content-addressed store never held a stale entry: a second
		// loop of the original shape over fresh arrays still shares.
		out2 := darray.New("out2", dBlock, nd)
		src2 := darray.New("src2", dBlock, nd)
		for i := 1; i <= n; i++ {
			if src2.IsLocal1(i) {
				src2.Set1(i, float64(i))
			}
		}
		eng.Run(shiftLoop("rl2", n, out2, src2))
		if k := eng.LastBuildKind(); k != BuildShared {
			t.Errorf("fresh same-shape loop after remappings: %v, want shared", k)
		}
		checkShiftValues(t, nd, out2, n, func(i int) float64 { return float64(i) })
	})
}
