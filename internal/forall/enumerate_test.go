package forall

import (
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// runEnumGather runs a permutation gather with or without Saltz-style
// enumeration and returns the result plus the per-node schedule bytes
// and executor times.
func runEnumGather(t *testing.T, enumerate bool, params machine.Params) ([]float64, int, float64) {
	t.Helper()
	const n, p = 32, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, params)
	result := make([]float64, n+1)
	memMax := 0
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		b := darray.New("b", d, nd)
		idx := darray.NewInt("idx", d, nd)
		for i := 1; i <= n; i++ {
			if b.IsLocal1(i) {
				b.Set1(i, float64(i)*2)
			}
			if idx.IsLocal1(i) {
				idx.Set1(i, n+1-i)
			}
		}
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "gather", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: b}},
			DependsOn: []Dep{idx},
			Enumerate: enumerate,
			Body: func(i int, e *Env) {
				e.Write(a, i, e.Read(b, e.ReadInt(idx, i)))
			},
		}
		for k := 0; k < 3; k++ { // exercise cached reuse too
			eng.Run(loop)
		}
		mu.Lock()
		if mb := eng.Schedule("gather").MemBytes(); mb > memMax {
			memMax = mb
		}
		a.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) { result[i] = a.Get1(i) })
		mu.Unlock()
	})
	return result, memMax, mach.MaxPhase(PhaseExecutor)
}

// TestEnumerateMatchesSearch: both executor strategies compute the
// same values.
func TestEnumerateMatchesSearch(t *testing.T) {
	search, _, _ := runEnumGather(t, false, machine.Ideal())
	enum, _, _ := runEnumGather(t, true, machine.Ideal())
	for i := 1; i <= 32; i++ {
		want := float64(32+1-i) * 2
		if search[i] != want || enum[i] != want {
			t.Fatalf("i=%d: search=%g enum=%g want=%g", i, search[i], enum[i], want)
		}
	}
}

// TestEnumerateTradeoff reproduces the §5 characterization: the
// enumerated executor is faster per sweep (no locality tests or
// searches) but its schedule needs more storage.
func TestEnumerateTradeoff(t *testing.T) {
	_, memSearch, execSearch := runEnumGather(t, false, machine.NCUBE7())
	_, memEnum, execEnum := runEnumGather(t, true, machine.NCUBE7())
	if execEnum >= execSearch {
		t.Fatalf("enumerated executor (%.4f) should beat search (%.4f)", execEnum, execSearch)
	}
	if memEnum <= memSearch {
		t.Fatalf("enumerated schedule (%d B) should need more storage than search (%d B)",
			memEnum, memSearch)
	}
}

// TestEnumerateForcesInspector: enumeration cannot use the
// compile-time path (the list must be built by a recording pass).
func TestEnumerateForcesInspector(t *testing.T) {
	const n, p = 16, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "affine-enum", Lo: 1, Hi: n - 1,
			On: a, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
			Enumerate: true,
			Body:      func(i int, e *Env) { e.Write(a, i, e.Read(a, i+1)) },
		})
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("enumerate used %v", eng.LastBuildKind())
		}
	})
}

// TestEnumerateDivergentBodyPanics: a body whose reference sequence
// changes between inspection and execution is detected.
func TestEnumerateDivergentBodyPanics(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for divergent body")
		}
	}()
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		b := darray.New("b", d, nd)
		NewEngine(nd).Run(&Loop{
			Name: "diverge", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: b}},
			Enumerate: true,
			Body: func(i int, e *Env) {
				// Different subscript on the execution pass — the body
				// violates the fixed-reference-pattern contract.
				j := (i % n) + 1
				if !e.Inspecting() {
					j = ((i + 1) % n) + 1
				}
				e.Write(a, i, e.Read(b, j))
			},
		})
	})
}
