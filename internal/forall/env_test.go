package forall

import (
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// TestRank2NonlocalReads: a loop gathering whole rows of a 2-D
// block-by-rows matrix through data-dependent row indices — ReadAt and
// the linearized communication path.
func TestRank2NonlocalReads(t *testing.T) {
	const n, m, p = 8, 3, 4
	g := topology.MustGrid(p)
	d1 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	d2 := dist.Must([]int{n, m}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d1, nd)
		b := darray.New("b", d2, nd)
		rowOf := darray.NewInt("rowOf", d1, nd)
		for i := 1; i <= n; i++ {
			if rowOf.IsLocal1(i) {
				rowOf.Set1(i, n+1-i) // reversed row gather
			}
			for j := 1; j <= m; j++ {
				if b.IsLocal(i, j) {
					b.Set2(i, j, float64(i*100+j))
				}
			}
		}
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "rowgather", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: b}}, // rank-2, indirect
			DependsOn: []Dep{rowOf},
			Body: func(i int, e *Env) {
				r := e.ReadInt(rowOf, i)
				sum := 0.0
				for j := 1; j <= m; j++ {
					sum += e.ReadAt(b, r, j)
					e.Flops(1)
				}
				e.Write(a, i, sum)
			},
		})
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("rank-2 indirect read should force the inspector, got %v", eng.LastBuildKind())
		}
		mu.Lock()
		a.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) { result[i] = a.Get1(i) })
		mu.Unlock()
	})
	for i := 1; i <= n; i++ {
		r := n + 1 - i
		want := float64(r*100+1) + float64(r*100+2) + float64(r*100+3)
		if result[i] != want {
			t.Fatalf("a[%d] = %g, want %g", i, result[i], want)
		}
	}
}

// TestWriteAtAndAlignedReads exercises WriteAt, ReadLocal, ReadLocal2
// and ReadInt2 together: a rank-2 owner-computed update fed by aligned
// reads (the Figure 4 access shapes).
func TestWriteAtAndAlignedReads(t *testing.T) {
	const n, m, p = 6, 2, 2
	g := topology.MustGrid(p)
	d1 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	d2 := dist.Must([]int{n, m}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d1, nd)
		w := darray.New("w", d2, nd)
		ki := darray.NewInt("ki", d2, nd)
		a.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) {
			a.Set1(i, float64(i))
			for j := 1; j <= m; j++ {
				w.Set2(i, j, float64(j))
				ki.Set2(i, j, j*10)
			}
		})
		out := darray.New("out", d2, nd)
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "writeat", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Body: func(i int, e *Env) {
				if e.Inspecting() {
					// Bodies may consult Inspecting(); behaviour must not
					// change, but the call itself is exercised here.
					_ = i
				}
				base := e.ReadLocal(a, i)
				for j := 1; j <= m; j++ {
					v := base*e.ReadLocal2(w, i, j) + float64(e.ReadInt2(ki, i, j))
					e.WriteAt(out, v, i, j)
				}
			},
		})
		out.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) {
			for j := 1; j <= m; j++ {
				want := float64(i)*float64(j) + float64(j*10)
				if out.Get2(i, j) != want {
					t.Errorf("out[%d,%d] = %g, want %g", i, j, out.Get2(i, j), want)
				}
			}
		})
	})
}

// TestEngineUtilities covers Node, Schedule, Invalidate, InvalidateAll
// and the BuildKind strings.
func TestEngineUtilities(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		eng := NewEngine(nd)
		if eng.Node() != nd {
			t.Error("Node accessor")
		}
		loop := &Loop{
			Name: "u", Lo: 1, Hi: n - 1,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
			Body:  func(i int, e *Env) { e.Write(a, i, e.Read(a, i+1)) },
		}
		eng.Run(loop)
		s := eng.Schedule("u")
		if s == nil || s.Kind() != BuildCompileTime {
			t.Fatalf("Schedule: %+v", s)
		}
		eng.Invalidate("u")
		if eng.Schedule("u") != nil {
			t.Error("Invalidate failed")
		}
		eng.Run(loop)
		eng.InvalidateAll()
		if eng.Schedule("u") != nil {
			t.Error("InvalidateAll failed")
		}
	})
	for k, want := range map[BuildKind]string{
		BuildCached: "cached", BuildCompileTime: "compile-time",
		BuildInspector: "inspector", BuildKind(9): "BuildKind(9)",
	} {
		if k.String() != want {
			t.Errorf("BuildKind(%d).String() = %q", int(k), k.String())
		}
	}
}

// TestMultipleIndirectArrays: two independently distributed arrays
// read indirectly in one loop; each gets its own schedule and both
// resolve correctly.
func TestMultipleIndirectArrays(t *testing.T) {
	const n, p = 16, 4
	g := topology.MustGrid(p)
	dBlk := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	dCyc := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		out := darray.New("out", dBlk, nd)
		u := darray.New("u", dBlk, nd)
		v := darray.New("v", dCyc, nd)
		idx := darray.NewInt("idx", dBlk, nd)
		for i := 1; i <= n; i++ {
			if u.IsLocal1(i) {
				u.Set1(i, float64(i))
			}
			if v.IsLocal1(i) {
				v.Set1(i, float64(i)*1000)
			}
			if idx.IsLocal1(i) {
				idx.Set1(i, (i*5)%n+1)
			}
		}
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "two", Lo: 1, Hi: n,
			On: out, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: u}, {Array: v}},
			DependsOn: []Dep{idx},
			Body: func(i int, e *Env) {
				j := e.ReadInt(idx, i)
				e.Write(out, i, e.Read(u, j)+e.Read(v, j))
			},
		})
		mu.Lock()
		out.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) { result[i] = out.Get1(i) })
		mu.Unlock()
	})
	for i := 1; i <= n; i++ {
		j := (i*5)%n + 1
		if want := float64(j) + float64(j)*1000; result[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, result[i], want)
		}
	}
}

// TestOnFNonIdentity: an on clause with a shifted affine subscript
// places iterations on the owner of A[i+2].
func TestOnFNonIdentity(t *testing.T) {
	const n, p = 12, 3
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	owners := make([]int, n+1)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "shifted-on", Lo: 1, Hi: n - 2,
			On: a, OnF: analysis.Affine{A: 1, C: 2},
			Body: func(i int, e *Env) {
				mu.Lock()
				owners[i] = nd.ID()
				mu.Unlock()
				// Owner-computes holds for A[i+2].
				e.Write(a, i+2, float64(i))
			},
		})
	})
	blk := dist.NewBlock(n, p)
	for i := 1; i <= n-2; i++ {
		if owners[i] != blk.Owner(i+2) {
			t.Fatalf("iteration %d ran on %d, want owner of %d = %d",
				i, owners[i], i+2, blk.Owner(i+2))
		}
	}
}

// TestPhaseOverride: a loop with Phase set accrues time under that
// name, not under "executor".
func TestPhaseOverride(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.NCUBE7())
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "aux", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Phase: "copy",
			Body:  func(i int, e *Env) { e.Write(a, i, 1) },
		})
		if nd.PhaseTime("copy") <= 0 {
			t.Error("copy phase not recorded")
		}
		if nd.PhaseTime(PhaseExecutor) != 0 {
			t.Error("executor phase should be empty")
		}
	})
}
