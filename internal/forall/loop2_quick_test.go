package forall

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// TestQuickLoop2RandomGather: random 2-D transposing gathers over
// random grid shapes and distributions always match the sequential
// model.
func TestQuickLoop2RandomGather(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ny, nx := 2+r.Intn(8), 2+r.Intn(8)
		grids := [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {2, 4}}
		gr := grids[r.Intn(len(grids))]
		pick := func() dist.DimSpec {
			switch r.Intn(3) {
			case 0:
				return dist.BlockDim()
			case 1:
				return dist.CyclicDim()
			default:
				return dist.BlockCyclicDim(1 + r.Intn(3))
			}
		}
		g := topology.MustGrid(gr[0], gr[1])
		dOn := dist.Must([]int{ny, nx}, []dist.DimSpec{pick(), pick()}, g)
		dSrc := dist.Must([]int{ny, nx}, []dist.DimSpec{pick(), pick()}, g)

		// Random source permutation of cells.
		srcOf := make([][2]int, ny*nx)
		for k := range srcOf {
			srcOf[k] = [2]int{1 + r.Intn(ny), 1 + r.Intn(nx)}
		}

		mach := sim.MustNew(gr[0]*gr[1], machine.Ideal())
		got := make([]float64, ny*nx)
		var mu sync.Mutex
		mach.Run(func(nd *machine.Node) {
			dst := darray.New("dst", dOn, nd)
			src := darray.New("src", dSrc, nd)
			for i := 1; i <= ny; i++ {
				for j := 1; j <= nx; j++ {
					if src.IsLocal(i, j) {
						src.Set2(i, j, float64(i*100+j))
					}
				}
			}
			eng := NewEngine(nd)
			eng.Run2(&Loop2{
				Name: "qgather", LoI: 1, HiI: ny, LoJ: 1, HiJ: nx,
				On:    dst,
				Reads: []ReadSpec{{Array: src}},
				Body: func(i, j int, e *Env) {
					s := srcOf[(i-1)*nx+(j-1)]
					e.WriteAt(dst, e.ReadAt(src, s[0], s[1]), i, j)
				},
			})
			mu.Lock()
			for i := 1; i <= ny; i++ {
				for j := 1; j <= nx; j++ {
					if dst.IsLocal(i, j) {
						got[(i-1)*nx+(j-1)] = dst.Get2(i, j)
					}
				}
			}
			mu.Unlock()
		})
		for k, s := range srcOf {
			if got[k] != float64(s[0]*100+s[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
