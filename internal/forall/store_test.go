package forall

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// runShiftWithStore runs the Figure 1 shift loop on a fresh P-node
// machine whose engines consult the given shared store, returning the
// gathered array and the builds/store-hits totals over all engines.
func runShiftWithStore(t *testing.T, n, p int, store *SharedStore) ([]float64, int, int) {
	t.Helper()
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	builds, storeHits := 0, 0
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		eng := NewEngine(nd)
		eng.Store = store
		eng.Run(&Loop{
			Name: "shift", Lo: 1, Hi: n - 1,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
			Body: func(i int, e *Env) {
				e.Write(a, i, e.Read(a, i+1))
			},
		})
		mu.Lock()
		builds += eng.Builds()
		storeHits += eng.StoreHits()
		a.EachLocal(func(gl int) { result[gl] = a.Get1(gl) })
		mu.Unlock()
	})
	return result, builds, storeHits
}

func testKey(i int) shareKey {
	return shareKey{rank: 1, bounds: [4]int{1, 10 + i}, onF: analysis.Identity, nreads: 1, reads: uint64(i)}
}

// TestStoreSingleflight: K tenants asking for one key concurrently
// cause exactly one build; everyone else adopts.
func TestStoreSingleflight(t *testing.T) {
	const K = 16
	s := NewSharedStore(64, "")
	key := testKey(0)
	var buildCount sync.Map
	var calls int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < K; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bp, _ := s.getOrBuild(0, key, func() *Blueprint {
				mu.Lock()
				calls++
				mu.Unlock()
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return &Blueprint{Rank: 1}
			})
			if bp == nil {
				t.Error("nil blueprint")
			}
			buildCount.Store(bp, true)
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("build ran %d times, want exactly 1", calls)
	}
	st := s.Stats()
	if st.Builds != 1 || st.Hits != K-1 {
		t.Fatalf("stats = %+v, want Builds=1 Hits=%d", st, K-1)
	}
	distinct := 0
	buildCount.Range(func(any, any) bool { distinct++; return true })
	if distinct != 1 {
		t.Fatalf("tenants saw %d distinct blueprints, want 1 shared", distinct)
	}
}

// TestStoreBuilderPanicReleasesWaiters: a failing builder must not
// wedge the inflight entry — waiters retry and one of them builds.
func TestStoreBuilderPanicReleasesWaiters(t *testing.T) {
	s := NewSharedStore(64, "")
	key := testKey(1)
	func() {
		defer func() { recover() }()
		s.getOrBuild(0, key, func() *Blueprint { panic("tenant died mid-build") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		bp, hit := s.getOrBuild(0, key, func() *Blueprint { return &Blueprint{Rank: 1} })
		if bp == nil || hit {
			t.Errorf("retry after panic: bp=%v hit=%v, want fresh build", bp, hit)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after builder panic")
	}
}

// TestStoreDistinctKeys: different structures never coalesce.
func TestStoreDistinctKeys(t *testing.T) {
	s := NewSharedStore(64, "")
	for i := 0; i < 5; i++ {
		s.getOrBuild(0, testKey(i), func() *Blueprint { return &Blueprint{Rank: 1} })
	}
	if st := s.Stats(); st.Builds != 5 || st.Hits != 0 || st.Entries != 5 {
		t.Fatalf("stats = %+v, want 5 builds, 0 hits, 5 entries", st)
	}
}

// TestStoreCrossTenantAdopt: a second program (fresh machine, fresh
// engines) sharing the store adopts every schedule the first built,
// with bit-identical results.
func TestStoreCrossTenantAdopt(t *testing.T) {
	const n, p = 24, 4
	s := NewSharedStore(64, "")
	want, builds1, _ := runShiftWithStore(t, n, p, s)
	if builds1 != p {
		t.Fatalf("first tenant: builds = %d, want %d", builds1, p)
	}
	got, builds2, hits2 := runShiftWithStore(t, n, p, s)
	if builds2 != 0 || hits2 != p {
		t.Fatalf("second tenant: builds=%d storeHits=%d, want 0 and %d", builds2, hits2, p)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %g adopted, want %g built", i, got[i], want[i])
		}
	}
}

// TestStorePersistRoundTrip: a fresh store on the same directory
// revives every schedule from disk — the warm start builds nothing —
// and replays bit-identically.
func TestStorePersistRoundTrip(t *testing.T) {
	const n, p = 24, 4
	dir := t.TempDir()
	want, _, _ := runShiftWithStore(t, n, p, NewSharedStore(64, dir))
	files, err := filepath.Glob(filepath.Join(dir, "sched-*.ksched"))
	if err != nil || len(files) != p {
		t.Fatalf("persisted %d blueprint files (err %v), want %d", len(files), err, p)
	}

	warm := NewSharedStore(64, dir)
	got, builds, hits := runShiftWithStore(t, n, p, warm)
	if builds != 0 || hits != p {
		t.Fatalf("warm start: builds=%d storeHits=%d, want 0 and %d", builds, hits, p)
	}
	if st := warm.Stats(); st.DiskHits != p || st.Builds != 0 {
		t.Fatalf("warm store stats = %+v, want DiskHits=%d Builds=0", st, p)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %g warm, want %g cold", i, got[i], want[i])
		}
	}
}

// TestStorePersistCorruptFallback: garbage cache files are ignored and
// rebuilt cleanly, never trusted.
func TestStorePersistCorruptFallback(t *testing.T) {
	const n, p = 24, 4
	dir := t.TempDir()
	want, _, _ := runShiftWithStore(t, n, p, NewSharedStore(64, dir))
	files, _ := filepath.Glob(filepath.Join(dir, "sched-*.ksched"))
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not a schedule"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSharedStore(64, dir)
	got, builds, _ := runShiftWithStore(t, n, p, s)
	if builds != p {
		t.Fatalf("corrupt cache: builds = %d, want %d (full rebuild)", builds, p)
	}
	if st := s.Stats(); st.DiskHits != 0 {
		t.Fatalf("corrupt cache produced %d disk hits", st.DiskHits)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %g after fallback, want %g", i, got[i], want[i])
		}
	}
}

// TestStorePersistStaleVersionFallback: a structurally valid envelope
// with the wrong format version is rejected and rebuilt.
func TestStorePersistStaleVersionFallback(t *testing.T) {
	const n, p = 24, 4
	dir := t.TempDir()
	runShiftWithStore(t, n, p, NewSharedStore(64, dir))
	files, _ := filepath.Glob(filepath.Join(dir, "sched-*.ksched"))
	if len(files) == 0 {
		t.Fatal("no persisted files")
	}
	for _, fname := range files {
		raw, err := os.ReadFile(fname)
		if err != nil {
			t.Fatal(err)
		}
		var env diskSched
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
			t.Fatal(err)
		}
		env.Version = schedCacheVersion + 1
		f, err := os.Create(fname)
		if err != nil {
			t.Fatal(err)
		}
		if err := gob.NewEncoder(f).Encode(&env); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	s := NewSharedStore(64, dir)
	_, builds, _ := runShiftWithStore(t, n, p, s)
	if builds != p {
		t.Fatalf("stale version: builds = %d, want %d (full rebuild)", builds, p)
	}
	if st := s.Stats(); st.DiskHits != 0 {
		t.Fatalf("stale version produced %d disk hits", st.DiskHits)
	}
}

// TestStoreEvictionBounded: the in-memory store never exceeds its
// capacity however many shapes pass through.
func TestStoreEvictionBounded(t *testing.T) {
	s := NewSharedStore(storeShards, "") // one blueprint per shard
	for i := 0; i < 10*storeShards; i++ {
		s.getOrBuild(0, testKey(i), func() *Blueprint { return &Blueprint{Rank: 1} })
	}
	st := s.Stats()
	if st.Entries > storeShards {
		t.Fatalf("store holds %d entries, cap %d", st.Entries, storeShards)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}
