package forall

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// runShift executes the paper's Figure 1 loop —
// forall i in 1..N-1 on A[i].loc do A[i] := A[i+1] end —
// on a P-node machine with the given distribution spec, optionally
// forcing the inspector, and returns the gathered array and the build
// kind observed.
func runShift(t *testing.T, n, p int, spec dist.DimSpec, forceInspector bool) ([]float64, BuildKind) {
	t.Helper()
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{spec}, g)
	m := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var kind BuildKind
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		eng := NewEngine(nd)
		eng.ForceInspector = forceInspector
		loop := &Loop{
			Name: "shift", Lo: 1, Hi: n - 1,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
			Body: func(i int, e *Env) {
				e.Write(a, i, e.Read(a, i+1))
			},
		}
		eng.Run(loop)
		mu.Lock()
		kind = eng.LastBuildKind()
		a.EachLocal(func(gl int) { result[gl] = a.Get1(gl) })
		mu.Unlock()
	})
	return result, kind
}

func checkShift(t *testing.T, got []float64, n int) {
	t.Helper()
	for i := 1; i < n; i++ {
		if got[i] != float64(i+1) {
			t.Fatalf("A[%d] = %g, want %d", i, got[i], i+1)
		}
	}
	if got[n] != float64(n) {
		t.Fatalf("A[%d] = %g, want %d (unwritten)", n, got[n], n)
	}
}

func TestShiftBlockCompileTime(t *testing.T) {
	got, kind := runShift(t, 24, 4, dist.BlockDim(), false)
	if kind != BuildCompileTime {
		t.Fatalf("kind = %v, want compile-time", kind)
	}
	checkShift(t, got, 24)
}

func TestShiftBlockInspector(t *testing.T) {
	got, kind := runShift(t, 24, 4, dist.BlockDim(), true)
	if kind != BuildInspector {
		t.Fatalf("kind = %v, want inspector", kind)
	}
	checkShift(t, got, 24)
}

func TestShiftCyclic(t *testing.T) {
	// Cyclic: every iteration communicates; both paths must agree.
	for _, force := range []bool{false, true} {
		got, _ := runShift(t, 20, 4, dist.CyclicDim(), force)
		checkShift(t, got, 20)
	}
}

func TestShiftBlockCyclic(t *testing.T) {
	for _, force := range []bool{false, true} {
		got, _ := runShift(t, 30, 4, dist.BlockCyclicDim(3), force)
		checkShift(t, got, 30)
	}
}

func TestShiftNonPowerOfTwoProcs(t *testing.T) {
	// Exercises the direct all-to-all exchange fallback.
	got, _ := runShift(t, 22, 3, dist.BlockDim(), true)
	checkShift(t, got, 22)
}

func TestShiftSingleProc(t *testing.T) {
	for _, force := range []bool{false, true} {
		got, _ := runShift(t, 10, 1, dist.BlockDim(), force)
		checkShift(t, got, 10)
	}
}

// TestCopyInCopyOut: the negative shift A[i] := A[i-1] would see
// partially-updated values under in-place execution; copy-in/copy-out
// must preserve the old values.
func TestCopyInCopyOut(t *testing.T) {
	const n, p = 16, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "shiftdown", Lo: 2, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: -1}}},
			Body: func(i int, e *Env) {
				e.Write(a, i, e.Read(a, i-1))
			},
		})
		mu.Lock()
		a.EachLocal(func(gl int) { result[gl] = a.Get1(gl) })
		mu.Unlock()
	})
	for i := 2; i <= n; i++ {
		if result[i] != float64(i-1) {
			t.Fatalf("A[%d] = %g, want %d (copy-in/copy-out violated)", i, result[i], i-1)
		}
	}
}

// runIndirect runs a gather through an index array:
// forall i on B[i].loc do B[i] := A[perm[i]] end — the data-dependent
// subscript that forces the inspector.
func runIndirect(t *testing.T, n, p int, perm []int) []float64 {
	t.Helper()
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	dperm := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		ip := darray.NewInt("perm", dperm, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*100) })
		ip.EachLocal(func(gl int) { ip.Set1(gl, perm[gl-1]) })
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "gather", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: a}}, // indirect
			DependsOn: []Dep{ip},
			Body: func(i int, e *Env) {
				j := e.ReadInt(ip, i)
				e.Write(b, i, e.Read(a, j))
			},
		}
		eng.Run(loop)
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("indirect loop used %v", eng.LastBuildKind())
		}
		mu.Lock()
		b.EachLocal(func(gl int) { result[gl] = b.Get1(gl) })
		mu.Unlock()
	})
	return result
}

func TestIndirectGather(t *testing.T) {
	const n = 32
	perm := make([]int, n)
	r := rand.New(rand.NewSource(42))
	for i := range perm {
		perm[i] = r.Intn(n) + 1
	}
	for _, p := range []int{1, 2, 4, 8} {
		got := runIndirect(t, n, p, perm)
		for i := 1; i <= n; i++ {
			want := float64(perm[i-1]) * 100
			if got[i] != want {
				t.Fatalf("P=%d: B[%d] = %g, want %g", p, i, got[i], want)
			}
		}
	}
}

func TestIndirectGatherReversal(t *testing.T) {
	const n = 24
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - i // full reversal: heavy all-to-all pattern
	}
	got := runIndirect(t, n, 4, perm)
	for i := 1; i <= n; i++ {
		if got[i] != float64(n-i+1)*100 {
			t.Fatalf("B[%d] = %g", i, got[i])
		}
	}
}

// TestScheduleCaching: the second run of the same loop must hit the
// cache and perform no inspector work (zero additional inspector
// phase time).
func TestScheduleCaching(t *testing.T) {
	const n, p = 16, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.NCUBE7())
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		ip := darray.NewInt("perm", d, nd)
		ip.EachLocal(func(gl int) { ip.Set1(gl, (gl%n)+1) })
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "cached", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: a}},
			DependsOn: []Dep{ip},
			Body: func(i int, e *Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(ip, i)))
			},
		}
		eng.Run(loop)
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("first run: %v", eng.LastBuildKind())
		}
		t1 := nd.PhaseTime(PhaseInspector)
		eng.Run(loop)
		if eng.LastBuildKind() != BuildCached {
			t.Errorf("second run: %v", eng.LastBuildKind())
		}
		if t2 := nd.PhaseTime(PhaseInspector); t2 != t1 {
			t.Errorf("cached run added inspector time: %g -> %g", t1, t2)
		}
	})
}

// TestCacheInvalidationOnDepChange: bumping a DependsOn array version
// forces re-inspection; the new pattern must be used.
func TestCacheInvalidationOnDepChange(t *testing.T) {
	const n, p = 16, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		ip := darray.NewInt("perm", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		ip.EachLocal(func(gl int) { ip.Set1(gl, gl) }) // identity
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "inval", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads:     []ReadSpec{{Array: a}},
			DependsOn: []Dep{ip},
			Body: func(i int, e *Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(ip, i)))
			},
		}
		eng.Run(loop)
		// Change the permutation to a reversal; without invalidation the
		// stale schedule would miss the new remote elements.
		ip.EachLocal(func(gl int) { ip.Set1(gl, n-gl+1) })
		ip.Bump()
		eng.Run(loop)
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("after Bump: %v, want inspector rebuild", eng.LastBuildKind())
		}
		mu.Lock()
		b.EachLocal(func(gl int) { result[gl] = b.Get1(gl) })
		mu.Unlock()
	})
	for i := 1; i <= n; i++ {
		if result[i] != float64(n-i+1) {
			t.Fatalf("B[%d] = %g, want %d", i, result[i], n-i+1)
		}
	}
}

// TestStaleScheduleDetected: changing the pattern WITHOUT declaring the
// dependency must panic with a helpful message rather than compute
// garbage.
func TestStaleScheduleDetected(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from stale schedule")
		}
	}()
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		ip := darray.NewInt("perm", d, nd)
		ip.EachLocal(func(gl int) { ip.Set1(gl, gl) })
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "stale", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a}},
			// note: no DependsOn
			Body: func(i int, e *Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(ip, i)))
			},
		}
		eng.Run(loop)
		ip.EachLocal(func(gl int) { ip.Set1(gl, n-gl+1) })
		eng.Run(loop) // must panic: schedule lacks remote elements
	})
}

// TestOnProcPlacement: direct processor placement via OnProc.
func TestOnProcPlacement(t *testing.T) {
	const n, p = 12, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	owners := make([]int, n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		_ = a
		eng := NewEngine(nd)
		eng.Run(&Loop{
			Name: "onproc", Lo: 1, Hi: n,
			OnProc: func(i int) int { return (i * 7) % p },
			Body: func(i int, e *Env) {
				mu.Lock()
				owners[i] = nd.ID()
				mu.Unlock()
			},
		})
	})
	for i := 1; i <= n; i++ {
		if owners[i] != (i*7)%p {
			t.Fatalf("iteration %d ran on %d, want %d", i, owners[i], (i*7)%p)
		}
	}
}

// TestValidationPanics exercises the loop-spec checks.
func TestValidationPanics(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{8}, []dist.DimSpec{dist.BlockDim()}, g)
	rep := dist.NewReplicated([]int{8}, g)
	cases := []func(a, r *darray.Array) *Loop{
		func(a, r *darray.Array) *Loop { // no name
			return &Loop{Lo: 1, Hi: 8, On: a, OnF: analysis.Identity, Body: func(int, *Env) {}}
		},
		func(a, r *darray.Array) *Loop { // no body
			return &Loop{Name: "x", Lo: 1, Hi: 8, On: a, OnF: analysis.Identity}
		},
		func(a, r *darray.Array) *Loop { // no placement
			return &Loop{Name: "x", Lo: 1, Hi: 8, Body: func(int, *Env) {}}
		},
		func(a, r *darray.Array) *Loop { // replicated on clause
			return &Loop{Name: "x", Lo: 1, Hi: 8, On: r, OnF: analysis.Identity, Body: func(int, *Env) {}}
		},
		func(a, r *darray.Array) *Loop { // zero OnF
			return &Loop{Name: "x", Lo: 1, Hi: 8, On: a, Body: func(int, *Env) {}}
		},
	}
	for ci, mk := range cases {
		m := sim.MustNew(2, machine.Ideal())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", ci)
				}
			}()
			m.Run(func(nd *machine.Node) {
				a := darray.New("A", d, nd)
				r := darray.New("R", rep, nd)
				NewEngine(nd).Run(mk(a, r))
			})
		}()
	}
}

// TestUndeclaredReadPanics: Env.Read of an array not in Loop.Reads is
// a spec violation.
func TestUndeclaredReadPanics(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{8}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(2, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		NewEngine(nd).Run(&Loop{
			Name: "x", Lo: 1, Hi: 8, On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a}},
			Body: func(i int, e *Env) {
				e.Read(b, (i%8)+1) // undeclared, crosses the partition
			},
		})
	})
}

// TestNonOwnerWritePanics: writes must be owner-computed.
func TestNonOwnerWritePanics(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{8}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(2, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		NewEngine(nd).Run(&Loop{
			Name: "x", Lo: 1, Hi: 8, On: a, OnF: analysis.Identity,
			Body: func(i int, e *Env) {
				e.Write(a, (i%8)+1, 1) // wrong element for most i
			},
		})
	})
}

// TestReplicatedReadIsFree: reads of replicated arrays are always
// local and need no schedule entries.
func TestReplicatedReadIsFree(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	rep := dist.NewReplicated([]int{n}, g)
	m := sim.MustNew(p, machine.Ideal())
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		r := darray.New("R", rep, nd)
		for i := 1; i <= n; i++ {
			r.Set1(i, float64(i)*3)
		}
		eng := NewEngine(nd)
		eng.ForceInspector = true
		eng.Run(&Loop{
			Name: "repread", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: r}},
			Body: func(i int, e *Env) {
				e.Write(a, i, e.Read(r, ((i*5)%n)+1))
			},
		})
		// No communication should have happened for the replicated array.
		if st := nd.Stats(); st.MsgsSent > 2 { // crystal stage messages only
			// crystal on 2 nodes sends 1 msg per node; any more means
			// data messages existed.
			t.Errorf("unexpected data messages: %+v", st)
		}
		for i := 1; i <= n; i++ {
			if a.IsLocal1(i) {
				want := float64(((i*5)%n)+1) * 3
				if a.Get1(i) != want {
					t.Errorf("A[%d] = %g, want %g", i, a.Get1(i), want)
				}
			}
		}
	})
}

// TestCompileTimeEqualsInspector: both paths must produce identical
// results and identical communication volume for affine loops.
func TestCompileTimeEqualsInspector(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(24)
		p := []int{1, 2, 4}[r.Intn(3)]
		c := r.Intn(3) - 1 // shift in {-1,0,1}
		lo, hi := 1, n
		if c > 0 {
			hi = n - c
		} else {
			lo = 1 - c
		}
		var specs []dist.DimSpec
		switch r.Intn(3) {
		case 0:
			specs = []dist.DimSpec{dist.BlockDim()}
		case 1:
			specs = []dist.DimSpec{dist.CyclicDim()}
		default:
			specs = []dist.DimSpec{dist.BlockCyclicDim(1 + r.Intn(3))}
		}
		d := dist.Must([]int{n}, specs, topology.MustGrid(p))

		run := func(force bool) []float64 {
			m := sim.MustNew(p, machine.Ideal())
			out := make([]float64, n+1)
			var mu sync.Mutex
			m.Run(func(nd *machine.Node) {
				a := darray.New("A", d, nd)
				b := darray.New("B", d, nd)
				a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*7) })
				eng := NewEngine(nd)
				eng.ForceInspector = force
				eng.Run(&Loop{
					Name: "affine", Lo: lo, Hi: hi,
					On: b, OnF: analysis.Identity,
					Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: c}}},
					Body: func(i int, e *Env) {
						e.Write(b, i, e.Read(a, i+c))
					},
				})
				mu.Lock()
				b.EachLocal(func(gl int) { out[gl] = b.Get1(gl) })
				mu.Unlock()
			})
			return out
		}
		x, y := run(false), run(true)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		for i := lo; i <= hi; i++ {
			if x[i] != float64(i+c)*7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicVirtualTime: the same program yields bit-identical
// clocks across runs despite goroutine scheduling.
func TestDeterministicVirtualTime(t *testing.T) {
	run := func() (float64, float64, float64) {
		const n, p = 64, 8
		g := topology.MustGrid(p)
		d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		m := sim.MustNew(p, machine.NCUBE7())
		m.Run(func(nd *machine.Node) {
			a := darray.New("A", d, nd)
			b := darray.New("B", d, nd)
			ip := darray.NewInt("perm", d, nd)
			a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
			ip.EachLocal(func(gl int) { ip.Set1(gl, ((gl*13)%n)+1) })
			eng := NewEngine(nd)
			loop := &Loop{
				Name: "det", Lo: 1, Hi: n,
				On: b, OnF: analysis.Identity,
				Reads:     []ReadSpec{{Array: a}},
				DependsOn: []Dep{ip},
				Body: func(i int, e *Env) {
					e.Flops(2)
					e.Write(b, i, e.Read(a, e.ReadInt(ip, i))*2)
				},
			}
			for k := 0; k < 3; k++ {
				eng.Run(loop)
			}
			nd.Barrier()
		})
		return m.MaxClock(), m.MaxPhase(PhaseInspector), m.MaxPhase(PhaseExecutor)
	}
	c0, i0, e0 := run()
	for k := 0; k < 5; k++ {
		c, i, e := run()
		if c != c0 || i != i0 || e != e0 {
			t.Fatalf("nondeterministic times: (%g,%g,%g) vs (%g,%g,%g)", c, i, e, c0, i0, e0)
		}
	}
	if i0 <= 0 || e0 <= 0 || math.Abs(c0) == 0 {
		t.Fatalf("phases not recorded: clock=%g insp=%g exec=%g", c0, i0, e0)
	}
}

// TestNoCacheReinspects: with NoCache every run pays the inspector.
func TestNoCacheReinspects(t *testing.T) {
	const n, p = 16, 2
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.NCUBE7())
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		ip := darray.NewInt("perm", d, nd)
		ip.EachLocal(func(gl int) { ip.Set1(gl, (gl%n)+1) })
		eng := NewEngine(nd)
		eng.NoCache = true
		loop := &Loop{
			Name: "nocache", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a}},
			Body: func(i int, e *Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(ip, i)))
			},
		}
		eng.Run(loop)
		t1 := nd.PhaseTime(PhaseInspector)
		eng.Run(loop)
		t2 := nd.PhaseTime(PhaseInspector)
		if !(t2 > t1 && t1 > 0) {
			t.Errorf("NoCache inspector times: %g then %g", t1, t2)
		}
		if eng.LastBuildKind() != BuildInspector {
			t.Errorf("kind = %v", eng.LastBuildKind())
		}
	})
}

// TestScheduleCounts: LocalIters/NonlocalIters/RecvCount are coherent
// for the block shift.
func TestScheduleCounts(t *testing.T) {
	const n, p = 20, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	m := sim.MustNew(p, machine.Ideal())
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		eng := NewEngine(nd)
		loop := &Loop{
			Name: "counts", Lo: 1, Hi: n - 1,
			On: a, OnF: analysis.Identity,
			Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
			Body:  func(i int, e *Env) { e.Write(a, i, e.Read(a, i+1)) },
		}
		eng.Run(loop)
		s := eng.Schedule("counts")
		// Procs 0..2 have one boundary iteration; proc 3 has none.
		wantNonlocal := 1
		if nd.ID() == p-1 {
			wantNonlocal = 0
		}
		if s.NonlocalIters() != wantNonlocal || s.RecvCount() != wantNonlocal {
			t.Errorf("node %d: nonlocal=%d recv=%d want %d",
				nd.ID(), s.NonlocalIters(), s.RecvCount(), wantNonlocal)
		}
		if s.LocalIters()+s.NonlocalIters() == 0 {
			t.Errorf("node %d: no iterations at all", nd.ID())
		}
	})
}
