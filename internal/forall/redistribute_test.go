package forall

// Tests at the redistribution/forall boundary: a remapped array's next
// loop must build exactly the schedule a fresh array under the new
// distribution would get, and must never replay a schedule built for
// the old mapping (stale-schedule staleness is a correctness bug).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// schedEqual compares two schedules structurally: iteration lists and
// every slot's in/out range records.
func schedEqual(a, b *Schedule) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.rank != b.rank || len(a.execLocal) != len(b.execLocal) ||
		len(a.execNonlocal) != len(b.execNonlocal) || len(a.arrays) != len(b.arrays) {
		return false
	}
	for i := range a.execLocal {
		if a.execLocal[i] != b.execLocal[i] {
			return false
		}
	}
	for i := range a.execNonlocal {
		if a.execNonlocal[i] != b.execNonlocal[i] {
			return false
		}
	}
	for k := range a.arrays {
		ai, bi := a.arrays[k].in, b.arrays[k].in
		ao, bo := a.arrays[k].out, b.arrays[k].out
		if len(ai.Ranges) != len(bi.Ranges) || len(ao.Ranges) != len(bo.Ranges) {
			return false
		}
		for r := range ai.Ranges {
			if ai.Ranges[r] != bi.Ranges[r] {
				return false
			}
		}
		for r := range ao.Ranges {
			if ao.Ranges[r] != bo.Ranges[r] {
				return false
			}
		}
	}
	return true
}

// randSpec draws a random 1-D dist-clause entry, including occasional
// user maps.
func randSpec(r *rand.Rand, n, p int) dist.DimSpec {
	switch r.Intn(4) {
	case 0:
		return dist.BlockDim()
	case 1:
		return dist.CyclicDim()
	case 2:
		return dist.BlockCyclicDim(1 + r.Intn(4))
	default:
		owners := make([]int, n)
		for i := range owners {
			owners[i] = r.Intn(p)
		}
		return dist.MapDim(owners)
	}
}

// TestQuickRedistributeSchedulesMatchFresh: over random (pattern,
// pattern′) pairs, Redistribute preserves every element on the owner
// the new dist reports, and a forall over the redistributed array
// builds a schedule identical to the one a fresh array allocated under
// pattern′ gets — the remapped handle is indistinguishable from a
// natively distributed one.
func TestQuickRedistributeSchedulesMatchFresh(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(40)
		p := []int{2, 4, 8}[r.Intn(3)]
		g := topology.MustGrid(p)
		from := dist.Must([]int{n}, []dist.DimSpec{randSpec(r, n, p)}, g)
		to := dist.Must([]int{n}, []dist.DimSpec{randSpec(r, n, p)}, g)
		shift := 1 + r.Intn(3)
		ok := true
		mach := sim.MustNew(p, machine.Ideal())
		mach.Run(func(nd *machine.Node) {
			a := darray.New("a", from, nd)
			b := darray.New("b", to, nd)
			for i := 1; i <= n; i++ {
				if a.IsLocal1(i) {
					a.Set1(i, float64(i)*7)
				}
				if b.IsLocal1(i) {
					b.Set1(i, float64(i)*7)
				}
			}
			darray.Redistribute(a, to)
			me := nd.ID()
			for i := 1; i <= n; i++ {
				owned := to.Pattern(0).Owner(i) == me
				if owned != a.IsLocal1(i) || (owned && a.Get1(i) != float64(i)*7) {
					ok = false
				}
			}
			// Same loop shape over the remapped array and the fresh one,
			// on two engines so the content-addressed store cannot make
			// the comparison vacuous.
			outA := darray.New("outA", to, nd)
			outB := darray.New("outB", to, nd)
			mk := func(name string, out, src *darray.Array) *Loop {
				return &Loop{
					Name: name, Lo: 1, Hi: n - shift,
					On: out, OnF: analysis.Identity,
					Reads: []ReadSpec{{Array: src, Affine: &analysis.Affine{A: 1, C: shift}}},
					Body:  func(i int, e *Env) { e.Write(out, i, e.Read(src, i+shift)) },
				}
			}
			eng1, eng2 := NewEngine(nd), NewEngine(nd)
			eng1.Run(mk("r", outA, a))
			eng2.Run(mk("r", outB, b))
			if !schedEqual(eng1.Schedule("r"), eng2.Schedule("r")) {
				ok = false
			}
			for i := 1; i <= n-shift; i++ {
				if outA.IsLocal1(i) && outA.Get1(i) != float64(i+shift)*7 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRedistributeSchedulesMatchFresh2D: the rank-2 twin on a 2-D
// processor grid — a [block, block] array remapped to [cyclic, block]
// drives the same Loop2 stencil schedule as a fresh array.
func TestRedistributeSchedulesMatchFresh2D(t *testing.T) {
	const n = 12
	g := topology.MustGrid(2, 2)
	from := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	to := dist.Must([]int{n, n}, []dist.DimSpec{dist.CyclicDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(4, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		f := func(i, j int) float64 { return float64(i*50 + j) }
		a := darray.New("a", from, nd)
		b := darray.New("b", to, nd)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if a.IsLocal(i, j) {
					a.Set(f(i, j), i, j)
				}
				if b.IsLocal(i, j) {
					b.Set(f(i, j), i, j)
				}
			}
		}
		darray.Redistribute(a, to)
		outA := darray.New("outA", to, nd)
		outB := darray.New("outB", to, nd)
		mk := func(out, src *darray.Array) *Loop2 {
			return &Loop2{
				Name: "st", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
				On: out,
				Reads: []ReadSpec{
					{Array: src, Affine2: analysis.Shift2(-1, 0)},
					{Array: src, Affine2: analysis.Shift2(0, 1)},
				},
				Body: func(i, j int, e *Env) {
					e.WriteAt(out, e.ReadAt(src, i-1, j)+e.ReadAt(src, i, j+1), i, j)
				},
			}
		}
		eng1, eng2 := NewEngine(nd), NewEngine(nd)
		eng1.Run2(mk(outA, a))
		eng2.Run2(mk(outB, b))
		if !schedEqual(eng1.Schedule2("st"), eng2.Schedule2("st")) {
			t.Errorf("node %d: remapped rank-2 schedule differs from fresh build", nd.ID())
		}
		for i := 2; i <= n-1; i++ {
			for j := 2; j <= n-1; j++ {
				if outA.IsLocal(i, j) && outA.Get(i, j) != f(i-1, j)+f(i, j+1) {
					t.Errorf("node %d: outA[%d,%d] = %g", nd.ID(), i, j, outA.Get(i, j))
				}
			}
		}
	})
}
