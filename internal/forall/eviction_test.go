package forall

import (
	"testing"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// TestSharedStoreBounded: the content-addressed store must never hold
// more than its capacity, must count evictions, and evicting a
// schedule must never corrupt results — an evicted shape that comes
// back simply rebuilds.
func TestSharedStoreBounded(t *testing.T) {
	const p = 2
	shapes := sharedScheduleCap + 10 // force evictions
	n := 16
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		out, src := darray.New("out", d, nd), darray.New("src", d, nd)
		for i := 1; i <= n; i++ {
			if src.IsLocal1(i) {
				src.Set1(i, float64(i))
			}
		}
		eng := NewEngine(nd)
		// Each distinct (Lo, Hi) is a distinct share key.
		for hi := 2; hi < 2+shapes; hi++ {
			bound := hi%(n-2) + 2 // in [2, n-1]: reads src[bound+1] <= src[n]
			l := shiftLoop("l", n, out, src)
			l.Hi = bound
			eng.Run(l)
		}
		if got := eng.SharedSchedules(); got > sharedScheduleCap {
			t.Errorf("shared store holds %d schedules, cap is %d", got, sharedScheduleCap)
		}
		// Only n-2 distinct bounds exist, so evictions occur only if
		// that exceeds capacity; re-running all shapes in cycle does
		// force misses when the set is larger than the cap.
		for round := 0; round < 3; round++ {
			for hi := 2; hi <= n-1; hi++ {
				l := shiftLoop("l", n, out, src)
				l.Hi = hi
				eng.Run(l)
			}
		}
		// Values stay correct throughout.
		for i := 1; i < n; i++ {
			if out.IsLocal1(i) && i+1 <= n && out.Get1(i) != float64(i+1) {
				t.Errorf("out[%d] = %g, want %g", i, out.Get1(i), float64(i+1))
			}
		}
	})
}

// TestSharedStoreEvictionCounted: overflowing a store whose distinct
// shape count exceeds the capacity must report evictions.
func TestSharedStoreEvictionCounted(t *testing.T) {
	const p = 1
	n := sharedScheduleCap + 20 // enough distinct bounds
	g := topology.MustGrid(p)
	d := dist.Must([]int{n + 2}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		out, src := darray.New("out", d, nd), darray.New("src", d, nd)
		eng := NewEngine(nd)
		for hi := 2; hi <= n; hi++ {
			l := shiftLoop("l", n+2, out, src)
			l.Hi = hi
			eng.Run(l)
		}
		if eng.SharedEvictions() == 0 {
			t.Errorf("expected evictions after %d distinct shapes with cap %d",
				n-1, sharedScheduleCap)
		}
		if eng.SharedSchedules() != sharedScheduleCap {
			t.Errorf("store holds %d, want exactly cap %d", eng.SharedSchedules(), sharedScheduleCap)
		}
	})
}

// TestFusedPlanStoreBounded: cycling through more distinct fusion
// windows than the plan store holds must evict (counted, bounded) and
// never corrupt results — an evicted window that comes back rebuilds
// its plan from its schedules.  Distinct loop bounds give distinct
// schedules, so each window is a distinct plan key; the window's two
// identically-shaped loops also share one schedule, so every plan
// drains two section streams out of one set of receive buffers — the
// sharing case the stash-until-drain logic exists for.
func TestFusedPlanStoreBounded(t *testing.T) {
	const p = 2
	windows := fusedPlanCap + 8 // force plan evictions
	n := windows + 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		out1, out2 := darray.New("out1", d, nd), darray.New("out2", d, nd)
		src := darray.New("src", d, nd)
		for i := 1; i <= n; i++ {
			if src.IsLocal1(i) {
				src.Set1(i, float64(i))
			}
		}
		eng := NewEngine(nd)
		runWindowHi := func(hi int) {
			l1 := shiftLoop("w1", n, out1, src)
			l1.Hi = hi
			l2 := shiftLoop("w2", n, out2, src)
			l2.Hi = hi
			eng.RunSequence([]SeqLoop{
				{L: l1, Writes: []*darray.Array{out1}},
				{L: l2, Writes: []*darray.Array{out2}},
			})
		}
		for round := 0; round < 3; round++ {
			for hi := 2; hi < 2+windows; hi++ {
				runWindowHi(hi)
			}
		}
		if got := eng.FusedPlans(); got > fusedPlanCap {
			t.Errorf("fused plan store holds %d plans, cap is %d", got, fusedPlanCap)
		}
		if eng.FusedPlanEvictions() == 0 {
			t.Errorf("expected plan evictions after %d distinct windows with cap %d",
				windows, fusedPlanCap)
		}
		if eng.FusedWindows() == 0 {
			t.Error("no window actually fused")
		}
		// Values stay correct throughout the eviction churn (the widest
		// window writes out[1..windows+1]).
		for i := 1; i <= windows+1; i++ {
			if out1.IsLocal1(i) && out1.Get1(i) != float64(i+1) {
				t.Errorf("out1[%d] = %g, want %g", i, out1.Get1(i), float64(i+1))
			}
			if out2.IsLocal1(i) && out2.Get1(i) != float64(i+1) {
				t.Errorf("out2[%d] = %g, want %g", i, out2.Get1(i), float64(i+1))
			}
		}
	})
}

// TestRedistPlanStoreBounded: cycling through more distribution pairs
// than the plan store holds must evict (counted in PlanEvictions) and
// keep redistribution correct.
func TestRedistPlanStoreBounded(t *testing.T) {
	const p, n = 1, 64
	g := topology.MustGrid(p)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		d0 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		a := darray.New("a", d0, nd)
		for i := 1; i <= n; i++ {
			if a.IsLocal1(i) {
				a.Set1(i, float64(i))
			}
		}
		// Distinct block-cyclic sizes make distinct fingerprints; each
		// hop is a distinct (old, new) pair = a distinct plan.
		for b := 1; b <= 40; b++ {
			nd2 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockCyclicDim(b)}, g)
			darray.Redistribute(a, nd2)
		}
		for i := 1; i <= n; i++ {
			if a.IsLocal1(i) && a.Get1(i) != float64(i) {
				t.Fatalf("a[%d] = %g after remapping chain, want %g", i, a.Get1(i), float64(i))
			}
		}
	})
	if darray.PlanEvictions(mach) == 0 {
		t.Error("expected plan evictions after 40 distinct remappings with cap 16/node")
	}
}
