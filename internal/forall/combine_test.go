package forall

import (
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// runTwoArrayStencil executes a loop reading two arrays across the
// same boundaries, with or without message combining, and returns the
// results plus the total data-message count (crystal traffic excluded
// by running the loop a second time from the cache and counting only
// that execution).
func runTwoArrayStencil(t *testing.T, noCombine bool) ([]float64, int) {
	t.Helper()
	const n, p = 24, 4
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	result := make([]float64, n+1)
	var mu sync.Mutex
	msgs := 0
	mach.Run(func(nd *machine.Node) {
		out := darray.New("out", d, nd)
		u := darray.New("u", d, nd)
		v := darray.New("v", d, nd)
		for i := 1; i <= n; i++ {
			if u.IsLocal1(i) {
				u.Set1(i, float64(i))
				v.Set1(i, float64(i)*100)
			}
		}
		eng := NewEngine(nd)
		eng.NoCombine = noCombine
		loop := &Loop{
			Name: "two-array", Lo: 1, Hi: n - 1,
			On: out, OnF: analysis.Identity,
			Reads: []ReadSpec{
				{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
				{Array: v, Affine: &analysis.Affine{A: 1, C: 1}},
			},
			Body: func(i int, e *Env) {
				e.Write(out, i, e.Read(u, i+1)+e.Read(v, i+1))
			},
		}
		eng.Run(loop)
		before := nd.Stats().MsgsSent
		eng.Run(loop) // cached: pure executor traffic
		after := nd.Stats().MsgsSent
		mu.Lock()
		msgs += after - before
		out.Dist().Pattern(0).Local(nd.ID()).Each(func(i int) { result[i] = out.Get1(i) })
		mu.Unlock()
	})
	return result, msgs
}

// TestCombineHalvesMessages: with two arrays crossing each boundary,
// combining halves the message count (the paper's "saving on the
// number of messages") without changing results.
func TestCombineHalvesMessages(t *testing.T) {
	combined, mc := runTwoArrayStencil(t, false)
	separate, ms := runTwoArrayStencil(t, true)
	for i := 1; i < 24; i++ {
		want := float64(i+1) * 101
		if combined[i] != want || separate[i] != want {
			t.Fatalf("i=%d: combined=%g separate=%g want=%g", i, combined[i], separate[i], want)
		}
	}
	// 3 boundary pairs, one direction each: combined = 3, separate = 6.
	if mc != 3 || ms != 6 {
		t.Fatalf("messages per execution: combined=%d separate=%d, want 3/6", mc, ms)
	}
}

// TestCombineSavesStartupTime: per-execution message time drops by the
// saved startups.
func TestCombineSavesStartupTime(t *testing.T) {
	run := func(noCombine bool) float64 {
		const n, p = 24, 4
		g := topology.MustGrid(p)
		d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		mach := sim.MustNew(p, machine.NCUBE7())
		mach.Run(func(nd *machine.Node) {
			out := darray.New("out", d, nd)
			u := darray.New("u", d, nd)
			v := darray.New("v", d, nd)
			eng := NewEngine(nd)
			eng.NoCombine = noCombine
			loop := &Loop{
				Name: "two-array", Lo: 1, Hi: n - 1,
				On: out, OnF: analysis.Identity,
				Reads: []ReadSpec{
					{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
					{Array: v, Affine: &analysis.Affine{A: 1, C: 1}},
				},
				Body: func(i int, e *Env) {
					e.Write(out, i, e.Read(u, i+1)+e.Read(v, i+1))
				},
			}
			for k := 0; k < 10; k++ {
				eng.Run(loop)
			}
		})
		return mach.MaxPhase(PhaseExecutor)
	}
	if c, s := run(false), run(true); c >= s {
		t.Fatalf("combined executor %.6f not faster than separate %.6f", c, s)
	}
}
