package forall

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// runFusedWavefront runs many sweeps of a coupled pair of five-point
// stencils through the sequence API: each sweep is [copy old := a;
// relax a from old; relax b from old].  The two relaxations read only
// old and write distinct arrays, so they form a fusion window — on the
// wall-clock backend their sections from up to four neighbors complete
// in whatever order the threads physically deliver them, exercising
// the out-of-order stash/drain path of the wavefront executor.
func runFusedWavefront(m *machine.Machine, pr, pc, n, sweeps, panicNode, panicSweep int, noFuse bool) []float64 {
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	out := make([]float64, 2*n*n)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		b := darray.New("b", d, nd)
		old := darray.New("old", d, nd)
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) && (r == 1 || r == n || c == 1 || c == n) {
					a.Set2(r, c, 1.0+float64(((r-1)*n+c)%7))
					b.Set2(r, c, 2.0+float64(((r-1)*n+c)%5))
				}
			}
		}
		eng := NewEngine(nd)
		eng.NoFuse = noFuse
		copyLoop := &Loop2{
			Name: "wave.copy", LoI: 1, HiI: n, LoJ: 1, HiJ: n,
			On:    old,
			Reads: []ReadSpec{{Array: a}},
			Body:  func(i, j int, e *Env) { e.Write2(old, i, j, e.Read2(a, i, j)) },
		}
		relaxA := &Loop2{
			Name: "wave.relaxA", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
			On:    a,
			Reads: []ReadSpec{{Array: old}},
			Body: func(i, j int, e *Env) {
				x := 0.25 * (e.Read2(old, i-1, j) + e.Read2(old, i+1, j) +
					e.Read2(old, i, j-1) + e.Read2(old, i, j+1))
				e.Write2(a, i, j, x)
			},
		}
		relaxB := &Loop2{
			Name: "wave.relaxB", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
			On:    b,
			Reads: []ReadSpec{{Array: old}},
			Body: func(i, j int, e *Env) {
				x := 0.2 * (e.Read2(old, i, j) + e.Read2(old, i-1, j) + e.Read2(old, i+1, j) +
					e.Read2(old, i, j-1) + e.Read2(old, i, j+1))
				e.Write2(b, i, j, x)
			},
		}
		seq := []SeqLoop{
			{L2: copyLoop, Writes: []*darray.Array{old}},
			{L2: relaxA, Writes: []*darray.Array{a}},
			{L2: relaxB, Writes: []*darray.Array{b}},
		}
		for s := 0; s < sweeps; s++ {
			if nd.ID() == panicNode && s == panicSweep {
				// Peers are mid-window with fused sections posted and
				// drains blocked; the panic must poison them free.
				panic("wavefront stress: induced node failure")
			}
			eng.RunSequence(seq)
		}
		mu.Lock()
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				if a.IsLocal(r, c) {
					out[(r-1)*n+c-1] = a.Get2(r, c)
					out[n*n+(r-1)*n+c-1] = b.Get2(r, c)
				}
			}
		}
		mu.Unlock()
	})
	return out
}

// TestWallclockFusedWavefrontStress: many fused sweeps on 8 real
// threads must match the simulator — and the unfused oracle — bit for
// bit, out-of-order section completion and all.  Run under -race in
// CI.
func TestWallclockFusedWavefrontStress(t *testing.T) {
	const pr, pc, n, sweeps = 4, 2, 32, 40
	want := runFusedWavefront(sim.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, -1, -1, false)
	unfused := runFusedWavefront(sim.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, -1, -1, true)
	got := runFusedWavefront(wallclock.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, -1, -1, false)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("element %d differs after %d fused sweeps: wall %v, sim %v", i, sweeps, got[i], want[i])
		}
		if unfused[i] != want[i] {
			t.Fatalf("element %d differs from the unfused oracle: fused %v, unfused %v", i, want[i], unfused[i])
		}
	}
}

// TestWallclockFusedPoisonInFlight: a node panicking while its peers
// hold posted fused sections and sit in the wavefront drain must
// poison the machine free rather than deadlock.
func TestWallclockFusedPoisonInFlight(t *testing.T) {
	const pr, pc, n, sweeps = 4, 2, 32, 12
	defer func() {
		if recover() == nil {
			t.Fatal("expected the induced node panic to propagate")
		}
	}()
	runFusedWavefront(wallclock.MustNew(pr*pc, machine.Ideal()), pr, pc, n, sweeps, 5, 3, false)
}

// TestFusedReplayAllocationFree: once a window's schedules and its
// fused plan are cached and the payload pool is warm, replaying the
// window — packing sections, posting, draining, stashing, unpacking,
// bodies, commits — performs zero heap allocations machine-wide, like
// the single-loop replays pinned in sharing_test.go.
func TestFusedReplayAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, p, warmup, reps = 64, 4, 5, 20
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())

	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)

	var mallocs uint64
	var windows int
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		out1 := darray.New("out1", d, nd)
		out2 := darray.New("out2", d, nd)
		u := darray.New("u", d, nd)
		v := darray.New("v", d, nd)
		for i := 1; i <= n; i++ {
			if u.IsLocal1(i) {
				u.Set1(i, float64(i))
				v.Set1(i, float64(100*i))
			}
		}
		eng := NewEngine(nd)
		seq := []SeqLoop{
			{
				L: &Loop{
					Name: "fused.replay1", Lo: 1, Hi: n - 1,
					On: out1, OnF: analysis.Identity,
					Reads: []ReadSpec{{Array: u, Affine: &analysis.Affine{A: 1, C: 1}}},
					Body:  func(i int, e *Env) { e.Write(out1, i, e.Read(u, i+1)) },
				},
				Writes: []*darray.Array{out1},
			},
			{
				L: &Loop{
					Name: "fused.replay2", Lo: 1, Hi: n - 1,
					On: out2, OnF: analysis.Identity,
					Reads: []ReadSpec{
						{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
						{Array: v, Affine: &analysis.Affine{A: 1, C: 1}},
					},
					Body: func(i int, e *Env) { e.Write(out2, i, e.Read(u, i+1)+e.Read(v, i+1)) },
				},
				Writes: []*darray.Array{out2},
			},
		}
		// Warmup builds both schedules, the fused plan, and grows the
		// payload pool to peak in-flight demand (barriers bound it, as in
		// measureReplayMallocs).
		for k := 0; k < warmup; k++ {
			eng.RunSequence(seq)
			nd.Barrier()
		}

		var before, after runtime.MemStats
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			eng.RunSequence(seq)
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
			mu.Lock()
			mallocs = after.Mallocs - before.Mallocs
			windows = eng.FusedWindows()
			mu.Unlock()
		}
		nd.Barrier()

		for i := 1; i < n; i++ {
			if out1.IsLocal1(i) && out1.Get1(i) != float64(i+1) {
				t.Errorf("out1[%d] = %g after fused replays", i, out1.Get1(i))
			}
			if out2.IsLocal1(i) && out2.Get1(i) != float64(i+1)+float64(100*(i+1)) {
				t.Errorf("out2[%d] = %g after fused replays", i, out2.Get1(i))
			}
		}
	})
	if windows != warmup+reps {
		t.Fatalf("expected every sequence execution to fuse: %d windows over %d runs", windows, warmup+reps)
	}
	if mallocs != 0 {
		t.Errorf("warm fused replay allocated: %d mallocs over %d replays on %d nodes (want 0)",
			mallocs, reps, p)
	}
}
