package forall

import (
	"math/rand"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// Backend-equivalence property: the simulator and the wall-clock
// backend run the *same* compiled schedules, so over random
// distributions, read patterns, and executor variants they must
// produce byte-identical array contents and identical message counts.
// Only the clocks may differ.

// equivCase is one randomly drawn program shape.
type equivCase struct {
	n, p      int
	spec      dist.DimSpec
	affine    bool // affine read (else indirect via permutation)
	offset    int  // affine read offset
	perm      []int
	force     bool // ForceInspector
	enumerate bool
	sweeps    int
}

func drawCase(r *rand.Rand) equivCase {
	c := equivCase{
		n:      8 + r.Intn(40),
		p:      1 + r.Intn(4),
		affine: r.Intn(2) == 0,
		force:  r.Intn(2) == 0,
		sweeps: 1 + r.Intn(3),
	}
	switch r.Intn(3) {
	case 0:
		c.spec = dist.BlockDim()
	case 1:
		c.spec = dist.CyclicDim()
	default:
		c.spec = dist.BlockCyclicDim(1 + r.Intn(4))
	}
	if c.affine {
		c.offset = []int{-2, -1, 1, 2}[r.Intn(4)]
	} else {
		c.perm = make([]int, c.n)
		for i := range c.perm {
			c.perm[i] = r.Intn(c.n) + 1
		}
		// The enumerated executor only applies to inspector loops.
		c.enumerate = r.Intn(2) == 0
	}
	return c
}

// runEquivCase executes the case's program on the given machine and
// returns the final gathered contents of the output array plus the
// machine-wide message totals.
func runEquivCase(c equivCase, m *machine.Machine) ([]float64, machine.Stats) {
	g := topology.MustGrid(m.P())
	d := dist.Must([]int{c.n}, []dist.DimSpec{c.spec}, g)
	result := make([]float64, c.n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*1.5) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		eng := NewEngine(nd)
		eng.ForceInspector = c.force

		var loop *Loop
		if c.affine {
			lo, hi := 1, c.n
			if c.offset > 0 {
				hi = c.n - c.offset
			} else {
				lo = 1 - c.offset
			}
			loop = &Loop{
				Name: "equiv", Lo: lo, Hi: hi,
				On: b, OnF: analysis.Identity,
				Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: c.offset}}},
				Body: func(i int, e *Env) {
					e.Write(b, i, e.Read(a, i+c.offset)+float64(i))
				},
			}
		} else {
			// perm shares the loop's distribution: iteration i runs on
			// b[i]'s owner, which then reads perm[i] locally.
			ip := darray.NewInt("perm", d, nd)
			ip.EachLocal(func(gl int) { ip.Set1(gl, c.perm[gl-1]) })
			loop = &Loop{
				Name: "equiv", Lo: 1, Hi: c.n,
				On: b, OnF: analysis.Identity,
				Reads:     []ReadSpec{{Array: a}}, // indirect
				DependsOn: []Dep{ip},
				Enumerate: c.enumerate,
				Body: func(i int, e *Env) {
					j := e.ReadInt(ip, i)
					e.Write(b, i, e.Read(a, j)+float64(i))
				},
			}
		}
		for s := 0; s < c.sweeps; s++ {
			eng.Run(loop)
		}
		mu.Lock()
		b.EachLocal(func(gl int) { result[gl] = b.Get1(gl) })
		mu.Unlock()
	})
	return result, m.TotalStats()
}

func TestBackendEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 40; trial++ {
		c := drawCase(r)
		simM := sim.MustNew(c.p, machine.Ideal())
		wallM := wallclock.MustNew(c.p, machine.Ideal())

		simVals, simStats := runEquivCase(c, simM)
		wallVals, wallStats := runEquivCase(c, wallM)

		for i := range simVals {
			if simVals[i] != wallVals[i] {
				t.Fatalf("trial %d (%+v): element %d differs: sim %v, wall %v",
					trial, c, i, simVals[i], wallVals[i])
			}
		}
		if simStats.MsgsSent != wallStats.MsgsSent || simStats.BytesSent != wallStats.BytesSent {
			t.Fatalf("trial %d (%+v): traffic differs: sim %d msgs/%d bytes, wall %d msgs/%d bytes",
				trial, c, simStats.MsgsSent, simStats.BytesSent, wallStats.MsgsSent, wallStats.BytesSent)
		}
		if simStats.MsgsReceived != wallStats.MsgsReceived {
			t.Fatalf("trial %d: receives differ: sim %d, wall %d",
				trial, simStats.MsgsReceived, wallStats.MsgsReceived)
		}
	}
}

// TestBackendEquivalenceRedistribution: the redistribution pipeline
// (plans, pooled payloads, header swaps) must also be
// backend-invariant.
func TestBackendEquivalenceRedistribution(t *testing.T) {
	const n, p = 48, 4
	run := func(m *machine.Machine) ([]float64, machine.Stats) {
		g := topology.MustGrid(p)
		d0 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		d1 := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
		result := make([]float64, n+1)
		var mu sync.Mutex
		m.Run(func(nd *machine.Node) {
			a := darray.New("A", d0, nd)
			a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*2.25) })
			for round := 0; round < 3; round++ {
				darray.Redistribute(a, d1)
				darray.Redistribute(a, d0)
			}
			mu.Lock()
			a.EachLocal(func(gl int) { result[gl] = a.Get1(gl) })
			mu.Unlock()
		})
		return result, m.TotalStats()
	}
	simVals, simStats := run(sim.MustNew(p, machine.Ideal()))
	wallVals, wallStats := run(wallclock.MustNew(p, machine.Ideal()))
	for i := range simVals {
		if simVals[i] != wallVals[i] {
			t.Fatalf("element %d differs: sim %v, wall %v", i, simVals[i], wallVals[i])
		}
	}
	if simStats != wallStats {
		t.Fatalf("stats differ: sim %+v, wall %+v", simStats, wallStats)
	}
}

// TestBackendEquivalenceAllReduce: reductions combine in node-id
// order on both backends, so even float results are bit-identical.
func TestBackendEquivalenceAllReduce(t *testing.T) {
	const p = 4
	run := func(m *machine.Machine) []float64 {
		got := make([]float64, p)
		m.Run(func(nd *machine.Node) {
			x := 0.1 * float64(nd.ID()+1) // sums of 0.1s are order-sensitive
			got[nd.ID()] = nd.AllReduce(x, "sum")
		})
		return got
	}
	simVals := run(sim.MustNew(p, machine.Ideal()))
	wallVals := run(wallclock.MustNew(p, machine.Ideal()))
	for i := range simVals {
		if simVals[i] != wallVals[i] {
			t.Fatalf("node %d: sim %v, wall %v", i, simVals[i], wallVals[i])
		}
	}
}
