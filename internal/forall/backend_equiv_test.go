package forall

import (
	"math/rand"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// Backend-equivalence property: the simulator and the wall-clock
// backend run the *same* compiled schedules, so over random
// distributions, read patterns, and executor variants they must
// produce byte-identical array contents and identical message counts.
// Only the clocks may differ.

// equivCase is one randomly drawn program shape.
type equivCase struct {
	n, p      int
	spec      dist.DimSpec
	affine    bool // affine read (else indirect via permutation)
	offset    int  // affine read offset
	onOff     int  // affine on-clause offset: iteration i on b[i+onOff]'s owner
	perm      []int
	force     bool // ForceInspector
	enumerate bool
	sweeps    int
}

func drawCase(r *rand.Rand) equivCase {
	c := equivCase{
		n:      8 + r.Intn(40),
		p:      1 + r.Intn(4),
		affine: r.Intn(2) == 0,
		force:  r.Intn(2) == 0,
		sweeps: 1 + r.Intn(3),
	}
	switch r.Intn(3) {
	case 0:
		c.spec = dist.BlockDim()
	case 1:
		c.spec = dist.CyclicDim()
	default:
		c.spec = dist.BlockCyclicDim(1 + r.Intn(4))
	}
	if c.affine {
		c.offset = []int{-2, -1, 1, 2}[r.Intn(4)]
		// Random on-clause: strided placement stays owner-correct because
		// the body writes b[i+onOff], the element the placement names.
		c.onOff = []int{-1, 0, 0, 1}[r.Intn(4)]
	} else {
		c.perm = make([]int, c.n)
		for i := range c.perm {
			c.perm[i] = r.Intn(c.n) + 1
		}
		// The enumerated executor only applies to inspector loops.
		c.enumerate = r.Intn(2) == 0
	}
	return c
}

// equivExec selects one executor variant for a case: the schedule path
// (compile-time unless forced/enumerated) and the execution discipline
// (split-phase overlap by default, phase-synchronous with noOverlap).
type equivExec struct {
	force     bool
	enumerate bool
	noOverlap bool
}

// runEquivCase executes the case's program on the given machine with
// the given executor variant and returns the final gathered contents
// of the output array, the machine-wide message totals, and the
// machine's elapsed clock (virtual seconds on sim).
func runEquivCase(c equivCase, m *machine.Machine, ex equivExec) ([]float64, machine.Stats, float64) {
	g := topology.MustGrid(m.P())
	d := dist.Must([]int{c.n}, []dist.DimSpec{c.spec}, g)
	result := make([]float64, c.n+1)
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		a := darray.New("A", d, nd)
		b := darray.New("B", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*1.5) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		eng := NewEngine(nd)
		eng.ForceInspector = ex.force
		eng.NoOverlap = ex.noOverlap

		var loop *Loop
		if c.affine {
			// Bounds keep both the read subscript i+offset and the
			// placement/write subscript i+onOff inside [1, n].
			lo, hi := 1, c.n
			if c.offset > 0 {
				hi = c.n - c.offset
			} else {
				lo = 1 - c.offset
			}
			if c.onOff > 0 && c.n-c.onOff < hi {
				hi = c.n - c.onOff
			}
			if c.onOff < 0 && 1-c.onOff > lo {
				lo = 1 - c.onOff
			}
			loop = &Loop{
				Name: "equiv", Lo: lo, Hi: hi,
				On: b, OnF: analysis.Affine{A: 1, C: c.onOff},
				Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: c.offset}}},
				Body: func(i int, e *Env) {
					e.Write(b, i+c.onOff, e.Read(a, i+c.offset)+float64(i))
				},
			}
		} else {
			// perm shares the loop's distribution: iteration i runs on
			// b[i]'s owner, which then reads perm[i] locally.
			ip := darray.NewInt("perm", d, nd)
			ip.EachLocal(func(gl int) { ip.Set1(gl, c.perm[gl-1]) })
			loop = &Loop{
				Name: "equiv", Lo: 1, Hi: c.n,
				On: b, OnF: analysis.Identity,
				Reads:     []ReadSpec{{Array: a}}, // indirect
				DependsOn: []Dep{ip},
				Enumerate: ex.enumerate,
				Body: func(i int, e *Env) {
					j := e.ReadInt(ip, i)
					e.Write(b, i, e.Read(a, j)+float64(i))
				},
			}
		}
		for s := 0; s < c.sweeps; s++ {
			eng.Run(loop)
		}
		mu.Lock()
		b.EachLocal(func(gl int) { result[gl] = b.Get1(gl) })
		mu.Unlock()
	})
	return result, m.TotalStats(), m.MaxClock()
}

func TestBackendEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 40; trial++ {
		c := drawCase(r)
		simM := sim.MustNew(c.p, machine.Ideal())
		wallM := wallclock.MustNew(c.p, machine.Ideal())

		ex := equivExec{force: c.force, enumerate: c.enumerate}
		simVals, simStats, _ := runEquivCase(c, simM, ex)
		wallVals, wallStats, _ := runEquivCase(c, wallM, ex)

		for i := range simVals {
			if simVals[i] != wallVals[i] {
				t.Fatalf("trial %d (%+v): element %d differs: sim %v, wall %v",
					trial, c, i, simVals[i], wallVals[i])
			}
		}
		if simStats.MsgsSent != wallStats.MsgsSent || simStats.BytesSent != wallStats.BytesSent {
			t.Fatalf("trial %d (%+v): traffic differs: sim %d msgs/%d bytes, wall %d msgs/%d bytes",
				trial, c, simStats.MsgsSent, simStats.BytesSent, wallStats.MsgsSent, wallStats.BytesSent)
		}
		if simStats.MsgsReceived != wallStats.MsgsReceived {
			t.Fatalf("trial %d: receives differ: sim %d, wall %d",
				trial, simStats.MsgsReceived, wallStats.MsgsReceived)
		}
	}
}

// TestOverlapExecutorBackendMatrix is the full equivalence matrix:
// {overlap, phase-sync} × {sim, wall} × {compile-time, inspector,
// enumerate} over random distributions, reads and on-clauses.  All
// four backend/overlap combinations of one executor kind must produce
// bit-identical array contents and identical machine-wide Stats
// (overlap moves traffic off the critical path; it never changes the
// traffic), and the simulated clock with overlap may only shrink
// relative to phase-sync, never grow.
func TestOverlapExecutorBackendMatrix(t *testing.T) {
	type kind struct {
		name      string
		force     bool
		enumerate bool
	}
	r := rand.New(rand.NewSource(8816))
	for trial := 0; trial < 15; trial++ {
		c := drawCase(r)
		var kinds []kind
		if c.affine {
			kinds = []kind{{"compile-time", false, false}, {"inspector", true, false}}
		} else {
			kinds = []kind{{"inspector", false, false}, {"enumerate", false, true}}
		}
		for _, k := range kinds {
			var refVals []float64
			var refStats machine.Stats
			var simClock [2]float64 // indexed by noOverlap
			first := true
			for _, backend := range []string{"sim", "wall"} {
				for _, noOv := range []bool{false, true} {
					var m *machine.Machine
					if backend == "sim" {
						m = sim.MustNew(c.p, machine.Ideal())
					} else {
						m = wallclock.MustNew(c.p, machine.Ideal())
					}
					ex := equivExec{force: k.force, enumerate: k.enumerate, noOverlap: noOv}
					vals, stats, clock := runEquivCase(c, m, ex)
					if backend == "sim" {
						if noOv {
							simClock[1] = clock
						} else {
							simClock[0] = clock
						}
					}
					if first {
						refVals, refStats, first = vals, stats, false
						continue
					}
					for i := range vals {
						if vals[i] != refVals[i] {
							t.Fatalf("trial %d %s %s overlap=%v (%+v): element %d differs: %v vs %v",
								trial, k.name, backend, !noOv, c, i, vals[i], refVals[i])
						}
					}
					if stats != refStats {
						t.Fatalf("trial %d %s %s overlap=%v (%+v): stats differ: %+v vs %+v",
							trial, k.name, backend, !noOv, c, stats, refStats)
					}
				}
			}
			if simClock[0] > simClock[1] {
				t.Fatalf("trial %d %s (%+v): overlap grew the simulated clock: %.9g > %.9g",
					trial, k.name, c, simClock[0], simClock[1])
			}
		}
	}
}

// TestOverlapEquivalenceRedistribution runs a redistribute ping-pong
// with foralls between the remaps through the same matrix: overlap ×
// backend must leave values and Stats identical (redistribution itself
// stays on blocking sends), and overlap may only shrink sim clocks.
func TestOverlapEquivalenceRedistribution(t *testing.T) {
	const n, p = 48, 4
	run := func(m *machine.Machine, noOverlap bool) ([]float64, machine.Stats, float64) {
		g := topology.MustGrid(p)
		db := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		dc := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
		result := make([]float64, 2*n)
		var mu sync.Mutex
		m.Run(func(nd *machine.Node) {
			a := darray.New("A", db, nd)
			b := darray.New("B", db, nd)
			a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*1.25) })
			b.EachLocal(func(gl int) { b.Set1(gl, 0) })
			eng := NewEngine(nd)
			eng.NoOverlap = noOverlap
			fwd := &Loop{
				Name: "rd.fwd", Lo: 1, Hi: n - 1,
				On: b, OnF: analysis.Identity,
				Reads: []ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
				Body: func(i int, e *Env) {
					e.Write(b, i, e.Read(a, i+1)+float64(i))
				},
			}
			bwd := &Loop{
				Name: "rd.bwd", Lo: 2, Hi: n,
				On: a, OnF: analysis.Identity,
				Reads: []ReadSpec{{Array: b, Affine: &analysis.Affine{A: 1, C: -1}}},
				Body: func(i int, e *Env) {
					e.Write(a, i, e.Read(b, i-1)*0.5)
				},
			}
			for round := 0; round < 3; round++ {
				eng.Run(fwd)
				darray.Redistribute(a, dc)
				darray.Redistribute(b, dc)
				eng.Run(bwd)
				darray.Redistribute(a, db)
				darray.Redistribute(b, db)
			}
			mu.Lock()
			a.EachLocal(func(gl int) { result[gl-1] = a.Get1(gl) })
			b.EachLocal(func(gl int) { result[n+gl-1] = b.Get1(gl) })
			mu.Unlock()
		})
		return result, m.TotalStats(), m.MaxClock()
	}

	refVals, refStats, _ := run(sim.MustNew(p, machine.Ideal()), false)
	_, _, simSync := run(sim.MustNew(p, machine.Ideal()), true)
	simOverlap := 0.0
	for _, backend := range []string{"sim", "wall"} {
		for _, noOv := range []bool{false, true} {
			var m *machine.Machine
			if backend == "sim" {
				m = sim.MustNew(p, machine.Ideal())
			} else {
				m = wallclock.MustNew(p, machine.Ideal())
			}
			vals, stats, clock := run(m, noOv)
			if backend == "sim" && !noOv {
				simOverlap = clock
			}
			for i := range vals {
				if vals[i] != refVals[i] {
					t.Fatalf("%s overlap=%v: element %d differs: %v vs %v",
						backend, !noOv, i, vals[i], refVals[i])
				}
			}
			if stats != refStats {
				t.Fatalf("%s overlap=%v: stats differ: %+v vs %+v", backend, !noOv, stats, refStats)
			}
		}
	}
	if simOverlap > simSync {
		t.Fatalf("overlap grew the simulated clock: %.9g > %.9g", simOverlap, simSync)
	}
}

// TestBackendEquivalenceRedistribution: the redistribution pipeline
// (plans, pooled payloads, header swaps) must also be
// backend-invariant.
func TestBackendEquivalenceRedistribution(t *testing.T) {
	const n, p = 48, 4
	run := func(m *machine.Machine) ([]float64, machine.Stats) {
		g := topology.MustGrid(p)
		d0 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		d1 := dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
		result := make([]float64, n+1)
		var mu sync.Mutex
		m.Run(func(nd *machine.Node) {
			a := darray.New("A", d0, nd)
			a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)*2.25) })
			for round := 0; round < 3; round++ {
				darray.Redistribute(a, d1)
				darray.Redistribute(a, d0)
			}
			mu.Lock()
			a.EachLocal(func(gl int) { result[gl] = a.Get1(gl) })
			mu.Unlock()
		})
		return result, m.TotalStats()
	}
	simVals, simStats := run(sim.MustNew(p, machine.Ideal()))
	wallVals, wallStats := run(wallclock.MustNew(p, machine.Ideal()))
	for i := range simVals {
		if simVals[i] != wallVals[i] {
			t.Fatalf("element %d differs: sim %v, wall %v", i, simVals[i], wallVals[i])
		}
	}
	if simStats != wallStats {
		t.Fatalf("stats differ: sim %+v, wall %+v", simStats, wallStats)
	}
}

// TestBackendEquivalenceAllReduce: reductions combine in node-id
// order on both backends, so even float results are bit-identical.
func TestBackendEquivalenceAllReduce(t *testing.T) {
	const p = 4
	run := func(m *machine.Machine) []float64 {
		got := make([]float64, p)
		m.Run(func(nd *machine.Node) {
			x := 0.1 * float64(nd.ID()+1) // sums of 0.1s are order-sensitive
			got[nd.ID()] = nd.AllReduce(x, "sum")
		})
		return got
	}
	simVals := run(sim.MustNew(p, machine.Ideal()))
	wallVals := run(wallclock.MustNew(p, machine.Ideal()))
	for i := range simVals {
		if simVals[i] != wallVals[i] {
			t.Fatalf("node %d: sim %v, wall %v", i, simVals[i], wallVals[i])
		}
	}
}
