package forall

import (
	"fmt"
	"sort"

	"kali/internal/analysis"
	"kali/internal/comm"
	"kali/internal/crystal"
	"kali/internal/index"
	"kali/internal/machine"
)

// buildCompileTime derives the schedule from closed-form set algebra
// (paper §3.1/[3], lifted per dimension for rank-2 loops): no
// inspector pass, no global exchange.  Both ends of every transfer
// compute the same sets independently, so the send and receive
// schedules agree by construction.
func (e *Engine) buildCompileTime(c *loopCore) *Schedule {
	if c.rank == 1 {
		return e.buildCompileTime1(c)
	}
	return e.buildCompileTime2(c)
}

// buildCompileTime1 is the rank-1 closed-form path.
func (e *Engine) buildCompileTime1(c *loopCore) *Schedule {
	me := e.node.ID()
	onPat := c.on.Dist().Pattern(0)

	reads := make([]analysis.Read, len(c.reads))
	for i, r := range c.reads {
		reads[i] = analysis.Read{Pat: r.Array.Dist().Pattern(0), G: *r.Affine}
	}
	sets := analysis.Compute(onPat, c.onF, c.bounds[0], c.bounds[1], reads, me)
	// Symbolic evaluation: a handful of closed-form evaluations.
	e.node.Charge(machine.Cost{Calls: 2 + len(c.reads)})

	s := &Schedule{kind: BuildCompileTime}
	sets.ExecLocal.Each(func(i int) { s.execLocal = append(s.execLocal, iteration{i: i}) })
	sets.ExecNonlocal.Each(func(i int) { s.execNonlocal = append(s.execNonlocal, iteration{i: i}) })
	e.assembleArrays(c, s, sets.In, sets.Out)
	return s
}

// buildCompileTime2 is the rank-2 closed-form path: the exec and
// execLocal rectangles and the per-peer element rectangles all come
// from the per-dimension interval algebra; only the iteration lists
// are enumerated (in loop order, matching the inspector).
func (e *Engine) buildCompileTime2(c *loopCore) *Schedule {
	me := e.node.ID()
	d := c.on.Dist()
	onI, onJ := d.Pattern(0), d.Pattern(1)

	reads := make([]analysis.Read2, len(c.reads))
	for i, r := range c.reads {
		rd := r.Array.Dist()
		reads[i] = analysis.Read2{
			PatI: rd.Pattern(0), PatJ: rd.Pattern(1),
			G:     *r.Affine2,
			Width: r.Array.Shape()[1],
		}
	}
	sets := analysis.Compute2(onI, onJ, c.onF2,
		c.bounds[0], c.bounds[1], c.bounds[2], c.bounds[3], reads, me)
	e.node.Charge(machine.Cost{Calls: 2 + len(c.reads)})

	s := &Schedule{kind: BuildCompileTime}
	// Enumerate the exec rectangle row-major; iterations outside the
	// execLocal rectangle are nonlocal (some read leaves this node).
	sets.ExecRows.Each(func(i int) {
		rowLocal := sets.LocalRows.Contains(i)
		sets.ExecCols.Each(func(j int) {
			if rowLocal && sets.LocalCols.Contains(j) {
				s.execLocal = append(s.execLocal, iteration{i: i, j: j})
			} else {
				s.execNonlocal = append(s.execNonlocal, iteration{i: i, j: j})
			}
		})
	})
	e.assembleArrays(c, s, sets.In, sets.Out)
	return s
}

// assembleArrays unions the per-read in/out element sets of each
// distinct array and lowers them onto comm records, one structural
// slot per distinct array (the executor re-binds arrays to slots in
// the same first-appearance order).
func (e *Engine) assembleArrays(c *loopCore, s *Schedule, in, out []map[int]index.Set) {
	me := e.node.ID()
	for _, arr := range distinctArrays(c) {
		inByQ := map[int]index.Set{}
		outByQ := map[int]index.Set{}
		for k, r := range c.reads {
			if r.Array != arr {
				continue
			}
			for q, set := range in[k] {
				inByQ[q] = inByQ[q].Union(set)
			}
			for q, set := range out[k] {
				outByQ[q] = outByQ[q].Union(set)
			}
		}
		as := &arraySched{in: inSetFromSets(me, inByQ), out: outSetFromSets(me, outByQ)}
		as.buf = make([]float64, as.in.Total)
		s.arrays = append(s.arrays, as)
	}
}

// inSetFromSets builds a receive schedule from per-sender index sets.
func inSetFromSets(me int, byQ map[int]index.Set) *comm.InSet {
	qs := sortedKeys(byQ)
	in := &comm.InSet{}
	off := 0
	for _, q := range qs {
		for _, iv := range byQ[q].Intervals() {
			r := comm.Range{FromProc: q, ToProc: me, Low: iv.Lo, High: iv.Hi, Buf: off}
			off += r.Len()
			in.Ranges = append(in.Ranges, r)
		}
	}
	in.Total = off
	return in
}

// outSetFromSets builds a send schedule from per-receiver index sets.
func outSetFromSets(me int, byQ map[int]index.Set) *comm.OutSet {
	var recs []comm.Range
	for q, set := range byQ {
		for _, iv := range set.Intervals() {
			recs = append(recs, comm.Range{FromProc: me, ToProc: q, Low: iv.Lo, High: iv.Hi})
		}
	}
	return comm.BuildOut(me, recs)
}

func sortedKeys(m map[int]index.Set) []int {
	out := make([]int, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// finalizePeers precomputes every communication partner and message
// size once at build time — per slot (outPeers/inPeers, for the
// NoCombine ablation) and combined across slots (sendTo/recvFrom, for
// the default coalesced one-message-per-processor-pair path) — so the
// replay hot path never walks maps or allocates peer lists.
func finalizePeers(s *Schedule) {
	sendAll := map[int]int{}
	recvAll := map[int]int{}
	for _, as := range s.arrays {
		for _, q := range as.out.Receivers() {
			n := as.out.CountTo(q)
			as.outPeers = append(as.outPeers, peerCount{q, n})
			sendAll[q] += n
		}
		for _, q := range as.in.Senders() {
			n := as.in.CountFrom(q)
			as.inPeers = append(as.inPeers, peerCount{q, n})
			recvAll[q] += n
		}
	}
	s.sendTo = peersOf(sendAll)
	s.recvFrom = peersOf(recvAll)

	// Preallocate the split-phase drain's pending-receive slots (both
	// message layouts — which one runs is an executor-time choice), so
	// overlap replay allocates nothing.
	s.recvReqs = make([]machine.Request, len(s.recvFrom))
	s.recvDone = make([]bool, len(s.recvFrom))
	for i, pc := range s.recvFrom {
		s.recvReqs[i] = machine.Request{From: pc.q, Tag: machine.TagData}
	}
	for k, as := range s.arrays {
		for _, pc := range as.inPeers {
			s.ncRecv = append(s.ncRecv, slotPeer{slot: k, pc: pc})
			s.ncReqs = append(s.ncReqs, machine.Request{From: pc.q, Tag: tagFor(k)})
		}
	}
	s.ncDone = make([]bool, len(s.ncReqs))
}

func peersOf(byQ map[int]int) []peerCount {
	out := make([]peerCount, 0, len(byQ))
	for q, n := range byQ {
		out = append(out, peerCount{q, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].q < out[j].q })
	return out
}

// routedRecs is the crystal-router payload: the in-records of array
// slot k whose home is the destination node.
type routedRecs struct {
	slot int
	recs []comm.Range
}

// inspectIters enumerates this node's iterations in loop order for the
// recording pass, charging the placement cost (closed-form for on
// clauses, a per-iteration scan for OnProc).
func (e *Engine) inspectIters(c *loopCore) []iteration {
	if c.rank == 1 {
		is := e.execSet(c)
		out := make([]iteration, len(is))
		for k, i := range is {
			out[k] = iteration{i: i}
		}
		return out
	}
	// Rank 2: the exec rectangle is the cross product of the
	// per-dimension on-clause preimages of the local sets, clipped to
	// the loop bounds (block/cyclic distributions are separable by
	// construction; the affine on-clause preimage of an interval is
	// still an interval).
	me := e.node.ID()
	d := c.on.Dist()
	rows, cols := analysis.Exec2(d.Pattern(0), d.Pattern(1), c.onF2,
		c.bounds[0], c.bounds[1], c.bounds[2], c.bounds[3], me)
	e.node.Charge(machine.Cost{Calls: 1})
	out := make([]iteration, 0, rows.Len()*cols.Len())
	rows.Each(func(i int) {
		cols.Each(func(j int) {
			out = append(out, iteration{i: i, j: j})
		})
	})
	return out
}

// buildInspector performs the paper's run-time analysis (Figure 6) for
// loops of either rank: a recording pass over the loop body classifies
// every iteration and collects the in sets; a Crystal-router exchange
// then delivers each record to its home processor, whose received
// records form its out set.
func (e *Engine) buildInspector(c *loopCore) *Schedule {
	me := e.node.ID()
	exec := e.inspectIters(c)
	arrays := distinctArrays(c)

	s := &Schedule{kind: BuildInspector}
	builders := make([]*comm.Builder, len(arrays))
	for i := range builders {
		builders[i] = comm.NewBuilder(me)
	}

	// Recording pass: run the body with an inspecting Env.
	env := &Env{
		mode:     modeInspect,
		eng:      e,
		node:     e.node,
		core:     c,
		arrays:   arrays,
		builders: builders,
	}
	for _, it := range exec {
		e.node.Charge(machine.Cost{LoopIters: 1})
		env.iterNonlocal = false
		if c.enumerate {
			env.enumRecord = env.enumRecord[:0]
		}
		c.run(it, env)
		if env.iterNonlocal {
			s.execNonlocal = append(s.execNonlocal, it)
			if c.enumerate {
				// Saltz-style: keep the full per-reference list for this
				// iteration; list construction costs one insert per
				// reference ("relatively high" preprocessing, §5).
				refs := make([]enumRef, len(env.enumRecord))
				copy(refs, env.enumRecord)
				s.enum = append(s.enum, refs)
				e.node.Charge(machine.Cost{ListInserts: len(refs)})
			}
		} else {
			s.execLocal = append(s.execLocal, it)
		}
	}

	// Finalize in sets and ship each record to its home processor.
	var parcels []crystal.Parcel
	for k, b := range builders {
		in := b.Finalize()
		as := &arraySched{in: in}
		as.buf = make([]float64, in.Total)
		s.arrays = append(s.arrays, as)
		for _, q := range in.Senders() {
			rf := in.RangesFrom(q)
			recs := make([]comm.Range, len(rf))
			copy(recs, rf)
			parcels = append(parcels, crystal.Parcel{
				Dest:  q,
				Data:  routedRecs{slot: k, recs: recs},
				Bytes: recBytes * len(recs),
			})
		}
	}

	received := e.exchange(parcels)

	// Assemble out sets from the records that arrived for each slot.
	bySlot := make([][]comm.Range, len(arrays))
	for _, pc := range received {
		rr := pc.Data.(routedRecs)
		if rr.slot < 0 || rr.slot >= len(arrays) {
			panic(fmt.Sprintf("forall %s: routed records for unknown slot %d", c.name, rr.slot))
		}
		// Records arrive as the *receiver's* in-records: FromProc is us.
		bySlot[rr.slot] = append(bySlot[rr.slot], rr.recs...)
	}
	for k, as := range s.arrays {
		as.out = comm.BuildOut(me, bySlot[k])
	}

	// Enumerated schedules resolve buffer slots now that the in sets
	// are final.
	if c.enumerate {
		for _, refs := range s.enum {
			for r := range refs {
				ref := &refs[r]
				if ref.Buf != -1 {
					as := s.arrays[ref.Slot]
					buf, ok := as.in.Find(ref.Buf, ref.G) // Buf held the owner during recording
					if !ok {
						panic(fmt.Sprintf("forall %s: enumerated element %d missing from schedule", c.name, ref.G))
					}
					ref.Buf = buf
				}
			}
		}
	}
	return s
}

// exchange routes parcels to their destinations: via the Crystal
// router on power-of-two machines (the paper's method), or by a direct
// all-to-all on other sizes.  Every node must call exchange exactly
// once per schedule build.
func (e *Engine) exchange(parcels []crystal.Parcel) []crystal.Parcel {
	p := e.node.P()
	if p == 1 {
		return parcels
	}
	if p&(p-1) == 0 {
		return crystal.RouteSorted(e.node, parcels, func(a, b crystal.Parcel) bool {
			ra, rb := a.Data.(routedRecs), b.Data.(routedRecs)
			if ra.slot != rb.slot {
				return ra.slot < rb.slot
			}
			if len(ra.recs) == 0 || len(rb.recs) == 0 {
				return len(ra.recs) < len(rb.recs)
			}
			if ra.recs[0].ToProc != rb.recs[0].ToProc {
				return ra.recs[0].ToProc < rb.recs[0].ToProc
			}
			return ra.recs[0].Low < rb.recs[0].Low
		})
	}
	// Direct all-to-all fallback: one (possibly empty) message to every
	// peer, so receive counts are static.
	me := e.node.ID()
	byDest := make([][]crystal.Parcel, p)
	for _, pc := range parcels {
		if pc.Dest == me {
			byDest[me] = append(byDest[me], pc)
			continue
		}
		byDest[pc.Dest] = append(byDest[pc.Dest], pc)
	}
	var out []crystal.Parcel
	out = append(out, byDest[me]...)
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		bytes := 8
		for _, pc := range byDest[q] {
			bytes += pc.Bytes
		}
		e.node.Send(q, machine.TagCrystal, byDest[q], bytes)
	}
	for q := 0; q < p; q++ {
		if q == me {
			continue
		}
		msg := e.node.Recv(q, machine.TagCrystal)
		if got, ok := msg.Payload.([]crystal.Parcel); ok {
			out = append(out, got...)
		}
	}
	return out
}

// payloadPool recycles executor message buffers.  It must be shared by
// every engine (a buffer is acquired by the sender and released by the
// receiver after unpacking), so it is package-global; being a plain
// free list rather than a sync.Pool, it never drops buffers, and a
// warmed communication pattern replays without allocating.
var payloadPool comm.BufPool

// execute runs the split-phase form of the paper's Figure 3 pipeline
// with a prepared schedule, for loops of either rank: post sends →
// compute interior (execLocal) → drain receives → compute boundary
// (execNonlocal).  By default sends are nonblocking and the drain
// completes peers as their messages arrive, so communication overlaps
// the interior compute; with Engine.NoOverlap the same traffic moves
// through blocking sends and a fixed-order drain — the paper's
// phase-synchronous executor, kept as the differential oracle.  The
// schedule is structural; the loop's own arrays are bound to its slots
// here, in the same first-appearance order assembleArrays used, so a
// shared schedule executes correctly against whichever loop adopted
// it.  On the cached-replay path this function allocates nothing: the
// Env, write log, peer lists, pending-receive slots, receive buffers
// and message payloads are all reused.
func (e *Engine) execute(c *loopCore, s *Schedule, env *Env) {
	env.reset(e, c, s, modeExecLocal)
	bindArrays(env, c)

	e.postSends(s, env)

	// Do local iterations (the interior — posted sends are in flight).
	for _, it := range s.execLocal {
		e.node.Charge(machine.Cost{LoopIters: 1})
		c.run(it, env)
	}

	e.drainRecvs(c, s)

	// Do nonlocal iterations.
	env.mode = modeExecNonlocal
	for k, it := range s.execNonlocal {
		e.node.Charge(machine.Cost{LoopIters: 1})
		if c.enumerate {
			env.enumList = s.enum[k]
			env.enumPos = 0
		}
		c.run(it, env)
	}

	// Commit buffered writes: copy-in/copy-out semantics.  Write2
	// records coordinates so rank-2 commits skip the linear-index
	// decomposition.
	for _, w := range env.writes {
		if w.i != 0 {
			w.a.Set2(w.i, w.j, w.v)
		} else {
			w.a.SetLinear(w.g, w.v)
		}
	}
	env.writes = env.writes[:0]
}

// bindArrays binds the loop's distinct read arrays to the schedule's
// slots (appendDistinct order, the same the build used), reusing
// env.arrays' backing storage.
func bindArrays(env *Env, c *loopCore) {
	env.arrays = appendDistinct(env.arrays[:0], c.reads)
}

// postSends ships this node's out sets: per-Range bulk copies from
// local storage into a pooled payload.  The per-byte message charge
// (paid at both ends by Send/Recv) covers the pack/unpack copies.  By
// default all arrays' data for one destination travel in a single
// combined message (the paper's message-combining), posted with ISend
// so the wire time overlaps the interior compute; NoOverlap uses
// blocking Send, NoCombine one message per (array, destination).
func (e *Engine) postSends(s *Schedule, env *Env) {
	if e.NoCombine {
		for k, as := range s.arrays {
			arr := env.arrays[k]
			for _, pc := range as.outPeers {
				pb := payloadPool.Get(pc.n)
				off := 0
				for _, r := range as.out.RangesTo(pc.q) {
					arr.CopyLinearRange(r.Low, r.High, pb.Vals[off:off+r.Len()])
					off += r.Len()
				}
				if e.NoOverlap {
					e.node.Send(pc.q, tagFor(k), pb, 8*off)
				} else {
					e.node.ISend(pc.q, tagFor(k), pb, 8*off)
				}
			}
		}
		return
	}
	for _, pc := range s.sendTo {
		pb := payloadPool.Get(pc.n)
		off := 0
		for k, as := range s.arrays {
			arr := env.arrays[k]
			for _, r := range as.out.RangesTo(pc.q) {
				arr.CopyLinearRange(r.Low, r.High, pb.Vals[off:off+r.Len()])
				off += r.Len()
			}
		}
		if e.NoOverlap {
			e.node.Send(pc.q, machine.TagData, pb, 8*off)
		} else {
			e.node.ISend(pc.q, machine.TagData, pb, 8*off)
		}
	}
}

// drainRecvs completes this node's in sets before the boundary pass;
// each record lands in the slot's receive buffer with one bulk copy,
// and the payload goes back to the pool.  The overlap drain waits on
// all pending peers at once (schedule-preallocated request slots) and
// unpacks whichever message is available — senders write disjoint
// buffer regions, so completion order cannot change results; NoOverlap
// drains in fixed ascending-peer order, blocking per peer.
func (e *Engine) drainRecvs(c *loopCore, s *Schedule) {
	switch {
	case e.NoCombine && e.NoOverlap:
		for k, as := range s.arrays {
			for _, pc := range as.inPeers {
				msg := e.node.Recv(pc.q, tagFor(k))
				pb := msg.Payload.(*comm.Payload)
				as.in.Unpack(pc.q, pb.Vals, as.buf)
				payloadPool.Put(pb)
			}
		}
	case e.NoCombine:
		for i := range s.ncDone {
			s.ncDone[i] = false
		}
		for range s.ncRecv {
			i, msg := e.node.WaitAny(s.ncReqs, s.ncDone)
			s.ncDone[i] = true
			sp := s.ncRecv[i]
			as := s.arrays[sp.slot]
			pb := msg.Payload.(*comm.Payload)
			as.in.Unpack(sp.pc.q, pb.Vals, as.buf)
			payloadPool.Put(pb)
		}
	case e.NoOverlap:
		for _, pc := range s.recvFrom {
			msg := e.node.Recv(pc.q, machine.TagData)
			e.unpackCombined(c, s, pc.q, msg)
		}
	default:
		for i := range s.recvDone {
			s.recvDone[i] = false
		}
		for range s.recvFrom {
			i, msg := e.node.WaitAny(s.recvReqs, s.recvDone)
			s.recvDone[i] = true
			e.unpackCombined(c, s, s.recvFrom[i].q, msg)
		}
	}
}

// unpackCombined scatters one combined message from peer q into every
// slot's receive buffer.
func (e *Engine) unpackCombined(c *loopCore, s *Schedule, q int, msg machine.Message) {
	pb := msg.Payload.(*comm.Payload)
	off := 0
	for _, as := range s.arrays {
		n := as.in.CountFrom(q)
		if n == 0 {
			continue
		}
		as.in.Unpack(q, pb.Vals[off:off+n], as.buf)
		off += n
	}
	if off != len(pb.Vals) {
		panic(fmt.Sprintf("forall %s: combined message from %d has %d values, schedules expect %d",
			c.name, q, len(pb.Vals), off))
	}
	payloadPool.Put(pb)
}
