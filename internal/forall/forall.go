// Package forall implements Kali's forall loops on the simulated
// distributed-memory machine: the paper's central contribution.
//
// A Loop describes one forall statement: its iteration range, its on
// clause (owner-computes placement), the distributed-array references
// its body makes, and the body itself.  The Engine executes loops in
// the paper's pipeline:
//
//  1. Determine exec(p), the iterations this node runs.
//  2. Obtain a communication Schedule: from the cache if the loop has
//     run before and its pattern-driving arrays are unchanged
//     (paper §3.2, "saving them for later loop executions"); else by
//     compile-time analysis when every subscript is affine (paper
//     §3.1/[3]); else by the run-time inspector — a recording pass over
//     the body followed by a Crystal-router exchange that turns each
//     node's in sets into the senders' out sets (paper §3.3, Fig. 6).
//  3. Run the executor: send all messages, run the local iterations,
//     receive all messages, run the nonlocal iterations (Fig. 3),
//     then commit buffered writes (copy-in/copy-out semantics).
package forall

import (
	"fmt"

	"kali/internal/analysis"
	"kali/internal/comm"
	"kali/internal/darray"
	"kali/internal/machine"
)

// Phase names used for the timing breakdown the paper reports.
const (
	PhaseInspector = "inspector"
	PhaseExecutor  = "executor"
)

// ReadSpec declares one distributed-array reference the body may make
// through Env.Read.  When Affine is non-nil the subscript is the
// static form a*i+c and the reference is a candidate for compile-time
// analysis; a nil Affine marks a data-dependent (indirect) reference
// that forces the run-time inspector.
type ReadSpec struct {
	Array  *darray.Array
	Affine *analysis.Affine
}

// Dep names an array whose *contents* determine the loop's reference
// pattern (the adj array in the paper's Figure 4).  A cached schedule
// is invalidated when any dependency's version changes.
type Dep interface {
	Name() string
	Version() int
}

// Loop is one forall statement.
type Loop struct {
	// Name identifies the loop for schedule caching; loops at
	// different source locations must use different names.
	Name string
	// Lo, Hi is the iteration range (inclusive, 1-based).
	Lo, Hi int
	// On is the owner-computes placement array: iteration i runs on
	// the owner of On[OnF(i)].  On must be 1-D and distributed over a
	// 1-D processor grid.
	On *darray.Array
	// OnF is the on-clause subscript f; use analysis.Identity for
	// "on A[i].loc".
	OnF analysis.Affine
	// OnProc, when non-nil, overrides On/OnF and places iteration i on
	// processor OnProc(i) directly ("it is also possible to name the
	// processor directly by indexing into the processor array").
	OnProc func(i int) int
	// Reads declares every Env.Read the body performs.
	Reads []ReadSpec
	// DependsOn lists pattern-driving arrays for cache invalidation.
	DependsOn []Dep
	// Body is the loop body, executed once per iteration.
	Body func(i int, e *Env)
	// Phase overrides the timing phase the execution is attributed to
	// (default PhaseExecutor).  The paper's measurements time only the
	// computational-core forall; auxiliary loops (the old_a := a copy)
	// use a separate phase so the reported executor column matches.
	Phase string
	// Enumerate selects the Saltz-style executor the paper contrasts
	// with in §5: the inspector explicitly enumerates *every* reference
	// of every nonlocal iteration into a resolved list, which
	// "eliminates the overhead of checking and searching for nonlocal
	// references during the loop execution but requires more storage".
	// It forces the run-time inspector.
	Enumerate bool
}

// allAffine reports whether compile-time analysis applies.
func (l *Loop) allAffine() bool {
	if l.OnProc != nil || l.Enumerate {
		return false
	}
	for _, r := range l.Reads {
		if r.Affine == nil || r.Array.Rank() != 1 {
			return false
		}
	}
	return true
}

// BuildKind says how a schedule was obtained, for tests and reports.
type BuildKind int

// Schedule provenance values.
const (
	BuildCached BuildKind = iota
	BuildCompileTime
	BuildInspector
)

func (k BuildKind) String() string {
	switch k {
	case BuildCached:
		return "cached"
	case BuildCompileTime:
		return "compile-time"
	case BuildInspector:
		return "inspector"
	default:
		return fmt.Sprintf("BuildKind(%d)", int(k))
	}
}

// arraySched is the communication schedule for one distributed array.
type arraySched struct {
	arr *darray.Array
	in  *comm.InSet
	out *comm.OutSet
	buf []float64
}

// enumRef is one resolved reference of a Saltz-style enumerated
// schedule: the value lives either in the communication buffer of
// array slot (Buf >= 0) or locally at global index G (Buf == -1).
type enumRef struct {
	Slot int
	G    int
	Buf  int
}

// Schedule is the cached result of inspecting/analyzing one loop on
// one node.
type Schedule struct {
	execLocal    []int
	execNonlocal []int
	arrays       []*arraySched
	kind         BuildKind
	lo, hi       int
	depVersions  []int
	// enum[k] lists every resolved reference of nonlocal iteration
	// execNonlocal[k], in body order (Loop.Enumerate only).
	enum [][]enumRef
}

// LocalIters returns the number of iterations with only local
// references (paper's local_list).
func (s *Schedule) LocalIters() int { return len(s.execLocal) }

// NonlocalIters returns the number of iterations needing communicated
// data (paper's nonlocal_list).
func (s *Schedule) NonlocalIters() int { return len(s.execNonlocal) }

// Kind reports how the schedule was built.
func (s *Schedule) Kind() BuildKind { return s.kind }

// RecvCount returns the total number of elements this node receives
// per execution.
func (s *Schedule) RecvCount() int {
	n := 0
	for _, as := range s.arrays {
		n += as.in.Total
	}
	return n
}

// MemBytes estimates the schedule's storage: iteration lists, range
// records (Figure 5: ~20 bytes each), buffers, and — for enumerated
// schedules — the per-reference list the paper's §5 identifies as the
// storage cost of Saltz's approach.
func (s *Schedule) MemBytes() int {
	n := 8 * (len(s.execLocal) + len(s.execNonlocal))
	for _, as := range s.arrays {
		n += recBytes * (len(as.in.Ranges) + len(as.out.Ranges))
		n += 8 * len(as.buf)
	}
	for _, refs := range s.enum {
		n += 12 * len(refs)
	}
	return n
}

// Engine executes forall loops on one node and caches their schedules.
type Engine struct {
	node   *machine.Node
	cache  map[string]*Schedule
	cache2 map[string]*pairSchedule // Loop2 schedules
	// NoCache disables schedule reuse (benchmark ABL1 measures the
	// cost of re-inspecting on every execution).
	NoCache bool
	// ForceInspector disables the compile-time path (ABL3).
	ForceInspector bool
	// NoCombine sends each array's data to a peer as a separate
	// message.  By default the executor combines all arrays' data for
	// the same destination into one message, as the paper's
	// implementation does ("sorting by processor id also allowed us to
	// combine messages between the same two processors, thus saving on
	// the number of messages").
	NoCombine bool

	lastKind BuildKind
}

// NewEngine creates the per-node forall engine.
func NewEngine(n *machine.Node) *Engine {
	return &Engine{node: n, cache: map[string]*Schedule{}}
}

// Node returns the engine's node.
func (e *Engine) Node() *machine.Node { return e.node }

// LastBuildKind reports how the most recent Run obtained its schedule.
func (e *Engine) LastBuildKind() BuildKind { return e.lastKind }

// Schedule returns the cached schedule of a loop, or nil if the loop
// has not run (or caching is disabled).
func (e *Engine) Schedule(name string) *Schedule { return e.cache[name] }

// Invalidate drops the cached schedule of one loop.
func (e *Engine) Invalidate(name string) { delete(e.cache, name) }

// InvalidateAll drops all cached schedules (1-D and 2-D).
func (e *Engine) InvalidateAll() {
	e.cache = map[string]*Schedule{}
	e.cache2 = nil
}

// Run executes one forall: schedule acquisition is timed under the
// "inspector" phase (zero-cost when cached or compile-time analyzed),
// execution under "executor".
func (e *Engine) Run(l *Loop) {
	e.validate(l)
	s := e.schedule(l)
	phase := l.Phase
	if phase == "" {
		phase = PhaseExecutor
	}
	e.node.StartPhase(phase)
	e.execute(l, s)
	e.node.StopPhase(phase)
}

// validate checks the loop specification once per Run.
func (e *Engine) validate(l *Loop) {
	if l.Name == "" {
		panic("forall: loop needs a Name for schedule caching")
	}
	if l.Body == nil {
		panic("forall: loop has no Body")
	}
	if l.OnProc == nil {
		if l.On == nil {
			panic(fmt.Sprintf("forall %s: needs On array or OnProc", l.Name))
		}
		if l.On.Replicated() {
			panic(fmt.Sprintf("forall %s: on clause over replicated array", l.Name))
		}
		if l.On.Rank() != 1 || l.On.Dist().Grid().Rank() != 1 {
			panic(fmt.Sprintf("forall %s: on clause requires a 1-D array over a 1-D processor grid", l.Name))
		}
		if l.OnF.A == 0 {
			panic(fmt.Sprintf("forall %s: OnF.A must be nonzero (use analysis.Identity)", l.Name))
		}
	}
	for _, r := range l.Reads {
		if r.Array == nil {
			panic(fmt.Sprintf("forall %s: nil read array", l.Name))
		}
	}
}

// schedule returns a valid Schedule, consulting the cache first.
func (e *Engine) schedule(l *Loop) *Schedule {
	if !e.NoCache {
		if s, ok := e.cache[l.Name]; ok && s.lo == l.Lo && s.hi == l.Hi && depsFresh(l, s) {
			e.lastKind = BuildCached
			return s
		}
	}
	e.node.StartPhase(PhaseInspector)
	var s *Schedule
	if l.allAffine() && !e.ForceInspector {
		s = e.buildCompileTime(l)
	} else {
		s = e.buildInspector(l)
	}
	e.node.StopPhase(PhaseInspector)
	s.lo, s.hi = l.Lo, l.Hi
	s.depVersions = depVersions(l)
	if !e.NoCache {
		e.cache[l.Name] = s
	}
	e.lastKind = s.kind
	return s
}

func depVersions(l *Loop) []int {
	out := make([]int, len(l.DependsOn))
	for i, d := range l.DependsOn {
		out[i] = d.Version()
	}
	return out
}

func depsFresh(l *Loop, s *Schedule) bool {
	if len(l.DependsOn) != len(s.depVersions) {
		return false
	}
	for i, d := range l.DependsOn {
		if d.Version() != s.depVersions[i] {
			return false
		}
	}
	return true
}

// distinctArrays returns the distinct arrays referenced by l.Reads, in
// first-appearance order, and a lookup from array to slot.
func distinctArrays(l *Loop) []*darray.Array {
	var out []*darray.Array
	for _, r := range l.Reads {
		found := false
		for _, a := range out {
			if a == r.Array {
				found = true
				break
			}
		}
		if !found {
			out = append(out, r.Array)
		}
	}
	return out
}

// execSet computes exec(p) for this node as a sorted slice.
func (e *Engine) execSet(l *Loop) []int {
	me := e.node.ID()
	if l.OnProc != nil {
		// Run-time placement scan: evaluate the on expression for every
		// iteration in range.
		var out []int
		for i := l.Lo; i <= l.Hi; i++ {
			e.node.Charge(machine.Cost{LoopIters: 1})
			if l.OnProc(i) == me {
				out = append(out, i)
			}
		}
		return out
	}
	pat := l.On.Dist().Pattern(0)
	set := analysis.Exec(pat, l.OnF, l.Lo, l.Hi, me)
	// Symbolic evaluation cost: one call's worth.
	e.node.Charge(machine.Cost{Calls: 1})
	return set.Slice()
}

// tagFor returns the message tag for array slot k of a loop.
func tagFor(k int) machine.Tag { return machine.TagUser + machine.Tag(k) }

// recBytes is the modeled wire size of one in/out record (Figure 5:
// two processor ids, two bounds, one pointer).
const recBytes = 20
