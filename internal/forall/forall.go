// Package forall implements Kali's forall loops on the simulated
// distributed-memory machine: the paper's central contribution.
//
// A Loop describes one forall statement: its iteration range, its on
// clause (owner-computes placement), the distributed-array references
// its body makes, and the body itself.  Loop2 is its two-dimensional
// counterpart.  Both lower onto one internal loopCore, so schedule
// acquisition, caching, invalidation and execution are a single
// pipeline parameterized by rank:
//
//  1. Determine exec(p), the iterations this node runs.
//  2. Obtain a communication Schedule: from the per-name cache if the
//     loop has run before and its pattern-driving arrays are unchanged
//     (paper §3.2, "saving them for later loop executions"); else from
//     the content-addressed store if another loop of identical
//     structure — distribution, bounds, read affines, on clause —
//     already built one (§3.2's reuse argument applied across loops);
//     else by compile-time analysis when every subscript is affine
//     (paper §3.1/[3] — per dimension for rank-2 loops); else by the
//     run-time inspector — a recording pass over the body followed by
//     a Crystal-router exchange that turns each node's in sets into
//     the senders' out sets (paper §3.3, Fig. 6).
//  3. Run the executor: send all messages, run the local iterations,
//     receive all messages, run the nonlocal iterations (Fig. 3),
//     then commit buffered writes (copy-in/copy-out semantics).
//
// The executor is vectorized: schedules store per-peer range records,
// message payloads are packed with one bulk copy per contiguous range
// (darray.CopyLinearRange), all of a loop's reads travel in one
// coalesced message per processor pair, and payload buffers, the Env,
// and the write log are pooled — replaying a cached schedule performs
// zero heap allocations.
package forall

import (
	"fmt"

	"kali/internal/analysis"
	"kali/internal/comm"
	"kali/internal/darray"
	"kali/internal/lru"
	"kali/internal/machine"
)

// Phase names used for the timing breakdown the paper reports.
const (
	PhaseInspector = "inspector"
	PhaseExecutor  = "executor"
)

// ReadSpec declares one distributed-array reference the body may make
// through Env.Read.  When Affine (rank-1 loops) or Affine2 (rank-2
// loops) is non-nil the subscript has the static affine form and the
// reference is a candidate for compile-time analysis; a nil entry
// marks a data-dependent (indirect) reference that forces the
// run-time inspector.
type ReadSpec struct {
	Array *darray.Array
	// Affine is the rank-1 subscript a*i + c.
	Affine *analysis.Affine
	// Affine2 is the rank-2 subscript pair (aI*i + cI, aJ*j + cJ); it
	// applies only to Loop2 reads of rank-2 arrays with both dimensions
	// distributed.
	Affine2 *analysis.Affine2
}

// Dep names an array whose *contents* determine the loop's reference
// pattern (the adj array in the paper's Figure 4).  A cached schedule
// is invalidated when any dependency's version changes.
type Dep interface {
	Name() string
	Version() int
}

// Loop is one rank-1 forall statement.
type Loop struct {
	// Name identifies the loop for schedule caching; loops at
	// different source locations must use different names.
	Name string
	// Lo, Hi is the iteration range (inclusive, 1-based).
	Lo, Hi int
	// On is the owner-computes placement array: iteration i runs on
	// the owner of On[OnF(i)].  On must be 1-D and distributed over a
	// 1-D processor grid.
	On *darray.Array
	// OnF is the on-clause subscript f; use analysis.Identity for
	// "on A[i].loc".
	OnF analysis.Affine
	// OnProc, when non-nil, overrides On/OnF and places iteration i on
	// processor OnProc(i) directly ("it is also possible to name the
	// processor directly by indexing into the processor array").
	OnProc func(i int) int
	// Reads declares every Env.Read the body performs.
	Reads []ReadSpec
	// DependsOn lists pattern-driving arrays for cache invalidation.
	DependsOn []Dep
	// Body is the loop body, executed once per iteration.
	Body func(i int, e *Env)
	// Phase overrides the timing phase the execution is attributed to
	// (default PhaseExecutor).  The paper's measurements time only the
	// computational-core forall; auxiliary loops (the old_a := a copy)
	// use a separate phase so the reported executor column matches.
	Phase string
	// Enumerate selects the Saltz-style executor the paper contrasts
	// with in §5: the inspector explicitly enumerates *every* reference
	// of every nonlocal iteration into a resolved list, which
	// "eliminates the overhead of checking and searching for nonlocal
	// references during the loop execution but requires more storage".
	// It forces the run-time inspector.
	Enumerate bool
}

// Loop2 is a two-dimensional forall over a rank-2 array distributed on
// a rank-2 processor grid — the paper's "multi-dimensional processor
// arrays can be declared similarly" taken at its word:
//
//	forall i in LoI..HiI, j in LoJ..HiJ on A[fI(i), fJ(j)].loc do ... end
//
// Placement is owner-computes on A[OnF2.I(i), OnF2.J(j)]: each on-
// clause subscript is an affine function of its own index variable
// (identity by default), so strided and reflected placements like
// "on A[2*i-1, j+1].loc" stay on the compile-time path.  Reads go
// through the same Env as 1-D loops — aligned accesses via ReadLocal2,
// potentially-nonlocal ones via Read/ReadAt on linearized indices.
// Reads whose per-dimension subscripts are affine (ReadSpec.Affine2)
// get compile-time schedules from the rank-2 closed forms; anything
// else falls back to the run-time inspector.
type Loop2 struct {
	Name               string
	LoI, HiI, LoJ, HiJ int
	// On must be rank-2 with both dimensions distributed over a rank-2
	// grid.
	On *darray.Array
	// OnF2 is the on-clause subscript pair (fI, fJ); the zero value
	// means analysis.Identity2 ("on A[i,j].loc").  Both coefficients
	// must be nonzero otherwise.
	OnF2      analysis.Affine2
	Reads     []ReadSpec
	DependsOn []Dep
	Body      func(i, j int, e *Env)
	Phase     string
	// Enumerate selects the Saltz-style executor for rank-2 loops, the
	// same §5 contrast Loop.Enumerate provides in 1-D: every reference
	// of every nonlocal iteration is resolved into a list (row-major
	// body order), trading schedule storage for executor-time searches.
	// It forces the run-time inspector.
	Enumerate bool
}

// iteration is one loop iteration of either rank; j is unused (zero)
// for rank-1 loops.
type iteration struct{ i, j int }

// loopCore is the rank-independent lowering of a Loop or Loop2: the
// single representation the schedule pipeline operates on.  Lowering
// fills a caller-provided value (the Engine's scratch on the top-level
// path) and dispatches the body through l1/l2 rather than a closure,
// so replaying a cached loop allocates nothing.
type loopCore struct {
	name      string
	rank      int
	bounds    [4]int // Lo, Hi, LoJ, HiJ (rank-1: trailing zeros)
	on        *darray.Array
	onF       analysis.Affine  // rank-1 on-clause subscript
	onF2      analysis.Affine2 // rank-2 on-clause subscript pair
	onProc    func(i int) int  // rank-1 direct placement (nil otherwise)
	reads     []ReadSpec
	deps      []Dep
	phase     string
	enumerate bool
	l1        *Loop  // source loop (rank 1)
	l2        *Loop2 // source loop (rank 2)
}

// run invokes the user body for one iteration.
func (c *loopCore) run(it iteration, e *Env) {
	if c.rank == 1 {
		c.l1.Body(it.i, e)
	} else {
		c.l2.Body(it.i, it.j, e)
	}
}

// lower fills c with the rank-1 loop's core form.
func (l *Loop) lower(c *loopCore) {
	*c = loopCore{
		name: l.Name, rank: 1,
		bounds: [4]int{l.Lo, l.Hi, 0, 0},
		on:     l.On, onF: l.OnF, onProc: l.OnProc,
		reads: l.Reads, deps: l.DependsOn, phase: l.Phase,
		enumerate: l.Enumerate,
		l1:        l,
	}
}

// lower fills c with the rank-2 loop's core form, normalizing the
// zero-value on clause to identity here rather than by mutating the
// caller's Loop2 (which may be shared across the per-node goroutines).
func (l *Loop2) lower(c *loopCore) {
	onF2 := l.OnF2
	if (onF2 == analysis.Affine2{}) {
		onF2 = analysis.Identity2
	}
	*c = loopCore{
		name: l.Name, rank: 2,
		bounds: [4]int{l.LoI, l.HiI, l.LoJ, l.HiJ},
		on:     l.On, onF2: onF2,
		reads: l.Reads, deps: l.DependsOn, phase: l.Phase,
		enumerate: l.Enumerate,
		l2:        l,
	}
}

// analyzable reports whether compile-time analysis applies: every
// declared read must carry the affine form matching the loop's rank
// over a fully distributed array.
func (c *loopCore) analyzable() bool {
	if c.enumerate || c.onProc != nil {
		return false
	}
	for _, r := range c.reads {
		if r.Array.Replicated() {
			return false
		}
		switch c.rank {
		case 1:
			if r.Affine == nil || r.Affine.A == 0 || r.Array.Rank() != 1 {
				return false
			}
		default:
			if r.Affine2 == nil || r.Affine2.I.A == 0 || r.Affine2.J.A == 0 || r.Array.Rank() != 2 {
				return false
			}
			d := r.Array.Dist()
			if d.Grid().Rank() != 2 || d.Pattern(0) == nil || d.Pattern(1) == nil {
				return false
			}
		}
	}
	return true
}

// BuildKind says how a schedule was obtained, for tests and reports.
type BuildKind int

// Schedule provenance values.  BuildShared means the loop did not
// build anything: an existing schedule with the same structural key
// (distributions, bounds, read affines, on clause) was adopted from
// the engine's content-addressed store.
const (
	BuildCached BuildKind = iota
	BuildCompileTime
	BuildInspector
	BuildShared
)

func (k BuildKind) String() string {
	switch k {
	case BuildCached:
		return "cached"
	case BuildCompileTime:
		return "compile-time"
	case BuildInspector:
		return "inspector"
	case BuildShared:
		return "shared"
	default:
		return fmt.Sprintf("BuildKind(%d)", int(k))
	}
}

// peerCount is one precomputed communication partner: processor q and
// the number of elements exchanged with it per execution.  Computing
// these once at build time keeps the replay path allocation-free.
type peerCount struct{ q, n int }

// arraySched is the communication schedule of one read-array slot.  It
// is purely structural — which loop array occupies the slot is bound
// at execution time from the loop's reads, which is what lets whole
// schedules be shared between identically-shaped loops over different
// arrays.  buf is the slot's receive buffer, allocated once at build
// time and reused by every replay.
type arraySched struct {
	in       *comm.InSet
	out      *comm.OutSet
	buf      []float64
	outPeers []peerCount // receivers of this slot's data, ascending
	inPeers  []peerCount // senders of this slot's data, ascending
}

// enumRef is one resolved reference of a Saltz-style enumerated
// schedule: the value lives either in the communication buffer of
// array slot (Buf >= 0) or locally at global index G (Buf == -1).
type enumRef struct {
	Slot int
	G    int
	Buf  int
}

// slotPeer is one (array slot, sending peer) pair of the NoCombine
// receive schedule, flattened so the overlap drain can wait on all
// slots' messages at once instead of slot by slot.
type slotPeer struct {
	slot int
	pc   peerCount
}

// Schedule is the result of inspecting/analyzing one loop shape on one
// node, for loops of any rank.  It is purely structural: iteration
// lists, per-slot communication sets and buffers, but no binding to
// the arrays of any particular loop.  One Schedule may therefore be
// held by several cache entries at once (content-addressed sharing)
// and replayed against different arrays.
type Schedule struct {
	rank         int
	execLocal    []iteration
	execNonlocal []iteration
	arrays       []*arraySched
	kind         BuildKind
	// sendTo/recvFrom are the combined-message peers: the ascending
	// union of all slots' receivers/senders with total element counts,
	// precomputed so the executor sizes each coalesced message without
	// allocating.
	sendTo   []peerCount
	recvFrom []peerCount
	// Pending-receive slots for the split-phase drain, preallocated at
	// build time so overlap replay stays zero-alloc: recvReqs/recvDone
	// parallel recvFrom (combined messages), ncRecv/ncReqs/ncDone
	// flatten every (slot, peer) of the NoCombine path.
	recvReqs []machine.Request
	recvDone []bool
	ncRecv   []slotPeer
	ncReqs   []machine.Request
	ncDone   []bool
	// enum[k] lists every resolved reference of nonlocal iteration
	// execNonlocal[k], in body order — row-major for rank-2 loops
	// (Loop.Enumerate / Loop2.Enumerate only).
	enum [][]enumRef
	// sid is the engine-assigned schedule identity, minted once per
	// built schedule; fusion plans key on the window's sid tuple, so a
	// rebuilt (or freshly adopted) schedule can never alias a stale
	// plan.
	sid uint64
}

// Rank returns the loop rank the schedule was built for.
func (s *Schedule) Rank() int { return s.rank }

// LocalIters returns the number of iterations with only local
// references (paper's local_list).
func (s *Schedule) LocalIters() int { return len(s.execLocal) }

// NonlocalIters returns the number of iterations needing communicated
// data (paper's nonlocal_list).
func (s *Schedule) NonlocalIters() int { return len(s.execNonlocal) }

// Kind reports how the schedule was built.
func (s *Schedule) Kind() BuildKind { return s.kind }

// RecvCount returns the total number of elements this node receives
// per execution.
func (s *Schedule) RecvCount() int {
	n := 0
	for _, as := range s.arrays {
		n += as.in.Total
	}
	return n
}

// MemBytes estimates the schedule's storage: iteration lists (one word
// per index per rank), range records (Figure 5: ~20 bytes each),
// buffers, and — for enumerated schedules — the per-reference list the
// paper's §5 identifies as the storage cost of Saltz's approach.
func (s *Schedule) MemBytes() int {
	words := s.rank
	if words < 1 {
		words = 1
	}
	n := 8 * words * (len(s.execLocal) + len(s.execNonlocal))
	for _, as := range s.arrays {
		n += recBytes * (len(as.in.Ranges) + len(as.out.Ranges))
		n += 8 * len(as.buf)
	}
	for _, refs := range s.enum {
		n += 12 * len(refs)
	}
	return n
}

// schedKey identifies one cached schedule.  Keying by (rank, name)
// keeps loops of different ranks in disjoint keyspaces: a rank-1 loop
// literally named "2d:foo" can never collide with a Loop2 named "foo",
// which the old string-prefix scheme allowed.
type schedKey struct {
	rank int
	name string
}

// cacheEntry binds one loop name to a (possibly shared) Schedule,
// together with the loop shape the binding was made under.  The shape
// fields guard replay: reusing a schedule under a different placement,
// executor variant, or read pattern would execute the wrong iterations
// or miss communicated elements.  Distribution fingerprints are part
// of the shape (onDist and each readSig's distFP): arrays can be
// *redistributed* in place (darray.Redistribute), and replaying a
// schedule built for the old mapping would ship the wrong elements —
// a correctness bug, not a performance bug — so a fingerprint change
// forces a miss.
type cacheEntry struct {
	s           *Schedule
	bounds      [4]int
	onF         analysis.Affine
	onF2        analysis.Affine2
	onDist      uint64 // fingerprint of the on array's dist (0 for OnProc)
	enumerate   bool
	readSigs    []readSig
	depVersions []int
}

// matches reports whether the entry was recorded for exactly this loop
// shape, including every involved array's current distribution.  It
// allocates nothing (replay hot path; fingerprints are precomputed on
// the Dist).
func (ent *cacheEntry) matches(c *loopCore) bool {
	if ent.bounds != c.bounds || ent.onF != c.onF || ent.onF2 != c.onF2 ||
		ent.enumerate != c.enumerate || len(ent.readSigs) != len(c.reads) {
		return false
	}
	if ent.onDist != onDistOf(c) {
		return false
	}
	for i, r := range c.reads {
		if ent.readSigs[i] != sigOf(r) {
			return false
		}
	}
	return true
}

// onDistOf fingerprints the loop's placement distribution (0 under
// direct OnProc placement, which names processors, not a dist).
func onDistOf(c *loopCore) uint64 {
	if c.on == nil {
		return 0
	}
	return c.on.Dist().Fingerprint()
}

// sharedScheduleCap bounds the per-node content-addressed schedule
// store.  Distinct share keys accumulate over a machine's lifetime
// (every redistribution changes distribution fingerprints, minting
// new keys), so the store is a bounded LRU rather than a map: the
// working set of the current solver phase stays, dead schedules go,
// and evictions are counted so thrashing is visible in reports.
const sharedScheduleCap = 64

// Engine executes forall loops on one node and caches their schedules.
type Engine struct {
	node   *machine.Node
	cache  map[schedKey]*cacheEntry
	shared *lru.Cache[shareKey, *Schedule]
	// NoCache disables schedule reuse — both the per-name cache and the
	// content-addressed store (benchmark ABL1 measures the cost of
	// re-inspecting on every execution).
	NoCache bool
	// ForceInspector disables the compile-time path (ABL3).
	ForceInspector bool
	// NoCombine sends each array's data to a peer as a separate
	// message.  By default the executor combines all arrays' data for
	// the same destination into one message, as the paper's
	// implementation does ("sorting by processor id also allowed us to
	// combine messages between the same two processors, thus saving on
	// the number of messages").
	NoCombine bool
	// NoOverlap restores the phase-synchronous executor the paper
	// describes literally: blocking sends whose wire time lands on the
	// sender's critical path, and a fixed-order receive drain.  By
	// default execution is split-phase — nonblocking sends posted
	// before the interior compute, boundary receives drained after it —
	// so communication overlaps the local iterations.  The traffic is
	// identical either way (same messages, same counts, same
	// contents); only its placement relative to compute changes, which
	// makes this flag the differential oracle for the overlap path.
	NoOverlap bool
	// NoFuse disables cross-loop message aggregation: RunSequence
	// degrades to sequential Run/Run2 calls — the phase-per-loop
	// executor kept as the differential oracle for the fusion path
	// (kalirun -fuse=off).  Fusion also stands down automatically under
	// NoOverlap and NoCombine, whose oracle semantics it composes with.
	NoFuse bool
	// Store, when non-nil, is the cross-tenant content-addressed store
	// (store.go): before building a shareable schedule the engine
	// consults it (adopting blueprints other programs built, possibly
	// revived from disk), and after building it publishes the blueprint
	// there.  Build requests for the same shape are coalesced
	// machine-wide (singleflight), which is deadlock-free because only
	// communication-free compile-time builds participate.
	Store *SharedStore

	lastKind   BuildKind
	builds     int
	sharedHits int
	storeHits  int

	// Fusion state: the bounded fused-plan store (fuse.go), the
	// schedule-id mint backing its keys, and the window counter tests
	// and benches use to assert fusion actually engaged.
	fusedPlans   *lru.Cache[uint64, *fusedPlan]
	sidCounter   uint64
	fusedWindows int

	// Replay scratch, reused across executions so a cached replay
	// allocates nothing.  Guarded by inRun: a (pathological) nested Run
	// from inside a loop body falls back to fresh allocations.
	inRun   bool
	coreBuf loopCore
	envBuf  Env

	// Sequence scratch (RunSequence): lowered cores, per-window
	// schedules, accumulated window writes, and per-loop slot bindings,
	// all with recycled backing so warm fused replay allocates nothing.
	seqCores  []loopCore
	seqScheds []*Schedule
	seqWrites []*darray.Array
	seqSlots  [][]*darray.Array
}

// NewEngine creates the per-node forall engine.
func NewEngine(n *machine.Node) *Engine {
	return &Engine{
		node:       n,
		cache:      map[schedKey]*cacheEntry{},
		shared:     lru.New[shareKey, *Schedule](sharedScheduleCap),
		fusedPlans: lru.New[uint64, *fusedPlan](fusedPlanCap),
	}
}

// Node returns the engine's node.
func (e *Engine) Node() *machine.Node { return e.node }

// LastBuildKind reports how the most recent Run/Run2 obtained its
// schedule.
func (e *Engine) LastBuildKind() BuildKind { return e.lastKind }

// Builds returns how many schedules the engine has actually built
// (compile-time or inspector); cache and shared hits do not count.
func (e *Engine) Builds() int { return e.builds }

// SharedHits returns how many times a loop adopted an existing
// schedule from the content-addressed store instead of building one.
func (e *Engine) SharedHits() int { return e.sharedHits }

// StoreHits returns how many times a loop adopted a blueprint from the
// cross-tenant SharedStore (built by another program, or revived from
// the persistence directory) instead of building a schedule itself.
func (e *Engine) StoreHits() int { return e.storeHits }

// SharedSchedules returns the number of distinct schedules in the
// content-addressed store.
func (e *Engine) SharedSchedules() int { return e.shared.Len() }

// SharedEvictions returns how many schedules the bounded
// content-addressed store has evicted for capacity.
func (e *Engine) SharedEvictions() int { return e.shared.Evictions() }

// FusedWindows returns how many fusion windows (≥ 2 loops) the engine
// has executed through RunSequence.
func (e *Engine) FusedWindows() int { return e.fusedWindows }

// FusedPlans returns the number of fused plans currently cached.
func (e *Engine) FusedPlans() int { return e.fusedPlans.Len() }

// FusedPlanEvictions returns how many fused plans the bounded store
// has evicted for capacity.
func (e *Engine) FusedPlanEvictions() int { return e.fusedPlans.Evictions() }

// Schedule returns the cached schedule of a rank-1 loop, or nil if the
// loop has not run (or caching is disabled).
func (e *Engine) Schedule(name string) *Schedule {
	if ent := e.cache[schedKey{1, name}]; ent != nil {
		return ent.s
	}
	return nil
}

// Schedule2 returns the cached schedule of a rank-2 loop.
func (e *Engine) Schedule2(name string) *Schedule {
	if ent := e.cache[schedKey{2, name}]; ent != nil {
		return ent.s
	}
	return nil
}

// Invalidate drops the cached schedules (of either rank) of one loop
// name.  Entries in the content-addressed store are untouched: they
// are pure functions of loop structure, so other loops sharing them
// can never be left holding a stale schedule.
func (e *Engine) Invalidate(name string) {
	delete(e.cache, schedKey{1, name})
	delete(e.cache, schedKey{2, name})
}

// InvalidateAll drops all cached schedules, including the shared
// store: the engine forgets everything and rebuilds from scratch.
func (e *Engine) InvalidateAll() {
	e.cache = map[schedKey]*cacheEntry{}
	e.shared.Reset()
	e.fusedPlans.Reset()
}

// Run executes one rank-1 forall: schedule acquisition is timed under
// the "inspector" phase (zero-cost when cached or compile-time
// analyzed), execution under "executor".
func (e *Engine) Run(l *Loop) {
	e.validate(l)
	c, env := e.acquire()
	defer e.release(c)
	l.lower(c)
	e.runCore(c, env)
}

// Run2 executes a two-dimensional forall through the same pipeline.
func (e *Engine) Run2(l *Loop2) {
	e.validate2(l)
	c, env := e.acquire()
	defer e.release(c)
	l.lower(c)
	e.runCore(c, env)
}

// acquire hands out the engine's reusable loopCore/Env scratch, or
// fresh values if a Run is already active on this engine.
func (e *Engine) acquire() (*loopCore, *Env) {
	if e.inRun {
		return new(loopCore), new(Env)
	}
	e.inRun = true
	return &e.coreBuf, &e.envBuf
}

// release returns the scratch (a no-op for nested fresh values).
func (e *Engine) release(c *loopCore) {
	if c == &e.coreBuf {
		e.inRun = false
	}
}

// runCore is the shared schedule-then-execute pipeline.
func (e *Engine) runCore(c *loopCore, env *Env) {
	s := e.schedule(c)
	phase := phaseOf(c)
	e.node.StartPhase(phase)
	e.execute(c, s, env)
	e.node.StopPhase(phase)
}

// phaseOf returns the timing phase the loop's execution is attributed
// to (default PhaseExecutor).
func phaseOf(c *loopCore) string {
	if c.phase == "" {
		return PhaseExecutor
	}
	return c.phase
}

// validate checks a rank-1 loop specification once per Run.
func (e *Engine) validate(l *Loop) {
	if l.Name == "" {
		panic("forall: loop needs a Name for schedule caching")
	}
	if l.Body == nil {
		panic("forall: loop has no Body")
	}
	if l.OnProc == nil {
		if l.On == nil {
			panic(fmt.Sprintf("forall %s: needs On array or OnProc", l.Name))
		}
		if l.On.Replicated() {
			panic(fmt.Sprintf("forall %s: on clause over replicated array", l.Name))
		}
		if l.On.Rank() != 1 || l.On.Dist().Grid().Rank() != 1 {
			panic(fmt.Sprintf("forall %s: on clause requires a 1-D array over a 1-D processor grid", l.Name))
		}
		if l.OnF.A == 0 {
			panic(fmt.Sprintf("forall %s: OnF.A must be nonzero (use analysis.Identity)", l.Name))
		}
	}
	for _, r := range l.Reads {
		if r.Array == nil {
			panic(fmt.Sprintf("forall %s: nil read array", l.Name))
		}
	}
}

// validate2 checks a rank-2 loop specification once per Run2.
func (e *Engine) validate2(l *Loop2) {
	if l.Name == "" {
		panic("forall: Loop2 needs a Name")
	}
	if l.Body == nil {
		panic(fmt.Sprintf("forall %s: Loop2 has no Body", l.Name))
	}
	on := l.On
	if on == nil || on.Rank() != 2 || on.Replicated() {
		panic(fmt.Sprintf("forall %s: Loop2 needs a rank-2 distributed on array", l.Name))
	}
	if on.Dist().Grid().Rank() != 2 || on.Dist().Pattern(0) == nil || on.Dist().Pattern(1) == nil {
		panic(fmt.Sprintf("forall %s: Loop2 on array must distribute both dimensions over a rank-2 grid", l.Name))
	}
	if (l.OnF2 != analysis.Affine2{}) && (l.OnF2.I.A == 0 || l.OnF2.J.A == 0) {
		panic(fmt.Sprintf("forall %s: OnF2 coefficients must be nonzero (use analysis.Identity2)", l.Name))
	}
	for _, r := range l.Reads {
		if r.Array == nil {
			panic(fmt.Sprintf("forall %s: nil read array", l.Name))
		}
	}
}

// schedule returns a valid Schedule: from the per-name cache when the
// loop reruns unchanged, from the content-addressed store when another
// loop of identical structure already built one, else by building.
func (e *Engine) schedule(c *loopCore) *Schedule {
	key := schedKey{c.rank, c.name}
	if !e.NoCache {
		if ent, ok := e.cache[key]; ok && ent.matches(c) && depsFresh(c, ent) {
			e.lastKind = BuildCached
			return ent.s
		}
	}
	// Content-addressed sharing applies only to compile-time schedules:
	// they are pure functions of (distribution, bounds, read affines,
	// on clause), whereas inspector schedules depend on what the body
	// actually referenced (indirect subscripts, OnProc, enumeration).
	shareable := c.analyzable() && !e.ForceInspector && !e.NoCache
	var sk shareKey
	if shareable {
		sk = shareKeyOf(c)
		if s, ok := e.shared.Get(sk); ok {
			e.sharedHits++
			e.lastKind = BuildShared
			e.store(key, c, s)
			return s
		}
	}
	var s *Schedule
	adopted := false
	if shareable && e.Store != nil {
		// Cross-tenant store: adopt a blueprint some program already
		// built (or a warm start revived from disk), else build exactly
		// once machine-wide — concurrent tenants asking for the same
		// shape block on the first build instead of duplicating it.
		bp, hit := e.Store.getOrBuild(e.node.ID(), sk, func() *Blueprint {
			s = e.build(c)
			return blueprintOf(s)
		})
		if hit {
			e.node.StartPhase(PhaseInspector)
			s = e.instantiate(bp)
			// Instantiation is a copy pass, not set algebra: one call's
			// worth, like a redistribution plan hit.
			e.node.Charge(machine.Cost{Calls: 1})
			e.node.StopPhase(PhaseInspector)
			adopted = true
		}
	} else {
		s = e.build(c)
	}
	if adopted {
		e.storeHits++
	} else {
		finalizePeers(s)
		e.builds++
	}
	e.sidCounter++
	s.sid = e.sidCounter
	if shareable {
		e.shared.Put(sk, s)
	}
	if !e.NoCache {
		e.store(key, c, s)
	}
	if adopted {
		e.lastKind = BuildShared
	} else {
		e.lastKind = s.kind
	}
	return s
}

// build constructs a schedule for c — compile-time when the loop is
// analyzable (and not forced), else by the run-time inspector — timed
// under the inspector phase.
func (e *Engine) build(c *loopCore) *Schedule {
	e.node.StartPhase(PhaseInspector)
	var s *Schedule
	if c.analyzable() && !e.ForceInspector {
		s = e.buildCompileTime(c)
	} else {
		s = e.buildInspector(c)
	}
	e.node.StopPhase(PhaseInspector)
	s.rank = c.rank
	return s
}

// store records the name → schedule binding with the shape it was made
// under.
func (e *Engine) store(key schedKey, c *loopCore, s *Schedule) {
	sigs := make([]readSig, len(c.reads))
	for i, r := range c.reads {
		sigs[i] = sigOf(r)
	}
	vers := make([]int, len(c.deps))
	for i, d := range c.deps {
		vers[i] = d.Version()
	}
	e.cache[key] = &cacheEntry{
		s: s, bounds: c.bounds, onF: c.onF, onF2: c.onF2,
		onDist:    onDistOf(c),
		enumerate: c.enumerate, readSigs: sigs, depVersions: vers,
	}
}

// readSig is the comparable shape of one ReadSpec; form distinguishes
// indirect (0), rank-1 affine (1), and rank-2 affine (2) reads.
// distFP records the array's distribution fingerprint at store time,
// so in-place redistribution invalidates the binding.
type readSig struct {
	arr    *darray.Array
	form   uint8
	aff    analysis.Affine
	aff2   analysis.Affine2
	distFP uint64
}

// sigOf projects one ReadSpec without allocating.
func sigOf(r ReadSpec) readSig {
	sig := readSig{arr: r.Array, distFP: r.Array.Dist().Fingerprint()}
	if r.Affine != nil {
		sig.form, sig.aff = 1, *r.Affine
	} else if r.Affine2 != nil {
		sig.form, sig.aff2 = 2, *r.Affine2
	}
	return sig
}

func depsFresh(c *loopCore, ent *cacheEntry) bool {
	if len(c.deps) != len(ent.depVersions) {
		return false
	}
	for i, d := range c.deps {
		if d.Version() != ent.depVersions[i] {
			return false
		}
	}
	return true
}

// appendDistinct appends each read's array to dst on first appearance.
// This single helper defines the slot order of a schedule: the build
// path (assembleArrays), the execute-time binding (bindArrays) and the
// share key (shareKeyOf) all derive slots from it, so they can never
// disagree on which array occupies which slot.
func appendDistinct(dst []*darray.Array, reads []ReadSpec) []*darray.Array {
	for _, r := range reads {
		found := false
		for _, a := range dst {
			if a == r.Array {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, r.Array)
		}
	}
	return dst
}

// distinctArrays returns the distinct arrays referenced by the loop's
// reads, in first-appearance (slot) order.
func distinctArrays(c *loopCore) []*darray.Array {
	return appendDistinct(nil, c.reads)
}

// execSet computes exec(p) for a rank-1 loop as a sorted slice.
func (e *Engine) execSet(c *loopCore) []int {
	me := e.node.ID()
	lo, hi := c.bounds[0], c.bounds[1]
	if c.onProc != nil {
		// Run-time placement scan: evaluate the on expression for every
		// iteration in range.
		var out []int
		for i := lo; i <= hi; i++ {
			e.node.Charge(machine.Cost{LoopIters: 1})
			if c.onProc(i) == me {
				out = append(out, i)
			}
		}
		return out
	}
	pat := c.on.Dist().Pattern(0)
	set := analysis.Exec(pat, c.onF, lo, hi, me)
	// Symbolic evaluation cost: one call's worth.
	e.node.Charge(machine.Cost{Calls: 1})
	return set.Slice()
}

// tagFor returns the message tag for array slot k of a loop.
func tagFor(k int) machine.Tag { return machine.TagUser + machine.Tag(k) }

// recBytes is the modeled wire size of one in/out record (Figure 5:
// two processor ids, two bounds, one pointer).
const recBytes = 20
