package forall

import (
	"math/rand"
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// Fusion-equivalence property: cross-loop aggregation changes *when*
// messages move, never what they carry, so over random loop sequences
// the matrix {fused, unfused} × {sim, wall} × {compile-time,
// inspector, enumerate} must produce bit-identical array contents,
// identical per-fuse-setting Stats across backends, identical byte
// totals fused vs unfused, message counts that only shrink, and warm
// simulated clocks that only shrink.  Mirrors backend_equiv_test.go's
// overlap matrix one level up the pipeline.

// fuseLoop is one randomly drawn loop of a sequence over the case's
// array pool: dst = f(src [, src2]) with affine offsets, or an
// indirect permutation read.
type fuseLoop struct {
	dst, src int
	src2     int // second read array (-1: none)
	off      int // affine read offset
	off2     int
	indirect bool
}

// fuseCase is one randomly drawn sequence shape.
type fuseCase struct {
	n, p  int
	spec  dist.DimSpec
	loops []fuseLoop
	perm  []int // shared by every indirect loop
}

const fusePoolSize = 4

func drawFuseCase(r *rand.Rand, indirect bool) fuseCase {
	c := fuseCase{
		n: 12 + r.Intn(36),
		p: 1 + r.Intn(4),
	}
	switch r.Intn(3) {
	case 0:
		c.spec = dist.BlockDim()
	case 1:
		c.spec = dist.CyclicDim()
	default:
		c.spec = dist.BlockCyclicDim(1 + r.Intn(4))
	}
	offs := []int{-2, -1, 1, 2}
	nloops := 2 + r.Intn(3)
	for k := 0; k < nloops; k++ {
		l := fuseLoop{
			dst:  r.Intn(fusePoolSize),
			src:  r.Intn(fusePoolSize),
			src2: -1,
			off:  offs[r.Intn(len(offs))],
		}
		if l.src == l.dst {
			l.src = (l.src + 1) % fusePoolSize
		}
		if r.Intn(2) == 0 {
			l.src2 = r.Intn(fusePoolSize)
			if l.src2 == l.dst {
				l.src2 = (l.src2 + 1) % fusePoolSize
			}
			l.off2 = offs[r.Intn(len(offs))]
		}
		l.indirect = indirect && r.Intn(2) == 0
		c.loops = append(c.loops, l)
	}
	if indirect {
		// At least one loop must actually be indirect.
		c.loops[r.Intn(len(c.loops))].indirect = true
		c.perm = make([]int, c.n)
		for i := range c.perm {
			c.perm[i] = r.Intn(c.n) + 1
		}
	}
	return c
}

// fuseExec selects one cell of the matrix.
type fuseExec struct {
	force     bool // ForceInspector
	enumerate bool // Enumerate on the indirect loops
	fuse      bool
}

// runFuseCase executes the case's sequence on the given machine:
// two cold sweeps, a barrier, three warm sweeps, a barrier.  It
// returns the gathered contents of the whole array pool, machine-wide
// Stats, the warm-window clock delta (meaningful on sim only: the
// barriers synchronize all clocks, so the delta is backend-global),
// and node 0's fused-window count.
func runFuseCase(c fuseCase, m *machine.Machine, ex fuseExec) ([]float64, machine.Stats, float64, int) {
	g := topology.MustGrid(m.P())
	d := dist.Must([]int{c.n}, []dist.DimSpec{c.spec}, g)
	vals := make([]float64, fusePoolSize*c.n)
	var warmDelta float64
	var windows int
	var mu sync.Mutex
	m.Run(func(nd *machine.Node) {
		var pool [fusePoolSize]*darray.Array
		for a := range pool {
			pool[a] = darray.New(string(rune('A'+a)), d, nd)
			av := pool[a]
			seed := float64(a + 1)
			av.EachLocal(func(gl int) { av.Set1(gl, seed*0.5+float64(gl)*1.25) })
		}
		var perm *darray.IntArray
		if c.perm != nil {
			perm = darray.NewInt("perm", d, nd)
			perm.EachLocal(func(gl int) { perm.Set1(gl, c.perm[gl-1]) })
		}
		eng := NewEngine(nd)
		eng.ForceInspector = ex.force
		eng.NoFuse = !ex.fuse

		var seq []SeqLoop
		for k, fl := range c.loops {
			fl := fl
			dst, src := pool[fl.dst], pool[fl.src]
			// Bounds keep every affine subscript inside [1, n].
			lo, hi := 3, c.n-2
			name := "fuse" + string(rune('0'+k))
			var loop *Loop
			if fl.indirect {
				loop = &Loop{
					Name: name, Lo: lo, Hi: hi,
					On: dst, OnF: analysis.Identity,
					Reads:     []ReadSpec{{Array: src}},
					DependsOn: []Dep{perm},
					Enumerate: ex.enumerate,
					Body: func(i int, e *Env) {
						j := e.ReadInt(perm, i)
						e.Write(dst, i, e.Read(src, j)+float64(i))
					},
				}
			} else if fl.src2 >= 0 {
				src2 := pool[fl.src2]
				loop = &Loop{
					Name: name, Lo: lo, Hi: hi,
					On: dst, OnF: analysis.Identity,
					Reads: []ReadSpec{
						{Array: src, Affine: &analysis.Affine{A: 1, C: fl.off}},
						{Array: src2, Affine: &analysis.Affine{A: 1, C: fl.off2}},
					},
					Body: func(i int, e *Env) {
						e.Write(dst, i, 0.5*e.Read(src, i+fl.off)+0.25*e.Read(src2, i+fl.off2)+float64(i))
					},
				}
			} else {
				loop = &Loop{
					Name: name, Lo: lo, Hi: hi,
					On: dst, OnF: analysis.Identity,
					Reads: []ReadSpec{{Array: src, Affine: &analysis.Affine{A: 1, C: fl.off}}},
					Body: func(i int, e *Env) {
						e.Write(dst, i, 0.5*e.Read(src, i+fl.off)+float64(i))
					},
				}
			}
			seq = append(seq, SeqLoop{L: loop, Writes: []*darray.Array{dst}})
		}

		for s := 0; s < 2; s++ {
			eng.RunSequence(seq)
		}
		nd.Barrier()
		c0 := nd.Clock()
		for s := 0; s < 3; s++ {
			eng.RunSequence(seq)
		}
		nd.Barrier()
		c1 := nd.Clock()

		mu.Lock()
		if nd.ID() == 0 {
			warmDelta = c1 - c0
			windows = eng.FusedWindows()
		}
		for a, av := range pool {
			av.EachLocal(func(gl int) { vals[a*c.n+gl-1] = av.Get1(gl) })
		}
		mu.Unlock()
	})
	return vals, m.TotalStats(), warmDelta, windows
}

func TestFusionEquivalenceMatrix(t *testing.T) {
	type kind struct {
		name      string
		indirect  bool
		force     bool
		enumerate bool
	}
	kinds := []kind{
		{"compile-time", false, false, false},
		{"inspector", false, true, false},
		{"enumerate", true, false, true},
	}
	r := rand.New(rand.NewSource(932))
	strictSavings, fusedWindows := 0, 0
	for trial := 0; trial < 12; trial++ {
		for _, k := range kinds {
			c := drawFuseCase(rand.New(rand.NewSource(r.Int63())), k.indirect)
			type cell struct {
				vals  []float64
				stats machine.Stats
				warm  float64
				win   int
			}
			get := func(backend string, fuse bool) cell {
				var m *machine.Machine
				if backend == "sim" {
					m = sim.MustNew(c.p, machine.NCUBE7())
				} else {
					m = wallclock.MustNew(c.p, machine.NCUBE7())
				}
				ex := fuseExec{force: k.force, enumerate: k.enumerate, fuse: fuse}
				vals, stats, warm, win := runFuseCase(c, m, ex)
				return cell{vals, stats, warm, win}
			}
			simF, simU := get("sim", true), get("sim", false)
			wallF, wallU := get("wall", true), get("wall", false)

			// Contents: bit-identical across all four cells.
			for _, o := range []struct {
				name string
				c    cell
			}{{"sim unfused", simU}, {"wall fused", wallF}, {"wall unfused", wallU}} {
				for i := range simF.vals {
					if o.c.vals[i] != simF.vals[i] {
						t.Fatalf("trial %d %s (%+v): %s element %d differs: %v vs %v",
							trial, k.name, c, o.name, i, o.c.vals[i], simF.vals[i])
					}
				}
			}
			// Stats: backend-independent for each fuse setting.
			if simF.stats != wallF.stats {
				t.Fatalf("trial %d %s (%+v): fused stats differ across backends: sim %+v, wall %+v",
					trial, k.name, c, simF.stats, wallF.stats)
			}
			if simU.stats != wallU.stats {
				t.Fatalf("trial %d %s (%+v): unfused stats differ across backends: sim %+v, wall %+v",
					trial, k.name, c, simU.stats, wallU.stats)
			}
			// Fusion never changes the bytes moved, only the envelope
			// count; the unfused oracle must see no fused traffic at all.
			if simF.stats.BytesSent != simU.stats.BytesSent {
				t.Fatalf("trial %d %s (%+v): fused bytes %d != unfused bytes %d",
					trial, k.name, c, simF.stats.BytesSent, simU.stats.BytesSent)
			}
			if simF.stats.MsgsSent > simU.stats.MsgsSent {
				t.Fatalf("trial %d %s (%+v): fusion grew message count: %d > %d",
					trial, k.name, c, simF.stats.MsgsSent, simU.stats.MsgsSent)
			}
			if simU.stats.FusedMsgsSent != 0 {
				t.Fatalf("trial %d %s: unfused run recorded %d fused messages",
					trial, k.name, simU.stats.FusedMsgsSent)
			}
			// Warm simulated clocks shrink-only (tiny epsilon: the same
			// charges accumulate in a different order, so the last few
			// float bits may move).
			if eps := 1e-9 * (1 + simU.warm); simF.warm > simU.warm+eps {
				t.Fatalf("trial %d %s (%+v): fusion grew the warm simulated clock: %.12g > %.12g",
					trial, k.name, c, simF.warm, simU.warm)
			}
			if simF.stats.MsgsSent < simU.stats.MsgsSent {
				strictSavings++
			}
			fusedWindows += simF.win
		}
	}
	// The draw must actually exercise fusion: some trials have windows,
	// and some save messages outright.
	if fusedWindows == 0 {
		t.Fatal("no trial executed a fusion window")
	}
	if strictSavings == 0 {
		t.Fatal("no trial saved messages through fusion")
	}
}
