package forall

import (
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
)

// Cross-loop message aggregation (the paper's §3.2 message-combining
// lifted across consecutive foralls).  Within one loop the executor
// already coalesces all arrays' data for one destination into a single
// message; RunSequence extends the same argument across a *sequence*
// of loops: consecutive foralls whose declared reads are untouched by
// the preceding loops' writes form a fusion window, and the window
// posts every member loop's per-pair message — now a *section* of one
// logical fused message — before the first loop's interior compute.
// Execution then pipelines as a wavefront: each loop's boundary pass
// starts as soon as its own sections drain (WaitAny completion order),
// with no inter-loop barrier and no re-posting.
//
// The wire format is deliberately conservative: section k's payload is
// bit-identical to the combined message loop k would send unfused, and
// it travels under its own tag (machine.FusedTag(k)), so the receive
// side matches sections unambiguously and unpacks with the same
// unpackCombined the unfused path uses.  Only *when* traffic moves
// changes — contents, byte counts and per-section receive charges are
// identical — which is what makes fused simulated clocks provably no
// worse than unfused ones (see machine.FusedSender) and the unfused
// executor an exact differential oracle behind Engine.NoFuse.
//
// Legality: loop l joins the window only if none of its declared read
// arrays was written by an earlier window loop, because its sections
// are packed from array contents at window start.  Everything else —
// execution order, aligned ReadLocal accesses, per-loop copy-in/
// copy-out commits — stays in program order, so a loop reading *and*
// writing the same array (a smooth) fuses fine within its own slot;
// only a later loop reading that array breaks the window.  As with
// schedule caching, reference patterns driven by array *contents* must
// declare DependsOn; writing a pattern-driving array inside a window
// is outside the contract, exactly as replaying a stale cached
// schedule would be.

// SeqLoop is one element of a loop sequence: exactly one of L and L2
// must be set.  Writes declares every distributed array the loop's
// body writes; the fusion planner uses it to find window boundaries,
// so an omitted write array can fuse a loop with a stale reader.
type SeqLoop struct {
	L      *Loop
	L2     *Loop2
	Writes []*darray.Array
}

// fusedPlanCap bounds the per-engine fused-plan store.  Plans are pure
// functions of their component schedules, so eviction is only a
// rebuild cost; the counter makes thrashing visible.
const fusedPlanCap = 32

// fusedPlan is the precomputed drain/send layout of one fusion window,
// flattened loop-major so warm replay walks slices and allocates
// nothing.  It is keyed (and verified) by the component schedules: a
// rebuilt or redistributed schedule has a new identity, so a stale
// plan can never replay.
type fusedPlan struct {
	scheds []*Schedule

	// Receive side: one entry per (window loop k, sending peer),
	// loop-major; loop k's entries occupy [reqStart[k], reqStart[k+1]).
	// firsts marks each peer's first section — the only one counted as
	// a received message.  pending stashes sections that physically
	// complete before their loop's drain (wall-clock backends), and
	// remain counts down each loop's outstanding sections per window
	// execution.
	reqs       []machine.Request
	done       []bool
	firsts     []bool
	loopOf     []int
	reqStart   []int
	pending    []machine.Message
	remain     []int
	remainInit []int

	// Send side: sendFirst parallels the loop-major (loop, sendTo peer)
	// posting order; a peer's first section pays the message startup,
	// continuations only extend the wire transfer.
	sendFirst []bool
}

// matches verifies a cached plan against the window's schedules
// pointer-wise, guarding against sid-hash collisions.
func (p *fusedPlan) matches(scheds []*Schedule) bool {
	if len(p.scheds) != len(scheds) {
		return false
	}
	for i, s := range scheds {
		if p.scheds[i] != s {
			return false
		}
	}
	return true
}

// fusedKeyOf fingerprints the window's schedule tuple by the engine-
// assigned schedule ids.
func fusedKeyOf(scheds []*Schedule) uint64 {
	h := dist.FingerprintSeed
	h = mixInt(h, len(scheds))
	for _, s := range scheds {
		h = dist.MixFingerprint(h, s.sid)
	}
	return h
}

// buildFusedPlan lays out the window's sections (cold path).
func buildFusedPlan(scheds []*Schedule) *fusedPlan {
	p := &fusedPlan{scheds: append([]*Schedule(nil), scheds...)}
	seenSend := map[int]bool{}
	seenRecv := map[int]bool{}
	p.reqStart = make([]int, len(scheds)+1)
	for k, s := range scheds {
		p.reqStart[k] = len(p.reqs)
		for _, pc := range s.recvFrom {
			p.reqs = append(p.reqs, machine.Request{From: pc.q, Tag: machine.FusedTag(k)})
			p.firsts = append(p.firsts, !seenRecv[pc.q])
			p.loopOf = append(p.loopOf, k)
			seenRecv[pc.q] = true
		}
		p.remainInit = append(p.remainInit, len(s.recvFrom))
		for _, pc := range s.sendTo {
			p.sendFirst = append(p.sendFirst, !seenSend[pc.q])
			seenSend[pc.q] = true
		}
	}
	p.reqStart[len(scheds)] = len(p.reqs)
	p.done = make([]bool, len(p.reqs))
	p.pending = make([]machine.Message, len(p.reqs))
	p.remain = make([]int, len(scheds))
	return p
}

// fusedPlanFor returns the window's plan from the engine's bounded
// store, building on miss (or on a hash collision, which the pointer
// check downgrades to a miss).
func (e *Engine) fusedPlanFor(scheds []*Schedule) *fusedPlan {
	key := fusedKeyOf(scheds)
	if p, ok := e.fusedPlans.Get(key); ok && p.matches(scheds) {
		return p
	}
	p := buildFusedPlan(scheds)
	e.fusedPlans.Put(key, p)
	return p
}

// RunSequence executes consecutive forall loops, aggregating messages
// across fusion windows.  It is semantically identical to calling
// Run/Run2 on each element in order — and degrades to exactly that
// under NoFuse, NoOverlap or NoCombine (the differential oracles), for
// single-loop sequences, and for nested calls from inside a loop body.
// Fusion windows are determined from declared reads and writes only,
// so every node partitions the sequence identically and schedule
// builds (which may involve collectives) stay aligned.
func (e *Engine) RunSequence(seq []SeqLoop) {
	for i := range seq {
		if (seq[i].L == nil) == (seq[i].L2 == nil) {
			panic("forall: SeqLoop needs exactly one of L and L2")
		}
	}
	if e.NoFuse || e.NoOverlap || e.NoCombine || e.inRun || len(seq) < 2 {
		for i := range seq {
			if l := seq[i].L; l != nil {
				e.Run(l)
			} else {
				e.Run2(seq[i].L2)
			}
		}
		return
	}
	e.inRun = true
	defer func() { e.inRun = false }()

	cores := e.seqCores
	if cap(cores) < len(seq) {
		cores = make([]loopCore, len(seq))
	} else {
		cores = cores[:len(seq)]
	}
	e.seqCores = cores
	for i := range seq {
		if l := seq[i].L; l != nil {
			e.validate(l)
			l.lower(&cores[i])
		} else {
			e.validate2(seq[i].L2)
			seq[i].L2.lower(&cores[i])
		}
	}
	for i := 0; i < len(seq); {
		j := e.windowEnd(seq, cores, i)
		if j-i < 2 {
			e.runCore(&cores[i], &e.envBuf)
			i++
			continue
		}
		e.runWindow(cores[i:j])
		i = j
	}
}

// windowEnd returns the greedy fusion window starting at loop i: loops
// join until one's declared reads meet the accumulated writes of the
// window so far (its sections could not be packed at window start), or
// the fused-tag range would overflow.
func (e *Engine) windowEnd(seq []SeqLoop, cores []loopCore, i int) int {
	w := append(e.seqWrites[:0], seq[i].Writes...)
	j := i + 1
	for j < len(seq) && j-i < machine.MaxFusedLoops {
		if readsAnyOf(&cores[j], w) {
			break
		}
		w = append(w, seq[j].Writes...)
		j++
	}
	e.seqWrites = w
	return j
}

// readsAnyOf reports whether any of the core's declared read arrays is
// in w.
func readsAnyOf(c *loopCore, w []*darray.Array) bool {
	for _, r := range c.reads {
		for _, a := range w {
			if a == r.Array {
				return true
			}
		}
	}
	return false
}

// runWindow executes one fusion window: acquire every loop's schedule,
// post all loops' sections loop-major, then run the loops in program
// order, each draining only its own sections before its boundary pass.
// Warm replay (all schedules cached, plan cached) allocates nothing.
func (e *Engine) runWindow(cores []loopCore) {
	n := len(cores)
	scheds := e.seqScheds[:0]
	for k := range cores {
		scheds = append(scheds, e.schedule(&cores[k]))
	}
	e.seqScheds = scheds

	plan := e.fusedPlanFor(scheds)
	e.fusedWindows++

	// Bind each loop's distinct read arrays to its schedule's slots
	// (appendDistinct order, as bindArrays does for single loops).
	slots := e.seqSlots
	for len(slots) < n {
		slots = append(slots, nil)
	}
	e.seqSlots = slots
	for k := range cores {
		slots[k] = appendDistinct(slots[k][:0], cores[k].reads)
	}

	for i := range plan.done {
		plan.done[i] = false
		plan.pending[i] = machine.Message{}
	}
	copy(plan.remain, plan.remainInit)

	// Post every loop's sections before the first loop's interior
	// compute, under its phase: the aggregated send of the window.
	ph0 := phaseOf(&cores[0])
	e.node.StartPhase(ph0)
	e.postFusedSends(plan)
	e.node.StopPhase(ph0)

	env := &e.envBuf
	for k := range cores {
		c := &cores[k]
		s := plan.scheds[k]
		ph := phaseOf(c)
		e.node.StartPhase(ph)
		env.reset(e, c, s, modeExecLocal)
		bindArrays(env, c)
		for _, it := range s.execLocal {
			e.node.Charge(machine.Cost{LoopIters: 1})
			c.run(it, env)
		}
		e.drainFused(plan, cores, k)
		env.mode = modeExecNonlocal
		for kk, it := range s.execNonlocal {
			e.node.Charge(machine.Cost{LoopIters: 1})
			if c.enumerate {
				env.enumList = s.enum[kk]
				env.enumPos = 0
			}
			c.run(it, env)
		}
		for _, w := range env.writes {
			if w.i != 0 {
				w.a.Set2(w.i, w.j, w.v)
			} else {
				w.a.SetLinear(w.g, w.v)
			}
		}
		env.writes = env.writes[:0]
		e.node.StopPhase(ph)
	}
}

// postFusedSends packs and posts every window loop's sections in
// loop-major order, so the first loop's sections enter the network
// interface at exactly the clocks the unfused executor would post
// them, and later loops' sections follow immediately on the same
// timeline instead of waiting out the intervening compute.
func (e *Engine) postFusedSends(p *fusedPlan) {
	si := 0
	for k, s := range p.scheds {
		slots := e.seqSlots[k]
		for _, pc := range s.sendTo {
			pb := payloadPool.Get(pc.n)
			off := 0
			for sl, as := range s.arrays {
				arr := slots[sl]
				for _, r := range as.out.RangesTo(pc.q) {
					arr.CopyLinearRange(r.Low, r.High, pb.Vals[off:off+r.Len()])
					off += r.Len()
				}
			}
			e.node.ISendFused(pc.q, machine.FusedTag(k), pb, 8*off, p.sendFirst[si])
			si++
		}
	}
}

// drainFused completes loop k's sections before its boundary pass.
// Completion order is the transport's (slice order on the simulator,
// physical arrival order on wall-clock backends); a section that
// outruns its loop is stashed and unpacked only when its loop drains,
// because window loops may share one Schedule — and therefore one set
// of receive buffers — which an early unpack would overwrite before
// the earlier loop's boundary pass reads it.
func (e *Engine) drainFused(p *fusedPlan, cores []loopCore, k int) {
	for i := p.reqStart[k]; i < p.reqStart[k+1]; i++ {
		if p.pending[i].Payload != nil {
			e.unpackCombined(&cores[k], p.scheds[k], p.reqs[i].From, p.pending[i])
			p.pending[i] = machine.Message{}
		}
	}
	for p.remain[k] > 0 {
		i, msg := e.node.WaitAnyFused(p.reqs, p.done, p.firsts)
		p.done[i] = true
		j := p.loopOf[i]
		p.remain[j]--
		if j == k {
			e.unpackCombined(&cores[k], p.scheds[k], p.reqs[i].From, msg)
		} else {
			p.pending[i] = msg
		}
	}
}
