package baseline

import (
	"testing"

	"kali/internal/machine"
	"kali/internal/mesh"
	"kali/internal/relax"
)

// TestMatchesSequential: the hand-coded program computes the same
// answer as the sequential oracle (and hence the Kali version).
func TestMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m := mesh.Rect(16, 16)
		want := mesh.SeqJacobi(m, mesh.InitValues(m), 10)
		res := Run(Options{NX: 16, NY: 16, Sweeps: 10, P: p, Params: machine.Ideal(), Gather: true})
		if d := mesh.MaxDelta(res.Values, want); d > 1e-12 {
			t.Fatalf("P=%d: differs from sequential by %g", p, d)
		}
	}
}

// TestMatchesKali: hand-coded and Kali-generated executions agree
// exactly on values.
func TestMatchesKali(t *testing.T) {
	m := mesh.Rect(24, 24)
	kali := relax.Run(relax.Options{Mesh: m, Sweeps: 7, P: 4, Params: machine.Ideal(), Gather: true})
	hand := Run(Options{NX: 24, NY: 24, Sweeps: 7, P: 4, Params: machine.Ideal(), Gather: true})
	if d := mesh.MaxDelta(kali.Values, hand.Values); d > 1e-12 {
		t.Fatalf("hand vs kali differ by %g", d)
	}
}

// TestHandCodedIsFasterButClose: the paper's parity claim — Kali is
// close to hand-coded (within ~15% at moderate P), with hand-coded
// strictly faster (no inspector, no searches).
func TestHandCodedIsFasterButClose(t *testing.T) {
	// The paper's measured configuration scale: 128×128, moderate P,
	// 100 sweeps ("performance ... is in many cases virtually
	// identical"; the residual gap is Kali's search overhead).
	m := mesh.Rect(128, 128)
	kali := relax.RunExtrapolated(relax.Options{Mesh: m, Sweeps: 100, P: 4, Params: machine.NCUBE7()}, 4)
	hand := Run(Options{NX: 128, NY: 128, Sweeps: 4, P: 4, Params: machine.NCUBE7()})
	handTotal := hand.Report.Total / 4 * 100
	if handTotal >= kali.Report.Total {
		t.Fatalf("hand-coded (%.2fs) should beat Kali (%.2fs)",
			handTotal, kali.Report.Total)
	}
	if ratio := kali.Report.Total / handTotal; ratio > 1.10 {
		t.Fatalf("Kali/hand ratio %.3f exceeds the near-parity claim", ratio)
	}
}

func TestRowAlignmentEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-row-aligned decomposition")
		}
	}()
	Run(Options{NX: 16, NY: 6, Sweeps: 1, P: 4, Params: machine.Ideal()})
}

func TestBadOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Options{NX: 1, NY: 4, Sweeps: 1, P: 1, Params: machine.Ideal()})
}

func TestDeterministicReport(t *testing.T) {
	run := func() float64 {
		return Run(Options{NX: 32, NY: 32, Sweeps: 5, P: 4, Params: machine.IPSC2()}).Report.Total
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: %g vs %g", got, first)
		}
	}
	if first <= 0 {
		t.Fatal("no time recorded")
	}
}
