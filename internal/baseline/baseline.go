// Package baseline is the comparison point the paper claims parity
// with (§1: code "virtually identical" to hand-written message
// passing): the same Jacobi relaxation written *directly* in message
// passing by a programmer, with the decomposition, ghost rows and
// sends/receives hand-coded for the rectangular mesh.
//
// The hand coder exploits everything the compiler cannot assume: the
// mesh is a grid, the decomposition is block-by-rows, the only remote
// data is the two adjacent rows, and remote values land in dedicated
// ghost rows addressed by ordinary indexing — no inspector, no
// searches, no locality tests.  Benchmark ABL2 quantifies the gap
// between this and the Kali-generated code (the paper: "performance
// ... is in many cases virtually identical"; the residual difference
// is the search overhead the paper's §4 discusses).
package baseline

import (
	"fmt"

	"kali/internal/core"
	"kali/internal/machine"
	"kali/internal/machine/sim"
)

// Options configures a hand-coded run; the mesh is the nx×ny
// rectangular grid with the standard five-point Laplacian.
type Options struct {
	NX, NY int
	Sweeps int
	P      int
	Params machine.Params
	Gather bool
}

// Result mirrors relax.Result.
type Result struct {
	Report core.Report
	Values []float64
}

// Run executes the hand-coded SPMD program.
func Run(opt Options) Result {
	if opt.NX < 2 || opt.NY < 2 || opt.Sweeps < 1 || opt.P < 1 {
		panic(fmt.Sprintf("baseline: bad options %+v", opt))
	}
	m := sim.MustNew(opt.P, opt.Params)
	var values []float64
	if opt.Gather {
		values = make([]float64, opt.NX*opt.NY)
	}
	nx, ny := opt.NX, opt.NY
	n := nx * ny
	blk := (n + opt.P - 1) / opt.P // elements per node, block by rows*cols
	// The hand-coded program assumes the block decomposition is
	// row-aligned — the "obvious" decomposition the paper's test uses.
	if n%opt.P != 0 || blk%nx != 0 {
		panic(fmt.Sprintf("baseline: hand-coded version needs row-aligned blocks (ny=%d divisible by P=%d)", ny, opt.P))
	}

	m.Run(func(nd *machine.Node) {
		me := nd.ID()
		lo := me*blk + 1 // global linear index range [lo..hi]
		hi := (me + 1) * blk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo, hi = 1, 0 // idle node
		}
		cnt := hi - lo + 1
		if cnt < 0 {
			cnt = 0
		}

		// Local slabs with one ghost element margin on each side wide
		// enough for a full row (the up/down neighbor values).
		a := make([]float64, cnt)
		old := make([]float64, cnt)
		ghostUp := make([]float64, nx)   // row above lo's row
		ghostDown := make([]float64, nx) // row below hi's row

		boundary := func(g int) bool {
			r := (g-1)/nx + 1
			c := (g-1)%nx + 1
			return r == 1 || r == ny || c == 1 || c == nx
		}
		for g := lo; g <= hi; g++ {
			if boundary(g) {
				a[g-lo] = 1.0 + float64(g%7)
			}
		}

		up, down := me-1, me+1
		hasUp := up >= 0 && lo > 1
		hasDown := down < opt.P && hi < n

		read := func(g int) float64 {
			switch {
			case g >= lo && g <= hi:
				return old[g-lo]
			case g < lo:
				return ghostUp[g-(lo-nx)] // up neighbor's last row
			default:
				return ghostDown[g-(hi+1)] // down neighbor's first row
			}
		}

		for s := 0; s < opt.Sweeps; s++ {
			// old := a (hand-coded copy; untimed region in the paper's
			// measurements, but it still costs the same either way).
			nd.StartPhase("copy")
			copy(old, a)
			nd.Charge(machine.Cost{LoopIters: cnt, MemRefs: 2 * cnt})
			nd.StopPhase("copy")

			nd.StartPhase("executor")
			// Exchange boundary rows.  The hand coder sends exactly the
			// first/last owned row slices.
			if hasUp {
				row := make([]float64, nx)
				for c := 0; c < nx; c++ {
					if g := lo + c; g <= hi {
						row[c] = old[g-lo]
					}
				}
				nd.Send(up, machine.TagUser, row, 8*nx)
			}
			if hasDown {
				row := make([]float64, nx)
				start := hi - nx + 1
				for c := 0; c < nx; c++ {
					if g := start + c; g >= lo {
						row[c] = old[g-lo]
					}
				}
				nd.Send(down, machine.TagUser, row, 8*nx)
			}
			if hasUp {
				msg := nd.Recv(up, machine.TagUser)
				copy(ghostUp, msg.Payload.([]float64))
			}
			if hasDown {
				msg := nd.Recv(down, machine.TagUser)
				copy(ghostDown, msg.Payload.([]float64))
			}
			// Relax: direct indexing everywhere; same arithmetic charge
			// as the Kali executor's local loop, with no locality tests
			// or searches on the boundary rows.
			for g := lo; g <= hi; g++ {
				nd.Charge(machine.Cost{LoopIters: 1, MemRefs: 2, Flops: 1})
				if boundary(g) {
					continue
				}
				x := 0.25 * (read(g-nx) + read(g-1) + read(g+1) + read(g+nx))
				nd.Charge(machine.Cost{MemRefs: 12, Flops: 8})
				a[g-lo] = x
			}
			nd.StopPhase("executor")
		}

		if opt.Gather {
			for g := lo; g <= hi; g++ {
				values[g-1] = a[g-lo]
			}
		}
	})

	rep := core.Report{
		P:        opt.P,
		Machine:  opt.Params.Name,
		Executor: m.MaxPhase("executor"),
		Elapsed:  m.MaxClock(),
	}
	rep.Total = rep.Executor // no inspector in hand-coded code
	for i := 0; i < opt.P; i++ {
		st := m.Node(i).Stats()
		rep.MsgsSent += st.MsgsSent
		rep.BytesSent += st.BytesSent
	}
	return Result{Report: rep, Values: values}
}
