// Package server runs many Kali programs concurrently against one
// shared schedule infrastructure — a multi-tenant version of the
// paper's runtime.  The paper's central artifact is the compiled
// communication schedule (§3.2): a pure function of loop structure and
// distribution, built once and replayed.  Within one program the
// engine's caches capture that reuse; this package extends it across
// programs.  Tenants draw simulated machines from a bounded pool, and
// every run's forall engines consult one forall.SharedStore, so a
// schedule built by any tenant is adopted (not rebuilt) by every later
// tenant with the same loop structure, and persisted blueprints let a
// restarted server warm-start with zero builds.
package server

import (
	"fmt"
	"sync/atomic"

	"kali/internal/comm"
	"kali/internal/core"
	"kali/internal/forall"
	"kali/internal/lang"
	"kali/internal/machine"
)

// Config describes a schedule server.
type Config struct {
	// P is the processor count of every pooled machine.
	P int
	// Machines bounds the number of concurrently running tenants
	// (default 4): each run holds one pooled machine for its duration.
	Machines int
	// Params is the cost model pooled machines are built with.
	Params machine.Params
	// Backend selects the node runtime ("sim" default, "wall").
	Backend string
	// CacheDir, when non-empty, persists compiled schedule blueprints
	// to disk so a future server on the same directory warm-starts
	// without building.
	CacheDir string
	// StoreCap bounds the shared store's in-memory blueprint count
	// (default forall.DefaultStoreCap).
	StoreCap int
	// NoOverlap/NoFuse ablate tenant engines exactly as core.Config.
	NoOverlap bool
	NoFuse    bool
}

// Server is a pool of machines plus a cross-tenant schedule store.
// All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	store *forall.SharedStore
	pool  chan *machine.Machine

	runs atomic.Int64
	errs atomic.Int64
}

// New builds a server with cfg.Machines pooled machines.
func New(cfg Config) (*Server, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("server: P must be positive, got %d", cfg.P)
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 4
	}
	if cfg.StoreCap <= 0 {
		cfg.StoreCap = forall.DefaultStoreCap
	}
	s := &Server{
		cfg:   cfg,
		store: forall.NewSharedStore(cfg.StoreCap, cfg.CacheDir),
		pool:  make(chan *machine.Machine, cfg.Machines),
	}
	for i := 0; i < cfg.Machines; i++ {
		m, err := core.NewMachine(core.Config{P: cfg.P, Params: cfg.Params, Backend: cfg.Backend})
		if err != nil {
			return nil, err
		}
		s.pool <- m
	}
	return s, nil
}

// Store returns the server's shared schedule store (for tests and
// direct embedding).
func (s *Server) Store() *forall.SharedStore { return s.store }

// P returns the pooled machines' processor count.
func (s *Server) P() int { return s.cfg.P }

// acquire blocks until a pooled machine is free.
func (s *Server) acquire() *machine.Machine { return <-s.pool }

// release returns a machine to the pool.  Machines are reusable even
// after a tenant panic: Machine.Run unwinds every node goroutine
// before reporting, and Reset (called at the start of the next run)
// clears transport state including barrier poison.
func (s *Server) release(m *machine.Machine) { s.pool <- m }

// config returns a per-run core.Config bound to machine m.
func (s *Server) config(m *machine.Machine) core.Config {
	return core.Config{
		P:         s.cfg.P,
		Params:    s.cfg.Params,
		Backend:   s.cfg.Backend,
		NoOverlap: s.cfg.NoOverlap,
		NoFuse:    s.cfg.NoFuse,
		Machine:   m,
		Store:     s.store,
	}
}

// Run compiles and executes one .kali program on the pool.  A compile
// (parse/check) failure returns a *lang.Error when the source is at
// fault; runtime failures return the recovered error.  Either way the
// machine returns to the pool.
func (s *Server) Run(src string) (*lang.Result, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	return s.RunProgram(prog)
}

// RunProgram executes an already-compiled program on the pool.
func (s *Server) RunProgram(prog *lang.Program) (*lang.Result, error) {
	m := s.acquire()
	defer s.release(m)
	s.runs.Add(1)
	res, err := prog.Run(s.config(m))
	if err != nil {
		s.errs.Add(1)
	}
	return res, err
}

// RunFunc executes a Go-API SPMD program on the pool — the embedding
// path tests and benchmarks use.  Runtime panics are recovered into
// the returned error, like the language front end does.
func (s *Server) RunFunc(prog func(ctx *core.Context)) (rep core.Report, err error) {
	m := s.acquire()
	defer s.release(m)
	s.runs.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.errs.Add(1)
			err = fmt.Errorf("server: runtime error: %v", r)
		}
	}()
	rep = core.Run(s.config(m), prog)
	return rep, nil
}

// Stats is a point-in-time snapshot of server activity.
type Stats struct {
	// Runs counts started tenant runs; Errs the subset that failed.
	Runs int64
	Errs int64
	// Machines is the pool size, P the per-machine processor count.
	Machines int
	P        int
	// Store is the shared schedule store's counters (hits, builds,
	// disk hits, singleflight waits, entries, evictions).
	Store forall.StoreStats
	// Pool is the engine payload buffer pool's counters.
	Pool comm.PoolStats
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Runs:     s.runs.Load(),
		Errs:     s.errs.Load(),
		Machines: s.cfg.Machines,
		P:        s.cfg.P,
		Store:    s.store.Stats(),
		Pool:     forall.PayloadPoolStats(),
	}
}
