package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kali/internal/machine"
)

const httpTestProgram = `processors Procs : array[1..P] with P in 1..64;
const n = 16;
      m = 15;
var a : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
  for i in 1..n do
    a[i] := float(i);
  end;
  forall i in 1..m on a[i].loc do
    a[i] := a[i+1];
  end;
end.
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{P: 4, Machines: 2, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestHTTPRun(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?print=a", "text/plain", strings.NewReader(httpTestProgram))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.P <= 0 {
		t.Fatalf("response P = %d", rr.P)
	}
	a := rr.Arrays["a"]
	if len(a) != 16 {
		t.Fatalf("printed array has %d elements, want 16", len(a))
	}
	// The shift leaves a[i] = i+1 for i < n and a[n] = n.
	for i := 0; i < 15; i++ {
		if a[i] != float64(i+2) {
			t.Fatalf("a[%d] = %g, want %d", i+1, a[i], i+2)
		}
	}
	if rr.Report.Builds == 0 {
		t.Fatal("report carries no build count")
	}
}

func TestHTTPCompileError(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run", "text/plain", strings.NewReader("begin end"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" {
		t.Fatal("empty error message")
	}
}

func TestHTTPMethodAndStats(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d, want 405", resp.StatusCode)
	}

	if _, err := http.Post(ts.URL+"/run", "text/plain", strings.NewReader(httpTestProgram)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.Machines != 2 || st.P != srv.P() {
		t.Fatalf("stats = %+v, want 1 run on a 2-machine P=4 pool", st)
	}
}
