package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"kali/internal/core"
)

// maxProgramBytes bounds a POST /run body; Kali programs are small.
const maxProgramBytes = 1 << 20

// RunResponse is the JSON body POST /run returns.
type RunResponse struct {
	// P is the processor count the real estate agent chose.
	P int `json:"p"`
	// Report is the run's timing/traffic report, including the
	// Builds/SharedHits/StoreHits schedule-sharing counters.
	Report core.Report `json:"report"`
	// Arrays holds the final contents of the arrays named in the
	// request's ?print= list (omitted otherwise).
	Arrays map[string][]float64 `json:"arrays,omitempty"`
	// Scalars holds final scalar values when ?print= was given.
	Scalars map[string]float64 `json:"scalars,omitempty"`
}

type errResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP interface:
//
//	POST /run?print=a,b  — body is .kali source; compiles and executes
//	                       it on the pool and returns a RunResponse.
//	                       Compile errors are 422, runtime errors 500.
//	GET  /stats          — returns a Stats snapshot as JSON.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST a .kali program to /run"})
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, maxProgramBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	if len(src) > maxProgramBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errResponse{Error: "program too large"})
		return
	}
	res, err := s.Run(string(src))
	if err != nil {
		status := http.StatusInternalServerError
		if res == nil {
			// No result means the program never ran: a compile or
			// elaboration failure, i.e. the client's fault.
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, errResponse{Error: err.Error()})
		return
	}
	resp := RunResponse{P: res.P, Report: res.Report}
	if names := r.URL.Query().Get("print"); names != "" {
		resp.Arrays = map[string][]float64{}
		resp.Scalars = map[string]float64{}
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if a, ok := res.Arrays[name]; ok {
				resp.Arrays[name] = a
			}
			if v, ok := res.Scalars[name]; ok {
				resp.Scalars[name] = v
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
