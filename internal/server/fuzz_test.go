package server

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kali/internal/core"
	"kali/internal/lang"
	"kali/internal/lang/langtest"
	"kali/internal/machine"
)

// diffServer is the concurrency analogue of the language package's
// VM-vs-walker differential: one random program run solo (fresh
// machine, no store) is the oracle; K copies of it racing each other —
// and a differently-shaped perturbing neighbor — through one server
// must all reproduce the oracle's arrays, scalars and traffic exactly.
// Simulated times are excluded: who wins the build race decides who
// pays build cost vs adoption cost, but never what the program
// computes or sends.
func diffServer(t *testing.T, src, perturbSrc string, k int) {
	t.Helper()
	const p = 8
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	want, err := prog.Run(core.Config{P: p, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatalf("solo run: %v\n%s", err, src)
	}

	srv, err := New(Config{P: p, Machines: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*lang.Result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Run(src)
			if err != nil {
				t.Errorf("tenant %d: %v\n%s", i, err, src)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Run(perturbSrc); err != nil {
			t.Errorf("perturber: %v\n%s", err, perturbSrc)
		}
	}()
	wg.Wait()

	for i, res := range results {
		if res == nil {
			continue // already reported
		}
		if res.P != want.P {
			t.Fatalf("tenant %d chose P=%d, solo chose %d", i, res.P, want.P)
		}
		for name, w := range want.Arrays {
			g := res.Arrays[name]
			for j := range w {
				if g[j] != w[j] {
					t.Fatalf("tenant %d: %s[%d] = %v, solo %v\n%s", i, name, j+1, g[j], w[j], src)
				}
			}
		}
		for name, w := range want.IntArrays {
			g := res.IntArrays[name]
			for j := range w {
				if g[j] != w[j] {
					t.Fatalf("tenant %d: %s[%d] = %d, solo %d\n%s", i, name, j+1, g[j], w[j], src)
				}
			}
		}
		for name, w := range want.Scalars {
			if g := res.Scalars[name]; g != w {
				t.Fatalf("tenant %d: %s = %v, solo %v\n%s", i, name, g, w, src)
			}
		}
		r, w := res.Report, want.Report
		if r.MsgsSent != w.MsgsSent || r.BytesSent != w.BytesSent ||
			r.FusedMsgs != w.FusedMsgs || r.FusedBytes != w.FusedBytes ||
			r.RedistMsgs != w.RedistMsgs || r.RedistBytes != w.RedistBytes {
			t.Fatalf("tenant %d traffic diverges: got %d msgs/%d bytes (%d/%d fused, %d/%d redist), solo %d/%d (%d/%d, %d/%d)\n%s",
				i, r.MsgsSent, r.BytesSent, r.FusedMsgs, r.FusedBytes, r.RedistMsgs, r.RedistBytes,
				w.MsgsSent, w.BytesSent, w.FusedMsgs, w.FusedBytes, w.RedistMsgs, w.RedistBytes, src)
		}
	}
}

// TestQuickServerDifferential is the fixed-budget CI version of the
// racing-tenants property.
func TestQuickServerDifferential(t *testing.T) {
	f := func(seed int64) bool {
		src := langtest.GenVMProgram(rand.New(rand.NewSource(seed)))
		perturb := langtest.GenProgram(rand.New(rand.NewSource(seed + 1)))
		diffServer(t, src, perturb, 3)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// FuzzServerDifferential is the native-fuzzing entry point for the
// same property; `go test -fuzz=FuzzServerDifferential` explores seeds
// beyond the fixed quick.Check budget.
func FuzzServerDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1990, 123456789} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := langtest.GenVMProgram(rand.New(rand.NewSource(seed)))
		perturb := langtest.GenProgram(rand.New(rand.NewSource(seed + 1)))
		diffServer(t, src, perturb, 3)
	})
}
