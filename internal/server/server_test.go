package server

import (
	"sync"
	"testing"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
)

// tenantResult is what one tenant observed: the gathered array and the
// structural half of the report.  Simulated times are deliberately
// excluded — adopting a schedule from the store charges instantiation
// cost instead of build cost, so times depend on which tenant wins the
// build race; contents and traffic must not.
type tenantResult struct {
	out   []float64
	msgs  int
	bytes int
}

// jacobiTenant is the Go-API workload tenants run: a few Jacobi sweeps
// over n points starting from a per-tenant initial scale, with the
// final array gathered.  Identical (n, sweeps) across tenants means
// identical schedule structure — shareable — while scale differences
// keep the *data* distinct, so any cross-tenant buffer bleed shows up
// as wrong values.
func jacobiTenant(n int, scale float64, sweeps int, res *tenantResult, mu *sync.Mutex) func(*core.Context) {
	return func(ctx *core.Context) {
		a := ctx.BlockArray("a", n)
		b := ctx.BlockArray("b", n)
		a.EachLocal(func(gl int) { a.Set1(gl, scale*float64(gl)) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		loop := &forall.Loop{
			Name: "jacobi", Lo: 2, Hi: n - 1,
			On: b, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{
				{Array: a, Affine: &analysis.Affine{A: 1, C: -1}},
				{Array: a, Affine: &analysis.Affine{A: 1, C: 1}},
			},
			Body: func(i int, e *forall.Env) {
				e.Write(b, i, 0.5*(e.Read(a, i-1)+e.Read(a, i+1)))
			},
		}
		back := &forall.Loop{
			Name: "copyback", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: b, Affine: &analysis.Affine{A: 1, C: 0}}},
			Body: func(i int, e *forall.Env) {
				e.Write(a, i, e.Read(b, i))
			},
		}
		for s := 0; s < sweeps; s++ {
			ctx.Forall(loop)
			ctx.Forall(back)
		}
		mu.Lock()
		b.EachLocal(func(gl int) { res.out[gl] = b.Get1(gl) })
		mu.Unlock()
	}
}

// solo runs the same workload isolated — fresh machine, no shared
// store — producing the oracle a server tenant must match exactly.
func solo(t *testing.T, p, n int, scale float64, sweeps int) tenantResult {
	t.Helper()
	res := tenantResult{out: make([]float64, n+1)}
	var mu sync.Mutex
	rep := core.Run(core.Config{P: p, Params: machine.Ideal()},
		jacobiTenant(n, scale, sweeps, &res, &mu))
	res.msgs, res.bytes = rep.MsgsSent, rep.BytesSent
	return res
}

func checkTenant(t *testing.T, id int, got tenantResult, want tenantResult) {
	t.Helper()
	if got.msgs != want.msgs || got.bytes != want.bytes {
		t.Errorf("tenant %d: traffic %d msgs/%d bytes, solo %d msgs/%d bytes",
			id, got.msgs, got.bytes, want.msgs, want.bytes)
	}
	for i := range want.out {
		if got.out[i] != want.out[i] {
			t.Errorf("tenant %d: b[%d] = %g, solo %g", id, i, got.out[i], want.out[i])
			return
		}
	}
}

// TestConcurrentIdenticalTenants: K tenants racing the same program
// through one server match the isolated oracle bit-for-bit, and the
// store builds each schedule exactly once machine-wide (singleflight).
func TestConcurrentIdenticalTenants(t *testing.T) {
	const p, n, K, sweeps = 4, 64, 12, 3
	want := solo(t, p, n, 1, sweeps)
	srv, err := New(Config{P: p, Machines: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]tenantResult, K)
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		results[k] = tenantResult{out: make([]float64, n+1)}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var mu sync.Mutex
			rep, err := srv.RunFunc(jacobiTenant(n, 1, sweeps, &results[k], &mu))
			if err != nil {
				t.Errorf("tenant %d: %v", k, err)
				return
			}
			results[k].msgs, results[k].bytes = rep.MsgsSent, rep.BytesSent
		}(k)
	}
	wg.Wait()
	for k := range results {
		checkTenant(t, k, results[k], want)
	}
	// Two shareable shapes (jacobi, copyback) on p nodes: exactly 2p
	// builds however many tenants raced, everything else adopted.
	st := srv.Stats()
	if st.Store.Builds != 2*p {
		t.Fatalf("store builds = %d, want %d (singleflight)", st.Store.Builds, 2*p)
	}
	if wantHits := int64((K - 1) * 2 * p); st.Store.Hits != wantHits {
		t.Fatalf("store hits = %d, want %d", st.Store.Hits, wantHits)
	}
	if st.Runs != K || st.Errs != 0 {
		t.Fatalf("stats runs=%d errs=%d, want %d/0", st.Runs, st.Errs, K)
	}
}

// TestConcurrentDistinctTenantsNoBleed: tenants with different data on
// both shared shapes (same n, different scale — schedules shared) and
// private shapes (different n) all match their own oracle: schedule
// sharing must never leak one tenant's elements into another's arrays.
func TestConcurrentDistinctTenantsNoBleed(t *testing.T) {
	const p, K, sweeps = 4, 12, 2
	srv, err := New(Config{P: p, Machines: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	ns := make([]int, K)
	scales := make([]float64, K)
	wants := make([]tenantResult, K)
	for k := 0; k < K; k++ {
		ns[k] = 48 + 16*(k%3) // three shapes shared across tenants
		scales[k] = float64(k + 1)
		wants[k] = solo(t, p, ns[k], scales[k], sweeps)
	}
	results := make([]tenantResult, K)
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		results[k] = tenantResult{out: make([]float64, ns[k]+1)}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var mu sync.Mutex
			rep, err := srv.RunFunc(jacobiTenant(ns[k], scales[k], sweeps, &results[k], &mu))
			if err != nil {
				t.Errorf("tenant %d: %v", k, err)
				return
			}
			results[k].msgs, results[k].bytes = rep.MsgsSent, rep.BytesSent
		}(k)
	}
	wg.Wait()
	for k := range results {
		checkTenant(t, k, results[k], wants[k])
	}
	if st := srv.Stats(); st.Store.Hits == 0 {
		t.Fatal("no cross-tenant sharing despite repeated shapes")
	}
}

// TestConcurrentChurn: tenants keep matching their oracle while
// neighbors invalidate schedules, redistribute arrays mid-run, and a
// tiny store capacity forces eviction churn underneath everyone.
func TestConcurrentChurn(t *testing.T) {
	const p, n, K, sweeps = 4, 64, 8, 3
	want := solo(t, p, n, 1, sweeps)
	srv, err := New(Config{P: p, Machines: 4, Params: machine.Ideal(), StoreCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Perturbers: redistribute block→cyclic→block mid-run, invalidate
	// their schedule cache between sweeps, and cycle through distinct
	// bounds so blueprints keep entering (and evicting from) the store.
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				m := 16 + 4*((k+round)%5)
				_, err := srv.RunFunc(func(ctx *core.Context) {
					a := ctx.BlockArray("pa", m)
					a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
					shift := &forall.Loop{
						Name: "pshift", Lo: 1, Hi: m - 1,
						On: a, OnF: analysis.Identity,
						Reads: []forall.ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
						Body: func(i int, e *forall.Env) {
							e.Write(a, i, e.Read(a, i+1))
						},
					}
					ctx.Forall(shift)
					ctx.Redistribute(a, dist.CyclicDim())
					ctx.Eng.Invalidate("pshift")
					ctx.Forall(shift)
					ctx.Redistribute(a, dist.BlockDim())
					ctx.Eng.InvalidateAll()
					ctx.Forall(shift)
				})
				if err != nil {
					t.Errorf("perturber %d round %d: %v", k, round, err)
				}
			}
		}(k)
	}
	// Victims: the plain workload, checked against the oracle.
	results := make([]tenantResult, K)
	for k := 0; k < K; k++ {
		results[k] = tenantResult{out: make([]float64, n+1)}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var mu sync.Mutex
			rep, err := srv.RunFunc(jacobiTenant(n, 1, sweeps, &results[k], &mu))
			if err != nil {
				t.Errorf("tenant %d: %v", k, err)
				return
			}
			results[k].msgs, results[k].bytes = rep.MsgsSent, rep.BytesSent
		}(k)
	}
	wg.Wait()
	for k := range results {
		checkTenant(t, k, results[k], want)
	}
}

// TestPoolStatsMidExecution: the payload pool and store counters are
// readable while tenants are mid-flight — the data-race regression
// test for comm.BufPool.Stats (run under -race in CI).
func TestPoolStatsMidExecution(t *testing.T) {
	const p, n, K = 4, 96, 8
	srv, err := New(Config{P: p, Machines: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Stats()
			if st.Pool.Gets < st.Pool.News {
				t.Errorf("pool gets %d < news %d", st.Pool.Gets, st.Pool.News)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		res := tenantResult{out: make([]float64, n+1)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mu sync.Mutex
			if _, err := srv.RunFunc(jacobiTenant(n, 1, 4, &res, &mu)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	if st := srv.Stats(); st.Pool.Gets == 0 {
		t.Fatal("payload pool never used — counter wiring broken")
	}
}

// TestServerRecoversAfterTenantPanic: a panicking tenant surfaces as
// an error, and the pooled machine it poisoned runs the next tenant
// normally (pool of one forces reuse of exactly that machine).
func TestServerRecoversAfterTenantPanic(t *testing.T) {
	const p, n = 4, 48
	want := solo(t, p, n, 1, 2)
	srv, err := New(Config{P: p, Machines: 1, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunFunc(func(ctx *core.Context) {
		if ctx.ID() == 1 {
			panic("tenant bug")
		}
		ctx.Barrier()
	}); err == nil {
		t.Fatal("panicking tenant reported no error")
	}
	res := tenantResult{out: make([]float64, n+1)}
	var mu sync.Mutex
	rep, err := srv.RunFunc(jacobiTenant(n, 1, 2, &res, &mu))
	if err != nil {
		t.Fatalf("run after panic: %v", err)
	}
	res.msgs, res.bytes = rep.MsgsSent, rep.BytesSent
	checkTenant(t, 0, res, want)
	if st := srv.Stats(); st.Errs != 1 || st.Runs != 2 {
		t.Fatalf("stats runs=%d errs=%d, want 2/1", st.Runs, st.Errs)
	}
}

// TestWarmStartKaliServer: a second server on the same cache directory
// revives every schedule from disk — its first tenant builds nothing —
// and produces bit-identical arrays.
func TestWarmStartKaliServer(t *testing.T) {
	const src = `processors Procs : array[1..P] with P in 1..64;
const n = 24;
      m = 23;
var a : array[1..n] of real dist by [block] on Procs;
    b : array[1..n] of real dist by [cyclic] on Procs;
    i : integer;
begin
  for i in 1..n do
    a[i] := float(i) * 2.0;
    b[i] := 0.0;
  end;
  forall i in 1..m on b[i].loc do
    b[i] := a[i+1] + a[i];
  end;
end.
`
	dir := t.TempDir()
	cold, err := New(Config{P: 4, Machines: 2, Params: machine.Ideal(), CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := cold.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Report.Builds == 0 {
		t.Fatal("cold run built nothing")
	}

	warm, err := New(Config{P: 4, Machines: 2, Params: machine.Ideal(), CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := warm.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.Builds != 0 {
		t.Fatalf("warm run built %d schedules, want 0", res2.Report.Builds)
	}
	if res2.Report.StoreHits == 0 {
		t.Fatal("warm run adopted nothing")
	}
	if st := warm.Stats(); st.Store.DiskHits == 0 {
		t.Fatalf("warm store stats %+v: no disk hits", st.Store)
	}
	for name, want := range res1.Arrays {
		got := res2.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %g warm, want %g cold", name, i+1, got[i], want[i])
			}
		}
	}
}

// TestCompileErrorDoesNotHoldMachine: a bad program fails before
// acquiring a machine, so even a busy pool rejects it immediately.
func TestCompileErrorDoesNotHoldMachine(t *testing.T) {
	srv, err := New(Config{P: 2, Machines: 1, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run("this is not kali"); err == nil {
		t.Fatal("garbage compiled")
	}
	if st := srv.Stats(); st.Runs != 0 {
		t.Fatalf("compile failure counted as a run (runs=%d)", st.Runs)
	}
}
