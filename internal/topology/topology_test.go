package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Fatal("expected error for rank-0 grid")
	}
	if _, err := NewGrid(4, 0); err == nil {
		t.Fatal("expected error for zero extent")
	}
	if _, err := NewGrid(-2); err == nil {
		t.Fatal("expected error for negative extent")
	}
}

func TestGridLinearCoordRoundTrip(t *testing.T) {
	g := MustGrid(3, 4, 5)
	if g.Size() != 60 || g.Rank() != 3 {
		t.Fatalf("size/rank wrong: %d/%d", g.Size(), g.Rank())
	}
	for id := 0; id < g.Size(); id++ {
		c := g.Coord(id)
		if got := g.Linear(c...); got != id {
			t.Fatalf("round trip failed: %d -> %v -> %d", id, c, got)
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	g := MustGrid(2, 3)
	// Row-major: (0,0)=0 (0,1)=1 (0,2)=2 (1,0)=3 ...
	if g.Linear(0, 2) != 2 || g.Linear(1, 0) != 3 || g.Linear(1, 2) != 5 {
		t.Fatal("row-major linearization wrong")
	}
}

func TestGridPanics(t *testing.T) {
	g := MustGrid(2, 2)
	for _, f := range []func(){
		func() { g.Linear(0) },     // wrong rank
		func() { g.Linear(2, 0) },  // out of range
		func() { g.Linear(0, -1) }, // negative
		func() { g.Coord(4) },      // id too big
		func() { g.Coord(-1) },     // id negative
		func() { MustGrid(0) },     // bad extent
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGridNeighbors(t *testing.T) {
	g := MustGrid(3, 3)
	// Center of a 3x3 grid has 4 neighbors, corner has 2.
	center := g.Linear(1, 1)
	if n := g.Neighbors(center); len(n) != 4 {
		t.Fatalf("center neighbors = %v", n)
	}
	corner := g.Linear(0, 0)
	n := g.Neighbors(corner)
	if len(n) != 2 {
		t.Fatalf("corner neighbors = %v", n)
	}
	want := map[int]bool{g.Linear(1, 0): true, g.Linear(0, 1): true}
	for _, id := range n {
		if !want[id] {
			t.Fatalf("unexpected corner neighbor %d", id)
		}
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		minP, maxP, avail int
		want              int
		wantErr           bool
	}{
		{1, 128, 128, 128, false},
		{1, 128, 100, 64, false}, // round down to power of two
		{1, 50, 128, 32, false},  // capped by maxP then rounded
		{1, 1, 16, 1, false},
		{100, 128, 100, 100, false}, // pow-of-two 64 < minP, keep 100
		{10, 5, 16, 0, true},        // invalid bounds
		{8, 16, 4, 0, true},         // too few available
		{0, 4, 4, 0, true},          // minP < 1
	}
	for _, c := range cases {
		got, err := Choose(c.minP, c.maxP, c.avail)
		if (err != nil) != c.wantErr {
			t.Errorf("Choose(%d,%d,%d) err = %v", c.minP, c.maxP, c.avail, err)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("Choose(%d,%d,%d) = %d, want %d", c.minP, c.maxP, c.avail, got, c.want)
		}
	}
}

func TestGrayCodeAdjacent(t *testing.T) {
	// Successive Gray codes differ in exactly one bit.
	for i := 0; i < 255; i++ {
		x := GrayCode(i) ^ GrayCode(i+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("GrayCode(%d) and GrayCode(%d) differ in %b", i, i+1, x)
		}
	}
}

func TestGrayDecodeInverts(t *testing.T) {
	for i := 0; i < 1024; i++ {
		if got := GrayDecode(GrayCode(i)); got != i {
			t.Fatalf("GrayDecode(GrayCode(%d)) = %d", i, got)
		}
	}
}

func TestHypercubeRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewHypercube(MustGrid(3)); err == nil {
		t.Fatal("expected error for extent 3")
	}
	if _, err := NewHypercube(MustGrid(4, 6)); err == nil {
		t.Fatal("expected error for extent 6")
	}
}

func TestHypercubeDims(t *testing.T) {
	h, err := NewHypercube(MustGrid(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim() != 5 || h.Nodes() != 32 {
		t.Fatalf("dim=%d nodes=%d", h.Dim(), h.Nodes())
	}
}

func TestHypercubeAddressBijective(t *testing.T) {
	h, err := NewHypercube(MustGrid(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for id := 0; id < 32; id++ {
		a := h.Address(id)
		if a < 0 || a >= h.Nodes() || seen[a] {
			t.Fatalf("address %d for proc %d invalid or duplicated", a, id)
		}
		seen[a] = true
		if got := h.ProcID(a); got != id {
			t.Fatalf("ProcID(Address(%d)) = %d", id, got)
		}
	}
}

// TestHypercubeNeighborsOneHop: grid neighbors are single-hop hypercube
// neighbors thanks to the Gray-code embedding (DESIGN.md §6).
func TestHypercubeNeighborsOneHop(t *testing.T) {
	for _, extents := range [][]int{{16}, {4, 4}, {2, 8}, {2, 2, 4}} {
		g := MustGrid(extents...)
		h, err := NewHypercube(g)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.Size(); id++ {
			for _, nb := range g.Neighbors(id) {
				if hops := h.Hops(id, nb); hops != 1 {
					t.Fatalf("grid %v: procs %d,%d are grid neighbors but %d hops apart",
						extents, id, nb, hops)
				}
			}
		}
	}
}

func TestHopsSymmetricZeroDiagonal(t *testing.T) {
	h, _ := NewHypercube(MustGrid(8))
	for p := 0; p < 8; p++ {
		if h.Hops(p, p) != 0 {
			t.Fatal("self distance must be 0")
		}
		for q := 0; q < 8; q++ {
			if h.Hops(p, q) != h.Hops(q, p) {
				t.Fatal("hops must be symmetric")
			}
		}
	}
}

// TestQuickGridRoundTrip: Linear∘Coord = id for random grids.
func TestQuickGridRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		ext := make([]int, rank)
		for i := range ext {
			ext[i] = 1 + r.Intn(6)
		}
		g := MustGrid(ext...)
		id := r.Intn(g.Size())
		return g.Linear(g.Coord(id)...) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGrayHammingIsPath: Hamming distance between Gray codes of
// i and j is at most the number of bits — sanity bound used by the
// machine cost model.
func TestQuickGrayHammingIsPath(t *testing.T) {
	h, _ := NewHypercube(MustGrid(64))
	f := func(a, b uint8) bool {
		p, q := int(a)%64, int(b)%64
		d := h.Hops(p, q)
		return d >= 0 && d <= 6 && (d == 0) == (p == q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGridMetadataAccessors(t *testing.T) {
	g := MustGrid(3, 5)
	if e := g.Extents(); e[0] != 3 || e[1] != 5 {
		t.Fatalf("Extents = %v", e)
	}
	g.Extents()[0] = 99
	if g.Extent(0) != 3 {
		t.Fatal("Extents aliased internal state")
	}
	if g.String() != "Grid[3 5]" {
		t.Fatalf("String = %q", g.String())
	}
}
