// Package topology models Kali processor arrays (paper §2.1) and
// their embedding into hypercube machines.
//
// A Kali program declares a processor array such as
//
//	processors Procs : array[1..P] with P in 1..max_procs;
//
// The "real estate agent" (Seitz's term, quoted in the paper) picks a
// concrete P at run time within the declared bounds; the paper's
// implementation picks the largest feasible P, which is what Choose
// does.  Multi-dimensional processor arrays are supported and are
// embedded into the physical hypercube using binary-reflected Gray
// codes, so that neighbors in the processor grid are neighbors (single
// link hops) in the hypercube whenever each grid extent is a power of
// two.
package topology

import (
	"fmt"
	"math/bits"
)

// Grid is a concrete multi-dimensional processor array.  Processor
// coordinates are 0-based internally; Kali-level 1-based indexing is
// handled by the language front end.
type Grid struct {
	extents []int // length = rank, product = P
	strides []int // row-major strides for linearization
	size    int
}

// NewGrid builds a processor grid with the given per-dimension extents.
func NewGrid(extents ...int) (*Grid, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("topology: grid needs at least one dimension")
	}
	size := 1
	for i, e := range extents {
		if e <= 0 {
			return nil, fmt.Errorf("topology: dimension %d has non-positive extent %d", i, e)
		}
		size *= e
	}
	g := &Grid{
		extents: append([]int(nil), extents...),
		strides: make([]int, len(extents)),
		size:    size,
	}
	stride := 1
	for i := len(extents) - 1; i >= 0; i-- {
		g.strides[i] = stride
		stride *= extents[i]
	}
	return g, nil
}

// MustGrid is NewGrid that panics on error, for tests and literals.
func MustGrid(extents ...int) *Grid {
	g, err := NewGrid(extents...)
	if err != nil {
		panic(err)
	}
	return g
}

// Rank returns the number of grid dimensions.
func (g *Grid) Rank() int { return len(g.extents) }

// Size returns the total number of processors P.
func (g *Grid) Size() int { return g.size }

// Extent returns the extent of dimension d.
func (g *Grid) Extent(d int) int { return g.extents[d] }

// Extents returns a copy of all extents.
func (g *Grid) Extents() []int { return append([]int(nil), g.extents...) }

// Linear converts grid coordinates to a linear processor id in
// [0, Size).  It panics on out-of-range coordinates.
func (g *Grid) Linear(coord ...int) int {
	if len(coord) != len(g.extents) {
		panic(fmt.Sprintf("topology: coordinate rank %d != grid rank %d", len(coord), len(g.extents)))
	}
	id := 0
	for i, c := range coord {
		if c < 0 || c >= g.extents[i] {
			panic(fmt.Sprintf("topology: coordinate %d out of range [0,%d) in dim %d", c, g.extents[i], i))
		}
		id += c * g.strides[i]
	}
	return id
}

// Coord converts a linear processor id back to grid coordinates.
func (g *Grid) Coord(id int) []int {
	if id < 0 || id >= g.size {
		panic(fmt.Sprintf("topology: processor id %d out of range [0,%d)", id, g.size))
	}
	out := make([]int, len(g.extents))
	for i, s := range g.strides {
		out[i] = id / s
		id %= s
	}
	return out
}

// Neighbors returns the linear ids of the grid-adjacent processors
// (±1 in each dimension, no wraparound).
func (g *Grid) Neighbors(id int) []int {
	coord := g.Coord(id)
	var out []int
	for d := range coord {
		for _, delta := range []int{-1, 1} {
			c := coord[d] + delta
			if c < 0 || c >= g.extents[d] {
				continue
			}
			coord[d] = c
			out = append(out, g.Linear(coord...))
			coord[d] -= delta
		}
	}
	return out
}

func (g *Grid) String() string {
	return fmt.Sprintf("Grid%v", g.extents)
}

// Choose implements the real estate agent: given declared bounds
// [minP, maxP] and the number of physical processors avail, it returns
// the largest feasible P, preferring powers of two (hypercube
// allocations come in powers of two).  An error is returned when even
// minP processors cannot be provided.
func Choose(minP, maxP, avail int) (int, error) {
	if minP < 1 || maxP < minP {
		return 0, fmt.Errorf("topology: invalid processor bounds [%d,%d]", minP, maxP)
	}
	if avail < minP {
		return 0, fmt.Errorf("topology: need at least %d processors, only %d available", minP, avail)
	}
	p := avail
	if p > maxP {
		p = maxP
	}
	// Round down to a power of two if one fits within bounds; hypercube
	// subcubes are power-of-two sized.
	pow := 1 << uint(bits.Len(uint(p))-1)
	if pow >= minP {
		return pow, nil
	}
	return p, nil
}

// GrayCode returns the i-th binary-reflected Gray code.
func GrayCode(i int) int { return i ^ (i >> 1) }

// GrayDecode inverts GrayCode.
func GrayDecode(gc int) int {
	n := 0
	for gc != 0 {
		n ^= gc
		gc >>= 1
	}
	return n
}

// Hypercube embeds a processor grid into a hypercube with node ids
// being physical hypercube addresses.  Each grid dimension d with
// extent 2^k is assigned k address bits; the grid coordinate in that
// dimension is Gray-coded into those bits so grid neighbors differ in
// exactly one address bit.
type Hypercube struct {
	grid    *Grid
	dimBits []int // bits assigned to each grid dimension
	dim     int   // total hypercube dimension
}

// NewHypercube embeds grid into the smallest hypercube that holds it.
// Every grid extent must be a power of two (the paper's "basic
// assumption ... natural for hypercubes").
func NewHypercube(grid *Grid) (*Hypercube, error) {
	h := &Hypercube{grid: grid}
	for d := 0; d < grid.Rank(); d++ {
		e := grid.Extent(d)
		if e&(e-1) != 0 {
			return nil, fmt.Errorf("topology: extent %d of dim %d is not a power of two", e, d)
		}
		k := bits.Len(uint(e)) - 1
		h.dimBits = append(h.dimBits, k)
		h.dim += k
	}
	return h, nil
}

// Dim returns the hypercube dimension (log2 of node count).
func (h *Hypercube) Dim() int { return h.dim }

// Nodes returns the number of hypercube nodes, 2^Dim.
func (h *Hypercube) Nodes() int { return 1 << uint(h.dim) }

// Address maps a linear grid processor id to its hypercube node
// address.  Per-dimension coordinates are Gray-coded into disjoint
// bit fields.
func (h *Hypercube) Address(id int) int {
	coord := h.grid.Coord(id)
	addr := 0
	shift := 0
	for d := h.grid.Rank() - 1; d >= 0; d-- {
		addr |= GrayCode(coord[d]) << uint(shift)
		shift += h.dimBits[d]
	}
	return addr
}

// ProcID inverts Address.
func (h *Hypercube) ProcID(addr int) int {
	coord := make([]int, h.grid.Rank())
	shift := 0
	for d := h.grid.Rank() - 1; d >= 0; d-- {
		mask := (1 << uint(h.dimBits[d])) - 1
		coord[d] = GrayDecode((addr >> uint(shift)) & mask)
		shift += h.dimBits[d]
	}
	return h.grid.Linear(coord...)
}

// Hops returns the hypercube distance (Hamming distance of addresses)
// between two grid processors — the number of link traversals a
// message needs on the physical machine.
func (h *Hypercube) Hops(p, q int) int {
	return bits.OnesCount(uint(h.Address(p) ^ h.Address(q)))
}
