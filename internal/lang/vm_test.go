package lang

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// findForall returns the n-th forall statement of the program, walking
// into sequential control flow.
func findForall(ss []Stmt, n int) *Forall {
	count := 0
	var find func(ss []Stmt) *Forall
	find = func(ss []Stmt) *Forall {
		for _, s := range ss {
			switch s := s.(type) {
			case *Forall:
				if count == n {
					return s
				}
				count++
			case *ForLoop:
				if fa := find(s.Body); fa != nil {
					return fa
				}
			case *While:
				if fa := find(s.Body); fa != nil {
					return fa
				}
			case *If:
				if fa := find(s.Then); fa != nil {
					return fa
				}
				if fa := find(s.Else); fa != nil {
					return fa
				}
			}
		}
		return nil
	}
	return find(ss)
}

// TestVMReplayAllocationFree: once a forall's schedule is cached and
// its vmState built, replaying the compiled body — including a
// nonlocal affine read, a local stencil read, a builtin call and a
// conditional — performs zero heap allocations across the whole
// machine.  This is the property the bytecode VM exists for: the tree
// walker allocates a scope map and boxed values per element.
func TestVMReplayAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 64;
var u, v : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
  for i in 1..n do
    u[i] := float(i) * 0.5;
    v[i] := float(n - i);
  end;
  forall i in 2..n-1 on u[i].loc do
    var t : real;
    t := v[i-1] + v[i+1];
    if t > u[i] then
      u[i] := min(t, u[i] + 1.0);
    else
      u[i] := max(t, u[i] - 1.0);
    end;
  end;
end.
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	el, err := prog.elaborate(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(el.compiled) == 0 {
		t.Fatal("no compiled bodies — VM not engaged")
	}
	fa := findForall(prog.file.Main, 0)
	if fa == nil {
		t.Fatal("no forall in program")
	}

	const warmup, reps = 5, 20
	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)

	var mallocs uint64
	var mu sync.Mutex
	cfg := core.Config{P: el.procP, Params: machine.Ideal()}
	core.Run(cfg, func(ctx *core.Context) {
		in := newInterp(prog.file, ctx, el)
		in.declareArrays()
		in.execStmts(prog.file.Main, nil, nil)
		// Warmup replays grow the payload pool to the pattern's peak
		// demand; the per-replay barriers keep a fast node from racing
		// ahead and forcing growth at an arbitrary later point.
		for k := 0; k < warmup; k++ {
			in.execStmt(fa, nil, nil)
			ctx.Node.Barrier()
		}

		var before, after runtime.MemStats
		ctx.Node.Barrier()
		if ctx.Node.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		ctx.Node.Barrier()
		for k := 0; k < reps; k++ {
			in.execStmt(fa, nil, nil)
			ctx.Node.Barrier()
		}
		ctx.Node.Barrier()
		if ctx.Node.ID() == 0 {
			runtime.ReadMemStats(&after)
			mu.Lock()
			mallocs = after.Mallocs - before.Mallocs
			mu.Unlock()
		}
		ctx.Node.Barrier()
	})
	if mallocs != 0 {
		t.Fatalf("steady-state VM replay allocated %d objects over %d replays, want 0", mallocs, reps)
	}
}

// TestVMStrengthReduction: affine subscripts compile to opLinI (or
// vanish for the identity), never to general expression code.
func TestVMStrengthReduction(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 32;
var a, b : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
  for i in 1..n do a[i] := float(i); b[i] := 0.0; end;
  forall i in 1..n div 2 on b[2*i].loc do
    b[2*i] := a[2*i-1];
  end;
end.
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	el, err := prog.elaborate(2)
	if err != nil {
		t.Fatal(err)
	}
	fa := findForall(prog.file.Main, 0)
	cb := el.compiled[fa]
	if cb == nil {
		t.Fatal("forall not compiled")
	}
	lin, mul := 0, 0
	for _, ins := range cb.code {
		switch ins.op {
		case opLinI:
			lin++
		case opMulI, opSubI:
			mul++
		}
	}
	if lin != 2 {
		t.Fatalf("want 2 opLinI (2*i and 2*i-1), got %d in %d instrs", lin, len(cb.code))
	}
	if mul != 0 {
		t.Fatalf("affine subscripts must strength-reduce, found %d general int ops", mul)
	}
}

// TestVMConstantFolding: const subexpressions collapse into pinned
// registers — no arithmetic instructions — while still charging the
// walker's flops (checked by the differential tests; here we check the
// instruction stream shape).
func TestVMConstantFolding(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 16;
      w = 4;
var a : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
  for i in 1..n do a[i] := 0.0; end;
  forall i in 1..n on a[i].loc do
    a[i] := 1.0 / float(w * 2);
  end;
end.
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	el, err := prog.elaborate(2)
	if err != nil {
		t.Fatal(err)
	}
	cb := el.compiled[findForall(prog.file.Main, 0)]
	if cb == nil {
		t.Fatal("forall not compiled")
	}
	for _, ins := range cb.code {
		switch ins.op {
		case opDivF, opMulI, opIntToF:
			t.Fatalf("constant expression 1.0/float(w*2) must fold, found %v", ins.op)
		}
	}
	// The folded flops (mul, float, div) must still be charged.
	flops := int32(0)
	for _, ins := range cb.code {
		if ins.op == opFlops {
			flops += ins.a
		}
	}
	if flops != 3 {
		t.Fatalf("folded body must charge 3 flops (mul, float, div), charges %d", flops)
	}
}

// TestVMScalarRebinding: a global scalar read inside a forall is
// re-bound at every launch — a second execution after the scalar
// changes must see the new value.
func TestVMScalarRebinding(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 16;
var a : array[1..n] of real dist by [block] on Procs;
    scale : real;
    i, rep : integer;
begin
  for i in 1..n do a[i] := 1.0; end;
  for rep in 1..3 do
    scale := float(rep) * 10.0;
    forall i in 1..n on a[i].loc do
      a[i] := a[i] + scale;
    end;
  end;
end.
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(core.Config{P: 2, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 10 + 20 + 30 = 61 everywhere.
	for i, v := range res.Arrays["a"] {
		if v != 61.0 {
			t.Fatalf("a[%d] = %g, want 61 (scalar not re-bound per launch)", i+1, v)
		}
	}
}
