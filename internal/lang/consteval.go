package lang

import "math"

// This file is the one constant-expression evaluator behind every
// elaboration-time context: const declarations (folded at Check time
// when they do not depend on P), array bounds, dist-clause block sizes
// and map owner tables, affine subscript coefficients, and the
// bytecode compiler's sizing of array slots.  It replaces the two
// historical copies that used to live in interp.go (`evaluator` and
// `evalCoeff`), and unlike them it detects integer overflow and
// division by zero in constant contexts, reporting both as positioned
// *Error diagnostics instead of silently wrapping or dying with a bare
// Go runtime panic.
//
// Run-time arithmetic inside forall bodies deliberately keeps Go's
// wrapping semantics (see arith in interp.go and the VM's integer
// ops); only declared constants get the checked treatment, because a
// wrong constant poisons every distribution and schedule built from
// it.

// constEval evaluates constant expressions over an environment of
// already-elaborated constant values.  Errors panic as *Error; use try
// for a non-panicking entry point.
type constEval struct {
	consts map[string]value
}

// val evaluates e, panicking with a positioned *Error on non-constant
// subexpressions, unknown names, overflow, or division by zero.
func (ce *constEval) val(e Expr) value {
	switch e := e.(type) {
	case *IntLit:
		return intVal(e.V)
	case *RealLit:
		return realVal(e.V)
	case *Ident:
		v, ok := ce.consts[e.Name]
		if !ok {
			panic(errf(e.Line, 1, "unknown constant %q", e.Name))
		}
		return v
	case *Unary:
		if e.Op != MINUS {
			panic(errf(e.Line, 1, "operator %s is not allowed in constant expressions", e.Op))
		}
		v := ce.val(e.X)
		if v.t == TInt {
			if v.i == math.MinInt {
				panic(errf(e.Line, 1, "constant overflow negating %d", v.i))
			}
			return intVal(-v.i)
		}
		return realVal(-v.f)
	case *Binary:
		l := ce.val(e.L)
		r := ce.val(e.R)
		return constArith(e.Op, l, r, e.Line)
	default:
		panic(errf(lineOf(e), 1, "expression is not constant"))
	}
}

// intVal evaluates e and requires an integer result.
func (ce *constEval) intVal(e Expr) int {
	v := ce.val(e)
	if v.t != TInt {
		panic(errf(lineOf(e), 1, "constant expression is not an integer"))
	}
	return v.i
}

// coeff evaluates a possibly-nil affine coefficient expression (nil
// encodes 0, per checker.affineOf).
func (ce *constEval) coeff(e Expr) int {
	if e == nil {
		return 0
	}
	return ce.intVal(e)
}

// try is val with the panic converted back into an error return, for
// callers (the checker) that report diagnostics instead of unwinding.
func (ce *constEval) try(e Expr) (v value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*Error); ok {
				err = le
				return
			}
			panic(r)
		}
	}()
	return ce.val(e), nil
}

// constArith is arith (interp.go) restricted to the operators the
// checker admits in constant expressions, with checked integer
// arithmetic.  Real division by zero follows IEEE (yields ±Inf) just
// like the run-time path.
func constArith(op Kind, l, r value, line int) value {
	bothInt := l.t == TInt && r.t == TInt
	switch op {
	case PLUS:
		if bothInt {
			s := l.i + r.i
			if (l.i > 0 && r.i > 0 && s < 0) || (l.i < 0 && r.i < 0 && s >= 0) {
				panic(errf(line, 1, "constant overflow in %d + %d", l.i, r.i))
			}
			return intVal(s)
		}
		return realVal(l.asReal() + r.asReal())
	case MINUS:
		if bothInt {
			s := l.i - r.i
			if (l.i >= 0 && r.i < 0 && s < 0) || (l.i < 0 && r.i > 0 && s >= 0) {
				panic(errf(line, 1, "constant overflow in %d - %d", l.i, r.i))
			}
			return intVal(s)
		}
		return realVal(l.asReal() - r.asReal())
	case STAR:
		if bothInt {
			p := l.i * r.i
			if l.i != 0 && (p/l.i != r.i || (l.i == -1 && r.i == math.MinInt)) {
				panic(errf(line, 1, "constant overflow in %d * %d", l.i, r.i))
			}
			return intVal(p)
		}
		return realVal(l.asReal() * r.asReal())
	case SLASH:
		return realVal(l.asReal() / r.asReal())
	case KWDiv:
		if r.i == 0 {
			panic(errf(line, 1, "constant division by zero"))
		}
		if l.i == math.MinInt && r.i == -1 {
			panic(errf(line, 1, "constant overflow in %d div %d", l.i, r.i))
		}
		return intVal(l.i / r.i)
	case KWMod:
		if r.i == 0 {
			panic(errf(line, 1, "constant mod by zero"))
		}
		return intVal(l.i % r.i)
	default:
		panic(errf(line, 1, "operator %s is not allowed in constant expressions", op))
	}
}

// lineOf extracts the source line of an expression node.
func lineOf(e Expr) int {
	switch e := e.(type) {
	case *IntLit:
		return e.Line
	case *RealLit:
		return e.Line
	case *BoolLit:
		return e.Line
	case *Ident:
		return e.Line
	case *ArrayRef:
		return e.Line
	case *Unary:
		return e.Line
	case *Binary:
		return e.Line
	case *Call:
		return e.Line
	}
	return 0
}

// foldConsts evaluates every const declaration that does not
// (transitively) depend on the processor count P and caches the result
// on the AST node (ConstDecl.Folded/Val).  It runs at Check time so
// overflow and division-by-zero diagnostics surface with source
// positions at compile time, and so elaboration and the bytecode
// compiler reuse one result instead of re-walking the expressions.
// P-dependent constants stay unfolded; Program.elaborate evaluates
// them once the real estate agent has chosen P.
func foldConsts(f *File) error {
	consts := map[string]value{}
	pDep := map[string]bool{}
	if sv := f.Procs.SizeVar; sv != "" {
		pDep[sv] = true
	}
	for _, d := range f.Consts {
		depends := false
		walkExpr(d.X, func(x Expr) {
			if id, ok := x.(*Ident); ok && pDep[id.Name] {
				depends = true
			}
		})
		if depends {
			pDep[d.Name] = true
			d.Folded = false
			continue
		}
		ce := &constEval{consts: consts}
		v, err := ce.try(d.X)
		if err != nil {
			return err
		}
		d.Folded, d.Val = true, v
		consts[d.Name] = v
	}
	return nil
}
