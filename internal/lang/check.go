package lang

import "fmt"

// symKind classifies a declared name.
type symKind int

const (
	symConst symKind = iota
	symScalar
	symArray
	symProcSize // the P of the processors declaration
)

// symbol is a checker-level binding.
type symbol struct {
	kind symKind
	typ  BaseType
	decl *VarDecl // for arrays
}

// checker performs semantic analysis and the subscript classification
// of paper §3: each distributed-array reference in a forall is proved
// affine (compile-time analyzable) or marked indirect (inspector).
type checker struct {
	syms  map[string]*symbol
	procs *ProcsDecl
	// redist names every array the program redistributes.  Such arrays
	// lose the compiler-proven "aligned" shortcut: alignment was proved
	// against the declared distribution, which a redistribute statement
	// invalidates at run time, so their reads take the schedule paths
	// that consult the live distribution instead.
	redist map[string]bool
}

// Check validates a parsed File and annotates its foralls.
func Check(f *File) error {
	c := &checker{syms: map[string]*symbol{}, redist: map[string]bool{}}
	if f.Procs == nil {
		return errf(1, 1, "program lacks a processors declaration")
	}
	collectRedist(f.Main, c.redist)
	c.procs = f.Procs
	if f.Procs.SizeVar != "" {
		c.syms[f.Procs.SizeVar] = &symbol{kind: symProcSize, typ: TInt}
	}
	for _, d := range f.Consts {
		if _, dup := c.syms[d.Name]; dup {
			return errf(d.Line, 1, "duplicate declaration of %q", d.Name)
		}
		t, err := c.exprType(d.X, nil, "")
		if err != nil {
			return err
		}
		if t == TBool {
			return errf(d.Line, 1, "boolean constants are not supported")
		}
		if !c.isConstExpr(d.X) {
			return errf(d.Line, 1, "const %q is not a constant expression", d.Name)
		}
		c.syms[d.Name] = &symbol{kind: symConst, typ: t}
	}
	for _, d := range f.Vars {
		for _, name := range d.Names {
			if _, dup := c.syms[name]; dup {
				return errf(d.Line, 1, "duplicate declaration of %q", name)
			}
			if len(d.Dims) == 0 {
				c.syms[name] = &symbol{kind: symScalar, typ: d.Elem}
				continue
			}
			if d.Dist != nil {
				if len(d.Dist) != len(d.Dims) {
					return errf(d.Line, 1, "%q: %d dist items for %d dimensions", name, len(d.Dist), len(d.Dims))
				}
				if d.OnTo != "" && d.OnTo != c.procs.Name {
					return errf(d.Line, 1, "%q: unknown processor array %q", name, d.OnTo)
				}
				if d.Elem == TBool {
					return errf(d.Line, 1, "%q: distributed boolean arrays are not supported", name)
				}
				if err := c.distItems(d.Line, name, d.Dist); err != nil {
					return err
				}
			}
			for _, dim := range d.Dims {
				for _, b := range []Expr{dim.Lo, dim.Hi} {
					if !c.isConstExpr(b) {
						return errf(d.Line, 1, "%q: array bounds must be constant expressions", name)
					}
				}
			}
			c.syms[name] = &symbol{kind: symArray, typ: d.Elem, decl: d}
		}
	}
	if err := c.stmts(f.Main, nil, ""); err != nil {
		return err
	}
	// Evaluate P-independent constants now (cached on the AST), so
	// overflow and division-by-zero surface as positioned compile-time
	// diagnostics rather than run-time panics.
	return foldConsts(f)
}

// distributed reports whether an array declaration has a dist clause.
func distributed(d *VarDecl) bool { return d.Dist != nil }

// locals is the per-forall local scope (loop variable + var decls).
type locals map[string]BaseType

// stmts checks a statement list.  loc is non-nil inside a forall (with
// loopVar set); inside sequential for/while bodies nested in a forall
// the same loc flows through.
func (c *checker) stmts(ss []Stmt, loc locals, loopVar string) error {
	for _, s := range ss {
		if err := c.stmt(s, loc, loopVar); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt, loc locals, loopVar string) error {
	switch s := s.(type) {
	case *Assign:
		return c.assign(s, loc, loopVar)
	case *Forall:
		if loc != nil {
			return errf(s.Line, 1, "nested forall loops are not supported")
		}
		return c.forall(s)
	case *ForLoop:
		// Pascal style: the loop variable may be a declared integer
		// scalar; otherwise it is implicitly declared for the loop.
		if loc != nil {
			if t, dup := loc[s.Var]; dup {
				if t != TInt {
					return errf(s.Line, 1, "loop variable %q is not an integer", s.Var)
				}
			} else {
				loc[s.Var] = TInt
				defer delete(loc, s.Var)
			}
		} else if sym, dup := c.syms[s.Var]; dup {
			if sym.kind != symScalar || sym.typ != TInt {
				return errf(s.Line, 1, "loop variable %q is not an integer scalar", s.Var)
			}
		} else {
			c.syms[s.Var] = &symbol{kind: symScalar, typ: TInt}
			defer delete(c.syms, s.Var)
		}
		for _, b := range []Expr{s.Lo, s.Hi} {
			t, err := c.exprType(b, loc, loopVar)
			if err != nil {
				return err
			}
			if t != TInt {
				return errf(s.Line, 1, "for bounds must be integers")
			}
		}
		return c.stmts(s.Body, loc, loopVar)
	case *While:
		if loc != nil {
			return errf(s.Line, 1, "while inside forall is not supported")
		}
		t, err := c.exprType(s.Cond, loc, loopVar)
		if err != nil {
			return err
		}
		if t != TBool {
			return errf(s.Line, 1, "while condition must be boolean")
		}
		return c.stmts(s.Body, loc, loopVar)
	case *If:
		t, err := c.exprType(s.Cond, loc, loopVar)
		if err != nil {
			return err
		}
		if t != TBool {
			return errf(s.Line, 1, "if condition must be boolean")
		}
		if err := c.stmts(s.Then, loc, loopVar); err != nil {
			return err
		}
		return c.stmts(s.Else, loc, loopVar)
	case *Reduce:
		if loc != nil {
			return errf(s.Line, 1, "reduce inside forall is not supported")
		}
		return c.reduce(s)
	case *Redistribute:
		if loc != nil {
			return errf(s.Line, 1, "redistribute inside forall is not supported")
		}
		return c.redistribute(s)
	default:
		return fmt.Errorf("lang: unknown statement %T", s)
	}
}

// redistribute checks a "redistribute name as [items]" statement: the
// target must be a distributed real array, the item list must match
// its rank, and the items must obey the same constraints a
// declaration's dist clause does.
func (c *checker) redistribute(s *Redistribute) error {
	sym := c.syms[s.Name]
	if sym == nil || sym.kind != symArray || !distributed(sym.decl) || sym.typ != TReal {
		return errf(s.Line, 1, "redistribute target %q must be a distributed real array", s.Name)
	}
	if len(s.Items) != len(sym.decl.Dims) {
		return errf(s.Line, 1, "%q: %d dist items for %d dimensions", s.Name, len(s.Items), len(sym.decl.Dims))
	}
	return c.distItems(s.Line, s.Name, s.Items)
}

// distItems validates one dist-clause item list — shared by array
// declarations and redistribute statements.  Map owner expressions are
// evaluated per index at elaboration time, so they may use only
// constants, P, and the bound index variable; block_cyclic sizes must
// be constant; and the number of distributed (non-*) dimensions must
// match the processor array's rank (§2.2).
func (c *checker) distItems(line int, name string, items []DistItem) error {
	nd := 0
	for _, item := range items {
		switch item.Kind {
		case STAR:
			continue
		case KWBlockCyclic:
			if !c.isConstExpr(item.Block) {
				return errf(line, 1, "%q: block_cyclic size must be a constant expression", name)
			}
		case KWMap:
			t, err := c.exprType(item.MapExpr, locals{item.MapVar: TInt}, "")
			if err != nil {
				return err
			}
			if t != TInt {
				return errf(line, 1, "%q: map owner expression must be an integer", name)
			}
			if !c.constWith(item.MapExpr, item.MapVar) {
				return errf(line, 1, "%q: map owner expression must be computable from constants, P, and %q",
					name, item.MapVar)
			}
		}
		nd++
	}
	procRank := 1
	if c.procs.Rank2() {
		procRank = 2
	}
	if nd != procRank {
		return errf(line, 1, "%q: %d distributed dimensions but processor array has rank %d",
			name, nd, procRank)
	}
	return nil
}

// collectRedist records the names of redistributed arrays, recursing
// through every statement list (foralls included — a redistribute in
// one is an error, but the classification pass runs regardless).
func collectRedist(ss []Stmt, set map[string]bool) {
	for _, s := range ss {
		switch s := s.(type) {
		case *Redistribute:
			set[s.Name] = true
		case *Forall:
			collectRedist(s.Body, set)
		case *ForLoop:
			collectRedist(s.Body, set)
		case *While:
			collectRedist(s.Body, set)
		case *If:
			collectRedist(s.Then, set)
			collectRedist(s.Else, set)
		}
	}
}

func (c *checker) reduce(s *Reduce) error {
	sym := c.syms[s.Into]
	if sym == nil || sym.kind != symScalar || sym.typ != TReal {
		return errf(s.Line, 1, "reduce target %q must be a real scalar", s.Into)
	}
	wantArgs := map[string]int{"maxdiff": 2, "sum": 1, "max": 1, "min": 1}
	n, ok := wantArgs[s.Op]
	if !ok {
		return errf(s.Line, 1, "unknown reduction %q (maxdiff, sum, max, min)", s.Op)
	}
	if len(s.Args) != n {
		return errf(s.Line, 1, "reduce %s takes %d array(s)", s.Op, n)
	}
	for _, a := range s.Args {
		as := c.syms[a]
		if as == nil || as.kind != symArray || as.typ != TReal || !distributed(as.decl) {
			return errf(s.Line, 1, "reduce argument %q must be a distributed real array", a)
		}
	}
	return nil
}

func (c *checker) assign(s *Assign, loc locals, loopVar string) error {
	// Resolve the LHS.
	if loc != nil {
		if t, ok := loc[s.Name]; ok {
			if len(s.Indexes) != 0 {
				return errf(s.Line, 1, "%q is a scalar", s.Name)
			}
			return c.checkAssignable(s, t, loc, loopVar)
		}
	}
	sym := c.syms[s.Name]
	if sym == nil {
		return errf(s.Line, 1, "undeclared name %q", s.Name)
	}
	switch sym.kind {
	case symConst, symProcSize:
		return errf(s.Line, 1, "cannot assign to constant %q", s.Name)
	case symScalar:
		if len(s.Indexes) != 0 {
			return errf(s.Line, 1, "%q is a scalar", s.Name)
		}
		if loc != nil {
			return errf(s.Line, 1, "assignment to global scalar %q inside forall", s.Name)
		}
		return c.checkAssignable(s, sym.typ, loc, loopVar)
	case symArray:
		d := sym.decl
		if len(s.Indexes) != len(d.Dims) {
			return errf(s.Line, 1, "%q has %d dimensions, %d indexes given", s.Name, len(d.Dims), len(s.Indexes))
		}
		for _, ix := range s.Indexes {
			t, err := c.exprType(ix, loc, loopVar)
			if err != nil {
				return err
			}
			if t != TInt {
				return errf(s.Line, 1, "array index must be an integer")
			}
		}
		if loc != nil {
			// Inside a forall: owner-computes writes, reals only.
			if !distributed(d) {
				return errf(s.Line, 1, "write to replicated array %q inside forall", s.Name)
			}
			if d.Elem != TReal {
				return errf(s.Line, 1, "only real arrays may be written inside forall")
			}
		}
		return c.checkAssignable(s, d.Elem, loc, loopVar)
	}
	return nil
}

func (c *checker) checkAssignable(s *Assign, want BaseType, loc locals, loopVar string) error {
	t, err := c.exprType(s.X, loc, loopVar)
	if err != nil {
		return err
	}
	if want == t {
		return nil
	}
	if want == TReal && t == TInt { // implicit widening
		return nil
	}
	return errf(s.Line, 1, "cannot assign %s to %s", t, want)
}

// forall checks the loop and performs subscript classification.
func (c *checker) forall(fa *Forall) error {
	if fa.Var2 != "" {
		return c.forall2(fa)
	}
	if fa.OnIndex2 != nil {
		return errf(fa.Line, 1, "two on-clause subscripts need a two-index forall")
	}
	onSym := c.syms[fa.OnArray]
	if onSym == nil || onSym.kind != symArray || !distributed(onSym.decl) || len(onSym.decl.Dims) != 1 {
		return errf(fa.Line, 1, "on clause needs a distributed one-dimensional array, got %q", fa.OnArray)
	}
	loc := locals{fa.Var: TInt}
	for _, d := range fa.Decls {
		if _, dup := loc[d.Name]; dup {
			return errf(d.Line, 1, "duplicate forall local %q", d.Name)
		}
		// Locals may shadow global scalars (each iteration has its own
		// copy, Figure 4 style), but not arrays — an ArrayRef to the
		// name would silently change meaning.
		if s, shadow := c.syms[d.Name]; shadow && s.kind == symArray {
			return errf(d.Line, 1, "forall local %q shadows an array", d.Name)
		}
		loc[d.Name] = d.Type
	}
	for _, b := range []Expr{fa.Lo, fa.Hi} {
		t, err := c.exprType(b, nil, "")
		if err != nil {
			return err
		}
		if t != TInt {
			return errf(fa.Line, 1, "forall bounds must be integers")
		}
	}
	// The on-clause subscript must be affine in the loop variable.
	if _, _, ok := c.affineOf(fa.OnIndex, fa.Var); !ok {
		return errf(fa.Line, 1, "on clause subscript must be affine in %q", fa.Var)
	}
	if t, err := c.exprType(fa.OnIndex, loc, fa.Var); err != nil {
		return err
	} else if t != TInt {
		return errf(fa.Line, 1, "on clause subscript must be an integer")
	}

	if err := c.stmts(fa.Body, loc, fa.Var); err != nil {
		return err
	}
	// Classification pass: annotate every array reference in the body.
	return c.classify(fa)
}

// forall2 checks a two-index forall over a 2-D processor array:
// "forall i in a..b, j in c..d on A[fI(i), fJ(j)].loc do ... end".
// Each on-clause subscript must be affine in its own index variable
// (identity, shifted, strided, or reflected placement — paper §3.1
// lifted per dimension); body references aligned with [i,j] under an
// identity on clause are local, per-dimension affine reads get
// compile-time schedules, all other distributed reads go through the
// inspector.
func (c *checker) forall2(fa *Forall) error {
	if !c.procs.Rank2() {
		return errf(fa.Line, 1, "two-index forall needs a 2-D processor array")
	}
	onSym := c.syms[fa.OnArray]
	if onSym == nil || onSym.kind != symArray || !distributed(onSym.decl) || len(onSym.decl.Dims) != 2 {
		return errf(fa.Line, 1, "on clause needs a distributed two-dimensional array, got %q", fa.OnArray)
	}
	if fa.OnIndex2 == nil {
		return errf(fa.Line, 1, "2-D on clause needs two subscripts")
	}
	if fa.Var == fa.Var2 {
		return errf(fa.Line, 1, "forall index variables must differ")
	}
	// Per-dimension affine on-clause subscripts with nonzero
	// coefficients: the first may mention only the first index
	// variable, the second only the second (cross-variable forms are
	// not affine in their own variable, because loop variables are not
	// constants).
	if aE, _, ok := c.affineOf(fa.OnIndex, fa.Var); !ok || aE == nil {
		return errf(fa.Line, 1, "on clause subscript must be affine in %q", fa.Var)
	}
	if aE, _, ok := c.affineOf(fa.OnIndex2, fa.Var2); !ok || aE == nil {
		return errf(fa.Line, 1, "on clause subscript must be affine in %q", fa.Var2)
	}
	loc := locals{fa.Var: TInt, fa.Var2: TInt}
	for _, e := range []Expr{fa.OnIndex, fa.OnIndex2} {
		if t, err := c.exprType(e, loc, fa.Var); err != nil {
			return err
		} else if t != TInt {
			return errf(fa.Line, 1, "on clause subscript must be an integer")
		}
	}
	for _, d := range fa.Decls {
		if _, dup := loc[d.Name]; dup {
			return errf(d.Line, 1, "duplicate forall local %q", d.Name)
		}
		if s, shadow := c.syms[d.Name]; shadow && s.kind == symArray {
			return errf(d.Line, 1, "forall local %q shadows an array", d.Name)
		}
		loc[d.Name] = d.Type
	}
	for _, b := range []Expr{fa.Lo, fa.Hi, fa.Lo2, fa.Hi2} {
		t, err := c.exprType(b, nil, "")
		if err != nil {
			return err
		}
		if t != TInt {
			return errf(fa.Line, 1, "forall bounds must be integers")
		}
	}
	if err := c.stmts(fa.Body, loc, fa.Var); err != nil {
		return err
	}
	return c.classify2(fa)
}

// slotNumberer assigns the forall's array slots: each distinct real
// (or integer) array read in the body gets a slot in first-reference
// order, recorded on the ArrayRef and in the forall's slot name lists.
// The bytecode compiler binds VM array slots from this numbering.
type slotNumberer struct {
	fa    *Forall
	reals map[string]int
	ints  map[string]int
}

func newSlotNumberer(fa *Forall) *slotNumberer {
	fa.slotNames, fa.intSlotNames = nil, nil
	return &slotNumberer{fa: fa, reals: map[string]int{}, ints: map[string]int{}}
}

func (sn *slotNumberer) real(ref *ArrayRef) {
	k, ok := sn.reals[ref.Name]
	if !ok {
		k = len(sn.fa.slotNames)
		sn.reals[ref.Name] = k
		sn.fa.slotNames = append(sn.fa.slotNames, ref.Name)
	}
	ref.slot = k
}

func (sn *slotNumberer) integer(ref *ArrayRef) {
	k, ok := sn.ints[ref.Name]
	if !ok {
		k = len(sn.fa.intSlotNames)
		sn.ints[ref.Name] = k
		sn.fa.intSlotNames = append(sn.fa.intSlotNames, ref.Name)
	}
	ref.slot = k
}

// classify2 annotates references inside a two-index forall: aligned
// [i,j] accesses under an identity on clause are local; reads whose
// subscripts are per-dimension affine — X[aI*i+cI, aJ*j+cJ] — get
// compile-time schedules from the rank-2 closed forms; everything else
// uses the inspector.
func (c *checker) classify2(fa *Forall) error {
	// The [i,j]-aligned local shortcut is sound only when placement is
	// the identity "on A[i,j].loc"; under a shifted/strided on clause
	// even an identically-subscripted read of the on array itself can
	// be remote, so it must take the affine schedule path below.
	onIdentity := false
	if i1, ok1 := fa.OnIndex.(*Ident); ok1 {
		if i2, ok2 := fa.OnIndex2.(*Ident); ok2 {
			onIdentity = i1.Name == fa.Var && i2.Name == fa.Var2
		}
	}
	seenIndirect := map[string]bool{}
	seenDep := map[string]bool{}
	sn := newSlotNumberer(fa)
	var err error
	walkStmts(fa.Body, func(e Expr) {
		if err != nil {
			return
		}
		ref, ok := e.(*ArrayRef)
		if !ok {
			return
		}
		sym := c.syms[ref.Name]
		if sym == nil || sym.kind != symArray {
			return
		}
		d := sym.decl
		if !distributed(d) {
			ref.access = accReplicated
			if d.Elem == TInt {
				sn.integer(ref)
			} else {
				sn.real(ref)
			}
			return
		}
		if d.Elem == TInt {
			ref.access = accAligned
			sn.integer(ref)
			if !seenDep[ref.Name] {
				seenDep[ref.Name] = true
				fa.deps = append(fa.deps, ref.Name)
			}
			return
		}
		sn.real(ref)
		if len(d.Dims) == 2 {
			// The [i,j] shortcut is provably local only when the read
			// array shares the on array's declaration (hence its dist
			// clause); an identically-subscripted array with a different
			// distribution goes through the affine path below, which
			// derives whatever communication the mismatch needs.
			i1, ok1 := ref.Indexes[0].(*Ident)
			i2, ok2 := ref.Indexes[1].(*Ident)
			if onIdentity && ok1 && ok2 && i1.Name == fa.Var && i2.Name == fa.Var2 &&
				d == c.syms[fa.OnArray].decl &&
				!c.redist[ref.Name] && !c.redist[fa.OnArray] {
				ref.access = accAligned
				return
			}
			// Per-dimension affine: the first subscript in the first
			// loop variable only, the second in the second only (a
			// subscript mentioning the other variable is not affine in
			// its own, because loop variables are not constants).
			aIE, cIE, okI := c.affineOf(ref.Indexes[0], fa.Var)
			aJE, cJE, okJ := c.affineOf(ref.Indexes[1], fa.Var2)
			if okI && okJ {
				ref.access = accAffine
				fa.reads = append(fa.reads, &readInfo{
					array: ref.Name, affine2: true,
					aIExpr: aIE, cIExpr: cIE, aJExpr: aJE, cJExpr: cJE,
				})
				return
			}
		}
		ref.access = accIndirect
		if !seenIndirect[ref.Name] {
			seenIndirect[ref.Name] = true
			fa.reads = append(fa.reads, &readInfo{array: ref.Name})
		}
	})
	return err
}

// classify walks the forall body annotating ArrayRef reads and
// collecting the loop's read slots and dependencies.
func (c *checker) classify(fa *Forall) error {
	seenIndirect := map[string]bool{}
	seenDep := map[string]bool{}
	sn := newSlotNumberer(fa)
	var err error
	walkStmts(fa.Body, func(e Expr) {
		if err != nil {
			return
		}
		ref, ok := e.(*ArrayRef)
		if !ok {
			return
		}
		sym := c.syms[ref.Name]
		if sym == nil || sym.kind != symArray {
			return // already diagnosed by type checking
		}
		d := sym.decl
		if !distributed(d) {
			ref.access = accReplicated
			if d.Elem == TInt {
				sn.integer(ref)
			} else {
				sn.real(ref)
			}
			return
		}
		if d.Elem == TInt {
			// Subscript arrays travel with the loop (aligned); their
			// contents drive the reference pattern.
			ref.access = accAligned
			sn.integer(ref)
			if !seenDep[ref.Name] {
				seenDep[ref.Name] = true
				fa.deps = append(fa.deps, ref.Name)
			}
			return
		}
		sn.real(ref)
		switch len(d.Dims) {
		case 1:
			if aE, cE, ok := c.affineOf(ref.Indexes[0], fa.Var); ok {
				ref.access = accAffine
				fa.reads = append(fa.reads, &readInfo{array: ref.Name, affine: true, aExpr: aE, cExpr: cE})
				return
			}
			ref.access = accIndirect
			if !seenIndirect[ref.Name] {
				seenIndirect[ref.Name] = true
				fa.reads = append(fa.reads, &readInfo{array: ref.Name})
			}
		case 2:
			// Aligned rank-2 read: first subscript is exactly the loop
			// variable and so is the on-clause subscript.  Arrays the
			// program redistributes (or placement arrays that move) lose
			// the shortcut: alignment held for the declared layouts only.
			if id, ok := ref.Indexes[0].(*Ident); ok && id.Name == fa.Var &&
				!c.redist[ref.Name] && !c.redist[fa.OnArray] {
				if onID, ok2 := fa.OnIndex.(*Ident); ok2 && onID.Name == fa.Var {
					ref.access = accAligned
					return
				}
			}
			ref.access = accIndirect
			if !seenIndirect[ref.Name] {
				seenIndirect[ref.Name] = true
				fa.reads = append(fa.reads, &readInfo{array: ref.Name})
			}
		default:
			err = errf(ref.Line, 1, "arrays of rank > 2 are not supported in foralls")
		}
	})
	return err
}

// affineOf tries to express e as a*loopVar + c with loop-invariant
// constant expressions a and c.  Returned exprs may be nil (meaning 0).
func (c *checker) affineOf(e Expr, loopVar string) (aE, cE Expr, ok bool) {
	switch e := e.(type) {
	case *IntLit:
		return nil, e, true
	case *Ident:
		if e.Name == loopVar {
			return &IntLit{V: 1, Line: e.Line}, nil, true
		}
		if c.isConstExpr(e) {
			return nil, e, true
		}
		return nil, nil, false
	case *Unary:
		if e.Op != MINUS {
			return nil, nil, false
		}
		a1, c1, ok := c.affineOf(e.X, loopVar)
		if !ok {
			return nil, nil, false
		}
		return negExpr(a1), negExpr(c1), true
	case *Binary:
		switch e.Op {
		case PLUS, MINUS:
			a1, c1, ok1 := c.affineOf(e.L, loopVar)
			a2, c2, ok2 := c.affineOf(e.R, loopVar)
			if !ok1 || !ok2 {
				return nil, nil, false
			}
			if e.Op == MINUS {
				a2, c2 = negExpr(a2), negExpr(c2)
			}
			return addExprs(a1, a2), addExprs(c1, c2), true
		case STAR:
			// const * linear or linear * const
			if c.isConstExpr(e.L) {
				a2, c2, ok := c.affineOf(e.R, loopVar)
				if !ok {
					return nil, nil, false
				}
				return mulExprs(e.L, a2), mulExprs(e.L, c2), true
			}
			if c.isConstExpr(e.R) {
				a1, c1, ok := c.affineOf(e.L, loopVar)
				if !ok {
					return nil, nil, false
				}
				return mulExprs(e.R, a1), mulExprs(e.R, c1), true
			}
			return nil, nil, false
		default:
			if c.isConstExpr(e) {
				return nil, e, true
			}
			return nil, nil, false
		}
	default:
		if c.isConstExpr(e) {
			return nil, e, true
		}
		return nil, nil, false
	}
}

func negExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return &Unary{Op: MINUS, X: e}
}

func addExprs(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Binary{Op: PLUS, L: a, R: b}
}

func mulExprs(k, e Expr) Expr {
	if e == nil {
		return nil
	}
	return &Binary{Op: STAR, L: k, R: e}
}

// constWith is isConstExpr extended with one bound integer variable
// (the index of a map dist clause), restricted to the integer forms
// the elaboration evaluator computes: literals, consts, P, the bound
// variable, unary minus, and +, -, *, div, mod.
func (c *checker) constWith(e Expr, v string) bool {
	switch e := e.(type) {
	case *IntLit:
		return true
	case *Ident:
		if e.Name == v {
			return true
		}
		s := c.syms[e.Name]
		return s != nil && (s.kind == symConst || s.kind == symProcSize)
	case *Unary:
		return e.Op == MINUS && c.constWith(e.X, v)
	case *Binary:
		switch e.Op {
		case PLUS, MINUS, STAR, KWDiv, KWMod:
			return c.constWith(e.L, v) && c.constWith(e.R, v)
		}
		return false
	default:
		return false
	}
}

// isConstExpr reports whether e is evaluable at elaboration time:
// literals, consts, P, and arithmetic over them.
func (c *checker) isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *RealLit:
		return true
	case *Ident:
		s := c.syms[e.Name]
		return s != nil && (s.kind == symConst || s.kind == symProcSize)
	case *Unary:
		return e.Op == MINUS && c.isConstExpr(e.X)
	case *Binary:
		switch e.Op {
		case PLUS, MINUS, STAR, SLASH, KWDiv, KWMod:
			return c.isConstExpr(e.L) && c.isConstExpr(e.R)
		}
		return false
	default:
		return false
	}
}

// exprType infers and checks the type of an expression.
func (c *checker) exprType(e Expr, loc locals, loopVar string) (BaseType, error) {
	switch e := e.(type) {
	case *IntLit:
		return TInt, nil
	case *RealLit:
		return TReal, nil
	case *BoolLit:
		return TBool, nil
	case *Ident:
		if loc != nil {
			if t, ok := loc[e.Name]; ok {
				return t, nil
			}
		}
		s := c.syms[e.Name]
		if s == nil {
			return 0, errf(e.Line, 1, "undeclared name %q", e.Name)
		}
		if s.kind == symArray {
			return 0, errf(e.Line, 1, "array %q used without subscripts", e.Name)
		}
		return s.typ, nil
	case *ArrayRef:
		s := c.syms[e.Name]
		if s == nil || s.kind != symArray {
			return 0, errf(e.Line, 1, "%q is not an array", e.Name)
		}
		d := s.decl
		if len(e.Indexes) != len(d.Dims) {
			return 0, errf(e.Line, 1, "%q has %d dimensions, %d indexes given", e.Name, len(d.Dims), len(e.Indexes))
		}
		for _, ix := range e.Indexes {
			t, err := c.exprType(ix, loc, loopVar)
			if err != nil {
				return 0, err
			}
			if t != TInt {
				return 0, errf(e.Line, 1, "array index must be an integer")
			}
		}
		if loc == nil && distributed(d) {
			return 0, errf(e.Line, 1, "distributed array %q read outside a forall (use forall or reduce)", e.Name)
		}
		return d.Elem, nil
	case *Unary:
		t, err := c.exprType(e.X, loc, loopVar)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case MINUS:
			if t == TBool {
				return 0, errf(e.Line, 1, "cannot negate a boolean")
			}
			return t, nil
		case KWNot:
			if t != TBool {
				return 0, errf(e.Line, 1, "not needs a boolean")
			}
			return TBool, nil
		}
		return 0, errf(e.Line, 1, "bad unary operator")
	case *Binary:
		lt, err := c.exprType(e.L, loc, loopVar)
		if err != nil {
			return 0, err
		}
		rt, err := c.exprType(e.R, loc, loopVar)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case KWAnd, KWOr:
			if lt != TBool || rt != TBool {
				return 0, errf(e.Line, 1, "%s needs booleans", e.Op)
			}
			return TBool, nil
		case LT, LE, GT, GE, EQ, NE:
			if lt == TBool || rt == TBool {
				if lt != rt {
					return 0, errf(e.Line, 1, "cannot compare %s with %s", lt, rt)
				}
				return TBool, nil
			}
			return TBool, nil
		case KWDiv, KWMod:
			if lt != TInt || rt != TInt {
				return 0, errf(e.Line, 1, "%s needs integers", e.Op)
			}
			return TInt, nil
		case PLUS, MINUS, STAR:
			if lt == TBool || rt == TBool {
				return 0, errf(e.Line, 1, "arithmetic on booleans")
			}
			if lt == TReal || rt == TReal {
				return TReal, nil
			}
			return TInt, nil
		case SLASH:
			if lt == TBool || rt == TBool {
				return 0, errf(e.Line, 1, "arithmetic on booleans")
			}
			return TReal, nil
		}
		return 0, errf(e.Line, 1, "bad binary operator")
	case *Call:
		sig, ok := builtins[e.Name]
		if !ok {
			return 0, errf(e.Line, 1, "unknown function %q", e.Name)
		}
		if len(e.Args) != sig.args {
			return 0, errf(e.Line, 1, "%s takes %d argument(s)", e.Name, sig.args)
		}
		for _, a := range e.Args {
			t, err := c.exprType(a, loc, loopVar)
			if err != nil {
				return 0, err
			}
			if t == TBool {
				return 0, errf(e.Line, 1, "%s does not take booleans", e.Name)
			}
		}
		return sig.ret, nil
	default:
		return 0, fmt.Errorf("lang: unknown expression %T", e)
	}
}

// builtins lists the available intrinsic functions.
var builtins = map[string]struct {
	args int
	ret  BaseType
}{
	"abs":   {1, TReal},
	"sqrt":  {1, TReal},
	"min":   {2, TReal},
	"max":   {2, TReal},
	"float": {1, TReal},
	"trunc": {1, TInt},
}

// walkStmts calls f on every expression in a statement tree.
func walkStmts(ss []Stmt, f func(Expr)) {
	for _, s := range ss {
		switch s := s.(type) {
		case *Assign:
			for _, ix := range s.Indexes {
				walkExpr(ix, f)
			}
			walkExpr(s.X, f)
		case *Forall:
			walkExpr(s.Lo, f)
			walkExpr(s.Hi, f)
			walkExpr(s.Lo2, f)
			walkExpr(s.Hi2, f)
			walkExpr(s.OnIndex, f)
			walkExpr(s.OnIndex2, f)
			walkStmts(s.Body, f)
		case *ForLoop:
			walkExpr(s.Lo, f)
			walkExpr(s.Hi, f)
			walkStmts(s.Body, f)
		case *While:
			walkExpr(s.Cond, f)
			walkStmts(s.Body, f)
		case *If:
			walkExpr(s.Cond, f)
			walkStmts(s.Then, f)
			walkStmts(s.Else, f)
		case *Reduce:
			// no expressions
		}
	}
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *ArrayRef:
		for _, ix := range e.Indexes {
			walkExpr(ix, f)
		}
	case *Unary:
		walkExpr(e.X, f)
	case *Binary:
		walkExpr(e.L, f)
		walkExpr(e.R, f)
	case *Call:
		for _, a := range e.Args {
			walkExpr(a, f)
		}
	}
}
