package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kali/internal/core"
	"kali/internal/machine"
)

// genProgram builds a random but well-formed Kali program: a few
// arrays under random distributions, initialization loops, and a
// sequence of foralls mixing affine stencils and data-dependent
// gathers.  Results must not depend on the processor count — the
// fundamental guarantee of the global name space.
func genProgram(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	dists := []string{"block", "cyclic", fmt.Sprintf("block_cyclic(%d)", 1+r.Intn(4))}
	distA := dists[r.Intn(len(dists))]
	distB := dists[r.Intn(len(dists))]

	var b strings.Builder
	fmt.Fprintf(&b, "processors Procs : array[1..P] with P in 1..64;\n")
	fmt.Fprintf(&b, "const n = %d;\n", n)
	fmt.Fprintf(&b, "var a : array[1..n] of real dist by [%s] on Procs;\n", distA)
	fmt.Fprintf(&b, "    b : array[1..n] of real dist by [%s] on Procs;\n", distB)
	// perm drives subscripts inside "forall ... on b[i].loc", so it
	// must travel with b (the language's alignment rule for integer
	// subscript arrays).
	fmt.Fprintf(&b, "    perm : array[1..n] of integer dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    i : integer;\n")
	fmt.Fprintf(&b, "begin\n")
	fmt.Fprintf(&b, "  for i in 1..n do\n")
	fmt.Fprintf(&b, "    a[i] := float(i) * %d.0;\n", 1+r.Intn(5))
	fmt.Fprintf(&b, "    b[i] := float(i * i);\n")
	fmt.Fprintf(&b, "    perm[i] := (i * %d) mod n + 1;\n", 1+2*r.Intn(4)) // odd-ish stride
	fmt.Fprintf(&b, "  end;\n")

	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		switch r.Intn(3) {
		case 0: // affine stencil a[i] := b[i+c] + a[i]
			c := r.Intn(3) - 1
			lo, hi := 1, n
			if c > 0 {
				hi = n - c
			} else {
				lo = 1 - c
			}
			sub := "i"
			if c > 0 {
				sub = fmt.Sprintf("i+%d", c)
			} else if c < 0 {
				sub = fmt.Sprintf("i-%d", -c)
			}
			fmt.Fprintf(&b, "  forall i in %d..%d on a[i].loc do\n", lo, hi)
			fmt.Fprintf(&b, "    a[i] := b[%s] + a[i];\n", sub)
			fmt.Fprintf(&b, "  end;\n")
		case 1: // indirect gather b[i] := a[perm[i]]
			fmt.Fprintf(&b, "  forall i in 1..n do b[i] := a[ perm[i] ]; end;\n")
			// placeholder replaced below: lang requires on clause
		default: // strided update on even points
			fmt.Fprintf(&b, "  forall i in 1..n div 2 on a[2*i].loc do\n")
			fmt.Fprintf(&b, "    a[2*i] := a[2*i] * 0.5 + b[2*i-1];\n")
			fmt.Fprintf(&b, "  end;\n")
		}
	}
	fmt.Fprintf(&b, "end.\n")
	// Fix the on-clause-less forall emitted in case 1.
	return strings.ReplaceAll(b.String(),
		"forall i in 1..n do b[i] := a[ perm[i] ]; end;",
		"forall i in 1..n on b[i].loc do b[i] := a[ perm[i] ]; end;")
}

// TestQuickProgramsProcessorIndependent: every generated program
// yields bit-identical arrays on P = 1, 2 and 4.
func TestQuickProgramsProcessorIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program failed to compile: %v\n%s", err, src)
		}
		var ref *Result
		for _, p := range []int{1, 2, 4} {
			res, err := prog.Run(core.Config{P: p, Params: machine.Ideal()})
			if err != nil {
				t.Fatalf("P=%d: %v\n%s", p, err, src)
			}
			if ref == nil {
				ref = res
				continue
			}
			for name, want := range ref.Arrays {
				got := res.Arrays[name]
				for i := range want {
					if got[i] != want[i] {
						t.Logf("program:\n%s", src)
						t.Logf("P=%d: %s[%d] = %g, want %g", p, name, i+1, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProgramsDeterministicTiming: generated programs also have
// identical simulated time on repeated runs (full determinism).
func TestQuickProgramsDeterministicTiming(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := Compile(src)
		if err != nil {
			return false
		}
		r1, err1 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		r2, err2 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Report.Total == r2.Report.Total &&
			r1.Report.Inspector == r2.Report.Inspector
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
