package lang

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/core"
	"kali/internal/lang/langtest"
	"kali/internal/machine"
)

// TestQuickProgramsProcessorIndependent: every generated program
// yields bit-identical arrays on P = 1, 2 and 4.
func TestQuickProgramsProcessorIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenProgram(r)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program failed to compile: %v\n%s", err, src)
		}
		var ref *Result
		for _, p := range []int{1, 2, 4} {
			res, err := prog.Run(core.Config{P: p, Params: machine.Ideal()})
			if err != nil {
				t.Fatalf("P=%d: %v\n%s", p, err, src)
			}
			if ref == nil {
				ref = res
				continue
			}
			for name, want := range ref.Arrays {
				got := res.Arrays[name]
				for i := range want {
					if got[i] != want[i] {
						t.Logf("program:\n%s", src)
						t.Logf("P=%d: %s[%d] = %g, want %g", p, name, i+1, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// diffVMWalker runs src twice — once through the bytecode VM, once
// through the tree walker — and fails unless the final arrays are
// bit-identical and the simulated cost report (time, messages, bytes)
// matches exactly.  The VM must be observationally invisible.
func diffVMWalker(t *testing.T, src string, p int) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	cfg := core.Config{P: p, Params: machine.NCUBE7()}
	vm, err := prog.Run(cfg)
	if err != nil {
		t.Fatalf("vm run: %v\n%s", err, src)
	}
	prog.NoVM = true
	walk, err := prog.Run(cfg)
	prog.NoVM = false
	if err != nil {
		t.Fatalf("walker run: %v\n%s", err, src)
	}
	for name, want := range walk.Arrays {
		got := vm.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v (vm), want %v (walker)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	for name, want := range walk.IntArrays {
		got := vm.IntArrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %d (vm), want %d (walker)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	if vm.Report.Total != walk.Report.Total ||
		vm.Report.Inspector != walk.Report.Inspector ||
		vm.Report.Executor != walk.Report.Executor {
		t.Fatalf("simulated times diverge: vm total=%v insp=%v exec=%v, walker total=%v insp=%v exec=%v\n%s",
			vm.Report.Total, vm.Report.Inspector, vm.Report.Executor,
			walk.Report.Total, walk.Report.Inspector, walk.Report.Executor, src)
	}
	if vm.Report.MsgsSent != walk.Report.MsgsSent || vm.Report.BytesSent != walk.Report.BytesSent {
		t.Fatalf("traffic diverges: vm %d msgs/%d bytes, walker %d msgs/%d bytes\n%s",
			vm.Report.MsgsSent, vm.Report.BytesSent,
			walk.Report.MsgsSent, walk.Report.BytesSent, src)
	}
}

// TestQuickVMDifferential: every generated program produces
// bit-identical arrays and an identical cost report on the VM and the
// tree walker, across processor counts.
func TestQuickVMDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenVMProgram(r)
		for _, p := range []int{1, 3, 4} {
			diffVMWalker(t, src, p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzVMDifferential is the native-fuzzing entry point for the same
// property; `go test -fuzz=FuzzVMDifferential` explores seeds beyond
// the fixed quick.Check budget.
func FuzzVMDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1990, 123456789} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenVMProgram(r)
		diffVMWalker(t, src, 4)
	})
}

// diffFusion runs src with cross-loop aggregation on and off and
// fails unless the final arrays are bit-identical and the traffic
// differs only in the ways fusion is allowed to change it: identical
// byte totals, message count never larger fused, and no fused traffic
// at all in the unfused run.  The interpreter batches adjacent
// foralls through the sequence API, so generated programs (1–3
// adjacent loops) exercise real fusion windows.
func diffFusion(t *testing.T, src string, p int) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	fused, err := prog.Run(core.Config{P: p, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatalf("fused run: %v\n%s", err, src)
	}
	unfused, err := prog.Run(core.Config{P: p, Params: machine.NCUBE7(), NoFuse: true})
	if err != nil {
		t.Fatalf("unfused run: %v\n%s", err, src)
	}
	for name, want := range unfused.Arrays {
		got := fused.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v (fused), want %v (unfused)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	for name, want := range unfused.IntArrays {
		got := fused.IntArrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %d (fused), want %d (unfused)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	if fused.Report.BytesSent != unfused.Report.BytesSent {
		t.Fatalf("fusion changed byte total: %d fused, %d unfused\n%s",
			fused.Report.BytesSent, unfused.Report.BytesSent, src)
	}
	if fused.Report.MsgsSent > unfused.Report.MsgsSent {
		t.Fatalf("fusion grew message count: %d fused, %d unfused\n%s",
			fused.Report.MsgsSent, unfused.Report.MsgsSent, src)
	}
	if unfused.Report.FusedMsgs != 0 {
		t.Fatalf("unfused run moved %d fused messages\n%s", unfused.Report.FusedMsgs, src)
	}
}

// TestQuickFusionDifferential: the fixed-budget CI version of the
// fusion property over both program generators.
func TestQuickFusionDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenProgram(r)
		diffFusion(t, src, 4)
		src = langtest.GenVMProgram(rand.New(rand.NewSource(seed)))
		for _, p := range []int{1, 3, 4} {
			diffFusion(t, src, p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFusionDifferential is the native-fuzzing entry point for the
// fused-vs-unfused property; `go test -fuzz=FuzzFusionDifferential`
// explores seeds beyond the fixed quick.Check budget.
func FuzzFusionDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1990, 123456789} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenVMProgram(r)
		diffFusion(t, src, 4)
	})
}

// TestQuickProgramsDeterministicTiming: generated programs also have
// identical simulated time on repeated runs (full determinism).
func TestQuickProgramsDeterministicTiming(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := langtest.GenProgram(r)
		prog, err := Compile(src)
		if err != nil {
			return false
		}
		r1, err1 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		r2, err2 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Report.Total == r2.Report.Total &&
			r1.Report.Inspector == r2.Report.Inspector
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
