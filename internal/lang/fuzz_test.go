package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kali/internal/core"
	"kali/internal/machine"
)

// genProgram builds a random but well-formed Kali program: a few
// arrays under random distributions, initialization loops, and a
// sequence of foralls mixing affine stencils and data-dependent
// gathers.  Results must not depend on the processor count — the
// fundamental guarantee of the global name space.
func genProgram(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	dists := []string{"block", "cyclic", fmt.Sprintf("block_cyclic(%d)", 1+r.Intn(4))}
	distA := dists[r.Intn(len(dists))]
	distB := dists[r.Intn(len(dists))]

	var b strings.Builder
	fmt.Fprintf(&b, "processors Procs : array[1..P] with P in 1..64;\n")
	fmt.Fprintf(&b, "const n = %d;\n", n)
	fmt.Fprintf(&b, "var a : array[1..n] of real dist by [%s] on Procs;\n", distA)
	fmt.Fprintf(&b, "    b : array[1..n] of real dist by [%s] on Procs;\n", distB)
	// perm drives subscripts inside "forall ... on b[i].loc", so it
	// must travel with b (the language's alignment rule for integer
	// subscript arrays).
	fmt.Fprintf(&b, "    perm : array[1..n] of integer dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    i : integer;\n")
	fmt.Fprintf(&b, "begin\n")
	fmt.Fprintf(&b, "  for i in 1..n do\n")
	fmt.Fprintf(&b, "    a[i] := float(i) * %d.0;\n", 1+r.Intn(5))
	fmt.Fprintf(&b, "    b[i] := float(i * i);\n")
	fmt.Fprintf(&b, "    perm[i] := (i * %d) mod n + 1;\n", 1+2*r.Intn(4)) // odd-ish stride
	fmt.Fprintf(&b, "  end;\n")

	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		switch r.Intn(3) {
		case 0: // affine stencil a[i] := b[i+c] + a[i]
			c := r.Intn(3) - 1
			lo, hi := 1, n
			if c > 0 {
				hi = n - c
			} else {
				lo = 1 - c
			}
			sub := "i"
			if c > 0 {
				sub = fmt.Sprintf("i+%d", c)
			} else if c < 0 {
				sub = fmt.Sprintf("i-%d", -c)
			}
			fmt.Fprintf(&b, "  forall i in %d..%d on a[i].loc do\n", lo, hi)
			fmt.Fprintf(&b, "    a[i] := b[%s] + a[i];\n", sub)
			fmt.Fprintf(&b, "  end;\n")
		case 1: // indirect gather b[i] := a[perm[i]]
			fmt.Fprintf(&b, "  forall i in 1..n do b[i] := a[ perm[i] ]; end;\n")
			// placeholder replaced below: lang requires on clause
		default: // strided update on even points
			fmt.Fprintf(&b, "  forall i in 1..n div 2 on a[2*i].loc do\n")
			fmt.Fprintf(&b, "    a[2*i] := a[2*i] * 0.5 + b[2*i-1];\n")
			fmt.Fprintf(&b, "  end;\n")
		}
	}
	fmt.Fprintf(&b, "end.\n")
	// Fix the on-clause-less forall emitted in case 1.
	return strings.ReplaceAll(b.String(),
		"forall i in 1..n do b[i] := a[ perm[i] ]; end;",
		"forall i in 1..n on b[i].loc do b[i] := a[ perm[i] ]; end;")
}

// TestQuickProgramsProcessorIndependent: every generated program
// yields bit-identical arrays on P = 1, 2 and 4.
func TestQuickProgramsProcessorIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program failed to compile: %v\n%s", err, src)
		}
		var ref *Result
		for _, p := range []int{1, 2, 4} {
			res, err := prog.Run(core.Config{P: p, Params: machine.Ideal()})
			if err != nil {
				t.Fatalf("P=%d: %v\n%s", p, err, src)
			}
			if ref == nil {
				ref = res
				continue
			}
			for name, want := range ref.Arrays {
				got := res.Arrays[name]
				for i := range want {
					if got[i] != want[i] {
						t.Logf("program:\n%s", src)
						t.Logf("P=%d: %s[%d] = %g, want %g", p, name, i+1, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// genVMProgram builds a random program that stresses the bytecode
// compiler beyond the plain stencils of genProgram: forall bodies with
// local variables, if/else with boolean connectives, inner for loops,
// builtin calls, unary minus, and integer div/mod — every construct
// the VM lowers.  Used by the VM-vs-walker differential tests.
func genVMProgram(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	k := 2 + r.Intn(4)
	dists := []string{"block", "cyclic", fmt.Sprintf("block_cyclic(%d)", 1+r.Intn(4))}
	distA := dists[r.Intn(len(dists))]
	distB := dists[r.Intn(len(dists))]

	var b strings.Builder
	fmt.Fprintf(&b, "processors Procs : array[1..P] with P in 1..64;\n")
	fmt.Fprintf(&b, "const n = %d;\n", n)
	fmt.Fprintf(&b, "      k = %d;\n", k)
	fmt.Fprintf(&b, "var a : array[1..n] of real dist by [%s] on Procs;\n", distA)
	fmt.Fprintf(&b, "    b : array[1..n] of real dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    perm : array[1..n] of integer dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    i : integer;\n")
	fmt.Fprintf(&b, "begin\n")
	fmt.Fprintf(&b, "  for i in 1..n do\n")
	fmt.Fprintf(&b, "    a[i] := float(i) * %d.0 - %d.5;\n", 1+r.Intn(5), r.Intn(3))
	fmt.Fprintf(&b, "    b[i] := float(i * i) / %d.0;\n", 2+r.Intn(3))
	fmt.Fprintf(&b, "    perm[i] := (i * %d) mod n + 1;\n", 1+2*r.Intn(4))
	fmt.Fprintf(&b, "  end;\n")

	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		switch r.Intn(5) {
		case 0: // affine stencil with a const-folded coefficient
			c := r.Intn(3) - 1
			lo, hi := 1, n
			sub := "i"
			if c > 0 {
				hi, sub = n-c, fmt.Sprintf("i+%d", c)
			} else if c < 0 {
				lo, sub = 1-c, fmt.Sprintf("i-%d", -c)
			}
			fmt.Fprintf(&b, "  forall i in %d..%d on a[i].loc do\n", lo, hi)
			fmt.Fprintf(&b, "    a[i] := b[%s] * (1.0 / float(k)) + a[i];\n", sub)
			fmt.Fprintf(&b, "  end;\n")
		case 1: // indirect gather through perm
			fmt.Fprintf(&b, "  forall i in 1..n on b[i].loc do b[i] := a[ perm[i] ]; end;\n")
		case 2: // locals, builtins, if/else with and/or
			fmt.Fprintf(&b, "  forall i in 1..n on a[i].loc do\n")
			fmt.Fprintf(&b, "    var t : real; m : integer;\n")
			fmt.Fprintf(&b, "    t := abs(b[i]) + sqrt(abs(a[i]));\n")
			fmt.Fprintf(&b, "    m := trunc(t) mod k + 1;\n")
			fmt.Fprintf(&b, "    if (t > float(m)) and (i mod 2 = 0) then\n")
			fmt.Fprintf(&b, "      a[i] := min(t, a[i]) - float(m);\n")
			fmt.Fprintf(&b, "    else\n")
			fmt.Fprintf(&b, "      a[i] := max(t * 0.5, -a[i]);\n")
			fmt.Fprintf(&b, "    end;\n")
			fmt.Fprintf(&b, "  end;\n")
		case 3: // inner for loop accumulating into a local
			fmt.Fprintf(&b, "  forall i in 1..n on a[i].loc do\n")
			fmt.Fprintf(&b, "    var s2 : real; q : integer;\n")
			fmt.Fprintf(&b, "    s2 := 0.0;\n")
			fmt.Fprintf(&b, "    for q in 1..k do\n")
			fmt.Fprintf(&b, "      s2 := s2 + b[i] * float(q);\n")
			fmt.Fprintf(&b, "    end;\n")
			fmt.Fprintf(&b, "    a[i] := s2 / float(k);\n")
			fmt.Fprintf(&b, "  end;\n")
		default: // strided update with integer arithmetic in subscripts
			fmt.Fprintf(&b, "  forall i in 1..n div 2 on a[2*i].loc do\n")
			fmt.Fprintf(&b, "    a[2*i] := a[2*i] * 0.5 + b[2*i-1];\n")
			fmt.Fprintf(&b, "  end;\n")
		}
	}
	fmt.Fprintf(&b, "end.\n")
	return b.String()
}

// diffVMWalker runs src twice — once through the bytecode VM, once
// through the tree walker — and fails unless the final arrays are
// bit-identical and the simulated cost report (time, messages, bytes)
// matches exactly.  The VM must be observationally invisible.
func diffVMWalker(t *testing.T, src string, p int) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	cfg := core.Config{P: p, Params: machine.NCUBE7()}
	vm, err := prog.Run(cfg)
	if err != nil {
		t.Fatalf("vm run: %v\n%s", err, src)
	}
	prog.NoVM = true
	walk, err := prog.Run(cfg)
	prog.NoVM = false
	if err != nil {
		t.Fatalf("walker run: %v\n%s", err, src)
	}
	for name, want := range walk.Arrays {
		got := vm.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v (vm), want %v (walker)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	for name, want := range walk.IntArrays {
		got := vm.IntArrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %d (vm), want %d (walker)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	if vm.Report.Total != walk.Report.Total ||
		vm.Report.Inspector != walk.Report.Inspector ||
		vm.Report.Executor != walk.Report.Executor {
		t.Fatalf("simulated times diverge: vm total=%v insp=%v exec=%v, walker total=%v insp=%v exec=%v\n%s",
			vm.Report.Total, vm.Report.Inspector, vm.Report.Executor,
			walk.Report.Total, walk.Report.Inspector, walk.Report.Executor, src)
	}
	if vm.Report.MsgsSent != walk.Report.MsgsSent || vm.Report.BytesSent != walk.Report.BytesSent {
		t.Fatalf("traffic diverges: vm %d msgs/%d bytes, walker %d msgs/%d bytes\n%s",
			vm.Report.MsgsSent, vm.Report.BytesSent,
			walk.Report.MsgsSent, walk.Report.BytesSent, src)
	}
}

// TestQuickVMDifferential: every generated program produces
// bit-identical arrays and an identical cost report on the VM and the
// tree walker, across processor counts.
func TestQuickVMDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genVMProgram(r)
		for _, p := range []int{1, 3, 4} {
			diffVMWalker(t, src, p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzVMDifferential is the native-fuzzing entry point for the same
// property; `go test -fuzz=FuzzVMDifferential` explores seeds beyond
// the fixed quick.Check budget.
func FuzzVMDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1990, 123456789} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		src := genVMProgram(r)
		diffVMWalker(t, src, 4)
	})
}

// diffFusion runs src with cross-loop aggregation on and off and
// fails unless the final arrays are bit-identical and the traffic
// differs only in the ways fusion is allowed to change it: identical
// byte totals, message count never larger fused, and no fused traffic
// at all in the unfused run.  The interpreter batches adjacent
// foralls through the sequence API, so generated programs (1–3
// adjacent loops) exercise real fusion windows.
func diffFusion(t *testing.T, src string, p int) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	fused, err := prog.Run(core.Config{P: p, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatalf("fused run: %v\n%s", err, src)
	}
	unfused, err := prog.Run(core.Config{P: p, Params: machine.NCUBE7(), NoFuse: true})
	if err != nil {
		t.Fatalf("unfused run: %v\n%s", err, src)
	}
	for name, want := range unfused.Arrays {
		got := fused.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v (fused), want %v (unfused)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	for name, want := range unfused.IntArrays {
		got := fused.IntArrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %d (fused), want %d (unfused)\n%s", name, i+1, got[i], want[i], src)
			}
		}
	}
	if fused.Report.BytesSent != unfused.Report.BytesSent {
		t.Fatalf("fusion changed byte total: %d fused, %d unfused\n%s",
			fused.Report.BytesSent, unfused.Report.BytesSent, src)
	}
	if fused.Report.MsgsSent > unfused.Report.MsgsSent {
		t.Fatalf("fusion grew message count: %d fused, %d unfused\n%s",
			fused.Report.MsgsSent, unfused.Report.MsgsSent, src)
	}
	if unfused.Report.FusedMsgs != 0 {
		t.Fatalf("unfused run moved %d fused messages\n%s", unfused.Report.FusedMsgs, src)
	}
}

// TestQuickFusionDifferential: the fixed-budget CI version of the
// fusion property over both program generators.
func TestQuickFusionDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		diffFusion(t, src, 4)
		src = genVMProgram(rand.New(rand.NewSource(seed)))
		for _, p := range []int{1, 3, 4} {
			diffFusion(t, src, p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFusionDifferential is the native-fuzzing entry point for the
// fused-vs-unfused property; `go test -fuzz=FuzzFusionDifferential`
// explores seeds beyond the fixed quick.Check budget.
func FuzzFusionDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1990, 123456789} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		src := genVMProgram(r)
		diffFusion(t, src, 4)
	})
}

// TestQuickProgramsDeterministicTiming: generated programs also have
// identical simulated time on repeated runs (full determinism).
func TestQuickProgramsDeterministicTiming(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		prog, err := Compile(src)
		if err != nil {
			return false
		}
		r1, err1 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		r2, err2 := prog.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Report.Total == r2.Report.Total &&
			r1.Report.Inspector == r2.Report.Inspector
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
