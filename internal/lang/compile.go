package lang

import (
	"fmt"
	"math"
)

// This file lowers checked forall bodies to the register bytecode of
// vm.go.  Lowering happens host-side, once per Program.Run, after the
// real estate agent has chosen P and every constant is elaborated
// (constants may depend on P, so compilation cannot happen earlier);
// the resulting compiledBody is immutable and shared by all node
// goroutines, each of which wraps it in its own vmState.
//
// What the compiler does that the tree walker could not:
//   - scope resolution at compile time: forall index variables, local
//     decls and sequential loop variables become fixed registers, and
//     global scalars become pinned input registers refreshed once per
//     launch — no map[string]*value lookups per element;
//   - constant folding: subexpressions over literals and consts
//     collapse into pinned constant registers loaded once per node
//     (their would-be flops still charged, see below);
//   - strength reduction: affine subscripts a*v + c become a single
//     opLinI instruction, and identity subscripts disappear entirely;
//   - typed arithmetic: int and real operations are distinct opcodes
//     over unboxed register files.
//
// What it scrupulously preserves: evaluation order, the walker's float
// compares (ints widen first), non-short-circuit and/or, Go wrapping
// integer arithmetic, and the walker's exact flop-charge sequence.
// The walker charges Env.Flops(1) per operator, interleaved with the
// memory-reference charges its reads make; because the simulated clock
// is a float accumulator, both the unit size and the order of those
// charges are observable.  The compiler therefore emits opFlops at the
// AST position of each charge (folded and strength-reduced subtrees
// charge their would-be flops at the point the walker would have
// evaluated them — always a contiguous run, since foldable subtrees
// contain no reads), and the VM replays an opFlops k as k unit
// charges.  Simulated times and machine.Stats come out bit-identical
// between the two paths.
//
// The register allocator is deliberately monotone: every textual value
// gets a fresh register and nothing is ever reused, so constants,
// inputs, locals and temporaries coexist without liveness analysis.
// Bodies are small (tens of expressions), so the files stay tiny; the
// payoff is that instruction operands are stable and the emitted code
// cannot clobber a live value.

// compileForalls lowers every forall body in the program.
func compileForalls(f *File, consts map[string]value) map[*Forall]*compiledBody {
	out := map[*Forall]*compiledBody{}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Forall:
				out[s] = compileBody(f, s, consts)
			case *ForLoop:
				walk(s.Body)
			case *While:
				walk(s.Body)
			case *If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(f.Main)
	return out
}

// slotRef is a compile-time scope binding: a name resolved to a typed
// register.
type slotRef struct {
	t   BaseType
	reg int32
}

// comp is the per-body compiler state.
type comp struct {
	fa     *Forall
	consts map[string]value

	arrays  map[string]*VarDecl // declared arrays
	scalarT map[string]BaseType // declared global scalars

	// slots is the current lexical scope (index variables, forall
	// locals, sequential loop variables), mirroring the checker's
	// insert/delete discipline.
	slots map[string]slotRef

	code         []instr
	nextF, nextI int32

	cfIndex map[uint64]int32 // float constant (by bits) -> pinned register
	ciIndex map[int]int32    // int/bool constant -> pinned register
	initF   []fInit
	initI   []iInit

	pool      []int // opLinI coefficient pool
	poolIndex map[int]int32

	scalars  []scalarInput
	scalarIx map[string]int32

	reals  []vmArraySlot
	realIx map[string]int32
	ints   []string
	intIx  map[string]int32

	// barrier marks the last jump-target boundary; charge() may fold a
	// new flop charge into an immediately preceding opFlops only when no
	// label was bound in between (a jump landing between them would skip
	// or double charges).
	barrier int
}

// compileBody lowers one checked forall body.
func compileBody(f *File, fa *Forall, consts map[string]value) *compiledBody {
	c := &comp{
		fa:        fa,
		consts:    consts,
		arrays:    map[string]*VarDecl{},
		scalarT:   map[string]BaseType{},
		slots:     map[string]slotRef{},
		cfIndex:   map[uint64]int32{},
		ciIndex:   map[int]int32{},
		poolIndex: map[int]int32{},
		scalarIx:  map[string]int32{},
		realIx:    map[string]int32{},
		intIx:     map[string]int32{},
	}
	for _, d := range f.Vars {
		for _, name := range d.Names {
			if len(d.Dims) == 0 {
				c.scalarT[name] = d.Elem
			} else {
				c.arrays[name] = d
			}
		}
	}
	// Bind the checker's slot numbering: every array read in the body
	// already has its slot index on the ArrayRef nodes.
	ce := &constEval{consts: consts}
	for _, name := range fa.slotNames {
		c.realIx[name] = int32(len(c.reals))
		c.reals = append(c.reals, c.arraySlot(ce, name))
	}
	for _, name := range fa.intSlotNames {
		c.intIx[name] = int32(len(c.ints))
		c.ints = append(c.ints, name)
	}

	cb := &compiledBody{name: fmt.Sprintf("forall@%d", fa.Line), rank: 1}
	cb.iReg = c.tmpI()
	c.slots[fa.Var] = slotRef{t: TInt, reg: cb.iReg}
	if fa.Var2 != "" {
		cb.rank = 2
		cb.jReg = c.tmpI()
		c.slots[fa.Var2] = slotRef{t: TInt, reg: cb.jReg}
	}
	// Forall locals reset to zero every iteration (the walker builds a
	// fresh scope per element); the emitted body re-zeroes them at
	// entry.
	for _, d := range fa.Decls {
		if d.Type == TReal {
			reg := c.tmpF()
			c.add(opMovF, reg, c.constF(0), 0, 0)
			c.slots[d.Name] = slotRef{t: TReal, reg: reg}
		} else {
			reg := c.tmpI()
			c.add(opMovI, reg, c.constI(0), 0, 0)
			c.slots[d.Name] = slotRef{t: d.Type, reg: reg}
		}
	}
	c.stmts(fa.Body)
	c.add(opRet, 0, 0, 0, 0)

	cb.code = c.code
	cb.nF, cb.nI = c.nextF, c.nextI
	cb.initF, cb.initI = c.initF, c.initI
	cb.constI = c.pool
	cb.scalars = c.scalars
	cb.reals = c.reals
	cb.ints = c.ints
	return cb
}

// arraySlot builds the slot descriptor for a real array, evaluating
// the declared shape for inline rank-2 linearization.
func (c *comp) arraySlot(ce *constEval, name string) vmArraySlot {
	d := c.arrays[name]
	s := vmArraySlot{name: name, rank: len(d.Dims)}
	for k, dim := range d.Dims {
		s.shape[k] = ce.intVal(dim.Hi)
	}
	return s
}

// ---- registers, constants, inputs ------------------------------------

func (c *comp) tmpF() int32 { r := c.nextF; c.nextF++; return r }
func (c *comp) tmpI() int32 { r := c.nextI; c.nextI++; return r }

func (c *comp) add(op opcode, a, b, cc, d int32) int {
	c.code = append(c.code, instr{op: op, a: a, b: b, c: cc, d: d})
	return len(c.code) - 1
}

// charge emits k unit flop charges at the current code position,
// coalescing with an immediately preceding opFlops when no jump target
// separates them (adjacent charges replay as adjacent unit charges
// either way, so coalescing is pure instruction-count savings).
func (c *comp) charge(k int) {
	if k == 0 {
		return
	}
	if n := len(c.code); n > c.barrier && c.code[n-1].op == opFlops {
		c.code[n-1].a += int32(k)
		return
	}
	c.add(opFlops, int32(k), 0, 0, 0)
}

// constF returns the pinned register holding a float constant, keyed
// by bit pattern so -0.0 and 0.0 stay distinct.
func (c *comp) constF(v float64) int32 {
	bits := math.Float64bits(v)
	if r, ok := c.cfIndex[bits]; ok {
		return r
	}
	r := c.tmpF()
	c.cfIndex[bits] = r
	c.initF = append(c.initF, fInit{reg: r, v: v})
	return r
}

// constI returns the pinned register holding an int (or 0/1 bool)
// constant.
func (c *comp) constI(v int) int32 {
	if r, ok := c.ciIndex[v]; ok {
		return r
	}
	r := c.tmpI()
	c.ciIndex[v] = r
	c.initI = append(c.initI, iInit{reg: r, v: v})
	return r
}

// poolI interns a coefficient in the opLinI constant pool (pool slots
// carry full ints; instruction operands are int32).
func (c *comp) poolI(v int) int32 {
	if ix, ok := c.poolIndex[v]; ok {
		return ix
	}
	ix := int32(len(c.pool))
	c.poolIndex[v] = ix
	c.pool = append(c.pool, v)
	return ix
}

// scalarReg returns the pinned input register for a global scalar,
// registering it for per-launch refresh.
func (c *comp) scalarReg(name string, t BaseType) int32 {
	if ix, ok := c.scalarIx[name]; ok {
		return c.scalars[ix].reg
	}
	var reg int32
	if t == TReal {
		reg = c.tmpF()
	} else {
		reg = c.tmpI()
	}
	c.scalarIx[name] = int32(len(c.scalars))
	c.scalars = append(c.scalars, scalarInput{name: name, t: t, reg: reg})
	return reg
}

// realSlot resolves a real-array slot, extending the table for arrays
// that are only written (the checker numbers reads).
func (c *comp) realSlot(name string) int32 {
	if ix, ok := c.realIx[name]; ok {
		return ix
	}
	ce := &constEval{consts: c.consts}
	ix := int32(len(c.reals))
	c.realIx[name] = ix
	c.reals = append(c.reals, c.arraySlot(ce, name))
	return ix
}

// ---- statements ------------------------------------------------------

func (c *comp) stmts(ss []Stmt) {
	for _, s := range ss {
		c.stmt(s)
	}
}

func (c *comp) stmt(s Stmt) {
	switch s := s.(type) {
	case *Assign:
		c.assign(s)
	case *ForLoop:
		c.forLoop(s)
	case *If:
		c.ifStmt(s)
	default:
		// The checker rejects forall/while/reduce/redistribute inside
		// forall bodies.
		panic(fmt.Sprintf("lang: compile: unexpected statement %T in forall body", s))
	}
}

func (c *comp) assign(s *Assign) {
	// The walker evaluates the value first, then the indexes.
	r, t := c.expr(s.X)
	if sl, ok := c.slots[s.Name]; ok {
		switch {
		case sl.t == t && t == TReal:
			c.add(opMovF, sl.reg, r, 0, 0)
		case sl.t == t:
			c.add(opMovI, sl.reg, r, 0, 0)
		case sl.t == TReal && t == TInt:
			c.add(opIntToF, sl.reg, r, 0, 0)
		default:
			panic(fmt.Sprintf("lang: compile: cannot assign %s to %s %q", t, sl.t, s.Name))
		}
		return
	}
	// Distributed real array write (owner-computes; checker-enforced).
	if t == TInt {
		r = c.widen(r, t)
	}
	slot := c.realSlot(s.Name)
	switch len(s.Indexes) {
	case 1:
		i := c.idx(s.Indexes[0])
		c.add(opSt1, r, slot, i, 0)
	case 2:
		i := c.idx(s.Indexes[0])
		j := c.idx(s.Indexes[1])
		c.add(opSt2, r, slot, i, j)
	default:
		panic("lang: compile: store rank > 2")
	}
}

func (c *comp) forLoop(s *ForLoop) {
	// Bounds are evaluated once, before the loop variable comes into
	// scope, and copied into private registers: the body may assign the
	// loop variable (or whatever the bound expressions read) without
	// perturbing the trip count — exactly the walker's Go-loop
	// semantics.
	lo, _ := c.expr(s.Lo)
	hi, _ := c.expr(s.Hi)
	cnt := c.tmpI()
	c.add(opMovI, cnt, lo, 0, 0)
	lim := c.tmpI()
	c.add(opMovI, lim, hi, 0, 0)

	vs, existing := c.slots[s.Var]
	if !existing {
		vs = slotRef{t: TInt, reg: c.tmpI()}
		c.slots[s.Var] = vs
	}

	head := len(c.code)
	c.barrier = head
	exit := c.add(opJmpGtI, 0, cnt, lim, 0)
	c.add(opMovI, vs.reg, cnt, 0, 0)
	c.stmts(s.Body)
	c.add(opIncI, cnt, 0, 0, 0)
	c.add(opJmp, int32(head), 0, 0, 0)
	c.code[exit].a = int32(len(c.code))
	c.barrier = len(c.code)

	if !existing {
		delete(c.slots, s.Var) // the implicit variable's scope ends here
	}
}

func (c *comp) ifStmt(s *If) {
	cond, _ := c.expr(s.Cond)
	jf := c.add(opJmpIfNot, 0, cond, 0, 0)
	c.stmts(s.Then)
	if len(s.Else) > 0 {
		je := c.add(opJmp, 0, 0, 0, 0)
		c.code[jf].a = int32(len(c.code))
		c.barrier = len(c.code)
		c.stmts(s.Else)
		c.code[je].a = int32(len(c.code))
		c.barrier = len(c.code)
		return
	}
	c.code[jf].a = int32(len(c.code))
	c.barrier = len(c.code)
}

// ---- expressions -----------------------------------------------------

// expr compiles e and returns its value register and type.  Result
// registers must be treated as read-only by callers (they may be
// pinned locals or constants).
func (c *comp) expr(e Expr) (int32, BaseType) {
	switch e := e.(type) {
	case *IntLit:
		return c.constI(e.V), TInt
	case *RealLit:
		return c.constF(e.V), TReal
	case *BoolLit:
		return c.constI(b2i(e.V)), TBool
	case *Ident:
		return c.ident(e)
	case *ArrayRef:
		return c.arrayRef(e)
	case *Unary:
		if e.Op == KWNot {
			// The walker returns !v.b without charging a flop.
			r, _ := c.expr(e.X)
			d := c.tmpI()
			c.add(opNotB, d, r, 0, 0)
			return d, TBool
		}
		if c.foldable(e) {
			return c.fold(e)
		}
		r, t := c.expr(e.X)
		c.charge(1)
		if t == TInt {
			d := c.tmpI()
			c.add(opNegI, d, r, 0, 0)
			return d, TInt
		}
		d := c.tmpF()
		c.add(opNegF, d, r, 0, 0)
		return d, TReal
	case *Binary:
		if c.foldable(e) {
			return c.fold(e)
		}
		return c.binary(e)
	case *Call:
		if c.foldable(e) {
			return c.fold(e)
		}
		return c.call(e)
	default:
		panic(fmt.Sprintf("lang: compile: unknown expression %T", e))
	}
}

func (c *comp) ident(e *Ident) (int32, BaseType) {
	// Resolution order matches the walker: scope, constants, globals.
	if sl, ok := c.slots[e.Name]; ok {
		return sl.reg, sl.t
	}
	if v, ok := c.consts[e.Name]; ok {
		if v.t == TReal {
			return c.constF(v.f), TReal
		}
		return c.constI(v.i), TInt
	}
	if t, ok := c.scalarT[e.Name]; ok {
		return c.scalarReg(e.Name, t), t
	}
	// An enclosing top-level for-loop's implicitly declared (integer)
	// variable: bound like any other global scalar input.
	return c.scalarReg(e.Name, TInt), TInt
}

func (c *comp) binary(e *Binary) (int32, BaseType) {
	lr, lt := c.expr(e.L)
	rr, rt := c.expr(e.R)
	c.charge(1)
	switch e.Op {
	case PLUS, MINUS, STAR:
		if lt == TInt && rt == TInt {
			d := c.tmpI()
			switch e.Op {
			case PLUS:
				c.add(opAddI, d, lr, rr, 0)
			case MINUS:
				c.add(opSubI, d, lr, rr, 0)
			default:
				c.add(opMulI, d, lr, rr, 0)
			}
			return d, TInt
		}
		lf, rf := c.widen(lr, lt), c.widen(rr, rt)
		d := c.tmpF()
		switch e.Op {
		case PLUS:
			c.add(opAddF, d, lf, rf, 0)
		case MINUS:
			c.add(opSubF, d, lf, rf, 0)
		default:
			c.add(opMulF, d, lf, rf, 0)
		}
		return d, TReal
	case SLASH:
		d := c.tmpF()
		c.add(opDivF, d, c.widen(lr, lt), c.widen(rr, rt), 0)
		return d, TReal
	case KWDiv:
		d := c.tmpI()
		c.add(opDivI, d, lr, rr, 0)
		return d, TInt
	case KWMod:
		d := c.tmpI()
		c.add(opModI, d, lr, rr, 0)
		return d, TInt
	case EQ, NE:
		if lt == TBool {
			d := c.tmpI()
			if e.Op == EQ {
				c.add(opEqB, d, lr, rr, 0)
			} else {
				c.add(opNeB, d, lr, rr, 0)
			}
			return d, TBool
		}
		fallthrough
	case LT, LE, GT, GE:
		// The walker compares through asReal() — ints widen to float.
		lf, rf := c.widen(lr, lt), c.widen(rr, rt)
		d := c.tmpI()
		switch e.Op {
		case LT:
			c.add(opLtF, d, lf, rf, 0)
		case LE:
			c.add(opLeF, d, lf, rf, 0)
		case GT:
			c.add(opGtF, d, lf, rf, 0)
		case GE:
			c.add(opGeF, d, lf, rf, 0)
		case EQ:
			c.add(opEqF, d, lf, rf, 0)
		default:
			c.add(opNeF, d, lf, rf, 0)
		}
		return d, TBool
	case KWAnd:
		d := c.tmpI()
		c.add(opAndB, d, lr, rr, 0)
		return d, TBool
	case KWOr:
		d := c.tmpI()
		c.add(opOrB, d, lr, rr, 0)
		return d, TBool
	default:
		panic(fmt.Sprintf("lang: compile: bad operator %s", e.Op))
	}
}

func (c *comp) call(e *Call) (int32, BaseType) {
	regs := make([]int32, len(e.Args))
	types := make([]BaseType, len(e.Args))
	for k, a := range e.Args {
		regs[k], types[k] = c.expr(a)
	}
	c.charge(1) // every builtin charges one flop in the walker
	switch e.Name {
	case "abs":
		d := c.tmpF()
		c.add(opAbsF, d, c.widen(regs[0], types[0]), 0, 0)
		return d, TReal
	case "sqrt":
		d := c.tmpF()
		c.add(opSqrtF, d, c.widen(regs[0], types[0]), 0, 0)
		return d, TReal
	case "min":
		d := c.tmpF()
		c.add(opMinF, d, c.widen(regs[0], types[0]), c.widen(regs[1], types[1]), 0)
		return d, TReal
	case "max":
		d := c.tmpF()
		c.add(opMaxF, d, c.widen(regs[0], types[0]), c.widen(regs[1], types[1]), 0)
		return d, TReal
	case "float":
		return c.widen(regs[0], types[0]), TReal
	case "trunc":
		d := c.tmpI()
		c.add(opTruncI, d, c.widen(regs[0], types[0]), 0, 0)
		return d, TInt
	default:
		panic(fmt.Sprintf("lang: compile: unknown function %q", e.Name))
	}
}

// widen converts an int register to a fresh float register (no-op for
// reals).
func (c *comp) widen(r int32, t BaseType) int32 {
	if t == TReal {
		return r
	}
	d := c.tmpF()
	c.add(opIntToF, d, r, 0, 0)
	return d
}

// arrayRef compiles an array read, dispatching on the checker's access
// classification exactly as the walker does.
func (c *comp) arrayRef(e *ArrayRef) (int32, BaseType) {
	d := c.arrays[e.Name]
	if d == nil {
		panic(fmt.Sprintf("lang: compile: unknown array %q", e.Name))
	}
	if d.Elem == TInt {
		slot := int32(e.slot)
		r := c.tmpI()
		switch len(e.Indexes) {
		case 1:
			c.add(opLdInt1, r, slot, c.idx(e.Indexes[0]), 0)
		case 2:
			i := c.idx(e.Indexes[0])
			j := c.idx(e.Indexes[1])
			c.add(opLdInt2, r, slot, i, j)
		default:
			panic("lang: compile: int read rank > 2")
		}
		return r, TInt
	}
	slot := int32(e.slot)
	r := c.tmpF()
	local := e.access == accReplicated || e.access == accAligned
	switch len(e.Indexes) {
	case 1:
		i := c.idx(e.Indexes[0])
		if local {
			c.add(opLdLoc1, r, slot, i, 0)
		} else {
			c.add(opLd1, r, slot, i, 0)
		}
	case 2:
		i := c.idx(e.Indexes[0])
		j := c.idx(e.Indexes[1])
		if local {
			c.add(opLdLoc2, r, slot, i, j)
		} else {
			c.add(opLd2, r, slot, i, j)
		}
	default:
		panic("lang: compile: read rank > 2")
	}
	return r, TReal
}

// idx compiles an integer subscript expression.  Affine forms a*v + k
// strength-reduce to one opLinI (or to nothing, for the identity
// subscript); the flops the walker would charge evaluating the original
// expression are still counted, preserving cost-model parity.
func (c *comp) idx(ix Expr) int32 {
	if reg, a, k, ok := c.affine(ix); ok {
		c.charge(flopCount(ix))
		if reg < 0 {
			return c.constI(k)
		}
		if a == 1 && k == 0 {
			return reg
		}
		d := c.tmpI()
		c.add(opLinI, d, reg, c.poolI(a), c.poolI(k))
		return d
	}
	r, _ := c.expr(ix)
	return r
}

// affine tries to express ix as a*reg + k over a single integer
// variable register (reg = -1 for pure constants).  Coefficient
// arithmetic wraps like the walker's run-time arithmetic.
func (c *comp) affine(ix Expr) (reg int32, a, k int, ok bool) {
	switch e := ix.(type) {
	case *IntLit:
		return -1, 0, e.V, true
	case *Ident:
		if sl, ok := c.slots[e.Name]; ok {
			if sl.t != TInt {
				return -1, 0, 0, false
			}
			return sl.reg, 1, 0, true
		}
		if v, ok := c.consts[e.Name]; ok {
			if v.t != TInt {
				return -1, 0, 0, false
			}
			return -1, 0, v.i, true
		}
		if t, ok := c.scalarT[e.Name]; ok {
			if t != TInt {
				return -1, 0, 0, false
			}
			return c.scalarReg(e.Name, TInt), 1, 0, true
		}
		return c.scalarReg(e.Name, TInt), 1, 0, true
	case *Unary:
		if e.Op != MINUS {
			return -1, 0, 0, false
		}
		r1, a1, k1, ok1 := c.affine(e.X)
		if !ok1 {
			return -1, 0, 0, false
		}
		return r1, -a1, -k1, true
	case *Binary:
		switch e.Op {
		case PLUS, MINUS:
			r1, a1, k1, ok1 := c.affine(e.L)
			r2, a2, k2, ok2 := c.affine(e.R)
			if !ok1 || !ok2 {
				return -1, 0, 0, false
			}
			if e.Op == MINUS {
				a2, k2 = -a2, -k2
			}
			switch {
			case r1 < 0:
				return r2, a2, k1 + k2, true
			case r2 < 0 || r1 == r2:
				return r1, a1 + a2, k1 + k2, true
			default:
				return -1, 0, 0, false // two distinct variables
			}
		case STAR:
			r1, a1, k1, ok1 := c.affine(e.L)
			r2, a2, k2, ok2 := c.affine(e.R)
			if !ok1 || !ok2 {
				return -1, 0, 0, false
			}
			switch {
			case r1 < 0:
				return r2, k1 * a2, k1 * k2, true
			case r2 < 0:
				return r1, k2 * a1, k2 * k1, true
			default:
				return -1, 0, 0, false
			}
		default:
			return -1, 0, 0, false
		}
	default:
		return -1, 0, 0, false
	}
}

// ---- constant folding ------------------------------------------------

// foldable reports whether e is entirely computable from literals and
// constants here (names shadowed by scope slots are not constants).
func (c *comp) foldable(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *RealLit:
		return true
	case *Ident:
		if _, shadowed := c.slots[e.Name]; shadowed {
			return false
		}
		_, ok := c.consts[e.Name]
		return ok
	case *Unary:
		return e.Op == MINUS && c.foldable(e.X)
	case *Binary:
		switch e.Op {
		case PLUS, MINUS, STAR, SLASH, KWDiv, KWMod:
			return c.foldable(e.L) && c.foldable(e.R)
		}
		return false
	case *Call:
		// All six builtins are pure functions of their arguments.
		for _, a := range e.Args {
			if !c.foldable(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// fold evaluates a foldable subtree with the walker's own run-time
// arithmetic (wrapping ints, IEEE reals — not the checked constant
// evaluator, whose overflow diagnostics would change program behavior)
// and charges the flops the walker would have spent computing it.
func (c *comp) fold(e Expr) (int32, BaseType) {
	c.charge(flopCount(e))
	v := c.foldVal(e)
	if v.t == TReal {
		return c.constF(v.f), TReal
	}
	return c.constI(v.i), TInt
}

func (c *comp) foldVal(e Expr) value {
	switch e := e.(type) {
	case *IntLit:
		return intVal(e.V)
	case *RealLit:
		return realVal(e.V)
	case *Ident:
		return c.consts[e.Name]
	case *Unary:
		v := c.foldVal(e.X)
		if v.t == TInt {
			return intVal(-v.i)
		}
		return realVal(-v.f)
	case *Binary:
		return arith(e.Op, c.foldVal(e.L), c.foldVal(e.R))
	case *Call:
		args := make([]value, len(e.Args))
		for k, a := range e.Args {
			args[k] = c.foldVal(a)
		}
		// Mirrors the walker's builtin evaluation exactly.
		switch e.Name {
		case "abs":
			return realVal(math.Abs(args[0].asReal()))
		case "sqrt":
			return realVal(math.Sqrt(args[0].asReal()))
		case "min":
			return realVal(math.Min(args[0].asReal(), args[1].asReal()))
		case "max":
			return realVal(math.Max(args[0].asReal(), args[1].asReal()))
		case "float":
			return realVal(args[0].asReal())
		case "trunc":
			return intVal(int(args[0].asReal()))
		default:
			panic(fmt.Sprintf("lang: compile: unknown function %q", e.Name))
		}
	default:
		panic(fmt.Sprintf("lang: compile: fold of %T", e))
	}
}

// flopCount counts the Env.Flops(1) charges the walker makes
// evaluating e: one per binary operator, unary minus, and call ("not"
// is free).  Used for subtrees the compiler folds or strength-reduces,
// so elided host work still charges its modeled cost.
func flopCount(e Expr) int {
	n := 0
	walkExpr(e, func(x Expr) {
		switch x := x.(type) {
		case *Binary:
			n++
		case *Unary:
			if x.Op == MINUS {
				n++
			}
		case *Call:
			n++
		}
	})
	return n
}
