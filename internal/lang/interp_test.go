package lang

import (
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// run compiles and executes a program on an ideal machine.
func run(t *testing.T, src string, p int) *Result {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(core.Config{P: p, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOperatorSemantics pins down every operator's runtime behaviour.
func TestOperatorSemantics(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..2;
var x, y : real;
    i, j : integer;
    b, c : boolean;
begin
    i := 17 div 5;       -- 3
    j := 17 mod 5;       -- 2
    x := 7 / 2;          -- 3.5 (slash is real division)
    y := -x + 0.5;       -- -3.0
    b := (1 < 2) and (2 <= 2) and (3 > 2) and (2 >= 2) and (1 = 1) and (1 <> 2);
    c := not b or false;
    if c then y := 99.0; end;
    if b then j := j * 2; end;    -- 4
end.
`
	res := run(t, src, 1)
	if res.Scalars["i"] != 3 || res.Scalars["j"] != 4 {
		t.Fatalf("div/mod: i=%g j=%g", res.Scalars["i"], res.Scalars["j"])
	}
	if res.Scalars["x"] != 3.5 || res.Scalars["y"] != -3 {
		t.Fatalf("real ops: x=%g y=%g", res.Scalars["x"], res.Scalars["y"])
	}
}

// TestRealLiteralsAndExponents exercises the lexer's numeric forms.
func TestRealLiteralsAndExponents(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..2;
var x, y, z : real;
begin
    x := 2.5e2;    -- 250
    y := 1e-1;     -- 0.1 is not lexed (no mantissa digits before e? it is: 1e-1)
    z := 3.25;
end.
`
	res := run(t, src, 1)
	if res.Scalars["x"] != 250 || res.Scalars["y"] != 0.1 || res.Scalars["z"] != 3.25 {
		t.Fatalf("literals: %v", res.Scalars)
	}
}

// TestFig1CyclicRowArray uses Figure 1's second declaration — a 2-D
// array with cyclic rows — inside a forall with aligned accesses.
func TestFig1CyclicRowArray(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const N = 8;
      M = 3;
var B : array[1..N, 1..M] of real dist by [cyclic, *] on Procs;
    rowsum : array[1..N] of real dist by [cyclic] on Procs;
    i, j : integer;
begin
    for i in 1..N do
        for j in 1..M do
            B[i,j] := float(i*10 + j);
        end;
    end;
    forall i in 1..N on rowsum[i].loc do
        var s : real;
        var j : integer;
        s := 0.0;
        for j in 1..M do
            s := s + B[i,j];
        end;
        rowsum[i] := s;
    end;
end.
`
	res := run(t, src, 4)
	for i := 1; i <= 8; i++ {
		want := float64(i*10+1) + float64(i*10+2) + float64(i*10+3)
		if res.Arrays["rowsum"][i-1] != want {
			t.Fatalf("rowsum[%d] = %g, want %g", i, res.Arrays["rowsum"][i-1], want)
		}
	}
	if res.Arrays["B"][0] != 11 {
		t.Fatal("B not gathered")
	}
}

// TestRank2IndirectInLang: a 2-D distributed real array read with a
// non-aligned first subscript — the checker must classify it indirect
// and the inspector must fetch whole remote elements.
func TestRank2IndirectInLang(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const N = 8;
var B : array[1..N, 1..2] of real dist by [block, *] on Procs;
    a : array[1..N] of real dist by [block] on Procs;
    i, j : integer;
begin
    for i in 1..N do
        for j in 1..2 do
            B[i,j] := float(i*100 + j);
        end;
    end;
    forall i in 1..N on a[i].loc do
        a[i] := B[N+1-i, 1] + B[N+1-i, 2];
    end;
end.
`
	res := run(t, src, 4)
	for i := 1; i <= 8; i++ {
		r := 8 + 1 - i
		want := float64(r*100+1) + float64(r*100+2)
		if res.Arrays["a"][i-1] != want {
			t.Fatalf("a[%d] = %g, want %g", i, res.Arrays["a"][i-1], want)
		}
	}
}

// TestForallOnShiftedSubscript: "on a[i+1].loc" placement in source.
func TestForallOnShiftedSubscript(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const N = 12;
var a : array[1..N] of real dist by [block] on Procs;
    i : integer;
begin
    forall i in 1..N-1 on a[i+1].loc do
        a[i+1] := float(i);
    end;
end.
`
	res := run(t, src, 4)
	for i := 1; i <= 11; i++ {
		if res.Arrays["a"][i] != float64(i) {
			t.Fatalf("a[%d] = %g", i+1, res.Arrays["a"][i])
		}
	}
}

// TestConstExpressions: consts may use div/mod/nested arithmetic and P.
func TestConstExpressions(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 4..4;
const n = (3 + 5) * 2;       -- 16
      half = n div 2;        -- 8
      rem = n mod 3;         -- 1
      perProc = n div P;     -- 4
var a : array[1..n] of real dist by [block_cyclic(perProc)] on Procs;
    i : integer;
begin
    for i in 1..n do a[i] := float(half + rem); end;
end.
`
	res := run(t, src, 4)
	if res.P != 4 {
		t.Fatalf("P = %d", res.P)
	}
	if res.Arrays["a"][5] != 9 {
		t.Fatalf("a[6] = %g", res.Arrays["a"][5])
	}
}

// TestNestedIfInForall exercises control flow inside loop bodies.
func TestNestedIfInForall(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..2;
const n = 10;
var a : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
    forall i in 1..n on a[i].loc do
        if i mod 2 = 0 then
            if i > 5 then
                a[i] := 2.0;
            else
                a[i] := 1.0;
            end;
        else
            a[i] := 0.0;
        end;
    end;
end.
`
	res := run(t, src, 2)
	want := []float64{0, 1, 0, 1, 0, 2, 0, 2, 0, 2}
	for i, w := range want {
		if res.Arrays["a"][i] != w {
			t.Fatalf("a[%d] = %g, want %g", i+1, res.Arrays["a"][i], w)
		}
	}
}

// TestScalarsReportedFromNodeZero: scalars come from node 0's copy.
func TestScalarsReportedFromNodeZero(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
var x : real;
    i : integer;
begin
    x := 0.0;
    for i in 1..4 do x := x + 1.0; end;
end.
`
	res := run(t, src, 4)
	if res.Scalars["x"] != 4 {
		t.Fatalf("x = %g", res.Scalars["x"])
	}
}

// TestTokenStrings covers diagnostic rendering.
func TestTokenStrings(t *testing.T) {
	toks, err := lexAll("foo 12 3.5 :=")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() != `identifier "foo"` {
		t.Fatalf("ident: %s", toks[0])
	}
	if toks[1].String() != `integer literal "12"` {
		t.Fatalf("int: %s", toks[1])
	}
	if toks[3].String() != ":=" {
		t.Fatalf("op: %s", toks[3])
	}
	if Kind(9999).String() == "" {
		t.Fatal("unknown kind string")
	}
	if TBool.String() != "boolean" || TInt.String() != "integer" || TReal.String() != "real" {
		t.Fatal("base type strings")
	}
}
