// Package lang implements a front end for the Kali language of the
// paper: a Pascal-like notation with processor arrays, distributed
// array declarations (dist by [block, *] on Procs) and forall loops
// with on clauses.  Programs are parsed, statically checked (including
// the subscript classification that decides between compile-time
// analysis and the run-time inspector), and interpreted SPMD on the
// simulated machine by lowering every forall onto the internal/forall
// engine.
//
// The accepted grammar covers the paper's Figures 1 and 4:
//
//	processors Procs : array[1..P] with P in 1..128;
//	const n = 64;
//	var a, old_a : array[1..n] of real dist by [block] on Procs;
//	    adj : array[1..n, 1..4] of integer dist by [block, *] on Procs;
//	    x : real;
//	begin
//	    forall i in 1..n on a[i].loc do ... end;
//	    while ... do ... end;
//	    reduce maxdiff(a, old_a) into x;
//	end
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	REALLIT

	// keywords
	KWProcessors
	KWVar
	KWConst
	KWArray
	KWOf
	KWReal
	KWInteger
	KWBoolean
	KWDist
	KWBy
	KWOn
	KWWith
	KWIn
	KWForall
	KWFor
	KWWhile
	KWDo
	KWIf
	KWThen
	KWElse
	KWEnd
	KWBegin
	KWAnd
	KWOr
	KWNot
	KWDiv
	KWMod
	KWTrue
	KWFalse
	KWReduce
	KWInto
	KWLoc
	KWBlock
	KWCyclic
	KWBlockCyclic
	KWMap
	KWRedistribute
	KWAs

	// punctuation / operators
	ASSIGN // :=
	SEMI   // ;
	COLON  // :
	COMMA  // ,
	DOT    // .
	DOTDOT // ..
	LBRACK // [
	RBRACK // ]
	LPAREN // (
	RPAREN // )
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	EQ     // =
	NE     // <>
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	REALLIT:      "real literal",
	KWProcessors: "processors", KWVar: "var", KWConst: "const",
	KWArray: "array", KWOf: "of", KWReal: "real", KWInteger: "integer",
	KWBoolean: "boolean", KWDist: "dist", KWBy: "by", KWOn: "on",
	KWWith: "with", KWIn: "in", KWForall: "forall", KWFor: "for",
	KWWhile: "while", KWDo: "do", KWIf: "if", KWThen: "then",
	KWElse: "else", KWEnd: "end", KWBegin: "begin", KWAnd: "and",
	KWOr: "or", KWNot: "not", KWDiv: "div", KWMod: "mod",
	KWTrue: "true", KWFalse: "false", KWReduce: "reduce", KWInto: "into",
	KWLoc: "loc", KWBlock: "block", KWCyclic: "cyclic",
	KWBlockCyclic: "block_cyclic", KWMap: "map",
	KWRedistribute: "redistribute", KWAs: "as",
	ASSIGN: ":=", SEMI: ";", COLON: ":", COMMA: ",", DOT: ".",
	DOTDOT: "..", LBRACK: "[", RBRACK: "]", LPAREN: "(", RPAREN: ")",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", LT: "<", LE: "<=",
	GT: ">", GE: ">=", EQ: "=", NE: "<>",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"processors": KWProcessors, "var": KWVar, "const": KWConst,
	"array": KWArray, "of": KWOf, "real": KWReal, "integer": KWInteger,
	"boolean": KWBoolean, "dist": KWDist, "by": KWBy, "on": KWOn,
	"with": KWWith, "in": KWIn, "forall": KWForall, "for": KWFor,
	"while": KWWhile, "do": KWDo, "if": KWIf, "then": KWThen,
	"else": KWElse, "end": KWEnd, "begin": KWBegin, "and": KWAnd,
	"or": KWOr, "not": KWNot, "div": KWDiv, "mod": KWMod,
	"true": KWTrue, "false": KWFalse, "reduce": KWReduce, "into": KWInto,
	"loc": KWLoc, "block": KWBlock, "cyclic": KWCyclic,
	"block_cyclic": KWBlockCyclic, "map": KWMap,
	"redistribute": KWRedistribute, "as": KWAs,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a positioned front-end error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
