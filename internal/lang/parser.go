package lang

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %s, found %s", k, t)
	}
	p.advance()
	return t, nil
}

// Parse parses Kali source into a File (no semantic checks yet).
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for {
		switch p.cur().Kind {
		case KWProcessors:
			if f.Procs != nil {
				t := p.cur()
				return nil, errf(t.Line, t.Col, "duplicate processors declaration")
			}
			d, err := p.procsDecl()
			if err != nil {
				return nil, err
			}
			f.Procs = d
		case KWConst:
			ds, err := p.constDecls()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, ds...)
		case KWVar:
			ds, err := p.varDecls()
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, ds...)
		case KWBegin:
			p.advance()
			body, err := p.stmts(KWEnd)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(KWEnd); err != nil {
				return nil, err
			}
			p.accept(DOT)
			p.accept(SEMI)
			f.Main = body
			if t := p.cur(); t.Kind != EOF {
				return nil, errf(t.Line, t.Col, "trailing input after program end: %s", t)
			}
			return f, nil
		default:
			t := p.cur()
			return nil, errf(t.Line, t.Col, "expected declaration or begin, found %s", t)
		}
	}
}

// procsDecl := processors NAME : array [ 1 .. bound ] [with NAME in lo..hi] ;
func (p *parser) procsDecl() (*ProcsDecl, error) {
	start, _ := p.expect(KWProcessors)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWArray); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	if t, err := p.expect(INTLIT); err != nil {
		return nil, err
	} else if t.Text != "1" {
		return nil, errf(t.Line, t.Col, "processor arrays must start at 1")
	}
	if _, err := p.expect(DOTDOT); err != nil {
		return nil, err
	}
	d := &ProcsDecl{Name: name.Text, Line: start.Line}
	if p.cur().Kind == IDENT {
		d.SizeVar = p.advance().Text
	} else {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Size = x
	}
	// Optional second dimension: ", 1 .. extent" (constant extents only).
	if p.accept(COMMA) {
		if d.SizeVar != "" {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "2-D processor arrays need constant extents (no with clause)")
		}
		if t, err := p.expect(INTLIT); err != nil {
			return nil, err
		} else if t.Text != "1" {
			return nil, errf(t.Line, t.Col, "processor arrays must start at 1")
		}
		if _, err := p.expect(DOTDOT); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Size2 = x
	}
	if _, err := p.expect(RBRACK); err != nil {
		return nil, err
	}
	if p.accept(KWWith) {
		if d.Size2 != nil {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "with clause is only supported for 1-D processor arrays")
		}
		v, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if d.SizeVar == "" || v.Text != d.SizeVar {
			return nil, errf(v.Line, v.Col, "with-clause variable %q must match the array bound", v.Text)
		}
		if _, err := p.expect(KWIn); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(DOTDOT); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.MinP, d.MaxP = lo, hi
	} else if d.SizeVar != "" {
		return nil, errf(start.Line, start.Col, "processor bound %q needs a with clause", d.SizeVar)
	}
	_, err = p.expect(SEMI)
	return d, err
}

// constDecls := const { NAME = expr ; }
func (p *parser) constDecls() ([]*ConstDecl, error) {
	p.advance() // const
	var out []*ConstDecl
	for p.cur().Kind == IDENT {
		name := p.advance()
		if _, err := p.expect(EQ); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		out = append(out, &ConstDecl{Name: name.Text, X: x, Line: name.Line})
	}
	if len(out) == 0 {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "const section declares nothing")
	}
	return out, nil
}

// varDecls := var { identList : typeSpec [distClause] ; }
func (p *parser) varDecls() ([]*VarDecl, error) {
	p.advance() // var
	var out []*VarDecl
	for p.cur().Kind == IDENT {
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "var section declares nothing")
	}
	return out, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	d := &VarDecl{Line: p.cur().Line}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Text)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	if p.accept(KWArray) {
		if _, err := p.expect(LBRACK); err != nil {
			return nil, err
		}
		for {
			lo, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(DOTDOT); err != nil {
				return nil, err
			}
			hi, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, ArrayDim{Lo: lo, Hi: hi})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		if _, err := p.expect(KWOf); err != nil {
			return nil, err
		}
	}
	bt, err := p.baseType()
	if err != nil {
		return nil, err
	}
	d.Elem = bt
	if p.accept(KWDist) {
		if len(d.Dims) == 0 {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "dist clause on a scalar")
		}
		if _, err := p.expect(KWBy); err != nil {
			return nil, err
		}
		if _, err := p.expect(LBRACK); err != nil {
			return nil, err
		}
		for {
			item, err := p.distItem()
			if err != nil {
				return nil, err
			}
			d.Dist = append(d.Dist, item)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		if p.accept(KWOn) {
			t, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			d.OnTo = t.Text
		}
	}
	_, err = p.expect(SEMI)
	return d, err
}

func (p *parser) baseType() (BaseType, error) {
	switch t := p.advance(); t.Kind {
	case KWReal:
		return TReal, nil
	case KWInteger:
		return TInt, nil
	case KWBoolean:
		return TBool, nil
	default:
		return 0, errf(t.Line, t.Col, "expected type, found %s", t)
	}
}

func (p *parser) distItem() (DistItem, error) {
	switch t := p.advance(); t.Kind {
	case KWBlock:
		return DistItem{Kind: KWBlock}, nil
	case KWCyclic:
		return DistItem{Kind: KWCyclic}, nil
	case KWBlockCyclic:
		if _, err := p.expect(LPAREN); err != nil {
			return DistItem{}, err
		}
		x, err := p.expr()
		if err != nil {
			return DistItem{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return DistItem{}, err
		}
		return DistItem{Kind: KWBlockCyclic, Block: x}, nil
	case KWMap:
		// User-defined distribution: map(v : expr) owns index v on
		// processor expr (paper §2.4's "mechanism for user-defined
		// distributions").
		if _, err := p.expect(LPAREN); err != nil {
			return DistItem{}, err
		}
		v, err := p.expect(IDENT)
		if err != nil {
			return DistItem{}, err
		}
		if _, err := p.expect(COLON); err != nil {
			return DistItem{}, err
		}
		x, err := p.expr()
		if err != nil {
			return DistItem{}, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return DistItem{}, err
		}
		return DistItem{Kind: KWMap, MapVar: v.Text, MapExpr: x}, nil
	case STAR:
		return DistItem{Kind: STAR}, nil
	default:
		return DistItem{}, errf(t.Line, t.Col, "expected distribution pattern, found %s", t)
	}
}

// stmts parses statements until one of the stop keywords (not consumed).
func (p *parser) stmts(stops ...Kind) ([]Stmt, error) {
	var out []Stmt
	for {
		k := p.cur().Kind
		for _, s := range stops {
			if k == s {
				return out, nil
			}
		}
		if k == EOF {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unexpected end of file in statement list")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	switch t := p.cur(); t.Kind {
	case KWForall:
		return p.forall()
	case KWFor:
		return p.forLoop()
	case KWWhile:
		return p.while()
	case KWIf:
		return p.ifStmt()
	case KWReduce:
		return p.reduce()
	case KWRedistribute:
		return p.redistribute()
	case IDENT:
		return p.assign()
	default:
		return nil, errf(t.Line, t.Col, "expected statement, found %s", t)
	}
}

// redistribute := redistribute NAME as [ distItem {, distItem} ]
func (p *parser) redistribute() (Stmt, error) {
	start := p.advance()
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWAs); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	r := &Redistribute{Name: name.Text, Line: start.Line}
	for {
		item, err := p.distItem()
		if err != nil {
			return nil, err
		}
		r.Items = append(r.Items, item)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACK); err != nil {
		return nil, err
	}
	return r, nil
}

// forall := forall NAME in expr .. expr on NAME [ expr ] . loc do
//
//	{var NAME : type ;} stmts end
func (p *parser) forall() (Stmt, error) {
	start := p.advance()
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWIn); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DOTDOT); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	// Optional second index: "forall i in a..b, j in c..d ...".
	var var2 string
	var lo2, hi2 Expr
	if p.accept(COMMA) {
		v2, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		var2 = v2.Text
		if _, err := p.expect(KWIn); err != nil {
			return nil, err
		}
		if lo2, err = p.expr(); err != nil {
			return nil, err
		}
		if _, err := p.expect(DOTDOT); err != nil {
			return nil, err
		}
		if hi2, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(KWOn); err != nil {
		return nil, err
	}
	arr, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	idx, err := p.expr()
	if err != nil {
		return nil, err
	}
	var idx2 Expr
	if p.accept(COMMA) {
		if idx2, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RBRACK); err != nil {
		return nil, err
	}
	if _, err := p.expect(DOT); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWLoc); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWDo); err != nil {
		return nil, err
	}
	fa := &Forall{
		Var: v.Text, Lo: lo, Hi: hi,
		Var2: var2, Lo2: lo2, Hi2: hi2,
		OnArray: arr.Text, OnIndex: idx, OnIndex2: idx2,
		Line: start.Line,
	}
	for p.cur().Kind == KWVar {
		p.advance()
		for p.cur().Kind == IDENT && p.peek().Kind == COLON {
			name := p.advance()
			if _, err := p.expect(COLON); err != nil {
				return nil, err
			}
			bt, err := p.baseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			fa.Decls = append(fa.Decls, &LocalDecl{Name: name.Text, Type: bt, Line: name.Line})
		}
	}
	body, err := p.stmts(KWEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWEnd); err != nil {
		return nil, err
	}
	fa.Body = body
	return fa, nil
}

func (p *parser) forLoop() (Stmt, error) {
	start := p.advance()
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWIn); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DOTDOT); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWDo); err != nil {
		return nil, err
	}
	body, err := p.stmts(KWEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWEnd); err != nil {
		return nil, err
	}
	return &ForLoop{Var: v.Text, Lo: lo, Hi: hi, Body: body, Line: start.Line}, nil
}

func (p *parser) while() (Stmt, error) {
	start := p.advance()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWDo); err != nil {
		return nil, err
	}
	body, err := p.stmts(KWEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWEnd); err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: start.Line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	start := p.advance()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KWThen); err != nil {
		return nil, err
	}
	then, err := p.stmts(KWEnd, KWElse)
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(KWElse) {
		els, err = p.stmts(KWEnd)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(KWEnd); err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: then, Else: els, Line: start.Line}, nil
}

// reduce := reduce NAME ( NAME {, NAME} ) into NAME
func (p *parser) reduce() (Stmt, error) {
	start := p.advance()
	op, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	r := &Reduce{Op: op.Text, Line: start.Line}
	for {
		a, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		r.Args = append(r.Args, a.Text)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWInto); err != nil {
		return nil, err
	}
	into, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	r.Into = into.Text
	return r, nil
}

func (p *parser) assign() (Stmt, error) {
	name := p.advance()
	a := &Assign{Name: name.Text, Line: name.Line}
	if p.accept(LBRACK) {
		for {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			a.Indexes = append(a.Indexes, x)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	a.X = x
	return a, nil
}

// Expression precedence: or < and < not < relational < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == KWOr {
		op := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: KWOr, L: l, R: r, Line: op.Line}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == KWAnd {
		op := p.advance()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: KWAnd, L: l, R: r, Line: op.Line}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.cur().Kind == KWNot {
		op := p.advance()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: KWNot, X: x, Line: op.Line}, nil
	}
	return p.relExpr()
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case LT, LE, GT, GE, EQ, NE:
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: k, L: l, R: r, Line: op.Line}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != PLUS && k != MINUS {
			return l, nil
		}
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: k, L: l, R: r, Line: op.Line}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != STAR && k != SLASH && k != KWDiv && k != KWMod {
			return l, nil
		}
		op := p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: k, L: l, R: r, Line: op.Line}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.cur().Kind == MINUS {
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: MINUS, X: x, Line: op.Line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case INTLIT:
		p.advance()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad integer literal %q", t.Text)
		}
		return &IntLit{V: v, Line: t.Line}, nil
	case REALLIT:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad real literal %q", t.Text)
		}
		return &RealLit{V: v, Line: t.Line}, nil
	case KWTrue:
		p.advance()
		return &BoolLit{V: true, Line: t.Line}, nil
	case KWFalse:
		p.advance()
		return &BoolLit{V: false, Line: t.Line}, nil
	case LPAREN:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RPAREN)
		return x, err
	case IDENT:
		p.advance()
		switch p.cur().Kind {
		case LBRACK:
			p.advance()
			ref := &ArrayRef{Name: t.Text, Line: t.Line}
			for {
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				ref.Indexes = append(ref.Indexes, x)
				if !p.accept(COMMA) {
					break
				}
			}
			_, err := p.expect(RBRACK)
			return ref, err
		case LPAREN:
			p.advance()
			call := &Call{Name: t.Text, Line: t.Line}
			if p.cur().Kind != RPAREN {
				for {
					x, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, x)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			_, err := p.expect(RPAREN)
			return call, err
		default:
			return &Ident{Name: t.Text, Line: t.Line}, nil
		}
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
	}
}
