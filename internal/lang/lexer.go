package lang

import (
	"strings"
	"unicode"
)

// lexer turns source text into tokens.  Comments run from "--" to end
// of line (the paper's listings use "- -"-style dashes).
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.peek2() == '-':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token or a positioned error.
func (lx *lexer) next() (Token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[strings.ToLower(text)]; ok {
			return Token{Kind: k, Text: text, Line: line, Col: col}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		kind := INTLIT
		// A '.' starts a real literal only when not "..".
		if lx.peek() == '.' && isDigit(lx.peek2()) {
			kind = REALLIT
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.pos
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				kind = REALLIT
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.pos = save // not an exponent; restore
			}
		}
		return Token{Kind: kind, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}

	lx.advance()
	two := func(k Kind, text string) (Token, error) {
		lx.advance()
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	}
	switch c {
	case ':':
		if lx.peek() == '=' {
			return two(ASSIGN, ":=")
		}
		return Token{Kind: COLON, Text: ":", Line: line, Col: col}, nil
	case ';':
		return Token{Kind: SEMI, Text: ";", Line: line, Col: col}, nil
	case ',':
		return Token{Kind: COMMA, Text: ",", Line: line, Col: col}, nil
	case '.':
		if lx.peek() == '.' {
			return two(DOTDOT, "..")
		}
		return Token{Kind: DOT, Text: ".", Line: line, Col: col}, nil
	case '[':
		return Token{Kind: LBRACK, Text: "[", Line: line, Col: col}, nil
	case ']':
		return Token{Kind: RBRACK, Text: "]", Line: line, Col: col}, nil
	case '(':
		return Token{Kind: LPAREN, Text: "(", Line: line, Col: col}, nil
	case ')':
		return Token{Kind: RPAREN, Text: ")", Line: line, Col: col}, nil
	case '+':
		return Token{Kind: PLUS, Text: "+", Line: line, Col: col}, nil
	case '-':
		return Token{Kind: MINUS, Text: "-", Line: line, Col: col}, nil
	case '*':
		return Token{Kind: STAR, Text: "*", Line: line, Col: col}, nil
	case '/':
		return Token{Kind: SLASH, Text: "/", Line: line, Col: col}, nil
	case '<':
		if lx.peek() == '=' {
			return two(LE, "<=")
		}
		if lx.peek() == '>' {
			return two(NE, "<>")
		}
		return Token{Kind: LT, Text: "<", Line: line, Col: col}, nil
	case '>':
		if lx.peek() == '=' {
			return two(GE, ">=")
		}
		return Token{Kind: GT, Text: ">", Line: line, Col: col}, nil
	case '=':
		return Token{Kind: EQ, Text: "=", Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(rune(c)))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
