package lang

import (
	"strings"
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// compileErr asserts that src fails to compile with a message
// containing want.
func compileErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err.Error(), want)
	}
}

const header = `
processors Procs : array[1..P] with P in 1..8;
const n = 16;
var a, b : array[1..n] of real dist by [block] on Procs;
    k : array[1..n] of integer dist by [block] on Procs;
    w : array[1..n] of real;
    x : real;
    i : integer;
`

func TestLexerErrors(t *testing.T) {
	compileErr(t, "processors !", "unexpected character")
}

func TestParserErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"begin end", "lacks a processors"},
		{"var x : real;", "expected declaration or begin"},
		{header + "begin x := ; end.", "expected expression"},
		{header + "begin x := 1.0 end.", "expected ;"},
		{header + "begin forall i in 1..n do x := 1.0; end; end.", "expected on"},
		{header + "begin forall i in 1..n on a[i] do x := 1.0; end; end.", "expected ."},
		{header + "begin if x then x := 1.0; end; end.", "must be boolean"},
		{"processors A : array[2..4];", "must start at 1"},
		{"processors A : array[1..Q];", "needs a with clause"},
		{"processors A : array[1..Q] with R in 1..4;", "must match"},
		{header + "const ;", "declares nothing"},
		{header + "var ;", "declares nothing"},
		{header + "begin while true do x := 1.0;", "unexpected end of file"},
	}
	for _, c := range cases {
		compileErr(t, c.src, c.want)
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		// type errors
		{header + "begin x := true; end.", "cannot assign"},
		{header + "begin i := 1.5; end.", "cannot assign"},
		{header + "begin x := y; end.", "undeclared name"},
		{header + "begin x := a; end.", "without subscripts"},
		{header + "begin x := x[1]; end.", "is not an array"},
		{header + "begin a[1.5] := 1.0; end.", "index must be an integer"},
		{header + "begin a[1,2] := 1.0; end.", "1 dimensions"},
		{header + "begin x := abs(1,2); end.", "takes 1 argument"},
		{header + "begin x := nosuch(1); end.", "unknown function"},
		{header + "begin x := 1 + true; end.", "arithmetic on booleans"},
		{header + "begin x := not 1; end.", "not needs a boolean"},
		{header + "begin i := 1 mod 1.5; end.", "mod needs integers"},
		// distributed-array discipline
		{header + "begin x := a[1]; end.", "outside a forall"},
		{header + "begin forall i in 1..n on w[i].loc do a[i] := 1.0; end; end.",
			"needs a distributed one-dimensional array"},
		{header + "begin forall i in 1..n on a[i*i].loc do a[i] := 1.0; end; end.",
			"must be affine"},
		{header + "begin forall i in 1..n on a[i].loc do w[i] := 1.0; end; end.",
			"replicated array"},
		{header + "begin forall i in 1..n on a[i].loc do k[i] := 1; end; end.",
			"only real arrays"},
		{header + "begin forall i in 1..n on a[i].loc do x := 1.0; end; end.",
			"global scalar"},
		{header + "begin forall i in 1..n on a[i].loc do forall i in 1..n on a[i].loc do a[i] := 1.0; end; end; end.",
			"nested forall"},
		// reduce discipline
		{header + "begin reduce maxdiff(a) into x; end.", "takes 2"},
		{header + "begin reduce maxdiff(a, b) into i; end.", "must be a real scalar"},
		{header + "begin reduce maxdiff(a, w) into x; end.", "must be a distributed real array"},
		{header + "begin reduce frobnicate(a) into x; end.", "unknown reduction"},
		// declarations
		{"processors P1 : array[1..4];\nconst n = 16;\nvar a : array[1..n] of real dist by [block, *] on P1;\nbegin end.",
			"dist items"},
		{"processors P1 : array[1..4];\nvar a : array[1..8] of real dist by [block] on Nope;\nbegin end.",
			"unknown processor array"},
		{"processors P1 : array[1..4];\nvar a : array[1..8] of boolean dist by [block];\nbegin end.",
			"boolean arrays"},
		{"processors P1 : array[1..4];\nvar a : real;\nvar a : integer;\nbegin end.",
			"duplicate declaration"},
		{"processors P1 : array[1..4];\nvar m : integer;\nvar a : array[1..m] of real;\nbegin end.",
			"constant expressions"},
	}
	for _, c := range cases {
		compileErr(t, c.src, c.want)
	}
}

func TestRuntimeErrors(t *testing.T) {
	// Elaboration failure: too few processors for the with clause.
	src := `
processors Procs : array[1..P] with P in 8..8;
var a : array[1..16] of real dist by [block] on Procs;
begin end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(core.Config{P: 2, Params: machine.Ideal()}); err == nil {
		t.Fatal("expected elaboration error for insufficient processors")
	}
}

func TestAffineDetection(t *testing.T) {
	// Each subscript form must be accepted and produce correct results.
	for _, sub := range []string{"i", "i+1", "i-1", "1+i", "n-i", "2*i", "i*2", "-i+n"} {
		src := `
processors Procs : array[1..P] with P in 1..4;
const n = 10;
var a, b : array[1..2*n] of real dist by [block] on Procs;
    i : integer;
begin
    for i in 1..2*n do b[i] := float(i); end;
    forall i in 2..n-1 on a[i].loc do
        a[i] := b[` + sub + `];
    end;
end.
`
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("subscript %q: %v", sub, err)
		}
		res, err := p.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		if err != nil {
			t.Fatalf("subscript %q: %v", sub, err)
		}
		// Affine loops must not pay per-reference inspector cost.
		if res.Report.Inspector > 0.001 {
			t.Fatalf("subscript %q treated as indirect (inspector %g s)", sub, res.Report.Inspector)
		}
		// Check one representative value: i = 5.
		eval := map[string]int{"i": 5, "i+1": 6, "i-1": 4, "1+i": 6, "n-i": 5, "2*i": 10, "i*2": 10, "-i+n": 5}
		if got := res.Arrays["a"][4]; got != float64(eval[sub]) {
			t.Fatalf("subscript %q: a[5] = %g, want %d", sub, got, eval[sub])
		}
	}
}

func TestWhileAndIfElse(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..2;
var x : real;
    i : integer;
begin
    i := 0;
    x := 0.0;
    while i < 10 do
        if i mod 2 = 0 then
            x := x + 1.0;
        else
            x := x + 0.5;
        end;
        i := i + 1;
    end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 2, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["x"] != 7.5 {
		t.Fatalf("x = %g, want 7.5", res.Scalars["x"])
	}
	if res.Scalars["i"] != 10 {
		t.Fatalf("i = %g", res.Scalars["i"])
	}
}

func TestBuiltins(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..2;
var x, y : real;
    i : integer;
begin
    x := abs(-3.0) + sqrt(16.0) + min(1.0, 2.0) + max(1.0, 2.0);
    i := trunc(3.9);
    y := float(i) / 2.0;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 1, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["x"] != 10 {
		t.Fatalf("x = %g", res.Scalars["x"])
	}
	if res.Scalars["i"] != 3 || res.Scalars["y"] != 1.5 {
		t.Fatalf("i=%g y=%g", res.Scalars["i"], res.Scalars["y"])
	}
}

func TestReduceOps(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 8;
var a, b : array[1..n] of real dist by [cyclic] on Procs;
    s, mx, mn : real;
    i : integer;
begin
    for i in 1..n do a[i] := float(i); b[i] := 0.0; end;
    reduce sum(a) into s;
    reduce max(a) into mx;
    reduce min(a) into mn;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["s"] != 36 || res.Scalars["mx"] != 8 || res.Scalars["mn"] != 1 {
		t.Fatalf("s=%g mx=%g mn=%g", res.Scalars["s"], res.Scalars["mx"], res.Scalars["mn"])
	}
}

// TestMapDistClause: parsing, checking and running the map dist form.
func TestMapDistClause(t *testing.T) {
	// Well-formed: cyclic-by-hand via mod.
	src := `
processors Procs : array[1..P] with P in 1..8;
const n = 12;
var a : array[1..n] of real dist by [map(i : (i - 1) mod P)] on Procs;
    i : integer;
begin
    for i in 1..n do
        a[i] := float(i * i);
    end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if res.Arrays["a"][i-1] != float64(i*i) {
			t.Fatalf("a[%d] = %g", i, res.Arrays["a"][i-1])
		}
	}
}

// TestMapDistClauseErrors: malformed map clauses are rejected.
func TestMapDistClauseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`
processors Procs : array[1..P] with P in 1..8;
const n = 8;
var a : array[1..n] of real dist by [map(i : 0.5)] on Procs;
begin end.`, "must be an integer"},
		{`
processors Procs : array[1..P] with P in 1..8;
const n = 8;
var x : real;
    a : array[1..n] of real dist by [map(i : i + trunc(x))] on Procs;
begin end.`, "computable from constants"},
		{`
processors Procs : array[1..P] with P in 1..8;
const n = 8;
var a : array[1..n] of real dist by [map(i)] on Procs;
begin end.`, "expected :"},
	}
	for _, c := range cases {
		compileErr(t, c.src, c.want)
	}
	// Owner values outside [0..P) surface at elaboration time.
	p, err := Compile(`
processors Procs : array[1..P] with P in 1..8;
const n = 8;
var a : array[1..n] of real dist by [map(i : n)] on Procs;
begin end.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(core.Config{P: 4, Params: machine.Ideal()}); err == nil || !strings.Contains(err.Error(), "out of [0..") {
		t.Fatalf("want owner-range error, got %v", err)
	}
}

// header2 declares a 2-D processor grid and tiled arrays for the
// two-index forall tests.
const header2 = `
processors Procs : array[1..2, 1..2];
const n = 8;
var a2, b2 : array[1..n, 1..n] of real dist by [block, block] on Procs;
    i, j : integer;
`

// TestAffineOnClause2DAccepted: per-dimension affine on-clause
// subscripts (shifted, strided, reflected) are accepted, the placement
// does not change the computed values, and the loop stays on the
// compile-time path (no inspector-scale cost).
func TestAffineOnClause2DAccepted(t *testing.T) {
	cases := []struct {
		onI, onJ           string
		loI, hiI, loJ, hiJ string
		// mapI/mapJ mirror the on-clause subscripts in Go.
		mapI, mapJ func(int) int
		rI, rJ     [2]int // iteration ranges, inclusive
	}{
		{"i", "j", "1", "n", "1", "n",
			func(i int) int { return i }, func(j int) int { return j }, [2]int{1, 8}, [2]int{1, 8}},
		{"2*i", "j-1", "1", "n div 2", "2", "n",
			func(i int) int { return 2 * i }, func(j int) int { return j - 1 }, [2]int{1, 4}, [2]int{2, 8}},
		{"i+1", "2*j", "1", "n-1", "1", "n div 2",
			func(i int) int { return i + 1 }, func(j int) int { return 2 * j }, [2]int{1, 7}, [2]int{1, 4}},
		{"n-i", "j", "1", "n-1", "1", "n",
			func(i int) int { return 8 - i }, func(j int) int { return j }, [2]int{1, 7}, [2]int{1, 8}},
	}
	for _, cse := range cases {
		src := header2 + `
begin
    for i in 1..n do
        for j in 1..n do
            b2[i, j] := float(i*10 + j);
        end;
    end;
    forall i in ` + cse.loI + `..` + cse.hiI + `, j in ` + cse.loJ + `..` + cse.hiJ +
			` on a2[` + cse.onI + `, ` + cse.onJ + `].loc do
        a2[` + cse.onI + `, ` + cse.onJ + `] := b2[` + cse.onI + `, ` + cse.onJ + `];
    end;
end.
`
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("on [%s, %s]: %v", cse.onI, cse.onJ, err)
		}
		res, err := p.Run(core.Config{P: 4, Params: machine.NCUBE7()})
		if err != nil {
			t.Fatalf("on [%s, %s]: %v", cse.onI, cse.onJ, err)
		}
		want := make([]float64, 64)
		for i := cse.rI[0]; i <= cse.rI[1]; i++ {
			for j := cse.rJ[0]; j <= cse.rJ[1]; j++ {
				r, c := cse.mapI(i), cse.mapJ(j)
				want[(r-1)*8+c-1] = float64(r*10 + c)
			}
		}
		for k, w := range want {
			if res.Arrays["a2"][k] != w {
				t.Fatalf("on [%s, %s]: a2[%d,%d] = %g, want %g",
					cse.onI, cse.onJ, k/8+1, k%8+1, res.Arrays["a2"][k], w)
			}
		}
		// Affine on clause + affine reads: compile-time, no inspector.
		if res.Report.Inspector > 0.001 {
			t.Fatalf("on [%s, %s]: paid inspector-scale cost (%g s)", cse.onI, cse.onJ, res.Report.Inspector)
		}
	}
}

// TestAffineOnClause2DRejected: non-affine, cross-variable, and
// variable-free on-clause subscripts are still rejected with the
// existing error code.
func TestAffineOnClause2DRejected(t *testing.T) {
	cases := []struct{ src, want string }{
		{header2 + "begin forall i in 1..n, j in 1..n on a2[i*i, j].loc do a2[i*i, j] := 1.0; end; end.",
			"must be affine"},
		{header2 + "begin forall i in 1..n, j in 1..n on a2[j, i].loc do a2[j, i] := 1.0; end; end.",
			"must be affine"},
		{header2 + "begin forall i in 1..n, j in 1..n on a2[i, i].loc do a2[i, i] := 1.0; end; end.",
			"must be affine"},
		{header2 + "begin forall i in 1..n, j in 1..n on a2[3, j].loc do a2[3, j] := 1.0; end; end.",
			"must be affine"},
	}
	for _, c := range cases {
		compileErr(t, c.src, c.want)
	}
	// A constant coefficient that evaluates to zero passes the check
	// phase (only elaboration knows const values) but is diagnosed
	// with its source line at run time.
	p, err := Compile(`
processors Procs : array[1..2, 1..2];
const n = 8;
      z = 0;
var a2 : array[1..n, 1..n] of real dist by [block, block] on Procs;
begin
    forall i in 1..n, j in 1..n on a2[z*i, j].loc do
        a2[z*i, j] := 1.0;
    end;
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(core.Config{P: 4, Params: machine.Ideal()}); err == nil ||
		!strings.Contains(err.Error(), "evaluates to zero") || !strings.Contains(err.Error(), "line 7") {
		t.Fatalf("want line-numbered zero-coefficient error, got %v", err)
	}
}

// TestForall2CrossDistributionIdentityRead: an [i,j] read of an array
// distributed differently from the on array must not take the aligned
// local shortcut — the affine path derives the communication instead.
func TestForall2CrossDistributionIdentityRead(t *testing.T) {
	src := `
processors Procs : array[1..2, 1..2];
const n = 8;
var a : array[1..n, 1..n] of real dist by [block, block] on Procs;
    b : array[1..n, 1..n] of real dist by [cyclic, block] on Procs;
    i, j : integer;
begin
    for i in 1..n do
        for j in 1..n do
            b[i, j] := float(i * 100 + j);
        end;
    end;
    forall i in 1..n, j in 1..n on a[i,j].loc do
        a[i, j] := b[i, j];
    end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			if got := res.Arrays["a"][(i-1)*8+j-1]; got != float64(i*100+j) {
				t.Fatalf("a[%d,%d] = %g, want %d", i, j, got, i*100+j)
			}
		}
	}
}
