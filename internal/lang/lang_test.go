package lang

import (
	"fmt"
	"strings"
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
	"kali/internal/mesh"
)

// fig1Program is the paper's Figure 1, completed with initialization.
const fig1Program = `
processors Procs : array[1..P] with P in 1..max_procs;
const max_procs = 64;
      N = 24;
var A : array[1..N] of real dist by [block] on Procs;
    B : array[1..N, 1..4] of real dist by [cyclic, *] on Procs;
    i : integer;
begin
    for i in 1..N do
        A[i] := float(i);
    end;
    forall i in 1..N-1 on A[i].loc do
        A[i] := A[i+1];
    end;
end.
`

func TestFigure1Shift(t *testing.T) {
	p, err := Compile(fig1Program)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := p.Run(core.Config{P: procs, Params: machine.Ideal()})
		if err != nil {
			t.Fatal(err)
		}
		a := res.Arrays["A"]
		for i := 1; i <= 23; i++ {
			if a[i-1] != float64(i+1) {
				t.Fatalf("P=%d: A[%d] = %g, want %d", procs, i, a[i-1], i+1)
			}
		}
		if a[23] != 24 {
			t.Fatalf("A[24] = %g", a[23])
		}
	}
}

// fig4Program is the paper's Figure 4 relaxation, completed with mesh
// setup for an nx×ny rectangular grid (the paper's measured workload)
// and a convergence check.
func fig4Program(nx, ny, sweeps int) string {
	return fmt.Sprintf(`
processors Procs : array[1..P] with P in 1..128;
const nx = %d;
      ny = %d;
      n = nx * ny;
      sweeps = %d;
var a, old_a : array[1..n] of real dist by [ block ] on Procs;
    count : array[1..n] of integer dist by [ block ] on Procs;
    adj : array[1..n, 1..4] of integer dist by [ block, * ] on Procs;
    coef : array[1..n, 1..4] of real dist by [ block, * ] on Procs;
    r, c, i, s : integer;
    delta : real;
begin
    -- code to set up arrays 'adj' and 'coef'
    for r in 1..ny do
        for c in 1..nx do
            i := (r-1)*nx + c;
            if (r = 1) or (r = ny) or (c = 1) or (c = nx) then
                count[i] := 0;
                a[i] := 1.0 + float(i mod 7);
            else
                count[i] := 4;
                adj[i,1] := i - nx;
                adj[i,2] := i - 1;
                adj[i,3] := i + 1;
                adj[i,4] := i + nx;
                coef[i,1] := 0.25;
                coef[i,2] := 0.25;
                coef[i,3] := 0.25;
                coef[i,4] := 0.25;
                a[i] := 0.0;
            end;
        end;
    end;

    for s in 1..sweeps do
        -- copy mesh values
        forall i in 1..n on old_a[i].loc do
            old_a[i] := a[i];
        end;
        -- perform relaxation (computational core)
        forall i in 1..n on a[i].loc do
            var x : real;
            var j : integer;
            x := 0.0;
            for j in 1..count[i] do
                x := x + coef[i,j] * old_a[ adj[i,j] ];
            end;
            if count[i] > 0 then
                a[i] := x;
            end;
        end;
        -- code to check convergence
        reduce maxdiff(a, old_a) into delta;
    end;
end.
`, nx, ny, sweeps)
}

func TestFigure4Relaxation(t *testing.T) {
	const nx, ny, sweeps = 12, 10, 8
	prog, err := Compile(fig4Program(nx, ny, sweeps))
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: the mesh package's sequential Jacobi.  The program's
	// boundary profile matches mesh.InitValues.
	m := mesh.Rect(nx, ny)
	want := mesh.SeqJacobi(m, mesh.InitValues(m), sweeps)
	for _, procs := range []int{1, 2, 4} {
		res, err := prog.Run(core.Config{P: procs, Params: machine.Ideal()})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Arrays["a"]
		if d := mesh.MaxDelta(got, want); d > 1e-12 {
			t.Fatalf("P=%d: language result differs from oracle by %g", procs, d)
		}
		if res.Scalars["delta"] <= 0 {
			t.Fatalf("convergence delta not computed: %v", res.Scalars["delta"])
		}
	}
}

// TestFigure4InspectorAmortized: the Figure 4 program's relaxation
// forall uses the inspector once; inspector time does not grow with
// sweeps.
func TestFigure4InspectorAmortized(t *testing.T) {
	p8, err := Compile(fig4Program(12, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(fig4Program(12, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := p8.Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Report.Inspector != r2.Report.Inspector {
		t.Fatalf("inspector grew with sweeps: %g vs %g",
			r2.Report.Inspector, r8.Report.Inspector)
	}
	if r8.Report.Executor <= r2.Report.Executor {
		t.Fatal("executor did not grow with sweeps")
	}
}

// TestRealEstateAgent: the with clause caps P.
func TestRealEstateAgent(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 16;
var a : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
    for i in 1..n do a[i] := 1.0; end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 16, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 4 {
		t.Fatalf("real estate agent chose P=%d, want 4", res.P)
	}
}

// TestCyclicDistProgram: same shift with cyclic distribution — every
// iteration communicates, but the answer is unchanged.
func TestCyclicDistProgram(t *testing.T) {
	src := strings.Replace(fig1Program, "dist by [block]", "dist by [cyclic]", 1)
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Arrays["A"]
	for i := 1; i <= 23; i++ {
		if a[i-1] != float64(i+1) {
			t.Fatalf("A[%d] = %g", i, a[i-1])
		}
	}
}

// TestBlockCyclicProgram exercises block_cyclic(b) syntax.
func TestBlockCyclicProgram(t *testing.T) {
	src := strings.Replace(fig1Program, "dist by [block]", "dist by [block_cyclic(3)]", 1)
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays["A"][0] != 2 {
		t.Fatal("block_cyclic shift wrong")
	}
}

// TestSubscriptClassification verifies the checker's analysis: affine
// subscripts go to the compile-time path, indirect ones force the
// inspector (observable through inspector-phase time).
func TestSubscriptClassification(t *testing.T) {
	affine := `
processors Procs : array[1..P] with P in 1..8;
const n = 64;
var a, b : array[1..n] of real dist by [block] on Procs;
    i : integer;
begin
    forall i in 2..n on a[i].loc do
        a[i] := b[i-1] + b[i];
    end;
end.
`
	p, err := Compile(affine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	// Compile-time path: inspector phase exists but is tiny (a couple
	// of symbolic evaluations), far below one RefCheck per reference.
	if res.Report.Inspector > 64*48e-6/2 {
		t.Fatalf("affine loop paid inspector-like cost: %g s", res.Report.Inspector)
	}

	indirect := `
processors Procs : array[1..P] with P in 1..8;
const n = 64;
var a, b : array[1..n] of real dist by [block] on Procs;
    idx : array[1..n] of integer dist by [block] on Procs;
    i : integer;
begin
    for i in 1..n do idx[i] := n + 1 - i; end;
    for i in 1..n do b[i] := float(i); end;
    forall i in 1..n on a[i].loc do
        a[i] := b[ idx[i] ];
    end;
end.
`
	p2, err := Compile(indirect)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.Inspector < 64*48e-6/4 {
		t.Fatalf("indirect loop did not pay inspector cost: %g s", res2.Report.Inspector)
	}
	// And the gather is correct.
	b := res2.Arrays["a"]
	for i := 1; i <= 64; i++ {
		if b[i-1] != float64(64+1-i) {
			t.Fatalf("a[%d] = %g", i, b[i-1])
		}
	}
}

func TestIntArrayGather(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 8;
var c : array[1..n] of integer dist by [cyclic] on Procs;
    i : integer;
begin
    for i in 1..n do c[i] := i * 3; end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if res.IntArrays["c"][i-1] != i*3 {
			t.Fatalf("c[%d] = %d", i, res.IntArrays["c"][i-1])
		}
	}
}

func TestReplicatedArrayProgram(t *testing.T) {
	src := `
processors Procs : array[1..P] with P in 1..4;
const n = 8;
var a : array[1..n] of real dist by [block] on Procs;
    w : array[1..n] of real;
    i : integer;
begin
    for i in 1..n do w[i] := float(i) * 2.0; end;
    forall i in 1..n on a[i].loc do
        a[i] := w[i] + 1.0;
    end;
end.
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(core.Config{P: 2, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if res.Arrays["a"][i-1] != float64(i)*2+1 {
			t.Fatalf("a[%d] = %g", i, res.Arrays["a"][i-1])
		}
	}
	if res.Arrays["w"][3] != 8 {
		t.Fatal("replicated array not gathered")
	}
}
