package lang

import (
	"fmt"
	"math"

	"kali/internal/darray"
	"kali/internal/forall"
)

// This file is the execution half of the forall-body bytecode pipeline
// (compile.go is the lowering half).  A compiled body is a flat
// instruction array over two typed register files — float64 registers
// for real values and int registers for integers and booleans (0/1) —
// with the node's array headers bound to numbered slots and all scope
// resolution done at compile time.  Executing one iteration walks the
// instruction array with no allocation, no map lookups, and no
// interface boxing; all distributed-memory semantics stay behind the
// same forall.Env calls the tree-walking interpreter uses, so the two
// paths are observably identical (same values, same machine.Stats,
// same schedules) — the VM only removes host-side interpretive
// overhead.
//
// Cost-model parity: the tree walker charges Env.Flops(1) per binary
// operator, unary minus, and builtin call as it evaluates, interleaved
// with its reads' memory-reference charges.  The compiler emits
// opFlops at those same AST positions — including for nodes it
// constant-folds or strength-reduces away — and the VM replays each
// opFlops k as k unit charges, reproducing the walker's exact charge
// sequence.  Simulated times and FlopCount match the walker
// bit-for-bit while the host does less work.

// opcode enumerates VM instructions.  Operand conventions: a is the
// destination register (or sole operand), b and c are sources, d is an
// extra source.  f[·] is the float file, n[·] the int file; booleans
// live in n as 0/1.
type opcode uint8

const (
	opRet      opcode = iota // return from the body
	opFlops                  // a × env.Flops(1): positioned cost-model charges
	opJmp                    // pc = a
	opJmpIfNot               // if n[b] == 0 → pc = a
	opJmpGtI                 // if n[b] > n[c] → pc = a (for-loop exit)

	opMovF   // f[a] = f[b]
	opMovI   // n[a] = n[b]
	opIntToF // f[a] = float64(n[b])
	opTruncI // n[a] = int(f[b])

	opNegF // f[a] = -f[b]
	opNegI // n[a] = -n[b]
	opAddF // f[a] = f[b] + f[c]
	opSubF
	opMulF
	opDivF
	opAddI // n[a] = n[b] + n[c]
	opSubI
	opMulI
	opDivI
	opModI
	opIncI // n[a]++
	opLinI // n[a] = n[b]*constI[c] + constI[d] (strength-reduced affine subscript)

	opLtF // n[a] = b2i(f[b] < f[c]) — ints widen first, matching the walker's float compares
	opLeF
	opGtF
	opGeF
	opEqF
	opNeF
	opEqB  // n[a] = b2i(n[b] == n[c])
	opNeB  // n[a] = b2i(n[b] != n[c])
	opAndB // n[a] = n[b] & n[c] (operands are 0/1; both sides always evaluated, like the walker)
	opOrB  // n[a] = n[b] | n[c]
	opNotB // n[a] = 1 - n[b]

	opAbsF  // f[a] = math.Abs(f[b])
	opSqrtF // f[a] = math.Sqrt(f[b])
	opMinF  // f[a] = math.Min(f[b], f[c])
	opMaxF  // f[a] = math.Max(f[b], f[c])

	opLdLoc1 // f[a] = env.ReadLocal(reals[b], n[c]) — compiler-proven local / replicated
	opLdLoc2 // f[a] = env.ReadLocal2(reals[b], n[c], n[d])
	opLd1    // f[a] = env.Read(reals[b], n[c]) — affine/indirect schedule path
	opLd2    // f[a] = env.Read2(reals[b], n[c], n[d])
	opLdInt1 // n[a] = env.ReadInt(ints[b], n[c])
	opLdInt2 // n[a] = env.ReadInt2(ints[b], n[c], n[d])
	opSt1    // env.Write(reals[b], n[c], f[a]) — owner-computes, bounds-checked
	opSt2    // env.Write2(reals[b], n[c], n[d], f[a])
)

// instr is one VM instruction.
type instr struct {
	op         opcode
	a, b, c, d int32
}

// fInit / iInit preset a pinned register at vmState creation (constant
// pools live in registers, loaded once per node instead of once per
// element).
type fInit struct {
	reg int32
	v   float64
}
type iInit struct {
	reg int32
	v   int
}

// scalarInput binds a global scalar (immutable within one forall
// execution — the checker forbids assigning globals inside bodies) to
// a pinned register; execForall refreshes the values at each launch.
type scalarInput struct {
	name string
	t    BaseType
	reg  int32
}

// vmArraySlot describes one bound array: its name (resolved against
// the node's headers when the vmState is created) and, for rank-2
// arrays, the declared shape used to inline row-major linearization.
type vmArraySlot struct {
	name  string
	rank  int
	shape [2]int
}

// compiledBody is the immutable output of compileBody, shared by every
// node's vmState.
type compiledBody struct {
	name string
	rank int // 1 or 2 index variables
	code []instr

	nF, nI     int32 // register file sizes
	iReg, jReg int32 // index-variable registers

	initF  []fInit
	initI  []iInit
	constI []int // pool for opLinI coefficients

	scalars []scalarInput
	reals   []vmArraySlot
	ints    []string
}

// vmState is one node's execution state for one compiled body: the
// register files and the resolved array headers.  Created once per
// forall per node; reused across sweeps with zero allocation.
type vmState struct {
	cb *compiledBody
	f  []float64
	n  []int
	ra []*darray.Array
	ia []*darray.IntArray
}

func newVMState(cb *compiledBody, in *interp) *vmState {
	st := &vmState{
		cb: cb,
		f:  make([]float64, cb.nF),
		n:  make([]int, cb.nI),
	}
	for _, c := range cb.initF {
		st.f[c.reg] = c.v
	}
	for _, c := range cb.initI {
		st.n[c.reg] = c.v
	}
	st.ra = make([]*darray.Array, len(cb.reals))
	for k, s := range cb.reals {
		a := in.arrays[s.name]
		if a == nil {
			panic(fmt.Sprintf("lang: vm slot %d: unknown real array %q", k, s.name))
		}
		st.ra[k] = a
	}
	st.ia = make([]*darray.IntArray, len(cb.ints))
	for k, name := range cb.ints {
		ia := in.ints[name]
		if ia == nil {
			panic(fmt.Sprintf("lang: vm slot %d: unknown integer array %q", k, name))
		}
		st.ia[k] = ia
	}
	return st
}

// bindScalars refreshes the global-scalar input registers from the
// interpreter's current values.  Called once per forall launch (the
// values cannot change mid-loop).
func (st *vmState) bindScalars(in *interp) {
	for _, s := range st.cb.scalars {
		v := in.scalars[s.name]
		if v == nil {
			panic(fmt.Sprintf("lang: vm scalar input %q is not bound", s.name))
		}
		switch s.t {
		case TReal:
			st.f[s.reg] = v.f
		case TInt:
			st.n[s.reg] = v.i
		default:
			st.n[s.reg] = b2i(v.b)
		}
	}
}

// body1 / body2 are the forall.Loop body entry points (method values,
// bound once when the loop is built).
func (st *vmState) body1(i int, env *forall.Env) { st.exec(i, 0, env) }

func (st *vmState) body2(i, j int, env *forall.Env) { st.exec(i, j, env) }

// exec runs the compiled body for one iteration.
func (st *vmState) exec(i, j int, env *forall.Env) {
	cb := st.cb
	f, n := st.f, st.n
	n[cb.iReg] = i
	if cb.rank == 2 {
		n[cb.jReg] = j
	}
	code := cb.code
	for pc := 0; ; {
		ins := &code[pc]
		pc++
		switch ins.op {
		case opRet:
			return
		case opFlops:
			// Replayed as unit charges: the walker calls Flops(1) per
			// operator, and the simulated clock is a float accumulator,
			// so both the unit size and the order of charges are
			// observable.  One opFlops k == k adjacent walker charges;
			// FlopsUnit performs exactly those k unit advances.
			env.FlopsUnit(int(ins.a))
		case opJmp:
			pc = int(ins.a)
		case opJmpIfNot:
			if n[ins.b] == 0 {
				pc = int(ins.a)
			}
		case opJmpGtI:
			if n[ins.b] > n[ins.c] {
				pc = int(ins.a)
			}

		case opMovF:
			f[ins.a] = f[ins.b]
		case opMovI:
			n[ins.a] = n[ins.b]
		case opIntToF:
			f[ins.a] = float64(n[ins.b])
		case opTruncI:
			n[ins.a] = int(f[ins.b])

		case opNegF:
			f[ins.a] = -f[ins.b]
		case opNegI:
			n[ins.a] = -n[ins.b]
		case opAddF:
			f[ins.a] = f[ins.b] + f[ins.c]
		case opSubF:
			f[ins.a] = f[ins.b] - f[ins.c]
		case opMulF:
			f[ins.a] = f[ins.b] * f[ins.c]
		case opDivF:
			f[ins.a] = f[ins.b] / f[ins.c]
		case opAddI:
			n[ins.a] = n[ins.b] + n[ins.c]
		case opSubI:
			n[ins.a] = n[ins.b] - n[ins.c]
		case opMulI:
			n[ins.a] = n[ins.b] * n[ins.c]
		case opDivI:
			n[ins.a] = n[ins.b] / n[ins.c]
		case opModI:
			n[ins.a] = n[ins.b] % n[ins.c]
		case opIncI:
			n[ins.a]++
		case opLinI:
			n[ins.a] = n[ins.b]*cb.constI[ins.c] + cb.constI[ins.d]

		case opLtF:
			n[ins.a] = b2i(f[ins.b] < f[ins.c])
		case opLeF:
			n[ins.a] = b2i(f[ins.b] <= f[ins.c])
		case opGtF:
			n[ins.a] = b2i(f[ins.b] > f[ins.c])
		case opGeF:
			n[ins.a] = b2i(f[ins.b] >= f[ins.c])
		case opEqF:
			n[ins.a] = b2i(f[ins.b] == f[ins.c])
		case opNeF:
			n[ins.a] = b2i(f[ins.b] != f[ins.c])
		case opEqB:
			n[ins.a] = b2i(n[ins.b] == n[ins.c])
		case opNeB:
			n[ins.a] = b2i(n[ins.b] != n[ins.c])
		case opAndB:
			n[ins.a] = n[ins.b] & n[ins.c]
		case opOrB:
			n[ins.a] = n[ins.b] | n[ins.c]
		case opNotB:
			n[ins.a] = 1 - n[ins.b]

		case opAbsF:
			f[ins.a] = math.Abs(f[ins.b])
		case opSqrtF:
			f[ins.a] = math.Sqrt(f[ins.b])
		case opMinF:
			f[ins.a] = math.Min(f[ins.b], f[ins.c])
		case opMaxF:
			f[ins.a] = math.Max(f[ins.b], f[ins.c])

		case opLdLoc1:
			f[ins.a] = env.ReadLocal(st.ra[ins.b], n[ins.c])
		case opLdLoc2:
			f[ins.a] = env.ReadLocal2(st.ra[ins.b], n[ins.c], n[ins.d])
		case opLd1:
			f[ins.a] = env.Read(st.ra[ins.b], n[ins.c])
		case opLd2:
			f[ins.a] = env.Read2(st.ra[ins.b], n[ins.c], n[ins.d])
		case opLdInt1:
			n[ins.a] = env.ReadInt(st.ia[ins.b], n[ins.c])
		case opLdInt2:
			n[ins.a] = env.ReadInt2(st.ia[ins.b], n[ins.c], n[ins.d])
		case opSt1:
			env.Write(st.ra[ins.b], st.lin1(ins.b, n[ins.c]), f[ins.a])
		case opSt2:
			env.Write2(st.ra[ins.b], n[ins.c], n[ins.d], f[ins.a])

		default:
			panic(fmt.Sprintf("lang: vm: bad opcode %d", ins.op))
		}
	}
}

// lin1 bounds-checks a rank-1 store coordinate (matching
// darray.linearize, which the walker reaches through Array.Linear).
func (st *vmState) lin1(slot int32, i int) int {
	sh := &st.cb.reals[slot].shape
	if i < 1 || i > sh[0] {
		panic(fmt.Sprintf("darray: coordinate %d out of [1..%d] in dim 0", i, sh[0]))
	}
	return i
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
