package lang

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/machine"
	"kali/internal/mesh"
)

// loadProgram compiles a testdata program.
func loadProgram(t *testing.T, name string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

// TestCorpusCompilesAndRuns: every .kali program in testdata compiles
// and runs on several machine sizes without error.
func TestCorpusCompilesAndRuns(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.kali"))
	if err != nil || len(files) < 4 {
		t.Fatalf("corpus missing: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		for _, p := range []int{1, 2, 4} {
			prog := loadProgram(t, filepath.Base(f))
			if _, err := prog.Run(core.Config{P: p, Params: machine.Ideal()}); err != nil {
				// 2-D processor declarations need an exact processor
				// count; too-small machines are a legitimate refusal.
				if strings.Contains(err.Error(), "need at least") {
					continue
				}
				t.Fatalf("%s on P=%d: %v", f, p, err)
			}
		}
	}
}

func TestCorpusShift(t *testing.T) {
	res, err := loadProgram(t, "shift.kali").Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Arrays["A"]
	for i := 1; i < 24; i++ {
		if a[i-1] != float64(i+1) {
			t.Fatalf("A[%d] = %g", i, a[i-1])
		}
	}
}

func TestCorpusGather(t *testing.T) {
	res, err := loadProgram(t, "gather.kali").Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Arrays["B"]
	for i := 1; i <= 20; i++ {
		r := 20 + 1 - i
		if b[i-1] != float64(r*r) {
			t.Fatalf("B[%d] = %g, want %d", i, b[i-1], r*r)
		}
	}
	// Indirect: inspector must have run.
	if res.Report.Inspector <= 0 {
		t.Fatal("gather should have paid inspector time")
	}
}

func TestCorpusRowsum(t *testing.T) {
	res, err := loadProgram(t, "rowsum.kali").Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		want := 0.0
		for j := 1; j <= 5; j++ {
			want += float64(i) + float64(j)/10
		}
		if math.Abs(res.Arrays["s"][i-1]-want) > 1e-12 {
			t.Fatalf("s[%d] = %g, want %g", i, res.Arrays["s"][i-1], want)
		}
	}
}

func TestCorpusRedBlack(t *testing.T) {
	res, err := loadProgram(t, "redblack.kali").Run(core.Config{P: 2, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Arrays["u"]
	// Oracle: same red-black order sequentially.
	const n, sweeps = 32, 40
	oracle := make([]float64, n+1)
	oracle[1], oracle[n] = 1, 5
	for s := 0; s < sweeps; s++ {
		for i := 3; i <= n-1; i += 2 {
			oracle[i] = 0.5 * (oracle[i-1] + oracle[i+1])
		}
		for i := 2; i <= n-1; i += 2 {
			oracle[i] = 0.5 * (oracle[i-1] + oracle[i+1])
		}
	}
	for i := 1; i <= n; i++ {
		if math.Abs(u[i-1]-oracle[i]) > 1e-12 {
			t.Fatalf("u[%d] = %g, oracle %g", i, u[i-1], oracle[i])
		}
	}
	// The strided affine loops must NOT have paid per-reference
	// inspector costs (compile-time analyzable).
	if res.Report.Inspector > 0.01 {
		t.Fatalf("red-black paid inspector-scale cost: %g s", res.Report.Inspector)
	}
}

// TestCorpusJacobi2D: the 2-D processor-array program matches the
// sequential oracle.
func TestCorpusJacobi2D(t *testing.T) {
	res, err := loadProgram(t, "jacobi2d.kali").Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 4 {
		t.Fatalf("P = %d", res.P)
	}
	// Oracle via the mesh package: same boundary profile and sweeps.
	m := mesh.Rect(16, 16)
	want := mesh.SeqJacobi(m, mesh.InitValues(m), 6)
	got := res.Arrays["u"]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("u[%d] = %g, want %g", i+1, got[i], want[i])
		}
	}
	// The neighbor reads are per-dimension affine, so the rank-2
	// compile-time analysis applies: no inspector-scale cost.
	res2, err := loadProgram(t, "jacobi2d.kali").Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.Inspector > 0.01 {
		t.Fatalf("affine 2-D forall paid inspector-scale cost: %g s", res2.Report.Inspector)
	}
}

// TestCorpusRedBlack2D: the strided on-clause program matches the
// sequential red-black oracle column by column, and both strided
// foralls stay on the compile-time path.
func TestCorpusRedBlack2D(t *testing.T) {
	res, err := loadProgram(t, "redblack2d.kali").Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 4 {
		t.Fatalf("P = %d", res.P)
	}
	// Every column relaxes independently between the fixed boundary
	// rows, so one 1-D red-black oracle covers them all.
	const n, sweeps = 16, 10
	oracle := make([]float64, n+1)
	oracle[1], oracle[n] = 1, 5
	for s := 0; s < sweeps; s++ {
		for r := 3; r <= n-1; r += 2 {
			oracle[r] = 0.5 * (oracle[r-1] + oracle[r+1])
		}
		for r := 2; r <= n-1; r += 2 {
			oracle[r] = 0.5 * (oracle[r-1] + oracle[r+1])
		}
	}
	u := res.Arrays["u"]
	for r := 1; r <= n; r++ {
		for c := 1; c <= n; c++ {
			if math.Abs(u[(r-1)*n+c-1]-oracle[r]) > 1e-12 {
				t.Fatalf("u[%d,%d] = %g, oracle %g", r, c, u[(r-1)*n+c-1], oracle[r])
			}
		}
	}
	// Strided affine on clauses + affine reads: compile-time analyzed.
	if res.Report.Inspector > 0.01 {
		t.Fatalf("strided 2-D on clauses paid inspector-scale cost: %g s", res.Report.Inspector)
	}
}

// TestCorpusLoadbalance: the map dist clause builds a user-defined
// distribution, the program computes the right answer, and the affine
// reads over the map pattern still use compile-time analysis.
func TestCorpusLoadbalance(t *testing.T) {
	res, err := loadProgram(t, "loadbalance.kali").Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	const n, act, sweeps = 32, 8, 10
	oracle := make([]float64, n+1)
	old := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		oracle[i] = float64(i)
	}
	for s := 0; s < sweeps; s++ {
		copy(old, oracle)
		for i := 2; i <= act; i++ {
			oracle[i] = 0.5*old[i-1] + 0.5*old[i+1]
		}
	}
	for i := 1; i <= n; i++ {
		if math.Abs(res.Arrays["a"][i-1]-oracle[i]) > 1e-12 {
			t.Fatalf("a[%d] = %g, oracle %g", i, res.Arrays["a"][i-1], oracle[i])
		}
	}
	if res.Report.Inspector > 0.01 {
		t.Fatalf("affine reads over a map distribution paid inspector-scale cost: %g s", res.Report.Inspector)
	}
}

// TestCorpusADI: the dynamic-redistribution program alternates row and
// column Jacobi smooths, transposing u's layout with redistribute
// statements between phases.  The final values must match a sequential
// oracle, the transposes must move data under the redistribution
// counters (not the forall ones), and with sweeps > 1 the ping-pong
// remappings must replay cached plans rather than rebuilding.
func TestCorpusADI(t *testing.T) {
	builds0, hits0 := darray.RedistBuilds(), darray.RedistHits()
	res, err := loadProgram(t, "adi.kali").Run(core.Config{P: 4, Params: machine.NCUBE7()})
	if err != nil {
		t.Fatal(err)
	}
	const n, sweeps = 12, 3
	u := make([][]float64, n+1)
	old := make([][]float64, n+1)
	for r := 1; r <= n; r++ {
		u[r] = make([]float64, n+1)
		old[r] = make([]float64, n+1)
		for c := 1; c <= n; c++ {
			u[r][c] = float64((r*13 + c*7) % 11)
		}
	}
	snap := func() {
		for r := 1; r <= n; r++ {
			copy(old[r], u[r])
		}
	}
	for s := 0; s < sweeps; s++ {
		snap()
		for r := 1; r <= n; r++ {
			for c := 2; c <= n-1; c++ {
				u[r][c] = 0.25*old[r][c-1] + 0.5*old[r][c] + 0.25*old[r][c+1]
			}
		}
		snap()
		for c := 1; c <= n; c++ {
			for r := 2; r <= n-1; r++ {
				u[r][c] = 0.25*old[r-1][c] + 0.5*old[r][c] + 0.25*old[r+1][c]
			}
		}
	}
	got := res.Arrays["u"]
	for r := 1; r <= n; r++ {
		for c := 1; c <= n; c++ {
			if math.Abs(got[(r-1)*n+c-1]-u[r][c]) > 1e-12 {
				t.Fatalf("u[%d,%d] = %g, oracle %g", r, c, got[(r-1)*n+c-1], u[r][c])
			}
		}
	}
	if res.Report.RedistMsgs == 0 || res.Report.Redist <= 0 {
		t.Fatalf("transposes moved nothing: %d redist msgs, %g s", res.Report.RedistMsgs, res.Report.Redist)
	}
	// 2 distribution pairs x 4 nodes build once each; the remaining
	// 2*(sweeps-1) cycles replay from the content-addressed plan store.
	builds, hits := darray.RedistBuilds()-builds0, darray.RedistHits()-hits0
	if builds != 2*res.P {
		t.Fatalf("redistribution plans built %d times, want %d", builds, 2*res.P)
	}
	if want := 2 * (sweeps - 1) * res.P; hits != want {
		t.Fatalf("redistribution plan hits = %d, want %d", hits, want)
	}
}
