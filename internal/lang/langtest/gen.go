// Package langtest generates random well-formed Kali programs for
// differential testing.  The generators are shared by the language
// package's VM-vs-walker and fusion fuzzers and by the schedule
// server's concurrency fuzzer: the same program run solo and run
// racing other tenants must agree bit-for-bit, because a compiled
// schedule is a pure function of loop structure and distribution
// (paper §3.2) and sharing it across programs must be unobservable.
// The package deliberately imports nothing from the interpreter so
// non-test packages can use it without cycles.
package langtest

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram builds a random but well-formed Kali program: a few
// arrays under random distributions, initialization loops, and a
// sequence of foralls mixing affine stencils and data-dependent
// gathers.  Results must not depend on the processor count — the
// fundamental guarantee of the global name space.
func GenProgram(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	dists := []string{"block", "cyclic", fmt.Sprintf("block_cyclic(%d)", 1+r.Intn(4))}
	distA := dists[r.Intn(len(dists))]
	distB := dists[r.Intn(len(dists))]

	var b strings.Builder
	fmt.Fprintf(&b, "processors Procs : array[1..P] with P in 1..64;\n")
	fmt.Fprintf(&b, "const n = %d;\n", n)
	fmt.Fprintf(&b, "var a : array[1..n] of real dist by [%s] on Procs;\n", distA)
	fmt.Fprintf(&b, "    b : array[1..n] of real dist by [%s] on Procs;\n", distB)
	// perm drives subscripts inside "forall ... on b[i].loc", so it
	// must travel with b (the language's alignment rule for integer
	// subscript arrays).
	fmt.Fprintf(&b, "    perm : array[1..n] of integer dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    i : integer;\n")
	fmt.Fprintf(&b, "begin\n")
	fmt.Fprintf(&b, "  for i in 1..n do\n")
	fmt.Fprintf(&b, "    a[i] := float(i) * %d.0;\n", 1+r.Intn(5))
	fmt.Fprintf(&b, "    b[i] := float(i * i);\n")
	fmt.Fprintf(&b, "    perm[i] := (i * %d) mod n + 1;\n", 1+2*r.Intn(4)) // odd-ish stride
	fmt.Fprintf(&b, "  end;\n")

	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		switch r.Intn(3) {
		case 0: // affine stencil a[i] := b[i+c] + a[i]
			c := r.Intn(3) - 1
			lo, hi := 1, n
			if c > 0 {
				hi = n - c
			} else {
				lo = 1 - c
			}
			sub := "i"
			if c > 0 {
				sub = fmt.Sprintf("i+%d", c)
			} else if c < 0 {
				sub = fmt.Sprintf("i-%d", -c)
			}
			fmt.Fprintf(&b, "  forall i in %d..%d on a[i].loc do\n", lo, hi)
			fmt.Fprintf(&b, "    a[i] := b[%s] + a[i];\n", sub)
			fmt.Fprintf(&b, "  end;\n")
		case 1: // indirect gather b[i] := a[perm[i]]
			fmt.Fprintf(&b, "  forall i in 1..n on b[i].loc do b[i] := a[ perm[i] ]; end;\n")
		default: // strided update on even points
			fmt.Fprintf(&b, "  forall i in 1..n div 2 on a[2*i].loc do\n")
			fmt.Fprintf(&b, "    a[2*i] := a[2*i] * 0.5 + b[2*i-1];\n")
			fmt.Fprintf(&b, "  end;\n")
		}
	}
	fmt.Fprintf(&b, "end.\n")
	return b.String()
}

// GenVMProgram builds a random program that stresses the bytecode
// compiler beyond the plain stencils of GenProgram: forall bodies with
// local variables, if/else with boolean connectives, inner for loops,
// builtin calls, unary minus, and integer div/mod — every construct
// the VM lowers.
func GenVMProgram(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	k := 2 + r.Intn(4)
	dists := []string{"block", "cyclic", fmt.Sprintf("block_cyclic(%d)", 1+r.Intn(4))}
	distA := dists[r.Intn(len(dists))]
	distB := dists[r.Intn(len(dists))]

	var b strings.Builder
	fmt.Fprintf(&b, "processors Procs : array[1..P] with P in 1..64;\n")
	fmt.Fprintf(&b, "const n = %d;\n", n)
	fmt.Fprintf(&b, "      k = %d;\n", k)
	fmt.Fprintf(&b, "var a : array[1..n] of real dist by [%s] on Procs;\n", distA)
	fmt.Fprintf(&b, "    b : array[1..n] of real dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    perm : array[1..n] of integer dist by [%s] on Procs;\n", distB)
	fmt.Fprintf(&b, "    i : integer;\n")
	fmt.Fprintf(&b, "begin\n")
	fmt.Fprintf(&b, "  for i in 1..n do\n")
	fmt.Fprintf(&b, "    a[i] := float(i) * %d.0 - %d.5;\n", 1+r.Intn(5), r.Intn(3))
	fmt.Fprintf(&b, "    b[i] := float(i * i) / %d.0;\n", 2+r.Intn(3))
	fmt.Fprintf(&b, "    perm[i] := (i * %d) mod n + 1;\n", 1+2*r.Intn(4))
	fmt.Fprintf(&b, "  end;\n")

	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		switch r.Intn(5) {
		case 0: // affine stencil with a const-folded coefficient
			c := r.Intn(3) - 1
			lo, hi := 1, n
			sub := "i"
			if c > 0 {
				hi, sub = n-c, fmt.Sprintf("i+%d", c)
			} else if c < 0 {
				lo, sub = 1-c, fmt.Sprintf("i-%d", -c)
			}
			fmt.Fprintf(&b, "  forall i in %d..%d on a[i].loc do\n", lo, hi)
			fmt.Fprintf(&b, "    a[i] := b[%s] * (1.0 / float(k)) + a[i];\n", sub)
			fmt.Fprintf(&b, "  end;\n")
		case 1: // indirect gather through perm
			fmt.Fprintf(&b, "  forall i in 1..n on b[i].loc do b[i] := a[ perm[i] ]; end;\n")
		case 2: // locals, builtins, if/else with and/or
			fmt.Fprintf(&b, "  forall i in 1..n on a[i].loc do\n")
			fmt.Fprintf(&b, "    var t : real; m : integer;\n")
			fmt.Fprintf(&b, "    t := abs(b[i]) + sqrt(abs(a[i]));\n")
			fmt.Fprintf(&b, "    m := trunc(t) mod k + 1;\n")
			fmt.Fprintf(&b, "    if (t > float(m)) and (i mod 2 = 0) then\n")
			fmt.Fprintf(&b, "      a[i] := min(t, a[i]) - float(m);\n")
			fmt.Fprintf(&b, "    else\n")
			fmt.Fprintf(&b, "      a[i] := max(t * 0.5, -a[i]);\n")
			fmt.Fprintf(&b, "    end;\n")
			fmt.Fprintf(&b, "  end;\n")
		case 3: // inner for loop accumulating into a local
			fmt.Fprintf(&b, "  forall i in 1..n on a[i].loc do\n")
			fmt.Fprintf(&b, "    var s2 : real; q : integer;\n")
			fmt.Fprintf(&b, "    s2 := 0.0;\n")
			fmt.Fprintf(&b, "    for q in 1..k do\n")
			fmt.Fprintf(&b, "      s2 := s2 + b[i] * float(q);\n")
			fmt.Fprintf(&b, "    end;\n")
			fmt.Fprintf(&b, "    a[i] := s2 / float(k);\n")
			fmt.Fprintf(&b, "  end;\n")
		default: // strided update with integer arithmetic in subscripts
			fmt.Fprintf(&b, "  forall i in 1..n div 2 on a[2*i].loc do\n")
			fmt.Fprintf(&b, "    a[2*i] := a[2*i] * 0.5 + b[2*i-1];\n")
			fmt.Fprintf(&b, "  end;\n")
		}
	}
	fmt.Fprintf(&b, "end.\n")
	return b.String()
}
