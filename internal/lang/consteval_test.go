package lang

import (
	"strings"
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// The single constant evaluator behind Check-time folding must reject
// overflow and division by zero with positioned diagnostics — a wrong
// constant poisons every distribution and schedule built from it.

const constProgTail = "var x : integer;\nbegin\n  x := 1;\nend.\n"

func constDiag(t *testing.T, src string) string {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("program compiled, want constant diagnostic:\n%s", src)
	}
	return err.Error()
}

func TestConstAddOverflowDiagnostic(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const big = 9223372036854775807;\n" +
		"      bang = big + 1;\n" + constProgTail
	msg := constDiag(t, src)
	if !strings.Contains(msg, "constant overflow") {
		t.Fatalf("error %q does not mention constant overflow", msg)
	}
	if !strings.HasPrefix(msg, "3:") {
		t.Fatalf("error %q does not carry the source line of the offending expression", msg)
	}
}

func TestConstMulOverflowDiagnostic(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const big = 4611686018427387904;\n" +
		"      bang = big * 4;\n" + constProgTail
	msg := constDiag(t, src)
	if !strings.Contains(msg, "constant overflow") || !strings.HasPrefix(msg, "3:") {
		t.Fatalf("unexpected diagnostic %q", msg)
	}
}

func TestConstDivZeroDiagnostic(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const z = 1 div 0;\n" + constProgTail
	msg := constDiag(t, src)
	if !strings.Contains(msg, "constant division by zero") || !strings.HasPrefix(msg, "2:") {
		t.Fatalf("unexpected diagnostic %q", msg)
	}
}

func TestConstModZeroDiagnostic(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const z = 3 mod 0;\n" + constProgTail
	msg := constDiag(t, src)
	if !strings.Contains(msg, "constant mod by zero") || !strings.HasPrefix(msg, "2:") {
		t.Fatalf("unexpected diagnostic %q", msg)
	}
}

// P-dependent constants cannot fold at Check time; their evaluation —
// and any arithmetic fault in it — surfaces as an elaboration error
// from Run, not a crash.
func TestPDependentConstEvaluatedAtElaboration(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const n = P * 4;\n" +
		"var a : array[1..n] of real dist by [block] on Procs;\n" +
		"    i : integer;\n" +
		"begin\n" +
		"  for i in 1..n do\n" +
		"    a[i] := float(i);\n" +
		"  end;\n" +
		"end.\n"
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("P-dependent constant must defer, got Check error: %v", err)
	}
	res, err := prog.Run(core.Config{P: 4, Params: machine.Ideal()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Arrays["a"]); got != 16 {
		t.Fatalf("n = P*4 should elaborate to 16 with P=4, array has %d elements", got)
	}
}

func TestPDependentConstFaultIsRunError(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const z = 1 div (P - P);\n" + constProgTail
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("fault depends on P, must not surface at Check time: %v", err)
	}
	if _, err := prog.Run(core.Config{P: 2, Params: machine.Ideal()}); err == nil {
		t.Fatal("Run succeeded, want division-by-zero elaboration error")
	} else if !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("unexpected error %q", err)
	}
}

// Folded constants must agree with what elaboration would have
// computed, including negative and real-valued ones.
func TestFoldedConstValues(t *testing.T) {
	src := "processors Procs : array[1..P] with P in 1..8;\n" +
		"const a = 6 * 7;\n" +
		"      b = -a;\n" +
		"      c = a div 5;\n" +
		"      d = a mod 5;\n" +
		"      e = 1.0 / 4.0;\n" + constProgTail
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]value{
		"a": intVal(42), "b": intVal(-42), "c": intVal(8), "d": intVal(2),
		"e": realVal(0.25),
	}
	for _, d := range prog.file.Consts {
		if !d.Folded {
			t.Fatalf("const %s not folded at Check time", d.Name)
		}
		if w := want[d.Name]; d.Val != w {
			t.Fatalf("const %s folded to %+v, want %+v", d.Name, d.Val, w)
		}
	}
}
