package lang

import (
	"fmt"
	"math"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/topology"
)

// Program is a parsed and checked Kali program ready to run.
type Program struct {
	file *File
	src  string

	// NoVM disables the bytecode VM for forall bodies and runs them
	// through the retained tree-walking interpreter instead (kalirun
	// -novm).  The two paths are observably identical — the walker is
	// kept as the differential-test oracle and as an escape hatch.
	NoVM bool
}

// Compile parses and checks Kali source.
func Compile(src string) (*Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return &Program{file: f, src: src}, nil
}

// Result is the outcome of running a program.
type Result struct {
	Report core.Report
	// P is the processor count the "real estate agent" chose.
	P int
	// Arrays holds the final contents of every distributed and
	// replicated real array, gathered to the host.
	Arrays map[string][]float64
	// IntArrays likewise for integer arrays.
	IntArrays map[string][]int
	// Scalars holds final scalar values (node 0's copy).
	Scalars map[string]float64
}

// elaboration is the host-side product of Program.elaborate: fully
// evaluated constants, the chosen processor grid, and (unless NoVM)
// the compiled bytecode for every forall body.  It is immutable and
// shared read-only by every node goroutine.
type elaboration struct {
	consts   map[string]value
	grid     *topology.Grid
	procP    int
	compiled map[*Forall]*compiledBody
}

// elaborate evaluates the constants and the processors declaration,
// then lowers forall bodies to bytecode.  Constants may reference P
// (e.g. perProc = n div P) and the processor bounds may reference
// constants, so evaluation is two-phase: the P-independent constants
// were already folded at Check time (ConstDecl.Folded), then the real
// estate agent chooses P, then the P-dependent constants evaluate —
// which is also why body compilation cannot happen before run time.
func (p *Program) elaborate(availP int) (el *elaboration, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*Error); ok {
				err = le
				return
			}
			err = fmt.Errorf("lang: elaboration error: %v", r)
		}
	}()

	consts := map[string]value{}
	ce := &constEval{consts: consts}
	for _, d := range p.file.Consts {
		if d.Folded {
			consts[d.Name] = d.Val
		}
	}
	var grid *topology.Grid
	var procP int
	if p.file.Procs.Rank2() {
		// 2-D processor arrays have constant extents; the program needs
		// exactly p1×p2 processors.
		p1 := ce.intVal(p.file.Procs.Size)
		p2 := ce.intVal(p.file.Procs.Size2)
		var cerr error
		procP, cerr = topology.Choose(p1*p2, p1*p2, availP)
		if cerr != nil {
			return nil, cerr
		}
		grid = topology.MustGrid(p1, p2)
	} else {
		minP, maxP := 1, availP
		if p.file.Procs.MinP != nil {
			minP = ce.intVal(p.file.Procs.MinP)
			maxP = ce.intVal(p.file.Procs.MaxP)
		} else if p.file.Procs.Size != nil {
			minP = ce.intVal(p.file.Procs.Size)
			maxP = minP
		}
		var cerr error
		procP, cerr = topology.Choose(minP, maxP, availP)
		if cerr != nil {
			return nil, cerr
		}
		grid = topology.MustGrid(procP)
	}
	if p.file.Procs.SizeVar != "" {
		consts[p.file.Procs.SizeVar] = intVal(procP)
	}
	for _, d := range p.file.Consts {
		if !d.Folded && d.Name != p.file.Procs.SizeVar {
			consts[d.Name] = ce.val(d.X)
		}
	}
	el = &elaboration{consts: consts, grid: grid, procP: procP}
	if !p.NoVM {
		el.compiled = compileForalls(p.file, consts)
	}
	return el, nil
}

// Run elaborates the program (choosing P within the declared bounds,
// building distributions, compiling forall bodies) and executes it
// SPMD on the simulated machine.
func (p *Program) Run(cfg core.Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lang: runtime error: %v", r)
		}
	}()

	el, err := p.elaborate(cfg.P)
	if err != nil {
		return nil, err
	}
	res = &Result{
		P:         el.procP,
		Arrays:    map[string][]float64{},
		IntArrays: map[string][]int{},
		Scalars:   map[string]float64{},
	}
	cfg.P = el.procP

	// Pre-allocate gather buffers host-side (shapes are elaborable
	// without the machine), so nodes fill disjoint slots with no
	// synchronization.
	ce := &constEval{consts: el.consts}
	for _, d := range p.file.Vars {
		if len(d.Dims) == 0 {
			continue
		}
		size := 1
		for _, dim := range d.Dims {
			size *= ce.intVal(dim.Hi)
		}
		for _, name := range d.Names {
			if d.Elem == TInt {
				res.IntArrays[name] = make([]int, size)
			} else {
				res.Arrays[name] = make([]float64, size)
			}
		}
	}

	rep := core.Run(cfg, func(ctx *core.Context) {
		in := newInterp(p.file, ctx, el)
		in.declareArrays()
		in.execStmts(p.file.Main, nil, nil)
		in.gather(res)
	})
	res.Report = rep
	return res, nil
}

// value is a runtime scalar.
type value struct {
	t BaseType
	i int
	f float64
	b bool
}

func intVal(i int) value      { return value{t: TInt, i: i} }
func realVal(f float64) value { return value{t: TReal, f: f} }
func boolVal(b bool) value    { return value{t: TBool, b: b} }

// asReal widens to float64.
func (v value) asReal() float64 {
	if v.t == TInt {
		return float64(v.i)
	}
	return v.f
}

// interp is the per-node interpreter state.
type interp struct {
	file   *File
	ctx    *core.Context
	grid   *topology.Grid // the program's processor array (may be 2-D)
	consts map[string]value

	scalars map[string]*value
	arrays  map[string]*darray.Array
	ints    map[string]*darray.IntArray

	// compiled forall bodies (shared, host-compiled) and this node's
	// VM states for them; nil/empty under NoVM.
	compiled map[*Forall]*compiledBody
	vms      map[*Forall]*vmState

	// lowered forall loops, keyed by AST node.
	loops  map[*Forall]*forall.Loop
	loops2 map[*Forall]*forall.Loop2
	// lowered forall sequences, keyed by the first AST node of a
	// maximal run of adjacent foralls (a node starts at most one run,
	// and the run's extent is fixed by the statement list), feeding the
	// engine's cross-loop aggregation pipeline.
	seqs map[*Forall][]forall.SeqLoop
	// elaborated redistribute targets, keyed by AST node: the checker
	// proves every dist item constant, so the Dist is elaborated once
	// and replayed — repeated phase changes (ADI ping-pong) reuse one
	// fingerprint-stable object per statement instead of rebuilding
	// patterns (and re-evaluating map owner tables) every execution.
	redists map[*Redistribute]*dist.Dist
}

func newInterp(f *File, ctx *core.Context, el *elaboration) *interp {
	return &interp{
		file:     f,
		ctx:      ctx,
		grid:     el.grid,
		consts:   el.consts,
		compiled: el.compiled,
		vms:      map[*Forall]*vmState{},
		scalars:  map[string]*value{},
		arrays:   map[string]*darray.Array{},
		ints:     map[string]*darray.IntArray{},
		loops:    map[*Forall]*forall.Loop{},
		loops2:   map[*Forall]*forall.Loop2{},
		seqs:     map[*Forall][]forall.SeqLoop{},
		redists:  map[*Redistribute]*dist.Dist{},
	}
}

// arith applies a binary arithmetic operator.
func arith(op Kind, l, r value) value {
	bothInt := l.t == TInt && r.t == TInt
	switch op {
	case PLUS:
		if bothInt {
			return intVal(l.i + r.i)
		}
		return realVal(l.asReal() + r.asReal())
	case MINUS:
		if bothInt {
			return intVal(l.i - r.i)
		}
		return realVal(l.asReal() - r.asReal())
	case STAR:
		if bothInt {
			return intVal(l.i * r.i)
		}
		return realVal(l.asReal() * r.asReal())
	case SLASH:
		return realVal(l.asReal() / r.asReal())
	case KWDiv:
		return intVal(l.i / r.i)
	case KWMod:
		return intVal(l.i % r.i)
	case LT:
		return boolVal(l.asReal() < r.asReal())
	case LE:
		return boolVal(l.asReal() <= r.asReal())
	case GT:
		return boolVal(l.asReal() > r.asReal())
	case GE:
		return boolVal(l.asReal() >= r.asReal())
	case EQ:
		if l.t == TBool {
			return boolVal(l.b == r.b)
		}
		return boolVal(l.asReal() == r.asReal())
	case NE:
		if l.t == TBool {
			return boolVal(l.b != r.b)
		}
		return boolVal(l.asReal() != r.asReal())
	case KWAnd:
		return boolVal(l.b && r.b)
	case KWOr:
		return boolVal(l.b || r.b)
	default:
		panic(fmt.Sprintf("bad operator %s", op))
	}
}

// declareArrays elaborates the var section on this node.
func (in *interp) declareArrays() {
	ce := &constEval{consts: in.consts}
	for _, d := range in.file.Vars {
		for _, name := range d.Names {
			if len(d.Dims) == 0 {
				v := value{t: d.Elem}
				in.scalars[name] = &v
				continue
			}
			shape := make([]int, len(d.Dims))
			for k, dim := range d.Dims {
				lo := ce.intVal(dim.Lo)
				hi := ce.intVal(dim.Hi)
				if lo != 1 {
					panic(fmt.Sprintf("array %q: lower bound must be 1", name))
				}
				if hi < 1 {
					panic(fmt.Sprintf("array %q: empty dimension", name))
				}
				shape[k] = hi
			}
			var dd *dist.Dist
			if d.Dist == nil {
				dd = dist.NewReplicated(shape, in.grid)
			} else {
				dd = in.elabDist(name, shape, d.Dist)
			}
			if d.Elem == TInt {
				in.ints[name] = darray.NewInt(name, dd, in.ctx.Node)
			} else {
				in.arrays[name] = darray.New(name, dd, in.ctx.Node)
			}
		}
	}
}

// elabDist elaborates a dist-clause item list into a Dist over the
// program's grid — shared by array declarations and redistribute
// statements (the two places a distribution can be named).  Map owner
// expressions are evaluated per index; dist compresses the table into
// owner runs.
func (in *interp) elabDist(name string, shape []int, items []DistItem) *dist.Dist {
	ce := &constEval{consts: in.consts}
	specs := make([]dist.DimSpec, len(items))
	for k, item := range items {
		switch item.Kind {
		case KWBlock:
			specs[k] = dist.BlockDim()
		case KWCyclic:
			specs[k] = dist.CyclicDim()
		case KWBlockCyclic:
			specs[k] = dist.BlockCyclicDim(ce.intVal(item.Block))
		case KWMap:
			owners := make([]int, shape[k])
			mce := &constEval{consts: map[string]value{}}
			for cn, cv := range in.consts {
				mce.consts[cn] = cv
			}
			for i := 1; i <= shape[k]; i++ {
				mce.consts[item.MapVar] = intVal(i)
				owners[i-1] = mce.intVal(item.MapExpr)
			}
			specs[k] = dist.MapDim(owners)
		case STAR:
			specs[k] = dist.CollapsedDim()
		}
	}
	dd, err := dist.New(shape, specs, in.grid)
	if err != nil {
		panic(fmt.Sprintf("array %q: %v", name, err))
	}
	return dd
}

// scope is the forall-body local variable scope.
type scope map[string]*value

// execStmts interprets a statement list.  env is non-nil inside a
// forall body.  At the top level (env == nil), maximal runs of
// adjacent foralls are batched through the engine's sequence API so
// independent loops aggregate their messages (§3.2 across loops); a
// lone forall takes the ordinary path.
func (in *interp) execStmts(ss []Stmt, sc scope, env *forall.Env) {
	for k := 0; k < len(ss); k++ {
		if env == nil {
			if _, ok := ss[k].(*Forall); ok {
				j := k + 1
				for j < len(ss) {
					if _, ok := ss[j].(*Forall); !ok {
						break
					}
					j++
				}
				if j-k >= 2 {
					in.execForallSeq(ss[k:j])
					k = j - 1
					continue
				}
			}
		}
		in.execStmt(ss[k], sc, env)
	}
}

// execForallSeq runs a maximal run of adjacent foralls through
// Context.ForallSeq.  The lowered sequence (loops plus their declared
// write sets) is cached by the run's first AST node; bounds and VM
// scalar registers are refreshed per launch like execForall does.
func (in *interp) execForallSeq(run []Stmt) {
	first := run[0].(*Forall)
	seq, ok := in.seqs[first]
	if !ok {
		seq = make([]forall.SeqLoop, len(run))
		for k, s := range run {
			fa := s.(*Forall)
			sl := forall.SeqLoop{Writes: in.writeArrays(fa)}
			if fa.Var2 != "" {
				sl.L2 = in.loop2For(fa)
			} else {
				sl.L = in.loopFor(fa)
			}
			seq[k] = sl
		}
		in.seqs[first] = seq
	}
	for k, s := range run {
		fa := s.(*Forall)
		if st := in.vms[fa]; st != nil {
			st.bindScalars(in)
		}
		if fa.Var2 != "" {
			l := seq[k].L2
			l.LoI = in.evalExpr(fa.Lo, nil, nil).i
			l.HiI = in.evalExpr(fa.Hi, nil, nil).i
			l.LoJ = in.evalExpr(fa.Lo2, nil, nil).i
			l.HiJ = in.evalExpr(fa.Hi2, nil, nil).i
		} else {
			l := seq[k].L
			l.Lo = in.evalExpr(fa.Lo, nil, nil).i
			l.Hi = in.evalExpr(fa.Hi, nil, nil).i
		}
	}
	in.ctx.ForallSeq(seq)
}

// writeArrays collects the distinct distributed real arrays a forall
// body assigns to — the write set the fusion planner breaks windows
// on.  Indexed assigns inside nested control flow count; scalar and
// body-local assigns do not touch distributed state.
func (in *interp) writeArrays(fa *Forall) []*darray.Array {
	var out []*darray.Array
	seen := map[string]bool{}
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if len(s.Indexes) > 0 && !seen[s.Name] {
					if a, ok := in.arrays[s.Name]; ok {
						seen[s.Name] = true
						out = append(out, a)
					}
				}
			case *ForLoop:
				walk(s.Body)
			case *While:
				walk(s.Body)
			case *If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(fa.Body)
	return out
}

func (in *interp) execStmt(s Stmt, sc scope, env *forall.Env) {
	switch s := s.(type) {
	case *Assign:
		in.execAssign(s, sc, env)
	case *Forall:
		in.execForall(s)
	case *ForLoop:
		lo := in.evalExpr(s.Lo, sc, env).i
		hi := in.evalExpr(s.Hi, sc, env).i
		var slot *value
		if sc != nil {
			if v, ok := sc[s.Var]; ok {
				slot = v
			} else {
				v := intVal(lo)
				sc[s.Var] = &v
				slot = &v
				defer delete(sc, s.Var)
			}
		} else if v, ok := in.scalars[s.Var]; ok {
			slot = v
		} else {
			v := intVal(lo)
			in.scalars[s.Var] = &v
			slot = &v
			defer delete(in.scalars, s.Var)
		}
		for x := lo; x <= hi; x++ {
			*slot = intVal(x)
			in.execStmts(s.Body, sc, env)
		}
	case *While:
		for in.evalExpr(s.Cond, sc, env).b {
			in.execStmts(s.Body, sc, env)
		}
	case *If:
		if in.evalExpr(s.Cond, sc, env).b {
			in.execStmts(s.Then, sc, env)
		} else {
			in.execStmts(s.Else, sc, env)
		}
	case *Reduce:
		in.execReduce(s)
	case *Redistribute:
		a := in.arrays[s.Name]
		if a == nil {
			panic(fmt.Sprintf("redistribute target %q is not a real array", s.Name))
		}
		nd, ok := in.redists[s]
		if !ok {
			nd = in.elabDist(s.Name, a.Shape(), s.Items)
			in.redists[s] = nd
		}
		darray.Redistribute(a, nd)
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

// execAssign handles scalar, local, and array writes.
func (in *interp) execAssign(s *Assign, sc scope, env *forall.Env) {
	val := in.evalExpr(s.X, sc, env)
	if sc != nil {
		if slot, ok := sc[s.Name]; ok {
			*slot = coerce(val, slot.t)
			return
		}
	}
	if slot, ok := in.scalars[s.Name]; ok && len(s.Indexes) == 0 {
		*slot = coerce(val, slot.t)
		return
	}
	// Array element write.
	idx := make([]int, len(s.Indexes))
	for k, ix := range s.Indexes {
		idx[k] = in.evalExpr(ix, sc, env).i
	}
	if a, ok := in.arrays[s.Name]; ok {
		if env != nil {
			// Inside a forall: owner-computes write through the engine.
			env.WriteAt(a, val.asReal(), idx...)
			return
		}
		// Top level: the owner stores, everyone else skips (all nodes
		// execute the same statement).
		if a.IsLocal(idx...) {
			a.Set(val.asReal(), idx...)
		}
		return
	}
	if ia, ok := in.ints[s.Name]; ok {
		if env != nil {
			panic(fmt.Sprintf("write to integer array %q inside forall", s.Name))
		}
		if ia.IsLocal(idx...) {
			ia.Set(val.i, idx...)
			ia.Bump() // pattern-driving contents changed
		}
		return
	}
	panic(fmt.Sprintf("unknown assignment target %q", s.Name))
}

func coerce(v value, t BaseType) value {
	if v.t == t {
		return v
	}
	if t == TReal && v.t == TInt {
		return realVal(float64(v.i))
	}
	panic(fmt.Sprintf("cannot coerce %s to %s", v.t, t))
}

// execForall lowers the loop onto the forall engine (cached per AST
// node so the engine's schedule cache applies across executions).
func (in *interp) execForall(fa *Forall) {
	if fa.Var2 != "" {
		loop := in.loop2For(fa)
		if st := in.vms[fa]; st != nil {
			st.bindScalars(in)
		}
		loop.LoI = in.evalExpr(fa.Lo, nil, nil).i
		loop.HiI = in.evalExpr(fa.Hi, nil, nil).i
		loop.LoJ = in.evalExpr(fa.Lo2, nil, nil).i
		loop.HiJ = in.evalExpr(fa.Hi2, nil, nil).i
		in.ctx.Eng.Run2(loop)
		return
	}
	loop := in.loopFor(fa)
	// Refresh the VM's global-scalar input registers: globals are
	// immutable within one forall execution (checker-enforced), so one
	// binding per launch suffices.
	if st := in.vms[fa]; st != nil {
		st.bindScalars(in)
	}
	loop.Lo = in.evalExpr(fa.Lo, nil, nil).i
	loop.Hi = in.evalExpr(fa.Hi, nil, nil).i
	in.ctx.Forall(loop)
}

// loopFor returns the lowered rank-1 loop for fa, building it once.
func (in *interp) loopFor(fa *Forall) *forall.Loop {
	loop, ok := in.loops[fa]
	if !ok {
		loop = in.buildLoop(fa)
		in.loops[fa] = loop
	}
	return loop
}

// loop2For returns the lowered rank-2 loop for fa, building it once.
func (in *interp) loop2For(fa *Forall) *forall.Loop2 {
	loop, ok := in.loops2[fa]
	if !ok {
		loop = in.buildLoop2(fa)
		in.loops2[fa] = loop
	}
	return loop
}

// buildLoop2 translates a two-index Forall into a forall.Loop2.
func (in *interp) buildLoop2(fa *Forall) *forall.Loop2 {
	ce := &constEval{consts: in.consts}
	onArr := in.arrays[fa.OnArray]
	if onArr == nil {
		panic(fmt.Sprintf("on-clause array %q is not a real array", fa.OnArray))
	}
	// Elaborate the per-dimension affine on-clause subscripts.
	ck := &checker{syms: in.checkerSyms()}
	aIE, cIE, okI := ck.affineOf(fa.OnIndex, fa.Var)
	aJE, cJE, okJ := ck.affineOf(fa.OnIndex2, fa.Var2)
	if !okI || !okJ {
		panic("2-D on clause subscripts not affine (checker should have caught this)")
	}
	onF2 := analysis.Affine2{
		I: analysis.Affine{A: ce.coeff(aIE), C: ce.coeff(cIE)},
		J: analysis.Affine{A: ce.coeff(aJE), C: ce.coeff(cJE)},
	}
	// A constant coefficient expression can evaluate to zero (only
	// elaboration knows the const values); diagnose it with the source
	// line instead of letting the engine panic.
	if onF2.I.A == 0 || onF2.J.A == 0 {
		panic(fmt.Sprintf("line %d: on clause subscript coefficient evaluates to zero (not affine in the index variable)", fa.Line))
	}
	var reads []forall.ReadSpec
	for _, ri := range fa.reads {
		arr := in.arrays[ri.array]
		if ri.affine2 {
			aff := &analysis.Affine2{
				I: analysis.Affine{A: ce.coeff(ri.aIExpr), C: ce.coeff(ri.cIExpr)},
				J: analysis.Affine{A: ce.coeff(ri.aJExpr), C: ce.coeff(ri.cJExpr)},
			}
			reads = append(reads, forall.ReadSpec{Array: arr, Affine2: aff})
			continue
		}
		reads = append(reads, forall.ReadSpec{Array: arr})
	}
	var deps []forall.Dep
	for _, d := range fa.deps {
		deps = append(deps, in.ints[d])
	}
	loop := &forall.Loop2{
		Name:      fmt.Sprintf("forall2@%d", fa.Line),
		On:        onArr,
		OnF2:      onF2,
		Reads:     reads,
		DependsOn: deps,
	}
	if cb := in.compiled[fa]; cb != nil {
		st := newVMState(cb, in)
		in.vms[fa] = st
		loop.Body = st.body2
	} else {
		loop.Body = func(i, j int, env *forall.Env) {
			sc := scope{
				fa.Var:  &value{t: TInt, i: i},
				fa.Var2: &value{t: TInt, i: j},
			}
			for _, d := range fa.Decls {
				v := value{t: d.Type}
				sc[d.Name] = &v
			}
			in.execStmts(fa.Body, sc, env)
		}
	}
	return loop
}

// buildLoop translates an annotated Forall into a forall.Loop.
func (in *interp) buildLoop(fa *Forall) *forall.Loop {
	ce := &constEval{consts: in.consts}
	onArr := in.arrays[fa.OnArray]
	if onArr == nil {
		panic(fmt.Sprintf("on-clause array %q is not a real array", fa.OnArray))
	}
	// Elaborate the on-clause affine subscript.
	aE, cE, ok := (&checker{syms: in.checkerSyms()}).affineOf(fa.OnIndex, fa.Var)
	if !ok {
		panic("on clause subscript not affine (checker should have caught this)")
	}
	onF := analysis.Affine{A: ce.coeff(aE), C: ce.coeff(cE)}
	if onF.A == 0 {
		panic(fmt.Sprintf("line %d: on clause subscript coefficient evaluates to zero (not affine in the index variable)", fa.Line))
	}

	var reads []forall.ReadSpec
	for _, ri := range fa.reads {
		arr := in.arrays[ri.array]
		if ri.affine {
			aff := &analysis.Affine{A: ce.coeff(ri.aExpr), C: ce.coeff(ri.cExpr)}
			reads = append(reads, forall.ReadSpec{Array: arr, Affine: aff})
		} else {
			reads = append(reads, forall.ReadSpec{Array: arr})
		}
	}
	var deps []forall.Dep
	for _, d := range fa.deps {
		deps = append(deps, in.ints[d])
	}

	loop := &forall.Loop{
		Name:      fmt.Sprintf("forall@%d", fa.Line),
		On:        onArr,
		OnF:       onF,
		Reads:     reads,
		DependsOn: deps,
	}
	if cb := in.compiled[fa]; cb != nil {
		st := newVMState(cb, in)
		in.vms[fa] = st
		loop.Body = st.body1
	} else {
		loop.Body = func(i int, env *forall.Env) {
			sc := scope{fa.Var: &value{t: TInt, i: i}}
			for _, d := range fa.Decls {
				v := value{t: d.Type}
				sc[d.Name] = &v
			}
			in.execStmts(fa.Body, sc, env)
		}
	}
	return loop
}

// checkerSyms rebuilds a checker symbol table for affine re-analysis
// during elaboration.
func (in *interp) checkerSyms() map[string]*symbol {
	syms := map[string]*symbol{}
	if in.file.Procs.SizeVar != "" {
		syms[in.file.Procs.SizeVar] = &symbol{kind: symProcSize, typ: TInt}
	}
	for _, d := range in.file.Consts {
		syms[d.Name] = &symbol{kind: symConst, typ: TInt}
	}
	for _, d := range in.file.Vars {
		for _, name := range d.Names {
			if len(d.Dims) == 0 {
				syms[name] = &symbol{kind: symScalar, typ: d.Elem}
			} else {
				syms[name] = &symbol{kind: symArray, typ: d.Elem, decl: d}
			}
		}
	}
	return syms
}

// execReduce implements the reduce statement: local fold over owned
// elements, then a machine AllReduce.
func (in *interp) execReduce(s *Reduce) {
	a := in.arrays[s.Args[0]]
	local := 0.0
	switch s.Op {
	case "maxdiff":
		b := in.arrays[s.Args[1]]
		a.EachLocal(func(g int) {
			d := math.Abs(a.GetLinear(g) - b.GetLinear(g))
			if d > local {
				local = d
			}
		})
		local = in.ctx.AllReduce(local, "max")
	case "sum":
		a.EachLocal(func(g int) { local += a.GetLinear(g) })
		local = in.ctx.AllReduce(local, "sum")
	case "max":
		first := true
		a.EachLocal(func(g int) {
			if first || a.GetLinear(g) > local {
				local = a.GetLinear(g)
				first = false
			}
		})
		local = in.ctx.AllReduce(local, "max")
	case "min":
		first := true
		a.EachLocal(func(g int) {
			if first || a.GetLinear(g) < local {
				local = a.GetLinear(g)
				first = false
			}
		})
		local = in.ctx.AllReduce(local, "min")
	}
	in.scalars[s.Into].f = local
}

// evalExpr evaluates an expression; env is non-nil inside foralls.
func (in *interp) evalExpr(e Expr, sc scope, env *forall.Env) value {
	switch e := e.(type) {
	case *IntLit:
		return intVal(e.V)
	case *RealLit:
		return realVal(e.V)
	case *BoolLit:
		return boolVal(e.V)
	case *Ident:
		if sc != nil {
			if v, ok := sc[e.Name]; ok {
				return *v
			}
		}
		if v, ok := in.consts[e.Name]; ok {
			return v
		}
		if v, ok := in.scalars[e.Name]; ok {
			return *v
		}
		panic(fmt.Sprintf("unknown name %q", e.Name))
	case *ArrayRef:
		return in.evalArrayRef(e, sc, env)
	case *Unary:
		v := in.evalExpr(e.X, sc, env)
		if e.Op == KWNot {
			return boolVal(!v.b)
		}
		if env != nil {
			env.Flops(1)
		}
		if v.t == TInt {
			return intVal(-v.i)
		}
		return realVal(-v.f)
	case *Binary:
		l := in.evalExpr(e.L, sc, env)
		r := in.evalExpr(e.R, sc, env)
		if env != nil {
			env.Flops(1)
		}
		return arith(e.Op, l, r)
	case *Call:
		args := make([]value, len(e.Args))
		for k, a := range e.Args {
			args[k] = in.evalExpr(a, sc, env)
		}
		if env != nil {
			env.Flops(1)
		}
		switch e.Name {
		case "abs":
			return realVal(math.Abs(args[0].asReal()))
		case "sqrt":
			return realVal(math.Sqrt(args[0].asReal()))
		case "min":
			return realVal(math.Min(args[0].asReal(), args[1].asReal()))
		case "max":
			return realVal(math.Max(args[0].asReal(), args[1].asReal()))
		case "float":
			return realVal(args[0].asReal())
		case "trunc":
			return intVal(int(args[0].asReal()))
		}
		panic(fmt.Sprintf("unknown function %q", e.Name))
	default:
		panic(fmt.Sprintf("unknown expression %T", e))
	}
}

// evalArrayRef dispatches on the checker's access classification.
func (in *interp) evalArrayRef(e *ArrayRef, sc scope, env *forall.Env) value {
	idx := make([]int, len(e.Indexes))
	for k, ix := range e.Indexes {
		idx[k] = in.evalExpr(ix, sc, env).i
	}
	if ia, ok := in.ints[e.Name]; ok {
		if env != nil {
			switch len(idx) {
			case 1:
				return intVal(env.ReadInt(ia, idx[0]))
			case 2:
				return intVal(env.ReadInt2(ia, idx[0], idx[1]))
			}
		}
		return intVal(ia.Get(idx...))
	}
	a := in.arrays[e.Name]
	if a == nil {
		panic(fmt.Sprintf("unknown array %q", e.Name))
	}
	if env == nil {
		// Top level: checker restricts this to replicated arrays.
		return realVal(a.Get(idx...))
	}
	switch e.access {
	case accReplicated, accAligned:
		switch len(idx) {
		case 1:
			return realVal(env.ReadLocal(a, idx[0]))
		case 2:
			return realVal(env.ReadLocal2(a, idx[0], idx[1]))
		}
		panic("rank > 2")
	default: // accAffine, accIndirect
		if len(idx) == 1 {
			return realVal(env.Read(a, idx[0]))
		}
		return realVal(env.ReadAt(a, idx...))
	}
}

// gather collects final array and scalar state into the pre-allocated
// host Result.  Distributed arrays are filled disjointly by their
// owners; node 0 reports scalars and replicated arrays.
func (in *interp) gather(res *Result) {
	me := in.ctx.ID()
	for name, a := range in.arrays {
		buf := res.Arrays[name]
		if a.Replicated() {
			if me == 0 {
				for g := 1; g <= a.Size(); g++ {
					buf[g-1] = a.GetLinear(g)
				}
			}
			continue
		}
		a.EachLocal(func(g int) { buf[g-1] = a.GetLinear(g) })
	}
	for name, ia := range in.ints {
		buf := res.IntArrays[name]
		if ia.Dist().Replicated() {
			if me == 0 {
				copy(buf, ia.LocalValues())
			}
			continue
		}
		ia.EachLocal(func(g int) {
			buf[g-1] = ia.Get(delinearizeShape(ia.Shape(), g)...)
		})
	}
	if me == 0 {
		for name, v := range in.scalars {
			res.Scalars[name] = v.asReal()
		}
	}
}

func delinearizeShape(shape []int, g int) []int {
	g--
	out := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		out[d] = g%shape[d] + 1
		g /= shape[d]
	}
	return out
}
