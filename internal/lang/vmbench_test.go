package lang

import (
	"testing"

	"kali/internal/core"
	"kali/internal/machine"
)

// Benchmarks for the steady-state forall replay path: one elaborated
// program, schedules cached, body re-executed per iteration.  These
// time exactly what the langvm kalibench table reports per element —
// run with -bench to profile where the body path spends its time.

func benchProgram() string {
	return jacobi2dBenchSrc
}

const jacobi2dBenchSrc = `
processors Procs : array[1..2, 1..2];
const n = 32;
var u, old : array[1..n, 1..n] of real dist by [block, block] on Procs;
    r, c : integer;
begin
    for r in 1..n do
        for c in 1..n do
            u[r,c] := float((r*13 + c*7) mod 11);
        end;
    end;
    forall r in 1..n-2, c in 1..n-2 on u[r+1,c+1].loc do
        u[r+1,c+1] := 0.25*old[r,c+1] + 0.25*old[r+1,c] + 0.25*old[r+1,c+2] + 0.25*old[r+2,c+1];
    end;
end.
`

// benchReplay builds the jacobi relaxation forall once and replays it
// b.N times on a 4-node sim machine, reporting ns per element.
func benchReplay(b *testing.B, noVM bool) {
	prog, err := Compile(benchProgram())
	if err != nil {
		b.Fatal(err)
	}
	prog.NoVM = noVM
	el, err := prog.elaborate(4)
	if err != nil {
		b.Fatal(err)
	}
	fa := findForall(prog.file.Main, 0)
	if fa == nil {
		b.Fatal("no forall")
	}
	n := 32
	elems := (n - 2) * (n - 2)
	cfg := core.Config{P: el.procP, Params: machine.Ideal()}
	core.Run(cfg, func(ctx *core.Context) {
		in := newInterp(prog.file, ctx, el)
		in.declareArrays()
		in.execStmts(prog.file.Main, nil, nil)
		ctx.Node.Barrier()
		if ctx.Node.ID() == 0 {
			b.ResetTimer()
		}
		for k := 0; k < b.N; k++ {
			in.execStmt(fa, nil, nil)
			ctx.Node.Barrier()
		}
		ctx.Node.Barrier()
	})
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*elems), "ns/elem")
}

func BenchmarkJacobiBodyVM(b *testing.B)     { benchReplay(b, false) }
func BenchmarkJacobiBodyWalker(b *testing.B) { benchReplay(b, true) }
