package lang

// BaseType is a scalar type.
type BaseType int

// Scalar types.
const (
	TInt BaseType = iota
	TReal
	TBool
)

func (t BaseType) String() string {
	switch t {
	case TInt:
		return "integer"
	case TReal:
		return "real"
	default:
		return "boolean"
	}
}

// File is a parsed program.
type File struct {
	Procs  *ProcsDecl
	Consts []*ConstDecl
	Vars   []*VarDecl
	Main   []Stmt
}

// ProcsDecl is "processors Procs : array[1..P] with P in lo..hi;" or,
// for two-dimensional processor arrays ("multi-dimensional processor
// arrays can be declared similarly", §2.1),
// "processors Procs : array[1..p1, 1..p2];" with constant extents.
type ProcsDecl struct {
	Name    string
	SizeVar string // the P identifier ("" when the bound is a constant)
	Size    Expr   // used when SizeVar is ""
	Size2   Expr   // second dimension extent (nil for 1-D)
	MinP    Expr   // with-clause bounds (nil when absent)
	MaxP    Expr
	Line    int
}

// Rank2 reports whether the processor array is two-dimensional.
func (d *ProcsDecl) Rank2() bool { return d.Size2 != nil }

// ConstDecl is one "name = expr" binding.
type ConstDecl struct {
	Name string
	X    Expr
	Line int

	// Folded/Val cache the Check-time evaluation of X for constants
	// that do not depend on P; elaboration and the bytecode compiler
	// reuse the cached value.  P-dependent constants stay unfolded and
	// are evaluated once the processor count is chosen.
	Folded bool
	Val    value
}

// DistItem is one entry of a dist clause.
type DistItem struct {
	Kind  Kind // KWBlock, KWCyclic, KWBlockCyclic, KWMap, STAR
	Block Expr // block size for block_cyclic
	// MapVar/MapExpr describe a user-defined distribution
	// "map(v : expr)": the owner of global index v is expr, evaluated
	// at elaboration time over the constants and P.
	MapVar  string
	MapExpr Expr
}

// VarDecl declares one or more names of a common type.
type VarDecl struct {
	Names []string
	Elem  BaseType
	Dims  []ArrayDim // empty for scalars
	Dist  []DistItem // nil when replicated / scalar
	OnTo  string     // processor array name ("" defaults)
	Line  int
}

// ArrayDim is one "lo..hi" bound pair.
type ArrayDim struct {
	Lo, Hi Expr
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Assign is "lvalue := expr".
type Assign struct {
	Name    string
	Indexes []Expr // nil for scalars
	X       Expr
	Line    int
}

// Forall is the parallel loop with an on clause.  Two-dimensional
// foralls (Var2 != "") iterate over an index pair and place iterations
// by the owner of OnArray[i, j].
type Forall struct {
	Var      string
	Lo, Hi   Expr
	Var2     string // "" for 1-D foralls
	Lo2, Hi2 Expr
	OnArray  string
	OnIndex  Expr
	OnIndex2 Expr // second on-clause subscript (2-D only)
	Decls    []*LocalDecl
	Body     []Stmt
	Line     int

	// set by the checker:
	reads []*readInfo
	deps  []string // int arrays the reference pattern depends on
	// slotNames/intSlotNames number the real and integer arrays read
	// in the body, in first-reference order; every ArrayRef.slot below
	// indexes into the matching list.  The bytecode compiler binds VM
	// array slots from this numbering.
	slotNames    []string
	intSlotNames []string
}

// LocalDecl is a per-iteration variable inside a forall.
type LocalDecl struct {
	Name string
	Type BaseType
	Line int
}

// ForLoop is a sequential for.
type ForLoop struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Line   int
}

// While is a while loop.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// If is a conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// Reduce is "reduce op(args) into name" — the language's global
// reduction (convergence tests).  Ops: maxdiff(a, b), sum(a), max(a).
type Reduce struct {
	Op   string
	Args []string // array names
	Into string
	Line int
}

// Redistribute is "redistribute name as [items]": rebind a distributed
// array to a new dist clause mid-run, moving every element to its new
// owner (dynamic distributions, paper §2.4).  The item list has the
// same forms as a declaration's dist clause.
type Redistribute struct {
	Name  string
	Items []DistItem
	Line  int
}

func (*Assign) stmtNode()       {}
func (*Forall) stmtNode()       {}
func (*ForLoop) stmtNode()      {}
func (*While) stmtNode()        {}
func (*If) stmtNode()           {}
func (*Reduce) stmtNode()       {}
func (*Redistribute) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	V    int
	Line int
}

// RealLit is a real literal.
type RealLit struct {
	V    float64
	Line int
}

// BoolLit is true/false.
type BoolLit struct {
	V    bool
	Line int
}

// Ident is a scalar/const/loop-variable reference.
type Ident struct {
	Name string
	Line int
}

// ArrayRef is "name[indexes]".
type ArrayRef struct {
	Name    string
	Indexes []Expr
	Line    int

	// set by the checker for refs inside foralls:
	access accessMode
	slot   int // index into the forall's slotNames/intSlotNames
}

// Unary is "-x" or "not x".
type Unary struct {
	Op   Kind
	X    Expr
	Line int
}

// Binary is "x op y".
type Binary struct {
	Op   Kind
	L, R Expr
	Line int
}

// Call is a builtin call: abs, min, max, sqrt, float, trunc.
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*BoolLit) exprNode()  {}
func (*Ident) exprNode()    {}
func (*ArrayRef) exprNode() {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}

// accessMode classifies an array reference inside a forall.
type accessMode int

const (
	accNone       accessMode = iota
	accReplicated            // replicated array: plain local read
	accAligned               // compiler-proven local (subscript aligned with on clause)
	accAffine                // affine subscript: compile-time schedule, Env.Read
	accIndirect              // data-dependent subscript: inspector, Env.Read
)

// readInfo describes one distinct distributed-array read slot of a
// forall (feeds forall.Loop.Reads / forall.Loop2.Reads).
type readInfo struct {
	array  string
	affine bool
	a, c   int // filled at elaboration for affine reads
	aExpr  Expr
	cExpr  Expr
	// rank-2 affine reads X[aI*i+cI, aJ*j+cJ] inside two-index foralls:
	affine2                        bool
	aIExpr, cIExpr, aJExpr, cJExpr Expr
}
