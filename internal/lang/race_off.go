//go:build !race

package lang

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation-exactness tests skip.
const raceEnabled = false
