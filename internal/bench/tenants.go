package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/server"
)

// Tenants measures the multi-tenant schedule server: N concurrent
// tenants running against one machine pool and shared schedule store,
// in three regimes — cold with every tenant a distinct shape (no
// sharing possible), cold with identical shapes (cross-tenant sharing
// plus singleflight), and warm-started from a persisted cache
// directory (zero builds).
//
// The builds / store hits / disk hits columns are exact: singleflight
// makes the build count a function of (shapes × nodes), not of tenant
// interleaving, so the CI baseline gates "builds" at the usual
// tolerance.  The latency percentiles are measured wall-clock and
// host-dependent ("wall" excludes them from the gate); allocs/run is
// the sim backend's deterministic steady-state allocation count per
// warm tenant run.
func Tenants(opt Options) *Table {
	p, tenants, n, sweeps, allocReps := 8, 16, 4096, 4, 50
	pool := 4
	if opt.Quick {
		p, tenants, n, sweeps, allocReps = 4, 8, 512, 3, 20
	}
	t := &Table{
		ID:    "tenants",
		Title: "concurrent multi-tenant schedule server: sharing, persistence, latency",
		Header: []string{"scenario", "tenants", "builds", "store hits", "disk hits",
			"hit rate", "p50 wall ms", "p95 wall ms", "allocs/run"},
		Notes: []string{
			fmt.Sprintf("%d tenants on a %d-machine pool, P=%d, jacobi+copyback over n=%d (%d sweeps); hit rate = (store+disk hits)/lookups",
				tenants, pool, p, n, sweeps),
		},
	}

	sameShape := make([]int, tenants)
	distinct := make([]int, tenants)
	for k := range sameShape {
		sameShape[k] = n
		distinct[k] = n + 32*(k+1)
	}

	newServer := func(dir string) *server.Server {
		srv, err := server.New(server.Config{P: p, Machines: pool, Params: machine.Ideal(), CacheDir: dir})
		if err != nil {
			panic(err)
		}
		return srv
	}

	runScenario := func(name string, srv *server.Server, ns []int) {
		lat := make([]time.Duration, tenants)
		var wg sync.WaitGroup
		for k := 0; k < tenants; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				start := time.Now()
				if _, err := srv.RunFunc(tenantsWorkload(ns[k], sweeps)); err != nil {
					panic(err)
				}
				lat[k] = time.Since(start)
			}(k)
		}
		wg.Wait()
		st := srv.Stats().Store
		lookups := st.Hits + st.DiskHits + st.Builds
		hitRate := 0.0
		if lookups > 0 {
			hitRate = 100 * float64(st.Hits+st.DiskHits) / float64(lookups)
		}
		allocs := tenantAllocsPerRun(srv, ns[0], sweeps, allocReps)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50 := lat[len(lat)/2]
		p95 := lat[len(lat)*95/100]
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(tenants),
			fmt.Sprint(st.Builds), fmt.Sprint(st.Hits), fmt.Sprint(st.DiskHits),
			pct(hitRate),
			fmt.Sprintf("%.2f", float64(p50.Microseconds())/1e3),
			fmt.Sprintf("%.2f", float64(p95.Microseconds())/1e3),
			fmt.Sprintf("%.0f", allocs),
		})
	}

	runScenario("cold distinct", newServer(""), distinct)
	runScenario("cold shared", newServer(""), sameShape)

	// Warm start: populate a cache directory with one run, then serve
	// the same shape from a brand-new server on that directory — every
	// schedule revives from disk, so the warm server builds nothing.
	dir, err := os.MkdirTemp("", "kali-tenants-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	seed := newServer(dir)
	if _, err := seed.RunFunc(tenantsWorkload(n, sweeps)); err != nil {
		panic(err)
	}
	runScenario("warm disk", newServer(dir), sameShape)
	return t
}

// tenantsWorkload is one tenant's program: alternating Jacobi and
// copy-back sweeps — two shareable compile-time shapes per tenant.
func tenantsWorkload(n, sweeps int) func(*core.Context) {
	return func(ctx *core.Context) {
		a := ctx.BlockArray("a", n)
		b := ctx.BlockArray("b", n)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		jac := &forall.Loop{
			Name: "jacobi", Lo: 2, Hi: n - 1,
			On: b, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{
				{Array: a, Affine: &analysis.Affine{A: 1, C: -1}},
				{Array: a, Affine: &analysis.Affine{A: 1, C: 1}},
			},
			Body: func(i int, e *forall.Env) {
				e.Write(b, i, 0.5*(e.Read(a, i-1)+e.Read(a, i+1)))
			},
		}
		back := &forall.Loop{
			Name: "copyback", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: b, Affine: &analysis.Affine{A: 1, C: 0}}},
			Body: func(i int, e *forall.Env) {
				e.Write(a, i, e.Read(b, i))
			},
		}
		for s := 0; s < sweeps; s++ {
			ctx.Forall(jac)
			ctx.Forall(back)
		}
	}
}

// tenantAllocsPerRun measures steady-state allocations of one warm
// tenant run: sequential replays with the collector off, averaged over
// reps so the Go runtime's occasional timing-dependent bookkeeping
// allocations stay below rendering granularity.
func tenantAllocsPerRun(srv *server.Server, n, sweeps, reps int) float64 {
	prog := tenantsWorkload(n, sweeps)
	if _, err := srv.RunFunc(prog); err != nil { // warm the caches
		panic(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < reps; r++ {
		if _, err := srv.RunFunc(prog); err != nil {
			panic(err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps)
}
