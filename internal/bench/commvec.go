package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// CommVec measures the vectorized communication path: per-Range bulk
// packing, message coalescing (all of a loop's reads in one message
// per processor pair), content-addressed schedule sharing, and the
// pooled zero-allocation replay.  Three variants of the same two-array
// shift run on identical data:
//
//   - "per-array" disables coalescing (Engine.NoCombine): each read
//     array's data travels in its own message, the pre-combining
//     behavior the paper improves on ("sorting by processor id also
//     allowed us to combine messages ...").
//   - "coalesced" is the default executor: strictly fewer, larger
//     messages.
//   - "coalesced+shared" runs a second identically-shaped loop over
//     different arrays: it adopts the first loop's schedule from the
//     content-addressed store, so two loops cost one build.
//
// Message and byte counts come from the machine's per-node Stats;
// allocs/replay is the machine-wide malloc count during the cached
// replays divided by the number of replays, measured with the GC
// parked — 0.00 means the replay path allocates nothing at all.
func CommVec(opt Options) *Table {
	n, p, reps := 1<<14, 8, 40
	if opt.Quick {
		n, p, reps = 1<<10, 4, 25
	}
	t := &Table{
		ID:     "commvec",
		Title:  "vectorized communication: coalescing, sharing, allocation-free replay",
		Header: []string{"variant", "builds", "shared hits", "msgs/exec", "bytes/exec", "allocs/replay", "executor time"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, N=%d block-distributed, %d processors, two read arrays, %d cached replays", n, p, reps),
		},
	}
	for _, v := range []struct {
		name              string
		noCombine, second bool
	}{
		{"per-array (no combine)", true, false},
		{"coalesced", false, false},
		{"coalesced+shared", false, true},
	} {
		r := commVecRun(n, p, reps, machine.NCUBE7(), v.noCombine, v.second)
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprint(r.builds), fmt.Sprint(r.sharedHits),
			fmt.Sprintf("%.1f", r.msgsPerExec), fmt.Sprintf("%.0f", r.bytesPerExec),
			fmt.Sprintf("%.2f", r.allocsPerReplay), f2(r.execTime),
		})
	}
	return t
}

// commVecResult carries one variant's measurements.
type commVecResult struct {
	builds, sharedHits        int
	msgsPerExec, bytesPerExec float64
	allocsPerReplay, execTime float64
}

// commVecRun executes the two-array shift (one loop, or two
// identically-shaped loops when second is set) reps times from the
// schedule cache and measures machine-wide data messages, bytes,
// mallocs and executor time over exactly that replay window.
func commVecRun(n, p, reps int, params machine.Params, noCombine, second bool) commVecResult {
	g := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, params)

	// Park the GC so the malloc count is exact and the payload pool is
	// never drained mid-measurement.
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)

	var res commVecResult
	var mu sync.Mutex
	var beforeAgg machine.Stats
	mach.Run(func(nd *machine.Node) {
		mkLoop := func(name string, out, u, v *darray.Array) *forall.Loop {
			return &forall.Loop{
				Name: name, Lo: 1, Hi: n - 1,
				On: out, OnF: analysis.Identity,
				Reads: []forall.ReadSpec{
					{Array: u, Affine: &analysis.Affine{A: 1, C: 1}},
					{Array: v, Affine: &analysis.Affine{A: 1, C: 1}},
				},
				Body: func(i int, e *forall.Env) {
					e.Write(out, i, e.Read(u, i+1)+e.Read(v, i+1))
				},
			}
		}
		mkArrays := func(tag string) (*darray.Array, *darray.Array, *darray.Array) {
			out := darray.New("out"+tag, d, nd)
			u := darray.New("u"+tag, d, nd)
			v := darray.New("v"+tag, d, nd)
			for i := 1; i <= n; i++ {
				if u.IsLocal1(i) {
					u.Set1(i, float64(i))
					v.Set1(i, float64(2*i))
				}
			}
			return out, u, v
		}
		outA, uA, vA := mkArrays("A")
		eng := forall.NewEngine(nd)
		eng.NoCombine = noCombine
		la := mkLoop("vecA", outA, uA, vA)
		var lb *forall.Loop
		if second {
			outB, uB, vB := mkArrays("B")
			lb = mkLoop("vecB", outB, uB, vB)
		}

		// Warmup: build (or share) the schedules and grow the payload
		// pool to the pattern's peak in-flight demand.  The per-round
		// barrier bounds that demand — see TestReplayAllocationFree.
		for k := 0; k < 3; k++ {
			eng.Run(la)
			if lb != nil {
				eng.Run(lb)
			}
			nd.Barrier()
		}

		var before, after runtime.MemStats
		statsBefore := nd.Stats()
		execBefore := nd.PhaseTime(forall.PhaseExecutor)
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			eng.Run(la)
			if lb != nil {
				eng.Run(lb)
			}
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		nd.Barrier()

		mu.Lock()
		beforeAgg = beforeAgg.Add(statsBefore)
		if dt := nd.PhaseTime(forall.PhaseExecutor) - execBefore; dt > res.execTime {
			res.execTime = dt
		}
		if nd.ID() == 0 {
			res.builds = eng.Builds()
			res.sharedHits = eng.SharedHits()
			res.allocsPerReplay = float64(after.Mallocs-before.Mallocs) / float64(reps)
		}
		mu.Unlock()
	})
	// Nothing is sent after the measured window, so the machine-wide
	// totals at exit minus the aggregated pre-window snapshots are
	// exactly the window's traffic.
	stats := mach.TotalStats().Sub(beforeAgg)
	loops := 1.0
	if second {
		loops = 2
	}
	execs := float64(reps) * loops
	res.msgsPerExec = float64(stats.MsgsSent) / execs
	res.bytesPerExec = float64(stats.BytesSent) / execs
	return res
}
