package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/topology"
)

// Backend contrasts the two Transport backends on the same compiled
// schedules: the simulator's cost-model predictions (NCUBE/7) next to
// wall-clock times measured on real pinned threads.  Three workloads
// cover the paper's program shapes — a Jacobi shift replayed from a
// compile-time schedule, an ADI-style [block,*]↔[*,block]
// redistribution ping-pong, and an unstructured indirect sweep replayed
// from an inspector-built schedule.
//
// The structural columns (msgs, bytes, allocs/replay) are
// backend-invariant and deterministic, so the CI baseline gates them;
// the wall-clock columns are host-dependent by nature and are excluded
// from the gate (see costColumn).  allocs/replay comes from the sim
// run, where the only allocations are the replay path's own; the wall
// run's count ("wall allocs", not gated) additionally picks up a few
// timing-dependent thread-bookkeeping allocations from the Go runtime
// itself.  Speedup is wall time at 1 thread over wall time at P
// threads — it exceeds 1 only when the host actually has multiple
// cores to run the pinned threads on.
func Backend(opt Options) *Table {
	jacobiN, adiN, unstrN := 1<<16, 192, 1<<14
	procs := []int{1, 2, 4, 8}
	// Plenty of replays: the Go runtime itself makes a handful of
	// timing-dependent internal allocations per run (thread wakeups),
	// and a large divisor keeps them below the 0.1 display granularity
	// so the gated allocs/replay column stays deterministic.
	const reps = 200
	if opt.Quick {
		jacobiN, adiN, unstrN = 1<<12, 48, 1<<11
		procs = []int{1, 2, 4}
	}
	t := &Table{
		ID:    "backend",
		Title: "simulated vs measured: sim and wall-clock backends on shared schedules",
		Header: []string{"workload", "threads", "sim time/rep", "wall ms/rep",
			"wall speedup", "msgs/rep", "bytes/rep", "allocs/replay", "wall allocs"},
		Notes: []string{
			fmt.Sprintf("sim time is the NCUBE/7 cost model; wall time is measured on real threads (jacobi N=%d, adi %dx%d, unstructured N=%d, %d replays)",
				jacobiN, adiN, adiN, unstrN, reps),
		},
	}
	for _, w := range []struct {
		name    string
		program func(p int) backendProgram
	}{
		{"jacobi", func(p int) backendProgram { return jacobiProgram(jacobiN) }},
		{"adi", func(p int) backendProgram { return adiProgram(adiN, p) }},
		{"unstructured", func(p int) backendProgram { return unstructuredProgram(unstrN) }},
	} {
		var wall1 float64
		for _, p := range procs {
			simR := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(p))
			wallR := backendRun(wallclock.MustNew(p, machine.NCUBE7()), p, reps, w.program(p))
			if p == procs[0] {
				wall1 = wallR.secPerRep
			}
			speedup := 0.0
			if wallR.secPerRep > 0 {
				speedup = wall1 / wallR.secPerRep
			}
			t.Rows = append(t.Rows, []string{
				w.name, fmt.Sprint(p),
				fmt.Sprintf("%.4f", simR.secPerRep),
				fmt.Sprintf("%.3f", wallR.secPerRep*1e3),
				fmt.Sprintf("%.2f", speedup),
				fmt.Sprintf("%.1f", wallR.msgsPerRep),
				fmt.Sprintf("%.0f", wallR.bytesPerRep),
				fmt.Sprintf("%.1f", simR.allocsPerRep),
				fmt.Sprintf("%.1f", wallR.allocsPerRep),
			})
		}
	}
	return t
}

// backendProgram is one node's share of a workload: setup runs once
// and returns the replay step that is timed.
type backendProgram func(nd *machine.Node) func()

// jacobiProgram is the Jacobi shift: a compile-time affine schedule,
// replayed from the cache with pooled payloads (the zero-alloc path).
func jacobiProgram(n int) backendProgram {
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(nd.P())
		d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		a, b := darray.New("ja", d, nd), darray.New("jb", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		eng := forall.NewEngine(nd)
		loop := &forall.Loop{
			Name: "jacobi", Lo: 2, Hi: n - 1,
			On: b, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{
				{Array: a, Affine: &analysis.Affine{A: 1, C: -1}},
				{Array: a, Affine: &analysis.Affine{A: 1, C: 1}},
			},
			Body: func(i int, e *forall.Env) {
				e.Write(b, i, 0.5*(e.Read(a, i-1)+e.Read(a, i+1)))
			},
		}
		return func() { eng.Run(loop) }
	}
}

// adiProgram is the ADI sweep's data-movement core: remapping an n×n
// array between [block,*] and [*,block] (the transpose between the
// row and column phases), replayed from the redistribution plan store.
func adiProgram(n, p int) backendProgram {
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(p)
		rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
		cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
		a := darray.New("adi", rows, nd)
		a.EachLocal(func(gl int) { a.SetLinear(gl, float64(gl)) })
		return func() {
			darray.Redistribute(a, cols)
			darray.Redistribute(a, rows)
		}
	}
}

// unstructuredProgram is the paper's irregular case: an indirect sweep
// whose communication sets only the inspector can derive, replayed
// from the cached inspector schedule.
func unstructuredProgram(n int) backendProgram {
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(nd.P())
		d := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		a, b := darray.New("ua", d, nd), darray.New("ub", d, nd)
		ip := darray.NewInt("uperm", d, nd)
		a.EachLocal(func(gl int) { a.Set1(gl, float64(gl)) })
		b.EachLocal(func(gl int) { b.Set1(gl, 0) })
		// A fixed stride walks off the local block without a PRNG, so
		// every replay moves real nonlocal data deterministically.
		ip.EachLocal(func(gl int) { ip.Set1(gl, (gl*7919)%n+1) })
		eng := forall.NewEngine(nd)
		eng.ForceInspector = true
		loop := &forall.Loop{
			Name: "unstructured", Lo: 1, Hi: n,
			On: b, OnF: analysis.Identity,
			Reads:     []forall.ReadSpec{{Array: a}},
			DependsOn: []forall.Dep{ip},
			Body: func(i int, e *forall.Env) {
				e.Write(b, i, e.Read(a, e.ReadInt(ip, i)))
			},
		}
		return func() { eng.Run(loop) }
	}
}

// backendMeas is one (workload, backend, thread-count) measurement.
type backendMeas struct {
	secPerRep    float64 // max per-node replay-phase time per rep
	msgsPerRep   float64 // machine-wide sends per rep
	bytesPerRep  float64 // machine-wide bytes per rep
	allocsPerRep float64 // machine-wide mallocs per rep, GC parked
}

const phaseBackendReplay = "backend-replay"

// backendRun executes prog on m: warmup rounds build the schedules and
// grow the payload pool, then exactly reps replays are timed under the
// phase clock with the GC parked, following the commVecRun measurement
// discipline (barrier-bracketed MemStats on node 0, per-node stats
// snapshots aggregated for the window's traffic).
func backendRun(m *machine.Machine, p, reps int, prog backendProgram) backendMeas {
	// Pinned threads need real parallelism to overlap: lift GOMAXPROCS
	// to the thread count for the wall measurement (restored after).
	// The sim run keeps the ambient setting — its nodes are plain
	// goroutines and its alloc count feeds the deterministic CI gate.
	if oldMax := runtime.GOMAXPROCS(0); m.Backend() == "wall" && p > oldMax {
		runtime.GOMAXPROCS(p)
		defer runtime.GOMAXPROCS(oldMax)
	}
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)

	var res backendMeas
	var mu sync.Mutex
	var beforeAgg machine.Stats
	m.Run(func(nd *machine.Node) {
		replay := prog(nd)
		// Warmup builds the schedules, grows the payload pool to the
		// pattern's peak concurrent demand (which needs several rounds
		// on real threads, where interleavings vary), primes the
		// phase-timer map, and lets the runtime spawn its worker
		// threads, so the measured window allocates nothing.
		for k := 0; k < 12; k++ {
			nd.StartPhase(phaseBackendReplay)
			replay()
			nd.StopPhase(phaseBackendReplay)
			nd.Barrier()
		}
		warmupSec := nd.PhaseTime(phaseBackendReplay)

		var before, after runtime.MemStats
		statsBefore := nd.Stats()
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			nd.StartPhase(phaseBackendReplay)
			replay()
			nd.StopPhase(phaseBackendReplay)
			// The per-rep barrier bounds the pattern's in-flight payload
			// demand to what warmup grew the pool to (commvec discipline).
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		nd.Barrier()

		mu.Lock()
		beforeAgg = beforeAgg.Add(statsBefore)
		if dt := nd.PhaseTime(phaseBackendReplay) - warmupSec; dt > res.secPerRep {
			res.secPerRep = dt // max over nodes; divided by reps below
		}
		if nd.ID() == 0 {
			res.allocsPerRep = float64(after.Mallocs-before.Mallocs) / float64(reps)
		}
		mu.Unlock()
	})
	stats := m.TotalStats().Sub(beforeAgg)
	res.secPerRep /= float64(reps)
	res.msgsPerRep = float64(stats.MsgsSent) / float64(reps)
	res.bytesPerRep = float64(stats.BytesSent) / float64(reps)
	return res
}
