// Package bench regenerates every table and figure of the paper's
// evaluation (Figures 7–10 are tables; Figures 1–6 are program/code
// artifacts exercised elsewhere), plus the ablations DESIGN.md calls
// out.  Each generator returns a Table carrying both the measured
// values from the simulated machines and the paper's published values,
// so the output is a direct paper-vs-measured comparison.
package bench

import (
	"fmt"
	"strings"
	"sync"

	"kali/internal/analysis"
	"kali/internal/baseline"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/mesh"
	"kali/internal/relax"
	"kali/internal/topology"
)

// Table is one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options controls experiment sizing.
type Options struct {
	// Quick shrinks problem sizes and processor counts so the whole
	// suite runs in seconds (used by tests); full sizes reproduce the
	// paper exactly.
	Quick bool
}

// Generator produces one experiment table.
type Generator func(Options) *Table

// Registry maps experiment ids (DESIGN.md §4) to generators.
var Registry = map[string]Generator{
	"fig7":         Fig7,
	"fig8":         Fig8,
	"fig9":         Fig9,
	"fig10":        Fig10,
	"worstcase":    WorstCase,
	"unstructured": Unstructured,
	"caching":      Caching,
	"baseline":     Baseline,
	"ctvsrt":       CompileVsRuntime,
	"ctvsrt2d":     CompileVsRuntime2D,
	"distchoice":   DistChoice,
	"enumeration":  Enumeration,
	"enumerate2d":  Enumeration2D,
	"commvec":      CommVec,
	"redist":       Redist,
	"granularity":  Granularity,
	"backend":      Backend,
	"langvm":       LangVM,
	"overlap":      Overlap,
	"tenants":      Tenants,
}

// Order lists the experiments in presentation order.
var Order = []string{
	"fig7", "fig8", "fig9", "fig10",
	"worstcase", "unstructured", "caching", "baseline", "ctvsrt", "ctvsrt2d",
	"distchoice", "enumeration", "enumerate2d", "commvec", "redist", "granularity",
	"backend", "langvm", "overlap", "tenants",
}

const sweeps = 100

// simSweeps is how many sweeps are actually simulated before exact
// extrapolation to 100 (see relax.RunExtrapolated).
const simSweeps = 4

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }

// paperFig7 holds the published NCUBE/7 table (Figure 7).
var paperFig7 = map[int][4]float64{ // P -> total, exec, insp, ovh%
	2: {246.07, 244.04, 2.03, 0.8}, 4: {127.46, 126.12, 1.34, 1.1},
	8: {68.38, 67.28, 1.10, 1.6}, 16: {38.95, 37.88, 1.07, 2.7},
	32: {24.36, 23.21, 1.15, 4.7}, 64: {17.71, 16.42, 1.29, 7.3},
	128: {12.64, 11.19, 1.45, 11.5},
}

// paperFig8 holds the published iPSC/2 table (Figure 8).
var paperFig8 = map[int][4]float64{
	2: {60.69, 60.34, 0.34, 0.56}, 4: {31.20, 31.02, 0.18, 0.57},
	8: {16.23, 16.13, 0.10, 0.60}, 16: {8.88, 8.82, 0.06, 0.64},
	32: {5.27, 5.23, 0.04, 0.70},
}

// paperFig9 holds Figure 9 (NCUBE/7, 128 procs, varying mesh):
// size -> total, exec, insp, ovh%, speedup.
var paperFig9 = map[int][5]float64{
	64: {4.97, 3.56, 1.38, 27.8, 23.9}, 128: {12.64, 11.19, 1.45, 11.5, 37.3},
	256: {34.13, 32.52, 1.61, 4.7, 55.2}, 512: {93.78, 91.68, 2.10, 2.2, 80.4},
	1024: {305.03, 301.31, 3.72, 1.2, 98.9},
}

// paperFig10 holds Figure 10 (iPSC/2, 32 procs, varying mesh).
var paperFig10 = map[int][5]float64{
	64: {1.88, 1.86, 0.02, 0.85, 15.7}, 128: {5.27, 5.23, 0.04, 0.70, 22.5},
	256: {17.65, 17.54, 0.11, 0.62, 26.8}, 512: {65.17, 64.79, 0.38, 0.58, 29.1},
	1024: {249.75, 248.34, 1.41, 0.56, 30.3},
}

// varyProcs renders a Figure 7/8-style table: fixed mesh, varying P.
func varyProcs(id, title string, params machine.Params, procs []int,
	side int, paper map[int][4]float64) *Table {
	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{"procs", "total", "executor", "inspector", "overhead",
			"paper total", "paper insp", "paper ovh"},
		Notes: []string{
			fmt.Sprintf("time in seconds for %d sweeps over a %dx%d mesh (simulated %s)",
				sweeps, side, side, params.Name),
		},
	}
	m := mesh.Rect(side, side)
	for _, p := range procs {
		r := relax.RunExtrapolated(relax.Options{
			Mesh: m, Sweeps: sweeps, P: p, Params: params,
		}, simSweeps)
		row := []string{
			fmt.Sprint(p),
			f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
			pct(r.Report.OverheadPct()),
			"-", "-", "-",
		}
		if pv, ok := paper[p]; ok {
			row[5], row[6], row[7] = f2(pv[0]), f2(pv[2]), pct(pv[3])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 regenerates Figure 7: NCUBE/7, 128×128 mesh, varying processors.
func Fig7(opt Options) *Table {
	if opt.Quick {
		return varyProcs("fig7", "run-time analysis, varying processors (NCUBE/7)",
			machine.NCUBE7(), []int{2, 4, 8}, 32, nil)
	}
	return varyProcs("fig7", "run-time analysis, varying processors (NCUBE/7)",
		machine.NCUBE7(), []int{2, 4, 8, 16, 32, 64, 128}, 128, paperFig7)
}

// Fig8 regenerates Figure 8: iPSC/2, 128×128 mesh, varying processors.
func Fig8(opt Options) *Table {
	if opt.Quick {
		return varyProcs("fig8", "run-time analysis, varying processors (iPSC/2)",
			machine.IPSC2(), []int{2, 4, 8}, 32, nil)
	}
	return varyProcs("fig8", "run-time analysis, varying processors (iPSC/2)",
		machine.IPSC2(), []int{2, 4, 8, 16, 32}, 128, paperFig8)
}

// varySize renders a Figure 9/10-style table: fixed P, varying mesh.
func varySize(id, title string, params machine.Params, p int,
	sides []int, paper map[int][5]float64) *Table {
	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{"mesh", "total", "executor", "inspector", "overhead", "speedup",
			"paper total", "paper ovh", "paper speedup"},
		Notes: []string{
			fmt.Sprintf("time in seconds for %d sweeps on %d processors (simulated %s); speedup vs 1-processor executor time",
				sweeps, p, params.Name),
		},
	}
	for _, side := range sides {
		m := mesh.Rect(side, side)
		r := relax.RunExtrapolated(relax.Options{
			Mesh: m, Sweeps: sweeps, P: p, Params: params,
		}, simSweeps)
		t1 := relax.SeqExecutorTime(m, sweeps, params)
		row := []string{
			fmt.Sprintf("%dx%d", side, side),
			f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
			pct(r.Report.OverheadPct()),
			fmt.Sprintf("%.1f", t1/r.Report.Total),
			"-", "-", "-",
		}
		if pv, ok := paper[side]; ok {
			row[6], row[7], row[8] = f2(pv[0]), pct(pv[3]), fmt.Sprintf("%.1f", pv[4])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9 regenerates Figure 9: NCUBE/7, 128 processors, varying mesh.
func Fig9(opt Options) *Table {
	if opt.Quick {
		return varySize("fig9", "run-time analysis, varying problem size (NCUBE/7)",
			machine.NCUBE7(), 8, []int{16, 32}, nil)
	}
	return varySize("fig9", "run-time analysis, varying problem size (NCUBE/7)",
		machine.NCUBE7(), 128, []int{64, 128, 256, 512, 1024}, paperFig9)
}

// Fig10 regenerates Figure 10: iPSC/2, 32 processors, varying mesh.
func Fig10(opt Options) *Table {
	if opt.Quick {
		return varySize("fig10", "run-time analysis, varying problem size (iPSC/2)",
			machine.IPSC2(), 8, []int{16, 32}, nil)
	}
	return varySize("fig10", "run-time analysis, varying problem size (iPSC/2)",
		machine.IPSC2(), 32, []int{64, 128, 256, 512, 1024}, paperFig10)
}

// WorstCase regenerates the §4 text numbers: inspector overhead when
// only ONE sweep is performed ("the worst case, where one performs
// only one sweep": NCUBE 45%→93%, iPSC 35%→41%).
func WorstCase(opt Options) *Table {
	side := 128
	ncubeP := []int{2, 128}
	ipscP := []int{2, 32}
	if opt.Quick {
		side, ncubeP, ipscP = 32, []int{2, 8}, []int{2, 8}
	}
	t := &Table{
		ID:     "worstcase",
		Title:  "single-sweep inspector overhead (paper §4 text)",
		Header: []string{"machine", "procs", "total", "inspector", "overhead", "paper ovh"},
		Notes: []string{
			fmt.Sprintf("1 sweep over a %dx%d mesh; paper: NCUBE 45%%..93%%, iPSC 35%%..41%%", side, side),
		},
	}
	m := mesh.Rect(side, side)
	paper := map[string]map[int]string{
		"NCUBE/7": {2: "45%", 128: "93%"},
		"iPSC/2":  {2: "35%", 32: "41%"},
	}
	for _, mc := range []struct {
		params machine.Params
		procs  []int
	}{{machine.NCUBE7(), ncubeP}, {machine.IPSC2(), ipscP}} {
		for _, p := range mc.procs {
			r := relax.Run(relax.Options{Mesh: m, Sweeps: 1, P: p, Params: mc.params})
			pv := "-"
			if s, ok := paper[mc.params.Name][p]; ok {
				pv = s
			}
			t.Rows = append(t.Rows, []string{
				mc.params.Name, fmt.Sprint(p),
				f2(r.Report.Total), f2(r.Report.Inspector),
				pct(r.Report.OverheadPct()), pv,
			})
		}
	}
	return t
}

// Unstructured regenerates the §4 discussion: on a true unstructured
// grid connectivity is ~6, so "all costs, execution, inspection, and
// communication, would be somewhat higher".  The table compares the
// rectangular and unstructured meshes at equal node counts.
func Unstructured(opt Options) *Table {
	side, procs := 128, []int{16, 64}
	sw := sweeps
	if opt.Quick {
		side, procs, sw = 32, []int{4}, 10
	}
	t := &Table{
		ID:     "unstructured",
		Title:  "rectangular vs unstructured mesh (TXT2)",
		Header: []string{"mesh", "procs", "avg deg", "total", "executor", "inspector", "overhead"},
		Notes: []string{
			"NCUBE/7; 'unstructured' = 6-neighbor triangular mesh in natural order (the paper's",
			"'somewhat higher' case); 'shuffled' destroys the numbering locality entirely",
		},
	}
	for _, p := range procs {
		for _, mk := range []struct {
			name string
			m    *mesh.Mesh
		}{
			{"rect", mesh.Rect(side, side)},
			{"unstructured", mesh.Unstructured(side, side, false, 0)},
			{"shuffled", mesh.Unstructured(side, side, true, 1990)},
		} {
			r := relax.RunExtrapolated(relax.Options{
				Mesh: mk.m, Sweeps: sw, P: p, Params: machine.NCUBE7(),
			}, simSweeps)
			t.Rows = append(t.Rows, []string{
				mk.name, fmt.Sprint(p), fmt.Sprintf("%.1f", mk.m.AvgDegree()),
				f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
				pct(r.Report.OverheadPct()),
			})
		}
	}
	return t
}

// Caching regenerates ABL1: the paper's claim that saving the
// communication sets between forall executions amortizes the
// inspector.  Without caching the inspector runs every sweep.
func Caching(opt Options) *Table {
	side, p := 128, 16
	sweepCounts := []int{1, 10, 100}
	if opt.Quick {
		side, p, sweepCounts = 32, 4, []int{1, 5}
	}
	t := &Table{
		ID:     "caching",
		Title:  "schedule caching ablation (ABL1, paper §3.2)",
		Header: []string{"sweeps", "cached insp", "cached ovh", "no-cache insp", "no-cache ovh"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d mesh, %d processors", side, side, p),
		},
	}
	m := mesh.Rect(side, side)
	for _, sw := range sweepCounts {
		cached := relax.Run(relax.Options{Mesh: m, Sweeps: sw, P: p, Params: machine.NCUBE7()})
		nocache := relax.Run(relax.Options{Mesh: m, Sweeps: sw, P: p, Params: machine.NCUBE7(), NoCache: true})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(sw),
			f2(cached.Report.Inspector), pct(cached.Report.OverheadPct()),
			f2(nocache.Report.Inspector), pct(nocache.Report.OverheadPct()),
		})
	}
	return t
}

// Baseline regenerates ABL2: Kali-generated code vs hand-written
// message passing ("virtually identical" per §1; the residual gap is
// the search overhead of §4).
func Baseline(opt Options) *Table {
	side := 128
	procs := []int{2, 8, 32, 128}
	sw := sweeps
	if opt.Quick {
		side, procs, sw = 32, []int{2, 4}, 10
	}
	t := &Table{
		ID:     "baseline",
		Title:  "Kali vs hand-coded message passing (ABL2)",
		Header: []string{"procs", "kali total", "hand total", "ratio"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d mesh, %d sweeps; hand-coded has no inspector and no searches", side, side, sw),
		},
	}
	m := mesh.Rect(side, side)
	for _, p := range procs {
		k := relax.RunExtrapolated(relax.Options{Mesh: m, Sweeps: sw, P: p, Params: machine.NCUBE7()}, simSweeps)
		hb := baseline.Run(baseline.Options{NX: side, NY: side, Sweeps: simSweeps, P: p, Params: machine.NCUBE7()})
		handTotal := hb.Report.Total / float64(simSweeps) * float64(sw)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p), f2(k.Report.Total), f2(handTotal),
			fmt.Sprintf("%.2f", k.Report.Total/handTotal),
		})
	}
	return t
}

// CompileVsRuntime regenerates ABL3: for an affine loop (the Figure 1
// shift), compile-time analysis eliminates the inspector entirely.
func CompileVsRuntime(opt Options) *Table {
	n, p, reps := 1<<16, 16, 20
	if opt.Quick {
		n, p, reps = 1<<10, 4, 5
	}
	t := &Table{
		ID:     "ctvsrt",
		Title:  "compile-time vs run-time analysis on the Figure 1 shift (ABL3)",
		Header: []string{"path", "schedule time", "executor time", "total"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, N=%d block-distributed, %d processors, %d executions", n, p, reps),
		},
	}
	for _, force := range []bool{false, true} {
		rep := core.Run(core.Config{P: p, Params: machine.NCUBE7()}, func(ctx *core.Context) {
			a := ctx.BlockArray("A", n)
			ctx.Eng.ForceInspector = force
			ctx.Eng.NoCache = true // isolate per-execution schedule cost
			loop := &forall.Loop{
				Name: "shift", Lo: 1, Hi: n - 1,
				On: a, OnF: analysis.Identity,
				Reads: []forall.ReadSpec{{Array: a, Affine: &analysis.Affine{A: 1, C: 1}}},
				Body: func(i int, e *forall.Env) {
					e.Write(a, i, e.Read(a, i+1))
				},
			}
			for r := 0; r < reps; r++ {
				ctx.Forall(loop)
			}
		})
		name := "compile-time"
		if force {
			name = "run-time inspector"
		}
		t.Rows = append(t.Rows, []string{
			name, f2(rep.Inspector), f2(rep.Executor), f2(rep.Total),
		})
	}
	return t
}

// CompileVsRuntime2D is the ABL3 contrast in two dimensions: the
// five-point stencil on a 2-D processor grid has per-dimension affine
// subscripts, so the rank-2 closed forms replace the inspector pass
// and its global exchange entirely.
func CompileVsRuntime2D(opt Options) *Table {
	n, pr, pc, reps := 128, 4, 4, 5
	if opt.Quick {
		n, pr, pc, reps = 32, 2, 2, 3
	}
	t := &Table{
		ID:     "ctvsrt2d",
		Title:  "compile-time vs run-time analysis, 2-D five-point stencil",
		Header: []string{"path", "schedule time", "executor time", "total"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d [block,block] on a %dx%d grid, %d executions, no schedule cache", n, n, pr, pc, reps),
		},
	}
	for _, force := range []bool{false, true} {
		sched, exec := Run2DStencil(n, pr, pc, reps, machine.NCUBE7(), force)
		name := "compile-time"
		if force {
			name = "run-time inspector"
		}
		t.Rows = append(t.Rows, []string{name, f2(sched), f2(exec), f2(sched + exec)})
	}
	return t
}

// Relax2DLoop builds the affine five-point-stencil Loop2 the 2-D
// compile-time-vs-inspector experiments share (a[i,j] from old's four
// neighbors, all per-dimension affine).
func Relax2DLoop(a, old *darray.Array, n int) *forall.Loop2 {
	return &forall.Loop2{
		Name: "relax2d", LoI: 2, HiI: n - 1, LoJ: 2, HiJ: n - 1,
		On: a,
		Reads: []forall.ReadSpec{
			{Array: old, Affine2: analysis.Shift2(-1, 0)}, {Array: old, Affine2: analysis.Shift2(1, 0)},
			{Array: old, Affine2: analysis.Shift2(0, -1)}, {Array: old, Affine2: analysis.Shift2(0, 1)},
		},
		Body: func(i, j int, e *forall.Env) {
			x := 0.25 * (e.ReadAt(old, i-1, j) + e.ReadAt(old, i+1, j) +
				e.ReadAt(old, i, j-1) + e.ReadAt(old, i, j+1))
			e.Flops(9)
			e.WriteAt(a, x, i, j)
		},
	}
}

// Run2DStencil executes the shared stencil loop reps times on an n×n
// [block,block] array over a pr×pc grid with the schedule cache off,
// returning the simulated schedule-build and executor times.
func Run2DStencil(n, pr, pc, reps int, params machine.Params, forceInspector bool) (sched, exec float64) {
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(pr*pc, params)
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		eng := forall.NewEngine(nd)
		eng.ForceInspector = forceInspector
		eng.NoCache = true
		loop := Relax2DLoop(a, old, n)
		for r := 0; r < reps; r++ {
			eng.Run2(loop)
		}
	})
	return mach.MaxPhase(forall.PhaseInspector), mach.MaxPhase(forall.PhaseExecutor)
}

// DistChoice regenerates ABL5: the §2.4 claim that distributions can
// be swapped by "trivial modification" — and that the choice is what
// performance hinges on.  Same program, same mesh, four distributions.
func DistChoice(opt Options) *Table {
	side, p, sw := 128, 16, sweeps
	if opt.Quick {
		side, p, sw = 32, 4, 10
	}
	t := &Table{
		ID:     "distchoice",
		Title:  "distribution choice on the same program (ABL5, paper §2.4)",
		Header: []string{"distribution", "total", "executor", "inspector", "nonlocal iters"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d mesh, %d sweeps, %d processors; the program text is identical", side, side, sw, p),
		},
	}
	m := mesh.Rect(side, side)
	blockish := (m.N + p - 1) / p
	for _, c := range []struct {
		name string
		opt  relax.Options
	}{
		{"block", relax.Options{Dist: dist.BlockDim()}},
		{"cyclic", relax.Options{Dist: dist.CyclicDim()}},
		{fmt.Sprintf("block_cyclic(%d)", blockish/4), relax.Options{Dist: dist.BlockCyclicDim(blockish / 4)}},
		{"block_cyclic(8)", relax.Options{Dist: dist.BlockCyclicDim(8)}},
	} {
		ro := c.opt
		ro.Mesh, ro.Sweeps, ro.P, ro.Params = m, sw, p, machine.NCUBE7()
		r := relax.RunExtrapolated(ro, simSweeps)
		t.Rows = append(t.Rows, []string{
			c.name, f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
			fmt.Sprint(r.NonlocalIters),
		})
	}
	return t
}

// Enumeration regenerates ABL7: the paper's §5 comparison with Saltz
// et al., who "explicitly enumerate all array references (local and
// nonlocal) in a 'list'.  This eliminates the overhead of checking and
// searching for nonlocal references during the loop execution but
// requires more storage than our implementation."
func Enumeration(opt Options) *Table {
	side, p, sw := 128, 64, sweeps
	if opt.Quick {
		side, p, sw = 32, 4, 10
	}
	t := &Table{
		ID:     "enumeration",
		Title:  "range-search executor vs Saltz-style full enumeration (ABL7, paper §5)",
		Header: []string{"executor", "total", "executor time", "inspector", "schedule bytes/proc"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d mesh, %d sweeps, %d processors", side, side, sw, p),
		},
	}
	m := mesh.Rect(side, side)
	for _, enum := range []bool{false, true} {
		name := "kali (search)"
		if enum {
			name = "saltz (enumerate)"
		}
		r := relax.RunExtrapolated(relax.Options{
			Mesh: m, Sweeps: sw, P: p, Params: machine.NCUBE7(), Enumerate: enum,
		}, simSweeps)
		t.Rows = append(t.Rows, []string{
			name, f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
			fmt.Sprint(r.ScheduleBytes),
		})
	}
	return t
}

// Enumeration2D ports the §5 storage comparison to rank 2: the same
// five-point stencil Loop2 built all three ways the executor supports.
// The compile-time and inspector variants produce byte-identical
// range-record schedules (the property test pins this); the Saltz-
// style enumerated variant replays a per-reference list instead of
// searching, which is faster per sweep but needs strictly more
// schedule storage.
func Enumeration2D(opt Options) *Table {
	n, pr, pc, reps := 96, 4, 4, 5
	if opt.Quick {
		n, pr, pc, reps = 32, 2, 2, 3
	}
	t := &Table{
		ID:     "enumerate2d",
		Title:  "2-D executor variants: precomputed search vs Saltz enumeration (paper §5)",
		Header: []string{"executor", "build", "schedule time", "executor time", "schedule bytes/proc"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d [block,block] on a %dx%d grid, %d executions, schedule cached after the first", n, n, pr, pc, reps),
		},
	}
	for _, v := range []struct {
		name        string
		force, enum bool
	}{
		{"kali (compile-time)", false, false},
		{"kali (inspector)", true, false},
		{"saltz (enumerate)", false, true},
	} {
		kind, sched, exec, mem := run2DVariant(n, pr, pc, reps, machine.NCUBE7(), v.force, v.enum)
		t.Rows = append(t.Rows, []string{
			v.name, kind.String(), f2(sched), f2(exec), fmt.Sprint(mem),
		})
	}
	return t
}

// run2DVariant executes the shared stencil loop reps times with the
// chosen executor variant (schedule cache on, so the build cost is
// paid once) and reports the first build's kind, the simulated
// schedule and executor times, and the worst per-node schedule bytes.
func run2DVariant(n, pr, pc, reps int, params machine.Params, forceInspector, enumerate bool) (kind forall.BuildKind, sched, exec float64, mem int) {
	g := topology.MustGrid(pr, pc)
	d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(pr*pc, params)
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		a := darray.New("a", d, nd)
		old := darray.New("old", d, nd)
		eng := forall.NewEngine(nd)
		eng.ForceInspector = forceInspector
		loop := Relax2DLoop(a, old, n)
		loop.Enumerate = enumerate
		first := forall.BuildKind(0)
		for r := 0; r < reps; r++ {
			eng.Run2(loop)
			if r == 0 {
				first = eng.LastBuildKind()
			}
		}
		mu.Lock()
		kind = first
		if mb := eng.Schedule2(loop.Name).MemBytes(); mb > mem {
			mem = mb
		}
		mu.Unlock()
	})
	return kind, mach.MaxPhase(forall.PhaseInspector), mach.MaxPhase(forall.PhaseExecutor), mem
}

// Granularity regenerates TXT3: §2.1's remark that the real estate
// agent "might use fewer processors to improve granularity".  On a
// small mesh, total time has a minimum at an intermediate processor
// count — beyond it, fixed per-processor costs (combine stages,
// boundary fractions) outweigh the shrinking compute.
func Granularity(opt Options) *Table {
	side := 32
	procs := []int{2, 4, 8, 16, 32, 64, 128}
	// A short run on a small mesh: the regime where granularity
	// matters and the log-P schedule-building cost can dominate.
	sw := 10
	if opt.Quick {
		side, procs = 16, []int{2, 4, 8, 16}
	}
	t := &Table{
		ID:     "granularity",
		Title:  "why the real estate agent may choose fewer processors (TXT3, §2.1)",
		Header: []string{"procs", "total", "executor", "inspector"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, small %dx%d mesh, short run (%d sweeps): note the interior minimum", side, side, sw),
		},
	}
	m := mesh.Rect(side, side)
	for _, p := range procs {
		if p > m.N {
			continue
		}
		r := relax.RunExtrapolated(relax.Options{
			Mesh: m, Sweeps: sw, P: p, Params: machine.NCUBE7(),
		}, simSweeps)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p), f2(r.Report.Total), f2(r.Report.Executor), f2(r.Report.Inspector),
		})
	}
	return t
}

// All renders every experiment in order.
func All(opt Options) []*Table {
	out := make([]*Table, 0, len(Order))
	for _, id := range Order {
		out = append(out, Registry[id](opt))
	}
	return out
}
