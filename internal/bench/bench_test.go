package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse pulls a float out of a rendered cell.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Fatalf("missing generator %q", id)
		}
	}
}

func TestAllQuickTablesRender(t *testing.T) {
	for _, tab := range All(Options{Quick: true}) {
		out := tab.Render()
		if !strings.Contains(out, tab.ID) || len(tab.Rows) == 0 {
			t.Fatalf("table %s rendered badly:\n%s", tab.ID, out)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("table %s: row width %d != header %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

// TestFig7QuickShape: executor time decreases with processors and
// overhead increases — the table's qualitative content.
func TestFig7QuickShape(t *testing.T) {
	tab := Fig7(Options{Quick: true})
	var prevExec, prevOvh float64
	for i, row := range tab.Rows {
		exec := parse(t, row[2])
		ovh := parse(t, row[4])
		if i > 0 {
			if exec >= prevExec {
				t.Fatalf("executor did not shrink: %v", tab.Rows)
			}
			if ovh <= prevOvh {
				t.Fatalf("overhead did not grow: %v", tab.Rows)
			}
		}
		prevExec, prevOvh = exec, ovh
	}
}

// TestFig9QuickShape: overhead falls and speedup rises with size.
func TestFig9QuickShape(t *testing.T) {
	for _, gen := range []Generator{Fig9, Fig10} {
		tab := gen(Options{Quick: true})
		o0, o1 := parse(t, tab.Rows[0][4]), parse(t, tab.Rows[1][4])
		s0, s1 := parse(t, tab.Rows[0][5]), parse(t, tab.Rows[1][5])
		if o1 >= o0 {
			t.Fatalf("%s: overhead did not fall: %v", tab.ID, tab.Rows)
		}
		if s1 <= s0 {
			t.Fatalf("%s: speedup did not rise: %v", tab.ID, tab.Rows)
		}
	}
}

// TestWorstCaseQuickDominates: with a single sweep the inspector is a
// large fraction of total time.
func TestWorstCaseQuickDominates(t *testing.T) {
	tab := WorstCase(Options{Quick: true})
	for _, row := range tab.Rows {
		if ovh := parse(t, row[4]); ovh < 10 {
			t.Fatalf("single-sweep overhead suspiciously low: %v", row)
		}
	}
}

// TestCachingQuickAmortizes: cached inspector time is constant in
// sweeps; no-cache scales with sweeps.
func TestCachingQuickAmortizes(t *testing.T) {
	tab := Caching(Options{Quick: true})
	c0 := parse(t, tab.Rows[0][1])
	cN := parse(t, tab.Rows[len(tab.Rows)-1][1])
	n0 := parse(t, tab.Rows[0][3])
	nN := parse(t, tab.Rows[len(tab.Rows)-1][3])
	if cN > c0*1.01 {
		t.Fatalf("cached inspector grew: %v", tab.Rows)
	}
	if nN < 3*n0 {
		t.Fatalf("no-cache inspector did not scale: %v", tab.Rows)
	}
}

// TestBaselineQuickNearParity: Kali within 2x of hand-coded and never
// faster.
func TestBaselineQuickNearParity(t *testing.T) {
	tab := Baseline(Options{Quick: true})
	for _, row := range tab.Rows {
		ratio := parse(t, row[3])
		if ratio < 1.0 || ratio > 2.0 {
			t.Fatalf("implausible kali/hand ratio: %v", row)
		}
	}
}

// TestCompileVsRuntimeQuick: compile-time schedule cost must be far
// below the inspector's.
func TestCompileVsRuntimeQuick(t *testing.T) {
	tab := CompileVsRuntime(Options{Quick: true})
	ct := parse(t, tab.Rows[0][1])
	rt := parse(t, tab.Rows[1][1])
	if ct >= rt {
		t.Fatalf("compile-time schedule cost %g not below run-time %g", ct, rt)
	}
}

// TestEnumerationQuickTradeoff: the Saltz-style executor is faster but
// stores a bigger schedule (ABL7).
func TestEnumerationQuickTradeoff(t *testing.T) {
	tab := Enumeration(Options{Quick: true})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	search, enum := tab.Rows[0], tab.Rows[1]
	if parse(t, enum[2]) >= parse(t, search[2]) {
		t.Fatalf("enumerated executor not faster: %v vs %v", enum, search)
	}
	if parse(t, enum[4]) <= parse(t, search[4]) {
		t.Fatalf("enumerated schedule not bigger: %v vs %v", enum, search)
	}
}

// TestCommVecQuick: the commvec acceptance criteria — coalescing
// strictly reduces the message count at equal bytes, cached replay is
// allocation-free, and the second identically-shaped loop shares the
// first loop's schedule instead of building its own.
func TestCommVecQuick(t *testing.T) {
	tab := CommVec(Options{Quick: true})
	perArray, coalesced, shared := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	if parse(t, coalesced[3]) >= parse(t, perArray[3]) {
		t.Fatalf("coalescing did not reduce messages: %v vs %v", coalesced, perArray)
	}
	if parse(t, coalesced[4]) != parse(t, perArray[4]) {
		t.Fatalf("coalescing changed bytes moved: %v vs %v", coalesced, perArray)
	}
	for _, row := range tab.Rows {
		if parse(t, row[5]) != 0 {
			t.Fatalf("cached replay allocated (%s allocs/replay): %v", row[5], row)
		}
	}
	if parse(t, shared[1]) != 1 || parse(t, shared[2]) != 1 {
		t.Fatalf("two same-shaped loops should cost 1 build + 1 shared hit: %v", shared)
	}
}

// TestLangVMQuick: the compiled-body acceptance criteria — the
// bytecode VM beats the tree walker on every workload and its warm
// replay is allocation-free (the speedup magnitude is asserted loosely
// here because quick mode is noisy; the full table is the headline).
func TestLangVMQuick(t *testing.T) {
	tab := LangVM(Options{Quick: true})
	if len(tab.Rows) != 9 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		interp, vm, native := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2]
		if parse(t, vm[2]) >= parse(t, interp[2])/2 {
			t.Fatalf("VM not at least 2x faster than walker: %v vs %v", vm, interp)
		}
		if parse(t, vm[3]) != 0 || parse(t, native[3]) != 0 {
			t.Fatalf("warm replay allocated: %v / %v", vm, native)
		}
		if parse(t, interp[3]) == 0 {
			t.Fatalf("walker unexpectedly allocation-free: %v", interp)
		}
	}
}

// TestDistChoiceQuickBlockWins: block is the fastest distribution for
// the stencil (ABL5).
func TestDistChoiceQuickBlockWins(t *testing.T) {
	tab := DistChoice(Options{Quick: true})
	block := parse(t, tab.Rows[0][1])
	for _, row := range tab.Rows[1:] {
		if parse(t, row[1]) < block {
			t.Fatalf("distribution %s beat block: %v", row[0], tab.Rows)
		}
	}
}

// TestUnstructuredQuickCostsHigher: the 6-neighbor mesh costs more in
// every column, as the paper predicts, and the shuffled numbering
// costs yet more.
func TestUnstructuredQuickCostsHigher(t *testing.T) {
	tab := Unstructured(Options{Quick: true})
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		rect, unst, shuf := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2]
		if parse(t, unst[3]) <= parse(t, rect[3]) {
			t.Fatalf("unstructured total not higher: %v vs %v", unst, rect)
		}
		if parse(t, unst[5]) <= parse(t, rect[5]) {
			t.Fatalf("unstructured inspector not higher: %v vs %v", unst, rect)
		}
		if parse(t, shuf[3]) <= parse(t, unst[3]) {
			t.Fatalf("shuffled total not higher than natural: %v vs %v", shuf, unst)
		}
	}
}
