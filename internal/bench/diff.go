package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the CI regression gate for schedule costs: a
// committed kalibench -json run (bench/baseline.json) is compared
// against a fresh run of the same experiments, and any cost-like cell
// — simulated times, overhead percentages, schedule memory — that
// grew beyond the tolerance fails the build.  The simulator is
// deterministic, so the tolerance only has to absorb intentional
// small cost-model drift, not run-to-run noise; regenerate the
// baseline (kalibench -quick -json > bench/baseline.json) when a
// change moves costs on purpose.

// Regression is one baseline comparison failure: either a cost cell
// that grew past tolerance, or a structural mismatch between the
// baseline and the fresh run.
type Regression struct {
	Table, Row, Column string
	Base, Cur          float64
	// Structural describes a shape mismatch (missing table, row-count
	// change); Base/Cur are meaningless when it is non-empty.
	Structural string
}

func (r Regression) String() string {
	if r.Structural != "" {
		return fmt.Sprintf("%s: %s", r.Table, r.Structural)
	}
	if r.Base == 0 {
		return fmt.Sprintf("%s [%s / %s]: %.4g -> %.4g", r.Table, r.Row, r.Column, r.Base, r.Cur)
	}
	return fmt.Sprintf("%s [%s / %s]: %.4g -> %.4g (+%.1f%%)",
		r.Table, r.Row, r.Column, r.Base, r.Cur, 100*(r.Cur/r.Base-1))
}

// costColumn reports whether a header names a cost the gate should
// bound: times, overheads, and schedule storage, but never the
// paper's published reference columns (constants), never identity
// columns like "procs" or "mesh", and never measured wall-clock
// columns — those vary with the host and the scheduler, so gating
// them would make CI nondeterministic.  The backend table's
// structural columns (msgs, bytes, allocs/replay) stay gated.
func costColumn(header string) bool {
	h := strings.ToLower(header)
	for _, skip := range []string{"paper", "wall", "measured", "speedup"} {
		if strings.Contains(h, skip) {
			return false
		}
	}
	for _, key := range []string{"total", "executor", "inspector", "insp", "schedule", "time", "overhead", "ovh", "bytes", "mem", "msgs", "alloc", "builds"} {
		if strings.Contains(h, key) {
			return true
		}
	}
	return false
}

// cellValue parses a rendered table cell ("12.64", "4.7%", "4480");
// ok is false for markers like "-" and non-numeric cells.
func cellValue(cell string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	return v, err == nil
}

// diffEps absorbs two-decimal rendering granularity: a cell printed as
// 0.00 must not fail against a baseline 0.00 however small tol is.
const diffEps = 0.01

// Compare checks a fresh run against the baseline.  For every table
// of the baseline, the matching current table must exist with the same
// shape, and each cost-column cell may not exceed
// base*(1+tol) + diffEps.  Improvements (smaller values) always pass;
// tables present only in the current run are ignored (the baseline
// needs regenerating, but nothing regressed).
func Compare(baseline, current []*Table, tol float64) []Regression {
	curByID := map[string]*Table{}
	for _, t := range current {
		curByID[t.ID] = t
	}
	var regs []Regression
	for _, base := range baseline {
		cur, ok := curByID[base.ID]
		if !ok {
			regs = append(regs, Regression{Table: base.ID, Structural: "table missing from current run"})
			continue
		}
		if len(cur.Rows) != len(base.Rows) {
			regs = append(regs, Regression{Table: base.ID,
				Structural: fmt.Sprintf("row count changed: %d -> %d", len(base.Rows), len(cur.Rows))})
			continue
		}
		if len(cur.Header) != len(base.Header) {
			regs = append(regs, Regression{Table: base.ID,
				Structural: fmt.Sprintf("column count changed: %d -> %d", len(base.Header), len(cur.Header))})
			continue
		}
		// The notes embed the problem sizes (mesh, processors, quick vs
		// full), so comparing them catches a full-size run diffed
		// against a -quick baseline before the numbers mislead anyone.
		if strings.Join(cur.Notes, "\n") != strings.Join(base.Notes, "\n") {
			regs = append(regs, Regression{Table: base.ID,
				Structural: fmt.Sprintf("problem sizing changed (run modes differ?): %q vs baseline %q",
					strings.Join(cur.Notes, "; "), strings.Join(base.Notes, "; "))})
			continue
		}
		for ri, baseRow := range base.Rows {
			curRow := cur.Rows[ri]
			label := fmt.Sprintf("row %d", ri)
			if len(baseRow) > 0 {
				label = baseRow[0]
			}
			for ci, baseCell := range baseRow {
				if ci >= len(curRow) || !costColumn(base.Header[ci]) {
					continue
				}
				bv, bok := cellValue(baseCell)
				cv, cok := cellValue(curRow[ci])
				if !bok || !cok {
					continue
				}
				if cv > bv*(1+tol)+diffEps {
					regs = append(regs, Regression{
						Table: base.ID, Row: label, Column: base.Header[ci],
						Base: bv, Cur: cv,
					})
				}
			}
		}
	}
	return regs
}
