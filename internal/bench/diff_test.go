package bench

import (
	"strings"
	"testing"
)

func mkTable(id string, rows ...[]string) *Table {
	return &Table{
		ID:     id,
		Header: []string{"procs", "total", "inspector", "paper total", "schedule bytes/proc"},
		Rows:   rows,
	}
}

func TestCompareWithinToleranceAndImprovementsPass(t *testing.T) {
	base := []*Table{mkTable("x", []string{"4", "10.00", "1.00", "12.00", "4480"})}
	cur := []*Table{mkTable("x", []string{"4", "10.40", "0.50", "99.00", "4480"})}
	// +4% total is inside a 5% tolerance, the inspector improved, and
	// the paper column is exempt however far it moves.
	if regs := Compare(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsCostGrowth(t *testing.T) {
	base := []*Table{mkTable("x", []string{"4", "10.00", "1.00", "12.00", "4480"})}
	cur := []*Table{mkTable("x", []string{"4", "11.00", "1.00", "12.00", "5000"})}
	regs := Compare(base, cur, 0.05)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (total, bytes), got %v", regs)
	}
	if regs[0].Column != "total" || regs[1].Column != "schedule bytes/proc" {
		t.Fatalf("wrong columns flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "10 -> 11") {
		t.Fatalf("unhelpful message: %s", regs[0])
	}
}

func TestCompareEpsilonAbsorbsRenderingGranularity(t *testing.T) {
	base := []*Table{mkTable("x", []string{"4", "0.00", "0.00", "-", "0"})}
	cur := []*Table{mkTable("x", []string{"4", "0.01", "0.00", "-", "0"})}
	// A two-decimal cell can wobble by one ulp of the rendering
	// without meaning anything.
	if regs := Compare(base, cur, 0.0); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsSizingMismatch(t *testing.T) {
	base := []*Table{mkTable("x", []string{"4", "1.00", "1.00", "-", "0"})}
	base[0].Notes = []string{"NCUBE/7, 32x32 mesh (quick)"}
	cur := []*Table{mkTable("x", []string{"4", "99.00", "9.00", "-", "0"})}
	cur[0].Notes = []string{"NCUBE/7, 128x128 mesh"}
	// A full-size run against a -quick baseline is a mode mismatch,
	// not dozens of cost regressions.
	regs := Compare(base, cur, 0.05)
	if len(regs) != 1 || regs[0].Structural == "" {
		t.Fatalf("want one structural sizing mismatch, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "sizing") {
		t.Fatalf("unhelpful message: %s", regs[0])
	}
}

func TestCompareZeroBaseMessage(t *testing.T) {
	r := Regression{Table: "x", Row: "4", Column: "inspector", Base: 0, Cur: 0.02}
	if s := r.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("nonsense growth figure: %s", s)
	}
}

func TestCompareStructuralMismatches(t *testing.T) {
	base := []*Table{
		mkTable("gone", []string{"4", "1.00", "1.00", "-", "0"}),
		mkTable("shrunk", []string{"4", "1.00", "1.00", "-", "0"}, []string{"8", "1.00", "1.00", "-", "0"}),
	}
	cur := []*Table{
		mkTable("shrunk", []string{"4", "1.00", "1.00", "-", "0"}),
		mkTable("brandnew", []string{"4", "1.00", "1.00", "-", "0"}),
	}
	regs := Compare(base, cur, 0.05)
	if len(regs) != 2 {
		t.Fatalf("want 2 structural regressions, got %v", regs)
	}
	for _, r := range regs {
		if r.Structural == "" {
			t.Fatalf("expected structural flag: %v", r)
		}
	}
}

// TestCompareQuickRunAgainstItself: a fresh quick suite compared to
// itself is clean — the simulator is deterministic, so this is the
// exact invariant the CI gate relies on.
func TestCompareQuickRunAgainstItself(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick bench suite twice")
	}
	opt := Options{Quick: true}
	a, b := All(opt), All(opt)
	if regs := Compare(a, b, 0); len(regs) != 0 {
		t.Fatalf("deterministic suite diffed against itself: %v", regs)
	}
}
