package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestTenantsQuick pins the acceptance invariants of the multi-tenant
// table: shapes shared across tenants produce a nonzero cross-tenant
// hit rate, the singleflight build counts are exact, and a warm start
// from the persisted cache builds nothing.
func TestTenantsQuick(t *testing.T) {
	tb := Tenants(Options{Quick: true})
	const p, tenants, shapes = 4, 8, 2
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	col := func(row []string, name string) string {
		for i, h := range tb.Header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	num := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(col(row, name), "%"), 64)
		if err != nil {
			t.Fatalf("column %q = %q: %v", name, col(row, name), err)
		}
		return v
	}

	cold := rows["cold distinct"]
	if got := num(cold, "builds"); got != tenants*shapes*p {
		t.Errorf("cold distinct builds = %g, want %d", got, tenants*shapes*p)
	}
	if got := num(cold, "hit rate"); got != 0 {
		t.Errorf("cold distinct hit rate = %g%%, want 0 (nothing shareable)", got)
	}

	shared := rows["cold shared"]
	if got := num(shared, "builds"); got != shapes*p {
		t.Errorf("cold shared builds = %g, want %d (singleflight)", got, shapes*p)
	}
	if got := num(shared, "hit rate"); got <= 0 {
		t.Errorf("cold shared hit rate = %g%%, want > 0", got)
	}

	warm := rows["warm disk"]
	if got := num(warm, "builds"); got != 0 {
		t.Errorf("warm disk builds = %g, want 0", got)
	}
	if got := num(warm, "disk hits"); got != shapes*p {
		t.Errorf("warm disk disk hits = %g, want %d", got, shapes*p)
	}
	if got := num(warm, "hit rate"); got != 100 {
		t.Errorf("warm disk hit rate = %g%%, want 100", got)
	}

	if !costColumn("builds") || !costColumn("allocs/run") {
		t.Error("builds and allocs/run must be gated cost columns")
	}
	for _, h := range []string{"p50 wall ms", "p95 wall ms", "hit rate", "store hits", "disk hits"} {
		if costColumn(h) {
			t.Errorf("column %q must not be gated (host-dependent or benefit metric)", h)
		}
	}
}
