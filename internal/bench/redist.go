package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// Redist measures schedule-driven dynamic redistribution (the run-time
// face of paper §2.4's dynamic distributions): an n×n array ping-pongs
// between row layout [block, *] and column layout [*, block] — the
// transpose at the heart of ADI-style alternating sweeps.  Two rows
// contrast the cold first cycle, which builds both all-to-all plans,
// against warm cycles replaying them from the content-addressed store:
// the replay builds nothing and — with payloads and partitions drawn
// from the shared buffer pool — allocates nothing (allocs/cycle 0.00,
// pinned by TestRedistributeReplayAllocationFree).
//
// Message and byte counts come from the machine's TagRedist-attributed
// Stats columns; "other msgs" shows that no redistribution traffic
// leaks into the forall counters (and vice versa).
func Redist(opt Options) *Table {
	n, p, reps := 256, 8, 20
	if opt.Quick {
		n, p, reps = 64, 4, 10
	}
	t := &Table{
		ID:     "redist",
		Title:  "dynamic redistribution: row-block <-> column-block ping-pong (ADI transpose)",
		Header: []string{"phase", "plan builds", "plan hits", "redist msgs/cycle", "redist bytes/cycle", "other msgs", "allocs/cycle", "redist time/cycle"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7, %dx%d real array, %d processors, %d warm ping-pong cycles", n, n, p, reps),
		},
	}
	cold, warm := redistRun(n, p, reps, machine.NCUBE7())
	t.Rows = append(t.Rows, cold, warm)
	return t
}

// redistRun executes one cold ping-pong cycle and reps warm ones,
// returning a rendered row for each regime.
func redistRun(n, p, reps int, params machine.Params) (cold, warm []string) {
	g := topology.MustGrid(p)
	rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(p, params)

	// Park the GC so the malloc count is exact and the buffer pool is
	// never drained mid-measurement.
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)

	builds0, hits0 := darray.RedistBuilds(), darray.RedistHits()
	var mu sync.Mutex
	var coldStats, warmBase machine.Stats
	var coldTime, warmTime float64
	var coldBuilds, coldHits, warmupBuilds, warmupHits, warmBuilds, warmHits int
	var warmMallocs uint64
	mach.Run(func(nd *machine.Node) {
		a := darray.New("u", rows, nd)
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if a.IsLocal(i, j) {
					a.Set(float64(i*n+j), i, j)
				}
			}
		}
		// Cold cycle: both plans are built here.
		darray.Redistribute(a, cols)
		nd.Barrier()
		darray.Redistribute(a, rows)
		nd.Barrier()
		statsAfterCold := nd.Stats()
		timeAfterCold := nd.PhaseTime(darray.PhaseRedistribute)
		if nd.ID() == 0 {
			mu.Lock()
			coldBuilds = darray.RedistBuilds() - builds0
			coldHits = darray.RedistHits() - hits0
			mu.Unlock()
		}
		nd.Barrier()

		// A few unmeasured warm cycles grow the buffer pools and pending
		// queues to the pattern's peak demand before the malloc window.
		for k := 0; k < 3; k++ {
			darray.Redistribute(a, cols)
			nd.Barrier()
			darray.Redistribute(a, rows)
			nd.Barrier()
		}
		warmupStats := nd.Stats()
		timeAfterWarmup := nd.PhaseTime(darray.PhaseRedistribute)
		if nd.ID() == 0 {
			mu.Lock()
			warmupBuilds = darray.RedistBuilds() - builds0
			warmupHits = darray.RedistHits() - hits0
			mu.Unlock()
		}
		var before, after runtime.MemStats
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			darray.Redistribute(a, cols)
			nd.Barrier()
			darray.Redistribute(a, rows)
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		nd.Barrier()

		mu.Lock()
		coldStats = coldStats.Add(statsAfterCold)
		warmBase = warmBase.Add(warmupStats)
		if timeAfterCold > coldTime {
			coldTime = timeAfterCold
		}
		if dt := nd.PhaseTime(darray.PhaseRedistribute) - timeAfterWarmup; dt > warmTime {
			warmTime = dt
		}
		if nd.ID() == 0 {
			warmMallocs = after.Mallocs - before.Mallocs
		}
		mu.Unlock()
	})
	warmStats := mach.TotalStats().Sub(warmBase)
	warmBuilds = darray.RedistBuilds() - builds0 - warmupBuilds
	warmHits = darray.RedistHits() - hits0 - warmupHits

	row := func(phase string, builds, hits int, st machine.Stats, cycles int, allocs float64, tm float64) []string {
		c := float64(cycles)
		return []string{
			phase, fmt.Sprint(builds), fmt.Sprint(hits),
			fmt.Sprintf("%.1f", float64(st.RedistMsgsSent)/c),
			fmt.Sprintf("%.0f", float64(st.RedistBytesSent)/c),
			fmt.Sprint(st.MsgsSent - st.RedistMsgsSent),
			fmt.Sprintf("%.2f", allocs),
			fmt.Sprintf("%.4f", tm/c),
		}
	}
	cold = row("cold (build)", coldBuilds, coldHits, coldStats, 1, -1, coldTime)
	cold[6] = "-" // cold-cycle allocations include one-time plan construction
	warm = row("warm (replay)", warmBuilds, warmHits, warmStats, reps, float64(warmMallocs)/float64(reps), warmTime)
	return cold, warm
}
