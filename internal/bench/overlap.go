package bench

import (
	"fmt"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/mg"
	"kali/internal/topology"
)

// Overlap measures the split-phase executors and the cross-loop
// aggregation built on them: the same cached schedules replayed with
// communication/computation overlap (ISend posts before the interior
// sweep, completion-order drain before the boundary) against the
// phase-synchronous oracle (-overlap=off), and the overlapped run
// again with adjacent loops fused into one aggregated send per
// processor pair (-fuse=off is the middle column).  Workloads: the
// 2-D five-point jacobi (a single loop — fusion has nothing to merge,
// its fused columns pin the no-regression case), an ADI cycle whose
// coupled row/column sweep pairs read the same array and fuse between
// [block,*]↔[*,block] transposes, and the multigrid V-cycle (whose
// prolongation interpolates through the sequence API on every level).
//
// The sim columns are deterministic cost-model predictions and stay
// under the CI gate; the pct columns express each win
// gate-compatibly (overlap as a percentage of phase-sync, fused as a
// percentage of overlap, < 100 when the mechanism pays; growth past
// baseline means it stopped paying and fails -diff).  Wall columns
// are measured and excluded as in the backend table.  Overlap never
// changes traffic, but fusion merges messages: msgs/rep is reported
// for the unfused and fused runs separately, and the fused column is
// gated so a lost merge (more envelopes) fails CI.  Byte totals are
// identical in every cell of a row.  allocs/replay comes from the
// fused sim run: warm fused replay must stay allocation-free.
func Overlap(opt Options) *Table {
	jacobiN, adiN, mgDepth := 96, 128, 9
	p, mgP := 8, 5
	const reps = 200
	if opt.Quick {
		jacobiN, adiN, mgDepth = 48, 48, 6
		p, mgP = 4, 3
	}
	t := &Table{
		ID:    "overlap",
		Title: "split-phase executors: overlap vs phase-sync, cross-loop fusion vs per-loop",
		Header: []string{"workload", "threads",
			"sim time/rep (sync)", "sim time/rep (overlap)", "sim time/rep (fused)",
			"sim time pct (overlap/sync)", "sim time pct (fused/overlap)",
			"wall ms/rep (sync)", "wall ms/rep (overlap)",
			"msgs/rep (unfused)", "msgs/rep (fused)", "allocs/replay"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7 sim vs measured wall; jacobi2d %dx%d, adi %dx%d coupled sweep pairs with transpose ping-pong, multigrid depth %d; %d replays",
				jacobiN, jacobiN, adiN, adiN, mgDepth, reps),
			fmt.Sprintf("mg runs on %d threads: an odd block size misaligns the fine and coarse block boundaries, so both interpolation loops of the prolongation pair exchange boundary values and fusion has messages to merge (when the fine block is exactly twice the coarse one, the even-point loop is fully local)", mgP),
		},
	}
	for _, w := range []struct {
		name    string
		p       int
		program func(noOverlap, noFuse bool) backendProgram
	}{
		{"jacobi2d", p, func(noOv, noFuse bool) backendProgram { return jacobi2DProgram(jacobiN, p, noOv, noFuse) }},
		{"adi", p, func(noOv, noFuse bool) backendProgram { return adiOverlapProgram(adiN, p, noOv, noFuse) }},
		{"mg", mgP, func(noOv, noFuse bool) backendProgram { return mgProgram(mgDepth, mgP, noOv, noFuse) }},
	} {
		p := w.p
		simSync := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(true, true))
		simOver := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(false, true))
		simFused := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(false, false))
		wallSync := backendRun(wallclock.MustNew(p, machine.NCUBE7()), p, reps, w.program(true, true))
		wallOver := backendRun(wallclock.MustNew(p, machine.NCUBE7()), p, reps, w.program(false, true))
		pctOver, pctFused := 100.0, 100.0
		if simSync.secPerRep > 0 {
			pctOver = 100 * simOver.secPerRep / simSync.secPerRep
		}
		if simOver.secPerRep > 0 {
			pctFused = 100 * simFused.secPerRep / simOver.secPerRep
		}
		t.Rows = append(t.Rows, []string{
			w.name, fmt.Sprint(p),
			fmt.Sprintf("%.6f", simSync.secPerRep),
			fmt.Sprintf("%.6f", simOver.secPerRep),
			fmt.Sprintf("%.6f", simFused.secPerRep),
			fmt.Sprintf("%.2f", pctOver),
			fmt.Sprintf("%.2f", pctFused),
			fmt.Sprintf("%.3f", wallSync.secPerRep*1e3),
			fmt.Sprintf("%.3f", wallOver.secPerRep*1e3),
			fmt.Sprintf("%.1f", simOver.msgsPerRep),
			fmt.Sprintf("%.1f", simFused.msgsPerRep),
			fmt.Sprintf("%.1f", simFused.allocsPerRep),
		})
	}
	return t
}

// jacobi2DProgram replays the shared five-point stencil Loop2 on an
// n×n [block,block] array: compile-time schedules, one coalesced
// boundary message to each of up to four neighbors per rep.
func jacobi2DProgram(n, p int, noOverlap, noFuse bool) backendProgram {
	pr, pc := grid2(p)
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(pr, pc)
		d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
		a, old := darray.New("o2a", d, nd), darray.New("o2b", d, nd)
		a.EachLocal(func(gl int) { a.SetLinear(gl, float64(gl%17)) })
		old.EachLocal(func(gl int) { old.SetLinear(gl, float64(gl%13)) })
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		eng.NoFuse = noFuse
		loop := Relax2DLoop(a, old, n)
		return func() { eng.Run2(loop) }
	}
}

// grid2 factors p into the most-square pr×pc processor grid.
func grid2(p int) (int, int) {
	pr := 1
	for f := 2; p > 1; {
		if p%f == 0 {
			pr *= f
			p /= f
			f = 2
			if pr >= p {
				break
			}
			continue
		}
		f++
	}
	return pr, p
}

// adiOverlapProgram is one ADI cycle with cross-row coupling and a
// coupled sweep pair per phase: two smooths with different stencils
// both read the neighboring rows of u under [block,*] (inspector
// schedules, overlappable boundary traffic) and write independent
// arrays, so the sequence API merges their per-pair messages into one
// aggregated send; then a transpose to [*,block], the coupled pair
// along the other axis, and the transpose back.  Redistribution stays
// phase-synchronous — the contrast isolates what overlap and fusion
// buy the foralls of an otherwise redistribution-bound cycle.
func adiOverlapProgram(n, p int, noOverlap, noFuse bool) backendProgram {
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(p)
		rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
		cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
		u := darray.New("oau", rows, nd)
		v := darray.New("oav", rows, nd)
		w := darray.New("oaw", rows, nd)
		line := darray.New("oaline", dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g), nd)
		u.EachLocal(func(gl int) { u.SetLinear(gl, float64(gl%11)) })
		v.EachLocal(func(gl int) { v.SetLinear(gl, 0) })
		w.EachLocal(func(gl int) { w.SetLinear(gl, 0) })
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		eng.NoFuse = noFuse
		// Unlike the pure ADI transpose (where each phase is fully
		// local), every sweep here reads ±1 across the distributed
		// dimension, so each rep has boundary traffic to overlap — and
		// each phase's two sweeps read the same rows of u, so their
		// messages merge under fusion.
		rowSweepV := &forall.Loop{
			Name: "oa.rowv", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}}, // rows i±1: decided at run time
			Body: func(i int, e *forall.Env) {
				for j := 1; j <= n; j++ {
					x := 0.25*e.ReadAt(u, i-1, j) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i+1, j)
					e.Flops(5)
					e.WriteAt(v, x, i, j)
				}
			},
		}
		rowSweepW := &forall.Loop{
			Name: "oa.roww", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}},
			Body: func(i int, e *forall.Env) {
				for j := 1; j <= n; j++ {
					x := 0.5 * (e.ReadAt(u, i-1, j) + e.ReadAt(u, i+1, j))
					e.Flops(3)
					e.WriteAt(w, x, i, j)
				}
			},
		}
		colSweepV := &forall.Loop{
			Name: "oa.colv", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}}, // columns j±1: decided at run time
			Body: func(j int, e *forall.Env) {
				for i := 1; i <= n; i++ {
					x := 0.25*e.ReadAt(u, i, j-1) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i, j+1)
					e.Flops(5)
					e.WriteAt(v, x, i, j)
				}
			},
		}
		colSweepW := &forall.Loop{
			Name: "oa.colw", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}},
			Body: func(j int, e *forall.Env) {
				for i := 1; i <= n; i++ {
					x := 0.5 * (e.ReadAt(u, i, j-1) + e.ReadAt(u, i, j+1))
					e.Flops(3)
					e.WriteAt(w, x, i, j)
				}
			},
		}
		rowPair := []forall.SeqLoop{
			{L: rowSweepV, Writes: []*darray.Array{v}},
			{L: rowSweepW, Writes: []*darray.Array{w}},
		}
		colPair := []forall.SeqLoop{
			{L: colSweepV, Writes: []*darray.Array{v}},
			{L: colSweepW, Writes: []*darray.Array{w}},
		}
		return func() {
			eng.RunSequence(rowPair)
			darray.Redistribute(u, cols)
			darray.Redistribute(v, cols)
			darray.Redistribute(w, cols)
			eng.RunSequence(colPair)
			darray.Redistribute(u, rows)
			darray.Redistribute(v, rows)
			darray.Redistribute(w, rows)
		}
	}
}

// mgProgram replays one multigrid V-cycle: every level smooths,
// restricts and prolongs through 1-D block arrays whose ±1 boundary
// exchanges are all compile-time schedules — many small messages whose
// startup-dominated wire time the split-phase executor hides, and
// whose per-level prolongation pair fuses through the sequence API.
func mgProgram(depth, p int, noOverlap, noFuse bool) backendProgram {
	return func(nd *machine.Node) func() {
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		eng.NoFuse = noFuse
		ctx := &core.Context{Node: nd, Eng: eng, Grid: topology.MustGrid(p)}
		s := mg.New(ctx, depth)
		s.SetRHS(func(x float64) float64 { return x * (1 - x) })
		return func() { s.VCycle() }
	}
}
