package bench

import (
	"fmt"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/machine/wallclock"
	"kali/internal/mg"
	"kali/internal/topology"
)

// Overlap measures the split-phase executors: the same cached
// schedules replayed with communication/computation overlap (ISend
// posts before the interior sweep, completion-order drain before the
// boundary) against the phase-synchronous oracle (-overlap=off), on
// both backends.  Workloads: the 2-D five-point jacobi (compile-time
// schedules, four-neighbor boundary traffic), an ADI cycle whose
// row/column smooths couple across the distributed dimension between
// [block,*]↔[*,block] transposes, and the multigrid V-cycle (a stack
// of small boundary exchanges on every level).
//
// The sim columns are deterministic cost-model predictions and stay
// under the CI gate; the "sim time pct" column is the overlap win
// expressed gate-compatibly (overlap time as a percentage of
// phase-sync time, < 100 when overlap pays; growth past baseline means
// the overlap stopped paying and fails -diff — CI re-checks this table
// at a tight tolerance, which the sim columns' determinism makes
// safe).  Wall columns are measured and excluded as
// in the backend table.  The traffic is identical in all cells of a
// workload — overlap moves messages off the critical path, it never
// adds or removes any — so msgs/rep is reported once, from the
// overlapped sim run, like allocs/replay (0 = replay stays
// allocation-free with the drain's preallocated pending slots).
func Overlap(opt Options) *Table {
	jacobiN, adiN, mgDepth := 96, 128, 9
	p := 8
	const reps = 200
	if opt.Quick {
		jacobiN, adiN, mgDepth = 48, 48, 6
		p = 4
	}
	t := &Table{
		ID:    "overlap",
		Title: "split-phase executors: communication/computation overlap vs phase-sync",
		Header: []string{"workload", "threads",
			"sim time/rep (sync)", "sim time/rep (overlap)", "sim time pct (overlap/sync)",
			"wall ms/rep (sync)", "wall ms/rep (overlap)",
			"msgs/rep", "allocs/replay"},
		Notes: []string{
			fmt.Sprintf("NCUBE/7 sim vs measured wall; jacobi2d %dx%d, adi %dx%d with transpose ping-pong, multigrid depth %d; %d replays",
				jacobiN, jacobiN, adiN, adiN, mgDepth, reps),
		},
	}
	for _, w := range []struct {
		name    string
		program func(noOverlap bool) backendProgram
	}{
		{"jacobi2d", func(noOv bool) backendProgram { return jacobi2DProgram(jacobiN, p, noOv) }},
		{"adi", func(noOv bool) backendProgram { return adiOverlapProgram(adiN, p, noOv) }},
		{"mg", func(noOv bool) backendProgram { return mgProgram(mgDepth, p, noOv) }},
	} {
		simSync := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(true))
		simOver := backendRun(sim.MustNew(p, machine.NCUBE7()), p, reps, w.program(false))
		wallSync := backendRun(wallclock.MustNew(p, machine.NCUBE7()), p, reps, w.program(true))
		wallOver := backendRun(wallclock.MustNew(p, machine.NCUBE7()), p, reps, w.program(false))
		pct := 100.0
		if simSync.secPerRep > 0 {
			pct = 100 * simOver.secPerRep / simSync.secPerRep
		}
		t.Rows = append(t.Rows, []string{
			w.name, fmt.Sprint(p),
			fmt.Sprintf("%.6f", simSync.secPerRep),
			fmt.Sprintf("%.6f", simOver.secPerRep),
			fmt.Sprintf("%.2f", pct),
			fmt.Sprintf("%.3f", wallSync.secPerRep*1e3),
			fmt.Sprintf("%.3f", wallOver.secPerRep*1e3),
			fmt.Sprintf("%.1f", simOver.msgsPerRep),
			fmt.Sprintf("%.1f", simOver.allocsPerRep),
		})
	}
	return t
}

// jacobi2DProgram replays the shared five-point stencil Loop2 on an
// n×n [block,block] array: compile-time schedules, one coalesced
// boundary message to each of up to four neighbors per rep.
func jacobi2DProgram(n, p int, noOverlap bool) backendProgram {
	pr, pc := grid2(p)
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(pr, pc)
		d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
		a, old := darray.New("o2a", d, nd), darray.New("o2b", d, nd)
		a.EachLocal(func(gl int) { a.SetLinear(gl, float64(gl%17)) })
		old.EachLocal(func(gl int) { old.SetLinear(gl, float64(gl%13)) })
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		loop := Relax2DLoop(a, old, n)
		return func() { eng.Run2(loop) }
	}
}

// grid2 factors p into the most-square pr×pc processor grid.
func grid2(p int) (int, int) {
	pr := 1
	for f := 2; p > 1; {
		if p%f == 0 {
			pr *= f
			p /= f
			f = 2
			if pr >= p {
				break
			}
			continue
		}
		f++
	}
	return pr, p
}

// adiOverlapProgram is one ADI cycle with cross-row coupling: a smooth
// reading the neighboring rows under [block,*] (inspector schedule,
// overlappable boundary traffic), a transpose to [*,block], the same
// smooth along the other axis, and the transpose back.  Redistribution
// itself stays phase-synchronous — the contrast isolates what overlap
// buys the foralls of an otherwise redistribution-bound cycle.
func adiOverlapProgram(n, p int, noOverlap bool) backendProgram {
	return func(nd *machine.Node) func() {
		g := topology.MustGrid(p)
		rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
		cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
		u := darray.New("oau", rows, nd)
		v := darray.New("oav", rows, nd)
		line := darray.New("oaline", dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g), nd)
		u.EachLocal(func(gl int) { u.SetLinear(gl, float64(gl%11)) })
		v.EachLocal(func(gl int) { v.SetLinear(gl, 0) })
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		// Unlike the pure ADI transpose (where each phase is fully
		// local), both smooths here read ±1 across the distributed
		// dimension, so every sweep has boundary traffic to overlap.
		rowSweep := &forall.Loop{
			Name: "oa.row", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}}, // rows i±1: decided at run time
			Body: func(i int, e *forall.Env) {
				for j := 1; j <= n; j++ {
					x := 0.25*e.ReadAt(u, i-1, j) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i+1, j)
					e.Flops(5)
					e.WriteAt(v, x, i, j)
				}
			},
		}
		colSweep := &forall.Loop{
			Name: "oa.col", Lo: 2, Hi: n - 1,
			On: line, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: u}}, // columns j±1: decided at run time
			Body: func(j int, e *forall.Env) {
				for i := 1; i <= n; i++ {
					x := 0.25*e.ReadAt(u, i, j-1) + 0.5*e.ReadAt(u, i, j) + 0.25*e.ReadAt(u, i, j+1)
					e.Flops(5)
					e.WriteAt(v, x, i, j)
				}
			},
		}
		return func() {
			eng.Run(rowSweep)
			darray.Redistribute(u, cols)
			darray.Redistribute(v, cols)
			eng.Run(colSweep)
			darray.Redistribute(u, rows)
			darray.Redistribute(v, rows)
		}
	}
}

// mgProgram replays one multigrid V-cycle: every level smooths,
// restricts and prolongs through 1-D block arrays whose ±1 boundary
// exchanges are all compile-time schedules — many small messages whose
// startup-dominated wire time the split-phase executor hides.
func mgProgram(depth, p int, noOverlap bool) backendProgram {
	return func(nd *machine.Node) func() {
		eng := forall.NewEngine(nd)
		eng.NoOverlap = noOverlap
		ctx := &core.Context{Node: nd, Eng: eng, Grid: topology.MustGrid(p)}
		s := mg.New(ctx, depth)
		s.SetRHS(func(x float64) float64 { return x * (1 - x) })
		return func() { s.VCycle() }
	}
}
