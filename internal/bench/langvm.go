package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/lang"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// LangVM measures what compiling .kali forall bodies to bytecode buys:
// the same three language workloads (the jacobi2d, adi and redblack2d
// programs from the interpreter's testdata, sized up) run through the
// tree-walking interpreter (kalirun -novm), through the bytecode VM
// (the default path), and as hand-written Go against the forall engine
// directly — the floor a native code generator could reach.
//
// Per-element cost is host-measured by sweep differencing: the same
// program runs at two sweep counts and the difference divides out
// everything that is not the steady-state loop body — parse, check,
// elaboration, schedule building, payload-pool growth, machine setup.
// ns/elem and the speedup are wall-clock measurements and therefore
// host-dependent (excluded from the CI gate, see costColumn); the
// allocs/elem column is gated — the VM and native rows must stay at
// 0.00, the property the bytecode compiler exists for, while the
// interpreter rows bound the walker's per-element scope-map and
// boxed-value garbage.
func LangVM(opt Options) *Table {
	n, s1, s2, reps := 64, 4, 24, 3
	if opt.Quick {
		n, s1, s2, reps = 32, 4, 20, 2
	}
	h := n/2 - 1
	t := &Table{
		ID:    "langvm",
		Title: "language-level forall bodies: tree walker vs bytecode VM vs hand-written Go",
		Header: []string{"workload", "path", "ns/elem (measured)", "allocs/elem",
			"speedup vs interp (measured)"},
		Notes: []string{
			fmt.Sprintf("sim backend, ideal cost params, P=%d; per-element = (run at %d sweeps - run at %d sweeps) / extra elements, best of %d pairs; n=%d all workloads",
				langVMProcs, s2, s1, reps, n),
		},
	}
	for _, w := range []struct {
		name          string
		src           func(sweeps int) string
		elemsPerSweep int
		native        func(sweeps int)
	}{
		{"jacobi2d", func(s int) string { return jacobi2DSrc(n, s) },
			n*n + (n-2)*(n-2), nativeJacobi2D(n)},
		{"adi", func(s int) string { return adiSrc(n, s) },
			2 * n * (n - 2), nativeADI(n)},
		{"redblack2d", func(s int) string { return redblack2DSrc(n, s) },
			2 * h * n, nativeRedBlack2D(n)},
	} {
		interp := langVMDiff(func(s int) { runKali(w.src(s), true) }, s1, s2, w.elemsPerSweep, reps)
		vm := langVMDiff(func(s int) { runKali(w.src(s), false) }, s1, s2, w.elemsPerSweep, reps)
		nat := langVMDiff(w.native, s1, s2, w.elemsPerSweep, reps)
		row := func(path string, m langVMMeas, speedup string) []string {
			return []string{w.name, path, fmt.Sprintf("%.1f", m.nsPerElem),
				fmt.Sprintf("%.2f", m.allocsPerElem), speedup}
		}
		t.Rows = append(t.Rows,
			row("interp", interp, "-"),
			row("vm", vm, f2(interp.nsPerElem/vm.nsPerElem)),
			row("native", nat, f2(interp.nsPerElem/nat.nsPerElem)),
		)
	}
	return t
}

// langVMProcs is the processor count every langvm workload uses: the
// rank-2 programs declare a fixed 2x2 grid and adi's agent picks 4 of
// its 1..8 when offered 4.
const langVMProcs = 4

// runKali compiles and runs one language workload end to end.
func runKali(src string, noVM bool) {
	prog, err := lang.Compile(src)
	if err != nil {
		panic(fmt.Sprintf("bench langvm: %v", err))
	}
	prog.NoVM = noVM
	if _, err := prog.Run(core.Config{P: langVMProcs, Params: machine.Ideal()}); err != nil {
		panic(fmt.Sprintf("bench langvm: %v", err))
	}
}

// langVMMeas is one differenced per-element measurement.
type langVMMeas struct {
	nsPerElem     float64
	allocsPerElem float64
}

// langVMDiff times run at two sweep counts and charges the difference
// to the extra elements.  Taking the minimum over reps independently
// for time and allocations filters scheduler and GC noise — both only
// ever add.
func langVMDiff(run func(sweeps int), s1, s2, elemsPerSweep, reps int) langVMMeas {
	denom := float64((s2 - s1) * elemsPerSweep)
	best := langVMMeas{nsPerElem: math.Inf(1), allocsPerElem: math.Inf(1)}
	for r := 0; r < reps; r++ {
		t1, a1 := hostMeasure(func() { run(s1) })
		t2, a2 := hostMeasure(func() { run(s2) })
		if ns := (t2 - t1) * 1e9 / denom; ns < best.nsPerElem {
			best.nsPerElem = math.Max(ns, 0)
		}
		da := 0.0
		if a2 > a1 {
			da = float64(a2 - a1)
		}
		if al := da / denom; al < best.allocsPerElem {
			best.allocsPerElem = al
		}
	}
	return best
}

// hostMeasure runs f once, returning its wall-clock seconds and the
// process-wide malloc count (monotonic, so the GC can stay on — its
// pause time is part of what the walker's garbage costs).
func hostMeasure(f func()) (sec float64, mallocs uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	f()
	sec = time.Since(t0).Seconds()
	runtime.ReadMemStats(&after)
	return sec, after.Mallocs - before.Mallocs
}

// jacobi2DSrc is testdata/jacobi2d.kali with parametric size and sweep
// count: a [block,block] five-point relaxation with a shifted on
// clause, plus the whole-array copy forall.
func jacobi2DSrc(n, sweeps int) string {
	return fmt.Sprintf(`
processors Procs : array[1..2, 1..2];
const nx = %d;
      ny = %d;
      sweeps = %d;
var u, old : array[1..ny, 1..nx] of real dist by [block, block] on Procs;
    r, c, i, s : integer;
begin
    for r in 1..ny do
        for c in 1..nx do
            if (r = 1) or (r = ny) or (c = 1) or (c = nx) then
                i := (r-1)*nx + c;
                u[r,c] := 1.0 + float(i mod 7);
            end;
        end;
    end;
    for s in 1..sweeps do
        forall r in 1..ny, c in 1..nx on old[r,c].loc do
            old[r,c] := u[r,c];
        end;
        forall r in 1..ny-2, c in 1..nx-2 on u[r+1,c+1].loc do
            u[r+1,c+1] := 0.25*old[r,c+1] + 0.25*old[r+1,c] + 0.25*old[r+1,c+2] + 0.25*old[r+2,c+1];
        end;
    end;
end.
`, n, n, sweeps)
}

// adiSrc is testdata/adi.kali with parametric size: row sweeps in
// [block,*], a redistribution to [*,block] for the column sweeps, and
// back — the body is an inner sequential for loop per line.
func adiSrc(n, sweeps int) string {
	return fmt.Sprintf(`
processors Procs : array[1..P] with P in 1..8;
const n = %d;
      sweeps = %d;
var u : array[1..n, 1..n] of real dist by [block, *] on Procs;
    row : array[1..n] of real dist by [block] on Procs;
    r, c, s : integer;
begin
    for r in 1..n do
        for c in 1..n do
            u[r,c] := float((r*13 + c*7) mod 11);
        end;
    end;
    for s in 1..sweeps do
        forall r in 1..n on row[r].loc do
            var c2 : integer;
            for c2 in 2..n-1 do
                u[r,c2] := 0.25*u[r,c2-1] + 0.5*u[r,c2] + 0.25*u[r,c2+1];
            end;
        end;
        redistribute u as [*, block];
        forall c in 1..n on row[c].loc do
            var r2 : integer;
            for r2 in 2..n-1 do
                u[r2,c] := 0.25*u[r2-1,c] + 0.5*u[r2,c] + 0.25*u[r2+1,c];
            end;
        end;
        redistribute u as [block, *];
    end;
end.
`, n, sweeps)
}

// redblack2DSrc is testdata/redblack2d.kali with parametric size:
// strided (non-unit coefficient) on clauses and reads.
func redblack2DSrc(n, sweeps int) string {
	return fmt.Sprintf(`
processors Procs : array[1..2, 1..2];
const n = %d;
      sweeps = %d;
      h = n div 2 - 1;
var u : array[1..n, 1..n] of real dist by [block, block] on Procs;
    k, c, s : integer;
begin
    for c in 1..n do
        u[1, c] := 1.0;
        u[n, c] := 5.0;
    end;
    for s in 1..sweeps do
        forall k in 1..h, c in 1..n on u[2*k+1, c].loc do
            u[2*k+1, c] := 0.5 * (u[2*k, c] + u[2*k+2, c]);
        end;
        forall k in 1..h, c in 1..n on u[2*k, c].loc do
            u[2*k, c] := 0.5 * (u[2*k-1, c] + u[2*k+1, c]);
        end;
    end;
end.
`, n, sweeps)
}

// nativeJacobi2D is the jacobi2d program hand-written against the
// forall engine: what a Go programmer (or a native code generator)
// would emit for the same loops, including the cost-model charges.
func nativeJacobi2D(n int) func(sweeps int) {
	return func(sweeps int) {
		m := sim.MustNew(langVMProcs, machine.Ideal())
		m.Run(func(nd *machine.Node) {
			g := topology.MustGrid(2, 2)
			d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
			u := darray.New("lvj-u", d, nd)
			old := darray.New("lvj-old", d, nd)
			u.EachLocal(func(gl int) { u.SetLinear(gl, 1+float64(gl%7)) })
			eng := forall.NewEngine(nd)
			cp := &forall.Loop2{
				Name: "lvj-copy", LoI: 1, HiI: n, LoJ: 1, HiJ: n, On: old,
				Body: func(i, j int, e *forall.Env) {
					e.WriteAt(old, e.ReadLocal2(u, i, j), i, j)
				},
			}
			relax := &forall.Loop2{
				Name: "lvj-relax", LoI: 1, HiI: n - 2, LoJ: 1, HiJ: n - 2,
				On: u, OnF2: *analysis.Shift2(1, 1),
				Reads: []forall.ReadSpec{
					{Array: old, Affine2: analysis.Shift2(0, 1)}, {Array: old, Affine2: analysis.Shift2(1, 0)},
					{Array: old, Affine2: analysis.Shift2(1, 2)}, {Array: old, Affine2: analysis.Shift2(2, 1)},
				},
				Body: func(i, j int, e *forall.Env) {
					x := 0.25*e.ReadAt(old, i, j+1) + 0.25*e.ReadAt(old, i+1, j) +
						0.25*e.ReadAt(old, i+1, j+2) + 0.25*e.ReadAt(old, i+2, j+1)
					e.Flops(7)
					e.WriteAt(u, x, i+1, j+1)
				},
			}
			for s := 0; s < sweeps; s++ {
				eng.Run2(cp)
				eng.Run2(relax)
			}
		})
	}
}

// nativeADI is the adi program hand-written: communication-free line
// sweeps in each layout, with the [block,*]<->[*,block] transpose as
// explicit Redistribute calls replayed from the plan store.
func nativeADI(n int) func(sweeps int) {
	return func(sweeps int) {
		m := sim.MustNew(langVMProcs, machine.Ideal())
		m.Run(func(nd *machine.Node) {
			g := topology.MustGrid(nd.P())
			rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
			cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
			u := darray.New("lva-u", rows, nd)
			line := darray.New("lva-line", dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g), nd)
			u.EachLocal(func(gl int) { u.SetLinear(gl, float64(gl%11)) })
			eng := forall.NewEngine(nd)
			rowSweep := &forall.Loop{
				Name: "lva-rows", Lo: 1, Hi: n, On: line, OnF: analysis.Identity,
				Body: func(r int, e *forall.Env) {
					for c := 2; c < n; c++ {
						e.WriteAt(u, 0.25*e.ReadLocal2(u, r, c-1)+0.5*e.ReadLocal2(u, r, c)+
							0.25*e.ReadLocal2(u, r, c+1), r, c)
					}
					e.Flops(5 * (n - 2))
				},
			}
			colSweep := &forall.Loop{
				Name: "lva-cols", Lo: 1, Hi: n, On: line, OnF: analysis.Identity,
				Body: func(c int, e *forall.Env) {
					for r := 2; r < n; r++ {
						e.WriteAt(u, 0.25*e.ReadLocal2(u, r-1, c)+0.5*e.ReadLocal2(u, r, c)+
							0.25*e.ReadLocal2(u, r+1, c), r, c)
					}
					e.Flops(5 * (n - 2))
				},
			}
			for s := 0; s < sweeps; s++ {
				eng.Run(rowSweep)
				darray.Redistribute(u, cols)
				eng.Run(colSweep)
				darray.Redistribute(u, rows)
			}
		})
	}
}

// nativeRedBlack2D is the redblack2d program hand-written: two strided
// Loop2 sweeps per iteration.
func nativeRedBlack2D(n int) func(sweeps int) {
	return func(sweeps int) {
		m := sim.MustNew(langVMProcs, machine.Ideal())
		m.Run(func(nd *machine.Node) {
			g := topology.MustGrid(2, 2)
			d := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g)
			u := darray.New("lvr-u", d, nd)
			u.EachLocal(func(gl int) {
				switch r := gl / n; r {
				case 0:
					u.SetLinear(gl, 1.0)
				case n - 1:
					u.SetLinear(gl, 5.0)
				}
			})
			eng := forall.NewEngine(nd)
			h := n/2 - 1
			stride := func(c int) analysis.Affine2 {
				return analysis.Affine2{I: analysis.Affine{A: 2, C: c}, J: analysis.Identity}
			}
			red := &forall.Loop2{
				Name: "lvr-red", LoI: 1, HiI: h, LoJ: 1, HiJ: n,
				On: u, OnF2: stride(1),
				Reads: []forall.ReadSpec{
					{Array: u, Affine2: &analysis.Affine2{I: analysis.Affine{A: 2}, J: analysis.Identity}},
					{Array: u, Affine2: &analysis.Affine2{I: analysis.Affine{A: 2, C: 2}, J: analysis.Identity}},
				},
				Body: func(k, c int, e *forall.Env) {
					x := 0.5 * (e.ReadAt(u, 2*k, c) + e.ReadAt(u, 2*k+2, c))
					e.Flops(3)
					e.WriteAt(u, x, 2*k+1, c)
				},
			}
			black := &forall.Loop2{
				Name: "lvr-black", LoI: 1, HiI: h, LoJ: 1, HiJ: n,
				On: u, OnF2: stride(0),
				Reads: []forall.ReadSpec{
					{Array: u, Affine2: &analysis.Affine2{I: analysis.Affine{A: 2, C: -1}, J: analysis.Identity}},
					{Array: u, Affine2: &analysis.Affine2{I: analysis.Affine{A: 2, C: 1}, J: analysis.Identity}},
				},
				Body: func(k, c int, e *forall.Env) {
					x := 0.5 * (e.ReadAt(u, 2*k-1, c) + e.ReadAt(u, 2*k+1, c))
					e.Flops(3)
					e.WriteAt(u, x, 2*k, c)
				},
			}
			for s := 0; s < sweeps; s++ {
				eng.Run2(red)
				eng.Run2(black)
			}
		})
	}
}
