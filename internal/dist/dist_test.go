package dist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kali/internal/index"
	"kali/internal/topology"
)

// patterns enumerates representative instances of every pattern kind
// for the property tests.
func patterns(n, p int, r *rand.Rand) []Pattern {
	owners := make([]int, n)
	for i := range owners {
		owners[i] = r.Intn(p)
	}
	return []Pattern{
		NewBlock(n, p),
		NewCyclic(n, p),
		NewBlockCyclic(n, p, 1),
		NewBlockCyclic(n, p, 1+r.Intn(5)),
		NewMap(owners, p),
	}
}

// checkPartition asserts the fundamental pattern contract: the Local
// sets are pairwise disjoint, their union is exactly [1..n], every
// element's set membership agrees with Owner, and LocalIndex packs each
// processor's elements densely in increasing global order.
func checkPartition(t *testing.T, pat Pattern) {
	t.Helper()
	n, p := pat.N(), pat.P()

	union := index.Empty
	for q := 0; q < p; q++ {
		loc := pat.Local(q)
		if !union.Intersect(loc).Empty() {
			t.Fatalf("%v: Local(%d) overlaps another processor's set", pat, q)
		}
		union = union.Union(loc)

		// Owner agreement and LocalIndex round-trip: the k-th smallest
		// element of Local(q) must have LocalIndex k, and elements
		// outside must not claim owner q.
		k := 0
		loc.Each(func(i int) {
			if got := pat.Owner(i); got != q {
				t.Fatalf("%v: %d ∈ Local(%d) but Owner(%d) = %d", pat, i, q, i, got)
			}
			if got := pat.LocalIndex(i); got != k {
				t.Fatalf("%v: LocalIndex(%d) = %d, want dense position %d", pat, i, got, k)
			}
			k++
		})
	}
	if !union.Equal(index.Range(1, n)) {
		t.Fatalf("%v: union of Local sets = %v, want [1..%d]", pat, union, n)
	}
	for i := 1; i <= n; i++ {
		q := pat.Owner(i)
		if q < 0 || q >= p {
			t.Fatalf("%v: Owner(%d) = %d out of [0..%d)", pat, i, q, p)
		}
		if !pat.Local(q).Contains(i) {
			t.Fatalf("%v: Owner(%d) = %d but %d ∉ Local(%d)", pat, i, q, i, q)
		}
	}
}

func TestPatternPartitionExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 7, 16, 24, 33} {
		for _, p := range []int{1, 2, 3, 4, 8, 40} {
			for _, pat := range patterns(n, p, r) {
				checkPartition(t, pat)
			}
		}
	}
}

func TestQuickPatternPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 1+r.Intn(60), 1+r.Intn(9)
		for _, pat := range patterns(n, p, r) {
			nn, pp := pat.N(), pat.P()
			if nn != n || pp != p {
				return false
			}
			seen := make([]int, n)
			for q := 0; q < p; q++ {
				pat.Local(q).Each(func(i int) { seen[i-1]++ })
			}
			for i := 1; i <= n; i++ {
				if seen[i-1] != 1 {
					return false
				}
				q := pat.Owner(i)
				if !pat.Local(q).Contains(i) {
					return false
				}
				li := pat.LocalIndex(i)
				if li < 0 || li >= pat.Local(q).Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockBoundaries pins the paper's block convention: contiguous
// blocks of ⌈n/p⌉, trailing processors possibly short or empty.
func TestBlockBoundaries(t *testing.T) {
	blk := NewBlock(10, 4) // B = 3: sizes 3, 3, 3, 1
	wantLen := []int{3, 3, 3, 1}
	for q := 0; q < 4; q++ {
		if got := blk.Local(q).Len(); got != wantLen[q] {
			t.Errorf("Local(%d).Len() = %d, want %d", q, got, wantLen[q])
		}
	}
	if !NewBlock(12, 3).Local(1).Equal(index.Range(5, 8)) {
		t.Error("block(12/3): Local(1) != [5..8]")
	}
	// n < p: trailing processors own nothing.
	small := NewBlock(2, 5)
	if small.Local(0).Len()+small.Local(1).Len() != 2 {
		t.Error("block(2/5): first two processors should own everything")
	}
	for q := 2; q < 5; q++ {
		if !small.Local(q).Empty() {
			t.Errorf("block(2/5): Local(%d) not empty", q)
		}
	}
}

func TestCyclicAndBlockCyclicShapes(t *testing.T) {
	cyc := NewCyclic(10, 3)
	if !cyc.Local(0).Equal(index.FromSlice([]int{1, 4, 7, 10})) {
		t.Errorf("cyclic Local(0) = %v", cyc.Local(0))
	}
	if cyc.Owner(5) != 1 || cyc.LocalIndex(5) != 1 {
		t.Error("cyclic owner/local index")
	}
	// block_cyclic(b) with b = ⌈n/p⌉ degenerates to block.
	bc := NewBlockCyclic(12, 3, 4)
	blk := NewBlock(12, 3)
	for q := 0; q < 3; q++ {
		if !bc.Local(q).Equal(blk.Local(q)) {
			t.Errorf("block_cyclic(4) Local(%d) = %v, block = %v", q, bc.Local(q), blk.Local(q))
		}
	}
	// block_cyclic(1) degenerates to cyclic.
	bc1 := NewBlockCyclic(10, 3, 1)
	c := NewCyclic(10, 3)
	for q := 0; q < 3; q++ {
		if !bc1.Local(q).Equal(c.Local(q)) {
			t.Errorf("block_cyclic(1) Local(%d) = %v, cyclic = %v", q, bc1.Local(q), c.Local(q))
		}
	}
	// Partial last block lands mid-round-robin.
	bc2 := NewBlockCyclic(10, 2, 3) // blocks: [1-3]→0 [4-6]→1 [7-9]→0 [10]→1
	if !bc2.Local(1).Equal(index.FromIntervals(index.Interval{Lo: 4, Hi: 6}, index.Interval{Lo: 10, Hi: 10})) {
		t.Errorf("block_cyclic(3) Local(1) = %v", bc2.Local(1))
	}
	if bc2.LocalIndex(10) != 3 {
		t.Errorf("block_cyclic(3) LocalIndex(10) = %d, want 3", bc2.LocalIndex(10))
	}
}

func TestMapPattern(t *testing.T) {
	owners := []int{2, 0, 0, 1, 2, 1}
	m := NewMap(owners, 3)
	checkPartition(t, m)
	if !m.Local(0).Equal(index.Range(2, 3)) {
		t.Errorf("map Local(0) = %v", m.Local(0))
	}
	if m.LocalIndex(5) != 1 { // proc 2 owns {1, 5}; 5 is its second element
		t.Errorf("map LocalIndex(5) = %d", m.LocalIndex(5))
	}
}

func TestDimSpecConstructors(t *testing.T) {
	var zero DimSpec
	if zero.Kind != Collapsed || zero.Block != 0 || zero.Owner != nil {
		t.Error("zero DimSpec must be CollapsedDim")
	}
	if BlockDim().Kind != Block || CyclicDim().Kind != Cyclic {
		t.Error("block/cyclic kinds")
	}
	if s := BlockCyclicDim(3); s.Kind != BlockCyclic || s.Block != 3 {
		t.Error("block_cyclic spec")
	}
	if s := MapDim([]int{0, 1}); s.Kind != Map || len(s.Owner) != 2 {
		t.Error("map spec")
	}
	if BlockDim().String() != "block" || CollapsedDim().String() != "*" ||
		BlockCyclicDim(2).String() != "block_cyclic(2)" {
		t.Error("DimSpec strings")
	}
}

func TestDistComposition(t *testing.T) {
	g := topology.MustGrid(2, 3)
	d := Must([]int{8, 9, 4}, []DimSpec{BlockDim(), CyclicDim(), CollapsedDim()}, g)
	if d.Rank() != 3 || d.Replicated() {
		t.Fatal("rank/replicated")
	}
	if d.Pattern(0) == nil || d.Pattern(1) == nil || d.Pattern(2) != nil {
		t.Fatal("patterns: collapsed dim must be nil")
	}
	if d.Pattern(0).P() != 2 || d.Pattern(1).P() != 3 {
		t.Fatal("grid extents not threaded to patterns in order")
	}
	// Owner composes per-dimension owners row-major, matching
	// Grid.Linear over the distributed coordinates.
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 9; j++ {
			want := g.Linear(d.Pattern(0).Owner(i), d.Pattern(1).Owner(j))
			if got := d.Owner(i, j, 1); got != want {
				t.Fatalf("Owner(%d,%d,1) = %d, want %d", i, j, got, want)
			}
		}
	}
	// Every node's LocalShape: distributed dims shrink, collapsed stay.
	total := 0
	for id := 0; id < g.Size(); id++ {
		ls := d.LocalShape(id)
		if ls[2] != 4 {
			t.Fatalf("node %d: collapsed extent = %d", id, ls[2])
		}
		total += d.LocalCount(id)
	}
	if total != 8*9*4 {
		t.Fatalf("local counts sum to %d, want %d", total, 8*9*4)
	}
	if got := d.String(); got != "dist by [block, cyclic, *]" {
		t.Fatalf("String() = %q", got)
	}
	if d.Spec(1).Kind != Cyclic {
		t.Fatal("Spec")
	}
}

func TestReplicatedDist(t *testing.T) {
	g := topology.MustGrid(3)
	d := NewReplicated([]int{4, 5}, g)
	if !d.Replicated() || d.Owner(2, 3) != -1 {
		t.Fatal("replicated owner must be -1")
	}
	if d.Pattern(0) != nil || d.Pattern(1) != nil {
		t.Fatal("replicated patterns must be nil")
	}
	for id := 0; id < 3; id++ {
		if d.LocalCount(id) != 20 {
			t.Fatal("replicated nodes store everything")
		}
	}
	if d.String() != "replicated" {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestNewErrors(t *testing.T) {
	g1 := topology.MustGrid(4)
	g2 := topology.MustGrid(2, 2)
	cases := []struct {
		name  string
		shape []int
		specs []DimSpec
		grid  *topology.Grid
		want  string
	}{
		{"rank mismatch", []int{8}, []DimSpec{BlockDim(), BlockDim()}, g1, "entries"},
		{"no distributed dim", []int{8}, []DimSpec{CollapsedDim()}, g1, "no dimension"},
		{"grid rank mismatch", []int{8, 8}, []DimSpec{BlockDim(), BlockDim()}, g1, "rank-1 grid"},
		{"grid rank mismatch 2", []int{8}, []DimSpec{BlockDim()}, g2, "rank-2 grid"},
		{"bad extent", []int{0}, []DimSpec{BlockDim()}, g1, "extent"},
		{"bad block size", []int{8}, []DimSpec{BlockCyclicDim(0)}, g1, "block size"},
		{"short owner table", []int{8}, []DimSpec{MapDim([]int{0, 1})}, g1, "owner table"},
		{"owner out of range", []int{2}, []DimSpec{MapDim([]int{0, 9})}, g1, "out of"},
		{"nil grid", []int{8}, []DimSpec{BlockDim()}, nil, "nil"},
		{"empty shape", nil, nil, g1, "at least one"},
	}
	for _, c := range cases {
		_, err := New(c.shape, c.specs, c.grid)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Must did not panic on invalid spec")
			}
		}()
		Must([]int{8}, []DimSpec{BlockDim(), BlockDim()}, g1)
	}()
}

func TestPatternBoundsPanics(t *testing.T) {
	for _, pat := range []Pattern{NewBlock(8, 2), NewCyclic(8, 2), NewBlockCyclic(8, 2, 3), NewMap([]int{0, 1, 0, 1}, 2)} {
		for _, bad := range []int{0, pat.N() + 1} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%v: Owner(%d) did not panic", pat, bad)
					}
				}()
				pat.Owner(bad)
			}()
		}
		for _, bad := range []int{-1, pat.P()} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%v: Local(%d) did not panic", pat, bad)
					}
				}()
				pat.Local(bad)
			}()
		}
	}
}

// TestMapOwnersCopied: MapDim/NewMap copy the caller's table, so later
// mutation cannot desynchronize a live distribution.
func TestMapOwnersCopied(t *testing.T) {
	owners := []int{0, 1, 0, 1}
	pat := NewMap(owners, 2)
	spec := MapDim(owners)
	d := Must([]int{4}, []DimSpec{spec}, topology.MustGrid(2))
	owners[0] = 1
	if pat.Owner(1) != 0 || d.Pattern(0).Owner(1) != 0 {
		t.Fatal("mutating the caller's table changed a live pattern")
	}
	// The dense table is not retained: the compressed pattern is the
	// source of truth.
	got := d.Spec(0)
	if got.Kind != Map {
		t.Fatalf("Spec kind = %v, want map", got.Kind)
	}
	if got.Owner != nil {
		t.Fatal("Spec() should not retain a dense owner table")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Collapsed: "*", Block: "block", Cyclic: "cyclic", BlockCyclic: "block_cyclic", Map: "map"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() != fmt.Sprintf("Kind(%d)", 99) {
		t.Error("unknown kind string")
	}
}

// TestMapCompression: the run-length representation stores one run per
// maximal same-owner interval and answers Owner/LocalIndex/Local
// identically to a dense scan.
func TestMapCompression(t *testing.T) {
	// 1M elements in 8 contiguous chunks: memory must scale with the
	// run count, not the extent.
	const n, p = 1 << 20, 4
	owners := make([]int, n)
	chunk := n / 8
	seq := []int{0, 1, 0, 2, 3, 2, 1, 3}
	for c, o := range seq {
		for i := c * chunk; i < (c+1)*chunk; i++ {
			owners[i] = o
		}
	}
	pat := NewMap(owners, p)
	m, ok := pat.(interface {
		Runs() int
		MemBytes() int
	})
	if !ok {
		t.Fatal("map pattern should expose Runs/MemBytes")
	}
	if m.Runs() != len(seq) {
		t.Fatalf("Runs = %d, want %d", m.Runs(), len(seq))
	}
	if dense := 8 * n; m.MemBytes() >= dense/1000 {
		t.Fatalf("compressed map uses %dB, dense table would use %dB", m.MemBytes(), dense)
	}
	// Spot-check closed-form answers against the defining table.
	counts := make([]int, p)
	localIdx := make([]int, n)
	for i, o := range owners {
		localIdx[i] = counts[o]
		counts[o]++
	}
	for _, i := range []int{1, 2, chunk, chunk + 1, 3*chunk - 1, n / 2, n - 1, n} {
		if got := pat.Owner(i); got != owners[i-1] {
			t.Fatalf("Owner(%d) = %d, want %d", i, got, owners[i-1])
		}
		if got := pat.LocalIndex(i); got != localIdx[i-1] {
			t.Fatalf("LocalIndex(%d) = %d, want %d", i, got, localIdx[i-1])
		}
	}
	total := 0
	for q := 0; q < p; q++ {
		set := pat.Local(q)
		total += set.Len()
		if set.Len() != counts[q] {
			t.Fatalf("Local(%d) has %d elements, want %d", q, set.Len(), counts[q])
		}
	}
	if total != n {
		t.Fatalf("Local sets cover %d of %d", total, n)
	}
}

// TestQuickMapEquivalence: random owner tables — the compressed
// pattern agrees element-for-element with the dense definition.
func TestQuickMapEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n, p := 1+r.Intn(64), 1+r.Intn(5)
		owners := make([]int, n)
		for i := range owners {
			owners[i] = r.Intn(p)
		}
		pat := NewMap(owners, p)
		counts := make([]int, p)
		for i := 1; i <= n; i++ {
			want := owners[i-1]
			if got := pat.Owner(i); got != want {
				t.Fatalf("n=%d p=%d: Owner(%d) = %d, want %d", n, p, i, got, want)
			}
			if got := pat.LocalIndex(i); got != counts[want] {
				t.Fatalf("n=%d p=%d: LocalIndex(%d) = %d, want %d", n, p, i, got, counts[want])
			}
			counts[want]++
			if !pat.Local(want).Contains(i) {
				t.Fatalf("Local(%d) misses %d", want, i)
			}
		}
	}
}
