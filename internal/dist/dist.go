// Package dist implements Kali's dist clauses: the mapping of global
// array indices onto processor-array coordinates.
//
// A Kali declaration such as
//
//	var a : array[1..n, 1..m] of real dist by [block, *] on Procs;
//
// attaches one DimSpec to each array dimension.  Distributed dimensions
// (block, cyclic, block_cyclic(b), or a user-defined owner map) consume
// one processor-grid dimension each, in order; collapsed dimensions
// ("*") are stored whole on every owner of the remaining coordinates.
// An array declared without a dist clause is replicated: every node
// holds a full copy.
//
// Every distribution kind is a closed-form index map, exposed as a
// Pattern whose Local sets are index.Set values.  This is what lets the
// compile-time communication analysis (paper §3.1) evaluate exec(p),
// in(p,q) and out(p,q) symbolically, and what the run-time inspector
// (paper §3.3) falls back on for ownership tests.  For every pattern
// the Local(p) sets partition [1..n], Owner(i) names the unique p with
// i ∈ Local(p), and LocalIndex packs each processor's elements densely
// in increasing global order.
package dist

import (
	"fmt"
	"strings"

	"kali/internal/index"
	"kali/internal/topology"
)

// Kind enumerates the dist-clause forms of one array dimension.  The
// zero value is Collapsed, so the zero DimSpec means "*" (dimension not
// distributed).
type Kind int

// Dist-clause kinds.
const (
	// Collapsed is "*": the dimension is not distributed.
	Collapsed Kind = iota
	// Block is "block": contiguous blocks of ⌈n/P⌉ elements.
	Block
	// Cyclic is "cyclic": element i lives on processor (i-1) mod P.
	Cyclic
	// BlockCyclic is "block_cyclic(b)": blocks of b elements dealt
	// round-robin.
	BlockCyclic
	// Map is a user-defined owner table (the paper's "mechanism for
	// user-defined distributions").
	Map
)

func (k Kind) String() string {
	switch k {
	case Collapsed:
		return "*"
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block_cyclic"
	case Map:
		return "map"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DimSpec is one entry of a dist clause.  Construct values with the
// *Dim constructors; the zero value is CollapsedDim().
type DimSpec struct {
	// Kind selects the distribution form.
	Kind Kind
	// Block is the block size of BlockCyclic specs.
	Block int
	// Owner is the owner table of Map specs: Owner[i-1] is the 0-based
	// processor coordinate owning global index i.
	Owner []int
}

// BlockDim is the dist-clause entry "block".
func BlockDim() DimSpec { return DimSpec{Kind: Block} }

// CyclicDim is the dist-clause entry "cyclic".
func CyclicDim() DimSpec { return DimSpec{Kind: Cyclic} }

// BlockCyclicDim is the dist-clause entry "block_cyclic(b)".
func BlockCyclicDim(b int) DimSpec { return DimSpec{Kind: BlockCyclic, Block: b} }

// CollapsedDim is the dist-clause entry "*".
func CollapsedDim() DimSpec { return DimSpec{} }

// MapDim is a user-defined distribution: owners[i-1] is the 0-based
// owner of global index i.  The table is copied, so the caller may
// reuse its slice.
func MapDim(owners []int) DimSpec {
	return DimSpec{Kind: Map, Owner: append([]int(nil), owners...)}
}

func (s DimSpec) String() string {
	switch s.Kind {
	case BlockCyclic:
		return fmt.Sprintf("block_cyclic(%d)", s.Block)
	default:
		return s.Kind.String()
	}
}

// Pattern is the closed-form index map of one distributed dimension:
// global indices [1..n] onto processor coordinates [0..P).
type Pattern interface {
	// N returns the extent of the distributed dimension.
	N() int
	// P returns the processor count of the grid dimension.
	P() int
	// Owner returns the 0-based processor coordinate owning global
	// index i ∈ [1..n].
	Owner(i int) int
	// Local returns the set of global indices owned by processor
	// coordinate p.  The sets of distinct p are disjoint and their
	// union is exactly [1..n].
	Local(p int) index.Set
	// LocalIndex returns the 0-based position of global index i within
	// its owner's local storage.  Positions are dense: Owner(i)'s
	// elements map onto [0..Local(Owner(i)).Len()) in increasing global
	// order.
	LocalIndex(i int) int
	// Fingerprint returns a structural hash of the index map: two
	// patterns mapping every index to the same owner (built the same
	// way) hash equal.  The forall engine keys its content-addressed
	// schedule store on these, so identically-distributed loops can
	// share one communication schedule (paper §3.2's reuse argument
	// applied across loops, not just across executions).
	Fingerprint() uint64
	// String names the pattern in Kali dist-clause syntax.
	String() string
}

// FNV-1a mixing for the structural fingerprints.  FingerprintSeed and
// MixFingerprint are exported so higher layers (the forall engine's
// content-addressed schedule keys) compose their own fingerprints with
// the same mixer instead of maintaining a diverging copy.
const (
	// FingerprintSeed is the FNV-1a offset basis fingerprints start from.
	FingerprintSeed uint64 = 14695981039346656037
	fnvPrime        uint64 = 1099511628211
)

// MixFingerprint folds the eight bytes of v into hash h (FNV-1a).
func MixFingerprint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Unexported aliases keep the pattern implementations terse.
const fnvOffset = FingerprintSeed

func fnvMix(h, v uint64) uint64 { return MixFingerprint(h, v) }

// NewBlock returns the block pattern over [1..n] on p processors:
// contiguous blocks of ⌈n/p⌉.
func NewBlock(n, p int) Pattern {
	checkNP("block", n, p)
	return blockPat{n: n, p: p, b: ceilDiv(n, p)}
}

// NewCyclic returns the cyclic pattern over [1..n] on p processors.
func NewCyclic(n, p int) Pattern {
	checkNP("cyclic", n, p)
	return cyclicPat{n: n, p: p}
}

// NewBlockCyclic returns the block_cyclic(b) pattern over [1..n] on p
// processors.
func NewBlockCyclic(n, p, b int) Pattern {
	checkNP("block_cyclic", n, p)
	if b < 1 {
		panic(fmt.Sprintf("dist: block_cyclic needs block size >= 1, got %d", b))
	}
	return blockCyclicPat{n: n, p: p, b: b}
}

// NewMap returns the user-defined pattern with the given owner table:
// owners[i-1] ∈ [0..p) is the owner of global index i.  The dense
// table is run-length compressed at construction: the pattern stores
// one run per maximal same-owner interval, so its memory is
// proportional to how fragmented the distribution is, not to the
// array extent.  Owner and LocalIndex answer by binary search over the
// runs; Local(p) sets are precomputed once from the same runs.  The
// input slice may be reused by the caller.
func NewMap(owners []int, p int) Pattern {
	checkNP("map", len(owners), p)
	n := len(owners)
	m := &mapPat{n: n, p: p, locals: make([]index.Set, p)}
	counts := make([]int, p)
	perOwner := make([][]index.Interval, p)
	for i := 0; i < n; {
		o := owners[i]
		if o < 0 || o >= p {
			panic(fmt.Sprintf("dist: map owner %d of index %d out of [0..%d)", o, i+1, p))
		}
		j := i + 1
		for j < n && owners[j] == o {
			j++
		}
		m.runs = append(m.runs, ownerRun{lo: i + 1, hi: j, owner: o, lstart: counts[o]})
		perOwner[o] = append(perOwner[o], index.Interval{Lo: i + 1, Hi: j})
		counts[o] += j - i
		i = j
	}
	for q := 0; q < p; q++ {
		m.locals[q] = index.FromIntervals(perOwner[q]...)
	}
	return m
}

// checkProc panics when a processor coordinate is outside [0..P).
func checkProc(p, np int, pat Pattern) {
	if p < 0 || p >= np {
		panic(fmt.Sprintf("dist: processor %d out of [0..%d) of %s", p, np, pat))
	}
}

func checkNP(kind string, n, p int) {
	if n < 1 {
		panic(fmt.Sprintf("dist: %s needs extent >= 1, got %d", kind, n))
	}
	if p < 1 {
		panic(fmt.Sprintf("dist: %s needs processors >= 1, got %d", kind, p))
	}
}

// blockPat: processor p owns the contiguous range [p*b+1 .. min((p+1)*b, n)]
// with b = ⌈n/p⌉ (trailing processors may own fewer or no elements).
type blockPat struct{ n, p, b int }

func (d blockPat) N() int               { return d.n }
func (d blockPat) P() int               { return d.p }
func (d blockPat) Owner(i int) int      { d.check(i); return (i - 1) / d.b }
func (d blockPat) LocalIndex(i int) int { d.check(i); return (i - 1) % d.b }
func (d blockPat) String() string       { return fmt.Sprintf("block(%d/%d)", d.n, d.p) }

func (d blockPat) Fingerprint() uint64 {
	return fnvMix(fnvMix(fnvMix(fnvOffset, uint64(Block)), uint64(d.n)), uint64(d.p))
}

func (d blockPat) Local(p int) index.Set {
	checkProc(p, d.p, d)
	lo := p*d.b + 1
	hi := (p + 1) * d.b
	if hi > d.n {
		hi = d.n
	}
	return index.Range(lo, hi)
}

func (d blockPat) check(i int) {
	if i < 1 || i > d.n {
		panic(fmt.Sprintf("dist: index %d out of [1..%d] of %s", i, d.n, d))
	}
}

// cyclicPat: processor p owns {p+1, p+1+P, p+1+2P, ...}.
type cyclicPat struct{ n, p int }

func (d cyclicPat) N() int               { return d.n }
func (d cyclicPat) P() int               { return d.p }
func (d cyclicPat) Owner(i int) int      { d.check(i); return (i - 1) % d.p }
func (d cyclicPat) LocalIndex(i int) int { d.check(i); return (i - 1) / d.p }
func (d cyclicPat) String() string       { return fmt.Sprintf("cyclic(%d/%d)", d.n, d.p) }

func (d cyclicPat) Fingerprint() uint64 {
	return fnvMix(fnvMix(fnvMix(fnvOffset, uint64(Cyclic)), uint64(d.n)), uint64(d.p))
}

func (d cyclicPat) Local(p int) index.Set {
	checkProc(p, d.p, d)
	return index.Strided(p+1, d.n, d.p)
}

func (d cyclicPat) check(i int) {
	if i < 1 || i > d.n {
		panic(fmt.Sprintf("dist: index %d out of [1..%d] of %s", i, d.n, d))
	}
}

// blockCyclicPat: global block j = (i-1)/b goes to processor j mod P;
// within a processor, owned blocks pack densely in global order (only
// the globally last block can be partial, so packing leaves no holes).
type blockCyclicPat struct{ n, p, b int }

func (d blockCyclicPat) N() int          { return d.n }
func (d blockCyclicPat) P() int          { return d.p }
func (d blockCyclicPat) Owner(i int) int { d.check(i); return ((i - 1) / d.b) % d.p }
func (d blockCyclicPat) String() string  { return fmt.Sprintf("block_cyclic(%d)(%d/%d)", d.b, d.n, d.p) }

func (d blockCyclicPat) LocalIndex(i int) int {
	d.check(i)
	return ((i-1)/(d.b*d.p))*d.b + (i-1)%d.b
}

func (d blockCyclicPat) Fingerprint() uint64 {
	h := fnvMix(fnvMix(fnvOffset, uint64(BlockCyclic)), uint64(d.n))
	return fnvMix(fnvMix(h, uint64(d.p)), uint64(d.b))
}

func (d blockCyclicPat) Local(p int) index.Set {
	checkProc(p, d.p, d)
	var ivs []index.Interval
	for lo := p*d.b + 1; lo <= d.n; lo += d.b * d.p {
		hi := lo + d.b - 1
		if hi > d.n {
			hi = d.n
		}
		ivs = append(ivs, index.Interval{Lo: lo, Hi: hi})
	}
	return index.FromIntervals(ivs...)
}

func (d blockCyclicPat) check(i int) {
	if i < 1 || i > d.n {
		panic(fmt.Sprintf("dist: index %d out of [1..%d] of %s", i, d.n, d))
	}
}

// ownerRun is one maximal same-owner interval [lo..hi] of a
// user-defined distribution.  lstart is the local index of element lo
// within the owner's dense storage, so LocalIndex is lstart + (i-lo).
type ownerRun struct {
	lo, hi int
	owner  int
	lstart int
}

// mapPat: run-length/interval-compressed owner table.  Both consumers
// of a distribution — the compile-time analysis (through Local) and
// the run-time inspector (through Owner/LocalIndex) — see it through
// the same Pattern interface; neither ever touches a dense table.
type mapPat struct {
	n, p   int
	runs   []ownerRun  // sorted by lo, contiguous cover of [1..n]
	locals []index.Set // per processor, built from the runs
}

func (d *mapPat) N() int { return d.n }
func (d *mapPat) P() int { return d.p }

// run locates the run containing global index i by binary search.
func (d *mapPat) run(i int) ownerRun {
	d.check(i)
	lo, hi := 0, len(d.runs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.runs[mid].hi < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d.runs[lo]
}

func (d *mapPat) Owner(i int) int { return d.run(i).owner }

func (d *mapPat) LocalIndex(i int) int {
	r := d.run(i)
	return r.lstart + (i - r.lo)
}

func (d *mapPat) String() string { return fmt.Sprintf("map(%d/%d)", d.n, d.p) }

func (d *mapPat) Local(p int) index.Set {
	checkProc(p, d.p, d)
	return d.locals[p]
}

// Fingerprint hashes the compressed runs, so two user maps with the
// same owner table hash equal regardless of how they were declared.
func (d *mapPat) Fingerprint() uint64 {
	h := fnvMix(fnvMix(fnvMix(fnvOffset, uint64(Map)), uint64(d.n)), uint64(d.p))
	for _, r := range d.runs {
		h = fnvMix(fnvMix(h, uint64(r.hi)), uint64(r.owner))
	}
	return h
}

// Runs returns the number of compressed owner runs — the quantity the
// pattern's memory is proportional to.
func (d *mapPat) Runs() int { return len(d.runs) }

// MemBytes estimates the pattern's storage: four words per run plus
// the interval lists of the per-processor Local sets (which hold at
// most one interval per run in total).
func (d *mapPat) MemBytes() int {
	n := 32 * len(d.runs)
	for _, s := range d.locals {
		n += 16 * s.NumIntervals()
	}
	return n
}

func (d *mapPat) check(i int) {
	if i < 1 || i > d.n {
		panic(fmt.Sprintf("dist: index %d out of [1..%d] of %s", i, d.n, d))
	}
}

// Dist is a complete distribution of a multi-dimensional array: one
// DimSpec per array dimension over a processor grid.  Distributed
// (non-collapsed) dimensions consume grid dimensions in order, so the
// grid rank must equal the number of distributed dimensions.  Dist
// values are immutable and safe for concurrent use by all simulated
// nodes.
type Dist struct {
	shape []int
	specs []DimSpec
	grid  *topology.Grid
	pats  []Pattern // per array dim; nil when collapsed
	repl  bool
	fp    uint64 // structural fingerprint, precomputed at construction
}

// New builds the distribution of an array with the given global shape
// (1-based extents) under the given dist clause on grid g.
func New(shape []int, specs []DimSpec, g *topology.Grid) (*Dist, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("dist: array needs at least one dimension")
	}
	if len(specs) != len(shape) {
		return nil, fmt.Errorf("dist: %d dist-clause entries for rank-%d array", len(specs), len(shape))
	}
	if g == nil {
		return nil, fmt.Errorf("dist: nil processor grid")
	}
	for dim, e := range shape {
		if e < 1 {
			return nil, fmt.Errorf("dist: dimension %d has extent %d", dim, e)
		}
	}
	distributed := 0
	for _, s := range specs {
		if s.Kind != Collapsed {
			distributed++
		}
	}
	if distributed == 0 {
		return nil, fmt.Errorf("dist: dist clause distributes no dimension (omit the clause for a replicated array)")
	}
	if distributed != g.Rank() {
		return nil, fmt.Errorf("dist: %d distributed dimensions over a rank-%d grid", distributed, g.Rank())
	}
	d := &Dist{
		shape: append([]int(nil), shape...),
		specs: append([]DimSpec(nil), specs...),
		grid:  g,
		pats:  make([]Pattern, len(shape)),
	}
	gdim := 0
	for dim, s := range specs {
		if s.Kind == Collapsed {
			continue
		}
		n, p := shape[dim], g.Extent(gdim)
		gdim++
		switch s.Kind {
		case Block:
			d.pats[dim] = NewBlock(n, p)
		case Cyclic:
			d.pats[dim] = NewCyclic(n, p)
		case BlockCyclic:
			if s.Block < 1 {
				return nil, fmt.Errorf("dist: dimension %d: block_cyclic needs block size >= 1, got %d", dim, s.Block)
			}
			d.pats[dim] = NewBlockCyclic(n, p, s.Block)
		case Map:
			if len(s.Owner) != n {
				return nil, fmt.Errorf("dist: dimension %d: owner table has %d entries for extent %d", dim, len(s.Owner), n)
			}
			for i, o := range s.Owner {
				if o < 0 || o >= p {
					return nil, fmt.Errorf("dist: dimension %d: owner %d of index %d out of [0..%d)", dim, o, i+1, p)
				}
			}
			d.pats[dim] = NewMap(s.Owner, p)
			// The compressed pattern is the source of truth; do not
			// retain a dense owner table per declaration.
			d.specs[dim].Owner = nil
		default:
			return nil, fmt.Errorf("dist: dimension %d has unknown kind %v", dim, s.Kind)
		}
	}
	d.fp = d.computeFingerprint()
	return d, nil
}

// Must is New that panics on error, for tests and program literals.
func Must(shape []int, specs []DimSpec, g *topology.Grid) *Dist {
	d, err := New(shape, specs, g)
	if err != nil {
		panic(err)
	}
	return d
}

// NewReplicated builds the distribution of an array declared without a
// dist clause: every node stores a full copy.
func NewReplicated(shape []int, g *topology.Grid) *Dist {
	if len(shape) == 0 {
		panic("dist: replicated array needs at least one dimension")
	}
	for dim, e := range shape {
		if e < 1 {
			panic(fmt.Sprintf("dist: dimension %d has extent %d", dim, e))
		}
	}
	d := &Dist{
		shape: append([]int(nil), shape...),
		specs: make([]DimSpec, len(shape)),
		grid:  g,
		pats:  make([]Pattern, len(shape)),
		repl:  true,
	}
	d.fp = d.computeFingerprint()
	return d
}

// Rank returns the number of array dimensions.
func (d *Dist) Rank() int { return len(d.shape) }

// Shape returns a copy of the global extents.
func (d *Dist) Shape() []int { return append([]int(nil), d.shape...) }

// Extent returns the global extent of array dimension dim without
// allocating (hot-path shape checks use it instead of Shape).
func (d *Dist) Extent(dim int) int { return d.shape[dim] }

// Spec returns the dist-clause entry of array dimension dim.  For Map
// dimensions the dense owner table is not retained (the run-length
// compressed Pattern is the source of truth), so Owner is nil; query
// ownership through Pattern(dim).
func (d *Dist) Spec(dim int) DimSpec {
	return d.specs[dim]
}

// Grid returns the processor grid the array is distributed over.
func (d *Dist) Grid() *topology.Grid { return d.grid }

// Replicated reports whether every node stores the whole array.
func (d *Dist) Replicated() bool { return d.repl }

// Pattern returns the index map of array dimension dim, or nil when
// the dimension is collapsed or the array replicated.
func (d *Dist) Pattern(dim int) Pattern { return d.pats[dim] }

// Fingerprint returns a structural hash of the whole distribution:
// shape, replication, and each dimension's pattern (or its collapsed
// marker).  Two Dist values built from equivalent declarations — even
// as distinct objects — hash equal, which is what lets the forall
// engine's content-addressed schedule store share one schedule across
// identically-shaped loops over different arrays, and what keys the
// darray redistribution-schedule store.  The hash is computed once at
// construction (Dist values are immutable), so per-replay staleness
// checks against it are allocation-free and O(1).
func (d *Dist) Fingerprint() uint64 { return d.fp }

func (d *Dist) computeFingerprint() uint64 {
	h := fnvOffset
	if d.repl {
		h = fnvMix(h, 1)
	}
	for dim, e := range d.shape {
		h = fnvMix(h, uint64(e))
		if p := d.pats[dim]; p != nil {
			h = fnvMix(h, p.Fingerprint())
		} else {
			h = fnvMix(h, uint64(Collapsed))
		}
	}
	return h
}

// Owner returns the linear grid id of the processor owning the element
// at the given global coordinates, or -1 for replicated arrays.
func (d *Dist) Owner(coord ...int) int {
	if d.repl {
		return -1
	}
	if len(coord) != len(d.shape) {
		panic(fmt.Sprintf("dist: coordinate rank %d != array rank %d", len(coord), len(d.shape)))
	}
	id := 0
	for dim, c := range coord {
		if c < 1 || c > d.shape[dim] {
			panic(fmt.Sprintf("dist: coordinate %d out of [1..%d] in dim %d", c, d.shape[dim], dim))
		}
		if p := d.pats[dim]; p != nil {
			id = id*p.P() + p.Owner(c)
		}
	}
	return id
}

// LocalShape returns the per-dimension local extents of grid processor
// id: the full extent for collapsed dimensions, the owned count for
// distributed ones.  Replicated arrays store everything everywhere.
func (d *Dist) LocalShape(id int) []int {
	out := append([]int(nil), d.shape...)
	if d.repl {
		return out
	}
	gcoord := d.grid.Coord(id)
	gdim := 0
	for dim, p := range d.pats {
		if p == nil {
			continue
		}
		out[dim] = p.Local(gcoord[gdim]).Len()
		gdim++
	}
	return out
}

// LocalCount returns the number of elements grid processor id stores.
func (d *Dist) LocalCount(id int) int {
	c := 1
	for _, e := range d.LocalShape(id) {
		c *= e
	}
	return c
}

// String renders the distribution in Kali declaration syntax:
// "dist by [block, *]", or "replicated" for arrays without a clause.
func (d *Dist) String() string {
	if d.repl {
		return "replicated"
	}
	parts := make([]string, len(d.specs))
	for i, s := range d.specs {
		parts[i] = s.String()
	}
	return "dist by [" + strings.Join(parts, ", ") + "]"
}

// ceilDiv returns ⌈a/b⌉ for positive a, b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
