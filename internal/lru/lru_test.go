package lru

import "testing"

func TestPutGet(t *testing.T) {
	c := New[string, int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if c.Len() != 2 || c.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d", c.Len(), c.Cap())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Get(1) // 2 is now LRU
	c.Put(3, 30)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 was recently used, must survive")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(1, 11) // update, 2 becomes LRU
	c.Put(3, 30)
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
}

func TestCapacityOne(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Put(i, i)
	}
	if c.Len() != 1 || c.Evictions() != 9 {
		t.Fatalf("Len=%d Evictions=%d", c.Len(), c.Evictions())
	}
	if _, ok := c.Get(9); !ok {
		t.Fatal("newest entry must survive")
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Reset()
	if c.Len() != 0 || c.Evictions() != 0 {
		t.Fatalf("after Reset: Len=%d Evictions=%d", c.Len(), c.Evictions())
	}
	c.Put(4, 4)
	if v, ok := c.Get(4); !ok || v != 4 {
		t.Fatal("cache unusable after Reset")
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int, int](0)
}

func TestChurnKeepsListConsistent(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 1000; i++ {
		c.Put(i%13, i)
		c.Get((i * 7) % 13)
		if c.Len() > 8 {
			t.Fatalf("over capacity at i=%d: %d", i, c.Len())
		}
	}
}
