// Package lru is a size-bounded least-recently-used map for the
// machine-lifetime schedule caches.
//
// The paper's schedules are worth keeping because they amortize
// (build once, replay every sweep — §3), but a long-lived machine
// executing many distinct loops or redistributions would otherwise
// accumulate schedules without bound.  A small LRU keeps the working
// set (the loops of the current solver phase) while letting dead
// schedules go; eviction counts are surfaced in reports so a
// thrashing cache is visible rather than silent.
//
// The cache is not synchronized: single-goroutine users (the per-node
// forall engine) use it directly, shared users (the darray
// redistribution-plan store) hold their own mutex.
package lru

// Cache maps K to V, keeping at most Cap entries by recency of use.
type Cache[K comparable, V any] struct {
	cap       int
	entries   map[K]*entry[K, V]
	head      *entry[K, V] // most recently used
	tail      *entry[K, V] // least recently used
	evictions int
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New builds a cache bounded to cap entries; cap < 1 panics (an
// unbounded cache is a plain map, and a zero-capacity one would
// silently never hold anything).
func New[K comparable, V any](cap int) *Cache[K, V] {
	if cap < 1 {
		panic("lru: capacity must be at least 1")
	}
	return &Cache[K, V]{cap: cap, entries: make(map[K]*entry[K, V], cap)}
}

// Get returns the value under k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	if e, ok := c.entries[k]; ok {
		c.moveToFront(e)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates k, marking it most recently used and
// evicting the least recently used entry if the cache is over
// capacity.
func (c *Cache[K, V]) Put(k K, v V) {
	if e, ok := c.entries[k]; ok {
		e.val = v
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: k, val: v}
	c.entries[k] = e
	c.pushFront(e)
	if len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
}

// Len returns the number of entries currently held.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Cap returns the capacity bound.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Evictions returns how many entries have been evicted for capacity
// since creation (or the last Reset).
func (c *Cache[K, V]) Evictions() int { return c.evictions }

// Reset drops all entries and zeroes the eviction counter.
func (c *Cache[K, V]) Reset() {
	c.entries = make(map[K]*entry[K, V], c.cap)
	c.head, c.tail = nil, nil
	c.evictions = 0
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
