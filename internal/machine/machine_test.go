package machine

import "testing"

// Behavioral tests of the machine live with the backends
// (internal/machine/sim, internal/machine/wallclock); this file covers
// what is backend-independent: the cost-model presets and the shared
// reduction kernel.

func TestByName(t *testing.T) {
	for _, name := range []string{"ncube", "ipsc", "ideal"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("cray"); ok {
		t.Error("unknown machine should fail")
	}
}

func TestParamsContrast(t *testing.T) {
	// The calibration invariants the reproduction relies on:
	// NCUBE is slower in every primitive and has a much more expensive
	// combine stage relative to its message costs.
	nc, ip := NCUBE7(), IPSC2()
	if !(nc.Flop > ip.Flop && nc.RefCheck > ip.RefCheck && nc.Call > ip.Call) {
		t.Fatal("NCUBE must be slower than iPSC/2")
	}
	if !(nc.CombineStage > 10*ip.CombineStage) {
		t.Fatal("NCUBE combine stage must dominate iPSC/2's")
	}
}

func TestReduceByID(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	cases := map[string]float64{"sum": 14, "max": 5, "min": 1, "and": 1}
	for op, want := range cases {
		if got := ReduceByID(vals, op); got != want {
			t.Errorf("ReduceByID(%s) = %g, want %g", op, got, want)
		}
	}
	if got := ReduceByID([]float64{1, 0, 1}, "and"); got != 0 {
		t.Errorf("and with a zero = %g, want 0", got)
	}
}

func TestUnknownReduceOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReduceByID([]float64{1, 2}, "xor")
}
