package machine

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(0, Ideal()); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, err := New(-3, Ideal()); err == nil {
		t.Fatal("expected error for negative nodes")
	}
}

func TestDim(t *testing.T) {
	for _, c := range []struct{ p, dim int }{{1, 0}, {2, 1}, {4, 2}, {8, 3}, {128, 7}, {5, 3}} {
		m := MustNew(c.p, Ideal())
		if got := m.Dim(); got != c.dim {
			t.Errorf("Dim(P=%d) = %d, want %d", c.p, got, c.dim)
		}
	}
}

func TestRunSPMD(t *testing.T) {
	m := MustNew(8, Ideal())
	var total int64
	m.Run(func(n *Node) {
		atomic.AddInt64(&total, int64(n.ID()))
	})
	if total != 28 {
		t.Fatalf("all nodes should run exactly once; sum = %d", total)
	}
}

func TestSendRecvDelivers(t *testing.T) {
	m := MustNew(2, Ideal())
	m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, TagUser, []float64{1, 2, 3}, 24)
		} else {
			msg := n.Recv(0, TagUser)
			data := msg.Payload.([]float64)
			if len(data) != 3 || data[2] != 3 {
				t.Errorf("payload corrupted: %v", data)
			}
			if msg.Bytes != 24 || msg.From != 0 {
				t.Errorf("metadata wrong: %+v", msg)
			}
		}
	})
}

func TestRecvMatchesTagAndSender(t *testing.T) {
	// Node 2 receives from 0 and 1 in a fixed order even if messages
	// arrive in the opposite order; tags must also be matched.
	m := MustNew(3, Ideal())
	m.Run(func(n *Node) {
		switch n.ID() {
		case 0:
			n.Send(2, TagUser, "a", 1)
			n.Send(2, TagUser+1, "b", 1)
		case 1:
			n.Send(2, TagUser, "c", 1)
		case 2:
			if got := n.Recv(1, TagUser).Payload.(string); got != "c" {
				t.Errorf("from 1: got %q", got)
			}
			if got := n.Recv(0, TagUser+1).Payload.(string); got != "b" {
				t.Errorf("tag+1: got %q", got)
			}
			if got := n.Recv(0, TagUser).Payload.(string); got != "a" {
				t.Errorf("from 0: got %q", got)
			}
		}
	})
}

func TestMessageCausality(t *testing.T) {
	// Receiver clock after recv must be >= sender's send-complete time
	// plus hop latency.
	p := NCUBE7()
	m := MustNew(2, p)
	var sendDone, recvClock float64
	m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Advance(1.0) // sender is ahead
			n.Send(1, TagUser, nil, 1000)
			sendDone = n.Clock()
		} else {
			n.Recv(0, TagUser)
			recvClock = n.Clock()
		}
	})
	wantMin := sendDone + p.PerHop
	if recvClock < wantMin {
		t.Fatalf("receiver clock %.6f < causal bound %.6f", recvClock, wantMin)
	}
	// And the receiver pays receive overhead + per-byte copy.
	want := sendDone + p.PerHop + p.RecvOverhead + 1000*p.MsgPerByte
	if math.Abs(recvClock-want) > 1e-12 {
		t.Fatalf("receiver clock %.9f, want %.9f", recvClock, want)
	}
}

func TestSendChargesSender(t *testing.T) {
	p := IPSC2()
	m := MustNew(2, p)
	m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, TagUser, nil, 512)
			want := p.MsgStartup + 512*p.MsgPerByte
			if math.Abs(n.Clock()-want) > 1e-12 {
				t.Errorf("sender clock = %g, want %g", n.Clock(), want)
			}
			st := n.Stats()
			if st.MsgsSent != 1 || st.BytesSent != 512 {
				t.Errorf("stats = %+v", st)
			}
		} else {
			n.Recv(0, TagUser)
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	m := MustNew(2, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Send(0, TagUser, nil, 0)
		}
	})
}

func TestChargeCosts(t *testing.T) {
	p := NCUBE7()
	m := MustNew(1, p)
	m.Run(func(n *Node) {
		n.Charge(Cost{Flops: 2, MemRefs: 3, LoopIters: 1, Calls: 1, RefChecks: 5, LocTests: 2, ListInserts: 1})
		want := 2*p.Flop + 3*p.MemRef + p.LoopIter + p.Call + 5*p.RefCheck + 2*p.LocTest + p.ListInsert
		if math.Abs(n.Clock()-want) > 1e-12 {
			t.Errorf("clock = %g, want %g", n.Clock(), want)
		}
	})
}

func TestChargeSearchLog(t *testing.T) {
	p := NCUBE7()
	m := MustNew(1, p)
	m.Run(func(n *Node) {
		c0 := n.Clock()
		n.ChargeSearch(1) // 1 range: 1 probe
		oneRange := n.Clock() - c0
		c1 := n.Clock()
		n.ChargeSearch(8) // 8 ranges: 4 probes (2^3 <= 8)
		eight := n.Clock() - c1
		wantOne := p.SearchBase + p.SearchProbe
		wantEight := p.SearchBase + 4*p.SearchProbe
		if math.Abs(oneRange-wantOne) > 1e-12 || math.Abs(eight-wantEight) > 1e-12 {
			t.Errorf("search costs: got %g,%g want %g,%g", oneRange, eight, wantOne, wantEight)
		}
	})
}

func TestAdvanceNegativePanics(t *testing.T) {
	m := MustNew(1, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *Node) { n.Advance(-1) })
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	p := NCUBE7()
	m := MustNew(4, p)
	clocks := make([]float64, 4)
	m.Run(func(n *Node) {
		n.Advance(float64(n.ID())) // clocks 0,1,2,3
		n.Barrier()
		clocks[n.ID()] = n.Clock()
	})
	want := 3 + m.collectiveCost(8)
	for id, c := range clocks {
		if math.Abs(c-want) > 1e-12 {
			t.Fatalf("node %d clock = %g, want %g", id, c, want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := MustNew(3, Ideal())
	m.Run(func(n *Node) {
		for i := 0; i < 50; i++ {
			n.Barrier()
		}
	})
	// Completing without deadlock is the assertion.
}

func TestAllReduceOps(t *testing.T) {
	m := MustNew(4, Ideal())
	sums := make([]float64, 4)
	maxs := make([]float64, 4)
	mins := make([]float64, 4)
	ands := make([]float64, 4)
	m.Run(func(n *Node) {
		v := float64(n.ID() + 1) // 1,2,3,4
		sums[n.ID()] = n.AllReduce(v, "sum")
		maxs[n.ID()] = n.AllReduce(v, "max")
		mins[n.ID()] = n.AllReduce(v, "min")
		b := 1.0
		if n.ID() == 2 {
			b = 0
		}
		ands[n.ID()] = n.AllReduce(b, "and")
	})
	for id := 0; id < 4; id++ {
		if sums[id] != 10 || maxs[id] != 4 || mins[id] != 1 || ands[id] != 0 {
			t.Fatalf("node %d: sum=%g max=%g min=%g and=%g", id, sums[id], maxs[id], mins[id], ands[id])
		}
	}
}

func TestAllReduceAndTrue(t *testing.T) {
	m := MustNew(3, Ideal())
	m.Run(func(n *Node) {
		if got := n.AllReduce(1, "and"); got != 1 {
			t.Errorf("and of all-true = %g", got)
		}
	})
}

func TestPhaseTimers(t *testing.T) {
	m := MustNew(2, Ideal())
	m.Run(func(n *Node) {
		n.StartPhase("outer")
		n.Advance(1)
		n.StartPhase("inner")
		n.Advance(2)
		n.StopPhase("inner")
		n.Advance(3)
		n.StopPhase("outer")
		if got := n.PhaseTime("inner"); got != 2 {
			t.Errorf("inner = %g", got)
		}
		if got := n.PhaseTime("outer"); got != 6 {
			t.Errorf("outer = %g", got)
		}
	})
	if m.MaxPhase("outer") != 6 {
		t.Fatalf("MaxPhase = %g", m.MaxPhase("outer"))
	}
}

func TestPhaseMismatchPanics(t *testing.T) {
	m := MustNew(1, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *Node) {
		n.StartPhase("a")
		n.StopPhase("b")
	})
}

func TestMaxClockAndReset(t *testing.T) {
	m := MustNew(3, Ideal())
	m.Run(func(n *Node) { n.Advance(float64(n.ID()) * 5) })
	if m.MaxClock() != 10 {
		t.Fatalf("MaxClock = %g", m.MaxClock())
	}
	m.Reset()
	if m.MaxClock() != 0 {
		t.Fatalf("after Reset MaxClock = %g", m.MaxClock())
	}
	// Machine must be runnable again after Reset.
	m.Run(func(n *Node) { n.Barrier() })
}

func TestRunPropagatesPanic(t *testing.T) {
	m := MustNew(4, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected node panic to propagate")
		}
	}()
	m.Run(func(n *Node) {
		if n.ID() == 2 {
			panic("boom")
		}
		n.Barrier() // others must be released, not deadlock
	})
}

func TestRecvFromEachDeterministicClock(t *testing.T) {
	// The final clock must not depend on physical arrival order.
	run := func() float64 {
		m := MustNew(4, NCUBE7())
		var clock float64
		m.Run(func(n *Node) {
			if n.ID() == 0 {
				n.RecvFromEach(TagUser, []int{1, 2, 3})
				clock = n.Clock()
			} else {
				n.Advance(float64(n.ID()) * 0.001)
				n.Send(0, TagUser, nil, 64)
			}
		})
		return clock
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic clock: %g vs %g", got, first)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ncube", "ipsc", "ideal"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("cray"); ok {
		t.Error("unknown machine should fail")
	}
}

func TestParamsContrast(t *testing.T) {
	// The calibration invariants the reproduction relies on:
	// NCUBE is slower in every primitive and has a much more expensive
	// combine stage relative to its message costs.
	nc, ip := NCUBE7(), IPSC2()
	if !(nc.Flop > ip.Flop && nc.RefCheck > ip.RefCheck && nc.Call > ip.Call) {
		t.Fatal("NCUBE must be slower than iPSC/2")
	}
	if !(nc.CombineStage > 10*ip.CombineStage) {
		t.Fatal("NCUBE combine stage must dominate iPSC/2's")
	}
}

// TestQuickClockMonotonic: a random walk of charges never decreases
// the clock.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(ops []uint8) bool {
		m := MustNew(1, NCUBE7())
		ok := true
		m.Run(func(n *Node) {
			prev := n.Clock()
			for _, op := range ops {
				switch op % 4 {
				case 0:
					n.Charge(Cost{Flops: int(op)})
				case 1:
					n.Charge(Cost{MemRefs: int(op), LoopIters: 1})
				case 2:
					n.ChargeSearch(int(op%16) + 1)
				case 3:
					n.Advance(float64(op) * 1e-6)
				}
				if n.Clock() < prev {
					ok = false
				}
				prev = n.Clock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPerHopLatency: message arrival time grows with hypercube
// distance (node ids are addresses; Hamming distance = hops).
func TestPerHopLatency(t *testing.T) {
	p := NCUBE7()
	m := MustNew(8, p)
	clocks := make([]float64, 8)
	m.Run(func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, TagUser, nil, 8) // 1 hop
			n.Send(7, TagUser, nil, 8) // 3 hops (111b)
		}
		if n.ID() == 1 || n.ID() == 7 {
			n.Recv(0, TagUser)
			clocks[n.ID()] = n.Clock()
		}
	})
	// Node 7's arrival lags node 1's by exactly 2 extra hops; the
	// second Send's startup also delays it, so compare with that term.
	extra := clocks[7] - clocks[1]
	wantMin := 2 * p.PerHop
	if extra < wantMin {
		t.Fatalf("3-hop message arrived %.9f after 1-hop; want >= %.9f", extra, wantMin)
	}
}

// TestNonPowerOfTwoHops: on non-hypercube sizes every link is 1 hop.
func TestNonPowerOfTwoHops(t *testing.T) {
	m := MustNew(3, NCUBE7())
	if m.hops(0, 2) != 1 || m.hops(1, 1) != 0 {
		t.Fatal("non-pow2 hop model wrong")
	}
}

// TestHopsHamming: power-of-two machines use Hamming distance.
func TestHopsHamming(t *testing.T) {
	m := MustNew(16, Ideal())
	cases := map[[2]int]int{{0, 15}: 4, {5, 6}: 2, {3, 3}: 0, {8, 0}: 1}
	for pq, want := range cases {
		if got := m.hops(pq[0], pq[1]); got != want {
			t.Fatalf("hops%v = %d, want %d", pq, got, want)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	m := MustNew(4, IPSC2())
	if m.P() != 4 || m.Params().Name != "iPSC/2" {
		t.Fatal("machine accessors")
	}
	if m.Node(2) == nil || m.Node(2) != m.Node(2) {
		t.Fatal("Node accessor")
	}
	m.Run(func(n *Node) {
		if n.P() != 4 || n.Machine() != m {
			t.Error("node accessors")
		}
	})
}
