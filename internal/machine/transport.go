package machine

// Transport is the node runtime behind a Machine: how messages move
// between nodes, how elapsed time is accounted, and how collectives
// synchronize.  The paper's entire schedule pipeline — compile-time
// analysis, the inspector/executor, schedule caching and sharing,
// redistribution plans — runs above this interface unmodified; only
// the node runtime swaps:
//
//   - sim (internal/machine/sim) is the virtual-clock simulator: every
//     primitive operation advances a per-node clock by a calibrated
//     cost model (Params), so reported times are deterministic
//     predictions for the paper's hardware (§4).
//   - wallclock (internal/machine/wallclock) runs nodes as pinned OS
//     threads with real shared-memory message queues: modeled charges
//     are no-ops, and elapsed time is measured with the monotonic
//     clock — the same compiled schedules, timed for real.
//
// All per-node methods (Send, Recv, Advance, Elapsed, Barrier,
// AllReduce) are called only from node me's program goroutine; Begin,
// Poison, MaxElapsed and Reset are called by the Machine while no node
// program is running (except Poison, which a panicking node calls to
// release its peers).
type Transport interface {
	// Backend names the runtime ("sim", "wall") for reports.
	Backend() string

	// Virtual reports whether time is modeled: when true, Charge-style
	// operations must call Advance with their cost-model seconds; when
	// false the Machine skips the cost arithmetic entirely and elapsed
	// time comes from the host's monotonic clock.
	Virtual() bool

	// Begin marks the start of one Machine.Run (wall-clock backends
	// stamp the epoch all Elapsed values are measured from).
	Begin()

	// Done marks node me's program as returned, freezing its Elapsed
	// value so MaxElapsed is stable after the run.
	Done(me int)

	// Elapsed returns node me's elapsed seconds since Begin: the
	// virtual clock for the simulator, monotonic wall time for real
	// backends.  Phase timers are differences of Elapsed.
	Elapsed(me int) float64

	// MaxElapsed returns the maximum Elapsed over all nodes — the
	// machine's elapsed time (the slowest node determines it).
	MaxElapsed() float64

	// Advance charges seconds of modeled time to node me.  Real
	// backends ignore it (real operations take real time).
	Advance(me int, seconds float64)

	// Send ships msg from me to node to; it must not block
	// indefinitely when the receiver is not yet in Recv.  Recv blocks
	// until the matching (from, tag) message is available and returns
	// it; messages between one pair are delivered in send order.
	Send(me, to int, msg Message)
	Recv(me, from int, tag Tag) Message

	// ISend is the nonblocking Send behind split-phase executors: the
	// transfer's wire time must not sit on the sender's critical path.
	// The simulator charges the sender only the send startup and
	// serializes the per-byte copy on the node's network interface,
	// overlapping subsequent compute; real backends already enqueue
	// without rendezvous, so ISend and Send coincide there.  Delivery
	// order between one pair is still send order, and Send/ISend may be
	// mixed on one stream.
	ISend(me, to int, msg Message)

	// WaitAny blocks until some request reqs[i] with !done[i] has a
	// matching message available and returns (i, message); the caller
	// marks done[i].  Virtual-time backends complete requests in slice
	// order so clocks stay deterministic; wall-clock backends return
	// whichever request physically completes first.  WaitAny must not
	// allocate on the steady-state path.
	WaitAny(me int, reqs []Request, done []bool) (int, Message)

	// Barrier blocks until all nodes arrive.  AllReduce combines one
	// value from every node ("sum", "max", "min", "and") and returns
	// the result on every node.
	Barrier(me int)
	AllReduce(me int, x float64, op string) float64

	// Poison releases all blocked collective/receive waiters after a
	// node panic so Machine.Run can unwind; released waiters panic.
	Poison()

	// Reset restores the transport for another Run: clocks zeroed,
	// queues drained.
	Reset()
}

// FusedSender is an optional Transport extension for virtual-time
// backends that model cross-loop aggregated messages: ISendPart posts
// one section of a fused message.  The first section of a message is
// charged like ISend (startup, then wire time serialized on the
// sender's network interface); continuation sections append only their
// wire time to the interface timeline — no startup — so fusing k
// per-loop messages into one saves k-1 startups on the sender's clock
// while every section still arrives no later than its unfused
// counterpart.  Backends without modeled startup costs (wall-clock)
// need not implement it; the Machine falls back to plain ISend, which
// has identical delivery semantics there.
type FusedSender interface {
	ISendPart(me, to int, msg Message, first bool)
}

// ClockAddr is an optional Transport extension for virtual-time
// backends whose per-node clock is a plain float64 accumulator: it
// exposes the accumulator's address so the Machine can apply
// per-operator charges without an interface call per advance.  The
// pointer must stay valid across Reset (Reset may zero the value, not
// replace the storage).
type ClockAddr interface {
	ClockAddr(me int) *float64
}
