package sim

import (
	"sync"
	"testing"

	"kali/internal/machine"
)

// TestWaitAnyCompletesInSliceOrder: the simulator's WaitAny must
// complete requests in slice order — even when a later request's
// message is already queued, the drain blocks for the earlier one —
// so split-phase drains replay the exact clock sequence of the
// phase-synchronous executor.
func TestWaitAnyCompletesInSliceOrder(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	var sent2 sync.WaitGroup
	sent2.Add(1)
	release1 := make(chan struct{})
	var order [2]int
	m.Run(func(n *machine.Node) {
		switch n.ID() {
		case 0:
			// Node 2's message is physically enqueued before the drain
			// starts; node 1's arrives only after the drain is underway.
			sent2.Wait()
			close(release1)
			reqs := []machine.Request{
				n.IRecv(1, machine.TagUser),
				n.IRecv(2, machine.TagUser),
			}
			done := make([]bool, 2)
			for k := 0; k < 2; k++ {
				i, _ := n.WaitAny(reqs, done)
				done[i] = true
				order[k] = i
			}
		case 1:
			<-release1
			n.Send(0, machine.TagUser, nil, 8)
		case 2:
			n.Send(0, machine.TagUser, nil, 8)
			sent2.Done()
		}
	})
	if order != [2]int{0, 1} {
		t.Fatalf("sim WaitAny completion order %v, want [0 1] (slice order)", order)
	}
}
