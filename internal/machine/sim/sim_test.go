package sim

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"kali/internal/machine"
)

// tr extracts the sim transport for tests of backend internals.
func tr(m *machine.Machine) *transport { return m.Transport().(*transport) }

func TestNewErrors(t *testing.T) {
	if _, err := New(0, machine.Ideal()); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, err := New(-3, machine.Ideal()); err == nil {
		t.Fatal("expected error for negative nodes")
	}
}

func TestBackendName(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	if m.Backend() != "sim" {
		t.Fatalf("Backend() = %q, want sim", m.Backend())
	}
	if !m.Transport().Virtual() {
		t.Fatal("sim must be virtual")
	}
}

func TestDim(t *testing.T) {
	for _, c := range []struct{ p, dim int }{{1, 0}, {2, 1}, {4, 2}, {8, 3}, {128, 7}, {5, 3}} {
		m := MustNew(c.p, machine.Ideal())
		if got := m.Dim(); got != c.dim {
			t.Errorf("Dim(P=%d) = %d, want %d", c.p, got, c.dim)
		}
	}
}

func TestRunSPMD(t *testing.T) {
	m := MustNew(8, machine.Ideal())
	var total int64
	m.Run(func(n *machine.Node) {
		atomic.AddInt64(&total, int64(n.ID()))
	})
	if total != 28 {
		t.Fatalf("all nodes should run exactly once; sum = %d", total)
	}
}

func TestSendRecvDelivers(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, []float64{1, 2, 3}, 24)
		} else {
			msg := n.Recv(0, machine.TagUser)
			data := msg.Payload.([]float64)
			if len(data) != 3 || data[2] != 3 {
				t.Errorf("payload corrupted: %v", data)
			}
			if msg.Bytes != 24 || msg.From != 0 {
				t.Errorf("metadata wrong: %+v", msg)
			}
		}
	})
}

func TestRecvMatchesTagAndSender(t *testing.T) {
	// Node 2 receives from 0 and 1 in a fixed order even if messages
	// arrive in the opposite order; tags must also be matched.
	m := MustNew(3, machine.Ideal())
	m.Run(func(n *machine.Node) {
		switch n.ID() {
		case 0:
			n.Send(2, machine.TagUser, "a", 1)
			n.Send(2, machine.TagUser+1, "b", 1)
		case 1:
			n.Send(2, machine.TagUser, "c", 1)
		case 2:
			if got := n.Recv(1, machine.TagUser).Payload.(string); got != "c" {
				t.Errorf("from 1: got %q", got)
			}
			if got := n.Recv(0, machine.TagUser+1).Payload.(string); got != "b" {
				t.Errorf("tag+1: got %q", got)
			}
			if got := n.Recv(0, machine.TagUser).Payload.(string); got != "a" {
				t.Errorf("from 0: got %q", got)
			}
		}
	})
}

func TestMessageCausality(t *testing.T) {
	// Receiver clock after recv must be >= sender's send-complete time
	// plus hop latency.
	p := machine.NCUBE7()
	m := MustNew(2, p)
	var sendDone, recvClock float64
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Advance(1.0) // sender is ahead
			n.Send(1, machine.TagUser, nil, 1000)
			sendDone = n.Clock()
		} else {
			n.Recv(0, machine.TagUser)
			recvClock = n.Clock()
		}
	})
	wantMin := sendDone + p.PerHop
	if recvClock < wantMin {
		t.Fatalf("receiver clock %.6f < causal bound %.6f", recvClock, wantMin)
	}
	// And the receiver pays receive overhead + per-byte copy.
	want := sendDone + p.PerHop + p.RecvOverhead + 1000*p.MsgPerByte
	if math.Abs(recvClock-want) > 1e-12 {
		t.Fatalf("receiver clock %.9f, want %.9f", recvClock, want)
	}
}

func TestSendChargesSender(t *testing.T) {
	p := machine.IPSC2()
	m := MustNew(2, p)
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, nil, 512)
			want := p.MsgStartup + 512*p.MsgPerByte
			if math.Abs(n.Clock()-want) > 1e-12 {
				t.Errorf("sender clock = %g, want %g", n.Clock(), want)
			}
			st := n.Stats()
			if st.MsgsSent != 1 || st.BytesSent != 512 {
				t.Errorf("stats = %+v", st)
			}
		} else {
			n.Recv(0, machine.TagUser)
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(0, machine.TagUser, nil, 0)
		}
	})
}

func TestChargeCosts(t *testing.T) {
	p := machine.NCUBE7()
	m := MustNew(1, p)
	m.Run(func(n *machine.Node) {
		n.Charge(machine.Cost{Flops: 2, MemRefs: 3, LoopIters: 1, Calls: 1, RefChecks: 5, LocTests: 2, ListInserts: 1})
		want := 2*p.Flop + 3*p.MemRef + p.LoopIter + p.Call + 5*p.RefCheck + 2*p.LocTest + p.ListInsert
		if math.Abs(n.Clock()-want) > 1e-12 {
			t.Errorf("clock = %g, want %g", n.Clock(), want)
		}
	})
}

func TestChargeSearchLog(t *testing.T) {
	p := machine.NCUBE7()
	m := MustNew(1, p)
	m.Run(func(n *machine.Node) {
		c0 := n.Clock()
		n.ChargeSearch(1) // 1 range: 1 probe
		oneRange := n.Clock() - c0
		c1 := n.Clock()
		n.ChargeSearch(8) // 8 ranges: 4 probes (2^3 <= 8)
		eight := n.Clock() - c1
		wantOne := p.SearchBase + p.SearchProbe
		wantEight := p.SearchBase + 4*p.SearchProbe
		if math.Abs(oneRange-wantOne) > 1e-12 || math.Abs(eight-wantEight) > 1e-12 {
			t.Errorf("search costs: got %g,%g want %g,%g", oneRange, eight, wantOne, wantEight)
		}
	})
}

func TestAdvanceNegativePanics(t *testing.T) {
	m := MustNew(1, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) { n.Advance(-1) })
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	p := machine.NCUBE7()
	m := MustNew(4, p)
	clocks := make([]float64, 4)
	m.Run(func(n *machine.Node) {
		n.Advance(float64(n.ID())) // clocks 0,1,2,3
		n.Barrier()
		clocks[n.ID()] = n.Clock()
	})
	want := 3 + tr(m).collectiveCost(8)
	for id, c := range clocks {
		if math.Abs(c-want) > 1e-12 {
			t.Fatalf("node %d clock = %g, want %g", id, c, want)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	m.Run(func(n *machine.Node) {
		for i := 0; i < 50; i++ {
			n.Barrier()
		}
	})
	// Completing without deadlock is the assertion.
}

func TestAllReduceOps(t *testing.T) {
	m := MustNew(4, machine.Ideal())
	sums := make([]float64, 4)
	maxs := make([]float64, 4)
	mins := make([]float64, 4)
	ands := make([]float64, 4)
	m.Run(func(n *machine.Node) {
		v := float64(n.ID() + 1) // 1,2,3,4
		sums[n.ID()] = n.AllReduce(v, "sum")
		maxs[n.ID()] = n.AllReduce(v, "max")
		mins[n.ID()] = n.AllReduce(v, "min")
		b := 1.0
		if n.ID() == 2 {
			b = 0
		}
		ands[n.ID()] = n.AllReduce(b, "and")
	})
	for id := 0; id < 4; id++ {
		if sums[id] != 10 || maxs[id] != 4 || mins[id] != 1 || ands[id] != 0 {
			t.Fatalf("node %d: sum=%g max=%g min=%g and=%g", id, sums[id], maxs[id], mins[id], ands[id])
		}
	}
}

func TestAllReduceAndTrue(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	m.Run(func(n *machine.Node) {
		if got := n.AllReduce(1, "and"); got != 1 {
			t.Errorf("and of all-true = %g", got)
		}
	})
}

func TestPhaseTimers(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	m.Run(func(n *machine.Node) {
		n.StartPhase("outer")
		n.Advance(1)
		n.StartPhase("inner")
		n.Advance(2)
		n.StopPhase("inner")
		n.Advance(3)
		n.StopPhase("outer")
		if got := n.PhaseTime("inner"); got != 2 {
			t.Errorf("inner = %g", got)
		}
		if got := n.PhaseTime("outer"); got != 6 {
			t.Errorf("outer = %g", got)
		}
	})
	if m.MaxPhase("outer") != 6 {
		t.Fatalf("MaxPhase = %g", m.MaxPhase("outer"))
	}
}

func TestPhaseMismatchPanics(t *testing.T) {
	m := MustNew(1, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) {
		n.StartPhase("a")
		n.StopPhase("b")
	})
}

func TestMaxClockAndReset(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	m.Run(func(n *machine.Node) { n.Advance(float64(n.ID()) * 5) })
	if m.MaxClock() != 10 {
		t.Fatalf("MaxClock = %g", m.MaxClock())
	}
	m.Reset()
	if m.MaxClock() != 0 {
		t.Fatalf("after Reset MaxClock = %g", m.MaxClock())
	}
	// Machine must be runnable again after Reset.
	m.Run(func(n *machine.Node) { n.Barrier() })
}

func TestRunPropagatesPanic(t *testing.T) {
	m := MustNew(4, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected node panic to propagate")
		}
	}()
	m.Run(func(n *machine.Node) {
		if n.ID() == 2 {
			panic("boom")
		}
		n.Barrier() // others must be released, not deadlock
	})
}

func TestRecvFromEachDeterministicClock(t *testing.T) {
	// The final clock must not depend on physical arrival order.
	run := func() float64 {
		m := MustNew(4, machine.NCUBE7())
		var clock float64
		m.Run(func(n *machine.Node) {
			if n.ID() == 0 {
				n.RecvFromEach(machine.TagUser, []int{1, 2, 3})
				clock = n.Clock()
			} else {
				n.Advance(float64(n.ID()) * 0.001)
				n.Send(0, machine.TagUser, nil, 64)
			}
		})
		return clock
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic clock: %g vs %g", got, first)
		}
	}
}

// TestQuickClockMonotonic: a random walk of charges never decreases
// the clock.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(ops []uint8) bool {
		m := MustNew(1, machine.NCUBE7())
		ok := true
		m.Run(func(n *machine.Node) {
			prev := n.Clock()
			for _, op := range ops {
				switch op % 4 {
				case 0:
					n.Charge(machine.Cost{Flops: int(op)})
				case 1:
					n.Charge(machine.Cost{MemRefs: int(op), LoopIters: 1})
				case 2:
					n.ChargeSearch(int(op%16) + 1)
				case 3:
					n.Advance(float64(op) * 1e-6)
				}
				if n.Clock() < prev {
					ok = false
				}
				prev = n.Clock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPerHopLatency: message arrival time grows with hypercube
// distance (node ids are addresses; Hamming distance = hops).
func TestPerHopLatency(t *testing.T) {
	p := machine.NCUBE7()
	m := MustNew(8, p)
	clocks := make([]float64, 8)
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, nil, 8) // 1 hop
			n.Send(7, machine.TagUser, nil, 8) // 3 hops (111b)
		}
		if n.ID() == 1 || n.ID() == 7 {
			n.Recv(0, machine.TagUser)
			clocks[n.ID()] = n.Clock()
		}
	})
	// Node 7's arrival lags node 1's by exactly 2 extra hops; the
	// second Send's startup also delays it, so compare with that term.
	extra := clocks[7] - clocks[1]
	wantMin := 2 * p.PerHop
	if extra < wantMin {
		t.Fatalf("3-hop message arrived %.9f after 1-hop; want >= %.9f", extra, wantMin)
	}
}

// TestNonPowerOfTwoHops: on non-hypercube sizes every link is 1 hop.
func TestNonPowerOfTwoHops(t *testing.T) {
	m := MustNew(3, machine.NCUBE7())
	if tr(m).hops(0, 2) != 1 || tr(m).hops(1, 1) != 0 {
		t.Fatal("non-pow2 hop model wrong")
	}
}

// TestHopsHamming: power-of-two machines use Hamming distance.
func TestHopsHamming(t *testing.T) {
	m := MustNew(16, machine.Ideal())
	cases := map[[2]int]int{{0, 15}: 4, {5, 6}: 2, {3, 3}: 0, {8, 0}: 1}
	for pq, want := range cases {
		if got := tr(m).hops(pq[0], pq[1]); got != want {
			t.Fatalf("hops%v = %d, want %d", pq, got, want)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	m := MustNew(4, machine.IPSC2())
	if m.P() != 4 || m.Params().Name != "iPSC/2" {
		t.Fatal("machine accessors")
	}
	if m.Node(2) == nil || m.Node(2) != m.Node(2) {
		t.Fatal("Node accessor")
	}
	m.Run(func(n *machine.Node) {
		if n.P() != 4 || n.Machine() != m {
			t.Error("node accessors")
		}
	})
}
