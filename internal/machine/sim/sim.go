// Package sim is the virtual-clock simulator backend of the machine.
//
// Every node has a virtual clock advanced by a calibrated cost model
// (machine.Params) instead of wall-clock measurement, so results are
// deterministic predictions for the paper's hardware and independent
// of the host.  Virtual time obeys message causality: a message sent
// at sender time t arrives no earlier than t + startup + perByte·n +
// perHop·hops, and a receive advances the receiver's clock to at
// least the arrival time.  Collectives (barrier, reductions)
// synchronize clocks the way a dimension-exchange implementation
// would on a hypercube.
package sim

import (
	"math/bits"
	"sync"

	"kali/internal/machine"
)

// transport is the virtual-clock machine.Transport.
type transport struct {
	params machine.Params
	p      int
	cube   bool // node ids are hypercube addresses (P is a power of two)

	clocks    []float64
	nicFree   []float64 // per-node network-interface busy-until time (ISend wire serialization)
	mailboxes []chan machine.Message
	pending   [][]machine.Message // received but not yet matched, per node

	barrier    *barrier
	reduceMu   sync.Mutex
	reduceVals []float64
}

// New builds a simulated machine with p nodes and the given cost
// model.  When p is a power of two the node ids are hypercube
// addresses (per-hop charges use Hamming distance); otherwise hop
// distance is taken as 1.
func New(p int, params machine.Params) (*machine.Machine, error) {
	tr := &transport{
		params:    params,
		p:         p,
		cube:      p > 0 && p&(p-1) == 0,
		clocks:    make([]float64, max(p, 0)),
		nicFree:   make([]float64, max(p, 0)),
		mailboxes: make([]chan machine.Message, max(p, 0)),
		pending:   make([][]machine.Message, max(p, 0)),
		barrier:   newBarrier(p),
	}
	for i := range tr.mailboxes {
		tr.mailboxes[i] = make(chan machine.Message, 4*p+16)
	}
	return machine.NewWith(p, params, tr)
}

// MustNew is New that panics on error.
func MustNew(p int, params machine.Params) *machine.Machine {
	m, err := New(p, params)
	if err != nil {
		panic(err)
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (t *transport) Backend() string { return "sim" }
func (t *transport) Virtual() bool   { return true }
func (t *transport) Begin()          {}
func (t *transport) Done(me int)     {}

func (t *transport) Elapsed(me int) float64 { return t.clocks[me] }

func (t *transport) MaxElapsed() float64 {
	max := 0.0
	for _, c := range t.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

func (t *transport) Advance(me int, seconds float64) { t.clocks[me] += seconds }

// ClockAddr exposes node me's clock accumulator for the Machine's
// direct-charge fast path (machine.ClockAddr); Reset zeroes the
// slice in place, so the address stays valid for the machine's life.
func (t *transport) ClockAddr(me int) *float64 { return &t.clocks[me] }

// hops returns the link distance between two nodes.
func (t *transport) hops(p, q int) int {
	if p == q {
		return 0
	}
	if !t.cube {
		return 1
	}
	return bits.OnesCount(uint(p ^ q))
}

// Send charges the sender the startup plus copy cost and stamps the
// message with its receiver-side arrival time: send completion plus
// the per-hop network latency.  A blocking send drives the wire
// itself, so the NIC timeline catches up to the clock — mixing Send
// and ISend on one node stays coherent, and a run made only of
// blocking sends is bit-identical to the pre-overlap model.
func (t *transport) Send(me, to int, msg machine.Message) {
	p := &t.params
	t.clocks[me] += p.MsgStartup + float64(msg.Bytes)*p.MsgPerByte
	t.nicFree[me] = t.clocks[me]
	msg.ArriveAt = t.clocks[me] + float64(t.hops(me, to))*p.PerHop
	t.mailboxes[to] <- msg
}

// ISend charges the sender only the send startup; the per-byte wire
// time is serialized on the node's network interface, which runs
// concurrently with whatever the node computes next.  The transfer
// starts when both the startup is issued and the NIC is free, so
// back-to-back ISends queue on the wire rather than magically
// overlapping each other.  Every timestamp here is ≤ its blocking-Send
// counterpart (startup-only charge ≤ full charge; nic start takes the
// max of values that are each ≤ the blocking clock), and the receive
// rules are monotone in ArriveAt, so overlap can only shrink simulated
// clocks, never grow them.
func (t *transport) ISend(me, to int, msg machine.Message) {
	p := &t.params
	t.clocks[me] += p.MsgStartup
	start := t.clocks[me]
	if t.nicFree[me] > start {
		start = t.nicFree[me]
	}
	end := start + float64(msg.Bytes)*p.MsgPerByte
	t.nicFree[me] = end
	msg.ArriveAt = end + float64(t.hops(me, to))*p.PerHop
	t.mailboxes[to] <- msg
}

// ISendPart posts one section of a cross-loop fused message
// (machine.FusedSender).  A first section is exactly ISend; a
// continuation section skips the startup charge and only appends its
// wire time to the network-interface timeline.  Posting a window's
// sections loop-major at the point the unfused run would post its
// first loop's messages makes every section's ArriveAt ≤ the unfused
// counterpart's: the first loop's sections get identical timestamps
// (same clock, same NIC prefix), and later loops' sections leave a NIC
// that never waits for intervening compute, while the unfused sender
// posts them only after finishing the previous loop.
func (t *transport) ISendPart(me, to int, msg machine.Message, first bool) {
	p := &t.params
	if first {
		t.clocks[me] += p.MsgStartup
	}
	start := t.clocks[me]
	if t.nicFree[me] > start {
		start = t.nicFree[me]
	}
	end := start + float64(msg.Bytes)*p.MsgPerByte
	t.nicFree[me] = end
	msg.ArriveAt = end + float64(t.hops(me, to))*p.PerHop
	t.mailboxes[to] <- msg
}

// Recv blocks until a message from `from` with the given tag is
// available, advances the clock to its arrival time, and charges
// receive overhead.
func (t *transport) Recv(me, from int, tag machine.Tag) machine.Message {
	pend := t.pending[me]
	for i, msg := range pend {
		if msg.From == from && msg.Tag == tag {
			t.pending[me] = append(pend[:i], pend[i+1:]...)
			t.deliver(me, msg)
			return msg
		}
	}
	for {
		msg := <-t.mailboxes[me]
		if msg.From == from && msg.Tag == tag {
			t.deliver(me, msg)
			return msg
		}
		t.pending[me] = append(t.pending[me], msg)
	}
}

// WaitAny completes the lowest-indexed outstanding request: virtual
// clocks are shared mutable state, so the simulator consumes messages
// in a fixed order regardless of which goroutine enqueued first —
// identical drains to the phase-synchronous executor, hence identical
// determinism guarantees.
func (t *transport) WaitAny(me int, reqs []machine.Request, done []bool) (int, machine.Message) {
	for i, r := range reqs {
		if !done[i] {
			return i, t.Recv(me, r.From, r.Tag)
		}
	}
	panic("sim: WaitAny with no outstanding request")
}

// deliver applies clock rules for consuming one message.
func (t *transport) deliver(me int, msg machine.Message) {
	if msg.ArriveAt > t.clocks[me] {
		t.clocks[me] = msg.ArriveAt
	}
	t.clocks[me] += t.params.RecvOverhead + float64(msg.Bytes)*t.params.MsgPerByte
}

// collectiveCost returns the modeled time of one hypercube collective:
// Dim stages, each a small-message exchange of nbytes.
func (t *transport) collectiveCost(nbytes int) float64 {
	d := 0
	for (1 << uint(d)) < t.p {
		d++
	}
	if d == 0 {
		return 0
	}
	per := t.params.MsgStartup + float64(nbytes)*t.params.MsgPerByte +
		t.params.PerHop + t.params.RecvOverhead
	return float64(d) * per
}

// Barrier synchronizes all nodes; afterwards every clock equals the
// pre-barrier maximum plus the collective cost.
func (t *transport) Barrier(me int) {
	max := t.barrier.wait(t.clocks[me])
	t.clocks[me] = max + t.collectiveCost(8)
}

// AllReduce combines one float64 from every node in node-id order
// (so results are bit-identical across backends) and synchronizes
// clocks like a barrier.
func (t *transport) AllReduce(me int, x float64, op string) float64 {
	t.reduceMu.Lock()
	if t.reduceVals == nil {
		t.reduceVals = make([]float64, t.p)
	}
	t.reduceVals[me] = x
	t.reduceMu.Unlock()

	max := t.barrier.wait(t.clocks[me])

	t.reduceMu.Lock()
	acc := machine.ReduceByID(t.reduceVals, op)
	t.reduceMu.Unlock()

	// Second rendezvous so no node races ahead and overwrites the
	// scratch values of a subsequent AllReduce.
	_ = t.barrier.wait(0)

	t.clocks[me] = max + t.collectiveCost(8)
	return acc
}

func (t *transport) Poison() { t.barrier.poison() }

func (t *transport) Reset() {
	t.barrier.reset()
	for i := range t.clocks {
		t.clocks[i] = 0
		t.nicFree[i] = 0
		t.pending[i] = t.pending[i][:0]
	drain:
		for {
			select {
			case <-t.mailboxes[i]:
			default:
				break drain
			}
		}
	}
}
