package sim

import "sync"

// barrier is a reusable clock-synchronizing barrier.  The last node to
// arrive publishes the generation's maximum clock in releasedMax and
// resets the accumulator for the next generation; because every node
// participates in every barrier, a new generation cannot complete (and
// overwrite releasedMax) before all waiters of the previous generation
// have been released.
type barrier struct {
	mu          sync.Mutex
	cond        *sync.Cond
	p           int
	count       int
	gen         int
	maxClock    float64
	releasedMax float64
	poisoned    bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// reset clears the poison and accumulators so a pooled machine can run
// another program after a node panic (Machine.Run has already unwound
// every node goroutine by the time Reset is called, so no waiter can
// be parked here).
func (b *barrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.count = 0
	b.maxClock = 0
	b.mu.Unlock()
}

// poison releases all waiters after a node panic so Run can unwind.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// wait blocks until all p nodes arrive and returns the maximum clock
// among them.
func (b *barrier) wait(clock float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
	gen := b.gen
	if clock > b.maxClock {
		b.maxClock = clock
	}
	b.count++
	if b.count == b.p {
		b.releasedMax = b.maxClock
		b.maxClock = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.releasedMax
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
	return b.releasedMax
}
