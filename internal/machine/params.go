package machine

// Params is the machine cost model: the virtual-time price of each
// primitive operation, in seconds.  Two presets reproduce the paper's
// evaluation hardware; see DESIGN.md §5 for the calibration.
//
// The presets were fitted analytically to the paper's own tables.  The
// published numbers decompose almost exactly into four constants per
// machine: a per-point update cost in the executor's local loop, an
// extra cost per nonlocal reference (locality test + search call +
// O(log r) probes), a per-reference inspector check cost, and a
// per-stage cost of the inspector's global combine (the Crystal-router
// phase).  For example, on the NCUBE/7 the paper's Figure 9 speedup
// column implies a one-processor executor time of ~287 µs per mesh
// point (471 s for 128²×100 sweeps), Figure 7's executor column is then
// matched within ~3% by a ~350 µs nonlocal-reference surcharge, and
// Figure 7's inspector column fits ~230 µs per inspected point (four
// reference checks plus loop overhead) plus ~0.19 s per combine stage
// (giving the paper's U-shape with the minimum at 16 processors).  The
// iPSC/2 columns fit ~72 µs per point, ~71 µs per nonlocal reference,
// ~40 µs per inspected point and ~5 ms per stage
// (monotone decreasing inspector, <1% overhead), matching the paper's
// explanation: cheaper small messages and faster procedure calls.
type Params struct {
	// Name identifies the preset in reports.
	Name string

	// Computation primitives.
	Flop     float64 // one floating-point operation
	MemRef   float64 // one indexed memory reference
	LoopIter float64 // per-iteration loop overhead
	Call     float64 // procedure call overhead

	// Inspector/executor primitives.
	RefCheck    float64 // inspector: classify one array reference as local/nonlocal
	LocTest     float64 // executor: locality if-test in the nonlocal loop
	SearchBase  float64 // executor: fixed cost of one nonlocal-element search
	SearchProbe float64 // executor: per-probe cost of the binary search
	ListInsert  float64 // inspector: append one record to a communication list

	// Communication.
	MsgStartup   float64 // message startup (α)
	MsgPerByte   float64 // per-byte cost (β), charged at both ends
	PerHop       float64 // per-link latency on the hypercube
	RecvOverhead float64 // fixed receive cost

	// CombineStage is the software overhead of one Crystal-router
	// stage in the inspector's global list exchange (allocation,
	// sorting, concatenation) beyond the raw message costs.
	CombineStage float64
}

const us = 1e-6 // one microsecond in seconds

// NCUBE7 models the 128-node NCUBE/7 hypercube of the paper: a slow
// scalar CPU, expensive procedure calls, and a costly global-combine
// stage — the machine where inspector overhead reaches 12%.
func NCUBE7() Params {
	return Params{
		Name:     "NCUBE/7",
		Flop:     9.7 * us,
		MemRef:   12.6 * us,
		LoopIter: 39.1 * us,
		Call:     100 * us,

		RefCheck:    48 * us,
		LocTest:     15 * us,
		SearchBase:  87 * us,
		SearchProbe: 50 * us,
		ListInsert:  60 * us,

		MsgStartup:   350 * us,
		MsgPerByte:   2.6 * us,
		PerHop:       35 * us,
		RecvOverhead: 100 * us,

		CombineStage: 0.19,
	}
}

// IPSC2 models the 32-node Intel iPSC/2: a much faster CPU, cheap
// small messages and fast procedure calls — the machine where
// inspector overhead stays below 1%.
func IPSC2() Params {
	return Params{
		Name:     "iPSC/2",
		Flop:     2.05 * us,
		MemRef:   3.3 * us,
		LoopIter: 9.85 * us,
		Call:     15 * us,

		RefCheck:    7.7 * us,
		LocTest:     3.5 * us,
		SearchBase:  16 * us,
		SearchProbe: 10 * us,
		ListInsert:  12 * us,

		MsgStartup:   75 * us,
		MsgPerByte:   0.4 * us,
		PerHop:       10 * us,
		RecvOverhead: 30 * us,

		CombineStage: 0.005,
	}
}

// Ideal is a zero-cost machine for functional (correctness-only)
// testing: all virtual times are zero, so tests never depend on the
// cost model.
func Ideal() Params {
	return Params{Name: "ideal"}
}

// ByName returns a preset by its name ("ncube", "ipsc", "ideal").
func ByName(name string) (Params, bool) {
	switch name {
	case "ncube", "NCUBE/7", "ncube7":
		return NCUBE7(), true
	case "ipsc", "iPSC/2", "ipsc2":
		return IPSC2(), true
	case "ideal":
		return Ideal(), true
	}
	return Params{}, false
}
