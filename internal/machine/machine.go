// Package machine simulates a distributed-memory multicomputer.
//
// The paper's evaluation (§4, Figures 7–10) runs Kali on two
// hypercubes, the NCUBE/7 and the iPSC/2.  We cannot run on that hardware, so this package provides a
// faithful software substitute: every node of the simulated machine is
// a goroutine with its own local memory and a *virtual clock*, and all
// interaction happens through explicit messages, exactly as on the real
// machines.  Data movement is executed for real — programs compute real
// answers — while elapsed time is accounted by a calibrated cost model
// (Params) instead of wall-clock measurement, so results are
// deterministic and independent of the host.
//
// Virtual time obeys message causality: a message sent at sender time t
// arrives no earlier than t + startup + perByte·n + perHop·hops, and a
// receive advances the receiver's clock to at least the arrival time.
// Collectives (barrier, reductions) synchronize clocks the way a
// dimension-exchange implementation would on a hypercube.
package machine

import (
	"fmt"
	"math/bits"
	"sync"
)

// Tag distinguishes message streams between the same pair of nodes.
type Tag int

// Reserved tags; user programs should use tags >= TagUser.
const (
	TagData Tag = iota
	TagCrystal
	// TagRedist marks array-redistribution traffic (the all-to-all that
	// rebinds a distributed array to a new dist clause).  Messages sent
	// under it are attributed to the Redist* columns of Stats, so loop
	// (forall) traffic and remapping traffic stay separately countable.
	TagRedist
	TagUser Tag = 16
)

// Message is an in-flight simulated message.
type Message struct {
	From     int
	Tag      Tag
	Payload  any
	Bytes    int
	ArriveAt float64 // receiver-side arrival time on the virtual clock
}

// Machine is a simulated P-node multicomputer.
type Machine struct {
	params Params
	p      int
	cube   bool // node ids are hypercube addresses (P is a power of two)
	nodes  []*Node

	barrier    *barrier
	reduceMu   sync.Mutex
	reduceVals []float64

	scratchMu sync.Mutex
	scratch   map[any]any
}

// New builds a machine with p nodes and the given cost model.  When p
// is a power of two the node ids are hypercube addresses (per-hop
// charges use Hamming distance); otherwise hop distance is taken as 1.
func New(p int, params Params) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need at least one node, got %d", p)
	}
	m := &Machine{params: params, p: p, cube: p&(p-1) == 0}
	m.barrier = newBarrier(p)
	m.nodes = make([]*Node, p)
	for i := 0; i < p; i++ {
		m.nodes[i] = &Node{
			id:      i,
			m:       m,
			mailbox: make(chan Message, 4*p+16),
			phases:  map[string]float64{},
		}
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(p int, params Params) *Machine {
	m, err := New(p, params)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the number of nodes.
func (m *Machine) P() int { return m.p }

// Params returns the cost model in effect.
func (m *Machine) Params() Params { return m.params }

// Dim returns the hypercube dimension ⌈log2 P⌉.
func (m *Machine) Dim() int {
	d := 0
	for (1 << uint(d)) < m.p {
		d++
	}
	return d
}

// Node returns node i (valid after New, including between Runs).
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Scratch returns the machine-lifetime value stored under key,
// creating it with mk on first use.  Higher layers use it for caches
// that must live exactly as long as the machine (e.g. the darray
// redistribution-plan store) without resorting to package-global state
// that would outlive every machine of the process.  Safe for
// concurrent use by node programs.
func (m *Machine) Scratch(key any, mk func() any) any {
	m.scratchMu.Lock()
	defer m.scratchMu.Unlock()
	if m.scratch == nil {
		m.scratch = map[any]any{}
	}
	v, ok := m.scratch[key]
	if !ok {
		v = mk()
		m.scratch[key] = v
	}
	return v
}

// hops returns the link distance between two nodes.
func (m *Machine) hops(p, q int) int {
	if p == q {
		return 0
	}
	if !m.cube {
		return 1
	}
	return bits.OnesCount(uint(p ^ q))
}

// Run executes prog on every node concurrently (SPMD) and returns when
// all nodes finish.  It panics with the node's panic value if any node
// program panics, after all other nodes have been released.
func (m *Machine) Run(prog func(n *Node)) {
	var wg sync.WaitGroup
	panics := make([]any, m.p)
	for i := 0; i < m.p; i++ {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[n.id] = r
					m.barrier.poison()
				}
			}()
			prog(n)
		}(m.nodes[i])
	}
	wg.Wait()
	for id, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("machine: node %d panicked: %v", id, r))
		}
	}
}

// MaxClock returns the maximum virtual clock over all nodes — the
// simulated elapsed time of the program.
func (m *Machine) MaxClock() float64 {
	max := 0.0
	for _, n := range m.nodes {
		if n.clock > max {
			max = n.clock
		}
	}
	return max
}

// MaxPhase returns the maximum accumulated time of a named phase over
// all nodes.  The paper reports per-phase times this way (the slowest
// processor determines elapsed time).
func (m *Machine) MaxPhase(name string) float64 {
	max := 0.0
	for _, n := range m.nodes {
		if t := n.phases[name]; t > max {
			max = t
		}
	}
	return max
}

// Reset zeroes all clocks, phase timers and mailboxes so the machine
// can run another program.
func (m *Machine) Reset() {
	for _, n := range m.nodes {
		n.clock = 0
		n.phases = map[string]float64{}
		n.phaseStack = n.phaseStack[:0]
		n.pending = n.pending[:0]
		n.stats = Stats{}
	drain:
		for {
			select {
			case <-n.mailbox:
			default:
				break drain
			}
		}
	}
}

// Stats counts simulated events on a node, for tests and reports.
// MsgsSent/BytesSent count every message; the Redist* fields count the
// subset sent under TagRedist, so redistribution traffic is attributed
// distinctly from forall (executor/inspector) traffic rather than
// being silently absorbed into the loop totals.
type Stats struct {
	MsgsSent     int
	BytesSent    int
	MsgsReceived int
	FlopCount    int64

	RedistMsgsSent  int
	RedistBytesSent int
}

// Sub returns the field-wise difference s - o: the events that
// happened between two snapshots (e.g. across one loop replay, which
// is how kalibench's commvec table counts messages per execution).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MsgsSent:        s.MsgsSent - o.MsgsSent,
		BytesSent:       s.BytesSent - o.BytesSent,
		MsgsReceived:    s.MsgsReceived - o.MsgsReceived,
		FlopCount:       s.FlopCount - o.FlopCount,
		RedistMsgsSent:  s.RedistMsgsSent - o.RedistMsgsSent,
		RedistBytesSent: s.RedistBytesSent - o.RedistBytesSent,
	}
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MsgsSent:        s.MsgsSent + o.MsgsSent,
		BytesSent:       s.BytesSent + o.BytesSent,
		MsgsReceived:    s.MsgsReceived + o.MsgsReceived,
		FlopCount:       s.FlopCount + o.FlopCount,
		RedistMsgsSent:  s.RedistMsgsSent + o.RedistMsgsSent,
		RedistBytesSent: s.RedistBytesSent + o.RedistBytesSent,
	}
}

// TotalStats sums the event counters over all nodes — the machine-wide
// message count and bytes moved.  Call it only while no node program
// is running.
func (m *Machine) TotalStats() Stats {
	var t Stats
	for _, n := range m.nodes {
		t = t.Add(n.stats)
	}
	return t
}

// Node is one processor of the simulated machine.  All methods must be
// called only from within the node's own program goroutine.
type Node struct {
	id      int
	m       *Machine
	clock   float64
	mailbox chan Message
	pending []Message // received but not yet matched

	phases     map[string]float64
	phaseStack []phaseFrame

	stats Stats
}

type phaseFrame struct {
	name  string
	start float64
}

// ID returns the node id in [0, P).
func (n *Node) ID() int { return n.id }

// P returns the machine size.
func (n *Node) P() int { return n.m.p }

// Machine returns the owning machine.
func (n *Node) Machine() *Machine { return n.m }

// Clock returns the node's current virtual time in seconds.
func (n *Node) Clock() float64 { return n.clock }

// Stats returns the node's event counters.
func (n *Node) Stats() Stats { return n.stats }

// Advance adds raw seconds to the virtual clock.
func (n *Node) Advance(seconds float64) {
	if seconds < 0 {
		panic("machine: negative time advance")
	}
	n.clock += seconds
}

// Charge advances the clock by a combination of primitive costs; see
// Params for the meaning of each count.
func (n *Node) Charge(c Cost) {
	p := &n.m.params
	n.clock += float64(c.Flops)*p.Flop +
		float64(c.MemRefs)*p.MemRef +
		float64(c.LoopIters)*p.LoopIter +
		float64(c.Calls)*p.Call +
		float64(c.RefChecks)*p.RefCheck +
		float64(c.LocTests)*p.LocTest +
		float64(c.ListInserts)*p.ListInsert
	n.stats.FlopCount += int64(c.Flops)
}

// Cost is a bundle of primitive-operation counts for Charge.
type Cost struct {
	Flops       int
	MemRefs     int
	LoopIters   int
	Calls       int
	RefChecks   int
	LocTests    int
	ListInserts int
}

// ChargeSearch charges one sorted-range binary search over r ranges:
// a procedure call plus ⌈log2(r+1)⌉ probes (the paper's O(log r)
// access, Figure 5 discussion).
func (n *Node) ChargeSearch(r int) {
	p := &n.m.params
	probes := 1
	for (1 << uint(probes)) <= r {
		probes++
	}
	n.clock += p.SearchBase + float64(probes)*p.SearchProbe
}

// Send transmits payload to node `to`.  nbytes is the wire size used
// for cost accounting.  The sender is charged the startup plus copy
// cost; the message arrives at the receiver at the send completion time
// plus network latency.
func (n *Node) Send(to int, tag Tag, payload any, nbytes int) {
	if to == n.id {
		panic("machine: send to self")
	}
	p := &n.m.params
	n.clock += p.MsgStartup + float64(nbytes)*p.MsgPerByte
	arrive := n.clock + float64(n.m.hops(n.id, to))*p.PerHop
	n.stats.MsgsSent++
	n.stats.BytesSent += nbytes
	if tag == TagRedist {
		n.stats.RedistMsgsSent++
		n.stats.RedistBytesSent += nbytes
	}
	n.m.nodes[to].mailbox <- Message{
		From:     n.id,
		Tag:      tag,
		Payload:  payload,
		Bytes:    nbytes,
		ArriveAt: arrive,
	}
}

// Recv blocks until a message from `from` with the given tag is
// available, advances the clock to its arrival time, charges receive
// overhead, and returns it.
func (n *Node) Recv(from int, tag Tag) Message {
	for i, msg := range n.pending {
		if msg.From == from && msg.Tag == tag {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.deliver(msg)
			return msg
		}
	}
	for {
		msg := <-n.mailbox
		if msg.From == from && msg.Tag == tag {
			n.deliver(msg)
			return msg
		}
		n.pending = append(n.pending, msg)
	}
}

// RecvFromEach receives exactly one message with the given tag from
// every node in froms, returning them indexed as in froms.  Arrival
// processing is deterministic: clock effects are applied in the order
// of the froms slice regardless of physical arrival order.
func (n *Node) RecvFromEach(tag Tag, froms []int) []Message {
	out := make([]Message, len(froms))
	for i, f := range froms {
		out[i] = n.Recv(f, tag)
	}
	return out
}

// deliver applies clock rules for consuming one message.
func (n *Node) deliver(msg Message) {
	if msg.ArriveAt > n.clock {
		n.clock = msg.ArriveAt
	}
	n.clock += n.m.params.RecvOverhead + float64(msg.Bytes)*n.m.params.MsgPerByte
	n.stats.MsgsReceived++
}

// StartPhase begins accumulating virtual time under the given name.
// Phases may nest; time is attributed to every open phase.
func (n *Node) StartPhase(name string) {
	n.phaseStack = append(n.phaseStack, phaseFrame{name: name, start: n.clock})
}

// StopPhase ends the innermost phase, which must match name.
func (n *Node) StopPhase(name string) {
	if len(n.phaseStack) == 0 {
		panic("machine: StopPhase without StartPhase")
	}
	top := n.phaseStack[len(n.phaseStack)-1]
	if top.name != name {
		panic(fmt.Sprintf("machine: StopPhase(%q) but innermost phase is %q", name, top.name))
	}
	n.phaseStack = n.phaseStack[:len(n.phaseStack)-1]
	n.phases[name] += n.clock - top.start
}

// PhaseTime returns the accumulated time of a phase on this node.
func (n *Node) PhaseTime(name string) float64 { return n.phases[name] }
