// Package machine models a distributed-memory multicomputer behind a
// swappable node runtime.
//
// The paper's evaluation (§4, Figures 7–10) runs Kali on two
// hypercubes, the NCUBE/7 and the iPSC/2.  This package provides the
// machine abstraction those programs run on: every node is a goroutine
// with its own local memory, and all interaction happens through
// explicit messages and collectives, exactly as on the real machines.
// How messages move and how time is accounted is the Transport's
// business: the sim backend (internal/machine/sim) charges a
// calibrated cost model (Params) to per-node virtual clocks so results
// are deterministic predictions, while the wallclock backend
// (internal/machine/wallclock) runs nodes on real OS threads and
// measures real elapsed time — the same compiled schedules, timed for
// real.  Event counts (Stats) are backend-independent: both backends
// move exactly the messages the schedules prescribe.
package machine

import (
	"fmt"
	"runtime"
	"sync"
)

// Tag distinguishes message streams between the same pair of nodes.
type Tag int

// Reserved tags; user programs should use tags >= TagUser.
const (
	TagData Tag = iota
	TagCrystal
	// TagRedist marks array-redistribution traffic (the all-to-all that
	// rebinds a distributed array to a new dist clause).  Messages sent
	// under it are attributed to the Redist* columns of Stats, so loop
	// (forall) traffic and remapping traffic stay separately countable.
	TagRedist
	// TagFused is the base tag of cross-loop fused traffic: a fusion
	// window of k consecutive foralls sends loop j's section of the
	// aggregated per-pair message under TagFused+j, so the receiver's
	// per-loop drain matches its own section unambiguously.  Windows are
	// capped (MaxFusedLoops) so fused tags never reach TagUser.
	TagFused
	TagUser Tag = 16
)

// MaxFusedLoops bounds the number of loops one fusion window may span:
// fused section tags occupy [TagFused, TagFused+MaxFusedLoops), which
// must stay below TagUser.
const MaxFusedLoops = int(TagUser - TagFused)

// FusedTag returns the section tag of window-loop k, panicking if k is
// outside the reserved fused-tag range.
func FusedTag(k int) Tag {
	if k < 0 || k >= MaxFusedLoops {
		panic(fmt.Sprintf("machine: fused section index %d outside [0,%d)", k, MaxFusedLoops))
	}
	return TagFused + Tag(k)
}

// Message is one in-flight message.
type Message struct {
	From    int
	Tag     Tag
	Payload any
	Bytes   int
	// ArriveAt is the receiver-side arrival time on the virtual clock;
	// only the sim transport uses it.
	ArriveAt float64
}

// Machine is a P-node multicomputer over some Transport.
type Machine struct {
	params Params
	p      int
	tr     Transport
	// fs caches the transport's optional FusedSender capability so the
	// per-section send path skips the type assertion.
	fs    FusedSender
	nodes []*Node

	scratchMu sync.Mutex
	scratch   map[any]any
}

// NewWith builds a machine with p nodes over the given transport.
// The params are the cost model virtual-time backends charge (real
// backends keep them only for reporting).  Most callers use the
// backend constructors sim.New / wallclock.New instead.
func NewWith(p int, params Params, tr Transport) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need at least one node, got %d", p)
	}
	m := &Machine{params: params, p: p, tr: tr}
	m.fs, _ = tr.(FusedSender)
	ca, _ := tr.(ClockAddr)
	m.nodes = make([]*Node, p)
	for i := 0; i < p; i++ {
		m.nodes[i] = &Node{
			id:      i,
			m:       m,
			virtual: tr.Virtual(),
			phases:  map[string]float64{},
		}
		if ca != nil && tr.Virtual() {
			m.nodes[i].clock = ca.ClockAddr(i)
		}
	}
	return m, nil
}

// P returns the number of nodes.
func (m *Machine) P() int { return m.p }

// Params returns the cost model in effect.
func (m *Machine) Params() Params { return m.params }

// Backend returns the transport's name ("sim", "wall").
func (m *Machine) Backend() string { return m.tr.Backend() }

// Transport returns the node runtime, for backend-specific tests.
func (m *Machine) Transport() Transport { return m.tr }

// Dim returns the hypercube dimension ⌈log2 P⌉.
func (m *Machine) Dim() int {
	d := 0
	for (1 << uint(d)) < m.p {
		d++
	}
	return d
}

// Node returns node i (valid after NewWith, including between Runs).
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Scratch returns the machine-lifetime value stored under key,
// creating it with mk on first use.  Higher layers use it for caches
// that must live exactly as long as the machine (e.g. the darray
// redistribution-plan store) without resorting to package-global state
// that would outlive every machine of the process.  Safe for
// concurrent use by node programs.
func (m *Machine) Scratch(key any, mk func() any) any {
	m.scratchMu.Lock()
	defer m.scratchMu.Unlock()
	if m.scratch == nil {
		m.scratch = map[any]any{}
	}
	v, ok := m.scratch[key]
	if !ok {
		v = mk()
		m.scratch[key] = v
	}
	return v
}

// Run executes prog on every node concurrently (SPMD) and returns when
// all nodes finish.  On real (non-virtual) transports each node
// goroutine is pinned to an OS thread for the duration of the program,
// so P nodes genuinely occupy up to P cores.  It panics with the
// node's panic value if any node program panics, after all other nodes
// have been released.
func (m *Machine) Run(prog func(n *Node)) {
	m.tr.Begin()
	pin := !m.tr.Virtual()
	var wg sync.WaitGroup
	panics := make([]any, m.p)
	for i := 0; i < m.p; i++ {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			if pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			defer func() {
				m.tr.Done(n.id)
				if r := recover(); r != nil {
					panics[n.id] = r
					m.tr.Poison()
				}
			}()
			prog(n)
		}(m.nodes[i])
	}
	wg.Wait()
	for id, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("machine: node %d panicked: %v", id, r))
		}
	}
}

// MaxClock returns the maximum elapsed time over all nodes — the
// elapsed time of the program (virtual seconds on the simulator, real
// seconds on wall-clock backends).
func (m *Machine) MaxClock() float64 { return m.tr.MaxElapsed() }

// MaxPhase returns the maximum accumulated time of a named phase over
// all nodes.  The paper reports per-phase times this way (the slowest
// processor determines elapsed time).
func (m *Machine) MaxPhase(name string) float64 {
	max := 0.0
	for _, n := range m.nodes {
		if t := n.phases[name]; t > max {
			max = t
		}
	}
	return max
}

// Reset zeroes all clocks, phase timers, stats and message queues so
// the machine can run another program.
func (m *Machine) Reset() {
	for _, n := range m.nodes {
		n.phases = map[string]float64{}
		n.phaseStack = n.phaseStack[:0]
		n.stats = Stats{}
	}
	m.tr.Reset()
}

// Stats counts communication/computation events on a node, for tests
// and reports.  Counts are identical across backends — schedules
// prescribe the traffic, the transport only moves it — which is what
// lets the backend-equivalence tests pin sim and wall-clock runs
// against each other.  MsgsSent/BytesSent count every message; the
// Redist* fields count the subset sent under TagRedist, so
// redistribution traffic is attributed distinctly from forall
// (executor/inspector) traffic rather than being silently absorbed
// into the loop totals.  The Fused* fields count cross-loop aggregated
// messages (first sections sent under the TagFused range): one fused
// message replaces several per-loop messages to the same peer, so
// MsgsSent drops while FusedMsgsSent counts what remains.
type Stats struct {
	MsgsSent     int
	BytesSent    int
	MsgsReceived int
	FlopCount    int64

	RedistMsgsSent  int
	RedistBytesSent int

	FusedMsgsSent  int
	FusedBytesSent int
}

// Sub returns the field-wise difference s - o: the events that
// happened between two snapshots (e.g. across one loop replay, which
// is how kalibench's commvec table counts messages per execution).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MsgsSent:        s.MsgsSent - o.MsgsSent,
		BytesSent:       s.BytesSent - o.BytesSent,
		MsgsReceived:    s.MsgsReceived - o.MsgsReceived,
		FlopCount:       s.FlopCount - o.FlopCount,
		RedistMsgsSent:  s.RedistMsgsSent - o.RedistMsgsSent,
		RedistBytesSent: s.RedistBytesSent - o.RedistBytesSent,
		FusedMsgsSent:   s.FusedMsgsSent - o.FusedMsgsSent,
		FusedBytesSent:  s.FusedBytesSent - o.FusedBytesSent,
	}
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MsgsSent:        s.MsgsSent + o.MsgsSent,
		BytesSent:       s.BytesSent + o.BytesSent,
		MsgsReceived:    s.MsgsReceived + o.MsgsReceived,
		FlopCount:       s.FlopCount + o.FlopCount,
		RedistMsgsSent:  s.RedistMsgsSent + o.RedistMsgsSent,
		RedistBytesSent: s.RedistBytesSent + o.RedistBytesSent,
		FusedMsgsSent:   s.FusedMsgsSent + o.FusedMsgsSent,
		FusedBytesSent:  s.FusedBytesSent + o.FusedBytesSent,
	}
}

// TotalStats sums the event counters over all nodes — the machine-wide
// message count and bytes moved.  Call it only while no node program
// is running.
func (m *Machine) TotalStats() Stats {
	var t Stats
	for _, n := range m.nodes {
		t = t.Add(n.stats)
	}
	return t
}

// Node is one processor of the machine.  All methods must be called
// only from within the node's own program goroutine.
type Node struct {
	id      int
	m       *Machine
	virtual bool // cached Transport.Virtual: skip cost arithmetic on real backends
	// clock, when non-nil, addresses this node's virtual-clock
	// accumulator directly (Transport implements ClockAddr), so the
	// per-operator charges on the body hot path skip the interface
	// dispatch.  The arithmetic is the same either way.
	clock *float64

	phases     map[string]float64
	phaseStack []phaseFrame

	stats Stats
}

type phaseFrame struct {
	name  string
	start float64
}

// ID returns the node id in [0, P).
func (n *Node) ID() int { return n.id }

// P returns the machine size.
func (n *Node) P() int { return n.m.p }

// Machine returns the owning machine.
func (n *Node) Machine() *Machine { return n.m }

// Clock returns the node's current elapsed time in seconds (virtual
// on the simulator, monotonic wall time on real backends).
func (n *Node) Clock() float64 { return n.m.tr.Elapsed(n.id) }

// Stats returns the node's event counters.
func (n *Node) Stats() Stats { return n.stats }

// Advance adds raw seconds of modeled time (a no-op on real backends,
// where operations take real time instead).
func (n *Node) Advance(seconds float64) {
	if seconds < 0 {
		panic("machine: negative time advance")
	}
	n.advance(seconds)
}

// advance adds modeled seconds through the direct clock pointer when
// the transport exposes one, else through the Transport interface.
func (n *Node) advance(seconds float64) {
	if n.clock != nil {
		*n.clock += seconds
		return
	}
	n.m.tr.Advance(n.id, seconds)
}

// Charge advances the clock by a combination of primitive costs; see
// Params for the meaning of each count.  Real backends skip the cost
// arithmetic — the operation being charged just happened for real —
// but the flop count is recorded on every backend.
func (n *Node) Charge(c Cost) {
	n.stats.FlopCount += int64(c.Flops)
	if !n.virtual {
		return
	}
	p := &n.m.params
	n.advance(float64(c.Flops)*p.Flop +
		float64(c.MemRefs)*p.MemRef +
		float64(c.LoopIters)*p.LoopIter +
		float64(c.Calls)*p.Call +
		float64(c.RefChecks)*p.RefCheck +
		float64(c.LocTests)*p.LocTest +
		float64(c.ListInserts)*p.ListInsert)
}

// The single-category fast charges below are bit-identical to the
// general Charge with the same counts — in Charge's sum every other
// term contributes exactly +0.0, which never changes the value of a
// non-negative cost — but skip the six dead multiplies.  They exist
// for the per-element body path (one charge per operator and per
// reference), where Charge itself showed up in profiles.

// ChargeFlops charges k flops as one advance of k*Flop seconds,
// exactly like Charge(Cost{Flops: k}).
func (n *Node) ChargeFlops(k int) {
	n.stats.FlopCount += int64(k)
	if n.virtual {
		n.advance(float64(k) * n.m.params.Flop)
	}
}

// ChargeFlopsUnit charges k single-flop operations as k separate unit
// advances — bit-identical to k calls of Charge(Cost{Flops: 1}), NOT
// to ChargeFlops(k): the clock is a float accumulator, so both the
// unit size and the accumulation order are observable.  The bytecode
// VM uses it to replay the tree-walker's per-operator charges.
func (n *Node) ChargeFlopsUnit(k int) {
	n.stats.FlopCount += int64(k)
	if !n.virtual {
		return
	}
	f := n.m.params.Flop
	if c := n.clock; c != nil {
		for i := 0; i < k; i++ {
			*c += f
		}
		return
	}
	for i := 0; i < k; i++ {
		n.m.tr.Advance(n.id, f)
	}
}

// ChargeMemRefs charges k memory references, exactly like
// Charge(Cost{MemRefs: k}).
func (n *Node) ChargeMemRefs(k int) {
	if n.virtual {
		n.advance(float64(k) * n.m.params.MemRef)
	}
}

// ChargeLocTest charges one locality test, exactly like
// Charge(Cost{LocTests: 1}).
func (n *Node) ChargeLocTest() {
	if n.virtual {
		n.advance(n.m.params.LocTest)
	}
}

// Cost is a bundle of primitive-operation counts for Charge.
type Cost struct {
	Flops       int
	MemRefs     int
	LoopIters   int
	Calls       int
	RefChecks   int
	LocTests    int
	ListInserts int
}

// ChargeSearch charges one sorted-range binary search over r ranges:
// a procedure call plus ⌈log2(r+1)⌉ probes (the paper's O(log r)
// access, Figure 5 discussion).
func (n *Node) ChargeSearch(r int) {
	if !n.virtual {
		return
	}
	p := &n.m.params
	probes := 1
	for (1 << uint(probes)) <= r {
		probes++
	}
	n.advance(p.SearchBase + float64(probes)*p.SearchProbe)
}

// Send transmits payload to node `to`.  nbytes is the wire size used
// for cost accounting.  On the simulator the sender is charged the
// startup plus copy cost and the message arrives after the modeled
// network latency; on real backends the transfer happens through
// shared memory and takes however long it takes.
func (n *Node) Send(to int, tag Tag, payload any, nbytes int) {
	if to == n.id {
		panic("machine: send to self")
	}
	n.stats.MsgsSent++
	n.stats.BytesSent += nbytes
	if tag == TagRedist {
		n.stats.RedistMsgsSent++
		n.stats.RedistBytesSent += nbytes
	}
	n.m.tr.Send(n.id, to, Message{
		From:    n.id,
		Tag:     tag,
		Payload: payload,
		Bytes:   nbytes,
	})
}

// ISend posts payload for delivery to node `to` without blocking on
// the transfer: the split-phase executor's nonblocking send.  Event
// counts are identical to Send — schedules prescribe the same traffic
// either way — but the wire time leaves the sender's critical path.
// On the simulator the sender is charged only the send startup, and
// the per-byte wire time is serialized on the node's network
// interface, overlapping whatever the sender computes next; on real
// backends every send already enqueues without rendezvous, so ISend
// and Send coincide.
func (n *Node) ISend(to int, tag Tag, payload any, nbytes int) {
	if to == n.id {
		panic("machine: send to self")
	}
	n.stats.MsgsSent++
	n.stats.BytesSent += nbytes
	if tag == TagRedist {
		n.stats.RedistMsgsSent++
		n.stats.RedistBytesSent += nbytes
	}
	n.m.tr.ISend(n.id, to, Message{
		From:    n.id,
		Tag:     tag,
		Payload: payload,
		Bytes:   nbytes,
	})
}

// ISendFused posts one section of a cross-loop aggregated message.
// A fusion window sends each peer one logical message made of per-loop
// sections; the section payloads are bit-identical to the per-loop
// messages an unfused run would send, but only the first section is a
// real message start: it pays the send startup and counts in MsgsSent
// (and FusedMsgsSent).  Continuation sections extend the same transfer
// — their bytes append to the sender's network-interface timeline with
// no new startup and no new message count, which is exactly why the
// fused sender's clock can only shrink relative to the unfused one.
func (n *Node) ISendFused(to int, tag Tag, payload any, nbytes int, first bool) {
	if to == n.id {
		panic("machine: send to self")
	}
	n.stats.BytesSent += nbytes
	n.stats.FusedBytesSent += nbytes
	if first {
		n.stats.MsgsSent++
		n.stats.FusedMsgsSent++
	}
	msg := Message{From: n.id, Tag: tag, Payload: payload, Bytes: nbytes}
	if n.m.fs != nil {
		n.m.fs.ISendPart(n.id, to, msg, first)
		return
	}
	n.m.tr.ISend(n.id, to, msg)
}

// Recv blocks until a message from `from` with the given tag is
// available and returns it (advancing the virtual clock to its arrival
// time and charging receive overhead on the simulator).
func (n *Node) Recv(from int, tag Tag) Message {
	msg := n.m.tr.Recv(n.id, from, tag)
	n.stats.MsgsReceived++
	return msg
}

// Request identifies one posted receive: the (sender, tag) pair a
// Wait/WaitAny completes.  Requests are plain values so schedules can
// preallocate them per peer and replay without allocating.
type Request struct {
	From int
	Tag  Tag
}

// IRecv posts a receive for the (from, tag) stream and returns the
// request to pass to Wait or WaitAny.  Posting is free — matching
// happens at completion time — so this is a pure constructor; it
// exists so split-phase code reads as post-sends / post-receives /
// compute / wait.
func (n *Node) IRecv(from int, tag Tag) Request {
	return Request{From: from, Tag: tag}
}

// Wait completes one posted receive, blocking until its message is
// available (clock rules as in Recv).
func (n *Node) Wait(r Request) Message {
	msg := n.m.tr.Recv(n.id, r.From, r.Tag)
	n.stats.MsgsReceived++
	return msg
}

// WaitAny completes one not-yet-done posted receive among reqs,
// returning its index and message; the caller marks done[i] and loops
// until every request has completed.  On wall-clock backends the
// request that physically completes first is returned, so a boundary
// pass blocks per-peer only as needed; the simulator completes
// requests in slice order, which keeps virtual clocks deterministic.
// done must be parallel to reqs; at least one entry must be unset.
func (n *Node) WaitAny(reqs []Request, done []bool) (int, Message) {
	i, msg := n.m.tr.WaitAny(n.id, reqs, done)
	n.stats.MsgsReceived++
	return i, msg
}

// WaitAnyFused is WaitAny for fused-section streams: completion order
// and clock rules are identical, but only a fused message's first
// section counts in MsgsReceived — continuation sections complete as
// parts of the same logical message.  firsts must be parallel to reqs.
func (n *Node) WaitAnyFused(reqs []Request, done []bool, firsts []bool) (int, Message) {
	i, msg := n.m.tr.WaitAny(n.id, reqs, done)
	if firsts[i] {
		n.stats.MsgsReceived++
	}
	return i, msg
}

// RecvFromEach receives exactly one message with the given tag from
// every node in froms, returning them indexed as in froms.  On the
// simulator, arrival processing is deterministic: clock effects are
// applied in the order of the froms slice regardless of physical
// arrival order.  On wall-clock backends messages are consumed in
// completion order (WaitAny), so one late peer no longer serializes
// the drain behind the peers before it in the slice.
func (n *Node) RecvFromEach(tag Tag, froms []int) []Message {
	out := make([]Message, len(froms))
	reqs := make([]Request, len(froms))
	done := make([]bool, len(froms))
	for i, f := range froms {
		reqs[i] = Request{From: f, Tag: tag}
	}
	for k := 0; k < len(froms); k++ {
		i, msg := n.WaitAny(reqs, done)
		done[i] = true
		out[i] = msg
	}
	return out
}

// Barrier synchronizes all nodes (on the simulator, afterwards every
// clock equals the pre-barrier maximum plus the collective cost).
func (n *Node) Barrier() { n.m.tr.Barrier(n.id) }

// AllReduce combines one float64 from every node with op ("sum",
// "max", "min", "and" — "and" treats nonzero as true) and returns the
// combined value on every node.  Clocks synchronize like a barrier.
// The combination order is by node id on every backend, so results
// are bit-identical across backends.
func (n *Node) AllReduce(x float64, op string) float64 {
	return n.m.tr.AllReduce(n.id, x, op)
}

// StartPhase begins accumulating elapsed time under the given name.
// Phases may nest; time is attributed to every open phase.
func (n *Node) StartPhase(name string) {
	n.phaseStack = append(n.phaseStack, phaseFrame{name: name, start: n.m.tr.Elapsed(n.id)})
}

// StopPhase ends the innermost phase, which must match name.
func (n *Node) StopPhase(name string) {
	if len(n.phaseStack) == 0 {
		panic("machine: StopPhase without StartPhase")
	}
	top := n.phaseStack[len(n.phaseStack)-1]
	if top.name != name {
		panic(fmt.Sprintf("machine: StopPhase(%q) but innermost phase is %q", name, top.name))
	}
	n.phaseStack = n.phaseStack[:len(n.phaseStack)-1]
	n.phases[name] += n.m.tr.Elapsed(n.id) - top.start
}

// PhaseTime returns the accumulated time of a phase on this node.
func (n *Node) PhaseTime(name string) float64 { return n.phases[name] }

// ReduceByID combines per-node values in node-id order with op; it is
// the shared deterministic reduction kernel backends use to implement
// AllReduce so that results are bit-identical across backends.
func ReduceByID(vals []float64, op string) float64 {
	acc := vals[0]
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		switch op {
		case "sum":
			acc += v
		case "max":
			if v > acc {
				acc = v
			}
		case "min":
			if v < acc {
				acc = v
			}
		case "and":
			if acc != 0 && v != 0 {
				acc = 1
			} else {
				acc = 0
			}
		default:
			panic(fmt.Sprintf("machine: unknown reduction op %q", op))
		}
	}
	return acc
}
