package wallclock

import "sync"

// notify is one node's receive-side doorbell: a sequence number bumped
// by every push toward the node, with a condition variable the node's
// WaitAny sleeps on.  The snapshot/scan/wait(seq) protocol cannot lose
// a wakeup — a push between the snapshot and the wait leaves seq ahead
// of the snapshot, so wait returns immediately and the drain rescans.
type notify struct {
	mu       sync.Mutex
	cond     *sync.Cond
	seq      uint64
	poisoned bool
}

func (n *notify) init() { n.cond = sync.NewCond(&n.mu) }

// bump records one new push toward this node and wakes its drain.
func (n *notify) bump() {
	n.mu.Lock()
	n.seq++
	n.cond.Signal()
	n.mu.Unlock()
}

// snapshot returns the current sequence number (panicking if the
// machine was poisoned, so a drain never spins on a dead run).
func (n *notify) snapshot() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.poisoned {
		panic("machine: queue poisoned by peer panic")
	}
	return n.seq
}

// wait blocks until the sequence number moves past seq or the machine
// is poisoned (then it panics, releasing the drain to unwind).
func (n *notify) wait(seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.seq == seq && !n.poisoned {
		n.cond.Wait()
	}
	if n.poisoned {
		panic("machine: queue poisoned by peer panic")
	}
}

// poison releases all waiters; they panic on wake.
func (n *notify) poison() {
	n.mu.Lock()
	n.poisoned = true
	n.cond.Broadcast()
	n.mu.Unlock()
}

func (n *notify) reset() {
	n.mu.Lock()
	n.seq = 0
	n.poisoned = false
	n.mu.Unlock()
}
