package wallclock

import (
	"sync"

	"kali/internal/machine"
)

// queue is an unbounded FIFO for one ordered sender→receiver pair.
// One goroutine pushes (the sender) and one pops (the receiver), but
// Poison may broadcast from a third, so a mutex+cond keeps it simple
// and race-free.  The backing array is reused once the queue drains
// (head catches up with the tail), so steady-state schedule replay —
// the same message pattern every round — allocates nothing here after
// the first round establishes the high-water mark.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []machine.Message
	head     int
	poisoned bool
}

func (q *queue) init() { q.cond = sync.NewCond(&q.mu) }

func (q *queue) push(msg machine.Message) {
	q.mu.Lock()
	q.items = append(q.items, msg)
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks until a message with the given tag is available and
// removes it.  Tags on one pair almost always arrive in request
// order, but a mismatch (e.g. redistribution traffic queued behind
// loop traffic) is handled by scanning past non-matching messages
// without consuming them.
func (q *queue) pop(tag machine.Tag) machine.Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	scanned := q.head
	for {
		if q.poisoned {
			panic("machine: queue poisoned by peer panic")
		}
		for ; scanned < len(q.items); scanned++ {
			if q.items[scanned].Tag == tag {
				return q.takeLocked(scanned)
			}
		}
		q.cond.Wait()
	}
}

// tryPop is pop without the wait: it removes and returns the first
// queued message with the given tag if one is present right now.  The
// completion-order drain (WaitAny) polls every outstanding peer with
// it and sleeps on the receiver's notify cond — not on any one
// queue's — when nothing is ready.
func (q *queue) tryPop(tag machine.Tag) (machine.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.poisoned {
		panic("machine: queue poisoned by peer panic")
	}
	for i := q.head; i < len(q.items); i++ {
		if q.items[i].Tag == tag {
			return q.takeLocked(i), true
		}
	}
	return machine.Message{}, false
}

// takeLocked removes and returns the message at index i (mu held).
func (q *queue) takeLocked(i int) machine.Message {
	msg := q.items[i]
	if i == q.head {
		q.items[q.head] = machine.Message{} // drop payload reference
		q.head++
	} else {
		copy(q.items[i:], q.items[i+1:])
		q.items[len(q.items)-1] = machine.Message{}
		q.items = q.items[:len(q.items)-1]
	}
	if q.head == len(q.items) {
		// Drained: rewind so the backing array is reused.
		q.items = q.items[:0]
		q.head = 0
	}
	return msg
}

func (q *queue) poison() {
	q.mu.Lock()
	q.poisoned = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *queue) reset() {
	q.mu.Lock()
	for i := range q.items {
		q.items[i] = machine.Message{}
	}
	q.items = q.items[:0]
	q.head = 0
	q.poisoned = false
	q.mu.Unlock()
}
