package wallclock

import (
	"sync/atomic"
	"testing"

	"kali/internal/machine"
)

func TestBackendName(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	if m.Backend() != "wall" {
		t.Fatalf("Backend() = %q, want wall", m.Backend())
	}
	if m.Transport().Virtual() {
		t.Fatal("wall must not be virtual")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, machine.Ideal()); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
}

func TestRunSPMD(t *testing.T) {
	m := MustNew(8, machine.Ideal())
	var total int64
	m.Run(func(n *machine.Node) {
		atomic.AddInt64(&total, int64(n.ID()))
	})
	if total != 28 {
		t.Fatalf("all nodes should run exactly once; sum = %d", total)
	}
}

func TestSendRecvDelivers(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, []float64{1, 2, 3}, 24)
		} else {
			msg := n.Recv(0, machine.TagUser)
			data := msg.Payload.([]float64)
			if len(data) != 3 || data[2] != 3 {
				t.Errorf("payload corrupted: %v", data)
			}
			if msg.Bytes != 24 || msg.From != 0 {
				t.Errorf("metadata wrong: %+v", msg)
			}
		}
	})
}

func TestRecvMatchesTagOutOfOrder(t *testing.T) {
	// The receiver asks for the second tag first: the queue must scan
	// past the non-matching message without consuming it.
	m := MustNew(2, machine.Ideal())
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, "first", 1)
			n.Send(1, machine.TagUser+1, "second", 1)
		} else {
			if got := n.Recv(0, machine.TagUser+1).Payload.(string); got != "second" {
				t.Errorf("tag+1: got %q", got)
			}
			if got := n.Recv(0, machine.TagUser).Payload.(string); got != "first" {
				t.Errorf("tag: got %q", got)
			}
		}
	})
}

func TestPairOrderPreserved(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	const k = 100
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			for i := 0; i < k; i++ {
				n.Send(1, machine.TagUser, i, 8)
			}
		} else {
			for i := 0; i < k; i++ {
				if got := n.Recv(0, machine.TagUser).Payload.(int); got != i {
					t.Fatalf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestManySendsDoNotBlock(t *testing.T) {
	// Queues are unbounded: a sender can enqueue far more messages
	// than any fixed mailbox capacity before the receiver starts.
	m := MustNew(2, machine.Ideal())
	const k = 5000
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			for i := 0; i < k; i++ {
				n.Send(1, machine.TagUser, nil, 1)
			}
			n.Barrier()
		} else {
			n.Barrier() // receive nothing until all sends are done
			for i := 0; i < k; i++ {
				n.Recv(0, machine.TagUser)
			}
		}
	})
}

func TestChargeAndAdvanceAreNoOps(t *testing.T) {
	m := MustNew(1, machine.NCUBE7())
	m.Run(func(n *machine.Node) {
		n.Charge(machine.Cost{Flops: 1e6, MemRefs: 1e6, Calls: 1e6})
		n.ChargeSearch(1024)
		n.Advance(0) // zero is fine; modeled time is ignored anyway
		st := n.Stats()
		if st.FlopCount != 1e6 {
			t.Errorf("flops must still be counted: %d", st.FlopCount)
		}
	})
	// A machine that just did "a million flops" in modeled terms must
	// report real elapsed time (tiny), not cost-model time (~10 s on
	// the NCUBE model).
	if m.MaxClock() > 1.0 {
		t.Fatalf("modeled charges leaked into wall-clock time: %g s", m.MaxClock())
	}
}

func TestElapsedIsRealTime(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	m.Run(func(n *machine.Node) {
		n.Barrier()
	})
	e := m.MaxClock()
	if e <= 0 {
		t.Fatalf("elapsed must be positive real time, got %g", e)
	}
	if e > 10 {
		t.Fatalf("elapsed implausibly large: %g s", e)
	}
}

func TestPhaseTimersMeasure(t *testing.T) {
	m := MustNew(1, machine.Ideal())
	m.Run(func(n *machine.Node) {
		n.StartPhase("work")
		for i := 0; i < 1000; i++ {
			n.Charge(machine.Cost{Flops: 1})
		}
		n.StopPhase("work")
	})
	if m.MaxPhase("work") < 0 {
		t.Fatal("phase time must be non-negative")
	}
}

func TestAllReduceOps(t *testing.T) {
	m := MustNew(4, machine.Ideal())
	sums := make([]float64, 4)
	maxs := make([]float64, 4)
	mins := make([]float64, 4)
	ands := make([]float64, 4)
	m.Run(func(n *machine.Node) {
		v := float64(n.ID() + 1)
		sums[n.ID()] = n.AllReduce(v, "sum")
		maxs[n.ID()] = n.AllReduce(v, "max")
		mins[n.ID()] = n.AllReduce(v, "min")
		b := 1.0
		if n.ID() == 2 {
			b = 0
		}
		ands[n.ID()] = n.AllReduce(b, "and")
	})
	for id := 0; id < 4; id++ {
		if sums[id] != 10 || maxs[id] != 4 || mins[id] != 1 || ands[id] != 0 {
			t.Fatalf("node %d: sum=%g max=%g min=%g and=%g", id, sums[id], maxs[id], mins[id], ands[id])
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	m.Run(func(n *machine.Node) {
		for i := 0; i < 50; i++ {
			n.Barrier()
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	m := MustNew(4, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected node panic to propagate")
		}
	}()
	m.Run(func(n *machine.Node) {
		if n.ID() == 2 {
			panic("boom")
		}
		n.Barrier() // others must be released, not deadlock
	})
}

func TestPoisonReleasesBlockedRecv(t *testing.T) {
	// A node blocked in Recv on a message that will never come must be
	// released when a peer panics — otherwise Run deadlocks.
	m := MustNew(2, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			panic("boom")
		}
		n.Recv(0, machine.TagUser) // never sent
	})
}

func TestResetReusable(t *testing.T) {
	m := MustNew(2, machine.Ideal())
	for round := 0; round < 3; round++ {
		m.Run(func(n *machine.Node) {
			if n.ID() == 0 {
				n.Send(1, machine.TagUser, round, 8)
			} else {
				if got := n.Recv(0, machine.TagUser).Payload.(int); got != round {
					t.Errorf("round %d: got %d", round, got)
				}
			}
		})
		m.Reset()
	}
}

func TestStatsMatchSim(t *testing.T) {
	// The same program must produce identical event counts on both
	// backends; only the clocks differ.
	prog := func(n *machine.Node) {
		if n.ID() == 0 {
			n.Send(1, machine.TagUser, nil, 100)
			n.Send(1, machine.TagRedist, nil, 50)
		} else {
			n.Recv(0, machine.TagUser)
			n.Recv(0, machine.TagRedist)
		}
		n.Barrier()
	}
	m := MustNew(2, machine.Ideal())
	m.Run(prog)
	st := m.TotalStats()
	want := machine.Stats{MsgsSent: 2, BytesSent: 150, MsgsReceived: 2,
		RedistMsgsSent: 1, RedistBytesSent: 50}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}
