package wallclock

import (
	"testing"
	"time"

	"kali/internal/machine"
)

// TestWaitAnyCompletionOrder: the wall-clock drain must complete
// whichever peer's message physically arrives first.  Node 1 only
// sends after node 0 has consumed node 2's message, so a fixed-order
// drain (receive from 1, then 2) would deadlock here; WaitAny
// returning node 2's request first is what breaks the cycle.
func TestWaitAnyCompletionOrder(t *testing.T) {
	m := MustNew(3, machine.Ideal())
	gate := make(chan struct{})
	firstIdx := -1
	m.Run(func(n *machine.Node) {
		switch n.ID() {
		case 0:
			reqs := []machine.Request{
				n.IRecv(1, machine.TagUser),
				n.IRecv(2, machine.TagUser),
			}
			done := make([]bool, 2)
			i, _ := n.WaitAny(reqs, done)
			done[i] = true
			firstIdx = i
			close(gate) // node 2's message consumed; release node 1
			n.WaitAny(reqs, done)
		case 1:
			<-gate
			n.Send(0, machine.TagUser, nil, 8)
		case 2:
			n.Send(0, machine.TagUser, nil, 8)
		}
	})
	if firstIdx != 1 {
		t.Fatalf("first completed request %d, want 1 (node 2's message arrived first)", firstIdx)
	}
}

// TestRecvFromEachOutOfOrderArrival: RecvFromEach consumes messages in
// completion order on this backend, but its results stay indexed by
// the froms slice regardless of arrival order.
func TestRecvFromEachOutOfOrderArrival(t *testing.T) {
	m := MustNew(4, machine.Ideal())
	var got [3]int
	m.Run(func(n *machine.Node) {
		if n.ID() == 0 {
			msgs := n.RecvFromEach(machine.TagUser, []int{1, 2, 3})
			for i, msg := range msgs {
				got[i] = msg.Payload.(int)
			}
			return
		}
		// Stagger sends in reverse node order: 3 first, 1 last.
		time.Sleep(time.Duration(3-n.ID()) * 5 * time.Millisecond)
		n.Send(0, machine.TagUser, 11*n.ID(), 8)
	})
	if got != [3]int{11, 22, 33} {
		t.Fatalf("RecvFromEach results %v, want [11 22 33] (indexed by froms)", got)
	}
}
