// Package wallclock is the real shared-memory backend of the machine:
// nodes are goroutines pinned to OS threads, messages move through
// per-pair in-memory queues, and elapsed time is measured with the
// host's monotonic clock.  Modeled time charges (Advance, Charge) are
// no-ops — the operations being charged just happened for real.
//
// The same compiled schedules the paper's inspector/executor builds
// (§3) run here unmodified; only the node runtime differs, turning
// the simulator's predicted speedups (§4, Figures 7–10) into measured
// ones.  Message queues are
// unbounded (a send never blocks), per ordered sender→receiver pair,
// and reuse their backing arrays once drained, so steady-state
// schedule replay allocates nothing in the transport.
package wallclock

import (
	"time"

	"kali/internal/machine"
)

// transport is the wall-clock machine.Transport.
type transport struct {
	p int

	// queues[to*p+from] carries messages from `from` to `to`.
	queues []queue

	// notify[me] wakes node me's completion-order drain: every push
	// toward me bumps its sequence number, so WaitAny can poll all
	// outstanding peers and sleep on one condition variable instead of
	// committing to a single queue.
	notify []notify

	barrier    *barrier
	reduceVals []float64

	epoch time.Time
	// finished[me] freezes node me's elapsed time when its program
	// returns, so MaxElapsed is stable after the run.  Written by node
	// me in Done, read after Machine.Run's WaitGroup (happens-before).
	finished []float64
	done     []bool
}

// New builds a wall-clock machine with p nodes.  The params are kept
// for reporting only (machine name in tables); no cost is ever
// charged from them.
func New(p int, params machine.Params) (*machine.Machine, error) {
	tr := &transport{
		p:          p,
		barrier:    newBarrier(p),
		reduceVals: make([]float64, maxInt(p, 0)),
		finished:   make([]float64, maxInt(p, 0)),
		done:       make([]bool, maxInt(p, 0)),
	}
	if p > 0 {
		tr.queues = make([]queue, p*p)
		for i := range tr.queues {
			tr.queues[i].init()
		}
		tr.notify = make([]notify, p)
		for i := range tr.notify {
			tr.notify[i].init()
		}
	}
	return machine.NewWith(p, params, tr)
}

// MustNew is New that panics on error.
func MustNew(p int, params machine.Params) *machine.Machine {
	m, err := New(p, params)
	if err != nil {
		panic(err)
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (t *transport) Backend() string { return "wall" }
func (t *transport) Virtual() bool   { return false }

func (t *transport) Begin() {
	t.epoch = time.Now()
	for i := range t.done {
		t.done[i] = false
		t.finished[i] = 0
	}
}

func (t *transport) Done(me int) {
	t.finished[me] = time.Since(t.epoch).Seconds()
	t.done[me] = true
}

func (t *transport) Elapsed(me int) float64 {
	if t.done[me] {
		return t.finished[me]
	}
	return time.Since(t.epoch).Seconds()
}

func (t *transport) MaxElapsed() float64 {
	max := 0.0
	for me := range t.finished {
		if e := t.Elapsed(me); e > max {
			max = e
		}
	}
	return max
}

// Advance is a no-op: real operations take real time.
func (t *transport) Advance(me int, seconds float64) {}

func (t *transport) Send(me, to int, msg machine.Message) {
	t.queues[to*t.p+me].push(msg)
	t.notify[to].bump()
}

// ISend is Send: pushes already complete without rendezvous on this
// backend, so the nonblocking semantics hold for free.  The real
// overlap is on the receive side — WaitAny lets the boundary pass
// consume whichever peer finishes first instead of blocking on a
// fixed order.
func (t *transport) ISend(me, to int, msg machine.Message) {
	t.Send(me, to, msg)
}

func (t *transport) Recv(me, from int, tag machine.Tag) machine.Message {
	return t.queues[me*t.p+from].pop(tag)
}

// WaitAny polls every outstanding request's queue and returns the
// first message found; if none is ready it sleeps on the node's
// notify cond until a new push (or Poison) arrives, then rescans.
// Completion order is physical arrival order, so one slow peer never
// blocks the drain of messages that are already here.  Steady-state
// replay allocates nothing here.
func (t *transport) WaitAny(me int, reqs []machine.Request, done []bool) (int, machine.Message) {
	n := &t.notify[me]
	for {
		seq := n.snapshot()
		any := false
		for i := range reqs {
			if done[i] {
				continue
			}
			any = true
			if msg, ok := t.queues[me*t.p+reqs[i].From].tryPop(reqs[i].Tag); ok {
				return i, msg
			}
		}
		if !any {
			panic("wallclock: WaitAny with no outstanding request")
		}
		n.wait(seq)
	}
}

func (t *transport) Barrier(me int) { t.barrier.wait() }

// AllReduce combines one float64 from every node in node-id order
// (the same deterministic order as the simulator, so results are
// bit-identical across backends).
func (t *transport) AllReduce(me int, x float64, op string) float64 {
	t.reduceVals[me] = x
	t.barrier.wait() // all writes published (barrier's mutex orders them)
	acc := machine.ReduceByID(t.reduceVals, op)
	// Second rendezvous so no node races ahead and overwrites the
	// scratch values of a subsequent AllReduce.
	t.barrier.wait()
	return acc
}

func (t *transport) Poison() {
	t.barrier.poison()
	for i := range t.queues {
		t.queues[i].poison()
	}
	for i := range t.notify {
		t.notify[i].poison()
	}
}

func (t *transport) Reset() {
	t.barrier.reset()
	for i := range t.queues {
		t.queues[i].reset()
	}
	for i := range t.notify {
		t.notify[i].reset()
	}
	for i := range t.done {
		t.done[i] = false
		t.finished[i] = 0
	}
	t.epoch = time.Now()
}
