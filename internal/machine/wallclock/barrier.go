package wallclock

import "sync"

// barrier is a reusable counting barrier (no clock bookkeeping — real
// time passes on its own).  Generations make it reusable: a node of
// generation g sleeps until the barrier moves to g+1.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	p        int
	count    int
	gen      int
	poisoned bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// poison releases all waiters after a node panic so Run can unwind.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset clears the poison so a pooled machine can run another program
// after a node panic (all node goroutines have unwound by Reset time).
func (b *barrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.count = 0
	b.mu.Unlock()
}

// wait blocks until all p nodes arrive.
func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
	gen := b.gen
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
}
