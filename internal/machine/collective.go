package machine

import (
	"fmt"
	"sync"
)

// barrier is a reusable clock-synchronizing barrier.  The last node to
// arrive publishes the generation's maximum clock in releasedMax and
// resets the accumulator for the next generation; because every node
// participates in every barrier, a new generation cannot complete (and
// overwrite releasedMax) before all waiters of the previous generation
// have been released.
type barrier struct {
	mu          sync.Mutex
	cond        *sync.Cond
	p           int
	count       int
	gen         int
	maxClock    float64
	releasedMax float64
	poisoned    bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// poison releases all waiters after a node panic so Run can unwind.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// wait blocks until all p nodes arrive and returns the maximum clock
// among them.
func (b *barrier) wait(clock float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
	gen := b.gen
	if clock > b.maxClock {
		b.maxClock = clock
	}
	b.count++
	if b.count == b.p {
		b.releasedMax = b.maxClock
		b.maxClock = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.releasedMax
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("machine: barrier poisoned by peer panic")
	}
	return b.releasedMax
}

// collectiveCost returns the modeled time of one hypercube collective:
// Dim stages, each a small-message exchange of nbytes.
func (m *Machine) collectiveCost(nbytes int) float64 {
	d := m.Dim()
	if d == 0 {
		return 0
	}
	per := m.params.MsgStartup + float64(nbytes)*m.params.MsgPerByte +
		m.params.PerHop + m.params.RecvOverhead
	return float64(d) * per
}

// Barrier synchronizes all nodes; afterwards every clock equals the
// pre-barrier maximum plus the collective cost.
func (n *Node) Barrier() {
	max := n.m.barrier.wait(n.clock)
	n.clock = max + n.m.collectiveCost(8)
}

// AllReduce combines one float64 from every node with op ("sum",
// "max", "min", "and" — "and" treats nonzero as true) and returns the
// combined value on every node.  Clocks synchronize like a barrier.
func (n *Node) AllReduce(x float64, op string) float64 {
	m := n.m
	m.reduceMu.Lock()
	if m.reduceVals == nil {
		m.reduceVals = make([]float64, m.p)
	}
	m.reduceVals[n.id] = x
	m.reduceMu.Unlock()

	max := m.barrier.wait(n.clock)

	m.reduceMu.Lock()
	acc := m.reduceVals[0]
	for i := 1; i < m.p; i++ {
		v := m.reduceVals[i]
		switch op {
		case "sum":
			acc += v
		case "max":
			if v > acc {
				acc = v
			}
		case "min":
			if v < acc {
				acc = v
			}
		case "and":
			if acc != 0 && v != 0 {
				acc = 1
			} else {
				acc = 0
			}
		default:
			m.reduceMu.Unlock()
			panic(fmt.Sprintf("machine: unknown reduction op %q", op))
		}
	}
	m.reduceMu.Unlock()

	// Second rendezvous so no node races ahead and overwrites the
	// scratch values of a subsequent AllReduce.
	_ = m.barrier.wait(0)

	n.clock = max + m.collectiveCost(8)
	return acc
}
