package darray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// onEachNode runs f on every node of a P-node ideal machine.
func onEachNode(p int, f func(n *machine.Node)) {
	sim.MustNew(p, machine.Ideal()).Run(f)
}

func blockDist(n, p int) *dist.Dist {
	return dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, topology.MustGrid(p))
}

func TestNewSizes(t *testing.T) {
	d := blockDist(10, 4) // B=3: sizes 3,3,3,1
	want := []int{3, 3, 3, 1}
	onEachNode(4, func(n *machine.Node) {
		a := New("a", d, n)
		if a.LocalCount() != want[n.ID()] {
			t.Errorf("node %d local count = %d, want %d", n.ID(), a.LocalCount(), want[n.ID()])
		}
		if a.Size() != 10 || a.Rank() != 1 {
			t.Errorf("size/rank wrong")
		}
	})
}

func TestGetSetLocal(t *testing.T) {
	d := blockDist(12, 3)
	onEachNode(3, func(n *machine.Node) {
		a := New("a", d, n)
		for i := 1; i <= 12; i++ {
			if a.IsLocal(i) {
				a.Set(float64(i)*2, i)
			}
		}
		for i := 1; i <= 12; i++ {
			if a.IsLocal(i) {
				if got := a.Get(i); got != float64(i)*2 {
					t.Errorf("node %d: a[%d] = %g", n.ID(), i, got)
				}
				if got := a.Get1(i); got != float64(i)*2 {
					t.Errorf("node %d: Get1(%d) = %g", n.ID(), i, got)
				}
				if got := a.GetLinear(i); got != float64(i)*2 {
					t.Errorf("node %d: GetLinear(%d) = %g", n.ID(), i, got)
				}
			}
		}
	})
}

func TestNonlocalAccessPanics(t *testing.T) {
	d := blockDist(8, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		nonlocal := 8
		if n.ID() == 1 {
			nonlocal = 1
		}
		for _, f := range []func(){
			func() { a.Get(nonlocal) },
			func() { a.Set(1, nonlocal) },
			func() { a.Get1(nonlocal) },
			func() { a.Set1(nonlocal, 1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("node %d: expected panic for index %d", n.ID(), nonlocal)
					}
				}()
				f()
			}()
		}
	})
}

func TestOutOfRangePanics(t *testing.T) {
	d := blockDist(8, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		for _, bad := range []int{0, 9, -1} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("expected panic for index %d", bad)
					}
				}()
				a.Get1(bad)
			}()
		}
	})
}

func TestReplicatedArray(t *testing.T) {
	g := topology.MustGrid(3)
	d := dist.NewReplicated([]int{5}, g)
	onEachNode(3, func(n *machine.Node) {
		a := New("r", d, n)
		if !a.Replicated() || a.LocalCount() != 5 {
			t.Errorf("node %d: replicated array wrong", n.ID())
		}
		for i := 1; i <= 5; i++ {
			if !a.IsLocal(i) || a.Owner1(i) != -1 || a.OwnerLinear(i) != -1 {
				t.Errorf("replicated ownership wrong at %d", i)
			}
			a.Set1(i, float64(i))
		}
		if a.Get1(3) != 3 {
			t.Error("replicated get/set")
		}
	})
}

func TestRank2BlockCollapsed(t *testing.T) {
	// The paper's adj/coef pattern: array[1..n, 1..4] dist by [block, *].
	g := topology.MustGrid(2)
	d := dist.Must([]int{6, 4}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		a := New("coef", d, n)
		ia := NewInt("adj", d, n)
		if a.LocalCount() != 12 {
			t.Errorf("local count = %d", a.LocalCount())
		}
		for i := 1; i <= 6; i++ {
			if !a.IsLocal(i, 1) {
				continue
			}
			for j := 1; j <= 4; j++ {
				a.Set2(i, j, float64(i*10+j))
				ia.Set2(i, j, i*100+j)
			}
		}
		for i := 1; i <= 6; i++ {
			if !a.IsLocal(i, 1) {
				continue
			}
			for j := 1; j <= 4; j++ {
				if a.Get2(i, j) != float64(i*10+j) || a.Get(i, j) != float64(i*10+j) {
					t.Errorf("coef[%d,%d] wrong", i, j)
				}
				if ia.Get2(i, j) != i*100+j {
					t.Errorf("adj[%d,%d] wrong", i, j)
				}
			}
		}
		// Rows 1..3 on node 0, rows 4..6 on node 1.
		wantLocal := n.ID() == 0
		if a.IsLocal(2, 3) != wantLocal {
			t.Errorf("node %d: IsLocal(2,3) = %v", n.ID(), a.IsLocal(2, 3))
		}
	})
}

func TestLinearDelinear(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{3, 4}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		want := 1
		for i := 1; i <= 3; i++ {
			for j := 1; j <= 4; j++ {
				if g := a.Linear(i, j); g != want {
					t.Errorf("Linear(%d,%d) = %d, want %d", i, j, g, want)
				}
				c := a.Delinear(want)
				if c[0] != i || c[1] != j {
					t.Errorf("Delinear(%d) = %v", want, c)
				}
				want++
			}
		}
	})
}

func TestOwnerLinearMatchesOwner(t *testing.T) {
	g := topology.MustGrid(3)
	d := dist.Must([]int{5, 4}, []dist.DimSpec{dist.CyclicDim(), dist.CollapsedDim()}, g)
	onEachNode(3, func(n *machine.Node) {
		a := New("a", d, n)
		for i := 1; i <= 5; i++ {
			for j := 1; j <= 4; j++ {
				lin := a.Linear(i, j)
				if a.OwnerLinear(lin) != a.Owner(i, j) {
					t.Errorf("OwnerLinear(%d) = %d, Owner(%d,%d) = %d",
						lin, a.OwnerLinear(lin), i, j, a.Owner(i, j))
				}
			}
		}
	})
}

func TestGetSetLinearRank2(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{4, 3}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		for gidx := 1; gidx <= 12; gidx++ {
			if a.OwnerLinear(gidx) == n.ID() {
				a.SetLinear(gidx, float64(gidx))
			}
		}
		for gidx := 1; gidx <= 12; gidx++ {
			if a.OwnerLinear(gidx) == n.ID() {
				if a.GetLinear(gidx) != float64(gidx) {
					t.Errorf("GetLinear(%d) = %g", gidx, a.GetLinear(gidx))
				}
			}
		}
	})
}

func TestEachLocalOrderAndCoverage(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{4, 3}, []dist.DimSpec{dist.CyclicDim(), dist.CollapsedDim()}, g)
	counts := make(chan int, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		prev := 0
		count := 0
		a.EachLocal(func(gl int) {
			if gl <= prev {
				t.Errorf("EachLocal out of order: %d after %d", gl, prev)
			}
			if a.OwnerLinear(gl) != n.ID() {
				t.Errorf("EachLocal visited nonlocal %d", gl)
			}
			prev = gl
			count++
		})
		counts <- count
	})
	if c1, c2 := <-counts, <-counts; c1+c2 != 12 {
		t.Fatalf("EachLocal covered %d elements, want 12", c1+c2)
	}
}

func TestVersionBump(t *testing.T) {
	d := blockDist(4, 2)
	onEachNode(2, func(n *machine.Node) {
		ia := NewInt("adj", d, n)
		if ia.Version() != 0 {
			t.Error("initial version")
		}
		ia.Bump()
		ia.Bump()
		if ia.Version() != 2 {
			t.Error("bumped version")
		}
	})
}

func TestFill(t *testing.T) {
	d := blockDist(6, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		a.Fill(7)
		a.EachLocal(func(gl int) {
			if a.GetLinear(gl) != 7 {
				t.Errorf("Fill missed %d", gl)
			}
		})
	})
}

func TestRankMismatchPanics(t *testing.T) {
	d := blockDist(6, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		for _, f := range []func(){
			func() { a.Get2(1, 1) },
			func() { a.Get(1, 2) },
			func() { a.Linear(1, 2) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("expected panic")
					}
				}()
				f()
			}()
		}
	})
}

// TestQuickOwnershipPartition: every element of random 1-D and 2-D
// distributions has exactly one owning node, and all accessors agree.
func TestQuickOwnershipPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(5)
		n := 1 + r.Intn(30)
		g := topology.MustGrid(p)
		var d *dist.Dist
		switch r.Intn(3) {
		case 0:
			d = dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
		case 1:
			d = dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g)
		default:
			d = dist.Must([]int{n, 3}, []dist.DimSpec{dist.BlockCyclicDim(2), dist.CollapsedDim()}, g)
		}
		ok := true
		ownerCount := make([]int, d.Shape()[0]*func() int {
			if d.Rank() == 2 {
				return 3
			}
			return 1
		}())
		onEachNode(p, func(nd *machine.Node) {
			a := New("a", d, nd)
			a.EachLocal(func(gl int) {
				if a.OwnerLinear(gl) != nd.ID() {
					ok = false
				}
			})
		})
		// Count ownership via OwnerLinear on one handle.
		onEachNode(1, func(nd *machine.Node) {})
		m := sim.MustNew(p, machine.Ideal())
		m.Run(func(nd *machine.Node) {
			if nd.ID() != 0 {
				return
			}
			a := New("a", d, nd)
			for gl := 1; gl <= a.Size(); gl++ {
				o := a.OwnerLinear(gl)
				if o < 0 || o >= p {
					ok = false
					return
				}
				ownerCount[gl-1]++
			}
		})
		for _, c := range ownerCount {
			if c != 1 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet1Block(b *testing.B) {
	d := blockDist(1024, 1)
	m := sim.MustNew(1, machine.Ideal())
	m.Run(func(n *machine.Node) {
		a := New("a", d, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = a.Get1(i%1024 + 1)
		}
	})
}

func BenchmarkGet2BlockCollapsed(b *testing.B) {
	g := topology.MustGrid(1)
	d := dist.Must([]int{1024, 4}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	m := sim.MustNew(1, machine.Ideal())
	m.Run(func(n *machine.Node) {
		a := New("a", d, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = a.Get2(i%1024+1, i%4+1)
		}
	})
}
