package darray

import (
	"testing"

	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/topology"
)

func TestHeaderAccessors(t *testing.T) {
	d := blockDist(10, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("alpha", d, n)
		if a.Name() != "alpha" || a.Dist() != d || a.Node() != n {
			t.Error("accessors wrong")
		}
		if s := a.Shape(); len(s) != 1 || s[0] != 10 {
			t.Errorf("Shape = %v", s)
		}
		// Shape must be a defensive copy.
		a.Shape()[0] = 999
		if a.Shape()[0] != 10 {
			t.Error("Shape aliased internal state")
		}
		if a.Size() != 10 {
			t.Errorf("Size = %d", a.Size())
		}
	})
}

func TestIntArrayRank1Accessors(t *testing.T) {
	d := blockDist(8, 2)
	onEachNode(2, func(n *machine.Node) {
		ia := NewInt("k", d, n)
		if ia.Name() != "k" || ia.Rank() != 1 || ia.LocalCount() != 4 {
			t.Error("int array metadata")
		}
		for i := 1; i <= 8; i++ {
			if !ia.IsLocal1(i) {
				continue
			}
			ia.Set1(i, i*7)
			if ia.Get1(i) != i*7 || ia.Get(i) != i*7 {
				t.Errorf("int get/set at %d", i)
			}
		}
		if len(ia.LocalValues()) != 4 {
			t.Error("LocalValues")
		}
		// Variadic set on int arrays.
		lo := ia.Dist().Pattern(0).Local(n.ID()).Min()
		ia.Set(lo*100, lo)
		if ia.Get1(lo) != lo*100 {
			t.Error("variadic Set")
		}
	})
}

func TestIsLocal1AndOwner1(t *testing.T) {
	d := blockDist(8, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		for i := 1; i <= 8; i++ {
			wantOwner := (i - 1) / 4
			if a.Owner1(i) != wantOwner {
				t.Errorf("Owner1(%d) = %d", i, a.Owner1(i))
			}
			if a.IsLocal1(i) != (wantOwner == n.ID()) {
				t.Errorf("IsLocal1(%d) wrong on node %d", i, n.ID())
			}
		}
	})
	// Replicated + out-of-range panic paths.
	g := topology.MustGrid(2)
	rep := dist.NewReplicated([]int{4}, g)
	onEachNode(2, func(n *machine.Node) {
		r := New("r", rep, n)
		if !r.IsLocal1(2) || r.Owner1(2) != -1 {
			t.Error("replicated IsLocal1/Owner1")
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range IsLocal1 on replicated")
			}
		}()
		r.IsLocal1(9)
	})
}

func TestFloatLocalValuesAndVariadic(t *testing.T) {
	d := blockDist(6, 2)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		vals := a.LocalValues()
		if len(vals) != 3 {
			t.Fatalf("local values len %d", len(vals))
		}
		lo := a.Dist().Pattern(0).Local(n.ID()).Min()
		a.Set(2.5, lo) // variadic setter
		if a.Get(lo) != 2.5 || vals[0] != 2.5 {
			t.Error("variadic get/set or aliasing")
		}
	})
}

// TestSecondDimDistributed exercises offset2 with [*, block] layout —
// columns distributed, rows whole.
func TestSecondDimDistributed(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{3, 8}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		if a.LocalCount() != 12 {
			t.Fatalf("local count %d", a.LocalCount())
		}
		for i := 1; i <= 3; i++ {
			for j := 1; j <= 8; j++ {
				if !a.IsLocal(i, j) {
					continue
				}
				a.Set2(i, j, float64(i*10+j))
			}
		}
		for i := 1; i <= 3; i++ {
			for j := 1; j <= 8; j++ {
				if a.IsLocal(i, j) && a.Get2(i, j) != float64(i*10+j) {
					t.Errorf("a[%d,%d] wrong", i, j)
				}
			}
		}
		// Column ownership: cols 1-4 on node 0.
		if a.IsLocal(1, 2) != (n.ID() == 0) {
			t.Error("column ownership wrong")
		}
		// Out-of-range second dim panics.
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		a.Get2(1, 9)
	})
}

// TestRank3Linear exercises the generic (rank > 2) offsetLinear path.
func TestRank3Linear(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{4, 3, 2},
		[]dist.DimSpec{dist.BlockDim(), dist.CollapsedDim(), dist.CollapsedDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		a := New("a", d, n)
		if a.Rank() != 3 || a.Size() != 24 {
			t.Fatal("rank-3 metadata")
		}
		for gl := 1; gl <= 24; gl++ {
			if a.OwnerLinear(gl) != n.ID() {
				continue
			}
			a.SetLinear(gl, float64(gl))
		}
		for gl := 1; gl <= 24; gl++ {
			if a.OwnerLinear(gl) == n.ID() && a.GetLinear(gl) != float64(gl) {
				t.Errorf("rank-3 linear access at %d", gl)
			}
		}
		// Coordinate and linear access agree.
		if a.OwnerLinear(a.Linear(2, 3, 1)) == n.ID() {
			if a.Get(2, 3, 1) != float64(a.Linear(2, 3, 1)) {
				t.Error("coordinate/linear mismatch")
			}
		}
	})
}

func TestIntArray2DMetadata(t *testing.T) {
	g := topology.MustGrid(2)
	d := dist.Must([]int{4, 3}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	onEachNode(2, func(n *machine.Node) {
		ia := NewInt("adj", d, n)
		if s := ia.Shape(); s[0] != 4 || s[1] != 3 {
			t.Errorf("Shape = %v", s)
		}
		if ia.Dist() != d {
			t.Error("Dist")
		}
	})
}
