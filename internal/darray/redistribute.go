package darray

// Dynamic redistribution: the run-time face of the paper's §2.4 claim
// that distributions are data, not program structure.  A distributed
// array's mapping may change between computation phases (the paper's
// interest in dynamic load balancing and multi-phase algorithms like
// ADI), so Redistribute rebinds an array to a new dist clause in
// place, moving every element to its new owner with one coalesced
// message per processor pair.
//
// The transfer sets are computed in closed form, exactly like the
// compile-time loop analysis of §3.1: out(p→q) is local_old(p) ∩
// local_new(q) in the linearized index space, so both ends of every
// transfer derive the same sets independently and no inspector pass or
// global exchange is needed.  The resulting plan is purely structural
// — a function of (old dist, new dist) only, never of array contents —
// so plans are cached content-addressed by distribution fingerprint
// pair, and ping-pong phase changes (row layout → column layout →
// row layout …) replay without rebuilding or allocating: message
// payloads and the local partitions themselves are recycled through
// comm.BufPool free lists, mirroring the forall executor's
// zero-allocation replay path.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kali/internal/comm"
	"kali/internal/dist"
	"kali/internal/index"
	"kali/internal/lru"
	"kali/internal/machine"
)

// PhaseRedistribute is the timing phase redistribution is attributed
// to, alongside the forall engine's "inspector" and "executor".
const PhaseRedistribute = "redistribute"

// redistPeer is one communication partner of a redistribution plan:
// processor q and the linear-index intervals exchanged with it, with
// their total element count precomputed so replay sizes messages
// without walking the intervals twice.
type redistPeer struct {
	q   int
	n   int
	ivs []index.Interval
}

// RedistSchedule is one node's structural plan for moving an array
// between two distributions.  It binds to no particular array — only
// to the (old, new) distribution pair — so one plan is shared by every
// same-shaped remapping on the node and replayed from the
// content-addressed store.
type RedistSchedule struct {
	keep     []index.Interval // indices local under both distributions
	keepN    int
	sendTo   []redistPeer // ascending q
	recvFrom []redistPeer // ascending q
	newCount int          // local element count under the new dist
	hdr      header       // target-layout header template (name/node blank)
}

// redistKey addresses one node's plan for one distribution pair.  The
// fingerprints cover shape, so structurally different remappings can
// never collide.
type redistKey struct {
	node  int
	oldFP uint64
	newFP uint64
}

// redistPlanCapPerNode bounds the plan store to this many plans per
// node of the machine.  A long-lived machine cycling through many
// distribution pairs (load balancing that reshapes every phase) would
// otherwise grow the store without bound; ping-pong remappings need
// only two plans per node, so the bound keeps every realistic working
// set while counting evictions for the report.
const redistPlanCapPerNode = 16

// redistStore is one machine's plan cache and buffer pool, kept in
// the machine's Scratch so both live exactly as long as the machine (a
// package-global would pin every transient test/bench machine — and
// its peak-demand partitions — forever).  Plans live in a bounded LRU
// (sized by the machine's node count on first use).  The pool recycles
// redistribution message payloads and local partitions machine-wide
// (buffers cross nodes: acquired by the sender, released by the
// receiver), so warmed remappings replay allocation-free.
type redistStore struct {
	mu    sync.Mutex
	plans *lru.Cache[redistKey, *RedistSchedule] // created on first use (needs P)
	pool  comm.BufPool
}

// redistStoreKey addresses the store within Machine.Scratch.
type redistStoreKey struct{}

func newRedistStore() any { return &redistStore{} }

func storeOf(n *machine.Node) *redistStore {
	return n.Machine().Scratch(redistStoreKey{}, newRedistStore).(*redistStore)
}

// PlanEvictions returns how many redistribution plans the machine's
// bounded store has evicted for capacity.
func PlanEvictions(m *machine.Machine) int {
	store := m.Scratch(redistStoreKey{}, newRedistStore).(*redistStore)
	store.mu.Lock()
	defer store.mu.Unlock()
	if store.plans == nil {
		return 0
	}
	return store.plans.Evictions()
}

var (
	redistBuilds atomic.Int64
	redistHits   atomic.Int64
)

// RedistBuilds returns how many redistribution plans have been built
// process-wide (cache misses); RedistHits counts content-addressed
// reuses.  Benchmarks report deltas of these.
func RedistBuilds() int { return int(redistBuilds.Load()) }

// RedistHits returns the process-wide count of redistribution-plan
// cache hits.
func RedistHits() int { return int(redistHits.Load()) }

// ownedLinear returns the set of linearized global indices grid
// processor id stores under d: the cross product of the per-dimension
// Local sets (full range for collapsed dimensions), lowered row-major.
func ownedLinear(d *dist.Dist, id int) index.Set {
	shape := d.Shape()
	gcoord := d.Grid().Coord(id)
	sets := make([]index.Set, len(shape))
	gdim := 0
	for dim := range shape {
		if p := d.Pattern(dim); p != nil {
			sets[dim] = p.Local(gcoord[gdim])
			gdim++
		} else {
			sets[dim] = index.Range(1, shape[dim])
		}
	}
	switch len(shape) {
	case 1:
		return sets[0]
	case 2:
		return index.Linearize2(sets[0], sets[1], shape[1])
	default:
		panic(fmt.Sprintf("darray: redistribution supports rank 1 and 2, got rank %d", len(shape)))
	}
}

// buildRedistSchedule derives the node's plan in closed form.
func buildRedistSchedule(name string, od, nd *dist.Dist, n *machine.Node) *RedistSchedule {
	me := n.ID()
	oldMine := ownedLinear(od, me)
	newMine := ownedLinear(nd, me)
	s := &RedistSchedule{newCount: nd.LocalCount(me)}
	keep := oldMine.Intersect(newMine)
	s.keep = keep.Intervals()
	s.keepN = keep.Len()
	for q := 0; q < n.P(); q++ {
		if q == me {
			continue
		}
		if out := oldMine.Intersect(ownedLinear(nd, q)); !out.Empty() {
			s.sendTo = append(s.sendTo, redistPeer{q: q, n: out.Len(), ivs: out.Intervals()})
		}
		if in := newMine.Intersect(ownedLinear(od, q)); !in.Empty() {
			s.recvFrom = append(s.recvFrom, redistPeer{q: q, n: in.Len(), ivs: in.Intervals()})
		}
	}
	s.hdr = newHeader(name, nd, n)
	s.hdr.name = ""
	s.hdr.node = nil
	return s
}

// redistSchedule returns the node's plan for od → nd, building it on
// first use and replaying it from the machine's content-addressed
// store after.
func redistSchedule(store *redistStore, name string, od, nd *dist.Dist, n *machine.Node) *RedistSchedule {
	key := redistKey{node: n.ID(), oldFP: od.Fingerprint(), newFP: nd.Fingerprint()}
	store.mu.Lock()
	if store.plans == nil {
		store.plans = lru.New[redistKey, *RedistSchedule](redistPlanCapPerNode * n.P())
	}
	if s, ok := store.plans.Get(key); ok {
		store.mu.Unlock()
		redistHits.Add(1)
		n.Charge(machine.Cost{Calls: 1})
		return s
	}
	store.mu.Unlock()
	s := buildRedistSchedule(name, od, nd, n)
	// Symbolic set evaluation: a closed-form intersection per peer pair.
	n.Charge(machine.Cost{Calls: 2 + len(s.sendTo) + len(s.recvFrom)})
	store.mu.Lock()
	store.plans.Put(key, s)
	store.mu.Unlock()
	redistBuilds.Add(1)
	return s
}

// copyLinear moves the elements of linear interval [lo..hi] from src
// (laid out per sh) into dst (laid out per dh).  Both headers share
// the global shape and both must own the whole interval; within one
// global row a run of consecutive owned indices is contiguous in both
// layouts (LocalIndex packs densely in increasing global order), so
// the move is one bulk copy per row segment.
func copyLinear(sh *header, src []float64, dh *header, dst []float64, lo, hi int) {
	if len(sh.shape) == 1 {
		copy(dst[dh.offset1(lo):dh.offset1(lo)+hi-lo+1], src[sh.offset1(lo):sh.offset1(lo)+hi-lo+1])
		return
	}
	nx := sh.shape[1]
	for g := lo; g <= hi; {
		end := rowSegEnd(g, hi, nx)
		so, do := sh.offsetLinear(g), dh.offsetLinear(g)
		copy(dst[do:do+end-g+1], src[so:so+end-g+1])
		g = end + 1
	}
}

// scatterLinear writes vals (hi-lo+1 elements) into the elements of
// linear interval [lo..hi] of dst, laid out per dh — the receive-side
// mirror of Array.CopyLinearRange, one bulk copy per row segment.
func scatterLinear(dh *header, dst []float64, lo, hi int, vals []float64) {
	if len(dh.shape) == 1 {
		copy(dst[dh.offset1(lo):dh.offset1(lo)+hi-lo+1], vals)
		return
	}
	nx := dh.shape[1]
	for g := lo; g <= hi; {
		end := rowSegEnd(g, hi, nx)
		do := dh.offsetLinear(g)
		copy(dst[do:do+end-g+1], vals[g-lo:g-lo+end-g+1])
		g = end + 1
	}
}

// Redistribute rebinds a to the new distribution nd in place: every
// element moves to the processor nd assigns it, and the handle's
// ownership tests, accessors and Dist() answer for the new mapping
// afterwards.  Every node of the machine must call it collectively
// with a structurally equal nd.
//
// The all-to-all is schedule-driven: one coalesced TagRedist message
// per communicating processor pair, packed and unpacked with bulk
// range copies.  Plans are cached by (old, new) fingerprint pair and
// payloads and partitions are pooled, so repeated phase changes replay
// allocation-free; time is charged under PhaseRedistribute.
//
// Redistributing an array changes its distribution fingerprint, which
// is exactly what the forall engine's schedule caches key on — cached
// loop schedules over the old mapping miss instead of replaying stale
// communication patterns.
func Redistribute(a *Array, nd *dist.Dist) {
	od := a.d
	if od.Replicated() || nd.Replicated() {
		panic(fmt.Sprintf("darray: cannot redistribute replicated array %q", a.name))
	}
	if a.Rank() > 2 {
		panic(fmt.Sprintf("darray: redistribution supports rank 1 and 2, got rank %d of %q", a.Rank(), a.name))
	}
	if od.Rank() != nd.Rank() {
		panic(fmt.Sprintf("darray: redistribute %q: rank %d -> %d", a.name, od.Rank(), nd.Rank()))
	}
	for dim := 0; dim < od.Rank(); dim++ {
		if od.Extent(dim) != nd.Extent(dim) {
			panic(fmt.Sprintf("darray: redistribute %q: extent %d -> %d in dim %d",
				a.name, od.Extent(dim), nd.Extent(dim), dim))
		}
	}
	n := a.node
	if nd.Grid().Size() != n.P() {
		panic(fmt.Sprintf("darray: redistribute %q: new grid has %d processors, machine has %d",
			a.name, nd.Grid().Size(), n.P()))
	}
	n.StartPhase(PhaseRedistribute)
	defer n.StopPhase(PhaseRedistribute)
	if od.Fingerprint() == nd.Fingerprint() {
		// Identity remapping: nothing moves.
		n.Charge(machine.Cost{Calls: 1})
		return
	}
	store := storeOf(n)
	s := redistSchedule(store, a.name, od, nd, n)

	// Sends first (non-blocking on the simulated machine): pack each
	// peer's intervals from the old layout into a pooled payload.
	for pi := range s.sendTo {
		p := &s.sendTo[pi]
		pb := store.pool.Get(p.n)
		off := 0
		for _, iv := range p.ivs {
			a.CopyLinearRange(iv.Lo, iv.Hi, pb.Vals[off:off+iv.Len()])
			off += iv.Len()
		}
		n.Send(p.q, machine.TagRedist, pb, 8*off)
	}

	// New partition from the pool; move the elements that stay local
	// while the old storage is still live.
	nh := s.hdr
	nh.name, nh.node, nh.version = a.name, a.node, a.version
	nh.d = nd
	npb := store.pool.Get(s.newCount)
	for _, iv := range s.keep {
		copyLinear(&a.header, a.local, &nh, npb.Vals, iv.Lo, iv.Hi)
	}
	n.Charge(machine.Cost{MemRefs: 2 * s.keepN})

	oldPB := a.localPB
	a.header = nh
	a.local = npb.Vals
	a.localPB = npb
	if oldPB != nil {
		store.pool.Put(oldPB)
	}

	// Receives: the mirror formula says exactly who sends what; unpack
	// each interval with one bulk copy per row segment and recycle the
	// payload.  Per-byte message costs at both ends cover the copies.
	for pi := range s.recvFrom {
		p := &s.recvFrom[pi]
		msg := n.Recv(p.q, machine.TagRedist)
		pb, ok := msg.Payload.(*comm.Payload)
		if !ok || len(pb.Vals) != p.n {
			panic(fmt.Sprintf("darray: redistribute %q: payload from %d has %d values, plan expects %d",
				a.name, p.q, len(pb.Vals), p.n))
		}
		off := 0
		for _, iv := range p.ivs {
			scatterLinear(&a.header, a.local, iv.Lo, iv.Hi, pb.Vals[off:off+iv.Len()])
			off += iv.Len()
		}
		store.pool.Put(pb)
	}
}
