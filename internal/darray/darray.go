// Package darray implements distributed arrays with a global name
// space — the shared data structures of the paper's title, declared
// with the dist clauses of §2.2.
//
// An Array is declared once, collectively, with a distribution; each
// simulated node then holds a handle that stores only its local
// partition (or a full copy, for replicated arrays).  All indexing at
// this layer is by *global* 1-based coordinates; the handle translates
// to local storage and refuses direct access to elements it does not
// own.  Nonlocal access is the business of the inspector/executor
// machinery built on top (internal/inspector, internal/forall), which
// moves remote values into communication buffers.
//
// Multi-dimensional arrays are supported; for communication purposes an
// element is identified by its linearized row-major global index, so
// the comm package's interval machinery applies unchanged.
//
// The accessors come in two flavours: general variadic methods
// (Get/Set/Owner) and allocation-free fixed-rank methods (Get1, Get2,
// Owner1, ...) used by the executor's hot loops.
package darray

import (
	"fmt"

	"kali/internal/comm"
	"kali/internal/dist"
	"kali/internal/machine"
)

// header carries the per-node translation state shared by Array and
// IntArray: precomputed local shape, strides, patterns and expected
// grid coordinates, so that element access needs no allocation.
type header struct {
	name  string
	d     *dist.Dist
	node  *machine.Node
	shape []int

	repl    bool
	pats    []dist.Pattern // per array dim; nil when collapsed/replicated
	myCoord []int          // per array dim; my grid coordinate in that dim (-1 if collapsed)
	lshape  []int          // local extents
	version int

	// fast, flo, fn are the precomputed per-dimension locality
	// windows: when every dimension's local index set is one contiguous
	// interval (collapsed, replicated and block dims — the common
	// cases), a locality test is two compares and a local offset one
	// subtract per dim, with no interface calls and no divisions.  The
	// executor's per-element path lives on this.  Rank ≤ 2 only;
	// higher ranks and non-contiguous patterns keep fast == false.
	fast bool
	flo  [2]int // window start (global index) per dim
	fn   [2]int // window extent per dim
}

// initFast computes the contiguous locality windows, if any.  It must
// run whenever the header's distribution binding changes (New and the
// redistribution plan's target template).
func (h *header) initFast() {
	h.fast = false
	rank := len(h.shape)
	if rank > 2 {
		return
	}
	for dim := 0; dim < rank; dim++ {
		lo, n := 1, h.shape[dim]
		if !h.repl && h.pats[dim] != nil {
			ivs := h.pats[dim].Local(h.myCoord[dim]).Intervals()
			if len(ivs) != 1 {
				return
			}
			lo, n = ivs[0].Lo, ivs[0].Len()
		}
		h.flo[dim], h.fn[dim] = lo, n
	}
	h.fast = true
}

func newHeader(name string, d *dist.Dist, n *machine.Node) header {
	h := header{
		name:  name,
		d:     d,
		node:  n,
		shape: d.Shape(),
		repl:  d.Replicated(),
	}
	rank := len(h.shape)
	h.pats = make([]dist.Pattern, rank)
	h.myCoord = make([]int, rank)
	if h.repl {
		h.lshape = d.Shape()
		for i := range h.myCoord {
			h.myCoord[i] = -1
		}
		h.initFast()
		return h
	}
	h.lshape = d.LocalShape(n.ID())
	gcoord := d.Grid().Coord(n.ID())
	gdim := 0
	for dim := 0; dim < rank; dim++ {
		h.pats[dim] = d.Pattern(dim)
		if h.pats[dim] == nil {
			h.myCoord[dim] = -1
			continue
		}
		h.myCoord[dim] = gcoord[gdim]
		gdim++
	}
	h.initFast()
	return h
}

// localCount returns the node's element count.
func (h *header) localCount() int {
	c := 1
	for _, e := range h.lshape {
		c *= e
	}
	return c
}

// isLocal reports ownership without allocating.
func (h *header) isLocal(coord []int) bool {
	if h.repl {
		for dim, c := range coord {
			if c < 1 || c > h.shape[dim] {
				panic(fmt.Sprintf("darray: coordinate %d out of [1..%d] in dim %d of %s",
					c, h.shape[dim], dim, h.name))
			}
		}
		return true
	}
	for dim, c := range coord {
		p := h.pats[dim]
		if p == nil {
			if c < 1 || c > h.shape[dim] {
				panic(fmt.Sprintf("darray: coordinate %d out of [1..%d] in dim %d of %s",
					c, h.shape[dim], dim, h.name))
			}
			continue
		}
		if p.Owner(c) != h.myCoord[dim] {
			return false
		}
	}
	return true
}

// offset computes the local row-major offset; the element must be
// local (checked).
func (h *header) offset(coord []int) int {
	if len(coord) != len(h.shape) {
		panic(fmt.Sprintf("darray: coordinate rank %d != array rank %d of %s",
			len(coord), len(h.shape), h.name))
	}
	if !h.isLocal(coord) {
		panic(fmt.Sprintf("darray: node %d accessed nonlocal element %s%v",
			h.node.ID(), h.name, coord))
	}
	off := 0
	for dim, c := range coord {
		var li int
		if h.pats[dim] == nil || h.repl {
			li = c - 1
		} else {
			li = h.pats[dim].LocalIndex(c)
		}
		off = off*h.lshape[dim] + li
	}
	return off
}

// ownerLinear returns the owner of linearized global index g without
// allocating (replicated: -1).
func (h *header) ownerLinear(g int) int {
	if h.repl {
		return -1
	}
	// Decompose g and fold distributed dims into the grid id.
	total := 1
	for _, e := range h.shape {
		total *= e
	}
	if g < 1 || g > total {
		panic(fmt.Sprintf("darray: linear index %d out of [1..%d] of %s", g, total, h.name))
	}
	g--
	id := 0
	// Row-major: leftmost dim is most significant.  The grid linearizes
	// distributed dims in order, also row-major.
	div := total
	for dim := 0; dim < len(h.shape); dim++ {
		div /= h.shape[dim]
		c := g/div + 1
		g %= div
		if p := h.pats[dim]; p != nil {
			id = id*p.P() + p.Owner(c)
		}
	}
	return id
}

// Array is one node's handle on a distributed array of float64 — the
// "real" arrays of Kali.
type Array struct {
	header
	local []float64
	// localPB, when non-nil, is the pooled buffer backing local: a
	// previous Redistribute drew the partition from the storage pool, and
	// the next one returns it there so ping-pong remappings replay
	// without allocating.
	localPB *comm.Payload
}

// IntArray is one node's handle on a distributed array of integers —
// used for adjacency structures and counts (adj, count in the paper's
// Figure 4).  IntArrays may only be accessed where they are stored (or
// everywhere, when replicated): in the paper's programs subscript
// arrays are always aligned with the loop's on clause.
type IntArray struct {
	header
	local []int
}

// New allocates this node's partition of a distributed float64 array.
// Every node of the machine must call New with an equivalent dist.
func New(name string, d *dist.Dist, n *machine.Node) *Array {
	h := newHeader(name, d, n)
	return &Array{header: h, local: make([]float64, h.localCount())}
}

// NewInt allocates this node's partition of a distributed int array.
func NewInt(name string, d *dist.Dist, n *machine.Node) *IntArray {
	h := newHeader(name, d, n)
	return &IntArray{header: h, local: make([]int, h.localCount())}
}

// Name returns the declaration name, used in diagnostics and as part
// of schedule cache keys.
func (h *header) Name() string { return h.name }

// Dist returns the distribution.
func (h *header) Dist() *dist.Dist { return h.d }

// Node returns the owning simulated node.
func (h *header) Node() *machine.Node { return h.node }

// Version returns the mutation version used by schedule caching.
func (h *header) Version() int { return h.version }

// Bump increments the version, invalidating cached schedules whose
// communication pattern depends on this array's contents.
func (h *header) Bump() { h.version++ }

// Rank returns the number of dimensions.
func (h *header) Rank() int { return len(h.shape) }

// Shape returns the global extents.
func (h *header) Shape() []int { return append([]int(nil), h.shape...) }

// Size returns the total number of elements ∏shape.
func (h *header) Size() int {
	t := 1
	for _, e := range h.shape {
		t *= e
	}
	return t
}

// Replicated reports whether every node stores the whole array.
func (h *header) Replicated() bool { return h.repl }

// Linear converts global coordinates to the linearized row-major
// global index in [1 .. ∏shape].
func (h *header) Linear(coord ...int) int { return linearize(h.shape, coord) }

// Delinear inverts Linear.
func (h *header) Delinear(g int) []int { return delinearize(h.shape, g) }

// Owner returns the owner of the element at the given coordinates
// (-1 when replicated).
func (h *header) Owner(coord ...int) int { return h.d.Owner(coord...) }

// OwnerLinear returns the owner of linearized global index g without
// allocating (-1 when replicated).
func (h *header) OwnerLinear(g int) int { return h.ownerLinear(g) }

// Owner1 returns the owner of element i of a rank-1 array.
func (h *header) Owner1(i int) int {
	if h.repl {
		return -1
	}
	return h.pats[0].Owner(i)
}

// IsLocal reports whether this node stores the element.
func (h *header) IsLocal(coord ...int) bool { return h.isLocal(coord) }

// IsLocal1 is the allocation-free rank-1 ownership test.
func (h *header) IsLocal1(i int) bool {
	if h.repl {
		if i < 1 || i > h.shape[0] {
			panic(fmt.Sprintf("darray: index %d out of [1..%d] of %s", i, h.shape[0], h.name))
		}
		return true
	}
	return h.pats[0].Owner(i) == h.myCoord[0]
}

// IsLocal2 is the allocation-free rank-2 ownership test.
func (h *header) IsLocal2(i, j int) bool {
	if h.fast && len(h.shape) == 2 {
		if uint(i-h.flo[0]) < uint(h.fn[0]) && uint(j-h.flo[1]) < uint(h.fn[1]) {
			return true
		}
		// Miss: nonlocal or out of bounds — decide below (the pattern
		// panics on out-of-range indices).
	}
	if len(h.shape) != 2 {
		panic(fmt.Sprintf("darray: rank-2 access to rank-%d array %s", len(h.shape), h.name))
	}
	for dim, c := range [2]int{i, j} {
		p := h.pats[dim]
		if h.repl || p == nil {
			if c < 1 || c > h.shape[dim] {
				panic(fmt.Sprintf("darray: coordinate %d out of [1..%d] in dim %d of %s",
					c, h.shape[dim], dim, h.name))
			}
			continue
		}
		if p.Owner(c) != h.myCoord[dim] {
			return false
		}
	}
	return true
}

// Linear2 converts rank-2 global coordinates to the linearized
// row-major global index without bounds checks; the caller must have
// validated (i, j) (e.g. via IsLocal2).
func (h *header) Linear2(i, j int) int { return (i-1)*h.shape[1] + j }

// Get returns the element at global coordinates, which must be local.
func (a *Array) Get(coord ...int) float64 { return a.local[a.offset(coord)] }

// Set stores v at global coordinates, which must be local.
func (a *Array) Set(v float64, coord ...int) { a.local[a.offset(coord)] = v }

// Get1 is the allocation-free accessor for rank-1 arrays.
func (a *Array) Get1(i int) float64 { return a.local[a.offset1(i)] }

// Set1 is the allocation-free mutator for rank-1 arrays.
func (a *Array) Set1(i int, v float64) { a.local[a.offset1(i)] = v }

// Get2 is the allocation-free accessor for rank-2 arrays.
func (a *Array) Get2(i, j int) float64 { return a.local[a.offset2(i, j)] }

// Set2 is the allocation-free mutator for rank-2 arrays.
func (a *Array) Set2(i, j int, v float64) { a.local[a.offset2(i, j)] = v }

// GetLinear returns the element with linearized global index g, which
// must be local.
func (a *Array) GetLinear(g int) float64 { return a.local[a.offsetLinear(g)] }

// SetLinear stores v at linearized global index g, which must be local.
func (a *Array) SetLinear(g int, v float64) { a.local[a.offsetLinear(g)] = v }

// CopyLinearRange copies the elements with linearized global indices
// [lo..hi] — all of which must be stored on this node — into dst,
// which must have hi-lo+1 elements.  It is the executor's bulk message
// pack: because LocalIndex packs each owner's elements densely in
// increasing global order, a fully-owned run of consecutive global
// indices occupies consecutive local slots, so a rank-1 range is one
// copy and a rank-2 range is one copy per global row it spans.
func (a *Array) CopyLinearRange(lo, hi int, dst []float64) {
	if hi < lo {
		return
	}
	switch len(a.shape) {
	case 1:
		copy(dst, a.local[a.offset1(lo):a.offset1(lo)+hi-lo+1])
	case 2:
		nx := a.shape[1]
		for g := lo; g <= hi; {
			end := rowSegEnd(g, hi, nx)
			off := a.offsetLinear(g)
			copy(dst[g-lo:], a.local[off:off+end-g+1])
			g = end + 1
		}
	default:
		for g := lo; g <= hi; g++ {
			dst[g-lo] = a.local[a.offsetLinear(g)]
		}
	}
}

// rowSegEnd returns the last linear index of g's global row segment,
// clipped to hi — the shared segmentation every rank-2 bulk copy
// (CopyLinearRange, copyLinear, scatterLinear) splits intervals by,
// since contiguity in local storage holds only within one global row.
func rowSegEnd(g, hi, nx int) int {
	end := g + (nx - (g-1)%nx) - 1
	if end > hi {
		return hi
	}
	return end
}

// LocalValues exposes the raw local partition (replicated arrays: the
// whole array).  Mutating it directly bypasses ownership checks; it is
// intended for initialization and the executor's commit step.
func (a *Array) LocalValues() []float64 { return a.local }

// LocalCount returns the number of locally stored elements.
func (a *Array) LocalCount() int { return len(a.local) }

// Fill sets every local element to v.
func (a *Array) Fill(v float64) {
	for i := range a.local {
		a.local[i] = v
	}
}

// Get returns the element at global coordinates, which must be local.
func (ia *IntArray) Get(coord ...int) int { return ia.local[ia.offset(coord)] }

// Set stores v at global coordinates, which must be local.
func (ia *IntArray) Set(v int, coord ...int) { ia.local[ia.offset(coord)] = v }

// Get1 is the allocation-free accessor for rank-1 arrays.
func (ia *IntArray) Get1(i int) int { return ia.local[ia.offset1(i)] }

// Set1 is the allocation-free mutator for rank-1 arrays.
func (ia *IntArray) Set1(i, v int) { ia.local[ia.offset1(i)] = v }

// Get2 is the allocation-free accessor for rank-2 arrays.
func (ia *IntArray) Get2(i, j int) int { return ia.local[ia.offset2(i, j)] }

// Set2 is the allocation-free mutator for rank-2 arrays.
func (ia *IntArray) Set2(i, j, v int) { ia.local[ia.offset2(i, j)] = v }

// LocalValues exposes the raw local partition.
func (ia *IntArray) LocalValues() []int { return ia.local }

// LocalCount returns the number of locally stored elements.
func (ia *IntArray) LocalCount() int { return len(ia.local) }

// offset1 computes the local offset of rank-1 element i.
func (h *header) offset1(i int) int {
	if h.fast && len(h.shape) == 1 {
		if li := i - h.flo[0]; uint(li) < uint(h.fn[0]) {
			return li
		}
		// Miss: out of bounds or nonlocal — fall through for the
		// precise panic message.
	}
	if len(h.shape) != 1 {
		panic(fmt.Sprintf("darray: rank-1 access to rank-%d array %s", len(h.shape), h.name))
	}
	if h.repl {
		if i < 1 || i > h.shape[0] {
			panic(fmt.Sprintf("darray: index %d out of [1..%d] of %s", i, h.shape[0], h.name))
		}
		return i - 1
	}
	p := h.pats[0]
	if p.Owner(i) != h.myCoord[0] {
		panic(fmt.Sprintf("darray: node %d accessed nonlocal element %s[%d]", h.node.ID(), h.name, i))
	}
	return p.LocalIndex(i)
}

// offset2 computes the local offset of rank-2 element (i, j).
func (h *header) offset2(i, j int) int {
	if h.fast && len(h.shape) == 2 {
		li, lj := i-h.flo[0], j-h.flo[1]
		if uint(li) < uint(h.fn[0]) && uint(lj) < uint(h.fn[1]) {
			return li*h.lshape[1] + lj
		}
		// Miss: fall through for the precise panic message.
	}
	if len(h.shape) != 2 {
		panic(fmt.Sprintf("darray: rank-2 access to rank-%d array %s", len(h.shape), h.name))
	}
	var li, lj int
	if h.repl {
		if i < 1 || i > h.shape[0] || j < 1 || j > h.shape[1] {
			panic(fmt.Sprintf("darray: (%d,%d) out of %v of %s", i, j, h.shape, h.name))
		}
		return (i-1)*h.shape[1] + (j - 1)
	}
	if p := h.pats[0]; p == nil {
		if i < 1 || i > h.shape[0] {
			panic(fmt.Sprintf("darray: index %d out of [1..%d] of %s", i, h.shape[0], h.name))
		}
		li = i - 1
	} else {
		if p.Owner(i) != h.myCoord[0] {
			panic(fmt.Sprintf("darray: node %d accessed nonlocal row %s[%d,%d]", h.node.ID(), h.name, i, j))
		}
		li = p.LocalIndex(i)
	}
	if p := h.pats[1]; p == nil {
		if j < 1 || j > h.shape[1] {
			panic(fmt.Sprintf("darray: index %d out of [1..%d] of %s", j, h.shape[1], h.name))
		}
		lj = j - 1
	} else {
		if p.Owner(j) != h.myCoord[1] {
			panic(fmt.Sprintf("darray: node %d accessed nonlocal col %s[%d,%d]", h.node.ID(), h.name, i, j))
		}
		lj = p.LocalIndex(j)
	}
	return li*h.lshape[1] + lj
}

// offsetLinear computes the local offset of linearized global index g
// without allocating.
func (h *header) offsetLinear(g int) int {
	switch len(h.shape) {
	case 1:
		return h.offset1(g)
	case 2:
		j := (g-1)%h.shape[1] + 1
		i := (g-1)/h.shape[1] + 1
		return h.offset2(i, j)
	default:
		coord := delinearize(h.shape, g)
		return h.offset(coord)
	}
}

// EachLocal calls f for every locally stored element's linearized
// global index, in increasing order.  For replicated arrays it visits
// the whole index space.
func (h *header) EachLocal(f func(g int)) {
	rank := len(h.shape)
	coord := make([]int, rank)
	for i := range coord {
		coord[i] = 1
	}
	for {
		if h.repl || h.isLocal(coord) {
			f(linearize(h.shape, coord))
		}
		k := rank - 1
		for k >= 0 {
			coord[k]++
			if coord[k] <= h.shape[k] {
				break
			}
			coord[k] = 1
			k--
		}
		if k < 0 {
			return
		}
	}
}

// linearize maps 1-based coordinates to a 1-based row-major index.
func linearize(shape, coord []int) int {
	if len(coord) != len(shape) {
		panic(fmt.Sprintf("darray: coordinate rank %d != array rank %d", len(coord), len(shape)))
	}
	g := 0
	for d, c := range coord {
		if c < 1 || c > shape[d] {
			panic(fmt.Sprintf("darray: coordinate %d out of [1..%d] in dim %d", c, shape[d], d))
		}
		g = g*shape[d] + (c - 1)
	}
	return g + 1
}

// delinearize inverts linearize.
func delinearize(shape []int, g int) []int {
	total := 1
	for _, e := range shape {
		total *= e
	}
	if g < 1 || g > total {
		panic(fmt.Sprintf("darray: linear index %d out of [1..%d]", g, total))
	}
	g--
	out := make([]int, len(shape))
	for d := len(shape) - 1; d >= 0; d-- {
		out[d] = g%shape[d] + 1
		g /= shape[d]
	}
	return out
}
