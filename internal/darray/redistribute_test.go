package darray

// Tests for schedule-driven dynamic redistribution (paper §2.4's
// dynamic distributions): in-place rebinding, plan caching, and the
// allocation-free ping-pong replay.

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// fill2 sets every locally owned element of a rank-2 array to f(i,j).
func fill2(a *Array, n int, f func(i, j int) float64) {
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if a.IsLocal(i, j) {
				a.Set(f(i, j), i, j)
			}
		}
	}
}

// check2 verifies every element sits on the owner the dist reports
// with the value f(i,j).
func check2(t *testing.T, nd *machine.Node, a *Array, n int, f func(i, j int) float64) {
	t.Helper()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if a.Dist().Owner(i, j) == nd.ID() {
				if !a.IsLocal(i, j) || a.Get(i, j) != f(i, j) {
					t.Errorf("node %d: a[%d,%d] misplaced or wrong", nd.ID(), i, j)
				}
			} else if a.IsLocal(i, j) {
				t.Errorf("node %d: a[%d,%d] locally stored but owned by %d",
					nd.ID(), i, j, a.Dist().Owner(i, j))
			}
		}
	}
}

// TestRedistributeRank2RowToColumn: the transpose remapping at the
// heart of ADI, including a rank-2 [block, block] target on a 2-D
// grid reached from a 1-D row layout on a different grid shape.
func TestRedistributeRank2RowToColumn(t *testing.T) {
	const n, p = 8, 4
	g1 := topology.MustGrid(p)
	g2 := topology.MustGrid(2, 2)
	rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g1)
	cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g1)
	tiles := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, g2)
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		f := func(i, j int) float64 { return float64(i*1000 + j) }
		a := New("a", rows, nd)
		fill2(a, n, f)
		Redistribute(a, cols)
		check2(t, nd, a, n, f)
		Redistribute(a, tiles)
		check2(t, nd, a, n, f)
		Redistribute(a, rows)
		check2(t, nd, a, n, f)
	})
}

// TestRedistributePlanCacheKeying: structurally equal remappings on
// distinct Dist objects share one plan per node; a different pair
// builds its own.
func TestRedistributePlanCacheKeying(t *testing.T) {
	const n, p = 24, 4
	g := topology.MustGrid(p)
	mkBlock := func() *dist.Dist { return dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g) }
	mkCyc := func() *dist.Dist { return dist.Must([]int{n}, []dist.DimSpec{dist.CyclicDim()}, g) }
	builds0, hits0 := RedistBuilds(), RedistHits()
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		a := New("a", mkBlock(), nd)
		b := New("b", mkBlock(), nd)
		for i := 1; i <= n; i++ {
			if a.IsLocal1(i) {
				a.Set1(i, float64(i))
				b.Set1(i, float64(-i))
			}
		}
		// Same structural pair, distinct Dist objects: one build, one hit.
		Redistribute(a, mkCyc())
		Redistribute(b, mkCyc())
		// Reverse direction is a different pair: a second build each... but
		// shared between the two arrays again.
		Redistribute(a, mkBlock())
		Redistribute(b, mkBlock())
		nd.Barrier()
		for i := 1; i <= n; i++ {
			if a.IsLocal1(i) && a.Get1(i) != float64(i) {
				t.Errorf("a[%d] = %g after round trip", i, a.Get1(i))
			}
			if b.IsLocal1(i) && b.Get1(i) != float64(-i) {
				t.Errorf("b[%d] = %g after round trip", i, b.Get1(i))
			}
		}
	})
	builds, hits := RedistBuilds()-builds0, RedistHits()-hits0
	if builds != 2*p || hits != 2*p {
		t.Fatalf("builds=%d hits=%d over %d nodes, want %d/%d", builds, hits, p, 2*p, 2*p)
	}
}

// TestRedistributeReplayAllocationFree: once the two transpose plans
// are cached and the payload/partition pools are warm, a full
// ping-pong cycle — pack, all-to-all, rebind, unpack — performs zero
// heap allocations machine-wide, exactly like cached forall replay.
func TestRedistributeReplayAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n, p, warmup, reps = 16, 4, 4, 12
	g := topology.MustGrid(p)
	rows := dist.Must([]int{n, n}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, g)
	cols := dist.Must([]int{n, n}, []dist.DimSpec{dist.CollapsedDim(), dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())

	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)

	var mallocs uint64
	var mu sync.Mutex
	mach.Run(func(nd *machine.Node) {
		f := func(i, j int) float64 { return float64(i*100 + j) }
		a := New("a", rows, nd)
		fill2(a, n, f)
		// Warmup builds both plans and grows the pools to the pattern's
		// peak demand; a barrier per remapping bounds in-flight payloads
		// the same way TestReplayAllocationFree (internal/forall) bounds
		// them per replay — without it a fast node can start the next
		// phase while a slow receiver still holds the previous payloads.
		for k := 0; k < warmup; k++ {
			Redistribute(a, cols)
			nd.Barrier()
			Redistribute(a, rows)
			nd.Barrier()
		}

		var before, after runtime.MemStats
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		nd.Barrier()
		for k := 0; k < reps; k++ {
			Redistribute(a, cols)
			nd.Barrier()
			Redistribute(a, rows)
			nd.Barrier()
		}
		nd.Barrier()
		if nd.ID() == 0 {
			runtime.ReadMemStats(&after)
			mu.Lock()
			mallocs = after.Mallocs - before.Mallocs
			mu.Unlock()
		}
		nd.Barrier()
		check2(t, nd, a, n, f)
	})
	if mallocs != 0 {
		t.Errorf("cached redistribution replay allocated: %d mallocs over %d ping-pong cycles on %d nodes (want 0)",
			mallocs, reps, p)
	}
}

// TestRedistributeRejectsShapeChange: remapping must preserve the
// global shape; a different extent is a programming error.
func TestRedistributeRejectsShapeChange(t *testing.T) {
	const n, p = 8, 2
	g := topology.MustGrid(p)
	d1 := dist.Must([]int{n}, []dist.DimSpec{dist.BlockDim()}, g)
	d2 := dist.Must([]int{n + 1}, []dist.DimSpec{dist.BlockDim()}, g)
	mach := sim.MustNew(p, machine.Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape change")
		}
	}()
	mach.Run(func(nd *machine.Node) {
		a := New("a", d1, nd)
		Redistribute(a, d2)
	})
}
