package darray

import (
	"testing"

	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

// TestCopyLinearRange: the bulk reader agrees with per-element
// GetLinear for every fully-owned contiguous range, across the
// distribution kinds the executor packs from.
func TestCopyLinearRange(t *testing.T) {
	cases := []struct {
		name  string
		shape []int
		specs []dist.DimSpec
		grid  []int
	}{
		{"block-1d", []int{24}, []dist.DimSpec{dist.BlockDim()}, []int{4}},
		{"blockcyclic-1d", []int{24}, []dist.DimSpec{dist.BlockCyclicDim(3)}, []int{2}},
		{"map-1d", []int{12}, []dist.DimSpec{dist.MapDim([]int{0, 0, 1, 1, 1, 0, 0, 1, 0, 0, 1, 1})}, []int{2}},
		{"block-rows-2d", []int{6, 5}, []dist.DimSpec{dist.BlockDim(), dist.CollapsedDim()}, []int{3}},
		{"block-block-2d", []int{6, 6}, []dist.DimSpec{dist.BlockDim(), dist.BlockDim()}, []int{2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := topology.MustGrid(tc.grid...)
			d := dist.Must(tc.shape, tc.specs, g)
			p := 1
			for _, e := range tc.grid {
				p *= e
			}
			mach := sim.MustNew(p, machine.Ideal())
			mach.Run(func(nd *machine.Node) {
				a := New("a", d, nd)
				total := a.Size()
				owned := make([]bool, total+1)
				for gi := 1; gi <= total; gi++ {
					if o := a.OwnerLinear(gi); o == nd.ID() {
						owned[gi] = true
						a.SetLinear(gi, float64(100*nd.ID()+gi))
					}
				}
				// Every maximal owned run, and every sub-range of it.
				for lo := 1; lo <= total; lo++ {
					if !owned[lo] {
						continue
					}
					for hi := lo; hi <= total && owned[hi]; hi++ {
						dst := make([]float64, hi-lo+1)
						a.CopyLinearRange(lo, hi, dst)
						for gi := lo; gi <= hi; gi++ {
							if want := a.GetLinear(gi); dst[gi-lo] != want {
								t.Fatalf("node %d: CopyLinearRange(%d,%d)[%d] = %g, want %g",
									nd.ID(), lo, hi, gi-lo, dst[gi-lo], want)
							}
						}
					}
				}
			})
		})
	}
}
