// Package relax is the paper's Figure 4 program: nearest-neighbor
// relaxation (Jacobi) on a user-defined mesh, written against the Kali
// runtime.  The mesh arrives as adjacency lists (count/adj/coef), so
// the inner reference old_a[adj[i,j]] is data-dependent and exercises
// the run-time inspector; the inspector runs once and its schedule is
// reused by all subsequent sweeps, exactly as in the paper.
//
// The arrays and distributions mirror the paper's declarations:
//
//	var a, old_a : array[1..n] of real            dist by [block];
//	    count    : array[1..n] of integer         dist by [block];
//	    adj      : array[1..n,1..maxdeg] of integer dist by [block,*];
//	    coef     : array[1..n,1..maxdeg] of real    dist by [block,*];
package relax

import (
	"fmt"

	"kali/internal/analysis"
	"kali/internal/core"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/machine"
	"kali/internal/mesh"
)

// Options configures one relaxation experiment.
type Options struct {
	Mesh   *mesh.Mesh
	Sweeps int
	P      int
	Params machine.Params
	// Backend selects the node runtime ("" / "sim" for the
	// virtual-clock simulator, "wall" for real threads).
	Backend string

	// Dist selects the node-dimension distribution of every array
	// (a, old_a, count, adj, coef all align).  The zero value means
	// block — the paper's choice.  Changing it is the paper's §2.4
	// claim made concrete: "a variety of distribution patterns can
	// easily be tried by trivial modification of this program".
	Dist dist.DimSpec
	// Owners, when non-nil, overrides Dist with a user-defined
	// distribution (the paper's "mechanism for user-defined
	// distributions"): Owners[i] is the 0-based owner of node i+1.
	Owners []int

	// NoCache re-runs the inspector every sweep (ablation ABL1).
	NoCache bool
	// Enumerate uses the Saltz-style fully-enumerated executor from
	// the paper's §5 comparison (ablation ABL7): no locality tests or
	// searches during execution, more schedule storage.
	Enumerate bool
	// NoOverlap runs the phase-synchronous executor instead of the
	// default split-phase communication/computation overlap.
	NoOverlap bool
	// NoFuse disables cross-loop message aggregation (the sweep's
	// copy/relax pair runs through the sequence API; its window breaks
	// on the copy's write either way, so this is a pure oracle toggle
	// here).
	NoFuse bool
	// CheckConvergence adds the while-loop convergence reduction each
	// sweep (off in the paper's timed runs, which sweep a fixed count).
	CheckConvergence bool
	// Tol stops early when the sweep-to-sweep delta drops below it
	// (requires CheckConvergence).
	Tol float64
	// Gather controls whether final values are collected (host-side)
	// for validation.
	Gather bool
}

// Result is the outcome of one experiment.
type Result struct {
	Report core.Report
	// Values is the gathered solution (nil unless Options.Gather).
	Values []float64
	// SweepsRun counts executed relaxation sweeps (less than
	// Options.Sweeps if converged early).
	SweepsRun int
	// NonlocalIters is the max per-node nonlocal iteration count.
	NonlocalIters int
	// ScheduleBytes is the max per-node schedule storage of the
	// relaxation loop (Figure 5 records, buffers, and the enumeration
	// list when Options.Enumerate is set).
	ScheduleBytes int
}

// phaseCopy times the old_a := a copy loop separately from the
// relaxation core, matching the paper's measured regions.
const phaseCopy = "copy"

// Run executes the experiment on a fresh simulated machine.
func Run(opt Options) Result {
	if opt.Mesh == nil || opt.Sweeps < 1 || opt.P < 1 {
		panic(fmt.Sprintf("relax: bad options %+v", opt))
	}
	m := opt.Mesh
	var values []float64
	if opt.Gather {
		values = make([]float64, m.N)
	}
	sweepsRun := make([]int, opt.P)
	nonlocal := make([]int, opt.P)
	schedBytes := make([]int, opt.P)
	// Computed once and shared read-only by all simulated nodes.
	init := mesh.InitValues(m)

	nodeDim := opt.Dist
	if nodeDim.Kind == dist.Collapsed && nodeDim.Owner == nil && nodeDim.Block == 0 {
		nodeDim = dist.BlockDim()
	}
	if opt.Owners != nil {
		nodeDim = dist.MapDim(opt.Owners)
	}

	rep := core.Run(core.Config{P: opt.P, Params: opt.Params, Backend: opt.Backend, NoOverlap: opt.NoOverlap, NoFuse: opt.NoFuse}, func(ctx *core.Context) {
		me := ctx.ID()
		n := m.N

		a := ctx.Array("a", []int{n}, []dist.DimSpec{nodeDim})
		oldA := ctx.Array("old_a", []int{n}, []dist.DimSpec{nodeDim})
		count := ctx.IntArray("count", []int{n}, []dist.DimSpec{nodeDim})
		adj := ctx.IntArray("adj", []int{n, m.MaxDeg},
			[]dist.DimSpec{nodeDim, dist.CollapsedDim()})
		coef := ctx.Array("coef", []int{n, m.MaxDeg},
			[]dist.DimSpec{nodeDim, dist.CollapsedDim()})

		// Set up arrays 'adj' and 'coef' (untimed, like the paper).
		localSet := a.Dist().Pattern(0).Local(me)
		localSet.Each(func(i int) {
			a.Set1(i, init[i-1])
			oldA.Set1(i, init[i-1])
			count.Set1(i, m.Count[i-1])
			for k := 0; k < m.MaxDeg; k++ {
				adj.Set2(i, k+1, m.Adj[(i-1)*m.MaxDeg+k])
				coef.Set2(i, k+1, m.Coef[(i-1)*m.MaxDeg+k])
			}
		})

		ctx.Eng.NoCache = opt.NoCache

		copyLoop := &forall.Loop{
			Name: "relax.copy", Lo: 1, Hi: n,
			On: oldA, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: a, Affine: &analysis.Identity}},
			Phase: phaseCopy,
			Body: func(i int, e *forall.Env) {
				e.Write(oldA, i, e.Read(a, i))
			},
		}

		relaxLoop := &forall.Loop{
			Name: "relax.core", Lo: 1, Hi: n,
			On: a, OnF: analysis.Identity,
			Reads:     []forall.ReadSpec{{Array: oldA}}, // old_a[adj[i,j]]: indirect
			DependsOn: []forall.Dep{adj},
			Enumerate: opt.Enumerate,
			Body: func(i int, e *forall.Env) {
				cnt := e.ReadInt(count, i)
				x := 0.0
				for j := 1; j <= cnt; j++ {
					cf := e.ReadLocal2(coef, i, j)
					x += cf * e.Read(oldA, e.ReadInt2(adj, i, j))
					e.Flops(2)
				}
				e.Flops(1) // the count[i] > 0 test
				if cnt > 0 {
					e.Write(a, i, x)
				}
			},
		}

		// The sweep runs through the sequence API; the relaxation core
		// reads old_a, which the copy writes, so the fusion window breaks
		// between them and execution matches the per-loop pipeline
		// exactly (fused or not).
		sweep := []forall.SeqLoop{
			{L: copyLoop, Writes: []*darray.Array{oldA}},
			{L: relaxLoop, Writes: []*darray.Array{a}},
		}

		sweeps := 0
		for sweeps < opt.Sweeps {
			ctx.ForallSeq(sweep)
			sweeps++
			if opt.CheckConvergence {
				delta := 0.0
				localSet.Each(func(i int) {
					d := a.Get1(i) - oldA.Get1(i)
					if d < 0 {
						d = -d
					}
					if d > delta {
						delta = d
					}
				})
				if ctx.AllReduce(delta, "max") < opt.Tol {
					break
				}
			}
		}
		sweepsRun[me] = sweeps

		if s := ctx.Eng.Schedule("relax.core"); s != nil {
			nonlocal[me] = s.NonlocalIters()
			schedBytes[me] = s.MemBytes()
		}
		if opt.Gather {
			localSet.Each(func(i int) { values[i-1] = a.Get1(i) })
		}
	})

	res := Result{Report: rep, Values: values, SweepsRun: sweepsRun[0]}
	for i, nl := range nonlocal {
		if nl > res.NonlocalIters {
			res.NonlocalIters = nl
		}
		if schedBytes[i] > res.ScheduleBytes {
			res.ScheduleBytes = schedBytes[i]
		}
	}
	return res
}

// RunExtrapolated runs only a few sweeps and extrapolates the
// executor/copy phase times to the full sweep count.  Because the
// simulation is deterministic and every post-schedule sweep charges
// identical virtual time, the extrapolation is exact; it exists to
// keep host wall-clock reasonable on the 512²/1024² meshes.  The
// inspector time needs no scaling (it runs once).
func RunExtrapolated(opt Options, simulate int) Result {
	if simulate >= opt.Sweeps {
		return Run(opt)
	}
	if simulate < 3 {
		panic("relax: need at least 3 simulated sweeps to extrapolate")
	}
	full := opt.Sweeps
	opt.Sweeps = simulate
	opt.CheckConvergence = false
	r1 := Run(opt)
	opt.Sweeps = simulate - 1
	r0 := Run(opt)
	perSweep := r1.Report.Executor - r0.Report.Executor
	r1.Report.Executor += float64(full-simulate) * perSweep
	r1.Report.Total = r1.Report.Inspector + r1.Report.Executor
	r1.SweepsRun = full
	return r1
}

// SeqExecutorTime returns the one-processor executor time for the
// given mesh and sweep count — the paper's speedup baseline ("speedup
// is given relative to the executor time on one processor").  It
// simulates two sweep counts and scales exactly.
func SeqExecutorTime(m *mesh.Mesh, sweeps int, params machine.Params) float64 {
	opt := Options{Mesh: m, Sweeps: 2, P: 1, Params: params}
	r2 := Run(opt)
	opt.Sweeps = 1
	r1 := Run(opt)
	perSweep := r2.Report.Executor - r1.Report.Executor
	return r1.Report.Executor + float64(sweeps-1)*perSweep
}
