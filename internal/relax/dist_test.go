package relax

import (
	"testing"

	"kali/internal/dist"
	"kali/internal/machine"
	"kali/internal/mesh"
)

// TestAllDistributionsCorrect: the paper's §2.4 claim — the same
// program runs unchanged under any distribution, producing identical
// results; only performance differs.
func TestAllDistributionsCorrect(t *testing.T) {
	m := mesh.Rect(12, 12)
	const sweeps = 6
	want := mesh.SeqJacobi(m, mesh.InitValues(m), sweeps)

	owners := make([]int, m.N)
	for i := range owners {
		owners[i] = (i / 7) % 4 // odd-sized chunks, deliberately ragged
	}

	cases := []struct {
		name string
		opt  Options
	}{
		{"block", Options{Dist: dist.BlockDim()}},
		{"cyclic", Options{Dist: dist.CyclicDim()}},
		{"blockcyclic3", Options{Dist: dist.BlockCyclicDim(3)}},
		{"usermap", Options{Owners: owners}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := c.opt
			opt.Mesh, opt.Sweeps, opt.P = m, sweeps, 4
			opt.Params, opt.Gather = machine.Ideal(), true
			res := Run(opt)
			if d := mesh.MaxDelta(res.Values, want); d != 0 {
				t.Fatalf("distribution %s: differs from oracle by %g", c.name, d)
			}
		})
	}
}

// TestBlockBeatsCyclicForStencil: the performance consequence the
// paper wants programmers to control — for a nearest-neighbor stencil,
// block distribution communicates only boundaries while cyclic
// communicates nearly everything.
func TestBlockBeatsCyclicForStencil(t *testing.T) {
	m := mesh.Rect(32, 32)
	block := Run(Options{Mesh: m, Sweeps: 10, P: 4, Params: machine.NCUBE7()})
	cyclic := Run(Options{Mesh: m, Sweeps: 10, P: 4, Params: machine.NCUBE7(), Dist: dist.CyclicDim()})
	if cyclic.Report.Executor < 2*block.Report.Executor {
		t.Fatalf("cyclic (%.2fs) should be far slower than block (%.2fs) on a stencil",
			cyclic.Report.Executor, block.Report.Executor)
	}
	if cyclic.NonlocalIters <= block.NonlocalIters {
		t.Fatalf("cyclic nonlocal iters %d should exceed block's %d",
			cyclic.NonlocalIters, block.NonlocalIters)
	}
}

// TestUserMapBalancesSkewedWork: the paper's future-work scenario
// (dynamic load balancing needs user-defined distributions).  We build
// a mesh whose active (interior) nodes all fall in the low half of the
// numbering; a block distribution leaves half the processors idle,
// while an owner map that deals active nodes evenly restores balance.
func TestUserMapBalancesSkewedWork(t *testing.T) {
	// A tall narrow strip: nodes are numbered row-major, and we make
	// the strip by taking a 16x32 rectangle — nothing skewed yet.  The
	// skew: relax on a *half-active* mesh built by marking the upper
	// half's nodes boundary (count = 0 ⇒ nearly free).
	nx, ny := 16, 32
	m := mesh.Rect(nx, ny)
	for i := 1; i <= m.N; i++ {
		if (i-1)/nx >= ny/2 { // rows in the upper half
			m.Count[i-1] = 0
		}
	}

	const p = 4
	block := Run(Options{Mesh: m, Sweeps: 10, P: p, Params: machine.NCUBE7()})

	// Deal the expensive (active) nodes round-robin by row bands of the
	// active half; keep each node's whole row together to preserve
	// stencil locality within a band.
	owners := make([]int, m.N)
	activeRows := 0
	for r := 0; r < ny; r++ {
		active := false
		for c := 0; c < nx; c++ {
			if m.Count[r*nx+c] > 0 {
				active = true
				break
			}
		}
		var owner int
		if active {
			owner = (activeRows * p) / (ny/2 - 1)
			if owner >= p {
				owner = p - 1
			}
			activeRows++
		} else {
			owner = (r * p) / ny // spread idle rows arbitrarily
		}
		for c := 0; c < nx; c++ {
			owners[r*nx+c] = owner
		}
	}
	balanced := Run(Options{Mesh: m, Sweeps: 10, P: p, Params: machine.NCUBE7(), Owners: owners})

	if balanced.Report.Executor >= block.Report.Executor {
		t.Fatalf("balanced map (%.2fs) should beat block (%.2fs) on skewed work",
			balanced.Report.Executor, block.Report.Executor)
	}
	// And both compute the same answer.
	want := mesh.SeqJacobi(m, mesh.InitValues(m), 10)
	got := Run(Options{Mesh: m, Sweeps: 10, P: p, Params: machine.Ideal(), Owners: owners, Gather: true})
	if d := mesh.MaxDelta(got.Values, want); d != 0 {
		t.Fatalf("balanced result differs by %g", d)
	}
}
