package relax

import (
	"math"
	"testing"

	"kali/internal/machine"
	"kali/internal/mesh"
)

// TestMatchesSequential: the distributed relaxation must agree with
// the sequential oracle bit-for-bit (same operation order per point).
func TestMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *mesh.Mesh
		p    int
	}{
		{"rect16x16 P=1", mesh.Rect(16, 16), 1},
		{"rect16x16 P=2", mesh.Rect(16, 16), 2},
		{"rect16x16 P=4", mesh.Rect(16, 16), 4},
		{"rect16x16 P=8", mesh.Rect(16, 16), 8},
		{"rect16x16 P=3 (non-pow2)", mesh.Rect(16, 16), 3},
		{"rect20x12 P=4", mesh.Rect(20, 12), 4},
		{"unstructured P=4", mesh.Unstructured(12, 12, false, 0), 4},
		{"unstructured shuffled P=4", mesh.Unstructured(12, 12, true, 7), 4},
		{"unstructured shuffled P=8", mesh.Unstructured(10, 14, true, 99), 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const sweeps = 10
			want := mesh.SeqJacobi(tc.m, mesh.InitValues(tc.m), sweeps)
			res := Run(Options{
				Mesh: tc.m, Sweeps: sweeps, P: tc.p,
				Params: machine.Ideal(), Gather: true,
			})
			if d := mesh.MaxDelta(res.Values, want); d != 0 {
				t.Fatalf("distributed differs from sequential by %g", d)
			}
			if res.SweepsRun != sweeps {
				t.Fatalf("ran %d sweeps", res.SweepsRun)
			}
		})
	}
}

// TestInspectorRunsOnce: phases are recorded, and the inspector cost
// does not grow with the sweep count (schedule caching).
func TestInspectorRunsOnce(t *testing.T) {
	m := mesh.Rect(16, 16)
	r5 := Run(Options{Mesh: m, Sweeps: 5, P: 4, Params: machine.NCUBE7()})
	r20 := Run(Options{Mesh: m, Sweeps: 20, P: 4, Params: machine.NCUBE7()})
	if r5.Report.Inspector <= 0 || r5.Report.Executor <= 0 {
		t.Fatalf("phases not recorded: %+v", r5.Report)
	}
	if math.Abs(r5.Report.Inspector-r20.Report.Inspector) > 1e-12 {
		t.Fatalf("inspector grew with sweeps: %g vs %g",
			r5.Report.Inspector, r20.Report.Inspector)
	}
	if r20.Report.Executor <= 3*r5.Report.Executor {
		t.Fatalf("executor did not scale with sweeps: %g vs %g",
			r5.Report.Executor, r20.Report.Executor)
	}
}

// TestNoCacheMultipliesInspector: ABL1 — without caching, inspector
// time scales with sweeps.
func TestNoCacheMultipliesInspector(t *testing.T) {
	m := mesh.Rect(12, 12)
	cached := Run(Options{Mesh: m, Sweeps: 8, P: 4, Params: machine.NCUBE7()})
	nocache := Run(Options{Mesh: m, Sweeps: 8, P: 4, Params: machine.NCUBE7(), NoCache: true})
	if nocache.Report.Inspector < 7*cached.Report.Inspector {
		t.Fatalf("NoCache inspector %g should be ~8x cached %g",
			nocache.Report.Inspector, cached.Report.Inspector)
	}
	// Results must still be correct.
	want := mesh.SeqJacobi(m, mesh.InitValues(m), 8)
	res := Run(Options{Mesh: m, Sweeps: 8, P: 4, Params: machine.Ideal(), NoCache: true, Gather: true})
	if d := mesh.MaxDelta(res.Values, want); d != 0 {
		t.Fatalf("NoCache result differs by %g", d)
	}
}

// TestConvergence: with the convergence check on, the run stops early
// once the sweep delta falls under Tol.
func TestConvergence(t *testing.T) {
	m := mesh.Rect(8, 8)
	res := Run(Options{
		Mesh: m, Sweeps: 10000, P: 2, Params: machine.Ideal(),
		CheckConvergence: true, Tol: 1e-6, Gather: true,
	})
	if res.SweepsRun >= 10000 || res.SweepsRun < 10 {
		t.Fatalf("converged after %d sweeps", res.SweepsRun)
	}
	// The fixed point of Jacobi for Laplace: residual must be small.
	again := mesh.SeqJacobi(m, res.Values, 1)
	if d := mesh.MaxDelta(res.Values, again); d > 1e-5 {
		t.Fatalf("not near fixed point: %g", d)
	}
}

// TestExtrapolationExact: RunExtrapolated must reproduce the full
// run's report exactly (determinism + per-sweep constancy).
func TestExtrapolationExact(t *testing.T) {
	m := mesh.Rect(16, 16)
	opt := Options{Mesh: m, Sweeps: 16, P: 4, Params: machine.NCUBE7()}
	full := Run(opt)
	extra := RunExtrapolated(opt, 5)
	if math.Abs(full.Report.Executor-extra.Report.Executor) > 1e-9*full.Report.Executor {
		t.Fatalf("executor: full %.9g vs extrapolated %.9g",
			full.Report.Executor, extra.Report.Executor)
	}
	if math.Abs(full.Report.Inspector-extra.Report.Inspector) > 1e-12 {
		t.Fatalf("inspector: full %g vs extrapolated %g",
			full.Report.Inspector, extra.Report.Inspector)
	}
	if extra.SweepsRun != 16 {
		t.Fatalf("SweepsRun = %d", extra.SweepsRun)
	}
}

// TestSeqExecutorTimeScales: the speedup baseline is linear in sweeps
// and points.
func TestSeqExecutorTimeScales(t *testing.T) {
	m := mesh.Rect(16, 16)
	t100 := SeqExecutorTime(m, 100, machine.NCUBE7())
	t50 := SeqExecutorTime(m, 50, machine.NCUBE7())
	if math.Abs(t100-2*t50)/t100 > 1e-9 {
		t.Fatalf("not linear in sweeps: %g vs 2*%g", t100, t50)
	}
	big := mesh.Rect(32, 16)
	tbig := SeqExecutorTime(big, 100, machine.NCUBE7())
	if tbig <= t100 {
		t.Fatalf("bigger mesh not slower: %g vs %g", tbig, t100)
	}
}

// TestNonlocalItersBoundaryRows: with block-distributed rows each
// interior processor's nonlocal iterations are its boundary rows.
func TestNonlocalItersBoundaryRows(t *testing.T) {
	m := mesh.Rect(16, 16) // 16 rows over 4 procs: 4 rows each
	res := Run(Options{Mesh: m, Sweeps: 2, P: 4, Params: machine.Ideal()})
	// Interior procs (1,2) have 2 boundary rows × 16 points = 32
	// nonlocal iterations, minus boundary-column points which make no
	// references at all (count = 0): those rows have 14 interior points
	// → 28 nonlocal iterations.
	if res.NonlocalIters != 28 {
		t.Fatalf("nonlocal iters = %d, want 28", res.NonlocalIters)
	}
}

// TestReportOverheadSmall: with caching over many sweeps, inspector
// overhead is a small fraction — the paper's headline claim.
func TestReportOverheadSmall(t *testing.T) {
	m := mesh.Rect(32, 32)
	res := Run(Options{Mesh: m, Sweeps: 100, P: 4, Params: machine.IPSC2()})
	if pct := res.Report.OverheadPct(); pct > 2.0 {
		t.Fatalf("iPSC/2 inspector overhead = %.2f%%, paper reports <1%%", pct)
	}
}

func TestBadOptionsPanic(t *testing.T) {
	for _, opt := range []Options{
		{},
		{Mesh: mesh.Rect(4, 4), Sweeps: 0, P: 1},
		{Mesh: mesh.Rect(4, 4), Sweeps: 1, P: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", opt)
				}
			}()
			Run(opt)
		}()
	}
}
