package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kali/internal/dist"
	"kali/internal/index"
)

// TestShiftLoopSets reproduces the paper's Figure 1 loop analysis:
//
//	forall i in 1..N-1 on A[i].loc do A[i] := A[i+1] end
//
// with A block-distributed.  Each processor's only nonlocal iteration
// is its last row boundary (the highest local index), receiving one
// element from the next processor.
func TestShiftLoopSets(t *testing.T) {
	const N, P = 16, 4 // blocks of 4
	blk := dist.NewBlock(N, P)
	read := Read{Pat: blk, G: Affine{A: 1, C: 1}} // A[i+1]

	for p := 0; p < P; p++ {
		s := Compute(blk, Identity, 1, N-1, []Read{read}, p)

		wantExec := blk.Local(p).Intersect(index.Range(1, N-1))
		if !s.Exec.Equal(wantExec) {
			t.Fatalf("proc %d exec = %v, want %v", p, s.Exec, wantExec)
		}
		if p < P-1 {
			// Last local iteration reads A[i+1] from proc p+1.
			boundary := blk.Local(p).Max()
			if !s.ExecNonlocal.Equal(index.Single(boundary)) {
				t.Fatalf("proc %d nonlocal = %v, want {%d}", p, s.ExecNonlocal, boundary)
			}
			in := s.In[0][p+1]
			if !in.Equal(index.Single(boundary + 1)) {
				t.Fatalf("proc %d in from %d = %v", p, p+1, in)
			}
		} else {
			if !s.ExecNonlocal.Empty() {
				t.Fatalf("last proc nonlocal = %v", s.ExecNonlocal)
			}
		}
		if p > 0 {
			out := s.Out[0][p-1]
			if !out.Equal(index.Single(blk.Local(p).Min())) {
				t.Fatalf("proc %d out to %d = %v", p, p-1, out)
			}
		}
	}
}

// TestInOutTransposition: in(p,q) == out(q,p) computed independently —
// the identity that lets compile-time analysis skip the global
// exchange.
func TestInOutTransposition(t *testing.T) {
	check := func(pat dist.Pattern, g Affine, lo, hi int) {
		P := pat.P()
		all := make([]Sets, P)
		for p := 0; p < P; p++ {
			all[p] = Compute(pat, Identity, lo, hi, []Read{{Pat: pat, G: g}}, p)
		}
		for p := 0; p < P; p++ {
			for q := 0; q < P; q++ {
				if p == q {
					continue
				}
				var in, out index.Set
				if all[p].In[0] != nil {
					in = all[p].In[0][q]
				}
				if all[q].Out[0] != nil {
					out = all[q].Out[0][p]
				}
				if !in.Equal(out) {
					t.Fatalf("%v g=%+v: in(%d,%d)=%v != out(%d,%d)=%v",
						pat, g, p, q, in, q, p, out)
				}
			}
		}
	}
	check(dist.NewBlock(20, 4), Affine{1, 1}, 1, 19)
	check(dist.NewBlock(20, 4), Affine{1, -1}, 2, 20)
	check(dist.NewCyclic(20, 4), Affine{1, 1}, 1, 19)
	check(dist.NewBlockCyclic(20, 4, 3), Affine{1, 2}, 1, 18)
	check(dist.NewBlock(20, 4), Affine{2, 0}, 1, 10)
}

// TestCyclicShiftCommunicatesEverything: with a cyclic distribution a
// shift-by-one makes *every* iteration nonlocal — the distribution
// sensitivity the paper's global name space hides from the programmer.
func TestCyclicShiftCommunicatesEverything(t *testing.T) {
	const N, P = 12, 3
	cyc := dist.NewCyclic(N, P)
	read := Read{Pat: cyc, G: Affine{1, 1}}
	for p := 0; p < P; p++ {
		s := Compute(cyc, Identity, 1, N-1, []Read{read}, p)
		if !s.ExecLocal.Empty() {
			t.Fatalf("proc %d: cyclic shift should have no local iterations, got %v", p, s.ExecLocal)
		}
		if !s.ExecNonlocal.Equal(s.Exec) {
			t.Fatalf("proc %d: all iterations must be nonlocal", p)
		}
	}
}

// TestBlockShiftLocalMajority: with block distribution, a shift leaves
// all but the boundary iteration local — why block beats cyclic for
// stencils.
func TestBlockShiftLocalMajority(t *testing.T) {
	const N, P = 100, 4
	blk := dist.NewBlock(N, P)
	read := Read{Pat: blk, G: Affine{1, 1}}
	s := Compute(blk, Identity, 1, N-1, []Read{read}, 1)
	if s.ExecLocal.Len() != 24 || s.ExecNonlocal.Len() != 1 {
		t.Fatalf("local=%d nonlocal=%d, want 24/1", s.ExecLocal.Len(), s.ExecNonlocal.Len())
	}
}

// TestFivePointStencilSets: two reads A[i-1], A[i+1] — interior
// processors receive from both neighbors.
func TestFivePointStencilSets(t *testing.T) {
	const N, P = 32, 4
	blk := dist.NewBlock(N, P)
	reads := []Read{
		{Pat: blk, G: Affine{1, -1}},
		{Pat: blk, G: Affine{1, 1}},
	}
	s := Compute(blk, Identity, 2, N-1, reads, 1)
	// Proc 1 owns 9..16; iterations 9..16; reads 8..15 and 10..17.
	if got := s.In[0][0]; !got.Equal(index.Single(8)) {
		t.Fatalf("in left = %v", got)
	}
	if got := s.In[1][2]; !got.Equal(index.Single(17)) {
		t.Fatalf("in right = %v", got)
	}
	if s.ExecLocal.Len() != 6 || s.ExecNonlocal.Len() != 2 {
		t.Fatalf("local=%v nonlocal=%v", s.ExecLocal, s.ExecNonlocal)
	}
}

// TestNoReadsAllLocal: a loop with no distributed reads has no
// communication and everything local.
func TestNoReadsAllLocal(t *testing.T) {
	blk := dist.NewBlock(10, 2)
	s := Compute(blk, Identity, 1, 10, nil, 0)
	if !s.ExecLocal.Equal(s.Exec) || !s.ExecNonlocal.Empty() {
		t.Fatal("no-read loop must be fully local")
	}
}

// TestOnClauseAffine: on A[i+2].loc shifts the execution sets.
func TestOnClauseAffine(t *testing.T) {
	blk := dist.NewBlock(12, 3) // blocks of 4
	// exec(p) = {i : i+2 ∈ local(p)} ∩ [1..10]
	s := Compute(blk, Affine{1, 2}, 1, 10, nil, 1)
	// local(1) = 5..8 → i ∈ 3..6
	if !s.Exec.Equal(index.Range(3, 6)) {
		t.Fatalf("exec = %v", s.Exec)
	}
}

// TestQuickSetsAgainstBruteForce compares the closed forms with a
// direct enumeration for random patterns and subscripts.
func TestQuickSetsAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(40)
		P := 1 + r.Intn(5)
		var pat dist.Pattern
		switch r.Intn(3) {
		case 0:
			pat = dist.NewBlock(n, P)
		case 1:
			pat = dist.NewCyclic(n, P)
		default:
			pat = dist.NewBlockCyclic(n, P, 1+r.Intn(4))
		}
		g := Affine{A: 1, C: r.Intn(5) - 2}
		lo, hi := 1, n
		// Clamp the range so g stays in bounds.
		if g.C > 0 {
			hi = n - g.C
		} else {
			lo = 1 - g.C
		}
		if lo > hi {
			return true
		}
		p := r.Intn(P)
		s := Compute(pat, Identity, lo, hi, []Read{{Pat: pat, G: g}}, p)

		// Brute force.
		for i := lo; i <= hi; i++ {
			inExec := pat.Owner(i) == p
			if s.Exec.Contains(i) != inExec {
				return false
			}
			if inExec {
				local := pat.Owner(g.Apply(i)) == p
				if s.ExecLocal.Contains(i) != local {
					return false
				}
				if s.ExecNonlocal.Contains(i) == local {
					return false
				}
				if !local {
					q := pat.Owner(g.Apply(i))
					if s.In[0] == nil || !s.In[0][q].Contains(g.Apply(i)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzable(t *testing.T) {
	if !Analyzable(true, true) || Analyzable(false, true) || Analyzable(true, false) {
		t.Fatal("Analyzable truth table wrong")
	}
}

func TestAffineHelpers(t *testing.T) {
	f := Affine{2, 3}
	if f.Apply(4) != 11 {
		t.Fatal("Apply")
	}
	if !f.Image(index.Range(1, 3)).Equal(index.FromSlice([]int{5, 7, 9})) {
		t.Fatal("Image")
	}
	if !f.Preimage(index.Range(5, 9)).Equal(index.Range(1, 3)) {
		t.Fatal("Preimage")
	}
	if Identity.Apply(7) != 7 {
		t.Fatal("Identity")
	}
}
