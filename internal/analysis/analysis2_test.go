package analysis

import (
	"math/rand"
	"testing"

	"kali/internal/dist"
)

// TestExec2Partition: the exec rectangles of all processors partition
// the iteration space.
func TestExec2Partition(t *testing.T) {
	onI := dist.NewBlock(12, 2)
	onJ := dist.NewCyclic(10, 3)
	seen := map[[2]int]int{}
	for p := 0; p < 6; p++ {
		rows, cols := Exec2(onI, onJ, Identity2, 1, 12, 1, 10, p)
		rows.Each(func(i int) {
			cols.Each(func(j int) {
				seen[[2]int{i, j}]++
			})
		})
	}
	if len(seen) != 120 {
		t.Fatalf("partition covers %d of 120 iterations", len(seen))
	}
	for ij, n := range seen {
		if n != 1 {
			t.Fatalf("iteration %v claimed by %d processors", ij, n)
		}
	}
}

// TestCompute2Symmetry: in(p,q) computed on p equals out(q,p) computed
// on q — the property that lets both ends skip the global exchange.
func TestCompute2Symmetry(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		ny, nx := 4+r.Intn(8), 4+r.Intn(8)
		pi, pj := 1+r.Intn(3), 1+r.Intn(3)
		np := pi * pj
		mk := func(n, p int) dist.Pattern {
			switch r.Intn(3) {
			case 0:
				return dist.NewBlock(n, p)
			case 1:
				return dist.NewCyclic(n, p)
			default:
				return dist.NewBlockCyclic(n, p, 1+r.Intn(2))
			}
		}
		onI, onJ := mk(ny, pi), mk(nx, pj)
		read := Read2{PatI: mk(ny, pi), PatJ: mk(nx, pj),
			G: Affine2{I: Affine{A: 1, C: r.Intn(3) - 1}, J: Affine{A: 1, C: r.Intn(3) - 1}}, Width: nx}
		loI, hiI := 1+maxInt(0, -read.G.I.C), ny-maxInt(0, read.G.I.C)
		loJ, hiJ := 1+maxInt(0, -read.G.J.C), nx-maxInt(0, read.G.J.C)

		sets := make([]Sets2, np)
		for p := 0; p < np; p++ {
			sets[p] = Compute2(onI, onJ, Identity2, loI, hiI, loJ, hiJ, []Read2{read}, p)
		}
		for p := 0; p < np; p++ {
			for q := 0; q < np; q++ {
				if p == q {
					continue
				}
				in := sets[p].In[0][q]
				out := sets[q].Out[0][p]
				if !in.Equal(out) {
					t.Fatalf("trial %d: in(%d,%d)=%v != out(%d,%d)=%v", trial, p, q, in, q, p, out)
				}
			}
		}
	}
}

// TestCompute2LocalRect: execLocal is exec intersected with every
// read's per-dimension preimages, checked against brute force.
func TestCompute2LocalRect(t *testing.T) {
	onI, onJ := dist.NewBlock(8, 2), dist.NewBlock(8, 2)
	read := Read2{PatI: onI, PatJ: onJ, G: Affine2{I: Affine{1, -1}, J: Affine{1, 0}}, Width: 8}
	for p := 0; p < 4; p++ {
		s := Compute2(onI, onJ, Identity2, 2, 8, 1, 8, []Read2{read}, p)
		p0, p1 := p/2, p%2
		s.ExecRows.Each(func(i int) {
			s.ExecCols.Each(func(j int) {
				wantLocal := onI.Owner(i-1) == p0 && onJ.Owner(j) == p1
				gotLocal := s.LocalRows.Contains(i) && s.LocalCols.Contains(j)
				if wantLocal != gotLocal {
					t.Fatalf("p=%d iter (%d,%d): local=%v want %v", p, i, j, gotLocal, wantLocal)
				}
			})
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
