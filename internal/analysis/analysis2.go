package analysis

import (
	"kali/internal/dist"
	"kali/internal/index"
)

// This file extends the compile-time communication analysis to rank-2
// loops over rank-2 processor grids.  The key observation (paper §3.1,
// applied per dimension) is that block/cyclic/block_cyclic/map
// distributions are separable: the owner of element (r, c) is the grid
// processor (ownerI(r), ownerJ(c)).  When both subscripts of every
// reference are affine in their own loop variable — X[gI(i), gJ(j)] —
// every set the executor needs is a cross product of two 1-D sets, so
// the whole 1-D interval algebra lifts dimension-wise:
//
//	exec(p)      = exec_I(p₀) × exec_J(p₁)
//	ref_R(p)     = gI⁻¹(local_I(p₀)) × gJ⁻¹(local_J(p₁))
//	execLocal(p) = exec(p) ∩ ⋂_R ref_R(p)        (still a rectangle)
//	in(p,q)      = (gI(exec_I) ∩ local_I(q₀)) × (gJ(exec_J) ∩ local_J(q₁))
//	out(p,q)     = in(q,p) evaluated locally
//
// Rectangles are lowered onto the 1-D schedule records by row-major
// linearization (index.Linearize2).  As in the 1-D case, both ends of
// every transfer evaluate the same closed forms, so no inspector pass
// and no global exchange are needed.

// Affine2 is the rank-2 subscript pair (aI*i + cI, aJ*j + cJ) of a
// reference X[gI(i), gJ(j)].
type Affine2 struct {
	I, J Affine
}

// Identity2 is the subscript pair (i, j).
var Identity2 = Affine2{I: Identity, J: Identity}

// Shift2 returns the pure-shift subscript pair (i+ci, j+cj) — the form
// stencil reads use.
func Shift2(ci, cj int) *Affine2 {
	return &Affine2{I: Affine{A: 1, C: ci}, J: Affine{A: 1, C: cj}}
}

// Read2 is one rank-2 affine distributed-array reference.
type Read2 struct {
	// PatI, PatJ are the referenced array's per-dimension index maps
	// (both dimensions must be distributed over a rank-2 grid).
	PatI, PatJ dist.Pattern
	// G is the subscript pair.
	G Affine2
	// Width is the referenced array's column extent, used to linearize
	// element rectangles row-major (matching darray's global indices).
	Width int
}

// procCoord2 splits a linear grid id into row-major (q0, q1)
// coordinates of a grid whose second dimension has extent pj.  This is
// the same linearization topology.Grid and dist.Dist.Owner use, so no
// grid handle is needed.
func procCoord2(q, pj int) (int, int) { return q / pj, q % pj }

// Exec2 computes the exec rectangle of processor p (linear id over the
// onI×onJ grid) for the on clause "X[fI(i), fJ(j)].loc".
func Exec2(onI, onJ dist.Pattern, f Affine2, loI, hiI, loJ, hiJ, p int) (rows, cols index.Set) {
	p0, p1 := procCoord2(p, onJ.P())
	rows = f.I.Preimage(onI.Local(p0)).Intersect(index.Range(loI, hiI))
	cols = f.J.Preimage(onJ.Local(p1)).Intersect(index.Range(loJ, hiJ))
	return rows, cols
}

// Sets2 is the complete compile-time schedule information of one
// processor for a rank-2 loop.  Exec and ExecLocal are rectangles;
// the nonlocal iterations are their (non-rectangular) difference,
// which callers enumerate in loop order.
type Sets2 struct {
	ExecRows, ExecCols   index.Set
	LocalRows, LocalCols index.Set
	// In[k][q] and Out[k][q] are row-major linearized element sets
	// received from / sent to linear processor q for read k.
	In  []map[int]index.Set
	Out []map[int]index.Set
}

// Compute2 evaluates all sets for the processor with linear id p.
// reads may reference arrays distributed over grids with different
// extents; each read's ownership is evaluated in its own grid.
func Compute2(onI, onJ dist.Pattern, f Affine2, loI, hiI, loJ, hiJ int, reads []Read2, p int) Sets2 {
	s := Sets2{}
	s.ExecRows, s.ExecCols = Exec2(onI, onJ, f, loI, hiI, loJ, hiJ, p)
	s.LocalRows, s.LocalCols = s.ExecRows, s.ExecCols
	for _, r := range reads {
		rp0, rp1 := procCoord2(p, r.PatJ.P())
		s.LocalRows = s.LocalRows.Intersect(r.G.I.Preimage(r.PatI.Local(rp0)))
		s.LocalCols = s.LocalCols.Intersect(r.G.J.Preimage(r.PatJ.Local(rp1)))
	}

	// Every peer's exec rectangle depends only on the on clause, so
	// evaluate each once, not once per read.
	np := onI.P() * onJ.P()
	qRows := make([]index.Set, np)
	qCols := make([]index.Set, np)
	for q := 0; q < np; q++ {
		if q == p {
			qRows[q], qCols[q] = s.ExecRows, s.ExecCols
			continue
		}
		qRows[q], qCols[q] = Exec2(onI, onJ, f, loI, hiI, loJ, hiJ, q)
	}

	s.In = make([]map[int]index.Set, len(reads))
	s.Out = make([]map[int]index.Set, len(reads))
	for k, r := range reads {
		rp0, rp1 := procCoord2(p, r.PatJ.P())
		needRows := r.G.I.Image(s.ExecRows)
		needCols := r.G.J.Image(s.ExecCols)
		for q := 0; q < np; q++ {
			if q == p {
				continue
			}
			q0, q1 := procCoord2(q, r.PatJ.P())
			inR := needRows.Intersect(r.PatI.Local(q0))
			inC := needCols.Intersect(r.PatJ.Local(q1))
			if !inR.Empty() && !inC.Empty() {
				if s.In[k] == nil {
					s.In[k] = map[int]index.Set{}
				}
				s.In[k][q] = index.Linearize2(inR, inC, r.Width)
			}
			// out(p,q): q's exec rectangle imaged through the subscripts,
			// clipped to what this processor stores.
			outR := r.G.I.Image(qRows[q]).Intersect(r.PatI.Local(rp0))
			outC := r.G.J.Image(qCols[q]).Intersect(r.PatJ.Local(rp1))
			if !outR.Empty() && !outC.Empty() {
				if s.Out[k] == nil {
					s.Out[k] = map[int]index.Set{}
				}
				s.Out[k][q] = index.Linearize2(outR, outC, r.Width)
			}
		}
	}
	return s
}
