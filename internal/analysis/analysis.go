// Package analysis implements Kali's compile-time communication
// analysis (paper §3.1–3.2 and reference [3]).
//
// When the on clause and every distributed-array subscript are affine
// functions of the loop variable, the sets the executor needs have
// closed forms over the interval algebra of internal/index:
//
//	exec(p)   = f⁻¹(local_on(p)) ∩ [lo..hi]
//	ref_R(p)  = g_R⁻¹(local_R(p))
//	execLocal = exec(p) ∩ ⋂_R ref_R(p)
//	in(p,q)   = ⋃_R g_R(exec(p)) ∩ local_R(q)
//	out(p,q)  = ⋃_R g_R(exec(q)) ∩ local_R(p)
//
// No inspector pass and no global exchange are needed: each processor
// evaluates these formulas independently (both sides of every transfer
// derive the same sets, so the send and receive schedules agree by
// construction).  This is the "compile-time analysis" the paper
// contrasts with the run-time inspector; benchmark ABL3 measures the
// difference.
package analysis

import (
	"kali/internal/dist"
	"kali/internal/index"
)

// Affine is the subscript form a*i + c.
type Affine struct {
	A, C int
}

// Identity is the subscript i.
var Identity = Affine{A: 1, C: 0}

// Apply evaluates the subscript at i.
func (f Affine) Apply(i int) int { return f.A*i + f.C }

// Image returns {f(i) : i ∈ s}.
func (f Affine) Image(s index.Set) index.Set { return s.Affine(f.A, f.C) }

// Preimage returns {i : f(i) ∈ s}.
func (f Affine) Preimage(s index.Set) index.Set { return s.InverseAffine(f.A, f.C) }

// Read is one affine distributed-array reference R ≡ X[g(i)].
type Read struct {
	Pat dist.Pattern // distribution of the referenced array
	G   Affine       // the subscript
}

// Exec computes exec(p): the iterations of [lo..hi] placed on p by the
// on clause "X[f(i)].loc", where on is X's distribution.
func Exec(on dist.Pattern, f Affine, lo, hi, p int) index.Set {
	return f.Preimage(on.Local(p)).Intersect(index.Range(lo, hi))
}

// Ref computes ref_R(p): the iterations for which reference R is local
// on p.
func Ref(r Read, p int) index.Set {
	return r.G.Preimage(r.Pat.Local(p))
}

// Sets is the complete compile-time schedule information for one
// processor.
type Sets struct {
	Exec         index.Set
	ExecLocal    index.Set
	ExecNonlocal index.Set
	// In[k][q] and Out[k][q] are the element sets received from /
	// sent to processor q for read k (nil maps mean no communication).
	In  []map[int]index.Set
	Out []map[int]index.Set
}

// Compute evaluates all sets for processor p.  reads may reference
// arrays with different distributions.  P is the processor count of
// the on-clause pattern (all patterns must share it).
func Compute(on dist.Pattern, f Affine, lo, hi int, reads []Read, p int) Sets {
	s := Sets{Exec: Exec(on, f, lo, hi, p)}
	s.ExecLocal = s.Exec
	for _, r := range reads {
		s.ExecLocal = s.ExecLocal.Intersect(Ref(r, p))
	}
	s.ExecNonlocal = s.Exec.Minus(s.ExecLocal)

	np := on.P()
	s.In = make([]map[int]index.Set, len(reads))
	s.Out = make([]map[int]index.Set, len(reads))
	for k, r := range reads {
		needs := r.G.Image(s.Exec) // everything this proc touches via R
		for q := 0; q < np; q++ {
			if q == p {
				continue
			}
			in := needs.Intersect(r.Pat.Local(q))
			if !in.Empty() {
				if s.In[k] == nil {
					s.In[k] = map[int]index.Set{}
				}
				s.In[k][q] = in
			}
			// out(p,q) = g(exec(q)) ∩ local(p)
			out := r.G.Image(Exec(on, f, lo, hi, q)).Intersect(r.Pat.Local(p))
			if !out.Empty() {
				if s.Out[k] == nil {
					s.Out[k] = map[int]index.Set{}
				}
				s.Out[k][q] = out
			}
		}
	}
	return s
}

// Analyzable reports whether compile-time analysis applies: it requires
// an affine on clause and affine subscripts over static distributions,
// which is what callers express by constructing Read values at all.
// The helper exists to make call sites self-documenting.
func Analyzable(onAffine bool, allReadsAffine bool) bool {
	return onAffine && allReadsAffine
}
