// Package index implements the index-set algebra underlying Kali's
// communication analysis.
//
// The paper (§3.1) defines the sets exec(p), ref(p), in(p,q) and
// out(p,q) as subsets of iteration and array index spaces.  All of these are sets of
// integers which, for the distributions Kali supports, are unions of a
// small number of contiguous intervals (possibly strided).  This package
// provides a normalized interval-set representation with the operations
// needed by both the compile-time analysis and the run-time inspector:
// union, intersection, difference, translation, scaling, and inverse
// images under affine maps.
//
// A Set is always kept in normal form: intervals are sorted by Lo,
// pairwise disjoint, and non-adjacent (adjacent intervals are merged).
// The zero value of Set is the empty set and is ready to use.
package index

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is the inclusive integer range [Lo, Hi].  An Interval with
// Lo > Hi is empty.
type Interval struct {
	Lo, Hi int
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Len returns the number of integers in the interval.
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x int) bool { return iv.Lo <= x && x <= iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{lo, hi}
}

// Overlaps reports whether the two intervals share at least one integer.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

// Shift returns the interval translated by d.
func (iv Interval) Shift(d int) Interval { return Interval{iv.Lo + d, iv.Hi + d} }

func (iv Interval) String() string {
	if iv.Empty() {
		return "[]"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%d]", iv.Lo)
	}
	return fmt.Sprintf("[%d..%d]", iv.Lo, iv.Hi)
}

// Set is a normalized union of disjoint, sorted, non-adjacent intervals.
type Set struct {
	ivs []Interval
}

// Empty is the empty set.
var Empty = Set{}

// Range returns the set {lo..hi}; it is empty when lo > hi.
func Range(lo, hi int) Set {
	if lo > hi {
		return Set{}
	}
	return Set{ivs: []Interval{{lo, hi}}}
}

// Single returns the singleton set {x}.
func Single(x int) Set { return Range(x, x) }

// Strided returns the set {lo, lo+step, lo+2*step, ...} ∩ [lo, hi].
// step must be positive.
func Strided(lo, hi, step int) Set {
	if step <= 0 {
		panic("index: non-positive stride")
	}
	if lo > hi {
		return Set{}
	}
	if step == 1 {
		return Range(lo, hi)
	}
	ivs := make([]Interval, 0, (hi-lo)/step+1)
	for x := lo; x <= hi; x += step {
		ivs = append(ivs, Interval{x, x})
	}
	return Set{ivs: ivs}
}

// FromIntervals builds a Set from arbitrary (possibly overlapping,
// unsorted, or empty) intervals, normalizing the result.
func FromIntervals(ivs ...Interval) Set {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			work = append(work, iv)
		}
	}
	if len(work) == 0 {
		return Set{}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Lo < work[j].Lo })
	out := work[:1]
	for _, iv := range work[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 { // overlapping or adjacent: merge
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return Set{ivs: append([]Interval(nil), out...)}
}

// FromSlice builds a Set from an arbitrary list of integers.
func FromSlice(xs []int) Set {
	ivs := make([]Interval, len(xs))
	for i, x := range xs {
		ivs[i] = Interval{x, x}
	}
	return FromIntervals(ivs...)
}

// Intervals returns the normalized intervals of the set.  The returned
// slice must not be modified.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Len returns the number of integers in the set.
func (s Set) Len() int {
	n := 0
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// NumIntervals returns the number of maximal intervals in the set.
func (s Set) NumIntervals() int { return len(s.ivs) }

// Min returns the smallest element.  It panics on the empty set.
func (s Set) Min() int {
	if s.Empty() {
		panic("index: Min of empty set")
	}
	return s.ivs[0].Lo
}

// Max returns the largest element.  It panics on the empty set.
func (s Set) Max() int {
	if s.Empty() {
		panic("index: Max of empty set")
	}
	return s.ivs[len(s.ivs)-1].Hi
}

// Contains reports whether x is an element of the set, in O(log n)
// interval lookups.
func (s Set) Contains(x int) bool {
	// Find first interval with Hi >= x.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= x })
	return i < len(s.ivs) && s.ivs[i].Lo <= x
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if s.Empty() {
		return t
	}
	if t.Empty() {
		return s
	}
	all := make([]Interval, 0, len(s.ivs)+len(t.ivs))
	all = append(all, s.ivs...)
	all = append(all, t.ivs...)
	return FromIntervals(all...)
}

// Intersect returns s ∩ t using a linear merge of the two sorted
// interval lists.
func (s Set) Intersect(t Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		iv := s.ivs[i].Intersect(t.ivs[j])
		if !iv.Empty() {
			out = append(out, iv)
		}
		if s.ivs[i].Hi < t.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	// Intersection of normalized sets is already sorted and disjoint,
	// but two merged-adjacent results can arise; normalize to be safe.
	return FromIntervals(out...)
}

// Minus returns s ∖ t.
func (s Set) Minus(t Set) Set {
	if s.Empty() || t.Empty() {
		return s
	}
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		for j < len(t.ivs) && t.ivs[j].Hi < lo {
			j++
		}
		k := j
		for k < len(t.ivs) && t.ivs[k].Lo <= iv.Hi {
			cut := t.ivs[k]
			if cut.Lo > lo {
				out = append(out, Interval{lo, cut.Lo - 1})
			}
			if cut.Hi+1 > lo {
				lo = cut.Hi + 1
			}
			if lo > iv.Hi {
				break
			}
			k++
		}
		if lo <= iv.Hi {
			out = append(out, Interval{lo, iv.Hi})
		}
	}
	return FromIntervals(out...)
}

// Equal reports whether two sets contain the same integers.
func (s Set) Equal(t Set) bool {
	if len(s.ivs) != len(t.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != t.ivs[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in t.
func (s Set) Subset(t Set) bool { return s.Minus(t).Empty() }

// Shift returns the set translated by d: {x + d : x ∈ s}.
func (s Set) Shift(d int) Set {
	out := make([]Interval, len(s.ivs))
	for i, iv := range s.ivs {
		out[i] = iv.Shift(d)
	}
	return Set{ivs: out}
}

// Affine returns {a*x + c : x ∈ s}.  a may be negative but not zero.
func (s Set) Affine(a, c int) Set {
	if a == 0 {
		panic("index: Affine with a == 0")
	}
	if a == 1 {
		return s.Shift(c)
	}
	var out []Interval
	for _, iv := range s.ivs {
		if a == -1 {
			out = append(out, Interval{-iv.Hi + c, -iv.Lo + c})
			continue
		}
		// |a| > 1 produces strided points.
		for x := iv.Lo; x <= iv.Hi; x++ {
			y := a*x + c
			out = append(out, Interval{y, y})
		}
	}
	return FromIntervals(out...)
}

// InverseAffine returns {x : a*x + c ∈ s}, the preimage of s under the
// map x ↦ a*x + c.  a must be nonzero.  The preimage of each interval
// [L, H] is the integer interval ⌈(L-c)/a⌉ .. ⌊(H-c)/a⌋ (endpoints
// swapped when a is negative), so the result needs no point scans.
func (s Set) InverseAffine(a, c int) Set {
	if a == 0 {
		panic("index: InverseAffine with a == 0")
	}
	var out []Interval
	for _, iv := range s.ivs {
		// Solve L <= a*x + c <= H for integer x.
		nlo, nhi := iv.Lo-c, iv.Hi-c
		var xlo, xhi int
		if a > 0 {
			xlo, xhi = ceilDiv(nlo, a), floorDiv(nhi, a)
		} else {
			xlo, xhi = ceilDiv(nhi, a), floorDiv(nlo, a)
		}
		if xlo <= xhi {
			out = append(out, Interval{xlo, xhi})
		}
	}
	return FromIntervals(out...)
}

// Linearize2 returns the row-major linearization of the rectangular
// set rows × cols over a rank-2 space whose second dimension has
// extent width: { (r-1)*width + c : r ∈ rows, c ∈ cols }.  cols must
// lie within [1..width] so rows stay disjoint.  This is how the rank-2
// communication analysis lowers its per-dimension rectangles onto the
// 1-D interval machinery the schedules are built from: each row
// contributes cols shifted by its row offset, and full-width rows of
// adjacent indices merge into single intervals during normalization.
func Linearize2(rows, cols Set, width int) Set {
	if width < 1 {
		panic("index: Linearize2 with non-positive width")
	}
	if cols.Empty() || rows.Empty() {
		return Set{}
	}
	if cols.Min() < 1 || cols.Max() > width {
		panic(fmt.Sprintf("index: Linearize2 cols %v outside [1..%d]", cols, width))
	}
	ivs := make([]Interval, 0, rows.Len()*cols.NumIntervals())
	rows.Each(func(r int) {
		off := (r - 1) * width
		for _, iv := range cols.Intervals() {
			ivs = append(ivs, iv.Shift(off))
		}
	})
	return FromIntervals(ivs...)
}

// Each calls f for every element of the set in increasing order.
func (s Set) Each(f func(x int)) {
	for _, iv := range s.ivs {
		for x := iv.Lo; x <= iv.Hi; x++ {
			f(x)
		}
	}
}

// Slice returns all elements in increasing order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(x int) { out = append(out, x) })
	return out
}

func (s Set) String() string {
	if s.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

// ceilDiv returns ⌈a/b⌉ for any nonzero b.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv returns ⌊a/b⌋ for any nonzero b.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}
